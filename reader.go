package ltree

// Reader is the shared read surface: everything a snapshot-isolated
// consumer can do against any of the engine's read providers — a
// writable *Store, a log-shipped *Follower, or a sharded *Forest. New
// read APIs land here once instead of once per provider, and generic
// consumers (the ltreed HTTP handlers, tools, tests) take a Reader
// instead of switching on the concrete node role.
//
// The transactional core is View/SnapshotView/SnapshotAt: each pins one
// index version (per shard, for a forest composite) and serves every
// read from it. Query and Elements are the eager single-shot wrappers.
// Version numbers are comparable only within one provider; a forest
// reports the composite (summed) version, and only its current
// composite is addressable by SnapshotAt (see Forest.SnapshotAt).
//
// Not part of Reader, deliberately: Watch and DiffVersions need a
// single version history and live on *Store (with *Follower
// delegating); a forest's history is per-shard — subscribe per shard
// via ShardStore. Stats also stays provider-specific (Counters vs
// FollowerStats vs ForestStats); ReaderStats is the role-neutral
// aggregate.
type Reader interface {
	// View runs fn inside a pinned read transaction; see Store.View.
	View(fn func(*Txn) error) error
	// SnapshotView opens a pinned read transaction the caller must
	// Close; see Store.SnapshotView.
	SnapshotView() *Txn
	// SnapshotAt pins an explicit version number, ErrVersionRetired if
	// it is no longer reachable; see Store.SnapshotAt.
	SnapshotAt(version uint64) (*Txn, error)
	// Query eagerly evaluates a path expression; see Store.Query.
	Query(expr string) ([]*Elem, error)
	// Elements returns the elements with the given tag ("*" = all) in
	// document order; see Store.Elements.
	Elements(tag string) []*Elem
	// Label returns an element's (begin, end) interval.
	Label(n *Elem) (Label, error)
	// IsAncestor decides ancestry purely from labels.
	IsAncestor(a, d *Elem) (bool, error)
	// Compare orders two elements by document order using labels only.
	Compare(a, b *Elem) (int, error)
	// IndexVersion returns the published (composite, for forests)
	// version number.
	IndexVersion() uint64
	// ReaderStats reports the role-neutral read-side aggregate.
	ReaderStats() ReaderStats
}

// Compile-time proof that every provider implements Reader.
var (
	_ Reader = (*Store)(nil)
	_ Reader = (*Follower)(nil)
	_ Reader = (*Forest)(nil)
)

// ReaderStats is the role-neutral slice of a provider's statistics —
// the common denominator of Store.Stats, FollowerStats and ForestStats
// that generic read-side consumers (dashboards, the HTTP layer) can
// render without knowing the node role.
type ReaderStats struct {
	// IndexVersion is the published version number (composite for
	// forests).
	IndexVersion uint64
	// TxnOpen / TxnRetired are the read-transaction pin accounting:
	// open pins, and retired versions those pins keep attachable.
	TxnOpen    int
	TxnRetired int
	// Counters are the accumulated L-Tree maintenance counters, summed
	// across shards for a forest.
	Counters Counters
}

// ReaderStats implements Reader.
func (s *Store) ReaderStats() ReaderStats {
	open, retired := s.TxnStats()
	return ReaderStats{
		IndexVersion: s.IndexVersion(),
		TxnOpen:      open,
		TxnRetired:   retired,
		Counters:     s.Stats(),
	}
}

// ReaderStats implements Reader.
func (f *Follower) ReaderStats() ReaderStats { return f.st.ReaderStats() }

// ReaderStats implements Reader.
func (f *Forest) ReaderStats() ReaderStats {
	var out ReaderStats
	for _, sh := range f.shards {
		s := sh.st.ReaderStats()
		out.IndexVersion += s.IndexVersion
		out.TxnOpen += s.TxnOpen
		out.TxnRetired += s.TxnRetired
		out.Counters.Add(s.Counters)
	}
	return out
}
