package ltree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestStoreEndToEnd exercises the full public surface the way the README
// quickstart does.
func TestStoreEndToEnd(t *testing.T) {
	st, err := OpenString(`<book year="2004"><chapter><title>One</title></chapter><title>Main</title></book>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	titles, err := st.Query("book//title")
	if err != nil {
		t.Fatal(err)
	}
	if len(titles) != 2 {
		t.Fatalf("book//title: %d", len(titles))
	}
	direct, err := st.Query("/book/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 1 {
		t.Fatalf("/book/title: %d", len(direct))
	}
	// Insert a chapter with a nested title (bulk run) and re-query.
	ch, err := st.InsertXML(st.Root(), 1, `<chapter><title>Two</title><para>text</para></chapter>`)
	if err != nil {
		t.Fatal(err)
	}
	titles, _ = st.Query("book//title")
	if len(titles) != 3 {
		t.Fatalf("after insert: %d titles", len(titles))
	}
	// Label semantics.
	lab, err := st.Label(ch)
	if err != nil {
		t.Fatal(err)
	}
	rootLab, _ := st.Label(st.Root())
	if !rootLab.Contains(lab) {
		t.Fatal("root must contain the new chapter")
	}
	anc, _ := st.IsAncestor(st.Root(), ch)
	if !anc {
		t.Fatal("IsAncestor broken")
	}
	if cmp, _ := st.Compare(st.Root(), ch); cmp != -1 {
		t.Fatalf("root should precede chapter: %d", cmp)
	}
	// Delete and compact.
	if err := st.Delete(ch); err != nil {
		t.Fatal(err)
	}
	titles, _ = st.Query("book//title")
	if len(titles) != 2 {
		t.Fatalf("after delete: %d titles", len(titles))
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
	// Serialization still parses.
	if _, err := OpenString(st.String(), DefaultParams); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

// TestStoreConcurrentReaders runs queries from many goroutines while a
// writer inserts, exercising the RWMutex discipline under the race
// detector.
func TestStoreConcurrentReaders(t *testing.T) {
	st, err := OpenString(`<r><a/><a/><a/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Query("//a"); err != nil {
					t.Error(err)
					return
				}
				_ = st.BitsPerLabel()
				_ = st.Stats()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := st.InsertElement(st.Root(), i%3, "a"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	res, _ := st.Query("//a")
	if len(res) != 203 {
		t.Fatalf("got %d a's", len(res))
	}
}

// TestTreeFacade drives the raw list-labeling API.
func TestTreeFacade(t *testing.T) {
	tr, err := New(Params{F: 4, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := tr.Load(8)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2 golden values through the public API.
	want := []uint64{0, 1, 3, 4, 9, 10, 12, 13}
	for i, lf := range leaves {
		if lf.Num() != want[i] {
			t.Fatalf("leaf %d = %d, want %d", i, lf.Num(), want[i])
		}
	}
	if _, err := New(Params{F: 5, S: 2}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad params: %v", err)
	}
}

// TestVirtualFacade checks the virtual tree through the public API.
func TestVirtualFacade(t *testing.T) {
	vt, err := NewVirtual(Params{F: 4, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := vt.Load(8)
	if err != nil {
		t.Fatal(err)
	}
	if labels[4] != 9 {
		t.Fatalf("virtual bulk load diverged: %v", labels)
	}
	if _, err := vt.InsertAfter(labels[0]); err != nil {
		t.Fatal(err)
	}
	if err := vt.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestTuningFacade sanity-checks the §3.2 helpers.
func TestTuningFacade(t *testing.T) {
	s := SuggestParams(1e6)
	if err := s.Params.Validate(); err != nil {
		t.Fatalf("suggested params invalid: %v", err)
	}
	if s.Cost <= 0 || s.Bits <= 0 {
		t.Fatalf("degenerate suggestion %+v", s)
	}
	constrained, err := SuggestParamsUnderBits(1e6, int(s.Bits)-4)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Bits > s.Bits-4 {
		t.Fatalf("budget ignored: %+v", constrained)
	}
	mixed := SuggestParamsMixed(1e6, 0.9, 8)
	if mixed.Bits > s.Bits {
		t.Fatalf("query-heavy suggestion wider than update-optimal: %+v vs %+v", mixed, s)
	}
	if PredictCost(s.Params, 1e6) != s.Cost {
		t.Fatal("PredictCost inconsistent with SuggestParams")
	}
	if PredictBulkCost(s.Params, 1e6, 64) >= PredictBulkCost(s.Params, 1e6, 1) {
		t.Fatal("bulk prediction should fall with k")
	}
}

// TestStoreSnapshotRestore round-trips a mutated store through the
// persistence layer and verifies labels survive bit-exactly.
func TestStoreSnapshotRestore(t *testing.T) {
	st, err := OpenString(`<lib><book id="1"><title>A</title></book></lib>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertXML(st.Root(), 1, `<book id="2"><title>B</title></book>`); err != nil {
		t.Fatal(err)
	}
	victim, _ := st.Query("//book[@id='1']")
	if len(victim) != 1 {
		t.Fatal("setup query failed")
	}
	titleBefore, _ := st.Query("//title")
	lab0, _ := st.Label(titleBefore[0])

	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Check(); err != nil {
		t.Fatal(err)
	}
	titleAfter, err := st2.Query("//title")
	if err != nil {
		t.Fatal(err)
	}
	if len(titleAfter) != len(titleBefore) {
		t.Fatalf("%d titles after restore", len(titleAfter))
	}
	lab1, _ := st2.Label(titleAfter[0])
	if lab0 != lab1 {
		t.Fatalf("labels changed across restore: %v vs %v", lab0, lab1)
	}
	// The restored store accepts updates.
	if _, err := st2.InsertElement(st2.Root(), 0, "shelf"); err != nil {
		t.Fatal(err)
	}
	if err := st2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreMove exercises subtree relocation through the facade.
func TestStoreMove(t *testing.T) {
	st, err := OpenString(`<r><a><x/></a><b/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	x := st.Elements("x")[0]
	b := st.Elements("b")[0]
	if err := st.Move(x, b, 0); err != nil {
		t.Fatal(err)
	}
	if ok, _ := st.IsAncestor(b, x); !ok {
		t.Fatal("move did not relocate labels")
	}
	res, _ := st.Query("//b/x")
	if len(res) != 1 {
		t.Fatalf("//b/x = %d", len(res))
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreQueryPredicates covers the attribute-predicate extension at the
// facade level.
func TestStoreQueryPredicates(t *testing.T) {
	st, err := OpenString(`<r><u id="1" role="admin"/><u id="2"/><u id="3" role="admin"/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	admins, err := st.Query("//u[@role='admin']")
	if err != nil {
		t.Fatal(err)
	}
	if len(admins) != 2 {
		t.Fatalf("admins = %d", len(admins))
	}
	one, err := st.Query("//u[@role='admin'][@id='3']")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("combined predicates = %d", len(one))
	}
	if _, err := st.Query("//u[bad"); err == nil {
		t.Fatal("malformed predicate should error")
	}
}

// TestStoreLargeRandom drives a bigger random session end to end and
// verifies invariants plus label-order agreement with document order.
func TestStoreLargeRandom(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "<s%d><x/></s%d>", i%5, i%5)
	}
	sb.WriteString("</root>")
	st, err := OpenString(sb.String(), Params{F: 6, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 500; i++ {
		els := st.Elements("*")
		parent := els[rng.Intn(len(els))]
		switch rng.Intn(4) {
		case 0:
			if _, err := st.InsertText(parent, rng.Intn(parent.NumChildren()+1), "t"); err != nil {
				t.Fatal(err)
			}
		case 1:
			frag := "<frag><a/><b>t</b></frag>"
			if _, err := st.InsertXML(parent, rng.Intn(parent.NumChildren()+1), frag); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := st.InsertElement(parent, rng.Intn(parent.NumChildren()+1), "el"); err != nil {
				t.Fatal(err)
			}
		}
		if i%100 == 99 {
			if err := st.Check(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
	// Query results must come back in document order.
	res, err := st.Query("//el")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if cmp, _ := st.Compare(res[i-1], res[i]); cmp != -1 {
			t.Fatalf("result order broken at %d", i)
		}
	}
}
