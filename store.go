package ltree

import (
	"io"
	"strings"
	"sync"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Store is the high-level entry point: a labeled XML document with cached
// query indexes and a read-write lock, safe for concurrent readers with
// exclusive writers. Queries run on the label-based structural-join plan;
// updates maintain the labels through the L-Tree and lazily invalidate the
// index cache.
type Store struct {
	mu    sync.RWMutex
	doc   *document.Doc
	idx   document.TagIndex
	dirty bool
}

// Open parses and labels an XML document.
func Open(r io.Reader, p Params) (*Store, error) {
	doc, err := document.Parse(r, p)
	if err != nil {
		return nil, err
	}
	return &Store{doc: doc, dirty: true}, nil
}

// OpenString is Open over a string.
func OpenString(src string, p Params) (*Store, error) {
	return Open(strings.NewReader(src), p)
}

// FromDocument wraps an already-labeled document.
func FromDocument(doc *Document) *Store {
	return &Store{doc: doc, dirty: true}
}

// Document exposes the underlying labeled document. The caller must not
// mutate it while other goroutines use the Store.
func (s *Store) Document() *Document { return s.doc }

// Root returns the document's root element.
func (s *Store) Root() *Elem { return s.doc.X.Root }

// index returns the tag index, rebuilding it if updates invalidated it.
// Callers hold at least the read lock; the rebuild path upgrades.
func (s *Store) index() document.TagIndex {
	if !s.dirty {
		return s.idx
	}
	s.idx = s.doc.BuildTagIndex()
	s.dirty = false
	return s.idx
}

// Query evaluates a path expression ("/site//item/name", "book//title",
// "//*") with label-based structural joins and returns matches in
// document order.
func (s *Store) Query(expr string) ([]*Elem, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock() // index() may rebuild; keep locking simple and exclusive
	defer s.mu.Unlock()
	return query.Join(s.doc, s.index(), p), nil
}

// QueryNav evaluates the same path by plain navigation (no labels) — the
// reference evaluator, useful for cross-checking and benchmarks.
func (s *Store) QueryNav(expr string) ([]*Elem, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.Nav(s.doc, p), nil
}

// Label returns the node's current (begin, end) label.
func (s *Store) Label(n *Elem) (Label, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Label(n)
}

// IsAncestor decides ancestry purely from labels (the paper's containment
// test).
func (s *Store) IsAncestor(a, d *Elem) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.IsAncestor(a, d)
}

// Compare orders two nodes by document order using labels only.
func (s *Store) Compare(a, b *Elem) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Compare(a, b)
}

// InsertElement creates and labels an empty element as parent's idx-th
// child.
func (s *Store) InsertElement(parent *Elem, idx int, tag string, attrs ...Attr) (*Elem, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, err := s.doc.InsertElement(parent, idx, tag, attrs...)
	if err == nil {
		s.dirty = true
	}
	return el, err
}

// InsertText creates and labels a text node as parent's idx-th child.
func (s *Store) InsertText(parent *Elem, idx int, data string) (*Elem, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	txt, err := s.doc.InsertText(parent, idx, data)
	if err == nil {
		s.dirty = true
	}
	return txt, err
}

// InsertSubtree splices a detached subtree (built with NewElement/NewText
// or parsed via ParseXML) as parent's idx-th child, labeling all of its
// tags with one bulk run insertion (paper §4.1).
func (s *Store) InsertSubtree(parent *Elem, idx int, sub *Elem) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.doc.InsertSubtree(parent, idx, sub)
	if err == nil {
		s.dirty = true
	}
	return err
}

// InsertXML parses an XML fragment and splices it as parent's idx-th
// child in one bulk insertion.
func (s *Store) InsertXML(parent *Elem, idx int, fragment string) (*Elem, error) {
	frag, err := xmldom.ParseString(fragment)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.doc.InsertSubtree(parent, idx, frag.Root); err != nil {
		return nil, err
	}
	s.dirty = true
	return frag.Root, nil
}

// Delete detaches a subtree; its labels become tombstones and nothing is
// relabeled (paper §2.3).
func (s *Store) Delete(n *Elem) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.doc.DeleteSubtree(n)
	if err == nil {
		s.dirty = true
	}
	return err
}

// Move relocates a subtree to become parent's idx-th child, preserving
// node identities: the old labels become tombstones and the subtree is
// relabeled at the target with one bulk run.
func (s *Store) Move(n, parent *Elem, idx int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.doc.Move(n, parent, idx)
	if err == nil {
		s.dirty = true
	}
	return err
}

// Snapshot serializes the store — DOM plus exact label state — so that
// Restore brings it back with bit-identical labels (no relabeling on
// restart; the tree structure is implicit in the labels, paper §4.2).
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Snapshot(w)
}

// Restore reconstructs a Store from a Snapshot stream.
func Restore(r io.Reader) (*Store, error) {
	doc, err := document.Restore(r)
	if err != nil {
		return nil, err
	}
	return &Store{doc: doc, dirty: true}, nil
}

// Compact rebuilds the label tree without tombstones (extension; see
// DESIGN.md §2.3).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.doc.CompactLabels()
	if err == nil {
		s.dirty = true
	}
	return err
}

// Elements returns the elements with the given tag ("*" = all) in
// document order.
func (s *Store) Elements(tag string) []*Elem {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Elements(tag)
}

// Stats returns the accumulated maintenance counters.
func (s *Store) Stats() Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Stats()
}

// BitsPerLabel returns the current label width in bits.
func (s *Store) BitsPerLabel() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Tree().BitsPerLabel()
}

// Write serializes the current document.
func (s *Store) Write(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.X.Write(w)
}

// String serializes the current document to a string.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.X.String()
}

// Check runs the full invariant suite (labels, binding, structure).
func (s *Store) Check() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Check()
}
