package ltree

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Store is the high-level entry point: a labeled XML document behind a
// concurrency-first engine split into a read path and a write path.
//
// Read path: queries run against an immutable tag-index version published
// through an atomic pointer. Readers share an RLock only to keep the DOM
// and label state quiescent — they never build or patch an index, never
// upgrade to the write lock, and proceed in parallel with each other.
// Elements is served from the published index alone and takes no lock at
// all.
//
// Write path: updates maintain the labels through the L-Tree (the paper's
// cheap-relabeling guarantee), collect the index-relevant effects as a
// change batch, and at commit derive the next index version copy-on-write
// — only the posting lists the batch touched are copied (see
// internal/index) — then publish it atomically. Use Update to batch
// several mutations into one commit and one published version.
type Store struct {
	mu  sync.RWMutex // many readers xor one writer over doc
	doc *document.Doc
	idx atomic.Pointer[publishedIndex] // read lock-free
}

// publishedIndex pairs an index version with its number so lock-free
// readers observe both atomically: same version number ⇒ same index.
type publishedIndex struct {
	ix      *index.Index
	version uint64
}

// newStore wires a labeled document into the engine: change tracking on,
// first index version built and published.
func newStore(doc *document.Doc) *Store {
	s := &Store{doc: doc}
	doc.TrackChanges()
	s.idx.Store(&publishedIndex{ix: index.Build(doc), version: 1})
	doc.TakeChanges() // the build reflects everything up to here
	return s
}

// Open parses and labels an XML document.
func Open(r io.Reader, p Params) (*Store, error) {
	doc, err := document.Parse(r, p)
	if err != nil {
		return nil, err
	}
	return newStore(doc), nil
}

// OpenString is Open over a string.
func OpenString(src string, p Params) (*Store, error) {
	return Open(strings.NewReader(src), p)
}

// FromDocument wraps an already-labeled document.
func FromDocument(doc *Document) *Store {
	return newStore(doc)
}

// Document exposes the underlying labeled document. Mutating it directly
// bypasses the engine: the caller must hold off every other goroutine and
// call Refresh afterwards so the published index resyncs.
func (s *Store) Document() *Document { return s.doc }

// Root returns the document's root element.
func (s *Store) Root() *Elem { return s.doc.X.Root }

// IndexVersion returns the published tag-index version number. It grows
// by one per committed write batch — two queries seeing the same version
// saw the same index.
func (s *Store) IndexVersion() uint64 { return s.idx.Load().version }

// commitLocked folds the write batch recorded since the last commit into
// the next index version and publishes it. Caller holds the write lock.
func (s *Store) commitLocked() {
	ch := s.doc.TakeChanges()
	if ch.Empty() {
		return
	}
	cur := s.idx.Load()
	s.idx.Store(&publishedIndex{ix: cur.ix.Apply(s.doc, ch), version: cur.version + 1})
}

// Query evaluates a path expression ("/site//item/name", "book//title",
// "//*") with label-based structural joins over the published index and
// returns matches in document order. Readers run concurrently: the read
// lock only keeps writers from mutating the DOM mid-join; no index is
// built or patched here.
func (s *Store) Query(expr string) ([]*Elem, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.Join(s.doc, s.idx.Load().ix, p), nil
}

// QueryNav evaluates the same path by plain navigation (no labels) — the
// reference evaluator, useful for cross-checking and benchmarks.
func (s *Store) QueryNav(expr string) ([]*Elem, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.Nav(s.doc, p), nil
}

// Label returns the node's current (begin, end) label.
func (s *Store) Label(n *Elem) (Label, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Label(n)
}

// IsAncestor decides ancestry purely from labels (the paper's containment
// test).
func (s *Store) IsAncestor(a, d *Elem) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.IsAncestor(a, d)
}

// Compare orders two nodes by document order using labels only.
func (s *Store) Compare(a, b *Elem) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Compare(a, b)
}

// Elements returns the elements with the given tag ("*" = all) in
// document order, straight from the published index — no lock taken.
func (s *Store) Elements(tag string) []*Elem {
	posts := s.idx.Load().ix.Postings(tag)
	out := make([]*Elem, len(posts))
	for i, e := range posts {
		out[i] = e.Node
	}
	return out
}

// Update runs fn as one write batch: every mutation made through the
// Batch lands in the same change set, and a single index version is
// derived and published when fn returns. Batching amortizes the
// copy-on-write patching across all the mutations. Update holds the
// write lock for the duration of fn.
//
// A Batch is not a transaction: an error from fn rolls nothing back —
// the commit still publishes whatever fn changed, keeping the index in
// sync with the document. Callers needing rollback should SaveVersion
// first and LoadVersion on failure.
func (s *Store) Update(fn func(*Batch) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.commitLocked()
	return fn(&Batch{doc: s.doc})
}

// Batch is the write handle passed to Update. It is only valid during
// the Update call and must not escape it.
type Batch struct {
	doc *document.Doc
}

// InsertElement creates and labels an empty element as parent's idx-th
// child.
func (tx *Batch) InsertElement(parent *Elem, idx int, tag string, attrs ...Attr) (*Elem, error) {
	return tx.doc.InsertElement(parent, idx, tag, attrs...)
}

// InsertText creates and labels a text node as parent's idx-th child.
func (tx *Batch) InsertText(parent *Elem, idx int, data string) (*Elem, error) {
	return tx.doc.InsertText(parent, idx, data)
}

// InsertSubtree splices a detached subtree as parent's idx-th child with
// one bulk run insertion (paper §4.1).
func (tx *Batch) InsertSubtree(parent *Elem, idx int, sub *Elem) error {
	return tx.doc.InsertSubtree(parent, idx, sub)
}

// InsertXML parses an XML fragment and splices it as parent's idx-th
// child in one bulk insertion.
func (tx *Batch) InsertXML(parent *Elem, idx int, fragment string) (*Elem, error) {
	frag, err := xmldom.ParseString(fragment)
	if err != nil {
		return nil, err
	}
	if err := tx.doc.InsertSubtree(parent, idx, frag.Root); err != nil {
		return nil, err
	}
	return frag.Root, nil
}

// Delete detaches a subtree; its labels become tombstones and nothing is
// relabeled (paper §2.3).
func (tx *Batch) Delete(n *Elem) error { return tx.doc.DeleteSubtree(n) }

// Move relocates a subtree to become parent's idx-th child.
func (tx *Batch) Move(n, parent *Elem, idx int) error { return tx.doc.Move(n, parent, idx) }

// InsertElement creates and labels an empty element as parent's idx-th
// child.
func (s *Store) InsertElement(parent *Elem, idx int, tag string, attrs ...Attr) (*Elem, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.commitLocked()
	return s.doc.InsertElement(parent, idx, tag, attrs...)
}

// InsertText creates and labels a text node as parent's idx-th child.
func (s *Store) InsertText(parent *Elem, idx int, data string) (*Elem, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.commitLocked()
	return s.doc.InsertText(parent, idx, data)
}

// InsertSubtree splices a detached subtree (built with NewElement/NewText
// or parsed via ParseXML) as parent's idx-th child, labeling all of its
// tags with one bulk run insertion (paper §4.1).
func (s *Store) InsertSubtree(parent *Elem, idx int, sub *Elem) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.commitLocked()
	return s.doc.InsertSubtree(parent, idx, sub)
}

// InsertXML parses an XML fragment and splices it as parent's idx-th
// child in one bulk insertion.
func (s *Store) InsertXML(parent *Elem, idx int, fragment string) (*Elem, error) {
	frag, err := xmldom.ParseString(fragment)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.commitLocked()
	if err := s.doc.InsertSubtree(parent, idx, frag.Root); err != nil {
		return nil, err
	}
	return frag.Root, nil
}

// Delete detaches a subtree; its labels become tombstones and nothing is
// relabeled (paper §2.3).
func (s *Store) Delete(n *Elem) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.commitLocked()
	return s.doc.DeleteSubtree(n)
}

// Move relocates a subtree to become parent's idx-th child, preserving
// node identities: the old labels become tombstones and the subtree is
// relabeled at the target with one bulk run.
func (s *Store) Move(n, parent *Elem, idx int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.commitLocked()
	return s.doc.Move(n, parent, idx)
}

// Refresh resyncs the published index after direct mutations of the
// underlying Document. It is a no-op when nothing changed.
func (s *Store) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitLocked()
}

// Snapshot serializes the store — DOM plus exact label state, snapshot
// format v2 — so that Restore brings it back with bit-identical labels
// (no relabeling on restart; the tree structure is implicit in the
// labels, paper §4.2).
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Snapshot(w)
}

// Restore reconstructs a Store from a Snapshot stream (format v2 or the
// legacy v1 gob format).
func Restore(r io.Reader) (*Store, error) {
	doc, err := document.Restore(r)
	if err != nil {
		return nil, err
	}
	return newStore(doc), nil
}

// Backend is a versioned snapshot store: every save appends a new
// version, old versions stay readable until pruned. See DESIGN.md §5.3.
type Backend = storage.Backend

// ErrNoVersion reports a missing snapshot version.
var ErrNoVersion = storage.ErrNoVersion

// NewMemoryBackend returns an in-process Backend (tests, ephemeral
// stores).
func NewMemoryBackend() Backend { return storage.NewMemory() }

// NewFileBackend opens (creating if needed) a directory-backed Backend:
// one file per version, crash-safe writes.
func NewFileBackend(dir string) (Backend, error) { return storage.NewFile(dir) }

// SaveVersion snapshots the store into a storage backend as the next
// version and returns its number. Old versions stay readable until
// pruned, so a mis-applied batch can be rolled back by loading an
// earlier version.
func (s *Store) SaveVersion(b Backend) (uint64, error) {
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		return 0, err
	}
	return b.Put(buf.Bytes())
}

// LoadVersion reconstructs a Store from one stored snapshot version.
func LoadVersion(b Backend, version uint64) (*Store, error) {
	data, err := b.Get(version)
	if err != nil {
		return nil, err
	}
	return Restore(bytes.NewReader(data))
}

// LoadLatest reconstructs a Store from the newest stored snapshot.
func LoadLatest(b Backend) (*Store, error) {
	_, data, err := b.Latest()
	if err != nil {
		return nil, err
	}
	return Restore(bytes.NewReader(data))
}

// Compact rebuilds the label tree without tombstones (extension; see
// DESIGN.md §2.3). Compaction relabels everything, so the index is
// rebuilt outright rather than patched.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.doc.CompactLabels()
	s.doc.TakeChanges() // everything moved; a patch would refresh it all anyway
	s.idx.Store(&publishedIndex{ix: index.Build(s.doc), version: s.idx.Load().version + 1})
	return err
}

// Stats returns the accumulated maintenance counters.
func (s *Store) Stats() Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Stats()
}

// BitsPerLabel returns the current label width in bits.
func (s *Store) BitsPerLabel() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Tree().BitsPerLabel()
}

// Write serializes the current document.
func (s *Store) Write(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.X.Write(w)
}

// String serializes the current document to a string.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.X.String()
}

// Check runs the full invariant suite (labels, binding, structure) plus
// the engine's own: the published index must agree with a fresh build.
func (s *Store) Check() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.doc.Check(); err != nil {
		return err
	}
	return index.Verify(s.idx.Load().ix, s.doc)
}
