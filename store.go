package ltree

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Store is the high-level entry point: a labeled XML document behind a
// concurrency-first engine split into a read path and a write path.
//
// Read path: queries run against an immutable tag-index version published
// through an atomic pointer. Readers share an RLock only to keep the DOM
// and label state quiescent — they never build or patch an index, never
// upgrade to the write lock, and proceed in parallel with each other.
// Elements is served from the published index alone and takes no lock at
// all.
//
// Write path: updates maintain the labels through the L-Tree (the paper's
// cheap-relabeling guarantee), collect the index-relevant effects as a
// change batch, and at commit derive the next index version copy-on-write
// — only the posting lists the batch touched are copied (see
// internal/index) — then publish it atomically. Use Update to batch
// several mutations into one commit and one published version.
type Store struct {
	mu  sync.RWMutex // many readers xor one writer over doc
	doc *document.Doc

	// vers is the published-version registry: the current index version is
	// read lock-free, and read transactions (View/SnapshotView) pin the
	// version they captured so it stays attachable until they end. See
	// txn.go for the read-transaction surface.
	vers *index.Retained

	// wal, when non-nil, receives every committed batch as one appended
	// log record (see WithWAL); commits are then durable without
	// rewriting a snapshot. walErr, once set, suspends appending: the log
	// is missing a committed batch, so appending later batches would
	// leave a logical hole that poisons recovery of the whole tail. A
	// successful Checkpoint clears it (the snapshot covers the missed
	// batches and truncates the log).
	wal    storage.WALBackend
	walErr error

	// walPolicy, when enabled, checkpoints automatically at commit time
	// once the live log outgrows its thresholds (see AutoCheckpoint).
	walPolicy walPolicy

	// bump is the watch broadcast: closed and replaced under watchMu on
	// every published index version, so any number of watchers can wait
	// for "something newer than what I last saw" without polling
	// (watch.go). Guarded by its own mutex — publishers hold the write
	// lock, watchers must not.
	watchMu sync.Mutex
	bump    chan struct{}
}

// walPolicy is the auto-checkpoint configuration attached by WithWAL
// options. The zero value disables auto-checkpointing.
type walPolicy struct {
	maxBytes   int64
	maxRecords int
}

func (p walPolicy) enabled() bool { return p.maxBytes > 0 || p.maxRecords > 0 }

// exceeded reports whether a live log of the given size trips the policy.
func (p walPolicy) exceeded(bytes int64, records int) bool {
	return (p.maxBytes > 0 && bytes >= p.maxBytes) ||
		(p.maxRecords > 0 && records >= p.maxRecords)
}

// WALOption configures WithWAL.
type WALOption func(*walPolicy)

// AutoCheckpoint makes the store checkpoint automatically: after a commit
// is appended, if the live log (records since the last checkpoint) has
// reached maxBytes bytes or maxRecords records, the commit triggers a
// Checkpoint — snapshotting the store and truncating the log — before
// returning. Either threshold can be 0 to disable it; auto-checkpointing
// is off entirely by default. The backend must report its live log size
// (the built-in WAL does); WithWAL rejects the option otherwise.
func AutoCheckpoint(maxBytes int64, maxRecords int) WALOption {
	return func(p *walPolicy) {
		p.maxBytes = maxBytes
		p.maxRecords = maxRecords
	}
}

// liveLogger is the optional capability auto-checkpointing needs from a
// WAL backend: the size of the log appended since the last checkpoint.
type liveLogger interface {
	LiveLog() (bytes int64, records int)
}

// newStore wires a labeled document into the engine: change tracking on,
// first index version built and published.
func newStore(doc *document.Doc) *Store {
	s := &Store{doc: doc, bump: make(chan struct{})}
	doc.TrackChanges()
	s.vers = index.NewRetained(index.Build(doc))
	doc.TakeChanges() // the build reflects everything up to here
	return s
}

// publish registers the next index version and wakes every watcher. It
// is the single seam all publish sites share — live commits, the
// rebuild-on-error path, compaction, and shipped-batch apply — so
// change feeds observe every version no matter which path produced it.
func (s *Store) publish(ix *index.Index) uint64 {
	n := s.vers.Publish(ix)
	s.watchMu.Lock()
	close(s.bump)
	s.bump = make(chan struct{})
	s.watchMu.Unlock()
	return n
}

// bumpChan returns the current broadcast channel; it is closed as soon
// as a version newer than the caller's last read publishes.
func (s *Store) bumpChan() <-chan struct{} {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return s.bump
}

// Open parses and labels an XML document.
func Open(r io.Reader, p Params) (*Store, error) {
	doc, err := document.Parse(r, p)
	if err != nil {
		return nil, err
	}
	return newStore(doc), nil
}

// OpenString is Open over a string.
func OpenString(src string, p Params) (*Store, error) {
	return Open(strings.NewReader(src), p)
}

// FromDocument wraps an already-labeled document.
func FromDocument(doc *Document) *Store {
	return newStore(doc)
}

// Document exposes the underlying labeled document. Mutating it directly
// bypasses the engine: the caller must hold off every other goroutine and
// call Refresh afterwards so the published index resyncs.
func (s *Store) Document() *Document { return s.doc }

// Root returns the document's root element.
func (s *Store) Root() *Elem { return s.doc.X.Root }

// IndexVersion returns the published tag-index version number. It grows
// by one per committed write batch — two queries seeing the same version
// saw the same index. To make a whole sequence of reads observe one
// version, open a read transaction instead (View, SnapshotView).
func (s *Store) IndexVersion() uint64 { return s.vers.Current().N }

// commitLocked folds the write batch recorded since the last commit into
// the next index version, publishes it, and — when a WAL is attached —
// appends the batch's logical ops as one fsync'd log record (triggering
// an auto-checkpoint when the policy says the log outgrew its budget).
// Caller holds the write lock. The index is published even when the
// append fails, so the in-memory engine stays consistent; the returned
// error then means "this commit may not be durable" and the caller
// should checkpoint or stop trusting the log.
func (s *Store) commitLocked() error {
	if err := s.advanceIndexLocked(); err != nil {
		return err
	}
	ops := s.doc.TakeOps()
	if err := s.appendOpsLocked(ops); err != nil {
		return err
	}
	return s.maybeAutoCheckpointLocked()
}

// advanceIndexLocked derives and publishes the next index version from
// the pending change batch. If the incremental patch reports the batch
// contradicts the document — an indexed entry unbound with no removal
// record — the index is rebuilt from the document outright (so readers
// never see a quietly shrunken version) and the violation is returned as
// an error: the store stays consistent but fails loudly.
func (s *Store) advanceIndexLocked() error {
	ch := s.doc.TakeChanges()
	if ch.Empty() {
		return nil
	}
	cur := s.vers.Current()
	next, err := cur.Ix.Apply(s.doc, ch)
	if err != nil {
		s.publish(index.Build(s.doc))
		return fmt.Errorf("ltree: index patch rejected the change batch (index rebuilt): %w", err)
	}
	s.publish(next)
	return nil
}

// maybeAutoCheckpointLocked runs the auto-checkpoint policy after a
// logged commit: when the live log has outgrown the configured budget,
// checkpoint now so recovery time stays bounded without the caller
// scheduling anything.
func (s *Store) maybeAutoCheckpointLocked() error {
	if s.wal == nil || !s.walPolicy.enabled() {
		return nil
	}
	ll, ok := s.wal.(liveLogger)
	if !ok {
		return nil // WithWAL rejects this pairing; defensive
	}
	bytes, records := ll.LiveLog()
	if !s.walPolicy.exceeded(bytes, records) {
		return nil
	}
	_, err := s.checkpointLocked()
	return err
}

// appendOpsLocked logs one committed batch to the attached WAL (no-op
// without one), maintaining the suspension state: after a lost batch no
// further batch may be appended — the hole would poison replay of the
// whole tail — until a successful Checkpoint re-bases the log.
func (s *Store) appendOpsLocked(ops []storage.Op) error {
	if s.wal == nil || len(ops) == 0 {
		return nil
	}
	if s.walErr != nil {
		return fmt.Errorf("ltree: wal suspended after a lost batch (Checkpoint to recover): %w", s.walErr)
	}
	// Stamp the batch with the just-published index root hash (~35 B on
	// the wire). Replay skips the stamp; followers compare it against
	// their own recomputed root after applying the batch, turning silent
	// divergence into a loud ErrReplicaDiverged at the acking seam.
	ops = append(ops, storage.Op{Kind: storage.OpStamp, Root: [32]byte(s.vers.Current().Ix.RootHash())})
	payload, err := storage.EncodeOps(ops)
	if err != nil {
		s.walErr = err
		return fmt.Errorf("ltree: wal encode: %w", err)
	}
	if _, err := s.wal.AppendBatch(payload); err != nil {
		s.walErr = err
		return fmt.Errorf("ltree: wal append: %w", err)
	}
	return nil
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Query evaluates a path expression ("/site//item/name", "book//title",
// "//*") with label-based structural joins and returns matches in
// document order. It is the compatibility layer over the transactional
// read path: a single-shot View that pins one index version, streams the
// lazy pipeline, and collects. For mutually consistent multi-read
// snapshots or streaming results without materializing, use View /
// SnapshotView and Txn.Query directly (txn.go).
//
// Prefer the transactional surface for new code: this eager wrapper is
// kept for compatibility and materializes every match up front, where
// Txn.Query streams lazily and composes with the rest of a pinned read.
func (s *Store) Query(expr string) ([]*Elem, error) {
	return s.evalPath(expr, func(tx *Txn, p *query.Path) []*Elem {
		return tx.resultsFor(p).Collect()
	})
}

// QueryNav evaluates the same path by plain navigation (no labels) — the
// reference evaluator, useful for cross-checking and benchmarks. Like
// Query it is a single-shot View wrapper; see Txn.QueryNav for the
// consistency caveat (navigation reads the live DOM, not the pinned
// snapshot). Like Query, prefer the transactional surface for new code.
func (s *Store) QueryNav(expr string) ([]*Elem, error) {
	return s.evalPath(expr, func(tx *Txn, p *query.Path) []*Elem {
		return tx.navFor(p)
	})
}

// evalPath is the one parse/eval funnel both query entry points share:
// parse once, evaluate inside a single-shot read transaction. The
// transaction borrows the current version instead of pinning it —
// holding the immutable Version keeps the index alive on its own, and
// registry accounting only matters for handles that must stay
// attachable by number (SnapshotAt) — so the hottest read path costs a
// lock-free load, not two global mutex acquisitions.
func (s *Store) evalPath(expr string, eval func(*Txn, *query.Path) []*Elem) ([]*Elem, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	tx := &Txn{s: s, ver: s.vers.Current()}
	return eval(tx, p), nil
}

// Label returns the node's current (begin, end) label.
func (s *Store) Label(n *Elem) (Label, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Label(n)
}

// IsAncestor decides ancestry purely from labels (the paper's containment
// test).
func (s *Store) IsAncestor(a, d *Elem) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.IsAncestor(a, d)
}

// Compare orders two nodes by document order using labels only.
func (s *Store) Compare(a, b *Elem) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Compare(a, b)
}

// Elements returns the elements with the given tag ("*" = all) in
// document order, streamed straight off the published index's chunks —
// no lock taken, no posting list materialized. Like Query, it is a
// single-shot read over a borrowed current version; Txn.Elements is the
// snapshot-pinned equivalent.
func (s *Store) Elements(tag string) []*Elem {
	tx := Txn{s: s, ver: s.vers.Current()}
	return tx.Elements(tag)
}

// Update runs fn as one write batch: every mutation made through the
// Batch lands in the same change set, and a single index version is
// derived and published when fn returns. Batching amortizes the
// copy-on-write patching across all the mutations. Update holds the
// write lock for the duration of fn.
//
// A Batch is not a transaction: an error from fn rolls nothing back —
// the commit still publishes (and, with a WAL attached, logs) whatever fn
// changed, keeping the index and the log in sync with the document.
// Callers needing rollback should SaveVersion first and LoadVersion on
// failure.
func (s *Store) Update(fn func(*Batch) error) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deferred so a panic in fn still commits: the index (and WAL) must
	// reflect whatever fn mutated before the panic unwinds past us.
	defer func() {
		err = firstErr(err, s.commitLocked())
	}()
	return fn(&Batch{doc: s.doc})
}

// Batch is the write handle passed to Update. It is only valid during
// the Update call and must not escape it.
type Batch struct {
	doc *document.Doc
}

// InsertElement creates and labels an empty element as parent's idx-th
// child.
func (tx *Batch) InsertElement(parent *Elem, idx int, tag string, attrs ...Attr) (*Elem, error) {
	return tx.doc.InsertElement(parent, idx, tag, attrs...)
}

// InsertText creates and labels a text node as parent's idx-th child.
func (tx *Batch) InsertText(parent *Elem, idx int, data string) (*Elem, error) {
	return tx.doc.InsertText(parent, idx, data)
}

// InsertSubtree splices a detached subtree as parent's idx-th child with
// one bulk run insertion (paper §4.1).
func (tx *Batch) InsertSubtree(parent *Elem, idx int, sub *Elem) error {
	return tx.doc.InsertSubtree(parent, idx, sub)
}

// InsertXML parses an XML fragment and splices it as parent's idx-th
// child in one bulk insertion.
func (tx *Batch) InsertXML(parent *Elem, idx int, fragment string) (*Elem, error) {
	frag, err := xmldom.ParseString(fragment)
	if err != nil {
		return nil, err
	}
	if err := tx.doc.InsertSubtree(parent, idx, frag.Root); err != nil {
		return nil, err
	}
	return frag.Root, nil
}

// Delete detaches a subtree; its labels become tombstones and nothing is
// relabeled (paper §2.3).
func (tx *Batch) Delete(n *Elem) error { return tx.doc.DeleteSubtree(n) }

// Move relocates a subtree to become parent's idx-th child.
func (tx *Batch) Move(n, parent *Elem, idx int) error { return tx.doc.Move(n, parent, idx) }

// InsertElement creates and labels an empty element as parent's idx-th
// child.
func (s *Store) InsertElement(parent *Elem, idx int, tag string, attrs ...Attr) (el *Elem, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { err = firstErr(err, s.commitLocked()) }()
	return s.doc.InsertElement(parent, idx, tag, attrs...)
}

// InsertText creates and labels a text node as parent's idx-th child.
func (s *Store) InsertText(parent *Elem, idx int, data string) (txt *Elem, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { err = firstErr(err, s.commitLocked()) }()
	return s.doc.InsertText(parent, idx, data)
}

// InsertSubtree splices a detached subtree (built with NewElement/NewText
// or parsed via ParseXML) as parent's idx-th child, labeling all of its
// tags with one bulk run insertion (paper §4.1).
func (s *Store) InsertSubtree(parent *Elem, idx int, sub *Elem) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { err = firstErr(err, s.commitLocked()) }()
	return s.doc.InsertSubtree(parent, idx, sub)
}

// InsertXML parses an XML fragment and splices it as parent's idx-th
// child in one bulk insertion.
func (s *Store) InsertXML(parent *Elem, idx int, fragment string) (el *Elem, err error) {
	frag, err := xmldom.ParseString(fragment)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { err = firstErr(err, s.commitLocked()) }()
	if err := s.doc.InsertSubtree(parent, idx, frag.Root); err != nil {
		return nil, err
	}
	return frag.Root, nil
}

// Delete detaches a subtree; its labels become tombstones and nothing is
// relabeled (paper §2.3).
func (s *Store) Delete(n *Elem) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { err = firstErr(err, s.commitLocked()) }()
	return s.doc.DeleteSubtree(n)
}

// Move relocates a subtree to become parent's idx-th child, preserving
// node identities: the old labels become tombstones and the subtree is
// relabeled at the target with one bulk run.
func (s *Store) Move(n, parent *Elem, idx int) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { err = firstErr(err, s.commitLocked()) }()
	return s.doc.Move(n, parent, idx)
}

// Refresh resyncs the published index after direct mutations of the
// underlying Document, committing them exactly like a batch (mutations
// made through the Document's methods are op-logged, so on a WAL-backed
// store Refresh persists them too). It is a no-op when nothing changed.
// Only raw DOM edits below the document layer (SetData, SetAttr, or
// xmldom surgery) are invisible to both the change tracker and the op
// log — those need a Checkpoint to become durable. Queries stay correct
// in the meantime: a raw SetAttr bumps the document root's attribute
// generation, so chunk summaries built before it stop filtering (stale
// summaries would otherwise falsely prove absence) until the next
// commit or Refresh rebuilds them.
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked()
}

// Snapshot serializes the store — DOM plus exact label state, snapshot
// format v2 — so that Restore brings it back with bit-identical labels
// (no relabeling on restart; the tree structure is implicit in the
// labels, paper §4.2). The stream is stamped with the published index's
// root hash so restore and backup verification are a hash compare, not
// a byte compare; the stamp is deterministic, so two stores in the same
// state still snapshot byte-identically. The one case left unstamped is
// uncommitted direct Document() mutations — the published index no
// longer describes the document, and an honest restore would flag the
// stamp as divergence.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked(w)
}

// snapshotLocked is Snapshot's body for callers already holding a lock.
func (s *Store) snapshotLocked(w io.Writer) error {
	if s.doc.ChangesPending() {
		return s.doc.Snapshot(w)
	}
	return s.doc.SnapshotStamped(w, [32]byte(s.vers.Current().Ix.RootHash()))
}

// RootHash returns the content hash of the published index version: a
// commutative multiset digest over every (tag, label, level) entry, so
// two stores holding the same logical index report the same hash no
// matter how their chunks happen to be partitioned or how the state was
// reached (live commits, replay, snapshot restore). Equal hashes mean
// equal index content; see DESIGN.md §10.
func (s *Store) RootHash() Hash { return s.vers.Current().Ix.RootHash() }

// Restore reconstructs a Store from a Snapshot stream (format v2 or the
// legacy v1 gob format).
func Restore(r io.Reader) (*Store, error) {
	doc, err := document.Restore(r)
	if err != nil {
		return nil, err
	}
	s := newStore(doc)
	if err := s.verifyRestoredRoot(); err != nil {
		return nil, err
	}
	return s, nil
}

// verifyRestoredRoot compares the index root hash a restore snapshot was
// stamped with against the index just built from the restored document.
// A mismatch means the snapshot bytes don't describe the state the
// writer thought it saved — bit rot, a torn copy a CRC missed, or a
// labeling bug — and surfaces as ErrReplicaDiverged instead of a store
// that silently answers queries from corrupt state. Unstamped (v1 or
// pre-hash) snapshots pass vacuously.
func (s *Store) verifyRestoredRoot() error {
	want, ok := s.doc.RestoredIndexRoot()
	if !ok {
		return nil
	}
	if got := s.vers.Current().Ix.RootHash(); got != index.Hash(want) {
		return fmt.Errorf("ltree: snapshot stamped index root %x, restored document indexes to %x: %w",
			want, got, ErrReplicaDiverged)
	}
	return nil
}

// Backend is a versioned snapshot store: every save appends a new
// version, old versions stay readable until pruned. See DESIGN.md §5.3.
type Backend = storage.Backend

// NewMemoryBackend returns an in-process Backend (tests, ephemeral
// stores).
func NewMemoryBackend() Backend { return storage.NewMemory() }

// NewFileBackend opens (creating if needed) a directory-backed Backend:
// one file per version, crash-safe writes.
func NewFileBackend(dir string) (Backend, error) { return storage.NewFile(dir) }

// WALBackend is a write-ahead-logged Backend: commits append one framed,
// CRC-checked, fsync'd record per batch instead of rewriting a snapshot;
// a checkpoint writes a snapshot and truncates the log. See DESIGN.md §6.
type WALBackend = storage.WALBackend

// WALOptions tunes a WAL backend (group-commit sync cadence).
type WALOptions = storage.WALOptions

// NewWALBackend opens (creating if needed) a write-ahead log in dir. A
// torn or corrupt log tail left by a crash is detected and truncated on
// open. Recover a store from it with LoadLatest; attach it to a fresh
// store with WithWAL.
func NewWALBackend(dir string, opt WALOptions) (WALBackend, error) {
	return storage.OpenWAL(dir, opt)
}

// errStopReplay is a sentinel used to probe a WAL for appended batches.
var errStopReplay = errors.New("ltree: stop replay")

// WithWAL attaches an empty WAL backend to the store and switches it to
// incremental persistence: every committed batch is appended to the log
// as one record of logical ops, and Checkpoint writes a snapshot and
// truncates the log. The attach writes the baseline checkpoint (the
// current document state) so recovery always has a snapshot to replay
// onto. A WAL that already holds history belongs to some other store —
// recover it with LoadLatest instead; attaching it here is an error.
//
// Once attached, mutate through the Store/Batch API (or through the
// Document's methods followed by Refresh, which commits them). Only raw
// DOM edits below the document layer (SetData and friends) escape the op
// log; those need a Checkpoint to become durable.
//
// Options tune the attachment; see AutoCheckpoint for the size/record
// policy that keeps the log truncated without manual Checkpoint calls.
func (s *Store) WithWAL(w WALBackend, opts ...WALOption) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return errors.New("ltree: store already has a WAL attached")
	}
	var pol walPolicy
	for _, opt := range opts {
		opt(&pol)
	}
	if pol.enabled() {
		if _, ok := w.(liveLogger); !ok {
			return errors.New("ltree: AutoCheckpoint needs a backend that reports its live log size (LiveLog)")
		}
	}
	if _, _, err := w.Latest(); err == nil {
		return errors.New("ltree: WAL already holds a checkpoint; recover it with LoadLatest")
	} else if !errors.Is(err, ErrNoVersion) {
		return err
	}
	hasBatches := false
	if err := w.ReplaySince(0, func(uint64, []byte) error {
		hasBatches = true
		return errStopReplay
	}); err != nil && !errors.Is(err, errStopReplay) {
		return err
	}
	if hasBatches {
		return errors.New("ltree: WAL already holds log records; recover it with LoadLatest")
	}
	var buf bytes.Buffer
	if err := s.snapshotLocked(&buf); err != nil {
		return err
	}
	if _, err := w.Checkpoint(buf.Bytes()); err != nil {
		return err
	}
	// Only now that the baseline is durable: a failed attach must not
	// leave op recording (and its per-mutation path/label bookkeeping)
	// permanently on for a store with no WAL.
	s.doc.TrackOps()
	s.wal = w
	s.walPolicy = pol
	return nil
}

// Checkpoint snapshots the store into its WAL and truncates the log: the
// recovery path becomes "this snapshot, no replay" until further commits
// append to the fresh log. Returns the checkpoint's version. Commits are
// O(batch); this is the one deliberately O(document) operation, so run it
// on whatever cadence bounds your recovery time.
//
// Checkpoint is also the repair path after a failed append: the snapshot
// covers the batches the log lost, so a success lifts the suspension and
// commits log again.
func (s *Store) Checkpoint() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// checkpointLocked is Checkpoint's body; the auto-checkpoint policy
// calls it from inside an already-locked commit.
func (s *Store) checkpointLocked() (uint64, error) {
	if s.wal == nil {
		return 0, errors.New("ltree: no WAL attached (WithWAL, or LoadLatest on a WAL backend)")
	}
	// Fold any uncommitted state (direct Document() mutations since the
	// last commit) into this checkpoint: publish the index and discard
	// the pending ops — the snapshot below covers them, and appending
	// them after it would replay them twice.
	if err := s.advanceIndexLocked(); err != nil {
		return 0, err
	}
	s.doc.TakeOps()
	var buf bytes.Buffer
	// advanceIndexLocked just ran, so the published index describes the
	// document exactly — stamp the checkpoint with its root hash. Restore
	// verifies the rebuilt index against it, and the blob tier ships it in
	// manifests for hash-compare backup verification.
	if err := s.doc.SnapshotStamped(&buf, [32]byte(s.vers.Current().Ix.RootHash())); err != nil {
		// The drained ops are gone but the snapshot never happened:
		// appending later batches would leave a hole, so suspend until a
		// checkpoint succeeds.
		s.walErr = firstErr(s.walErr, err)
		return 0, err
	}
	repairing := s.walErr != nil
	v, err := s.wal.Checkpoint(buf.Bytes())
	if err != nil {
		// Whether or not the checkpoint file became visible, the only
		// coherent continuation is another (successful) checkpoint: the
		// drained ops exist nowhere else, and appending past them would
		// poison replay.
		s.walErr = firstErr(s.walErr, err)
		return 0, err
	}
	if repairing {
		// This checkpoint covers batches the log lost: the op stream is
		// re-based. Attached log-shipping followers can no longer
		// reconstruct this store from the stream alone — mark the WAL so
		// their tailers stop (ErrShipRebased) instead of silently
		// diverging; they re-seed from the checkpoint just written.
		if r, ok := s.wal.(interface{ MarkRebased() }); ok {
			r.MarkRebased()
		}
	}
	s.walErr = nil
	return v, nil
}

// applyShippedLocked applies one durable WAL batch payload — recovery
// replay and log-shipping followers share this path. The ops decode and
// replay through the normal mutation paths (document.ApplyPayload
// verifies the recorded labels bit-for-bit), then the index advances
// exactly as a live commit would — one version per batch, patched
// copy-on-write from the change set the replay produced. A batch
// containing a compaction rebuilds the index outright, as Compact does.
// When the batch carries the writer's root-hash stamp, the recomputed
// index root must match it — the O(changed-chunks) integrity check
// that replaces the test-only full-fingerprint oracle in production.
// Caller holds the write lock (or owns the store exclusively, as during
// load).
func (s *Store) applyShippedLocked(payload []byte) error {
	info, err := s.doc.ApplyPayload(payload)
	if err != nil {
		return err
	}
	s.doc.TakeOps() // replay records nothing; drain defensively
	if info.Compacted {
		s.doc.TakeChanges()
		s.publish(index.Build(s.doc))
	} else if err := s.advanceIndexLocked(); err != nil {
		return err
	}
	if info.HasRoot {
		if got := s.vers.Current().Ix.RootHash(); got != index.Hash(info.Root) {
			return fmt.Errorf("ltree: batch stamped root %x, replica recomputed %x: %w",
				info.Root, got, ErrReplicaDiverged)
		}
	}
	return nil
}

// loadWAL recovers a store from a WAL backend: newest checkpoint plus a
// replay of the durable log tail. The WAL stays attached — subsequent
// commits keep appending where the log left off.
func loadWAL(w WALBackend) (*Store, error) {
	seq, data, err := w.Latest()
	if err != nil {
		return nil, err
	}
	doc, err := document.Restore(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	s := newStore(doc)
	if err := s.verifyRestoredRoot(); err != nil {
		return nil, err
	}
	s.doc.TrackOps()
	if err := w.ReplaySince(seq, func(_ uint64, payload []byte) error {
		return s.applyShippedLocked(payload)
	}); err != nil {
		return nil, fmt.Errorf("ltree: wal replay: %w", err)
	}
	s.wal = w
	return s, nil
}

// SaveVersion snapshots the store into a storage backend as the next
// version and returns its number. Old versions stay readable until
// pruned, so a mis-applied batch can be rolled back by loading an
// earlier version.
func (s *Store) SaveVersion(b Backend) (uint64, error) {
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		return 0, err
	}
	return b.Put(buf.Bytes())
}

// LoadVersion reconstructs a Store from one stored snapshot version.
func LoadVersion(b Backend, version uint64) (*Store, error) {
	data, err := b.Get(version)
	if err != nil {
		return nil, err
	}
	return Restore(bytes.NewReader(data))
}

// LoadLatest reconstructs a Store from the newest stored snapshot. For a
// WAL backend this is crash recovery: the newest checkpoint plus a replay
// of the durable log tail (torn or corrupt tail records are discarded),
// and the WAL stays attached so commits keep appending.
func LoadLatest(b Backend) (*Store, error) {
	if w, ok := b.(WALBackend); ok {
		return loadWAL(w)
	}
	_, data, err := b.Latest()
	if err != nil {
		return nil, err
	}
	return Restore(bytes.NewReader(data))
}

// Compact rebuilds the label tree without tombstones (extension; see
// DESIGN.md §2.3). Compaction relabels everything, so the index is
// rebuilt outright rather than patched.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.doc.CompactLabels()
	s.doc.TakeChanges() // everything moved; a patch would refresh it all anyway
	s.publish(index.Build(s.doc))
	// Compaction logs as a single op — replay re-runs the deterministic
	// rebuild, so the log stays O(1) for an O(document) relabeling.
	ops := s.doc.TakeOps()
	if err != nil {
		// The tree may be partially compacted with nothing logged (and
		// any pending direct-mutation ops were just dropped): suspend
		// appends until a Checkpoint captures the actual state.
		if s.wal != nil {
			s.walErr = firstErr(s.walErr, err)
		}
		return err
	}
	return s.appendOpsLocked(ops)
}

// Stats returns the accumulated maintenance counters.
func (s *Store) Stats() Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Stats()
}

// BitsPerLabel returns the current label width in bits.
func (s *Store) BitsPerLabel() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.Tree().BitsPerLabel()
}

// Write serializes the current document.
func (s *Store) Write(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.X.Write(w)
}

// String serializes the current document to a string.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.doc.X.String()
}

// Check runs the full invariant suite (labels, binding, structure) plus
// the engine's own: the published index must agree with a fresh build.
func (s *Store) Check() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.doc.Check(); err != nil {
		return err
	}
	return index.Verify(s.vers.Current().Ix, s.doc)
}
