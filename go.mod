module github.com/ltree-db/ltree

go 1.23
