package ltree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/ltree-db/ltree/internal/query"
)

// ---------------------------------------------------------------------------
// Differential harness: a forest at any shard count must be observationally
// identical to the single-store oracle — one plain Store holding every
// document under one synthetic root, mutated through the raw Batch API with
// none of the forest's routing, registry, or merge machinery. The property
// under test is sharding-invariance: placement and shard count must never
// change what a query returns.
// ---------------------------------------------------------------------------

// fingerprintElem serializes a subtree structurally (tags, attributes
// minus the internal doc-id attribute, text, child order) — the
// label-free identity used to compare forest documents with oracle
// documents, which live in different label spaces by construction.
func fingerprintElem(n *Elem) string {
	var b strings.Builder
	writeFingerprint(&b, n)
	return b.String()
}

func writeFingerprint(b *strings.Builder, n *Elem) {
	if n.Kind() != ElementNode {
		fmt.Fprintf(b, "[%s]", n.Data())
		return
	}
	b.WriteString("<")
	b.WriteString(n.Tag())
	for _, a := range n.Attrs() {
		if a.Name == forestDocAttr {
			continue
		}
		fmt.Fprintf(b, " %s=%s", a.Name, a.Value)
	}
	b.WriteString(">")
	for _, c := range n.Children() {
		writeFingerprint(b, c)
	}
	b.WriteString("</>")
}

// forestOracle is the reference implementation: one Store, every document
// a child of its root, mutated directly.
type forestOracle struct {
	st    *Store
	roots map[string]*Elem
}

func newForestOracle(t *testing.T) *forestOracle {
	t.Helper()
	st, err := OpenString(emptyShardXML, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	return &forestOracle{st: st, roots: make(map[string]*Elem)}
}

func (o *forestOracle) put(t *testing.T, id, src string) {
	t.Helper()
	doc, err := ParseXML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	doc.Root.SetAttr(forestDocAttr, id)
	err = o.st.Update(func(b *Batch) error {
		if old, ok := o.roots[id]; ok {
			if err := b.Delete(old); err != nil {
				return err
			}
		}
		return b.InsertSubtree(o.st.Root(), o.st.Root().NumChildren(), doc.Root)
	})
	if err != nil {
		t.Fatal(err)
	}
	o.roots[id] = doc.Root
}

func (o *forestOracle) del(t *testing.T, id string) {
	t.Helper()
	if err := o.st.Delete(o.roots[id]); err != nil {
		t.Fatal(err)
	}
	delete(o.roots, id)
}

// docID walks a result element up to its document root.
func (o *forestOracle) docID(el *Elem) string {
	for v := el; v != nil; v = v.Parent() {
		if p := v.Parent(); p != nil && p.Parent() == nil {
			id, _ := v.Attr(forestDocAttr)
			return id
		}
	}
	return ""
}

// queryFPs evaluates expr with the forest's own path semantics (rooted
// paths anchor at document roots; the synthetic root is invisible) and
// returns sorted "docID\x00fingerprint" strings.
func (o *forestOracle) queryFPs(t *testing.T, expr string) []string {
	t.Helper()
	p, err := query.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	err = o.st.View(func(tx *Txn) error {
		r := withoutShardRoot(tx.resultsFor(forestPath(p)), o.st.Root())
		for el, ok := r.Next(); ok; el, ok = r.Next() {
			out = append(out, o.docID(el)+"\x00"+fingerprintElem(el))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// forestQueryFPs collects the same observation through the forest's
// scatter-gather path (ForestTxn fan-out, k-way merge, DocOf).
func forestQueryFPs(t *testing.T, f *Forest, expr string) []string {
	t.Helper()
	var out []string
	err := f.View(func(tx *ForestTxn) error {
		r, err := tx.Query(expr)
		if err != nil {
			return err
		}
		for el, ok := r.Next(); ok; el, ok = r.Next() {
			id, _ := f.DocOf(el)
			out = append(out, id+"\x00"+fingerprintElem(el))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// forestStreamElems drains a query through the pinned-Txn streaming
// merge and returns the elements in merged order.
func forestStreamElems(t *testing.T, f *Forest, expr string) []*Elem {
	t.Helper()
	var out []*Elem
	err := f.View(func(tx *ForestTxn) error {
		r, err := tx.Query(expr)
		if err != nil {
			return err
		}
		for el, ok := r.Next(); ok; el, ok = r.Next() {
			out = append(out, el)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

var forestDiffExprs = []string{
	"/a", "/b", "/a//b", "/b//c", "//b", "//c//d", "a/b", "b/c", "//*", "/*//b", "d",
}

// compareForest asserts the forest and the oracle are observationally
// identical: document set, per-document structure, every probe query,
// global counts, and the forest's own invariants.
func compareForest(t *testing.T, f *Forest, o *forestOracle, ctx string) {
	t.Helper()
	wantIDs := make([]string, 0, len(o.roots))
	for id := range o.roots {
		wantIDs = append(wantIDs, id)
	}
	sort.Strings(wantIDs)
	gotIDs := f.Docs()
	if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
		t.Fatalf("%s: docs = %v, want %v", ctx, gotIDs, wantIDs)
	}
	if f.Len() != len(wantIDs) {
		t.Fatalf("%s: Len = %d, want %d", ctx, f.Len(), len(wantIDs))
	}
	for _, id := range wantIDs {
		root, ok := f.Get(id)
		if !ok {
			t.Fatalf("%s: doc %q missing from forest", ctx, id)
		}
		if got, want := fingerprintElem(root), fingerprintElem(o.roots[id]); got != want {
			t.Fatalf("%s: doc %q diverged:\n forest %s\n oracle %s", ctx, id, got, want)
		}
	}
	for _, expr := range forestDiffExprs {
		got := forestQueryFPs(t, f, expr)
		want := o.queryFPs(t, expr)
		if len(got) != len(want) {
			t.Fatalf("%s: query %q: %d results, oracle %d", ctx, expr, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: query %q result %d:\n forest %q\n oracle %q", ctx, expr, i, got[i], want[i])
			}
		}
		// The parallel one-shot Forest.Query must yield the exact element
		// sequence the streaming merge produces — same nodes, same
		// (begin, shard) order.
		par, err := f.Query(expr)
		if err != nil {
			t.Fatalf("%s: Forest.Query(%q): %v", ctx, expr, err)
		}
		streamed := forestStreamElems(t, f, expr)
		if len(par) != len(streamed) {
			t.Fatalf("%s: Forest.Query(%q) = %d elements, streamed %d", ctx, expr, len(par), len(streamed))
		}
		for i := range par {
			if par[i] != streamed[i] {
				t.Fatalf("%s: Forest.Query(%q) element %d diverges from the streamed order", ctx, expr, i)
			}
		}
	}
	if got, want := f.Count("*"), oracleCount(t, o.st, "*")-1; got != want {
		t.Fatalf("%s: Count(*) = %d, want %d", ctx, got, want)
	}
	if got, want := len(f.Elements("b")), oracleCount(t, o.st, "b"); got != want {
		t.Fatalf("%s: Elements(b) = %d, want %d", ctx, got, want)
	}
	if err := f.Check(); err != nil {
		t.Fatalf("%s: Check: %v", ctx, err)
	}
}

func oracleCount(t *testing.T, st *Store, tag string) int {
	t.Helper()
	n := 0
	if err := st.View(func(tx *Txn) error { n = tx.Count(tag); return nil }); err != nil {
		t.Fatal(err)
	}
	return n
}

// --- random document / edit generation -------------------------------------

var forestTestTags = []string{"a", "b", "c", "d"}

func randForestDoc(rng *rand.Rand) string {
	var b strings.Builder
	writeRandElem(&b, rng, 0)
	return b.String()
}

func writeRandElem(b *strings.Builder, rng *rand.Rand, depth int) {
	tag := forestTestTags[rng.Intn(len(forestTestTags))]
	b.WriteString("<" + tag)
	if rng.Intn(3) == 0 {
		fmt.Fprintf(b, " k=\"v%d\"", rng.Intn(3))
	}
	b.WriteString(">")
	if depth < 3 {
		for i, n := 0, rng.Intn(4); i < n; i++ {
			if rng.Intn(5) == 0 {
				fmt.Fprintf(b, "t%d", rng.Intn(9))
			} else {
				writeRandElem(b, rng, depth+1)
			}
		}
	}
	b.WriteString("</" + tag + ">")
}

// randElemPath picks a random element-descendant of root as a child-index
// path — computed on the oracle's structure, replayed on the forest's
// (the trees are structurally identical by induction).
func randElemPath(rng *rand.Rand, root *Elem) []int {
	var path []int
	n := root
	for {
		var elems []int
		for i := 0; i < n.NumChildren(); i++ {
			if n.Child(i).Kind() == ElementNode {
				elems = append(elems, i)
			}
		}
		if len(elems) == 0 || rng.Intn(2) == 0 {
			return path
		}
		i := elems[rng.Intn(len(elems))]
		path = append(path, i)
		n = n.Child(i)
	}
}

func resolveElemPath(root *Elem, path []int) *Elem {
	for _, i := range path {
		root = root.Child(i)
	}
	return root
}

// applyRandomForestOp mutates forest and oracle identically: put a new
// document, replace one, delete one, or edit inside one (insert element,
// insert text, delete a subtree).
func applyRandomForestOp(t *testing.T, rng *rand.Rand, f *Forest, o *forestOracle) {
	t.Helper()
	var ids []string
	for id := range o.roots {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	op := rng.Intn(10)
	switch {
	case op < 3 || len(ids) == 0: // put a fresh document
		id := fmt.Sprintf("doc-%03d", rng.Intn(40))
		if _, ok := o.roots[id]; ok {
			id = fmt.Sprintf("doc-%03d", 40+rng.Intn(40))
		}
		src := randForestDoc(rng)
		if _, err := f.Put(id, src); err != nil {
			t.Fatalf("Put(%q): %v", id, err)
		}
		o.put(t, id, src)
	case op < 4: // replace an existing document wholesale
		id := ids[rng.Intn(len(ids))]
		src := randForestDoc(rng)
		if _, err := f.Put(id, src); err != nil {
			t.Fatalf("replace Put(%q): %v", id, err)
		}
		o.put(t, id, src)
	case op < 5: // delete a document
		id := ids[rng.Intn(len(ids))]
		if err := f.Delete(id); err != nil {
			t.Fatalf("Delete(%q): %v", id, err)
		}
		o.del(t, id)
	default: // edit inside a document
		id := ids[rng.Intn(len(ids))]
		path := randElemPath(rng, o.roots[id])
		kind := rng.Intn(3)
		if kind == 2 && len(path) == 0 {
			kind = 0 // never delete the document root through Update
		}
		var tag, text string
		var at int
		switch kind {
		case 0:
			tag = forestTestTags[rng.Intn(len(forestTestTags))]
		case 1:
			text = fmt.Sprintf("t%d", rng.Intn(9))
		}
		edit := func(b *Batch, root *Elem) error {
			n := resolveElemPath(root, path)
			switch kind {
			case 0:
				at = rng.Intn(n.NumChildren() + 1)
				_, err := b.InsertElement(n, at, tag)
				return err
			case 1:
				at = rng.Intn(n.NumChildren() + 1)
				_, err := b.InsertText(n, at, text)
				return err
			default:
				return b.Delete(n)
			}
		}
		if err := f.Update(id, func(b *Batch, root *Elem) error { return edit(b, root) }); err != nil {
			t.Fatalf("Update(%q): %v", id, err)
		}
		// Replay the identical edit (same path, same slot) on the oracle.
		oroot := o.roots[id]
		err := o.st.Update(func(b *Batch) error {
			n := resolveElemPath(oroot, path)
			switch kind {
			case 0:
				_, err := b.InsertElement(n, at, tag)
				return err
			case 1:
				_, err := b.InsertText(n, at, text)
				return err
			default:
				return b.Delete(n)
			}
		})
		if err != nil {
			t.Fatalf("oracle Update(%q): %v", id, err)
		}
	}
}

// TestForestDifferential is the tentpole's correctness pin: at every
// shard count, a forest driven by a random op stream stays
// observationally identical to the single-store oracle.
func TestForestDifferential(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + shards)))
			f, err := NewForest(ForestOptions{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			o := newForestOracle(t)
			compareForest(t, f, o, "empty")
			for i := 0; i < 70; i++ {
				applyRandomForestOp(t, rng, f, o)
				if i%7 == 0 || i == 69 {
					compareForest(t, f, o, fmt.Sprintf("op %d", i))
				}
			}
		})
	}
}

// TestForestRecoveryDifferential pins the durable path: a WAL-backed
// forest survives Close + parallel OpenForest recovery (with mid-stream
// auto-checkpoints) observationally intact, keeps matching the oracle
// through post-recovery writes, and rejects a shard-count change.
func TestForestRecoveryDifferential(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	opt := ForestOptions{Shards: 4, AutoCheckpointRecords: 5}
	f, err := OpenForest(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	o := newForestOracle(t)
	for i := 0; i < 50; i++ {
		applyRandomForestOp(t, rng, f, o)
	}
	compareForest(t, f, o, "before close")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenForest(dir, ForestOptions{Shards: 7}); !errors.Is(err, ErrForestTopology) {
		t.Fatalf("shard-count change: err = %v, want ErrForestTopology", err)
	}

	// Shards: 0 adopts the manifest's topology.
	f, err = OpenForest(dir, ForestOptions{AutoCheckpointRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Shards() != 4 {
		t.Fatalf("recovered forest has %d shards, want 4", f.Shards())
	}
	// The registry was rebuilt from shard state, not memory: Get must
	// resolve every oracle document before any new write.
	compareForest(t, f, o, "after recovery")
	for i := 0; i < 30; i++ {
		applyRandomForestOp(t, rng, f, o)
	}
	compareForest(t, f, o, "after post-recovery ops")
	if err := f.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	compareForest(t, f, o, "after checkpoint")
}

// TestForestEmptyAndSparse pins the fan-out edge cases: queries against
// a fully empty forest, and against one where most shards are empty.
func TestForestEmptyAndSparse(t *testing.T) {
	f, err := NewForest(ForestOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := f.Query("//a"); err != nil || len(got) != 0 {
		t.Fatalf("empty forest query = %v, %v", got, err)
	}
	if n := len(f.Elements("*")); n != 0 {
		t.Fatalf("empty forest Elements(*) = %d", n)
	}
	if f.Count("*") != 0 || f.Len() != 0 {
		t.Fatalf("empty forest Count/Len = %d/%d", f.Count("*"), f.Len())
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	// One document, three empty shards: the merge must surface exactly it.
	if _, err := f.Put("only", "<a><b/><b/></a>"); err != nil {
		t.Fatal(err)
	}
	if got, err := f.Query("/a//b"); err != nil || len(got) != 2 {
		t.Fatalf("sparse forest query = %d results, err %v; want 2", len(got), err)
	}
	if got := f.Count("*"); got != 3 {
		t.Fatalf("sparse forest Count(*) = %d, want 3", got)
	}
	if id, ok := f.DocOf(f.Elements("b")[0]); !ok || id != "only" {
		t.Fatalf("DocOf = %q, %v", id, ok)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestForestSingleShardMatchesPlainStore pins the degenerate topology: a
// one-shard forest holding one document answers queries exactly like a
// plain Store opened on that document.
func TestForestSingleShardMatchesPlainStore(t *testing.T) {
	const src = "<a><b k=\"v\"><c/></b>text<b><c/><d/></b></a>"
	f, err := NewForest(ForestOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Put("d1", src); err != nil {
		t.Fatal(err)
	}
	plain, err := OpenString(src, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, expr := range []string{"/a", "/a//c", "//b", "b/c", "//*", "a//d"} {
		got, err := f.Query(expr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Query(expr)
		if err != nil {
			t.Fatal(err)
		}
		gotFP := make([]string, len(got))
		wantFP := make([]string, len(want))
		for i, el := range got {
			gotFP[i] = fingerprintElem(el)
		}
		for i, el := range want {
			wantFP[i] = fingerprintElem(el)
		}
		sort.Strings(gotFP)
		sort.Strings(wantFP)
		if fmt.Sprint(gotFP) != fmt.Sprint(wantFP) {
			t.Fatalf("query %q: forest %v, store %v", expr, gotFP, wantFP)
		}
	}
}

// TestForestWriteErrors pins the loud failure modes: unknown ids, empty
// ids, same-document write races (ErrDocBusy), and partitioners that
// route out of range.
func TestForestWriteErrors(t *testing.T) {
	f, err := NewForest(ForestOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Delete("ghost"); !errors.Is(err, ErrNoDoc) {
		t.Fatalf("Delete(ghost) = %v, want ErrNoDoc", err)
	}
	if err := f.Update("ghost", func(*Batch, *Elem) error { return nil }); !errors.Is(err, ErrNoDoc) {
		t.Fatalf("Update(ghost) = %v, want ErrNoDoc", err)
	}
	if _, err := f.Put("", "<a/>"); err == nil {
		t.Fatal("Put with empty id succeeded")
	}
	// A pending registry entry (write in flight) makes every same-doc
	// write fail loudly.
	f.docs["x"] = &forestDoc{shard: 0}
	if _, err := f.Put("x", "<a/>"); !errors.Is(err, ErrDocBusy) {
		t.Fatalf("Put(busy) = %v, want ErrDocBusy", err)
	}
	if err := f.Delete("x"); !errors.Is(err, ErrDocBusy) {
		t.Fatalf("Delete(busy) = %v, want ErrDocBusy", err)
	}
	if err := f.Update("x", func(*Batch, *Elem) error { return nil }); !errors.Is(err, ErrDocBusy) {
		t.Fatalf("Update(busy) = %v, want ErrDocBusy", err)
	}
	delete(f.docs, "x")
	if _, err := f.Put("x", "<a/>"); err != nil {
		t.Fatalf("Put after clearing pending entry: %v", err)
	}
	// An out-of-range partitioner is an error, not a panic or silent mod.
	bad, err := NewForest(ForestOptions{Shards: 2, Partitioner: PartitionerFunc(func(string, int) int { return 99 })})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Put("y", "<a/>"); err == nil {
		t.Fatal("out-of-range partitioner accepted")
	}
	// A failed Update surfaces the error and leaves the document intact.
	boom := errors.New("boom")
	if err := f.Update("x", func(*Batch, *Elem) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("failing Update = %v, want boom", err)
	}
	if _, ok := f.Get("x"); !ok {
		t.Fatal("document lost after failed Update")
	}
}

// TestForestConcurrent is the race pin: concurrent writers on distinct
// documents (parallel across shards by construction) against concurrent
// scatter-gather readers, WAL-backed. Run under -race in CI's flake gate.
func TestForestConcurrent(t *testing.T) {
	f, err := OpenForest(t.TempDir(), ForestOptions{Shards: 4, AutoCheckpointRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const writers = 6
	const rounds = 25
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			id := fmt.Sprintf("w%d", w)
			for i := 0; i < rounds; i++ {
				if _, err := f.Put(id, "<a><b/></a>"); err != nil {
					t.Errorf("writer %d Put: %v", w, err)
					return
				}
				err := f.Update(id, func(b *Batch, root *Elem) error {
					_, err := b.InsertElement(root, root.NumChildren(), "c")
					return err
				})
				if err != nil {
					t.Errorf("writer %d Update: %v", w, err)
					return
				}
				if i%5 == 4 {
					if err := f.Delete(id); err != nil {
						t.Errorf("writer %d Delete: %v", w, err)
						return
					}
					if _, err := f.Put(id, "<a/>"); err != nil {
						t.Errorf("writer %d re-Put: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { writerWG.Wait(); close(done) }()
	for reader := 0; reader < 2; reader++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := f.Query("//b"); err != nil {
					t.Errorf("reader Query: %v", err)
					return
				}
				if err := f.View(func(tx *ForestTxn) error {
					r := tx.Stream("*")
					for i := 0; i < 10; i++ {
						if el, ok := r.Next(); ok {
							f.DocOf(el)
						}
					}
					tx.Count("c")
					return nil
				}); err != nil {
					t.Errorf("reader View: %v", err)
					return
				}
				f.Stats()
				f.Docs()
			}
		}()
	}
	writerWG.Wait()
	readerWG.Wait()
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Docs != writers {
		t.Fatalf("Stats.Docs = %d, want %d", st.Docs, writers)
	}
}

// TestForestStreamSeekInterleavings drives random Next/Seek sequences
// against merged forest streams — the ltree-level pin on the k-way merge
// honoring the forward-only Results contract across shard boundaries.
func TestForestStreamSeekInterleavings(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f, err := NewForest(ForestOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := f.Put(fmt.Sprintf("d%d", i), randForestDoc(rng)); err != nil {
			t.Fatal(err)
		}
	}
	tx := f.SnapshotView()
	defer tx.Close()
	for _, probe := range []func() *Results{
		func() *Results { return tx.Stream("b") },
		func() *Results {
			r, err := tx.Query("//c")
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
	} {
		// Oracle: one full drain of the merged stream, with labels.
		type labeled struct {
			el  *Elem
			lab Label
		}
		var want []labeled
		r := probe()
		for el, lab, ok := r.NextLabeled(); ok; el, lab, ok = r.NextLabeled() {
			want = append(want, labeled{el, lab})
		}
		for i := 1; i < len(want); i++ {
			if want[i].lab.Begin < want[i-1].lab.Begin {
				t.Fatalf("merged stream not begin-sorted at %d: %d < %d", i, want[i].lab.Begin, want[i-1].lab.Begin)
			}
		}
		var maxBegin uint64
		if len(want) > 0 {
			maxBegin = want[len(want)-1].lab.Begin
		}
		for trial := 0; trial < 50; trial++ {
			cur := probe()
			pos := 0
			for step := 0; step < 40; step++ {
				if rng.Intn(2) == 0 {
					el, ok := cur.Next()
					if pos >= len(want) {
						if ok {
							t.Fatalf("trial %d: Next yielded past exhaustion", trial)
						}
						break
					}
					if !ok || el != want[pos].el {
						t.Fatalf("trial %d step %d: Next mismatch", trial, step)
					}
					pos++
					continue
				}
				target := uint64(rng.Int63n(int64(maxBegin) + 2))
				for pos < len(want) && want[pos].lab.Begin < target {
					pos++
				}
				el, ok := cur.Seek(target)
				if pos >= len(want) {
					if ok {
						t.Fatalf("trial %d: Seek(%d) yielded past exhaustion", trial, target)
					}
					break
				}
				if !ok || el != want[pos].el {
					t.Fatalf("trial %d step %d: Seek(%d) mismatch", trial, step, target)
				}
				pos++
			}
		}
	}
}

// TestMergeResultsComposesTagStreams pins the exported MergeResults
// surface on a single store: merging two tag streams of one Txn yields
// exactly the union in document order.
func TestMergeResultsComposesTagStreams(t *testing.T) {
	st, err := OpenString("<r><a/><x><b/><a/></x><b/><a/></r>", DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	err = st.View(func(tx *Txn) error {
		merged := MergeResults(tx.Stream("a"), nil, tx.Stream("b")).Collect()
		var want []*Elem
		for _, el := range tx.Elements("*") {
			if tag := el.Tag(); tag == "a" || tag == "b" {
				want = append(want, el)
			}
		}
		if len(merged) != len(want) {
			return fmt.Errorf("merged %d elements, want %d", len(merged), len(want))
		}
		for i := range merged {
			if merged[i] != want[i] {
				return fmt.Errorf("merged[%d] out of document order", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForestRoutingStability pins placement: a document stays on the
// shard that first held it even if the partitioner later disagrees, and
// ShardFor reports the registry's answer for live documents.
func TestForestRoutingStability(t *testing.T) {
	part := PartitionerFunc(func(string, int) int { return 0 })
	f, err := NewForest(ForestOptions{Shards: 3, Partitioner: part})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Put("pin", "<a/>"); err != nil {
		t.Fatal(err)
	}
	if got := f.ShardFor("pin"); got != 0 {
		t.Fatalf("ShardFor(pin) = %d, want 0", got)
	}
	// Swap the partitioner's answer: existing docs must not move.
	f.part = PartitionerFunc(func(string, int) int { return 2 })
	if got := f.ShardFor("pin"); got != 0 {
		t.Fatalf("ShardFor(pin) after partitioner change = %d, want 0 (registry wins)", got)
	}
	if got := f.ShardFor("new"); got != 2 {
		t.Fatalf("ShardFor(new) = %d, want 2 (partitioner)", got)
	}
	err = f.Update("pin", func(b *Batch, root *Elem) error {
		_, err := b.InsertElement(root, 0, "b")
		return err
	})
	if err != nil {
		t.Fatalf("Update after partitioner change: %v", err)
	}
	if got, _ := f.Get("pin"); got == nil || got.NumChildren() != 1 {
		t.Fatal("update after partitioner change did not land on the pinned shard")
	}
}
