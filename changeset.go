package ltree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/ltree-db/ltree/internal/index"
)

// This file is the version-diff surface: content hashes, entry-level
// change sets between two published index versions, and a compact wire
// codec for shipping them to change-feed consumers (cmd/ltreed serves
// them over /v1/changes). The underlying hash-pruned walk lives in
// internal/index; DESIGN.md §10 explains why it costs O(changed chunks)
// instead of O(document).

// Hash is a 32-byte index content hash: a commutative multiset digest
// over every (tag, label, level) entry, rolled up per tag and across
// tags. Two indexes holding the same logical content report the same
// Hash regardless of chunk partitioning or the operation history that
// produced them. The zero Hash never names real content (the digest of
// even an empty index is non-zero).
type Hash = index.Hash

// Change is one entry-level difference between two index versions. Node
// is the live DOM node — non-nil when the diff was computed in-process,
// nil after a ChangeSet round-trips through its codec (node identity is
// process-local and does not serialize; Tag plus the labels identify
// the entry on the wire).
type Change = index.Change

// ChangeKind classifies a Change.
type ChangeKind = index.ChangeKind

// Change kinds, reported by Change.Kind.
const (
	// ChangeAdded: the node is indexed in the newer version only.
	ChangeAdded ChangeKind = index.Added
	// ChangeRemoved: the node is indexed in the older version only.
	ChangeRemoved ChangeKind = index.Removed
	// ChangeRelabeled: indexed in both, label or level differs (an
	// L-Tree split renumbered it, or a move re-homed it).
	ChangeRelabeled ChangeKind = index.Relabeled
)

// DiffStats reports how much work a diff walk did — chunks shared by
// pointer, tags skipped by digest — the observable behind the
// O(changed-chunks) cost claim.
type DiffStats = index.DiffStats

// ChangeSet is the entry-level difference between two published index
// versions, as computed by DiffVersions or delivered by a Watcher. The
// root hashes authenticate the endpoints: a consumer holding its own
// copy of version From can apply Changes and verify it arrived at
// ToRoot.
//
// Changes are ordered by tag (sorted), and within a tag Relabeled, then
// Added, then Removed. The diff is index-content precise: a node
// replaced by a different node under the identical (tag, label, level)
// is not a change (see internal/index.Diff).
type ChangeSet struct {
	From     uint64 // older version number
	To       uint64 // newer version number
	FromRoot Hash   // content hash of version From
	ToRoot   Hash   // content hash of version To
	Changes  []Change
	Stats    DiffStats // work accounting for the walk that produced this set
}

// csMagic frames an encoded ChangeSet: "LTCS" plus a format version.
var csMagic = [5]byte{'L', 'T', 'C', 'S', 1}

// ErrCorruptChangeSet reports a ChangeSet stream that does not decode.
var ErrCorruptChangeSet = errors.New("ltree: corrupt change-set stream")

// Encode writes the ChangeSet in its compact binary framing. Node
// pointers are process-local and are not serialized. Stats travels so a
// feed consumer can observe the producer's walk cost.
func (cs *ChangeSet) Encode(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(csMagic[:])
	var u [binary.MaxVarintLen64]byte
	putUv := func(v uint64) { buf.Write(u[:binary.PutUvarint(u[:], v)]) }
	putUv(cs.From)
	putUv(cs.To)
	buf.Write(cs.FromRoot[:])
	buf.Write(cs.ToRoot[:])
	putUv(uint64(cs.Stats.Tags))
	putUv(uint64(cs.Stats.TagsSkipped))
	putUv(uint64(cs.Stats.ChunksShared))
	putUv(uint64(cs.Stats.ChunksTouched))
	putUv(uint64(len(cs.Changes)))
	for i := range cs.Changes {
		c := &cs.Changes[i]
		switch c.Kind {
		case ChangeAdded, ChangeRemoved, ChangeRelabeled:
		default:
			return fmt.Errorf("ltree: change-set encode: unknown change kind %d", c.Kind)
		}
		putUv(uint64(len(c.Tag)))
		buf.WriteString(c.Tag)
		buf.WriteByte(byte(c.Kind))
		putUv(c.Old.Begin)
		putUv(c.Old.End)
		putUv(c.New.Begin)
		putUv(c.New.End)
		putUv(uint64(c.Level))
		putUv(uint64(c.OldLevel))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// DecodeChangeSet reads one encoded ChangeSet, rejecting short, torn,
// or trailing-garbage streams. Decoded Changes carry nil Node pointers
// — node identity does not cross a process boundary.
func DecodeChangeSet(data []byte) (*ChangeSet, error) {
	if len(data) < len(csMagic) || !bytes.Equal(data[:len(csMagic)], csMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptChangeSet)
	}
	br := bytes.NewReader(data[len(csMagic):])
	getUv := func() (uint64, error) { return binary.ReadUvarint(br) }
	cs := &ChangeSet{}
	var err error
	if cs.From, err = getUv(); err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrCorruptChangeSet, err)
	}
	if cs.To, err = getUv(); err != nil {
		return nil, fmt.Errorf("%w: to: %v", ErrCorruptChangeSet, err)
	}
	if _, err := io.ReadFull(br, cs.FromRoot[:]); err != nil {
		return nil, fmt.Errorf("%w: from root: %v", ErrCorruptChangeSet, err)
	}
	if _, err := io.ReadFull(br, cs.ToRoot[:]); err != nil {
		return nil, fmt.Errorf("%w: to root: %v", ErrCorruptChangeSet, err)
	}
	stats := [4]*int{&cs.Stats.Tags, &cs.Stats.TagsSkipped, &cs.Stats.ChunksShared, &cs.Stats.ChunksTouched}
	for _, p := range stats {
		v, err := getUv()
		if err != nil {
			return nil, fmt.Errorf("%w: stats: %v", ErrCorruptChangeSet, err)
		}
		*p = int(v)
	}
	n, err := getUv()
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrCorruptChangeSet, err)
	}
	if n > uint64(br.Len()) { // every change costs ≥ 7 bytes; cheap bound first
		return nil, fmt.Errorf("%w: change count %d exceeds stream", ErrCorruptChangeSet, n)
	}
	cs.Stats.Changes = int(n)
	cs.Changes = make([]Change, 0, n)
	for i := uint64(0); i < n; i++ {
		var c Change
		tl, err := getUv()
		if err != nil || tl > uint64(br.Len()) {
			return nil, fmt.Errorf("%w: change %d tag length", ErrCorruptChangeSet, i)
		}
		tag := make([]byte, tl)
		if _, err := io.ReadFull(br, tag); err != nil {
			return nil, fmt.Errorf("%w: change %d tag", ErrCorruptChangeSet, i)
		}
		c.Tag = string(tag)
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: change %d kind", ErrCorruptChangeSet, i)
		}
		c.Kind = ChangeKind(kind)
		switch c.Kind {
		case ChangeAdded, ChangeRemoved, ChangeRelabeled:
		default:
			return nil, fmt.Errorf("%w: change %d has unknown kind %d", ErrCorruptChangeSet, i, kind)
		}
		labels := [4]*uint64{&c.Old.Begin, &c.Old.End, &c.New.Begin, &c.New.End}
		for _, p := range labels {
			if *p, err = getUv(); err != nil {
				return nil, fmt.Errorf("%w: change %d label", ErrCorruptChangeSet, i)
			}
		}
		lvl, err := getUv()
		if err != nil {
			return nil, fmt.Errorf("%w: change %d level", ErrCorruptChangeSet, i)
		}
		c.Level = int(lvl)
		olvl, err := getUv()
		if err != nil {
			return nil, fmt.Errorf("%w: change %d old level", ErrCorruptChangeSet, i)
		}
		c.OldLevel = int(olvl)
		cs.Changes = append(cs.Changes, c)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptChangeSet, br.Len())
	}
	return cs, nil
}

// DiffVersions computes the entry-level change set from version `from`
// to version `to`, walking only the index subtrees whose content hashes
// disagree: tags and chunks the two versions share — which, for
// versions related by commits, is everything the intervening batches
// did not touch — are skipped without decoding an entry, so the cost is
// O(changed chunks), not O(document).
//
// Both versions must still be reachable: the current version always is,
// and an older one is while some open transaction (View/SnapshotView)
// pins it — pin first, then diff against the pin's version number
// later. Unreachable versions return ErrVersionRetired. from and to
// may arrive in either order; the set is always oriented oldest → To.
func (s *Store) DiffVersions(from, to uint64) (*ChangeSet, error) {
	if from > to {
		from, to = to, from
	}
	va, ra, ok := s.vers.PinAt(from)
	if !ok {
		return nil, fmt.Errorf("ltree: diff: version %d: %w", from, ErrVersionRetired)
	}
	defer ra()
	vb, rb, ok := s.vers.PinAt(to)
	if !ok {
		return nil, fmt.Errorf("ltree: diff: version %d: %w", to, ErrVersionRetired)
	}
	defer rb()
	return diffPinned(va, vb)
}

// diffPinned runs the hash-pruned walk between two pinned versions.
func diffPinned(va, vb *index.Version) (*ChangeSet, error) {
	cs := &ChangeSet{
		From:     va.N,
		To:       vb.N,
		FromRoot: va.Ix.RootHash(),
		ToRoot:   vb.Ix.RootHash(),
	}
	st, err := index.Diff(va.Ix, vb.Ix, func(c Change) error {
		cs.Changes = append(cs.Changes, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	cs.Stats = st
	return cs, nil
}
