package ltree

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/storage/blob"
)

// This file is the public surface of the blob storage tier (DESIGN.md
// §9): object stores as a third layer under the WAL. A BlobTier mirrors
// a WAL backend's sealed segments and checkpoints into a BlobStore
// asynchronously — commits never wait on it — which buys three things:
//
//   - Durability beyond the local disk: after a machine loss, AttachBlobTier
//     on a fresh directory (or LoadLatest over it) recovers the
//     blob-durable prefix.
//   - Bounded local disk: with BlobTierOptions.ReleaseLocal, sealed
//     segments leave local disk once the tier holds them, while replays,
//     retention leases, and LoadAt transparently read through the tier.
//   - Cheap replica bootstrap: OpenFollowerSeeded seeds a follower from
//     the object store (checkpoint + segment tail) and only then attaches
//     to the leader for the live tail, so a new replica costs the leader
//     almost nothing.

// BlobStore is a minimal name-addressed object store: flat Put/Get over
// opaque byte values, List by key prefix, idempotent Delete. The two
// built-ins are NewBlobMemory and NewBlobDir; adapt any real object
// store (S3 and friends) by implementing these four methods — the tier
// never needs conditional writes or multipart uploads.
type BlobStore = blob.Store

// NewBlobMemory returns an in-process BlobStore (tests, ephemeral
// tiers).
func NewBlobMemory() BlobStore { return blob.NewMemory() }

// NewBlobDir opens (creating if needed) a directory-backed BlobStore:
// one file per object, crash-safe writes, nested keys as
// subdirectories. A network mount of it is the poor man's object store.
func NewBlobDir(root string) (BlobStore, error) { return blob.NewDir(root) }

// BlobFaultOptions configures NewBlobFaults' fault injection.
type BlobFaultOptions = blob.FaultOptions

// BlobFaultStats counts what a NewBlobFaults wrapper injected.
type BlobFaultStats = blob.FaultStats

// NewBlobFaults wraps a BlobStore with deterministic fault injection —
// transient errors, partial uploads, torn reads, latency — for torture
// tests and benchmarks. The tier's contract is designed against exactly
// these faults: it must converge through them without ever blocking a
// commit or trusting a torn object.
func NewBlobFaults(inner BlobStore, opt BlobFaultOptions) *blob.Faults {
	return blob.NewFaults(inner, opt)
}

// BlobTierOptions configures AttachBlobTier (object key prefix, local
// release, retry pacing).
type BlobTierOptions = storage.TierOptions

// BlobTierStats is the tier's accounting snapshot (upload/fetch
// counters, blob-durable sequence number, upload lag).
type BlobTierStats = storage.TierStats

// BlobTier is an attached blob storage tier; see AttachBlobTier.
type BlobTier = storage.BlobTier

// AttachBlobTier mirrors a WAL backend into a blob store and starts the
// asynchronous uploader. Attach before recovering or attaching the WAL
// to a store (the tier then serves recovery reads too). On a virgin WAL
// directory with a non-empty blob tier this is restore-from-backup: the
// local log fast-forwards and history reads through the tier. A
// non-empty local log that diverges from the blob state refuses loudly.
//
// The tier stops when the WAL backend is closed. Only backends from
// NewWALBackend support tiering.
func AttachBlobTier(w WALBackend, bs BlobStore, opt BlobTierOptions) (*BlobTier, error) {
	a, ok := w.(interface {
		AttachTier(blob.Store, storage.TierOptions) (*storage.BlobTier, error)
	})
	if !ok {
		return nil, errors.New("ltree: backend does not support a blob tier (use NewWALBackend)")
	}
	return a.AttachTier(bs, opt)
}

// BlobCheckpointRoot returns the newest blob-tier checkpoint's sequence
// number and the index root hash its snapshot was stamped with, read
// from the tier manifest alone — no object download. ok is false when
// the tier is empty or the newest checkpoint predates root stamping.
//
// This is hash-compare backup verification: a backup is current exactly
// when the returned root equals the leader's Store.RootHash (or a
// historical LoadAt root) — no byte-compare, no restore.
func BlobCheckpointRoot(bs BlobStore, prefix string) (seq uint64, root Hash, ok bool, err error) {
	man, err := storage.ReadBlobManifest(bs, prefix)
	if err != nil {
		return 0, Hash{}, false, err
	}
	if len(man.Ckpts) == 0 {
		return 0, Hash{}, false, nil
	}
	c := man.Ckpts[len(man.Ckpts)-1]
	return c.Seq, Hash(c.Root), c.HasRoot, nil
}

// WALStats reports a WAL backend's retention state: sequence numbers,
// local segment footprint, retention leases, and — when a blob tier is
// attached — its upload/fetch accounting. The observability companion
// to TxnStats; ltreed serves it under /v1/stats.
type WALStats = storage.RetentionStats

// WALStats returns the attached WAL backend's retention state; ok is
// false when the store has no WAL or the backend does not report
// retention (only NewWALBackend's does).
func (s *Store) WALStats() (WALStats, bool) {
	s.mu.Lock()
	w := s.wal
	s.mu.Unlock()
	r, ok := w.(interface{ RetentionStats() storage.RetentionStats })
	if !ok {
		return WALStats{}, false
	}
	return r.RetentionStats(), true
}

// LoadAt reconstructs a read-only Store at an exact historical sequence
// number: the newest checkpoint at or below seq plus a replay of the
// log up to seq, stopping there. With a blob tier attached the history
// is bottomless — checkpoints pruned and segments released from local
// disk are fetched back from the tier — so any blob-durable seq stays
// reconstructible, bit-identically, for as long as the tier holds it.
//
// The returned store is detached (no WAL): it is a snapshot of the
// past, not a fork of the log. For a plain (non-WAL) Backend, seq must
// name a stored snapshot version exactly (same as LoadVersion).
func LoadAt(b Backend, seq uint64) (*Store, error) {
	w, ok := b.(WALBackend)
	if !ok {
		return LoadVersion(b, seq)
	}
	vers, err := w.Versions()
	if err != nil {
		return nil, err
	}
	base, found := uint64(0), false
	for _, v := range vers {
		if v <= seq {
			base, found = v, true
		}
	}
	if !found {
		return nil, fmt.Errorf("ltree: no checkpoint at or below seq %d: %w", seq, ErrNoVersion)
	}
	data, err := w.Get(base)
	if err != nil {
		return nil, err
	}
	doc, err := document.Restore(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	s := newStore(doc)
	if err := s.verifyRestoredRoot(); err != nil {
		return nil, err
	}
	reached := base
	if err := w.ReplaySince(base, func(q uint64, payload []byte) error {
		if q > seq {
			return errStopReplay
		}
		if err := s.applyShippedLocked(payload); err != nil {
			return err
		}
		reached = q
		return nil
	}); err != nil && !errors.Is(err, errStopReplay) {
		return nil, fmt.Errorf("ltree: replay to seq %d: %w", seq, err)
	}
	if reached != seq {
		return nil, fmt.Errorf("ltree: seq %d is not durable (log reaches %d): %w", seq, reached, ErrNoVersion)
	}
	return s, nil
}

// OpenFollowerSeeded is OpenFollower with a blob-seeded bootstrap: the
// replica restores the newest checkpoint and replays the segment tail
// from the blob tier under prefix — the leader serves none of it — and
// only then attaches to the leader's WAL for the live tail. Use it to
// bring up replicas without making the leader re-ship history it
// already uploaded.
//
// The blob tier must mirror this same WAL (the leader's AttachBlobTier
// with the same prefix); a tier from a different log surfaces as a
// sequence gap, and a leader log repair (re-base) during the bootstrap
// aborts it — retry to re-seed from the repaired checkpoint.
func OpenFollowerSeeded(w WALBackend, bs BlobStore, prefix string) (*Follower, error) {
	sh, err := storage.NewShipper(w)
	if err != nil {
		return nil, fmt.Errorf("ltree: open seeded follower: %w", err)
	}
	src := w.(storage.TailSource) // NewShipper proved the assertion
	// Freeze log truncation across the bootstrap and pin the re-base
	// count before reading any blob state: if the count is unchanged
	// after the live tail attaches, the blob history we replayed is a
	// prefix of the stream the tailer continues.
	guard := src.Retain(0)
	defer guard.Release()
	rebase0 := src.Rebases()

	seq, snap, err := storage.BlobLatest(bs, prefix)
	if err != nil {
		if errors.Is(err, ErrNoVersion) {
			return nil, fmt.Errorf("ltree: open seeded follower: blob tier holds no checkpoint (is the leader's tier attached and caught up?): %w", err)
		}
		return nil, fmt.Errorf("ltree: open seeded follower: %w", err)
	}
	doc, err := document.Restore(bytes.NewReader(snap))
	if err != nil {
		return nil, fmt.Errorf("ltree: open seeded follower: checkpoint restore: %w", err)
	}
	st := newStore(doc)
	if err := st.verifyRestoredRoot(); err != nil {
		return nil, fmt.Errorf("ltree: open seeded follower: %w", err)
	}
	f := &Follower{
		st:      st,
		src:     src,
		done:    make(chan struct{}),
		applied: seq,
		bump:    make(chan struct{}),
	}
	end, err := storage.ReplayBlobSince(bs, prefix, seq, func(q uint64, payload []byte) error {
		return f.applyBatch(q, payload)
	})
	if err != nil {
		return nil, fmt.Errorf("ltree: open seeded follower: blob replay: %w", err)
	}
	tail := sh.Tail(end)
	if src.Rebases() != rebase0 {
		// The leader repaired its log while we replayed blob history; the
		// blob state may describe the pre-repair stream.
		tail.Close()
		return nil, fmt.Errorf("ltree: open seeded follower: leader log re-based during bootstrap: %w", storage.ErrShipRebased)
	}
	f.tail = tail
	go f.run()
	return f, nil
}
