package ltree

import (
	"errors"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/storage/blob"
)

// This file is the package's error surface: every sentinel the public
// API returns lives here, grouped by the layer that produces it. All of
// them are matched with errors.Is — returned errors usually wrap a
// sentinel with call-site detail (sequence numbers, hashes, document
// ids), so compare with errors.Is, never ==.

// Labeling-layer sentinels (the L-Tree itself).
var (
	// ErrBadParams reports Params that violate the paper's constraints
	// (s ≥ 2, f a multiple of s, f/s ≥ 2).
	ErrBadParams = core.ErrBadParams

	// ErrNotLeaf reports a slot operation on an internal L-Tree node.
	ErrNotLeaf = core.ErrNotLeaf

	// ErrLabelOverflow reports that the label space exceeded 2^62 bits;
	// choose a larger f or s (see AnalyzeParams).
	ErrLabelOverflow = core.ErrLabelOverflow
)

// Document-layer sentinels.
var (
	// ErrUnbound reports an operation on a node that is not part of the
	// labeled document (detached, deleted, or never inserted).
	ErrUnbound = document.ErrUnbound

	// ErrRootEdit reports an attempt to move or delete the root element.
	ErrRootEdit = document.ErrRootEdit
)

// Read-transaction sentinels (txn.go).
var (
	// ErrTxnClosed reports a read on a transaction after Close.
	ErrTxnClosed = errors.New("ltree: read transaction is closed")

	// ErrVersionRetired reports SnapshotAt or DiffVersions on a version
	// number that is neither current nor pinned by any open transaction.
	ErrVersionRetired = errors.New("ltree: index version retired (no open transaction pins it)")
)

// Persistence sentinels (snapshots, WAL).
var (
	// ErrNoVersion reports a missing snapshot version in a Backend.
	ErrNoVersion = storage.ErrNoVersion

	// ErrShipRebased reports that a leader's log was re-based past a
	// lost batch (a repair Checkpoint): the shipped op stream can no
	// longer reconstruct the store, and followers must re-seed from the
	// newest checkpoint. Surfaces from Follower.WaitFor/Promote/Stats.
	ErrShipRebased = storage.ErrShipRebased
)

// Replication sentinels (follower.go, watch.go).
var (
	// ErrFollowerClosed reports use of a follower after Close/Promote.
	ErrFollowerClosed = errors.New("ltree: follower is closed")

	// ErrWaitTimeout reports that WaitFor's timeout expired before the
	// follower applied the requested sequence number. The returned error
	// carries the seq/applied detail.
	ErrWaitTimeout = errors.New("ltree: follower wait timed out")

	// ErrReplicaDiverged reports an index integrity failure: a replica's
	// recomputed index root hash disagrees with the root the writer
	// stamped into the batch or snapshot. It means the two sides hold
	// different index content — bit rot, a torn copy the CRCs missed, or
	// a labeling/replication bug — and the replica refuses to serve the
	// divergent state silently. Recovery is a re-seed from a fresh
	// checkpoint. Detection is O(1) per acked batch on top of the
	// incremental hash maintenance; see DESIGN.md §10.
	ErrReplicaDiverged = errors.New("ltree: replica index diverged from the leader's stamped root hash")
)

// Forest sentinels (forest.go).
var (
	// ErrForestTopology reports OpenForest on a directory whose manifest
	// pins a different shard count (resharding is not supported).
	ErrForestTopology = storage.ErrForestTopology

	// ErrNoDoc reports an operation on a document id the forest does not
	// hold.
	ErrNoDoc = errors.New("ltree: forest holds no document with that id")

	// ErrDocBusy reports two concurrent writes racing on the same
	// document id. Writes to different documents never contend here.
	ErrDocBusy = errors.New("ltree: concurrent write to the same forest document")
)

// Blob-tier sentinels (blobtier.go).
var (
	// ErrBlobNotExist reports a missing blob object.
	ErrBlobNotExist = blob.ErrNotExist

	// ErrBlobTransient is the injected transient failure produced by
	// NewBlobFaults wrappers in torture tests.
	ErrBlobTransient = blob.ErrTransient
)
