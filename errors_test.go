package ltree_test

import (
	"errors"
	"testing"
	"time"

	ltree "github.com/ltree-db/ltree"
)

// This file pins the consolidated error surface (errors.go): every
// sentinel is reachable through a real API path and matches with
// errors.Is even when wrapped with call-site detail, and no two
// sentinels alias each other.

func TestErrorsSurface(t *testing.T) {
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("ErrBadParams", func(t *testing.T) {
		// f must be a multiple of s.
		if _, err := ltree.OpenString(replaySeedDoc, ltree.Params{F: 9, S: 2}); !errors.Is(err, ltree.ErrBadParams) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("ErrTxnClosed", func(t *testing.T) {
		tx := st.SnapshotView()
		if err := tx.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Query("//person"); !errors.Is(err, ltree.ErrTxnClosed) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("ErrVersionRetired", func(t *testing.T) {
		if _, err := st.SnapshotAt(st.IndexVersion() + 100); !errors.Is(err, ltree.ErrVersionRetired) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("ErrUnbound", func(t *testing.T) {
		victim := st.Elements("person")[0]
		if err := st.Update(func(b *ltree.Batch) error { return b.Delete(victim) }); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Label(victim); !errors.Is(err, ltree.ErrUnbound) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("ErrRootEdit", func(t *testing.T) {
		root := st.Elements("site")[0]
		err := st.Update(func(b *ltree.Batch) error { return b.Delete(root) })
		if !errors.Is(err, ltree.ErrRootEdit) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("ErrNoVersion", func(t *testing.T) {
		if _, err := ltree.LoadLatest(ltree.NewMemoryBackend()); !errors.Is(err, ltree.ErrNoVersion) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("ErrNoDoc", func(t *testing.T) {
		f, err := ltree.NewForest(ltree.ForestOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Delete("missing"); !errors.Is(err, ltree.ErrNoDoc) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("ErrWaitTimeout", func(t *testing.T) {
		_, w := openLeader(t, t.TempDir())
		f, err := ltree.OpenFollower(w)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.WaitFor(w.Seq()+100, 10*time.Millisecond); !errors.Is(err, ltree.ErrWaitTimeout) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("ErrFollowerClosed", func(t *testing.T) {
		_, w := openLeader(t, t.TempDir())
		f, err := ltree.OpenFollower(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.WaitFor(1, time.Millisecond); !errors.Is(err, ltree.ErrFollowerClosed) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestErrorsDistinct guards the consolidation itself: moving sentinels
// into one file must not have aliased any two of them.
func TestErrorsDistinct(t *testing.T) {
	sentinels := map[string]error{
		"ErrBadParams":        ltree.ErrBadParams,
		"ErrNotLeaf":          ltree.ErrNotLeaf,
		"ErrLabelOverflow":    ltree.ErrLabelOverflow,
		"ErrUnbound":          ltree.ErrUnbound,
		"ErrRootEdit":         ltree.ErrRootEdit,
		"ErrTxnClosed":        ltree.ErrTxnClosed,
		"ErrVersionRetired":   ltree.ErrVersionRetired,
		"ErrNoVersion":        ltree.ErrNoVersion,
		"ErrShipRebased":      ltree.ErrShipRebased,
		"ErrFollowerClosed":   ltree.ErrFollowerClosed,
		"ErrWaitTimeout":      ltree.ErrWaitTimeout,
		"ErrReplicaDiverged":  ltree.ErrReplicaDiverged,
		"ErrForestTopology":   ltree.ErrForestTopology,
		"ErrNoDoc":            ltree.ErrNoDoc,
		"ErrDocBusy":          ltree.ErrDocBusy,
		"ErrBlobNotExist":     ltree.ErrBlobNotExist,
		"ErrBlobTransient":    ltree.ErrBlobTransient,
		"ErrCorruptChangeSet": ltree.ErrCorruptChangeSet,
	}
	for aName, a := range sentinels {
		if a == nil {
			t.Errorf("%s is nil", aName)
			continue
		}
		for bName, b := range sentinels {
			if aName != bName && errors.Is(a, b) {
				t.Errorf("%s aliases %s", aName, bName)
			}
		}
	}
}
