package ltree

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ltree-db/ltree/internal/workload"
)

// TestTxnSnapshotIsolation is the deterministic pin for the ISSUE-4
// acceptance criterion: a View body that queries, waits for a concurrent
// Update to commit, and queries again must observe the same IndexVersion
// and byte-identical results — while a fresh View right afterwards sees
// the commit.
func TestTxnSnapshotIsolation(t *testing.T) {
	st, err := OpenString(`<site><item><name>a</name></item><item><name>b</name></item></site>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	committed := make(chan struct{})
	inTxn := make(chan struct{})
	go func() {
		<-inTxn
		if err := st.Update(func(tx *Batch) error {
			_, err := tx.InsertXML(st.Root(), 0, `<item><name>c</name></item>`)
			return err
		}); err != nil {
			t.Error(err)
		}
		close(committed)
	}()

	err = st.View(func(tx *Txn) error {
		v := tx.Version()
		first, err := tx.Query("//item/name")
		if err != nil {
			return err
		}
		before := first.Collect()

		close(inTxn)
		<-committed
		if got := st.IndexVersion(); got == v {
			return errors.New("writer did not publish a new version")
		}

		if tx.Version() != v {
			t.Errorf("Txn version moved: %d -> %d", v, tx.Version())
		}
		second, err := tx.Query("//item/name")
		if err != nil {
			return err
		}
		after := second.Collect()
		if len(after) != len(before) {
			t.Errorf("snapshot leaked the concurrent commit: %d results, then %d", len(before), len(after))
		}
		for i := range before {
			if before[i] != after[i] {
				t.Errorf("result %d differs across the concurrent commit", i)
			}
		}
		if n := len(tx.Elements("name")); n != len(before) {
			t.Errorf("Txn.Elements sees %d names, queries saw %d", n, len(before))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A transaction opened after the commit sees it.
	if got, _ := st.Query("//item/name"); len(got) != 3 {
		t.Fatalf("post-commit query = %d results, want 3", len(got))
	}
}

// TestTxnStressSnapshotIsolation floods the store with View transactions
// that each read several times while writers commit continuously: every
// read inside one Txn must agree with the others (-race makes this the
// isolation torture test). Reads mix the lazy Query pipeline, Elements,
// Stream and label lookups so all Txn surfaces pin the same version.
func TestTxnStressSnapshotIsolation(t *testing.T) {
	x := workload.XMarkLite(10, 2)
	st, err := OpenString(x.String(), DefaultParams)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers  = 8
		writers  = 2
		duration = 300 * time.Millisecond
	)
	var (
		stop  atomic.Bool
		views atomic.Int64
		wg    sync.WaitGroup
	)
	exprs := []string{"//item/name", "//site//name", "/site//item", "//keyword", "//*"}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				expr := exprs[rng.Intn(len(exprs))]
				err := st.View(func(tx *Txn) error {
					v := tx.Version()
					res, err := tx.Query(expr)
					if err != nil {
						return err
					}
					first := res.Collect()
					// Let a writer in, then re-read everything.
					time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
					if tx.Version() != v {
						t.Error("Txn version drifted mid-transaction")
					}
					res2, err := tx.Query(expr)
					if err != nil {
						return err
					}
					i := 0
					for el := range res2.All() {
						if i >= len(first) || first[i] != el {
							t.Errorf("%s: re-read diverged at result %d within one Txn", expr, i)
							return nil
						}
						i++
					}
					if i != len(first) {
						t.Errorf("%s: re-read returned %d results, first read %d", expr, i, len(first))
					}
					// Elements/Stream/labels come from the same version.
					items := tx.Elements("item")
					if got := tx.Count("item"); got != len(items) {
						t.Errorf("Count(item)=%d, Elements=%d within one Txn", got, len(items))
					}
					if len(items) > 1 {
						a, b := items[0], items[len(items)-1]
						if ord, err := tx.Compare(a, b); err != nil {
							t.Errorf("Compare inside Txn: %v", err)
						} else if ord != -1 {
							t.Errorf("Elements order disagrees with snapshot labels")
						}
						if la, err := tx.Label(a); err != nil || la.Begin >= la.End {
							t.Errorf("Label inside Txn: %v %v", la, err)
						}
						if desc, err := tx.Descendants(a); err != nil {
							t.Errorf("Descendants inside Txn: %v", err)
						} else {
							for el, lab := range desc.Labeled() {
								ok, err := tx.IsAncestor(a, el)
								if err != nil || !ok {
									t.Errorf("Descendants returned a non-descendant (label %v): %v", lab, err)
								}
								break // one containment probe per view is enough
							}
						}
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				views.Add(1)
			}
		}(int64(r))
	}

	regions := st.Elements("asia")
	regions = append(regions, st.Elements("europe")...)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(200 + seed))
			for !stop.Load() {
				region := regions[rng.Intn(len(regions))]
				var err error
				if rng.Intn(3) == 0 {
					els := st.Elements("item")
					if len(els) == 0 {
						continue
					}
					err = st.Delete(els[rng.Intn(len(els))])
				} else {
					_, err = st.InsertXML(region, 0, `<item><name>fresh</name><keyword>k</keyword></item>`)
				}
				if err != nil && err != ErrUnbound && err != ErrRootEdit {
					continue // racing picks can surface stale slots
				}
			}
		}(int64(w))
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	if views.Load() == 0 {
		t.Fatal("no View transactions completed")
	}
	if open, retired := st.TxnStats(); open != 0 || retired != 0 {
		t.Fatalf("leaked transactions: %d open, %d retired versions pinned", open, retired)
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d views, final index version %d", views.Load(), st.IndexVersion())
}

// TestTxnSnapshotAtLifecycle pins the retire accounting: a retired
// version stays attachable by number exactly while some open Txn pins
// it, and is forgotten once the last pin drops.
func TestTxnSnapshotAtLifecycle(t *testing.T) {
	st, err := OpenString(`<r><a/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	tx := st.SnapshotView()
	v := tx.Version()
	if v != st.IndexVersion() {
		t.Fatalf("fresh Txn pinned %d, store at %d", v, st.IndexVersion())
	}

	if _, err := st.InsertElement(st.Root(), 0, "b"); err != nil {
		t.Fatal(err)
	}
	if st.IndexVersion() == v {
		t.Fatal("write did not retire the pinned version")
	}
	if open, retired := st.TxnStats(); open != 1 || retired != 1 {
		t.Fatalf("TxnStats = (%d, %d), want (1, 1)", open, retired)
	}

	// The retired version is still attachable while tx pins it…
	tx2, err := st.SnapshotAt(v)
	if err != nil {
		t.Fatalf("SnapshotAt(%d) while pinned: %v", v, err)
	}
	if got := len(tx2.Elements("b")); got != 0 {
		t.Fatalf("retired version leaked the later write: %d <b> elements", got)
	}
	if got := len(tx2.Elements("a")); got != 1 {
		t.Fatalf("retired version lost its own state: %d <a> elements", got)
	}
	tx2.Close()
	tx.Close()
	if err := tx.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	// …and forgotten after the last pin drops.
	if _, err := st.SnapshotAt(v); !errors.Is(err, ErrVersionRetired) {
		t.Fatalf("SnapshotAt after release = %v, want ErrVersionRetired", err)
	}
	if open, retired := st.TxnStats(); open != 0 || retired != 0 {
		t.Fatalf("TxnStats after close = (%d, %d), want (0, 0)", open, retired)
	}
	// The current version is always attachable.
	cur, err := st.SnapshotAt(st.IndexVersion())
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if got := len(cur.Elements("b")); got != 1 {
		t.Fatalf("current version missing the write: %d <b> elements", got)
	}
}

// TestTxnClosedAndUnbound covers the contract edges: reads after Close
// report ErrTxnClosed; nodes outside the snapshot (inserted after the
// pin, or text nodes, which the tag index does not cover) report
// ErrUnbound while the live Store.Label still resolves them.
func TestTxnClosedAndUnbound(t *testing.T) {
	st, err := OpenString(`<r><a>text</a></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	tx := st.SnapshotView()

	fresh, err := st.InsertElement(st.Root(), 0, "late")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Label(fresh); !errors.Is(err, ErrUnbound) {
		t.Fatalf("Label of post-pin insert = %v, want ErrUnbound", err)
	}
	a := st.Elements("a")[0]
	text := a.Child(0)
	if _, err := tx.Label(text); !errors.Is(err, ErrUnbound) {
		t.Fatalf("Txn.Label of a text node = %v, want ErrUnbound", err)
	}
	if _, err := st.Label(text); err != nil {
		t.Fatalf("live Store.Label of a text node: %v", err)
	}
	if _, err := tx.Label(a); err != nil {
		t.Fatalf("Label of a pinned element: %v", err)
	}

	tx.Close()
	if _, err := tx.Query("//a"); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("Query after Close = %v, want ErrTxnClosed", err)
	}
	if _, err := tx.Label(a); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("Label after Close = %v, want ErrTxnClosed", err)
	}
	if _, err := tx.Descendants(a); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("Descendants after Close = %v, want ErrTxnClosed", err)
	}
	if tx.Version() != 0 {
		t.Fatalf("Version after Close = %d, want 0", tx.Version())
	}
	if got := tx.Elements("a"); got != nil {
		t.Fatalf("Elements after Close = %d results, want none", len(got))
	}
}

// TestTxnStreamingMatchesCollect: consuming a Results cursor via
// Next/Seek/All must visit exactly the Collect set, in order — the
// public streaming surface agrees with the materializing adapter.
func TestTxnStreamingMatchesCollect(t *testing.T) {
	x := workload.XMarkLite(4, 7)
	st, err := OpenString(x.String(), DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	err = st.View(func(tx *Txn) error {
		for _, expr := range []string{"//item/name", "/site//keyword", "//bidder", "//*"} {
			res, err := tx.Query(expr)
			if err != nil {
				return err
			}
			want := res.Collect()

			res2, _ := tx.Query(expr)
			var got []*Elem
			for el, ok := res2.Next(); ok; el, ok = res2.Next() {
				got = append(got, el)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: Next drained %d, Collect %d", expr, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: Next and Collect disagree at %d", expr, i)
				}
			}

			// Seek past the first half must resume exactly at the oracle's
			// corresponding position.
			if len(want) > 2 {
				mid, err := tx.Label(want[len(want)/2])
				if err != nil {
					return err
				}
				res3, _ := tx.Query(expr)
				el, ok := res3.Seek(mid.Begin)
				if !ok || el != want[len(want)/2] {
					t.Fatalf("%s: Seek(mid) landed wrong", expr)
				}
			}

			// Early termination via the iterator adapter is clean.
			res4, _ := tx.Query(expr)
			n := 0
			for range res4.All() {
				n++
				if n == 2 {
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
