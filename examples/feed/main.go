// Feed: an append-heavy document (a news/log feed) with a hot region —
// the paper's §6 adaptivity claim: "in the areas with heavy insertion
// activity, the L-Tree adjusts itself by creating more slack between
// labels". We append entries continuously, pin one hot thread that gets
// constant replies, and watch the label slack follow the hotspot.
package main

import (
	"fmt"
	"log"

	"github.com/ltree-db/ltree"
)

func main() {
	st, err := ltree.OpenString(`<feed><thread id="hot"><post>seed</post></thread></feed>`, ltree.Params{F: 8, S: 2})
	if err != nil {
		log.Fatal(err)
	}
	hot := st.Elements("thread")[0]

	fmt.Println("minute  posts  hot-thread posts  relabels/post  bits  hot slack/post  cold slack/post")
	var lastRel, lastPosts uint64
	for minute := 1; minute <= 10; minute++ {
		// 80 replies into the hot thread, 20 fresh threads appended.
		for i := 0; i < 80; i++ {
			if _, err := st.InsertElement(hot, hot.NumChildren(), "post"); err != nil {
				log.Fatal(err)
			}
		}
		root := st.Root()
		for i := 0; i < 20; i++ {
			frag := fmt.Sprintf(`<thread id="t%d-%d"><post>new</post></thread>`, minute, i)
			if _, err := st.InsertXML(root, root.NumChildren(), frag); err != nil {
				log.Fatal(err)
			}
		}
		s := st.Stats()
		posts := s.Inserts + s.BulkLeaves
		dRel := s.RelabeledLeaves - lastRel
		dPosts := posts - lastPosts
		lastRel, lastPosts = s.RelabeledLeaves, posts

		hotLab, _ := st.Label(hot)
		hotSlack := float64(hotLab.End-hotLab.Begin) / float64(hot.NumChildren()+1)
		// Compare with the most recently appended (cold) thread.
		threads := st.Elements("thread")
		cold := threads[len(threads)-1]
		coldLab, _ := st.Label(cold)
		coldSlack := float64(coldLab.End-coldLab.Begin) / float64(cold.NumChildren()+1)

		fmt.Printf("%6d  %5d  %16d  %13.2f  %4d  %14.1f  %15.1f\n",
			minute, len(st.Elements("post")), hot.NumChildren(),
			float64(dRel)/float64(dPosts), st.BitsPerLabel(), hotSlack, coldSlack)
	}

	if err := st.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe hot thread's interval keeps proportionally more slack per post:")
	fmt.Println("splits concentrated there widened its label range — the §6 adaptivity.")
}
