// Quickstart: label an XML document, query it by containment, update it,
// and watch the labels stay valid.
package main

import (
	"fmt"
	"log"

	"github.com/ltree-db/ltree"
)

func main() {
	// Open labels every begin/end tag with an L-Tree number; an element's
	// label is its (begin, end) interval.
	st, err := ltree.OpenString(
		`<book year="2004"><chapter><title>Labeling</title></chapter><title>L-Tree</title></book>`,
		ltree.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's motivating query: descendant-axis via label containment.
	titles, err := st.Query("book//title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("book//title -> %d matches\n", len(titles))
	for _, n := range titles {
		lab, _ := st.Label(n)
		fmt.Printf("  <title> labeled (%d,%d)\n", lab.Begin, lab.End)
	}

	// Ancestry is a pure label comparison — no tree walk.
	root := st.Root()
	anc, _ := st.IsAncestor(root, titles[0])
	fmt.Printf("book contains first title (by labels alone): %v\n", anc)

	// Insert a whole chapter as one bulk run (paper §4.1); existing labels
	// adjust only locally.
	before, _ := st.Label(titles[0])
	if _, err := st.InsertXML(root, 1, `<chapter><title>Updates</title><para>cheap</para></chapter>`); err != nil {
		log.Fatal(err)
	}
	after, _ := st.Label(titles[0])
	fmt.Printf("first title label before/after insert: (%d,%d) -> (%d,%d)\n",
		before.Begin, before.End, after.Begin, after.End)

	titles, _ = st.Query("book//title")
	fmt.Printf("book//title now -> %d matches\n", len(titles))

	// For a block of reads that must agree with each other while writers
	// run, pin one index version with View and stream the matches lazily.
	if err := st.View(func(tx *ltree.Txn) error {
		res, err := tx.Query("book//title")
		if err != nil {
			return err
		}
		n := 0
		for el, lab := range res.Labeled() { // pulled one at a time
			_ = el
			_ = lab
			n++
		}
		fmt.Printf("inside View (index version %d): %d titles\n", tx.Version(), n)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	st2 := st.Stats()
	fmt.Printf("maintenance: %d relabeled labels over %d updates (amortized %.1f nodes/insert)\n",
		st2.RelabeledLeaves, st2.Ops(), st2.AmortizedCost())
	fmt.Printf("labels fit in %d bits\n", st.BitsPerLabel())
}
