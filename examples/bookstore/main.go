// Bookstore: the paper's Figure 1 scenario run live — a catalog that is
// queried with "book//title" while chapters and books keep arriving.
// Demonstrates that query results stay correct across updates and that
// the relabeling work per update stays logarithmic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/ltree-db/ltree"
)

func main() {
	st, err := ltree.OpenString(`<catalog></catalog>`, ltree.Params{F: 8, S: 2})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// Seed with a handful of books.
	for i := 0; i < 5; i++ {
		addBook(st, rng, i)
	}

	fmt.Println("round  books  titles(book//title)  deep(//chapter/title)  relabels/update  bits")
	var lastOps, lastRelabels uint64
	for round := 1; round <= 8; round++ {
		// A burst of edits: new books, new chapters in random books.
		books := st.Elements("book")
		for i := 0; i < 40; i++ {
			if rng.Intn(3) == 0 || len(books) == 0 {
				addBook(st, rng, len(books)+i)
				books = st.Elements("book")
			} else {
				b := books[rng.Intn(len(books))]
				frag := fmt.Sprintf(`<chapter n="%d"><title>Ch</title><para>text</para></chapter>`, i)
				if _, err := st.InsertXML(b, rng.Intn(b.NumChildren()+1), frag); err != nil {
					log.Fatal(err)
				}
			}
		}
		titles, err := st.Query("book//title")
		if err != nil {
			log.Fatal(err)
		}
		deep, err := st.Query("//chapter/title")
		if err != nil {
			log.Fatal(err)
		}
		s := st.Stats()
		dOps := s.Inserts + s.BulkLeaves - lastOps
		dRel := s.RelabeledLeaves - lastRelabels
		lastOps, lastRelabels = s.Inserts+s.BulkLeaves, s.RelabeledLeaves
		fmt.Printf("%5d  %5d  %19d  %21d  %15.2f  %4d\n",
			round, len(st.Elements("book")), len(titles), len(deep),
			float64(dRel)/float64(dOps), st.BitsPerLabel())
	}

	// Every query answer is provable by containment alone.
	titles, _ := st.Query("book//title")
	ok := 0
	for _, title := range titles {
		for _, b := range st.Elements("book") {
			if anc, _ := st.IsAncestor(b, title); anc {
				ok++
				break
			}
		}
	}
	fmt.Printf("\ncontainment proof: %d/%d titles verified under some book by labels alone\n", ok, len(titles))
	if err := st.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all invariants hold")
}

func addBook(st *ltree.Store, rng *rand.Rand, i int) {
	frag := fmt.Sprintf(`<book id="b%d"><title>Book %d</title><chapter><title>Intro</title></chapter></book>`, i, i)
	root := st.Root()
	if _, err := st.InsertXML(root, rng.Intn(root.NumChildren()+1), frag); err != nil {
		log.Fatal(err)
	}
}
