// Tuning: pick L-Tree parameters for an application profile with the
// paper's §3.2 models, then verify the choice empirically — an end-to-end
// run of the "Tuning the L-Tree" section.
package main

import (
	"fmt"
	"log"

	"github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/workload"
)

func main() {
	const n = 200_000 // expected document size in tags

	fmt.Printf("profile: ~%d tags\n\n", n)

	// Model 1: update-heavy workload, no constraints.
	m1 := ltree.SuggestParams(n)
	fmt.Printf("model 1 (min update cost):   f=%-3d s=%d  cost≈%.0f  bits≈%.0f\n",
		m1.Params.F, m1.Params.S, m1.Cost, m1.Bits)

	// Model 2: labels must fit a 32-bit column.
	m2, err := ltree.SuggestParamsUnderBits(n, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model 2 (labels ≤ 32 bits):  f=%-3d s=%d  cost≈%.0f  bits≈%.0f\n",
		m2.Params.F, m2.Params.S, m2.Cost, m2.Bits)

	// Model 3: 90% queries on a 32-bit machine word.
	m3 := ltree.SuggestParamsMixed(n, 0.9, 32)
	fmt.Printf("model 3 (90%% queries, w=32): f=%-3d s=%d  cost≈%.0f  bits≈%.0f\n\n",
		m3.Params.F, m3.Params.S, m3.Cost, m3.Bits)

	// Empirical verification of the constrained choice against a
	// deliberately mistuned baseline.
	fmt.Println("verifying model-2 choice vs a mistuned (f=4,s=2) baseline:")
	for _, p := range []ltree.Params{m2.Params, {F: 4, S: 2}} {
		cost, bits := measure(p, n/4)
		fmt.Printf("  f=%-3d s=%d: measured %.2f nodes/insert, %d bits/label (bound %.0f / %.0f)\n",
			p.F, p.S, cost, bits, ltree.PredictCost(p, n/2), ltree.PredictBits(p, n/2))
	}
}

// measure loads n tags and inserts n more uniformly, returning amortized
// cost and final label width.
func measure(p ltree.Params, n int) (float64, int) {
	tr, err := core.New(core.Params{F: p.F, S: p.S})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tr.Load(n); err != nil {
		log.Fatal(err)
	}
	pos := workload.NewPositions(workload.Uniform, 3)
	for i := 0; i < n; i++ {
		at := pos.Next(tr.Len())
		if at == 0 {
			if _, err := tr.InsertFirst(); err != nil {
				log.Fatal(err)
			}
		} else if _, err := tr.InsertAfter(tr.LeafAt(at - 1)); err != nil {
			log.Fatal(err)
		}
	}
	return tr.Stats().AmortizedCost(), tr.BitsPerLabel()
}
