// Editor: a simulated collaborative XML editing session — interleaved
// single-node edits, subtree pastes (bulk insertion, paper §4.1) and
// deletions — comparing the L-Tree against the naive schemes it replaces.
// The same edit positions are replayed against every labeling scheme.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/ltree-db/ltree/internal/labeling"
	"github.com/ltree-db/ltree/internal/workload"
)

const (
	initial = 2000
	edits   = 2000
)

func main() {
	fmt.Printf("replaying %d edits on a %d-tag document against each scheme\n\n", edits, initial)
	fmt.Printf("%-12s %18s %14s %12s\n", "scheme", "total relabels", "per edit", "bits/label")

	lt, err := labeling.NewLTree(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	schemes := []labeling.Scheme{lt, labeling.NewGap(16), labeling.NewSequential(), labeling.NewBisect()}
	for _, sc := range schemes {
		run(sc)
	}

	// The L-Tree's paste advantage: one §4.1 run insertion per paste is
	// cheaper per node than pasting node by node.
	fmt.Println("\nsubtree paste (64 tags each), L-Tree run insertion vs node-by-node:")
	runCost, singleCost := pasteComparison()
	fmt.Printf("  run insertion:   %.2f nodes touched per pasted tag\n", runCost)
	fmt.Printf("  node-by-node:    %.2f nodes touched per pasted tag\n", singleCost)
	fmt.Printf("  speedup:         %.1fx (the §4.1 effect)\n", singleCost/runCost)
}

// run replays the deterministic edit session against one scheme.
func run(sc labeling.Scheme) {
	slots, err := sc.Load(initial)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pos := workload.NewPositions(workload.Hotspot, 7)
	for i := 0; i < edits; i++ {
		at := pos.Next(len(slots))
		var s labeling.Slot
		if at == 0 {
			s, err = sc.InsertFirst()
		} else {
			s, err = sc.InsertAfter(slots[at-1])
		}
		if err != nil {
			log.Fatal(err)
		}
		slots = append(slots, nil)
		copy(slots[at+1:], slots[at:])
		slots[at] = s
		// Occasionally tombstone something (free in every scheme).
		if rng.Intn(10) == 0 {
			_ = sc.Delete(slots[rng.Intn(len(slots))])
		}
	}
	st := sc.Stats()
	fmt.Printf("%-12s %18d %14.2f %12d\n",
		sc.Name(), st.RelabeledLeaves, float64(st.RelabeledLeaves)/float64(edits), sc.Bits())
}

// pasteComparison measures §4.1 bulk insertion against single insertions
// for 64-tag pastes.
func pasteComparison() (runCost, singleCost float64) {
	const pastes = 200
	const size = 64

	lt, err := labeling.NewLTree(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	tr := lt.T
	if _, err := tr.Load(initial); err != nil {
		log.Fatal(err)
	}
	pos := workload.NewPositions(workload.Uniform, 9)
	for i := 0; i < pastes; i++ {
		at := pos.Next(tr.Len() - 1)
		if _, err := tr.InsertRunAfter(tr.LeafAt(at), size); err != nil {
			log.Fatal(err)
		}
	}
	runCost = tr.Stats().AmortizedCost()

	lt2, err := labeling.NewLTree(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	tr2 := lt2.T
	if _, err := tr2.Load(initial); err != nil {
		log.Fatal(err)
	}
	pos2 := workload.NewPositions(workload.Uniform, 9)
	for i := 0; i < pastes; i++ {
		at := pos2.Next(tr2.Len() - 1)
		anchor := tr2.LeafAt(at)
		for j := 0; j < size; j++ {
			next, err := tr2.InsertAfter(anchor)
			if err != nil {
				log.Fatal(err)
			}
			anchor = next
		}
	}
	singleCost = tr2.Stats().AmortizedCost()
	return runCost, singleCost
}
