package ltree

import "github.com/ltree-db/ltree/internal/analysis"

// Tuning (paper §3.2): closed-form cost model and parameter selection.
// All helpers use the reconstructed formulas of DESIGN.md §2.2 and search
// the feasible integer lattice s ≥ 2, f = r·s, r ≥ 2, f ≤ maxF.

// maxF bounds the parameter search; beyond it the +f term always loses.
const maxF = 256

// Suggestion is a recommended parameter choice with its predictions.
type Suggestion struct {
	Params Params
	// Cost is the predicted amortized nodes-touched per insertion.
	Cost float64
	// Bits is the predicted label width for the given document size.
	Bits float64
}

func toSuggestion(c analysis.Choice) Suggestion {
	return Suggestion{Params: Params{F: c.F, S: c.S}, Cost: c.Cost, Bits: c.Bits}
}

// SuggestParams returns the update-cost-optimal parameters for documents
// of about n tags (§3.2, "Minimize the Update Cost").
func SuggestParams(n int) Suggestion {
	return toSuggestion(analysis.MinimizeCost(float64(n), maxF))
}

// SuggestParamsUnderBits returns the cheapest parameters whose labels fit
// the bit budget (§3.2, "Minimize the Update Cost for Given Number of
// Bits").
func SuggestParamsUnderBits(n, budgetBits int) (Suggestion, error) {
	c, err := analysis.MinimizeCostUnderBits(float64(n), float64(budgetBits), maxF)
	if err != nil {
		return Suggestion{}, err
	}
	return toSuggestion(c), nil
}

// SuggestParamsMixed returns parameters minimizing the combined
// query+update cost for a workload with the given query fraction and
// machine word width (§3.2, "Minimize the Overall Cost of Query and
// Updates").
func SuggestParamsMixed(n int, queryFrac float64, wordBits int) Suggestion {
	return toSuggestion(analysis.MinimizeMixed(float64(n), queryFrac, float64(wordBits), maxF))
}

// PredictCost evaluates the §3.1 amortized-cost bound for given
// parameters and document size.
func PredictCost(p Params, n int) float64 {
	return analysis.UpdateCost(float64(p.F), float64(p.S), float64(n))
}

// PredictBits evaluates the label-width bound for given parameters and
// document size.
func PredictBits(p Params, n int) float64 {
	return analysis.LabelBits(float64(p.F), float64(p.S), float64(n))
}

// PredictBulkCost evaluates the §4.1 per-leaf bound for run insertions of
// k leaves.
func PredictBulkCost(p Params, n, k int) float64 {
	return analysis.BulkCost(float64(p.F), float64(p.S), float64(n), float64(k))
}
