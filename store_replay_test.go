package ltree_test

// Differential property test for the WAL replay path: the same random
// batch stream is applied to an always-in-memory oracle store and to a
// WAL-backed store, then the WAL store is recovered from disk (checkpoint
// + log replay). The property: recovery reproduces the oracle exactly —
// byte-identical snapshots (labels, tombstones, DOM), identical element
// order, and identical tag-index query results. Concurrent readers hammer
// the WAL store throughout so `go test -race` patrols the engine seams.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

const replaySeedDoc = `<site><regions><asia><item><name>lamp</name></item></asia><europe/></regions><people><person>alice</person><person>bob</person></people></site>`

// replayOp is one planned mutation, expressed store-independently: nodes
// are named by their position in the document-order element list, so the
// identical plan resolves to corresponding nodes in both stores.
type replayOp struct {
	kind     string // insert, delete, move, compact
	n, dst   int    // element list positions
	pos      int    // child index (clamped at apply time)
	fragment string
}

// planBatch draws 1–4 ops valid against the current element count. The
// leading insert keeps every batch non-empty.
func planBatch(rng *rand.Rand, nElems int) []replayOp {
	frags := []string{
		`<item><name>lamp</name></item>`,
		`<person age="3">kid</person>`,
		`<note priority="low"/>`,
		`<group><item/><item><name>x</name></item></group>`,
	}
	plan := []replayOp{{
		kind:     "insert",
		n:        rng.Intn(nElems),
		pos:      rng.Intn(4),
		fragment: frags[rng.Intn(len(frags))],
	}}
	for extra := rng.Intn(3); extra > 0; extra-- {
		switch rng.Intn(4) {
		case 0:
			plan = append(plan, replayOp{kind: "insert", n: rng.Intn(nElems), pos: rng.Intn(4), fragment: `<extra/>`})
		case 1:
			plan = append(plan, replayOp{kind: "delete", n: rng.Intn(nElems)})
		case 2:
			plan = append(plan, replayOp{kind: "move", n: rng.Intn(nElems), dst: rng.Intn(nElems), pos: rng.Intn(4)})
		case 3:
			plan = append(plan, replayOp{kind: "compact"})
		}
	}
	return plan
}

// applyBatch runs one planned batch against a store. Individual op
// failures (deleting the root, moving into a descendant, a node consumed
// by an earlier op in the same batch) are ignored: both stores see the
// same state, so they fail identically — that symmetry is part of what
// the test verifies.
func applyBatch(t *testing.T, st *ltree.Store, plan []replayOp) {
	t.Helper()
	elems := st.Elements("*")
	pick := func(i int) *ltree.Elem {
		if i >= len(elems) {
			i = len(elems) - 1
		}
		return elems[i]
	}
	compact := false
	err := st.Update(func(tx *ltree.Batch) error {
		for _, op := range plan {
			switch op.kind {
			case "insert":
				p := pick(op.n)
				_, _ = tx.InsertXML(p, min(op.pos, p.NumChildren()), op.fragment)
			case "delete":
				_ = tx.Delete(pick(op.n))
			case "move":
				dst := pick(op.dst)
				_ = tx.Move(pick(op.n), dst, min(op.pos, dst.NumChildren()))
			case "compact":
				compact = true // Compact is a store-level op, not a batch op
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if compact {
		if err := st.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
	}
}

// snapshotOf returns the store's v2 snapshot bytes.
func snapshotOf(t *testing.T, st *ltree.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// queryFingerprint renders a query result as tags+labels so result sets
// from different stores can be compared node-for-node.
func queryFingerprint(t *testing.T, st *ltree.Store, expr string) string {
	t.Helper()
	res, err := st.Query(expr)
	if err != nil {
		t.Fatalf("query %q: %v", expr, err)
	}
	var b bytes.Buffer
	for _, e := range res {
		lab, err := st.Label(e)
		if err != nil {
			t.Fatalf("query %q: result not bound: %v", expr, err)
		}
		fmt.Fprintf(&b, "<%s>(%d,%d);", e.Tag(), lab.Begin, lab.End)
	}
	return b.String()
}

// elementOrder renders the document-order element list with labels.
func elementOrder(t *testing.T, st *ltree.Store) string {
	t.Helper()
	var b bytes.Buffer
	for _, e := range st.Elements("*") {
		lab, err := st.Label(e)
		if err != nil {
			t.Fatalf("element order: %v", err)
		}
		fmt.Fprintf(&b, "<%s>(%d,%d);", e.Tag(), lab.Begin, lab.End)
	}
	return b.String()
}

var replayQueries = []string{"//item", "//name", "//item/name", "/site//person", "/site/regions/asia", "//*"}

func TestStoreWALReplayProperty(t *testing.T) {
	seeds := []int64{7, 21, 42}
	batchesPerSeed := 30
	if testing.Short() {
		seeds = seeds[:1]
		batchesPerSeed = 10
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			oracle, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			walStore, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
			if err != nil {
				t.Fatal(err)
			}
			w, err := storage.OpenWAL(dir, storage.WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := walStore.WithWAL(w); err != nil {
				t.Fatal(err)
			}

			// Concurrent readers on the WAL store while it commits: the
			// engine promises lock-free index reads during WAL appends.
			var stop atomic.Bool
			var wg sync.WaitGroup
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						if _, err := walStore.Query("//item/name"); err != nil {
							return
						}
						walStore.Elements("person")
					}
				}()
			}

			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < batchesPerSeed; i++ {
				plan := planBatch(rng, len(oracle.Elements("*")))
				applyBatch(t, oracle, plan)
				applyBatch(t, walStore, plan)
			}
			stop.Store(true)
			wg.Wait()

			// The two live stores must agree before recovery is even
			// attempted (same ops, same state — the deterministic-relabel
			// premise the WAL leans on).
			oracleSnap := snapshotOf(t, oracle)
			if !bytes.Equal(oracleSnap, snapshotOf(t, walStore)) {
				t.Fatal("live WAL store diverged from oracle under identical batches")
			}

			// Crash-free recovery: checkpoint + full log replay.
			w.Close()
			w2, err := storage.OpenWAL(dir, storage.WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			recovered, err := ltree.LoadLatest(w2)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if !bytes.Equal(oracleSnap, snapshotOf(t, recovered)) {
				t.Fatal("recovered snapshot differs from oracle (labels/DOM/tombstones)")
			}
			if got, want := elementOrder(t, recovered), elementOrder(t, oracle); got != want {
				t.Fatalf("element order diverged:\n got %s\nwant %s", got, want)
			}
			for _, q := range replayQueries {
				if got, want := queryFingerprint(t, recovered, q), queryFingerprint(t, oracle, q); got != want {
					t.Fatalf("query %q diverged:\n got %s\nwant %s", q, got, want)
				}
			}
			if err := recovered.Check(); err != nil {
				t.Fatalf("recovered store failed invariants: %v", err)
			}
			if err := oracle.Check(); err != nil {
				t.Fatalf("oracle failed invariants: %v", err)
			}
		})
	}
}

// flakyWAL injects append failures to exercise the store's suspension
// semantics: after a lost batch the log has a logical hole, so the store
// must refuse to append later batches until a Checkpoint re-bases it.
type flakyWAL struct {
	ltree.WALBackend
	failNext bool
}

var errInjected = fmt.Errorf("injected append failure")

func (f *flakyWAL) AppendBatch(payload []byte) (uint64, error) {
	if f.failNext {
		f.failNext = false
		return 0, errInjected
	}
	return f.WALBackend.AppendBatch(payload)
}

func TestStoreWALSuspendsAfterLostBatch(t *testing.T) {
	dir := t.TempDir()
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	flaky := &flakyWAL{WALBackend: inner}
	if err := st.WithWAL(flaky); err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertElement(st.Root(), 0, "logged"); err != nil {
		t.Fatal(err)
	}

	// A failed append loses the batch from the log: the commit reports it
	// and the store suspends appending so the tail cannot diverge.
	flaky.failNext = true
	if _, err := st.InsertElement(st.Root(), 0, "lost"); err == nil {
		t.Fatal("commit with failed append reported no error")
	}
	if _, err := st.InsertElement(st.Root(), 0, "after"); err == nil {
		t.Fatal("append after a lost batch was not suspended")
	}
	// The in-memory store kept all three commits (commit publishes even
	// when durability fails)…
	for _, tag := range []string{"logged", "lost", "after"} {
		if len(st.Elements(tag)) != 1 {
			t.Fatalf("in-memory store lost element <%s>", tag)
		}
	}
	// …and recovery of the pre-failure log still works: the durable
	// prefix is just the first commit.
	preRepair, err := ltree.LoadLatest(inner)
	if err != nil {
		t.Fatalf("recovery with a suspended tail: %v", err)
	}
	if len(preRepair.Elements("logged")) != 1 || len(preRepair.Elements("lost")) != 0 {
		t.Fatal("durable prefix should end before the lost batch")
	}

	// Checkpoint repairs: the snapshot covers the lost batches, the
	// suspension lifts, and subsequent commits are durable again.
	if _, err := st.Checkpoint(); err != nil {
		t.Fatalf("repair checkpoint: %v", err)
	}
	if _, err := st.InsertElement(st.Root(), 0, "resumed"); err != nil {
		t.Fatalf("commit after repair: %v", err)
	}
	recovered, err := ltree.LoadLatest(inner)
	if err != nil {
		t.Fatalf("recovery after repair: %v", err)
	}
	if !bytes.Equal(snapshotOf(t, st), snapshotOf(t, recovered)) {
		t.Fatal("post-repair recovery differs from the live store")
	}
}

// failingCkptWAL injects a Checkpoint failure.
type failingCkptWAL struct {
	ltree.WALBackend
	failNext bool
}

func (f *failingCkptWAL) Checkpoint(snapshot []byte) (uint64, error) {
	if f.failNext {
		f.failNext = false
		return 0, errInjected
	}
	return f.WALBackend.Checkpoint(snapshot)
}

// TestStoreWALFailedCheckpointSuspends: a failed Checkpoint has already
// drained the pending ops, so the store must suspend appending until a
// checkpoint succeeds — otherwise the log has a hole and recovery
// diverges.
func TestStoreWALFailedCheckpointSuspends(t *testing.T) {
	dir := t.TempDir()
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	flaky := &failingCkptWAL{WALBackend: inner}
	if err := st.WithWAL(flaky); err != nil {
		t.Fatal(err)
	}
	// Pending direct-mutation op, then a failing checkpoint drains it.
	if _, err := st.Document().InsertElement(st.Root(), 0, "direct"); err != nil {
		t.Fatal(err)
	}
	flaky.failNext = true
	if _, err := st.Checkpoint(); err == nil {
		t.Fatal("injected checkpoint failure not reported")
	}
	if _, err := st.InsertElement(st.Root(), 0, "after"); err == nil {
		t.Fatal("append after a failed checkpoint was not suspended")
	}
	// A successful checkpoint repairs, and recovery matches the live
	// store including the mutation the failed checkpoint had drained.
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertElement(st.Root(), 0, "resumed"); err != nil {
		t.Fatal(err)
	}
	recovered, err := ltree.LoadLatest(inner)
	if err != nil {
		t.Fatalf("recovery after repaired checkpoint: %v", err)
	}
	if !bytes.Equal(snapshotOf(t, st), snapshotOf(t, recovered)) {
		t.Fatal("recovered snapshot differs from live store")
	}
	for _, tag := range []string{"direct", "after", "resumed"} {
		if len(recovered.Elements(tag)) != 1 {
			t.Fatalf("recovered store missing <%s>", tag)
		}
	}
}

// TestStoreWALCheckpointFoldsPendingOps covers the direct-mutation
// corner: ops recorded by Document()-level edits that were never
// committed must be absorbed by a Checkpoint (the snapshot covers them),
// not appended after it — that would replay them twice and fail
// recovery with ErrReplayDiverged.
func TestStoreWALCheckpointFoldsPendingOps(t *testing.T) {
	dir := t.TempDir()
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	// Direct document mutation, no commit: the op sits pending.
	if _, err := st.Document().InsertElement(st.Root(), 0, "direct"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A normal commit afterwards must not drag the pre-checkpoint op in.
	if _, err := st.InsertElement(st.Root(), 0, "after"); err != nil {
		t.Fatal(err)
	}
	recovered, err := ltree.LoadLatest(w)
	if err != nil {
		t.Fatalf("recovery after checkpoint-folded ops: %v", err)
	}
	if !bytes.Equal(snapshotOf(t, st), snapshotOf(t, recovered)) {
		t.Fatal("recovered snapshot differs from live store")
	}
	if len(recovered.Elements("direct")) != 1 || len(recovered.Elements("after")) != 1 {
		t.Fatal("recovered store missing elements")
	}
	if err := recovered.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreWALCheckpointMidStream interleaves checkpoints with batches:
// recovery must come out identical no matter where the snapshot/replay
// boundary falls.
func TestStoreWALCheckpointMidStream(t *testing.T) {
	oracle, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	walStore, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := walStore.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		plan := planBatch(rng, len(oracle.Elements("*")))
		applyBatch(t, oracle, plan)
		applyBatch(t, walStore, plan)
		if i%7 == 3 {
			if _, err := walStore.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at batch %d: %v", i, err)
			}
		}
	}
	recovered, err := ltree.LoadLatest(w)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if !bytes.Equal(snapshotOf(t, oracle), snapshotOf(t, recovered)) {
		t.Fatal("recovered snapshot differs from oracle across checkpoints")
	}
	if err := recovered.Check(); err != nil {
		t.Fatal(err)
	}
}
