package ltree_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	ltree "github.com/ltree-db/ltree"
)

// sampleChangeSet covers every change kind and the stats block — the
// full surface of the codec.
func sampleChangeSet() *ltree.ChangeSet {
	cs := &ltree.ChangeSet{From: 7, To: 9}
	for i := range cs.FromRoot {
		cs.FromRoot[i] = byte(i)
		cs.ToRoot[i] = byte(255 - i)
	}
	cs.Changes = []ltree.Change{
		{Tag: "item", Kind: ltree.ChangeAdded, New: ltree.Label{Begin: 10, End: 21}, Level: 3},
		{Tag: "person", Kind: ltree.ChangeRemoved, Old: ltree.Label{Begin: 4, End: 5}, Level: 2, OldLevel: 2},
		{Tag: "note", Kind: ltree.ChangeRelabeled,
			Old: ltree.Label{Begin: 6, End: 7}, New: ltree.Label{Begin: 30, End: 31}, Level: 4, OldLevel: 2},
	}
	cs.Stats = ltree.DiffStats{Tags: 3, TagsSkipped: 12, ChunksShared: 40, ChunksTouched: 2, Changes: 3}
	return cs
}

// TestChangeSetRoundTrip checks that Encode → Decode reproduces every
// field the codec promises to carry (all but the process-local Node).
func TestChangeSetRoundTrip(t *testing.T) {
	cs := sampleChangeSet()
	var buf bytes.Buffer
	if err := cs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ltree.DecodeChangeSet(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cs) {
		t.Fatalf("round trip mutated the set:\n got %+v\nwant %+v", got, cs)
	}

	// Empty set round-trips too.
	empty := &ltree.ChangeSet{From: 1, To: 1}
	buf.Reset()
	if err := empty.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = ltree.DecodeChangeSet(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 1 || got.To != 1 || len(got.Changes) != 0 {
		t.Fatalf("empty set decoded as %+v", got)
	}
}

// TestChangeSetDecodeRejectsCorrupt drives the decoder through every
// torn prefix of a valid stream plus the classic corruptions; each must
// surface ErrCorruptChangeSet, never a partial set.
func TestChangeSetDecodeRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChangeSet().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	for i := 0; i < len(valid); i++ {
		if _, err := ltree.DecodeChangeSet(valid[:i]); !errors.Is(err, ltree.ErrCorruptChangeSet) {
			t.Fatalf("truncation at %d/%d decoded: %v", i, len(valid), err)
		}
	}
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	if _, err := ltree.DecodeChangeSet(bad); !errors.Is(err, ltree.ErrCorruptChangeSet) {
		t.Fatalf("bad magic decoded: %v", err)
	}
	trailing := append(append([]byte(nil), valid...), 0)
	if _, err := ltree.DecodeChangeSet(trailing); !errors.Is(err, ltree.ErrCorruptChangeSet) {
		t.Fatalf("trailing garbage decoded: %v", err)
	}

	// Unknown change kind: encoding refuses to produce one, and the
	// decoder refuses a stream claiming one.
	cs := sampleChangeSet()
	cs.Changes[0].Kind = ltree.ChangeKind(99)
	if err := cs.Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("encode accepted an unknown change kind")
	}
}

// FuzzChangeSetDecode asserts decoder totality (no panic, no partial
// result on error) and that anything it accepts re-encodes to a stream
// that decodes identically. The seed corpus under
// testdata/fuzz/FuzzChangeSetDecode pins the interesting shapes; run
// with WRITE_CORPUS=1 on TestChangeSetWriteCorpus to regenerate it.
func FuzzChangeSetDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cs, err := ltree.DecodeChangeSet(data)
		if err != nil {
			if cs != nil {
				t.Fatal("decode returned a set alongside an error")
			}
			return
		}
		var buf bytes.Buffer
		if err := cs.Encode(&buf); err != nil {
			t.Fatalf("re-encoding an accepted set: %v", err)
		}
		cs2, err := ltree.DecodeChangeSet(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decoding a re-encoded set: %v", err)
		}
		if !reflect.DeepEqual(cs, cs2) {
			t.Fatalf("decode/encode/decode not a fixpoint:\n got %+v\nwant %+v", cs2, cs)
		}
	})
}

// fuzzSeeds builds the in-code seed inputs: the canonical sample, an
// empty set, and near-miss corruptions the decoder must survive.
func fuzzSeeds() [][]byte {
	var out [][]byte
	for _, cs := range []*ltree.ChangeSet{sampleChangeSet(), {From: 1, To: 1}} {
		var buf bytes.Buffer
		if err := cs.Encode(&buf); err == nil {
			out = append(out, buf.Bytes())
		}
	}
	valid := out[0]
	out = append(out,
		nil,
		[]byte("LTCS"),
		valid[:len(valid)/2],
		append(append([]byte(nil), valid...), 0xff),
	)
	return out
}

// TestChangeSetWriteCorpus regenerates the checked-in fuzz seed corpus
// when run with WRITE_CORPUS=1; otherwise it verifies every corpus file
// still parses as a Go fuzz input. Keeping the seeds on disk lets the
// CI fuzz smoke start from the interesting shapes without a warmup.
func TestChangeSetWriteCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzChangeSetDecode")
	if os.Getenv("WRITE_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range fuzzSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing (regenerate with WRITE_CORPUS=1): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("fuzz corpus directory is empty")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("go test fuzz v1\n")) {
			t.Fatalf("%s: not a go fuzz corpus entry", e.Name())
		}
	}
}
