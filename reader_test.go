package ltree_test

import (
	"testing"

	ltree "github.com/ltree-db/ltree"
)

// exerciseReader drives the whole Reader surface against one provider,
// knowing only that it holds at least two <person> elements under a
// <people> parent. Everything here is role-neutral: the same assertions
// must hold for a writable store, a log-shipped follower, and a sharded
// forest composite.
func exerciseReader(t *testing.T, r ltree.Reader) {
	t.Helper()

	people, err := r.Query("//person")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(people) < 2 {
		t.Fatalf("Query //person: %d results, want >= 2", len(people))
	}
	if got := r.Elements("person"); len(got) != len(people) {
		t.Fatalf("Elements person: %d, Query found %d", len(got), len(people))
	}

	// Every person sits under exactly one <people> parent, and where
	// ancestry holds, so does numeric label containment. Labels are
	// comparable only within one document (one forest shard), so the
	// match is found through IsAncestor rather than assumed globally.
	parents := r.Elements("people")
	for _, p := range people {
		matched := 0
		for _, parent := range parents {
			anc, err := r.IsAncestor(parent, p)
			if err != nil {
				t.Fatalf("IsAncestor: %v", err)
			}
			if !anc {
				continue
			}
			matched++
			lab, err := r.Label(parent)
			if err != nil {
				t.Fatalf("Label: %v", err)
			}
			pl, err := r.Label(p)
			if err != nil {
				t.Fatalf("Label person: %v", err)
			}
			if !(lab.Begin < pl.Begin && pl.End < lab.End) {
				t.Fatalf("person label %v not inside its people label %v", pl, lab)
			}
		}
		if matched != 1 {
			t.Fatalf("person matched %d <people> ancestors, want 1", matched)
		}
	}
	// Compare orders siblings by label; like labels it is a
	// within-document relation, so compare two persons sharing a parent.
	for _, parent := range parents {
		var sibs []*ltree.Elem
		for _, p := range people {
			if anc, err := r.IsAncestor(parent, p); err == nil && anc {
				sibs = append(sibs, p)
			}
		}
		if len(sibs) < 2 {
			continue
		}
		if c, err := r.Compare(sibs[0], sibs[1]); err != nil || c >= 0 {
			t.Fatalf("Compare(first, second) = %d, %v; want < 0", c, err)
		}
		break
	}

	// The transactional core agrees with the eager wrappers and with
	// the published version number.
	ver := r.IndexVersion()
	tx := r.SnapshotView()
	defer tx.Close()
	if tx.Version() != ver {
		t.Fatalf("SnapshotView pinned %d, IndexVersion %d", tx.Version(), ver)
	}
	if got := tx.Elements("person"); len(got) != len(people) {
		t.Fatalf("snapshot sees %d persons, eager saw %d", len(got), len(people))
	}
	tx2, err := r.SnapshotAt(ver)
	if err != nil {
		t.Fatalf("SnapshotAt(current): %v", err)
	}
	defer tx2.Close()
	if err := r.View(func(tx *ltree.Txn) error {
		if tx.Version() != ver {
			t.Fatalf("View pinned %d, want %d", tx.Version(), ver)
		}
		return nil
	}); err != nil {
		t.Fatalf("View: %v", err)
	}

	rs := r.ReaderStats()
	if rs.IndexVersion != ver {
		t.Fatalf("ReaderStats.IndexVersion %d, IndexVersion %d", rs.IndexVersion, ver)
	}
	if rs.TxnOpen < 2 {
		t.Fatalf("ReaderStats.TxnOpen %d with two snapshots held", rs.TxnOpen)
	}
}

// TestReaderSurface runs the shared read surface against all three
// providers — the satellite's point: a generic consumer written once
// against Reader works unchanged on any node role.
func TestReaderSurface(t *testing.T) {
	t.Run("store", func(t *testing.T) {
		st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
		if err != nil {
			t.Fatal(err)
		}
		exerciseReader(t, st)
	})

	t.Run("follower", func(t *testing.T) {
		st, w := openLeader(t, t.TempDir())
		// A committed batch on top of the seed, so the follower reads
		// replicated — not just checkpoint-restored — state.
		if err := st.Update(func(b *ltree.Batch) error {
			_, err := b.InsertXML(st.Elements("people")[0], 0, "<person>carol</person>")
			return err
		}); err != nil {
			t.Fatal(err)
		}
		f, err := ltree.OpenFollower(w)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.WaitFor(w.Seq(), waitTimeout); err != nil {
			t.Fatal(err)
		}
		exerciseReader(t, f)
	})

	t.Run("forest", func(t *testing.T) {
		f, err := ltree.NewForest(ltree.ForestOptions{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Put("a", replaySeedDoc); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Put("b", `<site><people><person>zoe</person></people></site>`); err != nil {
			t.Fatal(err)
		}
		exerciseReader(t, f)
	})
}
