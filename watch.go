package ltree

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/query"
)

// This file is the change-feed surface: Watch turns the store's
// published version stream into a subscription — a cursor of (version,
// root hash, change set) events computed by the same hash-pruned diff
// walk DiffVersions uses. Watchers ride the commit/apply seam
// (Store.publish), so every path that publishes a version — live
// commits, replay, follower apply, compaction — wakes them; nothing
// polls.

// WatchOptions configures a Watch subscription. The zero value watches
// everything from the current version forward.
type WatchOptions struct {
	// Since, when non-zero, starts the feed at an older version: the
	// first event covers Since → current. The version must still be
	// reachable (pinned by some open transaction, or still current) —
	// ErrVersionRetired otherwise. Zero starts at the current version:
	// only future commits produce events.
	Since uint64

	// Path, when non-empty, scopes the feed to one subtree family: only
	// changes at or under a match of this path expression are delivered
	// ("what changed under //item?"). Removals are scoped against the
	// event's older version, additions against its newer one, so a
	// change escapes the filter only if it was outside the scope on
	// both sides. Events with no in-scope changes are suppressed.
	Path string

	// Buffer is the event channel's capacity. 0 means unbuffered: the
	// feed applies backpressure, and a slow consumer receives coalesced
	// events (one event spanning every version it missed) rather than a
	// growing queue.
	Buffer int
}

// WatchEvent is one feed delivery: the store moved from version From to
// version To, whose index content hash is Root, with Changes holding
// the entry-level difference. Consecutive events chain: the next
// event's From is this event's To. A slow consumer sees fewer, wider
// events — From jumps over the coalesced versions — never a gap.
type WatchEvent struct {
	From    uint64
	To      uint64
	Root    Hash // content hash of version To
	Changes *ChangeSet
}

// Watcher is an active subscription. Receive events from C; Close stops
// the feed and closes C. After C closes, Err reports why the feed
// ended: nil after Close, the terminal error otherwise (a diff failure,
// or the store dropping the watcher's pinned version — both indicate
// bugs rather than operational states).
type Watcher struct {
	// C delivers the feed in order. It closes when the feed ends.
	C <-chan WatchEvent

	done chan struct{}
	wg   sync.WaitGroup

	mu  sync.Mutex
	err error

	closeOnce sync.Once
}

// Close stops the subscription, releases its version pins, and closes
// C. Safe to call concurrently with receives, and idempotent.
func (w *Watcher) Close() error {
	w.closeOnce.Do(func() { close(w.done) })
	w.wg.Wait()
	return nil
}

// Err returns the error that terminated the feed, nil while it runs or
// after a clean Close. Valid once C is closed.
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *Watcher) fail(err error) {
	w.mu.Lock()
	w.err = err
	w.mu.Unlock()
}

// Watch subscribes to the store's change feed. Every published index
// version — commits, applied replication batches, compactions — wakes
// the feed, which diffs the subscriber's last-delivered version against
// the newest one (hash-pruned, O(changed chunks)) and delivers the
// result as one WatchEvent. Delivery is in-order and gap-free; a
// consumer that falls behind receives coalesced events rather than a
// queue. See WatchOptions for starting offset, path scoping, and
// buffering; Close the returned Watcher to release its version pins.
//
// Watch pins at most two index versions at a time (the last-delivered
// one and, transiently, the one being diffed), so a parked watcher
// retains O(changed chunks) of superseded index state, not the whole
// history.
func (s *Store) Watch(opts WatchOptions) (*Watcher, error) {
	var path *query.Path
	if opts.Path != "" {
		p, err := query.Parse(opts.Path)
		if err != nil {
			return nil, fmt.Errorf("ltree: watch: %w", err)
		}
		path = p
	}
	var last *index.Version
	var release func()
	if opts.Since != 0 {
		v, rel, ok := s.vers.PinAt(opts.Since)
		if !ok {
			return nil, fmt.Errorf("ltree: watch since version %d: %w", opts.Since, ErrVersionRetired)
		}
		last, release = v, rel
	} else {
		last, release = s.vers.Pin()
	}
	ch := make(chan WatchEvent, opts.Buffer)
	w := &Watcher{C: ch, done: make(chan struct{})}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(ch)
		defer func() { release() }()
		for {
			// Snapshot the broadcast channel before reading the current
			// version: a publish between the two closes the snapshotted
			// channel, so the wait below cannot miss it.
			bump := s.bumpChan()
			cur, rel := s.vers.Pin()
			if cur.N == last.N {
				rel()
				select {
				case <-w.done:
					return
				case <-bump:
					continue
				}
			}
			cs, err := diffPinned(last, cur)
			if err != nil {
				rel()
				w.fail(err)
				return
			}
			ev := WatchEvent{From: last.N, To: cur.N, Root: cs.ToRoot, Changes: cs}
			deliver := true
			if path != nil {
				cs.Changes = scopeChanges(s, last, cur, path, cs.Changes)
				cs.Stats.Changes = len(cs.Changes)
				deliver = len(cs.Changes) > 0
			}
			if deliver {
				select {
				case <-w.done:
					rel()
					return
				case ch <- ev:
				}
			}
			release()
			last, release = cur, rel
		}
	}()
	return w, nil
}

// scope is the label family of one path evaluation: match begins sorted
// ascending, with a running prefix maximum of the match ends. Interval
// labels in one version are laminar (nested or disjoint, paper §2), so
// "is L at or under some match" reduces to: the last match starting at
// or before L.Begin — or one of its scope ancestors, which the prefix
// maximum folds in — must end at or after L.End.
type scope struct {
	begins []uint64
	maxEnd []uint64
}

func (sc scope) contains(l Label) bool {
	i := sort.Search(len(sc.begins), func(i int) bool { return sc.begins[i] > l.Begin })
	return i > 0 && sc.maxEnd[i-1] >= l.End
}

// scopeFor evaluates the path against one pinned version and builds its
// match family. The borrowed Txn never escapes; the caller's pin keeps
// the version alive.
func scopeFor(s *Store, v *index.Version, p *query.Path) scope {
	tx := &Txn{s: s, ver: v}
	var sc scope
	for _, l := range tx.resultsFor(p).Labeled() {
		sc.begins = append(sc.begins, l.Begin)
		sc.maxEnd = append(sc.maxEnd, l.End)
	}
	// Query results arrive in document order (begin-sorted) already;
	// sort defensively, then fold the ends into a prefix maximum.
	sort.Sort(&scopeSorter{sc})
	for i := 1; i < len(sc.maxEnd); i++ {
		if sc.maxEnd[i] < sc.maxEnd[i-1] {
			sc.maxEnd[i] = sc.maxEnd[i-1]
		}
	}
	return sc
}

type scopeSorter struct{ sc scope }

func (s *scopeSorter) Len() int           { return len(s.sc.begins) }
func (s *scopeSorter) Less(i, j int) bool { return s.sc.begins[i] < s.sc.begins[j] }
func (s *scopeSorter) Swap(i, j int) {
	s.sc.begins[i], s.sc.begins[j] = s.sc.begins[j], s.sc.begins[i]
	s.sc.maxEnd[i], s.sc.maxEnd[j] = s.sc.maxEnd[j], s.sc.maxEnd[i]
}

// scopeChanges filters a change set to the subtree family matched by
// the path: removals and the old half of relabels test against the
// older version's matches (where the entry actually lived), additions
// and the new half against the newer version's.
func scopeChanges(s *Store, va, vb *index.Version, p *query.Path, in []Change) []Change {
	scA := scopeFor(s, va, p)
	scB := scopeFor(s, vb, p)
	out := in[:0]
	for _, c := range in {
		keep := false
		switch c.Kind {
		case ChangeRemoved:
			keep = scA.contains(c.Old)
		case ChangeAdded:
			keep = scB.contains(c.New)
		case ChangeRelabeled:
			keep = scA.contains(c.Old) || scB.contains(c.New)
		}
		if keep {
			out = append(out, c)
		}
	}
	return out
}
