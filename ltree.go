package ltree

import (
	"io"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/virtual"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Params selects the L-Tree shape (the paper's f and s): s ≥ 2 pieces per
// split, rebuild arity f/s ≥ 2 (f a multiple of s). Larger f trades label
// bits for fewer relabelings; see the tuning helpers in Analyze*.
type Params = core.Params

// DefaultParams is a balanced general-purpose choice: with f=8, s=2 the
// tree rebuilds 4-ary, labels stay near word width for realistic document
// sizes, and the measured amortized cost sits close to the §3.2 optimum
// across 10^4–10^7 tags.
var DefaultParams = Params{F: 8, S: 2}

// Tree is the materialized L-Tree over abstract ordered slots (paper §2).
// Use it directly when labeling non-XML ordered lists.
type Tree = core.Tree

// Node is a slot of a Tree; its Num() is the label.
type Node = core.Node

// Virtual is the virtual L-Tree (paper §4.2): only the labels are stored,
// in a counted B-tree; the structure is implicit in their radix-(f−1)
// digits. It emits exactly the same labels as Tree.
type Virtual = virtual.Tree

// Counters are the maintenance cost counters every structure reports
// (ancestor updates, relabeled nodes, splits — the paper's cost units).
type Counters = stats.Counters

// Document is a labeled XML document: every begin/end tag and text
// section owns an L-Tree leaf (paper §2.1). Most callers want Store.
type Document = document.Doc

// Label is an element's (begin, end) interval. Containment is ancestry.
type Label = document.Label

// Elem is an XML node (element or text) of a Document.
type Elem = xmldom.Node

// Attr is an XML attribute.
type Attr = xmldom.Attr

// NodeKind discriminates Elem kinds; see ElementNode and TextNode.
type NodeKind = xmldom.Kind

// Elem kinds, reported by (*Elem).Kind.
const (
	ElementNode NodeKind = xmldom.Element
	TextNode    NodeKind = xmldom.Text
)

// XMLDocument is the unlabeled XML DOM (parse/edit/serialize).
type XMLDocument = xmldom.Document

// New returns an empty materialized L-Tree.
func New(p Params) (*Tree, error) { return core.New(p) }

// NewVirtual returns an empty virtual L-Tree.
func NewVirtual(p Params) (*Virtual, error) { return virtual.New(p) }

// ParseXML parses an XML document without labeling it (pure DOM).
func ParseXML(r io.Reader) (*XMLDocument, error) { return xmldom.Parse(r) }

// NewElement returns a detached element for subtree construction.
func NewElement(tag string, attrs ...Attr) *Elem { return xmldom.NewElement(tag, attrs...) }

// NewText returns a detached text node.
func NewText(data string) *Elem { return xmldom.NewText(data) }

// LoadDocument labels a parsed XML document (lower-level than Open: no
// index caching, no locking).
func LoadDocument(x *XMLDocument, p Params) (*Document, error) {
	return document.Load(x, p)
}
