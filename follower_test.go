package ltree_test

// Replication correctness: a log-shipping follower must equal the
// leader oracle at every acknowledged sequence number. The differential
// property test drives the same random batch generator as the WAL replay
// suite (store_replay_test.go) against a WAL-backed leader, attaches a
// follower at a random batch index, and asserts after every leader
// commit — once the follower acknowledges the batch — that the replica
// is bit-identical: v2 snapshot bytes, document-order element list, and
// query fingerprints. Background readers hammer the follower's Txn
// surface throughout so `go test -race` patrols the apply-loop seams.
// Companion tests pin restart mid-catch-up (crash = Close + reattach),
// leader checkpoints racing a lagging follower, and promote-to-writable.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

// waitTimeout bounds every follower acknowledgment in tests.
const waitTimeout = 30 * time.Second

// readSurface is the store/follower read API the fingerprint helpers
// need — both *ltree.Store and *ltree.Follower satisfy it.
type readSurface interface {
	Query(expr string) ([]*ltree.Elem, error)
	Label(n *ltree.Elem) (ltree.Label, error)
	Elements(tag string) []*ltree.Elem
	Snapshot(w *bytes.Buffer) error
}

// storeSurface adapts *ltree.Store's io.Writer-based Snapshot.
type storeSurface struct{ *ltree.Store }

func (s storeSurface) Snapshot(w *bytes.Buffer) error { return s.Store.Snapshot(w) }

// followerSurface adapts *ltree.Follower the same way.
type followerSurface struct{ *ltree.Follower }

func (f followerSurface) Snapshot(w *bytes.Buffer) error { return f.Follower.Snapshot(w) }

// fingerprintOf renders snapshot bytes + element order + query results
// into one comparable string.
func fingerprintOf(t *testing.T, r readSurface) string {
	t.Helper()
	var b bytes.Buffer
	var snap bytes.Buffer
	if err := r.Snapshot(&snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	fmt.Fprintf(&b, "snap:%x;", snap.Bytes())
	for _, e := range r.Elements("*") {
		lab, err := r.Label(e)
		if err != nil {
			t.Fatalf("element order: %v", err)
		}
		fmt.Fprintf(&b, "<%s>(%d,%d);", e.Tag(), lab.Begin, lab.End)
	}
	for _, q := range replayQueries {
		res, err := r.Query(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		fmt.Fprintf(&b, "|%s:", q)
		for _, e := range res {
			lab, err := r.Label(e)
			if err != nil {
				t.Fatalf("query %q result unbound: %v", q, err)
			}
			fmt.Fprintf(&b, "<%s>(%d,%d);", e.Tag(), lab.Begin, lab.End)
		}
	}
	return b.String()
}

// openLeader builds a WAL-backed leader store in dir.
func openLeader(t *testing.T, dir string) (*ltree.Store, *storage.WAL) {
	t.Helper()
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	return st, w
}

// attachLocal hands the follower the leader's in-process WAL handle —
// the PR-5 shape.
func attachLocal(t *testing.T, w *storage.WAL) ltree.WALBackend {
	t.Helper()
	return w
}

// attachSocket serves the leader's WAL through a ShipServer and hands
// the follower a RemoteTailSource dialing it over net.Pipe — the whole
// replication stream crosses a real byte transport, yet the test body
// is identical to the in-process run.
func attachSocket(t *testing.T, w *storage.WAL) ltree.WALBackend {
	t.Helper()
	srv, err := storage.NewShipServer(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	dial := func() (net.Conn, error) {
		c1, c2 := net.Pipe()
		go srv.ServeConn(c2)
		return c1, nil
	}
	src, err := storage.OpenRemoteTail(dial, storage.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

func TestFollowerDifferentialProperty(t *testing.T) {
	t.Run("local", func(t *testing.T) { runFollowerDifferential(t, attachLocal) })
	t.Run("socket", func(t *testing.T) { runFollowerDifferential(t, attachSocket) })
}

// runFollowerDifferential is the PR-5 differential property test body,
// parameterized only by how the follower reaches the leader's log.
func runFollowerDifferential(t *testing.T, attach func(t *testing.T, w *storage.WAL) ltree.WALBackend) {
	seeds := []int64{11, 37, 73}
	batchesPerSeed := 25
	if testing.Short() {
		seeds = seeds[:1]
		batchesPerSeed = 10
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			leader, w := openLeader(t, t.TempDir())
			defer w.Close()

			rng := rand.New(rand.NewSource(seed))
			attachAt := rng.Intn(batchesPerSeed - 1) // attach mid-stream
			var f *ltree.Follower
			var stop atomic.Bool
			var wg sync.WaitGroup

			for i := 0; i < batchesPerSeed; i++ {
				if i == attachAt {
					var err error
					f, err = ltree.OpenFollower(attach(t, w))
					if err != nil {
						t.Fatalf("attach at batch %d: %v", i, err)
					}
					// Background readers on the follower's snapshot-
					// isolated surface while batches keep applying.
					for r := 0; r < 2; r++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for !stop.Load() {
								err := f.View(func(tx *ltree.Txn) error {
									res, err := tx.Query("//item/name")
									if err != nil {
										return err
									}
									res.Collect()
									tx.Elements("person")
									return nil
								})
								if err != nil {
									return
								}
							}
						}()
					}
				}

				applyBatch(t, leader, planBatch(rng, len(leader.Elements("*"))))
				if i%7 == 5 {
					// Leader checkpoints mid-stream: the retention lease
					// must keep the attached (possibly lagging) follower
					// streaming across the truncation.
					if _, err := leader.Checkpoint(); err != nil {
						t.Fatalf("leader checkpoint at batch %d: %v", i, err)
					}
				}
				if f == nil {
					continue
				}
				seq := w.Seq()
				if err := f.WaitFor(seq, waitTimeout); err != nil {
					t.Fatalf("batch %d (seq %d) not acknowledged: %v", i, seq, err)
				}
				// The acked follower is the leader oracle, bit for bit.
				if got, want := fingerprintOf(t, followerSurface{f}), fingerprintOf(t, storeSurface{leader}); got != want {
					t.Fatalf("follower diverged from leader at seq %d:\n got %.200s…\nwant %.200s…", seq, got, want)
				}
			}
			stop.Store(true)
			wg.Wait()

			st := f.Stats()
			if st.Err != nil {
				t.Fatalf("follower reported terminal error: %v", st.Err)
			}
			if !st.Running {
				t.Fatal("healthy attached follower reports Running=false")
			}
			if st.Lag != 0 {
				t.Fatalf("follower lag %d after full acknowledgment", st.Lag)
			}
			if st.Batches == 0 {
				t.Fatal("follower applied no batches despite mid-stream attach")
			}
			if err := f.Check(); err != nil {
				t.Fatalf("follower failed invariants: %v", err)
			}
			if err := f.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if st := f.Stats(); st.Running || st.Err != nil {
				t.Fatalf("after clean Close: Running=%v Err=%v, want false/nil", st.Running, st.Err)
			}
		})
	}
}

// TestFollowerRestartMidCatchUp simulates a follower crash: Close tears
// the replica down at whatever point catch-up reached (the retention
// lease dies with it), more batches land, and a fresh follower attaches
// — re-seeding from the newest checkpoint exactly like WAL recovery —
// and must converge on the leader again.
func TestFollowerRestartMidCatchUp(t *testing.T) {
	leader, w := openLeader(t, t.TempDir())
	defer w.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		applyBatch(t, leader, planBatch(rng, len(leader.Elements("*"))))
	}

	f1, err := ltree.OpenFollower(w)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-catch-up: Close without waiting for acknowledgment.
	if err := f1.Close(); err != nil {
		t.Fatalf("crash close: %v", err)
	}

	// Leader keeps going, including a checkpoint that truncates the log
	// the crashed follower was reading.
	for i := 0; i < 6; i++ {
		applyBatch(t, leader, planBatch(rng, len(leader.Elements("*"))))
		if i == 2 {
			if _, err := leader.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}

	f2, err := ltree.OpenFollower(w)
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}
	defer f2.Close()
	if err := f2.WaitFor(w.Seq(), waitTimeout); err != nil {
		t.Fatalf("restarted follower did not catch up: %v", err)
	}
	if got, want := fingerprintOf(t, followerSurface{f2}), fingerprintOf(t, storeSurface{leader}); got != want {
		t.Fatal("restarted follower diverged from leader")
	}
	if err := f2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerSurvivesAutoCheckpoint runs a leader with an aggressive
// auto-checkpoint policy (every other record trips it) under an attached
// follower: truncation happens constantly mid-stream and the follower
// must never see a gap.
func TestFollowerSurvivesAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	leader, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := leader.WithWAL(w, ltree.AutoCheckpoint(0, 2)); err != nil {
		t.Fatal(err)
	}
	f, err := ltree.OpenFollower(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		applyBatch(t, leader, planBatch(rng, len(leader.Elements("*"))))
	}
	if err := f.WaitFor(w.Seq(), waitTimeout); err != nil {
		t.Fatalf("follower under auto-checkpoint churn: %v", err)
	}
	if got, want := fingerprintOf(t, followerSurface{f}), fingerprintOf(t, storeSurface{leader}); got != want {
		t.Fatal("follower diverged under auto-checkpoint churn")
	}
}

func TestFollowerPromote(t *testing.T) {
	leader, w := openLeader(t, t.TempDir())
	defer w.Close()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 8; i++ {
		applyBatch(t, leader, planBatch(rng, len(leader.Elements("*"))))
	}
	f, err := ltree.OpenFollower(w)
	if err != nil {
		t.Fatal(err)
	}

	// Leader handoff: the old leader has stopped committing; promote
	// drains to the durable end and hands back a writable store.
	promoted, err := f.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if got, want := fingerprintOf(t, storeSurface{promoted}), fingerprintOf(t, storeSurface{leader}); got != want {
		t.Fatal("promoted store differs from the old leader's durable state")
	}

	// The promoted store takes writes…
	if _, err := promoted.InsertElement(promoted.Root(), 0, "after-promote"); err != nil {
		t.Fatalf("write on promoted store: %v", err)
	}
	if len(promoted.Elements("after-promote")) != 1 {
		t.Fatal("promoted store lost the post-promote write")
	}
	if err := promoted.Check(); err != nil {
		t.Fatalf("promoted store failed invariants: %v", err)
	}
	// …and can become durable again on a fresh WAL.
	w2, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := promoted.WithWAL(w2); err != nil {
		t.Fatalf("fresh WAL on promoted store: %v", err)
	}
	if _, err := promoted.InsertElement(promoted.Root(), 0, "durable-again"); err != nil {
		t.Fatal(err)
	}
	recovered, err := ltree.LoadLatest(w2)
	if err != nil {
		t.Fatalf("recovery of the new leader: %v", err)
	}
	if got, want := fingerprintOf(t, storeSurface{recovered}), fingerprintOf(t, storeSurface{promoted}); got != want {
		t.Fatal("new leader's recovery diverged")
	}

	// The follower handle is spent: no second promote, no waiting, but
	// reads still serve the final state.
	if _, err := f.Promote(); err == nil {
		t.Fatal("second promote succeeded")
	}
	if err := f.WaitFor(^uint64(0), time.Second); err == nil {
		t.Fatal("WaitFor after promote succeeded")
	}
	if len(f.Elements("*")) == 0 {
		t.Fatal("reads through the promoted-away follower stopped working")
	}
}

// lossyWAL injects one append failure while still exposing the full
// tail-source capability set (it embeds the concrete *storage.WAL, so
// Retain/AppendWatch/MarkRebased promote through).
type lossyWAL struct {
	*storage.WAL
	failNext bool
}

func (l *lossyWAL) AppendBatch(p []byte) (uint64, error) {
	if l.failNext {
		l.failNext = false
		return 0, errInjected
	}
	return l.WAL.AppendBatch(p)
}

// TestFollowerStopsOnLeaderLogRepair pins the lost-batch story end to
// end: the leader loses a batch (failed append), suspends, and repairs
// via Checkpoint — which re-bases the log. An attached follower must
// stop with ErrShipRebased (its stream can no longer reconstruct the
// leader) while keeping its last applied state readable; a fresh
// follower re-seeds from the repair checkpoint and sees everything,
// including the batch the log lost.
func TestFollowerStopsOnLeaderLogRepair(t *testing.T) {
	leader, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	lossy := &lossyWAL{WAL: inner}
	if err := leader.WithWAL(lossy); err != nil {
		t.Fatal(err)
	}
	f, err := ltree.OpenFollower(inner)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := leader.InsertElement(leader.Root(), 0, "logged"); err != nil {
		t.Fatal(err)
	}
	if err := f.WaitFor(inner.Seq(), waitTimeout); err != nil {
		t.Fatal(err)
	}

	// Lose a batch, then repair: the checkpoint covers state the log
	// never got, so the shipped stream is re-based.
	lossy.failNext = true
	if _, err := leader.InsertElement(leader.Root(), 0, "lost"); err == nil {
		t.Fatal("lost append reported no error")
	}
	if _, err := leader.Checkpoint(); err != nil {
		t.Fatalf("repair checkpoint: %v", err)
	}
	if _, err := leader.InsertElement(leader.Root(), 0, "after"); err != nil {
		t.Fatal(err)
	}

	// The attached follower stops with the re-base error…
	if err := f.WaitFor(inner.Seq(), waitTimeout); !errors.Is(err, storage.ErrShipRebased) {
		t.Fatalf("follower across a log repair: err=%v, want ErrShipRebased", err)
	}
	if st := f.Stats(); !errors.Is(st.Err, storage.ErrShipRebased) || st.Running {
		t.Fatalf("Stats() = (Running=%v, Err=%v), want (false, ErrShipRebased)", st.Running, st.Err)
	}
	// …still serving its pre-repair state…
	if len(f.Elements("logged")) != 1 || len(f.Elements("lost")) != 0 {
		t.Fatal("stopped follower does not serve its last applied state")
	}
	// …and a fresh follower re-seeds from the repair checkpoint, lost
	// batch included.
	f2, err := ltree.OpenFollower(inner)
	if err != nil {
		t.Fatalf("re-seed: %v", err)
	}
	defer f2.Close()
	if err := f2.WaitFor(inner.Seq(), waitTimeout); err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"logged", "lost", "after"} {
		if len(f2.Elements(tag)) != 1 {
			t.Fatalf("re-seeded follower missing <%s>", tag)
		}
	}
	if got, want := fingerprintOf(t, followerSurface{f2}), fingerprintOf(t, storeSurface{leader}); got != want {
		t.Fatal("re-seeded follower diverged from leader")
	}
}

// rebasingWAL re-bases the log at the start of a ReplaySince drain —
// the shape of a repair checkpoint racing a leader handoff. Embedding
// the concrete *storage.WAL keeps ReplayFromPos promoting through, so
// the tailer's fill path stays on the real fast path and only Promote's
// synchronous drain hits the override.
type rebasingWAL struct {
	*storage.WAL
	arm atomic.Bool
}

func (r *rebasingWAL) ReplaySince(since uint64, fn func(uint64, []byte) error) error {
	if r.arm.CompareAndSwap(true, false) {
		r.WAL.MarkRebased()
	}
	return r.WAL.ReplaySince(since, fn)
}

// TestPromoteDetectsRebaseDuringDrain is the regression pin for the
// Promote repair-race: a repair checkpoint that re-bases the log while
// Promote drains the durable tail means the drained stream no longer
// reconstructs the old leader, so the handoff must fail with
// ErrShipRebased instead of returning a silently-divergent store.
// Pre-fix, Promote skipped the post-drain re-base check that
// Tailer.fill performs after every sweep, and this test's Promote
// succeeded.
func TestPromoteDetectsRebaseDuringDrain(t *testing.T) {
	leader, inner := openLeader(t, t.TempDir())
	defer inner.Close()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 6; i++ {
		applyBatch(t, leader, planBatch(rng, len(leader.Elements("*"))))
	}

	rb := &rebasingWAL{WAL: inner}
	f, err := ltree.OpenFollower(rb)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitFor(inner.Seq(), waitTimeout); err != nil {
		t.Fatal(err)
	}

	// Arm the race: the re-base lands inside Promote's drain window.
	rb.arm.Store(true)
	if _, err := f.Promote(); !errors.Is(err, storage.ErrShipRebased) {
		t.Fatalf("promote across a mid-drain re-base: err=%v, want ErrShipRebased", err)
	}
	if st := f.Stats(); !errors.Is(st.Err, storage.ErrShipRebased) {
		t.Fatalf("Stats().Err=%v, want ErrShipRebased", st.Err)
	}
	// The failed handoff keeps the replica readable at its last applied
	// state, same contract as every other terminal replication error.
	if len(f.Elements("*")) == 0 {
		t.Fatal("reads stopped working after the failed promote")
	}
}

// TestWaitForTimeoutTyped pins the ErrWaitTimeout sentinel: a WaitFor
// that expires must be matchable with errors.Is (ltreed's
// read-your-writes handler turns it into 504) while keeping the
// seq/applied detail in the message. Pre-fix the timeout was an
// untyped fmt.Errorf.
func TestWaitForTimeoutTyped(t *testing.T) {
	leader, w := openLeader(t, t.TempDir())
	defer w.Close()
	if _, err := leader.InsertElement(leader.Root(), 0, "x"); err != nil {
		t.Fatal(err)
	}
	f, err := ltree.OpenFollower(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	err = f.WaitFor(w.Seq()+100, 50*time.Millisecond)
	if !errors.Is(err, ltree.ErrWaitTimeout) {
		t.Fatalf("expired WaitFor: err=%v, want ErrWaitTimeout", err)
	}
	if err == nil || !strings.Contains(err.Error(), "did not reach seq") {
		t.Fatalf("timeout error lost its detail message: %v", err)
	}
}

// TestOpenFollowerRejects pins the attach preconditions: a WAL with no
// checkpoint (never attached to a leader) and a backend without tail
// capabilities both refuse loudly.
func TestOpenFollowerRejects(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := ltree.OpenFollower(w); err == nil {
		t.Fatal("OpenFollower on a checkpoint-less WAL succeeded")
	}
	if _, err := ltree.OpenFollower(&flakyWAL{WALBackend: w}); err == nil {
		t.Fatal("OpenFollower on a non-tailable backend succeeded")
	}
}
