package ltree_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"github.com/ltree-db/ltree"
)

// The basic workflow: open, query by containment, update, re-query.
func Example() {
	st, err := ltree.OpenString(
		`<book><chapter><title>One</title></chapter><title>Main</title></book>`,
		ltree.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}
	titles, _ := st.Query("book//title")
	fmt.Println("titles:", len(titles))

	if _, err := st.InsertXML(st.Root(), 1, `<chapter><title>Two</title></chapter>`); err != nil {
		log.Fatal(err)
	}
	titles, _ = st.Query("book//title")
	fmt.Println("titles after insert:", len(titles))
	// Output:
	// titles: 2
	// titles after insert: 3
}

// View pins one index version for a whole block of reads: both queries
// see the same snapshot even though a writer commits between them.
func ExampleStore_View() {
	st, _ := ltree.OpenString(`<shop><item/><item/></shop>`, ltree.DefaultParams)
	done := make(chan struct{})
	_ = st.View(func(tx *ltree.Txn) error {
		first, _ := tx.Query("//item")
		n1 := len(first.Collect())

		// A concurrent writer commits mid-transaction…
		go func() {
			_, _ = st.InsertElement(st.Root(), 0, "item")
			close(done)
		}()
		<-done

		// …but this Txn still reads its pinned version.
		second, _ := tx.Query("//item")
		fmt.Println("inside the txn:", n1, "then", len(second.Collect()))
		return nil
	})
	after, _ := st.Query("//item")
	fmt.Println("after the txn:", len(after))
	// Output:
	// inside the txn: 2 then 2
	// after the txn: 3
}

// Queries stream: a large result can be consumed one element at a time
// — or abandoned early — without ever materializing the full set. Here
// only the first two of ten thousand matches are ever pulled through
// the pipeline.
func ExampleTxn_Query() {
	var sb strings.Builder
	sb.WriteString("<log>")
	for i := 0; i < 10_000; i++ {
		sb.WriteString("<entry><msg/></entry>")
	}
	sb.WriteString("</log>")
	st, _ := ltree.OpenString(sb.String(), ltree.DefaultParams)

	_ = st.View(func(tx *ltree.Txn) error {
		res, err := tx.Query("/log/entry/msg")
		if err != nil {
			return err
		}
		seen := 0
		for range res.All() { // iter.Seq — break stops the pipeline
			seen++
			if seen == 2 {
				break
			}
		}
		fmt.Println("pulled:", seen, "of", tx.Count("msg"))
		return nil
	})
	// Output: pulled: 2 of 10000
}

// Labels are intervals; ancestry is containment (paper Figure 1).
func ExampleStore_IsAncestor() {
	st, _ := ltree.OpenString(`<a><b><c/></b></a>`, ltree.DefaultParams)
	b := st.Elements("b")[0]
	c := st.Elements("c")[0]
	ancestor, _ := st.IsAncestor(b, c)
	sibling, _ := st.IsAncestor(c, b)
	fmt.Println(ancestor, sibling)
	// Output: true false
}

// The raw list-labeling API reproduces the paper's Figure 2 exactly.
func ExampleTree() {
	tr, _ := ltree.New(ltree.Params{F: 4, S: 2})
	leaves, _ := tr.Load(8)
	fmt.Print("labels:")
	for _, lf := range leaves {
		fmt.Print(" ", lf.Num())
	}
	fmt.Println()
	// Output: labels: 0 1 3 4 9 10 12 13
}

// Attribute predicates narrow steps.
func ExampleStore_Query() {
	st, _ := ltree.OpenString(
		`<users><u id="1" role="admin"/><u id="2"/><u id="3" role="admin"/></users>`,
		ltree.DefaultParams)
	admins, _ := st.Query("//u[@role='admin']")
	for _, u := range admins {
		id, _ := u.Attr("id")
		fmt.Println("admin", id)
	}
	// Output:
	// admin 1
	// admin 3
}

// Snapshots persist the exact label state: restores never relabel.
func ExampleStore_Snapshot() {
	st, _ := ltree.OpenString(`<r><a/><b/></r>`, ltree.DefaultParams)
	a := st.Elements("a")[0]
	before, _ := st.Label(a)

	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := ltree.Restore(&buf)
	if err != nil {
		log.Fatal(err)
	}
	after, _ := restored.Label(restored.Elements("a")[0])
	fmt.Println(before == after)
	// Output: true
}

// The §3.2 tuning models pick parameters for a workload profile.
func ExampleSuggestParams() {
	s := ltree.SuggestParams(1_000_000)
	fmt.Printf("f=%d s=%d valid=%v\n", s.Params.F, s.Params.S, s.Params.Validate() == nil)
	constrained, _ := ltree.SuggestParamsUnderBits(1_000_000, 32)
	fmt.Println("fits 32 bits:", constrained.Bits <= 32)
	// Output:
	// f=18 s=6 valid=true
	// fits 32 bits: true
}
