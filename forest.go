package ltree

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Forest is the horizontal-scale layer: many documents partitioned
// across N independent Store shards behind one router. Documents are the
// natural partition unit — the paper's labeling is per-document, so no
// operation ever spans two documents — which buys three things a single
// Store cannot provide:
//
//   - N independent write pipelines: a write routes to exactly one shard
//     and commits under that shard's lock and WAL group commit, so
//     writers touching different shards proceed fully in parallel
//     instead of serializing behind one write lock and one fsync queue.
//   - Scatter-gather reads that stay lazy: Query/Elements fan out one
//     pinned read transaction per shard and merge the per-shard
//     streaming Results cursors through a k-way merge that is itself a
//     Results — intermediate memory stays one buffered entry per shard,
//     and Seek pushes down into every shard's fence directories.
//   - N-way parallel crash recovery: OpenForest replays every shard's
//     WAL concurrently, so recovery time is O(largest shard log), not
//     O(total log).
//
// Placement is consistent: a document id hashes to its shard (pluggable
// via Partitioner) and stays there for the forest's lifetime. The shard
// count is pinned by an on-disk manifest; reopening with a different
// count fails loudly (ErrForestTopology — there is no resharding yet).
//
// Inside each shard the documents hang off a synthetic shard root, so
// every per-shard structure (one WAL, one COW index, one label space)
// is exactly a Store. Labels are therefore per-shard coordinates: merged
// query results are in a deterministic global order (per-shard document
// order, interleaved by label with a stable shard tie-break), but labels
// from different shards are not mutually comparable — use the Txn/Store
// surfaces of one shard, or DocOf, when provenance matters.
type Forest struct {
	shards []*forestShard
	part   Partitioner

	// mu guards the document registry only. Shard mutations run under
	// each shard Store's own lock — never under mu — so writes to
	// different shards commit concurrently.
	mu   sync.RWMutex
	docs map[string]*forestDoc
}

// forestShard is one partition: a full Store, plus its WAL handle when
// the forest is durably backed (nil for in-memory forests).
type forestShard struct {
	st  *Store
	wal *storage.WAL
}

// forestDoc is the registry entry for one document. root is nil while a
// write to the document is in flight (the pending marker that makes
// same-document write races a loud ErrDocBusy instead of corruption).
type forestDoc struct {
	shard int
	root  *Elem
}

// shardRootTag tags each shard's synthetic root element. It never
// surfaces from forest queries: rooted paths anchor below it and the
// merged cursors filter it from wildcard streams.
const shardRootTag = "ltree-forest-shard"

// forestDocAttr is the attribute on each document root carrying its id.
// It rides the normal op log and snapshots, so recovery rebuilds the
// document registry from the shard stores alone.
const forestDocAttr = "ltree.doc"

// Partitioner places documents on shards: Shard returns the shard index
// in [0, shards) for a document id. Placement must be deterministic —
// the forest routes every later operation on the id through the same
// function. Changing the partitioner of an existing forest only affects
// documents inserted afterwards: already-placed documents are routed by
// the registry, not re-hashed.
type Partitioner interface {
	Shard(docID string, shards int) int
}

// PartitionerFunc adapts a function to the Partitioner interface.
type PartitionerFunc func(docID string, shards int) int

// Shard implements Partitioner.
func (f PartitionerFunc) Shard(docID string, shards int) int { return f(docID, shards) }

// HashPartitioner returns the default placement: FNV-1a over the
// document id, reduced modulo the shard count.
func HashPartitioner() Partitioner {
	return PartitionerFunc(func(docID string, shards int) int {
		h := fnv.New64a()
		h.Write([]byte(docID))
		return int(h.Sum64() % uint64(shards))
	})
}

// ForestOptions configures NewForest and OpenForest. The zero value is a
// single-shard in-memory-defaults forest with hash placement.
type ForestOptions struct {
	// Shards is the partition count. 0 means 1 for NewForest; for
	// OpenForest on an existing directory, 0 adopts the manifest's count
	// and any nonzero disagreement is ErrForestTopology.
	Shards int
	// Partitioner overrides document placement (default HashPartitioner).
	Partitioner Partitioner
	// Params selects the L-Tree shape of every shard (default
	// DefaultParams).
	Params Params
	// WAL tunes each shard's write-ahead log (OpenForest only).
	WAL WALOptions
	// AutoCheckpointBytes/AutoCheckpointRecords, when nonzero, attach the
	// AutoCheckpoint policy to every shard WAL (OpenForest only): a shard
	// checkpoints itself once its live log outgrows either threshold.
	AutoCheckpointBytes   int64
	AutoCheckpointRecords int
}

// normalized fills the option defaults.
func (o ForestOptions) normalized() ForestOptions {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Partitioner == nil {
		o.Partitioner = HashPartitioner()
	}
	if o.Params == (Params{}) {
		o.Params = DefaultParams
	}
	return o
}

// emptyShardXML is the seed document of a fresh shard.
const emptyShardXML = "<" + shardRootTag + "/>"

// NewForest returns an in-memory forest with opt.Shards empty shards.
// Use OpenForest for a durable, WAL-backed forest.
func NewForest(opt ForestOptions) (*Forest, error) {
	opt = opt.normalized()
	f := &Forest{part: opt.Partitioner, docs: make(map[string]*forestDoc)}
	for i := 0; i < opt.Shards; i++ {
		st, err := OpenString(emptyShardXML, opt.Params)
		if err != nil {
			return nil, err
		}
		f.shards = append(f.shards, &forestShard{st: st})
	}
	return f, nil
}

// OpenForest opens (creating if needed) a WAL-backed forest in dir: one
// WAL directory per shard plus a manifest pinning the shard count (see
// internal/storage's forest layout). A fresh directory is initialized
// with opt.Shards shards; an existing one is recovered — every shard
// replays its own log in parallel, one goroutine per shard, so recovery
// takes O(largest shard log) wall-clock — and must be opened with the
// same shard count it was created with (or opt.Shards == 0 to adopt it);
// anything else is ErrForestTopology.
func OpenForest(dir string, opt ForestOptions) (*Forest, error) {
	requested := opt.Shards // 0 stays 0: "adopt the manifest", not "one shard"
	opt = opt.normalized()
	n, err := storage.CheckForestManifest(dir, requested)
	if err != nil {
		return nil, err
	}
	shards := make([]*forestShard, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shards[i], errs[i] = openShard(storage.ForestShardDir(dir, i), opt)
		}(i)
	}
	wg.Wait()
	if err := firstErr(errs...); err != nil {
		for _, sh := range shards {
			if sh != nil && sh.wal != nil {
				sh.wal.Close()
			}
		}
		return nil, err
	}
	f := &Forest{shards: shards, part: opt.Partitioner, docs: make(map[string]*forestDoc)}
	if err := f.rebuildRegistry(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// openShard recovers one shard from its WAL directory, seeding an empty
// shard on first boot.
func openShard(dir string, opt ForestOptions) (*forestShard, error) {
	w, err := storage.OpenWAL(dir, opt.WAL)
	if err != nil {
		return nil, err
	}
	st, err := LoadLatest(w)
	switch {
	case errors.Is(err, ErrNoVersion):
		// First boot: seed the synthetic shard root and write its
		// baseline checkpoint.
		st, err = OpenString(emptyShardXML, opt.Params)
		if err == nil {
			err = st.WithWAL(w, AutoCheckpoint(opt.AutoCheckpointBytes, opt.AutoCheckpointRecords))
		}
		if err != nil {
			w.Close()
			return nil, err
		}
	case err != nil:
		w.Close()
		return nil, err
	default:
		// Recovered store: the WAL is attached, but the auto-checkpoint
		// policy is per-open configuration, not logged state.
		st.walPolicy = walPolicy{maxBytes: opt.AutoCheckpointBytes, maxRecords: opt.AutoCheckpointRecords}
	}
	return &forestShard{st: st, wal: w}, nil
}

// rebuildRegistry reconstructs the docID → (shard, root) registry from
// the recovered shard stores: every child of a shard root is a document
// and must carry its id attribute. A child without one means the shard
// holds state this forest layer did not write — fail loudly rather than
// serve a document that can never be addressed.
func (f *Forest) rebuildRegistry() error {
	for si, sh := range f.shards {
		root := sh.st.Root()
		if root.Tag() != shardRootTag {
			return fmt.Errorf("ltree: shard %d root is <%s>, not a forest shard (%s) — this WAL belongs to a plain Store", si, root.Tag(), shardRootTag)
		}
		for _, c := range root.Children() {
			if c.Kind() != ElementNode {
				continue
			}
			id, ok := c.Attr(forestDocAttr)
			if !ok || id == "" {
				return fmt.Errorf("ltree: shard %d holds a <%s> without a document id attribute", si, c.Tag())
			}
			if prev, dup := f.docs[id]; dup {
				return fmt.Errorf("ltree: document %q present in shards %d and %d", id, prev.shard, si)
			}
			f.docs[id] = &forestDoc{shard: si, root: c}
		}
	}
	return nil
}

// Close releases every shard's WAL handle. In-memory forests have
// nothing to release. Writes after Close fail at the shard WAL.
func (f *Forest) Close() error {
	var errs []error
	for _, sh := range f.shards {
		if sh.wal != nil {
			errs = append(errs, sh.wal.Close())
		}
	}
	return firstErr(errs...)
}

// Shards returns the shard count.
func (f *Forest) Shards() int { return len(f.shards) }

// Len returns the number of documents in the forest.
func (f *Forest) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.docs)
}

// Docs returns the document ids in sorted order.
func (f *Forest) Docs() []string {
	f.mu.RLock()
	out := make([]string, 0, len(f.docs))
	for id := range f.docs {
		out = append(out, id)
	}
	f.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ShardFor returns the shard index holding (or that would hold) docID.
func (f *Forest) ShardFor(docID string) int {
	f.mu.RLock()
	if d, ok := f.docs[docID]; ok {
		f.mu.RUnlock()
		return d.shard
	}
	f.mu.RUnlock()
	return f.part.Shard(docID, len(f.shards))
}

// ShardStore exposes shard i's underlying Store — for per-shard
// plumbing like attaching followers or inspecting one shard's WAL
// state. Mutating documents through it bypasses the registry; use the
// Forest surface for writes.
func (f *Forest) ShardStore(i int) *Store { return f.shards[i].st }

// Get returns the root element of the document with the given id.
func (f *Forest) Get(docID string) (*Elem, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	d, ok := f.docs[docID]
	if !ok || d.root == nil {
		return nil, false
	}
	return d.root, true
}

// DocOf maps an element (typically a query result) back to the id of
// the forest document containing it. ok=false for elements not bound to
// any shard of this forest — including the shard roots themselves.
func (f *Forest) DocOf(el *Elem) (string, bool) {
	if el == nil {
		return "", false
	}
	// The parent-pointer walk reads structure a concurrent writer to el's
	// shard may be mutating; hold every shard's read lock (writers hold
	// only their own shard's lock, so ascending acquisition cannot
	// deadlock). Reads of other shards stay unaffected: these are RLocks.
	for _, sh := range f.shards {
		sh.st.mu.RLock()
	}
	defer func() {
		for _, sh := range f.shards {
			sh.st.mu.RUnlock()
		}
	}()
	var docRoot *Elem
	for v := el; v != nil; v = v.Parent() {
		p := v.Parent()
		if p == nil {
			break
		}
		if p.Parent() == nil {
			// p is a tree root; it must be one of our shard roots.
			for _, sh := range f.shards {
				if sh.st.Root() == p {
					docRoot = v
					break
				}
			}
			break
		}
	}
	if docRoot == nil {
		return "", false
	}
	return docRoot.Attr(forestDocAttr)
}

// reserve claims docID for one write, returning the prior entry. A
// concurrent write already holding the claim is ErrDocBusy; the claim
// is released by settle.
func (f *Forest) reserve(docID string) (prev *forestDoc, existed bool, shard int, err error) {
	if docID == "" {
		return nil, false, 0, errors.New("ltree: empty document id")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.docs[docID]
	if ok && d.root == nil {
		return nil, false, 0, ErrDocBusy
	}
	if ok {
		shard = d.shard
	} else {
		shard = f.part.Shard(docID, len(f.shards))
		if shard < 0 || shard >= len(f.shards) {
			return nil, false, 0, fmt.Errorf("ltree: partitioner routed document %q to shard %d of %d", docID, shard, len(f.shards))
		}
	}
	f.docs[docID] = &forestDoc{shard: shard}
	return d, ok, shard, nil
}

// settle resolves a reservation: a successful write installs the new
// root (nil root deletes the entry); a failed replace restores the
// prior entry. A failed write that already destroyed the prior document
// must pass restore=nil — the id then reads as absent, loudly, instead
// of pointing at a detached subtree.
func (f *Forest) settle(docID string, root *Elem, shard int, restore *forestDoc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case root != nil:
		f.docs[docID] = &forestDoc{shard: shard, root: root}
	case restore != nil:
		f.docs[docID] = restore
	default:
		delete(f.docs, docID)
	}
}

// Put parses src as an XML document and inserts it under the given id,
// replacing any existing document with that id in one shard commit.
// Returns the document's root element. Puts of different documents
// proceed concurrently whenever their ids land on different shards;
// two concurrent writes to the same id race loudly (ErrDocBusy).
func (f *Forest) Put(docID, src string) (*Elem, error) {
	frag, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return f.PutSubtree(docID, frag.Root)
}

// PutSubtree is Put for an already-built detached subtree (NewElement /
// ParseXML). The forest takes ownership of the subtree and stamps the
// document id attribute on its root.
func (f *Forest) PutSubtree(docID string, root *Elem) (*Elem, error) {
	if root == nil || root.Kind() != ElementNode {
		return nil, errors.New("ltree: a forest document needs an element root")
	}
	prev, existed, shard, err := f.reserve(docID)
	if err != nil {
		return nil, err
	}
	root.SetAttr(forestDocAttr, docID)
	st := f.shards[shard].st
	err = st.Update(func(b *Batch) error {
		if existed {
			if err := b.Delete(prev.root); err != nil {
				return err
			}
		}
		return b.InsertSubtree(st.Root(), st.Root().NumChildren(), root)
	})
	if err != nil {
		// The replace path may have deleted the old document before the
		// insert failed; either way the id no longer names a live
		// subtree. Drop it rather than resurrect a maybe-detached root.
		f.settle(docID, nil, shard, nil)
		return nil, err
	}
	f.settle(docID, root, shard, nil)
	return root, nil
}

// Delete removes the document with the given id from its shard.
func (f *Forest) Delete(docID string) error {
	f.mu.Lock()
	d, ok := f.docs[docID]
	if !ok {
		f.mu.Unlock()
		return ErrNoDoc
	}
	if d.root == nil {
		f.mu.Unlock()
		return ErrDocBusy
	}
	f.docs[docID] = &forestDoc{shard: d.shard}
	f.mu.Unlock()
	err := f.shards[d.shard].st.Delete(d.root)
	if err != nil {
		f.settle(docID, d.root, d.shard, d)
		return err
	}
	f.settle(docID, nil, d.shard, nil)
	return nil
}

// Update runs fn as one write batch against the document with the given
// id: fn receives the shard's Batch and the document's root element, and
// one index version is committed on the owning shard when it returns.
// Updates to documents on different shards proceed concurrently.
func (f *Forest) Update(docID string, fn func(b *Batch, root *Elem) error) error {
	f.mu.RLock()
	d, ok := f.docs[docID]
	f.mu.RUnlock()
	if !ok || d.root == nil {
		if ok {
			return ErrDocBusy
		}
		return ErrNoDoc
	}
	return f.shards[d.shard].st.Update(func(b *Batch) error {
		return fn(b, d.root)
	})
}

// forestPath rewrites a parsed path for evaluation inside a shard store:
// rooted paths anchor at each *document* root, not the synthetic shard
// root, so "/site//item" means "documents whose root is <site>, their
// //item descendants" across every document of every shard. The rewrite
// prepends one child step matching the shard root — the engine then
// anchors there and the original first step (always a child step; see
// query.Parse) matches the shard root's children, which are exactly the
// document roots. Relative paths need no rewrite: they already search
// every document, and the shard root's own tag never collides with user
// queries (and is filtered from wildcard streams regardless).
func forestPath(p *query.Path) *query.Path {
	if !p.Rooted {
		return p
	}
	steps := make([]query.Step, 0, len(p.Steps)+1)
	steps = append(steps, query.Step{Axis: query.Child, Tag: shardRootTag})
	steps = append(steps, p.Steps...)
	return &query.Path{Rooted: true, Steps: steps}
}

// skipNodeCursor filters one element (the shard root) out of a stream.
// Only wildcard streams can surface it, and at most once, so this is one
// pointer comparison per entry.
type skipNodeCursor struct {
	cur  document.Cursor
	skip *xmldom.Node
}

func (c *skipNodeCursor) Next() (document.Entry, bool) {
	e, ok := c.cur.Next()
	if ok && e.Node == c.skip {
		return c.cur.Next()
	}
	return e, ok
}

func (c *skipNodeCursor) Seek(begin uint64) (document.Entry, bool) {
	e, ok := c.cur.Seek(begin)
	if ok && e.Node == c.skip {
		return c.cur.Next()
	}
	return e, ok
}

// withoutShardRoot wraps a shard-local Results to hide the synthetic
// shard root.
func withoutShardRoot(r *Results, root *Elem) *Results {
	return &Results{cur: &skipNodeCursor{cur: r.cur, skip: root}}
}

// Query evaluates a path expression across every document of every
// shard and returns the matches merged in global begin order — the same
// order ForestTxn.Query streams. It is the forest analogue of
// Store.Query, and it is where the scatter actually runs in parallel:
// one goroutine per shard drains that shard's pipeline against a
// borrowed current version, then the per-shard (already begin-sorted)
// match runs are merged slice-to-slice, with no per-entry cursor
// dispatch. On N cores the pipeline work divides by min(N, shards), so
// the one-shot drain gets faster with shards rather than paying the
// streaming merge's per-entry tax. Open a ForestTxn (View,
// SnapshotView) when you need mutually consistent multi-read snapshots
// or lazy/Seek-driven consumption instead.
func (f *Forest) Query(expr string) ([]*Elem, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	p = forestPath(p)
	return f.scatterCollect(func(i int) *Results {
		sh := f.shards[i]
		tx := &Txn{s: sh.st, ver: sh.st.vers.Current()}
		return withoutShardRoot(tx.resultsFor(p), sh.st.Root())
	}), nil
}

// Elements returns every element with the given tag ("*" = all, shard
// roots excluded) across the forest, merged in global begin order. Like
// Query it scatters one collecting goroutine per shard.
func (f *Forest) Elements(tag string) []*Elem {
	return f.scatterCollect(func(i int) *Results {
		sh := f.shards[i]
		tx := &Txn{s: sh.st, ver: sh.st.vers.Current()}
		return withoutShardRoot(tx.Stream(tag), sh.st.Root())
	})
}

// scatterCollect materializes one Results per shard in parallel and
// merges the sorted runs. build is called once per shard index, from
// that shard's goroutine; each built Results must only touch immutable
// snapshot state (borrowed versions), which is what keeps the fan-out
// lock-free.
func (f *Forest) scatterCollect(build func(i int) *Results) []*Elem {
	parts := make([][]document.Entry, len(f.shards))
	var wg sync.WaitGroup
	for i := range f.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cur := build(i).cur
			for e, ok := cur.Next(); ok; e, ok = cur.Next() {
				parts[i] = append(parts[i], e)
			}
		}(i)
	}
	wg.Wait()
	return mergeEntryParts(parts)
}

// mergeEntryParts merges begin-sorted entry runs into one element slice
// in (begin, part) order — the materialized counterpart of query.Merge,
// used where every entry is already in memory: a k-wide min scan per
// output with no interface calls, so the merge costs a few ns per
// element instead of a cursor dispatch chain.
func mergeEntryParts(parts [][]document.Entry) []*Elem {
	if len(parts) == 1 {
		out := make([]*Elem, len(parts[0]))
		for i, e := range parts[0] {
			out[i] = e.Node
		}
		return out
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]*Elem, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		min := -1
		for b := range parts {
			if idx[b] >= len(parts[b]) {
				continue
			}
			// Strict < keeps the earlier part on ties: same (begin, branch)
			// order as the streaming merge.
			if min < 0 || parts[b][idx[b]].Label.Begin < parts[min][idx[min]].Label.Begin {
				min = b
			}
		}
		out = append(out, parts[min][idx[min]].Node)
		idx[min]++
	}
	return out
}

// Count returns the forest-wide posting count for a tag ("*" = every
// element, shard roots excluded).
func (f *Forest) Count(tag string) int {
	total := 0
	for _, sh := range f.shards {
		tx := &Txn{s: sh.st, ver: sh.st.vers.Current()}
		total += tx.Count(tag)
		if tag == "*" || tag == shardRootTag {
			total-- // the synthetic shard root is not a forest element
		}
	}
	return total
}

// Label returns an element's (begin, end) label in its shard's label
// space. Labels from different shards are not mutually comparable.
func (f *Forest) Label(el *Elem) (Label, error) {
	for _, sh := range f.shards {
		if lab, err := sh.st.Label(el); err == nil {
			return lab, nil
		}
	}
	return Label{}, ErrUnbound
}

// View runs fn inside a forest read transaction: one pinned part per
// shard, all captured before fn starts, so every read through the
// composite Txn observes one index version per shard regardless of
// concurrent commits. The transaction is released when fn returns.
func (f *Forest) View(fn func(*Txn) error) error {
	tx := f.SnapshotView()
	defer tx.Close()
	return fn(tx)
}

// SnapshotView opens a forest read transaction and returns the handle;
// the caller owns its lifetime and must Close it. The returned Txn is a
// composite (see Txn): queries fan out to each shard's pinned version
// and stream through the k-way merge, so consuming a Results costs one
// buffered entry per shard and Seek pushes down into every shard's
// chunk fences.
//
// The per-shard versions are captured one after another, not atomically:
// reads within one shard are snapshot-consistent, and cross-shard
// consistency is exactly cross-document consistency — no forest write
// spans two shards, so there is no cross-shard state to tear.
func (f *Forest) SnapshotView() *Txn {
	txs := make([]*Txn, len(f.shards))
	roots := make([]*Elem, len(f.shards))
	for i, sh := range f.shards {
		txs[i] = sh.st.SnapshotView()
		roots[i] = sh.st.Root()
	}
	return &Txn{parts: txs, roots: roots}
}

// SnapshotAt opens a forest read transaction pinned to a composite
// version number. Forest versions are per-shard; the composite version
// (IndexVersion, Txn.Version) is their sum, and only the *current*
// composite is addressable by number — pinning an older one would need
// a version vector, which a uint64 cannot carry. SnapshotAt therefore
// succeeds exactly when version is the current composite (the common
// Reader idiom "read IndexVersion, then pin it" works unless a write
// slipped between the two calls); anything else is ErrVersionRetired.
// For historical per-shard snapshots use ShardStore(i).SnapshotAt.
func (f *Forest) SnapshotAt(version uint64) (*Txn, error) {
	tx := f.SnapshotView()
	if tx.Version() != version {
		tx.Close()
		return nil, fmt.Errorf("ltree: forest composite version %d is not current: %w", version, ErrVersionRetired)
	}
	return tx, nil
}

// IndexVersion returns the forest's composite version: the sum of every
// shard's published index version. It grows by one per committed write
// batch anywhere in the forest — two reads seeing the same composite
// version saw the same forest-wide index state.
func (f *Forest) IndexVersion() uint64 {
	var sum uint64
	for _, sh := range f.shards {
		sum += sh.st.IndexVersion()
	}
	return sum
}

// IsAncestor decides ancestry purely from labels. Elements living in
// different shards are never related — no forest document spans shards.
func (f *Forest) IsAncestor(a, d *Elem) (bool, error) {
	tx := f.SnapshotView()
	defer tx.Close()
	return tx.IsAncestor(a, d)
}

// Compare orders two elements by the forest's deterministic global
// order — (begin, shard), the order merged query results stream in.
func (f *Forest) Compare(a, b *Elem) (int, error) {
	tx := f.SnapshotView()
	defer tx.Close()
	return tx.Compare(a, b)
}

// ForestTxn is the forest composite read transaction. It has been
// unified with Txn — a composite Txn carries one pinned part per shard
// — so forest and store read paths share one type and one Reader
// surface; the alias keeps forest call sites readable.
type ForestTxn = Txn

// ForestStats aggregates the per-shard engine counters.
type ForestStats struct {
	Shards int
	Docs   int
	Shard  []ShardStats
}

// ShardStats is one shard's slice of the aggregate.
type ShardStats struct {
	// Docs is the number of forest documents placed on this shard.
	Docs int
	// Seq is the shard WAL's last appended sequence number (0 for
	// in-memory forests).
	Seq uint64
	// IndexVersion is the shard's published index version.
	IndexVersion uint64
	// TxnOpen / TxnRetired are the shard's read-transaction pin
	// accounting (Store.TxnStats).
	TxnOpen    int
	TxnRetired int
	// Counters are the shard's accumulated L-Tree maintenance counters.
	Counters Counters
}

// Stats returns the forest-wide aggregate plus the per-shard breakdown.
func (f *Forest) Stats() ForestStats {
	out := ForestStats{Shards: len(f.shards), Shard: make([]ShardStats, len(f.shards))}
	f.mu.RLock()
	out.Docs = len(f.docs)
	perShard := make([]int, len(f.shards))
	for _, d := range f.docs {
		perShard[d.shard]++
	}
	f.mu.RUnlock()
	for i, sh := range f.shards {
		open, retired := sh.st.TxnStats()
		s := ShardStats{
			Docs:         perShard[i],
			IndexVersion: sh.st.IndexVersion(),
			TxnOpen:      open,
			TxnRetired:   retired,
			Counters:     sh.st.Stats(),
		}
		if sh.wal != nil {
			s.Seq = sh.wal.Seq()
		}
		out.Shard[i] = s
	}
	return out
}

// Checkpoint snapshots every shard into its WAL and truncates the logs,
// shards in parallel. Each shard's checkpoint is its own recovery
// baseline; there is no cross-shard barrier to coordinate because no
// forest write spans shards.
func (f *Forest) Checkpoint() error {
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i, sh := range f.shards {
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			_, errs[i] = st.Checkpoint()
		}(i, sh.st)
	}
	wg.Wait()
	return firstErr(errs...)
}

// Check runs every shard's full invariant suite plus the forest's own:
// the registry and the shard stores must agree document-for-document.
func (f *Forest) Check() error {
	for i, sh := range f.shards {
		if err := sh.st.Check(); err != nil {
			return fmt.Errorf("ltree: shard %d: %w", i, err)
		}
	}
	// The registry/structure cross-check reads parent pointers and child
	// lists; hold every shard's read lock (same discipline as DocOf).
	for _, sh := range f.shards {
		sh.st.mu.RLock()
	}
	defer func() {
		for _, sh := range f.shards {
			sh.st.mu.RUnlock()
		}
	}()
	f.mu.RLock()
	defer f.mu.RUnlock()
	live := 0
	for id, d := range f.docs {
		if d.root == nil {
			continue // write in flight
		}
		live++
		if d.shard < 0 || d.shard >= len(f.shards) {
			return fmt.Errorf("ltree: document %q registered on shard %d of %d", id, d.shard, len(f.shards))
		}
		if d.root.Parent() != f.shards[d.shard].st.Root() {
			return fmt.Errorf("ltree: document %q is not a child of its shard %d root", id, d.shard)
		}
		if got, _ := d.root.Attr(forestDocAttr); got != id {
			return fmt.Errorf("ltree: document %q carries id attribute %q", id, got)
		}
	}
	total := 0
	for _, sh := range f.shards {
		for _, c := range sh.st.Root().Children() {
			if c.Kind() == ElementNode {
				total++
			}
		}
	}
	if total != live {
		return fmt.Errorf("ltree: shards hold %d documents, registry holds %d", total, live)
	}
	return nil
}
