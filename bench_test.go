package ltree

// Root benchmark suite: one testing.B benchmark per experiment table of
// EXPERIMENTS.md (E3–E11). The cmd/ltreebench harness prints the tables
// themselves; these benches measure the wall-clock side on the same
// workloads so `go test -bench=. -benchmem` regenerates the timing
// columns. Naming: Benchmark<Experiment>/<parameters>.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/labeling"
	"github.com/ltree-db/ltree/internal/ostree"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/reltab"
	"github.com/ltree-db/ltree/internal/virtual"
	"github.com/ltree-db/ltree/internal/workload"
)

// ---------------------------------------------------------------- E3 cost

// BenchmarkInsert measures single-leaf insertion (E3) per distribution
// over a pre-loaded tree of n leaves.
func BenchmarkInsert(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, dist := range []workload.Dist{workload.Uniform, workload.Append, workload.Hotspot} {
			b.Run(fmt.Sprintf("dist=%s/n=%d", dist, n), func(b *testing.B) {
				tr, err := core.New(core.Params{F: 8, S: 2})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tr.Load(n); err != nil {
					b.Fatal(err)
				}
				pos := workload.NewPositions(dist, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					at := pos.Next(tr.Len())
					if at == 0 {
						_, err = tr.InsertFirst()
					} else {
						_, err = tr.InsertAfter(tr.LeafAt(at - 1))
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(tr.Stats().AmortizedCost(), "nodes/insert")
			})
		}
	}
}

// ---------------------------------------------------------------- E4 bits

// BenchmarkBulkLoad measures the §2.2 bulk load that fixes the initial
// label widths (E4's setup step).
func BenchmarkBulkLoad(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := core.New(core.Params{F: 8, S: 2})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tr.Load(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ----------------------------------------------------------- E5 baselines

// BenchmarkBaseline measures insertion across all labeling schemes (E5).
// Sequential is O(n) per op by design — the paper's failure mode.
func BenchmarkBaseline(b *testing.B) {
	const n = 2_000
	mk := map[string]func() (labeling.Scheme, error){
		"ltree":      func() (labeling.Scheme, error) { return labeling.NewLTree(8, 2) },
		"sequential": func() (labeling.Scheme, error) { return labeling.NewSequential(), nil },
		"gap":        func() (labeling.Scheme, error) { return labeling.NewGap(16), nil },
		"bisect":     func() (labeling.Scheme, error) { return labeling.NewBisect(), nil },
	}
	for _, name := range []string{"ltree", "sequential", "gap", "bisect"} {
		b.Run(name, func(b *testing.B) {
			sc, err := mk[name]()
			if err != nil {
				b.Fatal(err)
			}
			slots, err := sc.Load(n)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := sc.InsertAfter(slots[rng.Intn(len(slots))])
				if err != nil {
					b.Fatal(err)
				}
				slots = append(slots, s)
			}
			b.ReportMetric(float64(sc.Stats().RelabeledLeaves)/float64(b.N), "relabels/insert")
		})
	}
}

// ------------------------------------------------------------ E6/E7 sweep

// BenchmarkParamSweep measures insertion for representative (f, s) points
// of the §3.2 tuning sweep (E6, E7).
func BenchmarkParamSweep(b *testing.B) {
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 12, S: 3}, {F: 16, S: 4}, {F: 32, S: 2}} {
		b.Run(fmt.Sprintf("f=%d/s=%d", p.F, p.S), func(b *testing.B) {
			tr, err := core.New(p)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tr.Load(10_000); err != nil {
				b.Fatal(err)
			}
			pos := workload.NewPositions(workload.Uniform, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := pos.Next(tr.Len())
				if at == 0 {
					_, err = tr.InsertFirst()
				} else {
					_, err = tr.InsertAfter(tr.LeafAt(at - 1))
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tr.Stats().AmortizedCost(), "nodes/insert")
		})
	}
}

// -------------------------------------------------------------- E9 bulk

// BenchmarkBulkInsert measures §4.1 run insertion per run size (E9);
// b.N counts inserted leaves so rows are comparable per leaf.
func BenchmarkBulkInsert(b *testing.B) {
	for _, k := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			tr, err := core.New(core.Params{F: 8, S: 2})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tr.Load(4_096); err != nil {
				b.Fatal(err)
			}
			pos := workload.NewPositions(workload.Uniform, 5)
			b.ResetTimer()
			for inserted := 0; inserted < b.N; inserted += k {
				at := pos.Next(tr.Len() - 1)
				if _, err := tr.InsertRunAfter(tr.LeafAt(at), k); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tr.Stats().AmortizedCost(), "nodes/leaf")
		})
	}
}

// ------------------------------------------------------------ E10 virtual

// BenchmarkVirtualInsert measures the virtual L-Tree's insert (E10): the
// range-count overhead §4.2 trades for storage.
func BenchmarkVirtualInsert(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			vt, err := virtual.New(core.Params{F: 8, S: 2})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := vt.Load(n); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x, _ := vt.LabelAt(rng.Intn(vt.Len()))
				if _, err := vt.InsertAfter(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOSTree measures the counted B-tree primitives the virtual tree
// is built from (E10's substrate).
func BenchmarkOSTree(b *testing.B) {
	const n = 100_000
	build := func() *ostree.Tree {
		t := ostree.New()
		for i := 0; i < n; i++ {
			t.Insert(uint64(i) * 7)
		}
		return t
	}
	b.Run("insert", func(b *testing.B) {
		t := ostree.New()
		for i := 0; i < b.N; i++ {
			t.Insert(uint64(i))
		}
	})
	t := build()
	rng := rand.New(rand.NewSource(8))
	b.Run("countrange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := uint64(rng.Intn(n * 7))
			t.CountRange(lo, lo+1_000)
		}
	})
	b.Run("rank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.Rank(uint64(rng.Intn(n * 7)))
		}
	})
	b.Run("select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.SelectK(rng.Intn(n))
		}
	})
}

// -------------------------------------------------------------- E11 query

// BenchmarkQuery measures the three // query plans on xmark-lite (E11).
func BenchmarkQuery(b *testing.B) {
	x := workload.XMarkLite(40, 3)
	d, err := document.Load(x, core.Params{F: 8, S: 2})
	if err != nil {
		b.Fatal(err)
	}
	idx := d.BuildTagIndex()
	tbl, err := reltab.Build(d)
	if err != nil {
		b.Fatal(err)
	}
	path, err := query.Parse("//site//name")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("labeljoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := query.Join(d, idx, path); len(res) == 0 {
				b.Fatal("no results")
			}
		}
	})
	b.Run("labeljoin-chunked", func(b *testing.B) {
		// Same join streamed through the chunked index's cursors: Seek
		// skips whole chunks of candidates outside the context intervals.
		cix := index.Build(d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := query.Join(d, cix, path); len(res) == 0 {
				b.Fatal("no results")
			}
		}
	})
	b.Run("navigation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := query.Nav(d, path); len(res) == 0 {
				b.Fatal("no results")
			}
		}
	})
	b.Run("edgejoins", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res, _ := tbl.DescendantsViaEdgeJoins("site", "name"); len(res) == 0 {
				b.Fatal("no results")
			}
		}
	})
	b.Run("containment-test", func(b *testing.B) {
		items := d.Elements("item")
		names := d.Elements("name")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := items[i%len(items)]
			x := names[i%len(names)]
			if _, err := d.IsAncestor(a, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ------------------------------------------------------- E13 delete/store

// BenchmarkStore measures the public facade end to end: labeled updates
// and containment queries through Store (the README quickstart workload).
func BenchmarkStore(b *testing.B) {
	b.Run("insert-element", func(b *testing.B) {
		st, err := OpenString(`<r><a/></r>`, DefaultParams)
		if err != nil {
			b.Fatal(err)
		}
		parent := st.Root()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.InsertElement(parent, i%(parent.NumChildren()+1), "x"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert-element-hot", func(b *testing.B) {
		// The chunked-postings acceptance case: single-op commits into a
		// tag already holding 500 postings. The flat COW representation
		// paid an O(tag) copy per commit here; chunking pays O(chunk).
		st, err := OpenString(`<r><a/></r>`, DefaultParams)
		if err != nil {
			b.Fatal(err)
		}
		parent := st.Root()
		for i := 0; i < 500; i++ {
			if _, err := st.InsertElement(parent, i%(parent.NumChildren()+1), "x"); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.InsertElement(parent, i%(parent.NumChildren()+1), "x"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert-xml-subtree", func(b *testing.B) {
		st, err := OpenString(`<r><a/></r>`, DefaultParams)
		if err != nil {
			b.Fatal(err)
		}
		parent := st.Root()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.InsertXML(parent, 0, `<s><t>v</t></s>`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-cached-index", func(b *testing.B) {
		x := workload.XMarkLite(20, 1)
		st, err := OpenString(x.String(), DefaultParams)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Query("//item/name"); err != nil { // warm the index
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Query("//item/name"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// -------------------------------------------------------- E14 concurrency

// BenchmarkStoreConcurrentQuery measures the engine's read path under
// parallelism: GOMAXPROCS readers issue queries against the published
// copy-on-write index, optionally with a background writer committing
// inserts and deletes the whole time. The seed's exclusive-lock path made
// the with-writer variant collapse to single-file throughput; now readers
// only share an RLock and the index version they loaded.
func BenchmarkStoreConcurrentQuery(b *testing.B) {
	for _, withWriter := range []bool{false, true} {
		name := "readonly"
		if withWriter {
			name = "with-writer"
		}
		b.Run(name, func(b *testing.B) {
			x := workload.XMarkLite(20, 1)
			st, err := OpenString(x.String(), DefaultParams)
			if err != nil {
				b.Fatal(err)
			}
			var stop chan struct{}
			var wg sync.WaitGroup
			if withWriter {
				// Population-stationary writer: inserting item subtrees and
				// deleting random items keeps the workload alive for the
				// whole run instead of draining the tag.
				region := st.Elements("asia")[0]
				stop = make(chan struct{})
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(6))
					for {
						select {
						case <-stop:
							return
						default:
						}
						if rng.Intn(2) == 0 {
							_, _ = st.InsertXML(region, 0, `<item><name>fresh</name></item>`)
						} else if items := st.Elements("item"); len(items) > 0 {
							_ = st.Delete(items[rng.Intn(len(items))])
						}
					}
				}()
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := st.Query("//item/name"); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if withWriter {
				close(stop)
				wg.Wait()
			}
			if err := st.Check(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkStoreConcurrentQueryPred puts the zig-zag join with predicate
// pushdown under the same parallel-reader regime (the name keeps it in
// the CI multicore lane's StoreConcurrentQuery sweep): GOMAXPROCS
// readers issue a selective attribute-predicate query against the
// published COW index. The "txn" variant runs each reader inside a read
// transaction, so repeated queries share the Txn's predicate-verdict
// memo; "store" pays predicate resolution per query.
func BenchmarkStoreConcurrentQueryPred(b *testing.B) {
	x := workload.XMarkLite(20, 1)
	st, err := OpenString(x.String(), DefaultParams)
	if err != nil {
		b.Fatal(err)
	}
	const expr = "//item[@id='item42']"
	if res, err := st.Query(expr); err != nil || len(res) != 1 {
		b.Fatalf("predicate query broken before bench: %d results, %v", len(res), err)
	}
	b.Run("store", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := st.Query(expr); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("txn", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			txn := st.SnapshotView()
			defer txn.Close()
			for pb.Next() {
				res, err := txn.Query(expr)
				if err != nil {
					b.Error(err)
					return
				}
				if res.Collect() == nil {
					b.Error("predicate query lost its match")
					return
				}
			}
		})
	})
	if err := st.Check(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkForestMergedDrain isolates the forest read path over N shards
// vs the same documents in a single shard, both ways it is consumed:
// "parallel" is the one-shot Forest.Query (goroutine per shard, sorted
// runs merged slice-to-slice — scales with -cpu), "stream" is a pinned
// ForestTxn drained entry-at-a-time through the sequential k-way merge
// cursor (the fixed per-entry merge tax).
func BenchmarkForestMergedDrain(b *testing.B) {
	const docs = 16
	srcs := make([]string, docs)
	for i := range srcs {
		srcs[i] = workload.XMarkLite(12, int64(i+1)).String()
	}
	part := PartitionerFunc(func(id string, n int) int {
		v := 0
		for _, r := range id {
			v = v*10 + int(r-'0')
		}
		return v % n
	})
	build := func(b *testing.B, shards int) *Forest {
		f, err := NewForest(ForestOptions{Shards: shards, Partitioner: part})
		if err != nil {
			b.Fatal(err)
		}
		for i, src := range srcs {
			if _, err := f.Put(fmt.Sprintf("%02d", i), src); err != nil {
				b.Fatal(err)
			}
		}
		return f
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel/shards-%d", shards), func(b *testing.B) {
			f := build(b, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				es, err := f.Query("//item[@id]/name")
				if err != nil {
					b.Fatal(err)
				}
				if len(es) == 0 {
					b.Fatal("empty drain")
				}
			}
		})
		b.Run(fmt.Sprintf("stream/shards-%d", shards), func(b *testing.B) {
			f := build(b, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh View per iteration: a pinned Txn's predicate memo
				// would otherwise make every iteration after the first
				// artificially warm.
				err := f.View(func(tx *ForestTxn) error {
					res, err := tx.Query("//item[@id]/name")
					if err != nil {
						return err
					}
					n := 0
					for _, ok := res.Next(); ok; _, ok = res.Next() {
						n++
					}
					if n == 0 {
						b.Fatal("empty drain")
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForestConcurrentCommit measures the write-pipeline fan-out:
// parallel committers on distinct documents against 1 vs 4 WAL-backed
// shards (run with -cpu to see the shard pipelines separate).
func BenchmarkForestConcurrentCommit(b *testing.B) {
	part := PartitionerFunc(func(id string, n int) int {
		v := 0
		for _, r := range id {
			v = v*10 + int(r-'0')
		}
		return v % n
	})
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			f, err := OpenForest(b.TempDir(), ForestOptions{Shards: shards, Partitioner: part})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			var seq atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				id := fmt.Sprintf("%02d", seq.Add(1))
				if _, err := f.Put(id, "<doc/>"); err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					err := f.Update(id, func(tx *Batch, root *Elem) error {
						_, err := tx.InsertElement(root, 0, "x")
						return err
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
