package ltree_test

// Public blob-tier surface: a WAL-backed leader mirrored into a blob
// store must (a) expose retention/tier accounting through WALStats,
// (b) reconstruct any blob-durable historical state bit-identically via
// LoadAt even after local disk was released, and (c) seed a follower
// from the blob store alone that then tracks the leader live — the
// fingerprint differential from the follower suite decides equality.
// Everything runs under the fault-injecting blob wrapper where noted,
// mirroring the storage-layer torture suite one level up.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	ltree "github.com/ltree-db/ltree"
)

// blobLeader builds a WAL-backed store with a blob tier attached and
// returns a commit helper that inserts one distinct item per call.
func blobLeader(t *testing.T, bs ltree.BlobStore, release bool) (*ltree.Store, ltree.WALBackend, *ltree.BlobTier, func() uint64) {
	t.Helper()
	w, err := ltree.NewWALBackend(t.TempDir(), ltree.WALOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	tier, err := ltree.AttachBlobTier(w, bs, ltree.BlobTierOptions{
		Prefix: "leader", ReleaseLocal: release,
		RetryBase: 200 * time.Microsecond, RetryCap: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ltree.OpenString(`<site><regions><asia/></regions></site>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	n := 0
	commit := func() uint64 {
		n++
		asia, err := st.Query("/site/regions/asia")
		if err != nil || len(asia) != 1 {
			t.Fatalf("locate asia: %v (%d)", err, len(asia))
		}
		if _, err := st.InsertXML(asia[0], 0, fmt.Sprintf(`<item><name>i%04d</name></item>`, n)); err != nil {
			t.Fatalf("commit %d: %v", n, err)
		}
		seq, ok := st.WALStats()
		if !ok {
			t.Fatal("WALStats not available on a WAL-backed store")
		}
		return seq.Seq
	}
	return st, w, tier, commit
}

func barrierT(t *testing.T, tier *ltree.BlobTier) {
	t.Helper()
	if err := tier.Barrier(60 * time.Second); err != nil {
		t.Fatalf("tier barrier: %v", err)
	}
}

func snapshotBytes(t *testing.T, r readSurface) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := r.Snapshot(&b); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return b.Bytes()
}

func TestWALStatsExposesTier(t *testing.T) {
	bs := ltree.NewBlobMemory()
	st, _, tier, commit := blobLeader(t, bs, false)
	var seq uint64
	for i := 0; i < 20; i++ {
		seq = commit()
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	barrierT(t, tier)
	ws, ok := st.WALStats()
	if !ok {
		t.Fatal("WALStats not available")
	}
	if ws.Seq != seq || ws.CheckpointSeq != seq {
		t.Fatalf("WALStats seq=%d ckpt=%d, want both %d", ws.Seq, ws.CheckpointSeq, seq)
	}
	if ws.LocalSegments == 0 {
		t.Fatalf("no local segments reported: %+v", ws)
	}
	if ws.Tier == nil {
		t.Fatal("tier accounting missing from WALStats")
	}
	if ws.Tier.DurableSeq != seq || ws.Tier.UploadLag != 0 {
		t.Fatalf("tier caught up but reports durable=%d lag=%d (seq %d)",
			ws.Tier.DurableSeq, ws.Tier.UploadLag, seq)
	}
	if ws.Tier.UploadedCheckpoints == 0 || ws.Tier.UploadedSegments == 0 {
		t.Fatalf("tier uploaded nothing: %+v", ws.Tier)
	}

	// A store without a WAL has no WAL stats.
	plain, err := ltree.OpenString(`<a/>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.WALStats(); ok {
		t.Fatal("WALStats reported ok without a WAL")
	}
}

// TestLoadAtThroughBlobTier pins the bottomless-history claim: snapshot
// fingerprints captured at several live sequence numbers must be
// reproduced bit-identically by LoadAt AFTER the covering checkpoints
// were pruned locally and the segments released from local disk — the
// reconstruction can only have come through the blob tier. The blob
// store injects transient faults throughout.
func TestLoadAtThroughBlobTier(t *testing.T) {
	faulty := ltree.NewBlobFaults(ltree.NewBlobMemory(), ltree.BlobFaultOptions{
		Seed: 11, ErrorRate: 0.2, TornReads: 0.2,
	})
	st, w, tier, commit := blobLeader(t, faulty, true)
	want := map[uint64][]byte{} // seq -> live snapshot bytes at that point
	var seqs []uint64
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			commit()
		}
		ws, _ := st.WALStats()
		want[ws.Seq] = snapshotBytes(t, storeSurface{st})
		seqs = append(seqs, ws.Seq)
		if _, err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	barrierT(t, tier)
	// Drop local history: prune all but the newest checkpoint (released
	// segments are already gone via ReleaseLocal).
	ws, _ := st.WALStats()
	if err := w.Prune(ws.CheckpointSeq); err != nil {
		t.Fatal(err)
	}
	if ws.Tier.LocalReleased == 0 {
		t.Fatalf("ReleaseLocal freed nothing: %+v", ws.Tier)
	}
	for _, seq := range seqs {
		at, err := ltree.LoadAt(w, seq)
		if err != nil {
			t.Fatalf("LoadAt(%d): %v", seq, err)
		}
		if got := snapshotBytes(t, storeSurface{at}); !bytes.Equal(got, want[seq]) {
			t.Fatalf("LoadAt(%d) not bit-identical to the live snapshot (%d vs %d bytes)",
				seq, len(got), len(want[seq]))
		}
	}
	// A sequence number beyond the durable end is a loud miss.
	if _, err := ltree.LoadAt(w, ws.Seq+100); !errors.Is(err, ltree.ErrNoVersion) {
		t.Fatalf("LoadAt past the end: %v, want ErrNoVersion", err)
	}
}

func TestOpenFollowerSeededTracksLeader(t *testing.T) {
	bs := ltree.NewBlobMemory()
	st, w, tier, commit := blobLeader(t, bs, true)
	var seq uint64
	for i := 0; i < 30; i++ {
		seq = commit()
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		seq = commit()
	}
	barrierT(t, tier)

	f, err := ltree.OpenFollowerSeeded(w, bs, "leader")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitFor(seq, waitTimeout); err != nil {
		t.Fatalf("seeded follower never caught up: %v", err)
	}
	if a, b := fingerprintOf(t, storeSurface{st}), fingerprintOf(t, followerSurface{f}); a != b {
		t.Fatal("seeded follower fingerprint diverges from leader at catch-up")
	}
	// Live batches after the seed keep flowing through the leader tail.
	for i := 0; i < 5; i++ {
		seq = commit()
	}
	if err := f.WaitFor(seq, waitTimeout); err != nil {
		t.Fatalf("seeded follower lost the live tail: %v", err)
	}
	if a, b := fingerprintOf(t, storeSurface{st}), fingerprintOf(t, followerSurface{f}); a != b {
		t.Fatal("seeded follower fingerprint diverges from leader on the live tail")
	}
	fs := f.Stats()
	if fs.AppliedSeq != seq || !fs.Running {
		t.Fatalf("follower stats: %+v", fs)
	}
}

func TestOpenFollowerSeededNeedsBlobCheckpoint(t *testing.T) {
	bs := ltree.NewBlobMemory()
	_, w, _, commit := blobLeader(t, bs, false)
	commit() // nothing sealed/uploaded yet at a 1 KiB segment size
	if _, err := ltree.OpenFollowerSeeded(w, bs, "other-prefix"); !errors.Is(err, ltree.ErrNoVersion) {
		t.Fatalf("seeding from an empty tier prefix: %v, want ErrNoVersion", err)
	}
}
