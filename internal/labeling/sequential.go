package labeling

import (
	"github.com/ltree-db/ltree/internal/stats"
)

// Sequential is the naive order-preserving scheme from the paper's
// introduction: slots are labeled 0..n−1 densely, so inserting at position
// p renumbers the n−p following slots — half the document on average. It
// exists as the baseline whose update cost the L-Tree is designed to beat;
// its labels are as small as possible (⌈log2 n⌉ bits).
type Sequential struct {
	head, tail *seqSlot
	n          int
	st         stats.Counters
}

type seqSlot struct {
	label      uint64
	prev, next *seqSlot
	owner      *Sequential
	deleted    bool
}

// NewSequential returns an empty dense-labeling scheme.
func NewSequential() *Sequential { return &Sequential{} }

// Name implements Scheme.
func (q *Sequential) Name() string { return "sequential" }

// Load implements Scheme.
func (q *Sequential) Load(n int) ([]Slot, error) {
	if n < 0 {
		return nil, ErrBadSlot
	}
	slots := make([]Slot, n)
	for i := 0; i < n; i++ {
		s := &seqSlot{label: uint64(i), owner: q, prev: q.tail}
		if q.tail != nil {
			q.tail.next = s
		} else {
			q.head = s
		}
		q.tail = s
		slots[i] = s
	}
	q.n = n
	return slots, nil
}

// InsertAfter implements Scheme: the new slot takes label p+1 and every
// following slot is renumbered, each renumbering charged to the counters.
func (q *Sequential) InsertAfter(s Slot) (Slot, error) {
	p, ok := s.(*seqSlot)
	if !ok || p.owner != q {
		return nil, ErrBadSlot
	}
	x := &seqSlot{label: p.label + 1, owner: q, prev: p, next: p.next}
	if p.next != nil {
		p.next.prev = x
	} else {
		q.tail = x
	}
	p.next = x
	q.n++
	q.st.Inserts++
	q.st.RelabeledLeaves++ // the new slot's own numbering
	for cur := x.next; cur != nil; cur = cur.next {
		cur.label++
		q.st.RelabeledLeaves++
	}
	return x, nil
}

// InsertFirst implements Scheme.
func (q *Sequential) InsertFirst() (Slot, error) {
	x := &seqSlot{label: 0, owner: q, next: q.head}
	if q.head != nil {
		q.head.prev = x
	} else {
		q.tail = x
	}
	q.head = x
	q.n++
	q.st.Inserts++
	q.st.RelabeledLeaves++
	for cur := x.next; cur != nil; cur = cur.next {
		cur.label++
		q.st.RelabeledLeaves++
	}
	return x, nil
}

// Delete implements Scheme (tombstone only; dense labels keep their slot).
func (q *Sequential) Delete(s Slot) error {
	p, ok := s.(*seqSlot)
	if !ok || p.owner != q {
		return ErrBadSlot
	}
	if !p.deleted {
		p.deleted = true
		q.st.Deletes++
	}
	return nil
}

// Label implements Scheme.
func (q *Sequential) Label(s Slot) []byte {
	p, ok := s.(*seqSlot)
	if !ok || p.owner != q {
		return nil
	}
	return beUint64(p.label)
}

// Bits implements Scheme: dense labels need ⌈log2 n⌉ bits.
func (q *Sequential) Bits() int { return bitsFor(uint64(q.n)) }

// Len implements Scheme.
func (q *Sequential) Len() int { return q.n }

// Stats implements Scheme.
func (q *Sequential) Stats() stats.Counters { return q.st }

// bitsFor returns the bits needed to represent labels in [0, n), min 1.
func bitsFor(n uint64) int {
	if n <= 2 {
		return 1
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
