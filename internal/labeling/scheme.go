// Package labeling defines the order-preserving labeling abstraction that
// the experiments compare schemes under, and implements the baseline
// schemes the paper positions the L-Tree against (§1, §5):
//
//   - Sequential: dense integer labels; an insertion renumbers every
//     following slot (≈ n/2 relabelings on average — the paper's opening
//     example of why naive labeling fails).
//   - Gap: classic online list labeling over a fixed universe with
//     density-triggered redistribution of aligned ranges (the Dietz/
//     Itai-Konheim-Rodeh family the paper cites as [8, 9, 16]).
//   - Bisect: binary-fraction labels that never relabel but grow to Ω(n)
//     bits in the worst case (the Cohen-Kaplan-Milo lower-bound regime,
//     paper [5]).
//   - LTree: the paper's contribution, adapted from internal/core.
//
// All schemes expose byte-comparable labels and the shared cost counters,
// so the experiment harness can compare relabeling work and label width
// uniformly.
package labeling

import (
	"encoding/binary"
	"errors"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/stats"
)

// Slot is an opaque handle to one labeled position of a scheme. Handles
// remain valid across relabelings; only their label value changes.
type Slot any

// Scheme is an order-preserving labeling scheme over a dynamic list.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Load bulk-labels n fresh slots on an empty scheme, in order.
	Load(n int) ([]Slot, error)
	// InsertAfter creates and labels a slot right after the given one.
	InsertAfter(Slot) (Slot, error)
	// InsertFirst creates and labels a slot before all existing ones.
	InsertFirst() (Slot, error)
	// Delete tombstones a slot (no relabeling in any scheme).
	Delete(Slot) error
	// Label returns the slot's current label in an order-preserving byte
	// encoding: bytes.Compare(Label(a), Label(b)) < 0 iff a precedes b.
	Label(Slot) []byte
	// Bits returns the number of bits a label currently requires.
	Bits() int
	// Len returns the number of slots (including tombstones).
	Len() int
	// Stats exposes the shared maintenance counters.
	Stats() stats.Counters
}

// ErrBadSlot is returned when a handle does not belong to the scheme.
var ErrBadSlot = errors.New("labeling: slot does not belong to this scheme")

// ErrFull is returned when a fixed-universe scheme cannot make room.
var ErrFull = errors.New("labeling: label universe exhausted")

// LTree adapts the materialized L-Tree (internal/core) to the Scheme
// interface. Slots are *core.Node leaves.
type LTree struct {
	T *core.Tree
}

// NewLTree returns an L-Tree scheme with the paper's parameters (f, s).
func NewLTree(f, s int) (*LTree, error) {
	t, err := core.New(core.Params{F: f, S: s})
	if err != nil {
		return nil, err
	}
	return &LTree{T: t}, nil
}

// Name implements Scheme.
func (l *LTree) Name() string { return "ltree" }

// Load implements Scheme.
func (l *LTree) Load(n int) ([]Slot, error) {
	leaves, err := l.T.Load(n)
	if err != nil {
		return nil, err
	}
	slots := make([]Slot, len(leaves))
	for i, lf := range leaves {
		slots[i] = lf
	}
	return slots, nil
}

// InsertAfter implements Scheme.
func (l *LTree) InsertAfter(s Slot) (Slot, error) {
	lf, ok := s.(*core.Node)
	if !ok {
		return nil, ErrBadSlot
	}
	return l.T.InsertAfter(lf)
}

// InsertFirst implements Scheme.
func (l *LTree) InsertFirst() (Slot, error) { return l.T.InsertFirst() }

// Delete implements Scheme.
func (l *LTree) Delete(s Slot) error {
	lf, ok := s.(*core.Node)
	if !ok {
		return ErrBadSlot
	}
	return l.T.Delete(lf)
}

// Label implements Scheme with the big-endian uint64 encoding.
func (l *LTree) Label(s Slot) []byte {
	lf, ok := s.(*core.Node)
	if !ok {
		return nil
	}
	return beUint64(lf.Num())
}

// Bits implements Scheme.
func (l *LTree) Bits() int { return l.T.BitsPerLabel() }

// Len implements Scheme.
func (l *LTree) Len() int { return l.T.Len() }

// Stats implements Scheme.
func (l *LTree) Stats() stats.Counters { return l.T.Stats() }

// beUint64 encodes v big-endian, the order-preserving fixed-width coding.
func beUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
