package labeling

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// allSchemes builds one fresh instance of every scheme.
func allSchemes(t *testing.T) []Scheme {
	t.Helper()
	lt, err := NewLTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []Scheme{lt, NewSequential(), NewGap(8), NewBisect()}
}

// verifyOrder asserts that the slots' labels are strictly increasing under
// bytes.Compare in the given logical order.
func verifyOrder(t *testing.T, sc Scheme, slots []Slot) {
	t.Helper()
	for i := 1; i < len(slots); i++ {
		a, b := sc.Label(slots[i-1]), sc.Label(slots[i])
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("%s: label order broken at %d: %q ≥ %q", sc.Name(), i, a, b)
		}
	}
}

func TestLoadOrder(t *testing.T) {
	for _, sc := range allSchemes(t) {
		slots, err := sc.Load(100)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if sc.Len() != 100 {
			t.Fatalf("%s: len %d", sc.Name(), sc.Len())
		}
		verifyOrder(t, sc, slots)
	}
}

// TestFigure1Sequential reproduces Figure 1 of the paper exactly: the
// book/chapter/title document labeled 0..7 in depth-first tag order gives
// book(0,7), chapter(1,4), title(2,3), title(5,6), and the ancestor test
// is interval containment.
func TestFigure1Sequential(t *testing.T) {
	sc := NewSequential()
	// Tag order: book chapter title /title /chapter title /title /book.
	slots, err := sc.Load(8)
	if err != nil {
		t.Fatal(err)
	}
	label := func(i int) uint64 {
		b := sc.Label(slots[i])
		var v uint64
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
		return v
	}
	type elem struct{ begin, end uint64 }
	book := elem{label(0), label(7)}
	chapter := elem{label(1), label(4)}
	title1 := elem{label(2), label(3)}
	title2 := elem{label(5), label(6)}
	if book.begin != 0 || book.end != 7 || chapter.begin != 1 || chapter.end != 4 ||
		title1.begin != 2 || title1.end != 3 || title2.begin != 5 || title2.end != 6 {
		t.Fatalf("figure 1 labels wrong: book=%v chapter=%v titles=%v,%v", book, chapter, title1, title2)
	}
	contains := func(a, d elem) bool { return a.begin < d.begin && d.end < a.end }
	if !contains(book, title1) || !contains(book, title2) || !contains(chapter, title1) {
		t.Fatal("containment relations broken")
	}
	if contains(chapter, title2) || contains(title1, title2) {
		t.Fatal("false containment")
	}
}

// TestRandomStreamAllSchemes drives identical random insertion streams
// through every scheme and checks order preservation throughout.
func TestRandomStreamAllSchemes(t *testing.T) {
	for _, sc := range allSchemes(t) {
		rng := rand.New(rand.NewSource(5))
		slots, err := sc.Load(8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			pos := rng.Intn(len(slots) + 1)
			var s Slot
			if pos == 0 {
				s, err = sc.InsertFirst()
			} else {
				s, err = sc.InsertAfter(slots[pos-1])
			}
			if err != nil {
				t.Fatalf("%s: insert %d: %v", sc.Name(), i, err)
			}
			slots = append(slots, nil)
			copy(slots[pos+1:], slots[pos:])
			slots[pos] = s
			if i%50 == 49 {
				verifyOrder(t, sc, slots)
			}
		}
		verifyOrder(t, sc, slots)
		if sc.Len() != len(slots) {
			t.Fatalf("%s: len %d, want %d", sc.Name(), sc.Len(), len(slots))
		}
		// Deletions never relabel in any scheme.
		before := sc.Stats().RelabeledLeaves
		if err := sc.Delete(slots[3]); err != nil {
			t.Fatalf("%s: delete: %v", sc.Name(), err)
		}
		if got := sc.Stats().RelabeledLeaves; got != before {
			t.Fatalf("%s: delete relabeled %d slots", sc.Name(), got-before)
		}
	}
}

// TestSequentialRelabelHalf pins the paper's motivating claim: inserting
// at the front of a sequentially labeled list of n slots renumbers all n.
func TestSequentialRelabelHalf(t *testing.T) {
	sc := NewSequential()
	const n = 1000
	if _, err := sc.Load(n); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.InsertFirst(); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	// n shifted labels + the new slot's own.
	if st.RelabeledLeaves != n+1 {
		t.Fatalf("front insert relabeled %d, want %d", st.RelabeledLeaves, n+1)
	}
	// Random positions average about n/2.
	sc2 := NewSequential()
	slots, _ := sc2.Load(n)
	rng := rand.New(rand.NewSource(9))
	const inserts = 500
	for i := 0; i < inserts; i++ {
		s, err := sc2.InsertAfter(slots[rng.Intn(len(slots))])
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s) // anchors only; order not needed here
	}
	avg := float64(sc2.Stats().RelabeledLeaves) / inserts
	if avg < float64(n)/4 || avg > float64(n) {
		t.Fatalf("average relabels per random insert = %.0f, expected ≈ n/2 = %d", avg, n/2)
	}
}

// TestBisectNeverRelabels pins the other extreme: bisection relabels
// nothing but labels grow linearly under a hostile insertion point.
func TestBisectNeverRelabels(t *testing.T) {
	sc := NewBisect()
	slots, err := sc.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	anchor := slots[0]
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := sc.InsertAfter(anchor); err != nil {
			t.Fatal(err)
		}
	}
	st := sc.Stats()
	if st.RelabeledLeaves != n { // only each new slot's own label
		t.Fatalf("bisect relabeled %d, want %d", st.RelabeledLeaves, n)
	}
	if sc.Bits() < n/2 {
		t.Fatalf("hostile bisect labels should grow linearly: bits=%d after %d inserts", sc.Bits(), n)
	}
}

// TestGapStaysBounded: the gap scheme's universe stays polynomial (bits
// grow only on density overflow) and its amortized relabels are far below
// sequential's.
func TestGapStaysBounded(t *testing.T) {
	sc := NewGap(8)
	slots, err := sc.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	const n = 5000
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(slots) + 1)
		var s Slot
		if pos == 0 {
			s, err = sc.InsertFirst()
		} else {
			s, err = sc.InsertAfter(slots[pos-1])
		}
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		slots = append(slots, nil)
		copy(slots[pos+1:], slots[pos:])
		slots[pos] = s
	}
	verifyOrder(t, sc, slots)
	if sc.Bits() > 40 {
		t.Fatalf("gap universe exploded: %d bits for %d slots", sc.Bits(), sc.Len())
	}
	amort := float64(sc.Stats().RelabeledLeaves) / n
	if amort > 200 {
		t.Fatalf("gap amortized relabels = %.1f, way above the polylog regime", amort)
	}
}

// TestGapHostilePoint drives the worst case for the gap scheme (always the
// same insertion point) and verifies it still works, just with more
// relabeling than the L-Tree.
func TestGapHostilePoint(t *testing.T) {
	sc := NewGap(8)
	slots, err := sc.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	anchor := slots[0]
	order := []Slot{anchor, slots[1]}
	for i := 0; i < 3000; i++ {
		s, err := sc.InsertAfter(anchor)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		rest := append([]Slot{s}, order[1:]...)
		order = append(order[:1], rest...)
	}
	verifyOrder(t, sc, order)
}

// TestQuickSchemesAgree: any op stream applied to all schemes yields the
// same logical order (trivially true by construction) with valid labels —
// the property being that no scheme ever produces out-of-order labels.
func TestQuickSchemesAgree(t *testing.T) {
	prop := func(seed int64, opsRaw uint8) bool {
		ops := int(opsRaw)%80 + 5
		lt, err := NewLTree(6, 2)
		if err != nil {
			return false
		}
		schemes := []Scheme{lt, NewSequential(), NewGap(6), NewBisect()}
		orders := make([][]Slot, len(schemes))
		for i, sc := range schemes {
			slots, err := sc.Load(3)
			if err != nil {
				return false
			}
			orders[i] = slots
		}
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < ops; op++ {
			pos := rng.Intn(len(orders[0]) + 1)
			for i, sc := range schemes {
				var s Slot
				var err error
				if pos == 0 {
					s, err = sc.InsertFirst()
				} else {
					s, err = sc.InsertAfter(orders[i][pos-1])
				}
				if err != nil {
					return false
				}
				orders[i] = append(orders[i], nil)
				copy(orders[i][pos+1:], orders[i][pos:])
				orders[i][pos] = s
			}
		}
		for i, sc := range schemes {
			for j := 1; j < len(orders[i]); j++ {
				if bytes.Compare(sc.Label(orders[i][j-1]), sc.Label(orders[i][j])) >= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBadSlots(t *testing.T) {
	for _, sc := range allSchemes(t) {
		if _, err := sc.InsertAfter("bogus"); err == nil {
			t.Fatalf("%s accepted a foreign slot", sc.Name())
		}
		if err := sc.Delete(42); err == nil {
			t.Fatalf("%s deleted a foreign slot", sc.Name())
		}
		if sc.Label(struct{}{}) != nil {
			t.Fatalf("%s labeled a foreign slot", sc.Name())
		}
	}
}
