package labeling

import (
	"math"

	"github.com/ltree-db/ltree/internal/stats"
)

// Gap is the classic online list-labeling baseline (the Dietz [8],
// Dietz-Sleator [9] and Tsakalidis [16] family the paper's related work
// cites): labels live in a fixed universe [0, 2^bits); an insertion takes
// any free label between its neighbours, and when none exists the smallest
// enclosing power-of-two-aligned range whose density is acceptable is
// renumbered evenly. Density thresholds fall geometrically from 1 at
// single slots to 1/2 at the whole universe, so a full universe doubles
// (bits+1) and renumbers everything.
//
// Amortized cost is O(log² n) relabelings per insertion — asymptotically
// worse than the L-Tree's O(log n) — with comparable label widths, which
// is exactly the trade-off experiment E5 measures.
type Gap struct {
	bits    uint
	maxBits uint
	head    *gapSlot
	tail    *gapSlot
	n       int
	st      stats.Counters
}

type gapSlot struct {
	label      uint64
	prev, next *gapSlot
	owner      *Gap
	deleted    bool
}

// NewGap returns an empty gap scheme with the given starting universe
// width in bits (clamped to [4, 62]).
func NewGap(bits uint) *Gap {
	if bits < 4 {
		bits = 4
	}
	if bits > 62 {
		bits = 62
	}
	return &Gap{bits: bits, maxBits: 62}
}

// Name implements Scheme.
func (g *Gap) Name() string { return "gap" }

// universe returns the size of the label space.
func (g *Gap) universe() uint64 { return uint64(1) << g.bits }

// threshold returns the maximum tolerated occupancy of an aligned range of
// size 2^level: interpolating geometrically from density 1 at level 0 to
// density 1/2 at the full universe.
func (g *Gap) threshold(level uint) int {
	density := math.Pow(0.5, float64(level)/float64(g.bits))
	return int(density * math.Pow(2, float64(level)))
}

// Load implements Scheme: n slots spread evenly, growing the universe
// until it is at most half full.
func (g *Gap) Load(n int) ([]Slot, error) {
	if n < 0 {
		return nil, ErrBadSlot
	}
	for g.universe() < 2*uint64(n+1) {
		if g.bits+1 > g.maxBits {
			return nil, ErrFull
		}
		g.bits++
	}
	slots := make([]Slot, n)
	step := g.universe() / uint64(n+1)
	for i := 0; i < n; i++ {
		s := &gapSlot{label: uint64(i+1) * step, owner: g, prev: g.tail}
		if g.tail != nil {
			g.tail.next = s
		} else {
			g.head = s
		}
		g.tail = s
		slots[i] = s
	}
	g.n = n
	return slots, nil
}

// InsertAfter implements Scheme.
func (g *Gap) InsertAfter(s Slot) (Slot, error) {
	p, ok := s.(*gapSlot)
	if !ok || p.owner != g {
		return nil, ErrBadSlot
	}
	return g.insertBetween(p, p.next)
}

// InsertFirst implements Scheme.
func (g *Gap) InsertFirst() (Slot, error) {
	return g.insertBetween(nil, g.head)
}

// insertBetween splices a new slot between prev and next (either may be
// nil for the list boundaries) and labels it, rebalancing if required.
func (g *Gap) insertBetween(prev, next *gapSlot) (Slot, error) {
	x := &gapSlot{owner: g, prev: prev, next: next}
	if prev != nil {
		prev.next = x
	} else {
		g.head = x
	}
	if next != nil {
		next.prev = x
	} else {
		g.tail = x
	}
	g.n++
	g.st.Inserts++

	lo := uint64(0) // smallest admissible label
	if prev != nil {
		lo = prev.label + 1
	}
	hi := g.universe() // exclusive upper bound
	if next != nil {
		hi = next.label
	}
	if hi > lo {
		// A free label exists: take the midpoint of the gap.
		x.label = lo + (hi-lo)/2
		g.st.RelabeledLeaves++
		return x, nil
	}
	ideal := lo
	if ideal >= g.universe() {
		ideal = g.universe() - 1
	}
	if err := g.rebalance(x, ideal); err != nil {
		return nil, err
	}
	return x, nil
}

// rebalance renumbers the smallest acceptable aligned range around the
// ideal position of x, growing the universe when even the whole space is
// too dense.
func (g *Gap) rebalance(x *gapSlot, ideal uint64) error {
	for level := uint(1); ; level++ {
		if level > g.bits {
			// Universe overflow: double the space and renumber all.
			if g.bits+1 > g.maxBits {
				return ErrFull
			}
			g.bits++
			g.renumber(g.head, nil, 0, g.universe())
			return nil
		}
		size := uint64(1) << level
		start := ideal &^ (size - 1)
		// Collect the contiguous run of slots whose labels fall in
		// [start, start+size); x sits between its neighbours.
		first := x
		for first.prev != nil && first.prev.label >= start {
			first = first.prev
		}
		var stop *gapSlot
		count := 0
		for cur := first; cur != nil; cur = cur.next {
			if cur != x && cur.label >= start+size {
				stop = cur
				break
			}
			count++
		}
		if count <= g.threshold(level) {
			g.renumber(first, stop, start, size)
			return nil
		}
	}
}

// renumber spreads the slots from first up to (excluding) stop evenly over
// [start, start+size), charging every changed label.
func (g *Gap) renumber(first, stop *gapSlot, start, size uint64) {
	count := 0
	for cur := first; cur != stop; cur = cur.next {
		count++
	}
	if count == 0 {
		return
	}
	step := size / uint64(count+1)
	i := uint64(1)
	for cur := first; cur != stop; cur = cur.next {
		if want := start + i*step; cur.label != want {
			cur.label = want
			g.st.RelabeledLeaves++
		}
		i++
	}
}

// Delete implements Scheme (tombstone only).
func (g *Gap) Delete(s Slot) error {
	p, ok := s.(*gapSlot)
	if !ok || p.owner != g {
		return ErrBadSlot
	}
	if !p.deleted {
		p.deleted = true
		g.st.Deletes++
	}
	return nil
}

// Label implements Scheme.
func (g *Gap) Label(s Slot) []byte {
	p, ok := s.(*gapSlot)
	if !ok || p.owner != g {
		return nil
	}
	return beUint64(p.label)
}

// Bits implements Scheme.
func (g *Gap) Bits() int { return int(g.bits) }

// Len implements Scheme.
func (g *Gap) Len() int { return g.n }

// Stats implements Scheme.
func (g *Gap) Stats() stats.Counters { return g.st }
