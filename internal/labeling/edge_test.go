package labeling

import (
	"bytes"
	"errors"
	"testing"
)

// TestGapUniverseExhaustion forces the gap scheme against its hard bit
// cap (white-box: a tiny maxBits makes the condition reachable).
func TestGapUniverseExhaustion(t *testing.T) {
	g := NewGap(4)
	g.maxBits = 6 // universe can grow to at most 64 labels
	slots, err := g.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	anchor := slots[0].(*gapSlot)
	var lastErr error
	inserted := 0
	for i := 0; i < 200; i++ {
		if _, err := g.InsertAfter(anchor); err != nil {
			lastErr = err
			break
		}
		inserted++
	}
	if !errors.Is(lastErr, ErrFull) {
		t.Fatalf("expected ErrFull, got %v after %d inserts", lastErr, inserted)
	}
	// The cap must only trigger once the universe is genuinely crowded.
	if inserted < 20 {
		t.Fatalf("gave up too early: %d inserts into a 64-label universe", inserted)
	}
	// Load on a too-small capped universe also errors.
	g2 := NewGap(4)
	g2.maxBits = 5
	if _, err := g2.Load(100); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull load = %v", err)
	}
}

// TestSequentialBitsTrack checks the dense scheme's minimal label width.
func TestSequentialBitsTrack(t *testing.T) {
	q := NewSequential()
	if q.Bits() != 1 {
		t.Fatalf("empty bits = %d", q.Bits())
	}
	if _, err := q.Load(1000); err != nil {
		t.Fatal(err)
	}
	if q.Bits() != 10 { // ceil(log2 1000)
		t.Fatalf("bits = %d, want 10", q.Bits())
	}
}

// TestBisectMidpointOrdering drills the midpoint arithmetic: repeated
// bisection between two fixed neighbours keeps strict byte order.
func TestBisectMidpointOrdering(t *testing.T) {
	b := NewBisect()
	slots, err := b.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	left := slots[0]
	right := slots[1]
	prevLabel := b.Label(left)
	for i := 0; i < 200; i++ {
		mid, err := b.InsertAfter(left)
		if err != nil {
			t.Fatal(err)
		}
		lab := b.Label(mid)
		if bytes.Compare(prevLabel, lab) >= 0 {
			t.Fatalf("iteration %d: midpoint %q not after %q", i, lab, prevLabel)
		}
		if bytes.Compare(lab, b.Label(right)) >= 0 {
			t.Fatalf("iteration %d: midpoint %q not before right", i, lab)
		}
		// Keep splitting the same left gap: labels must keep growing by
		// roughly one bit per step (the Ω(n) regime).
		prevLabel = lab
		left = mid
	}
	if b.Bits() < 150 {
		t.Fatalf("hostile bisection bits = %d, want ≈ 200", b.Bits())
	}
}

// TestLTreeAdapterLoadTwice covers the adapter's error propagation.
func TestLTreeAdapterLoadTwice(t *testing.T) {
	sc, err := NewLTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Load(4); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Load(4); err == nil {
		t.Fatal("second Load should fail")
	}
	if _, err := NewLTree(5, 2); err == nil {
		t.Fatal("invalid params should fail")
	}
}

// TestDeleteIdempotent covers tombstone re-deletion across schemes.
func TestDeleteIdempotent(t *testing.T) {
	for _, sc := range allSchemes(t) {
		slots, err := sc.Load(3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := sc.Delete(slots[1]); err != nil {
				t.Fatalf("%s delete #%d: %v", sc.Name(), i, err)
			}
		}
		if got := sc.Stats().Deletes; got != 1 {
			t.Fatalf("%s: %d deletes charged, want 1", sc.Name(), got)
		}
	}
}
