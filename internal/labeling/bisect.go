package labeling

import (
	"math/big"

	"github.com/ltree-db/ltree/internal/stats"
)

// Bisect is the persistent-labels baseline: labels are binary fractions in
// (0, 1) and an insertion takes the midpoint of its neighbours, so no
// label ever changes. The price is label width: a hostile insertion point
// grows labels by one bit per insertion, the Ω(n) bits-per-label regime
// that Cohen, Kaplan and Milo proved unavoidable for relabeling-free
// schemes (paper reference [5]). Experiment E4/E5 uses it to show the
// other side of the trade-off the L-Tree balances.
type Bisect struct {
	head, tail *bisSlot
	n          int
	maxLen     int
	st         stats.Counters
}

type bisSlot struct {
	m          *big.Int // mantissa: the label is m / 2^length, m odd
	length     int
	prev, next *bisSlot
	owner      *Bisect
	deleted    bool
}

// NewBisect returns an empty bisection scheme.
func NewBisect() *Bisect { return &Bisect{} }

// Name implements Scheme.
func (b *Bisect) Name() string { return "bisect" }

// Load implements Scheme: n slots get the n shortest distinct fractions
// (i+1)/2^L for the minimal L with 2^L > n.
func (b *Bisect) Load(n int) ([]Slot, error) {
	if n < 0 {
		return nil, ErrBadSlot
	}
	length := 1
	for (1 << length) <= n {
		length++
	}
	slots := make([]Slot, n)
	for i := 0; i < n; i++ {
		m := big.NewInt(int64(i + 1))
		s := &bisSlot{owner: b, prev: b.tail}
		s.m, s.length = normalize(m, length)
		if b.tail != nil {
			b.tail.next = s
		} else {
			b.head = s
		}
		b.tail = s
		slots[i] = s
		if s.length > b.maxLen {
			b.maxLen = s.length
		}
	}
	b.n = n
	return slots, nil
}

// normalize strips trailing zero bits so the mantissa is odd (labels have
// a unique representation and lexicographic bitstring order is correct).
func normalize(m *big.Int, length int) (*big.Int, int) {
	if m.Sign() == 0 {
		return m, 0
	}
	for m.Bit(0) == 0 {
		m.Rsh(m, 1)
		length--
	}
	return m, length
}

// midpoint returns a fraction strictly between a and b (a < b), where nil
// bounds stand for 0 and 1 respectively.
func midpoint(a, b *bisSlot) (*big.Int, int) {
	am, al := big.NewInt(0), 0
	if a != nil {
		am, al = a.m, a.length
	}
	bm, bl := big.NewInt(1), 0 // 1/2^0 = 1.0, the exclusive upper bound
	if b != nil {
		bm, bl = b.m, b.length
	}
	length := al
	if bl > length {
		length = bl
	}
	A := new(big.Int).Lsh(am, uint(length-al))
	B := new(big.Int).Lsh(bm, uint(length-bl))
	diff := new(big.Int).Sub(B, A)
	if diff.Cmp(big.NewInt(2)) >= 0 {
		mid := new(big.Int).Add(A, B)
		mid.Rsh(mid, 1)
		return normalize(mid, length)
	}
	// Adjacent at this precision: extend by one bit, taking A·2+1.
	mid := new(big.Int).Lsh(A, 1)
	mid.SetBit(mid, 0, 1)
	return mid, length + 1
}

// insertBetween splices and labels a new slot; nothing else is relabeled.
func (b *Bisect) insertBetween(prev, next *bisSlot) (Slot, error) {
	x := &bisSlot{owner: b, prev: prev, next: next}
	x.m, x.length = midpoint(prev, next)
	if prev != nil {
		prev.next = x
	} else {
		b.head = x
	}
	if next != nil {
		next.prev = x
	} else {
		b.tail = x
	}
	b.n++
	b.st.Inserts++
	b.st.RelabeledLeaves++ // only its own label, ever
	if x.length > b.maxLen {
		b.maxLen = x.length
	}
	return x, nil
}

// InsertAfter implements Scheme.
func (b *Bisect) InsertAfter(s Slot) (Slot, error) {
	p, ok := s.(*bisSlot)
	if !ok || p.owner != b {
		return nil, ErrBadSlot
	}
	return b.insertBetween(p, p.next)
}

// InsertFirst implements Scheme.
func (b *Bisect) InsertFirst() (Slot, error) {
	return b.insertBetween(nil, b.head)
}

// Delete implements Scheme (tombstone only).
func (b *Bisect) Delete(s Slot) error {
	p, ok := s.(*bisSlot)
	if !ok || p.owner != b {
		return ErrBadSlot
	}
	if !p.deleted {
		p.deleted = true
		b.st.Deletes++
	}
	return nil
}

// Label implements Scheme: the label is the bitstring of the fraction
// ('0'/'1' bytes, most significant first). Because every label ends in a
// 1 bit, plain lexicographic byte order matches fraction order.
func (b *Bisect) Label(s Slot) []byte {
	p, ok := s.(*bisSlot)
	if !ok || p.owner != b {
		return nil
	}
	out := make([]byte, p.length)
	for i := 0; i < p.length; i++ {
		if p.m.Bit(p.length-1-i) == 1 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return out
}

// Bits implements Scheme: the longest label seen so far.
func (b *Bisect) Bits() int {
	if b.maxLen == 0 {
		return 1
	}
	return b.maxLen
}

// Len implements Scheme.
func (b *Bisect) Len() int { return b.n }

// Stats implements Scheme.
func (b *Bisect) Stats() stats.Counters { return b.st }
