package storage

// This file pushes the log-shipping seam over a socket: a ShipServer
// serves one TailSource to any number of remote followers over plain
// net.Conn transports, and a RemoteTailSource satisfies the full
// TailSource contract on the client side — so ltree.OpenFollower works
// unchanged against a remote leader, and the follower==leader
// differential property test runs verbatim over net.Pipe.
//
// Wire format: every message is one frame built by frameRecord — the
// exact CRC-32C framing WAL segments use (length u32 LE, crc u32 LE,
// kind u64 LE, payload), with the sequence-number slot carrying the
// frame kind instead. A torn or corrupt frame is a connection error
// (the transport has no "longest durable prefix" to fall back to; the
// client redials and resumes from its applied position).
//
// Exchanges are request/response over a single connection, serialized
// client-side; the server additionally pushes frameNotify (durability
// broadcast: seq + rebase count) and frameClosed (leader WAL closed)
// at any point. Lease traffic (frameRetain/Advance/Release) and
// frameMarkRebase are fire-and-forget: per-connection write ordering
// guarantees a registration written before a read request is processed
// before it, which preserves TailLatest's register-then-read bootstrap
// invariant over the wire.
//
// Rebase soundness over the wire: the server reads src.Rebases() AFTER
// scanning a replay page and ships it in frameReplayEnd; the client
// updates its cached counter from that frame before ReplaySince
// returns. The leader marks a re-base strictly before any post-repair
// append, so a page that picked up a post-repair record always carries
// the moved counter — Tailer.fill's post-sweep check then fires off
// the cache exactly as it would in-process. The cache can lag (a
// notify not yet delivered) but never run ahead of what the served
// records require, so the failure mode is a conservative stop, never
// silent divergence.
//
// Reconnection: every client exchange redials with exponential backoff
// (bounded by RemoteOptions) and re-registers live leases at their
// current floors before re-issuing the request from the same resume
// point. If the leader truncated past the resume point during the
// outage (the re-registered lease came too late), the replay reports
// the gap as ErrCorruptWAL — loud, terminal, re-seed the follower.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// wireProto is the protocol version exchanged in the hello handshake.
const wireProto = 1

// Frame kinds. Client→server: hello, latest, replay, lease ops, mark.
// Server→client: helloOK, latestOK, err, rec, replayEnd, notify, closed.
const (
	frameHello uint64 = iota + 1
	frameLatest
	frameReplay
	frameRetain
	frameAdvance
	frameRelease
	frameMarkRebase
	frameHelloOK
	frameLatestOK
	frameErr
	frameRec
	frameReplayEnd
	frameNotify
	frameClosed
)

// frameErr codes, mapped back to the sentinel errors the in-process
// TailSource surface returns.
const (
	ecNoVersion uint64 = iota + 1
	ecCorrupt
	ecClosed
	ecOther
)

// wirePageMax bounds one server-side replay page; wirePage is what the
// client asks for per request (matching the Tailer's fill window, so a
// fill normally consumes exactly one page).
const (
	wirePageMax = 1024
	wirePage    = fillWindow
)

// errPageFull bounds one server replay sweep (same trick as errFillFull).
var errPageFull = errors.New("storage: shipnet: page full")

// errTransport marks a retryable transport failure inside an exchange:
// the client redials and repeats the request from its resume point.
var errTransport = errors.New("storage: shipnet: transport error")

// ErrRemoteReadOnly reports a write on a RemoteTailSource: followers
// only read; writes belong to the leader.
var ErrRemoteReadOnly = errors.New("storage: remote tail source is read-only (writes belong to the leader)")

// wireFrame is one decoded frame.
type wireFrame struct {
	kind    uint64
	payload []byte
}

// readWireFrame reads and verifies one frame. Any malformation is a
// connection error — there is no durable prefix to trust on a stream.
func readWireFrame(r io.Reader) (uint64, []byte, error) {
	var head [recordHeaderLen]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(head[0:4])
	crc := binary.LittleEndian.Uint32(head[4:8])
	kind := binary.LittleEndian.Uint64(head[8:16])
	if length > maxRecord {
		return 0, nil, fmt.Errorf("storage: shipnet: frame claims %d bytes", length)
	}
	// Chunked read, same discipline as scanRecords: a corrupt length
	// must fail after one chunk, not pre-allocate the claimed size.
	payload := make([]byte, 0, min(int(length), 1<<13))
	var chunk [1 << 13]byte
	for len(payload) < int(length) {
		want := min(int(length)-len(payload), len(chunk))
		if _, err := io.ReadFull(r, chunk[:want]); err != nil {
			return 0, nil, err
		}
		payload = append(payload, chunk[:want]...)
	}
	sum := crc32.Checksum(head[8:16], crcTable)
	sum = crc32.Update(sum, crcTable, payload)
	if sum != crc {
		return 0, nil, errors.New("storage: shipnet: frame CRC mismatch")
	}
	return kind, payload, nil
}

// wireReader is a tiny cursor over a frame payload.
type wireReader struct{ p []byte }

func (w *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(w.p)
	if n <= 0 {
		return 0, errors.New("storage: shipnet: malformed frame payload")
	}
	w.p = w.p[n:]
	return v, nil
}

func (w *wireReader) rest() []byte { return w.p }

// decodeErrFrame maps a frameErr payload back to the sentinel the
// server-side call returned.
func decodeErrFrame(payload []byte) error {
	wr := wireReader{payload}
	code, err := wr.uvarint()
	if err != nil {
		return err
	}
	msg := string(wr.rest())
	switch code {
	case ecNoVersion:
		return fmt.Errorf("%w (remote: %s)", ErrNoVersion, msg)
	case ecCorrupt:
		return fmt.Errorf("%w (remote: %s)", ErrCorruptWAL, msg)
	case ecClosed:
		return fmt.Errorf("%w (remote: %s)", ErrSourceClosed, msg)
	}
	return fmt.Errorf("storage: shipnet: remote error: %s", msg)
}

// ------------------------------------------------------------- server

// ShipServer serves one TailSource to remote followers. Serve runs an
// accept loop over a listener; ServeConn serves a single transport
// (net.Pipe in tests). Every connection gets catch-up + live-tail
// replay, lease registration (released on disconnect, so a vanished
// client can never hold back truncation forever), rebase propagation,
// and a frameClosed push when the leader's WAL closes.
type ShipServer struct {
	src TailSource

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewShipServer wraps a WAL backend for remote shipping. It fails if
// the backend lacks the tail capability set (the built-in WAL has it).
func NewShipServer(w WALBackend) (*ShipServer, error) {
	src, ok := w.(TailSource)
	if !ok {
		return nil, fmt.Errorf("storage: %T cannot be served remotely (needs Seq/AppendWatch/Retain; the built-in WAL backend has them)", w)
	}
	return &ShipServer{
		src:   src,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts and serves connections until the listener fails or the
// server is closed. It returns nil on Close, the accept error otherwise.
func (s *ShipServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("storage: shipnet: server is closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn serves one transport until it fails or the server closes;
// it blocks, owns conn, and releases every lease the connection
// registered on the way out.
func (s *ShipServer) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	h := &shipConn{src: s.src, conn: conn, leases: make(map[uint64]Lease)}
	h.serve()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops the accept loops, severs every connection (releasing
// their leases) and waits for Serve-spawned handlers to drain.
func (s *ShipServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// shipConn is one served connection: a handler goroutine processes
// requests sequentially; a notifier goroutine pushes durability
// broadcasts. Writes from both are serialized by wm.
type shipConn struct {
	src    TailSource
	conn   net.Conn
	br     *bufio.Reader
	wm     sync.Mutex
	leases map[uint64]Lease // handler-goroutine only
	cur    TailPos          // per-conn byte cursor (posReplayer sources)
	done   chan struct{}
}

func (h *shipConn) write(kind uint64, payload []byte) error {
	h.wm.Lock()
	defer h.wm.Unlock()
	_, err := h.conn.Write(frameRecord(kind, payload))
	return err
}

func (h *shipConn) writeErr(code uint64, msg string) error {
	p := make([]byte, 0, len(msg)+binary.MaxVarintLen64)
	p = binary.AppendUvarint(p, code)
	p = append(p, msg...)
	return h.write(frameErr, p)
}

// writeCallErr reports a server-side call failure to the client, mapped
// to the sentinel codes. The connection stays up — the error belongs to
// the request, not the transport.
func (h *shipConn) writeCallErr(err error) error {
	code := ecOther
	switch {
	case errors.Is(err, ErrNoVersion):
		code = ecNoVersion
	case errors.Is(err, ErrCorruptWAL):
		code = ecCorrupt
	case errors.Is(err, ErrSourceClosed):
		code = ecClosed
	}
	return h.writeErr(code, err.Error())
}

func (h *shipConn) serve() {
	defer h.conn.Close()
	defer func() {
		for _, l := range h.leases {
			l.Release()
		}
	}()
	h.br = bufio.NewReader(h.conn)
	h.done = make(chan struct{})
	defer close(h.done)

	// Handshake before anything is served.
	kind, payload, err := readWireFrame(h.br)
	if err != nil || kind != frameHello {
		return
	}
	wr := wireReader{payload}
	proto, err := wr.uvarint()
	if err != nil || proto != wireProto {
		h.writeErr(ecOther, fmt.Sprintf("unsupported protocol %d (want %d)", proto, wireProto))
		return
	}
	var hello []byte
	hello = binary.AppendUvarint(hello, wireProto)
	hello = binary.AppendUvarint(hello, h.src.Seq())
	hello = binary.AppendUvarint(hello, h.src.Rebases())
	if h.write(frameHelloOK, hello) != nil {
		return
	}

	go h.notify()

	for {
		kind, payload, err := readWireFrame(h.br)
		if err != nil {
			return
		}
		if h.handle(kind, payload) != nil {
			return
		}
	}
}

// notify pushes (seq, rebases) whenever the source's durability
// broadcast fires, and frameClosed once the source is closed for good.
func (h *shipConn) notify() {
	var lastSeq, lastReb uint64
	sent := false
	for {
		// The watch is grabbed BEFORE reading the state it covers —
		// the standard lost-wakeup ordering.
		ch := h.src.AppendWatch()
		if ch == nil {
			h.write(frameClosed, nil)
			return
		}
		seq, reb := h.src.Seq(), h.src.Rebases()
		if !sent || seq != lastSeq || reb != lastReb {
			var p []byte
			p = binary.AppendUvarint(p, seq)
			p = binary.AppendUvarint(p, reb)
			if h.write(frameNotify, p) != nil {
				return
			}
			lastSeq, lastReb, sent = seq, reb, true
		}
		select {
		case <-ch:
		case <-h.done:
			return
		}
	}
}

// handle processes one request frame. A returned error drops the
// connection (protocol violation or dead transport); request-level
// failures are reported in-band via frameErr.
func (h *shipConn) handle(kind uint64, payload []byte) error {
	wr := wireReader{payload}
	switch kind {
	case frameLatest:
		v, snap, err := h.src.Latest()
		if err != nil {
			return h.writeCallErr(err)
		}
		p := make([]byte, 0, len(snap)+binary.MaxVarintLen64)
		p = binary.AppendUvarint(p, v)
		p = append(p, snap...)
		return h.write(frameLatestOK, p)
	case frameReplay:
		since, err := wr.uvarint()
		if err != nil {
			return err
		}
		max64, err := wr.uvarint()
		if err != nil {
			return err
		}
		return h.replay(since, int(max64))
	case frameRetain:
		id, err := wr.uvarint()
		if err != nil {
			return err
		}
		seq, err := wr.uvarint()
		if err != nil {
			return err
		}
		if old, ok := h.leases[id]; ok {
			old.Release()
		}
		h.leases[id] = h.src.Retain(seq)
		return nil
	case frameAdvance:
		id, err := wr.uvarint()
		if err != nil {
			return err
		}
		seq, err := wr.uvarint()
		if err != nil {
			return err
		}
		if l, ok := h.leases[id]; ok {
			l.Advance(seq)
		}
		return nil
	case frameRelease:
		id, err := wr.uvarint()
		if err != nil {
			return err
		}
		if l, ok := h.leases[id]; ok {
			l.Release()
			delete(h.leases, id)
		}
		return nil
	case frameMarkRebase:
		h.src.MarkRebased()
		return nil
	default:
		return fmt.Errorf("storage: shipnet: unexpected frame kind %d", kind)
	}
}

// replay serves one page: up to max records after since, then a
// frameReplayEnd carrying the POST-scan rebase count and source seq.
// The page is collected before any frame is written, so no WAL
// internals are held while blocked on a slow client.
func (h *shipConn) replay(since uint64, max int) error {
	if max <= 0 || max > wirePageMax {
		max = wirePageMax
	}
	var page []shipRec
	collect := func(seq uint64, payload []byte) error {
		if len(page) >= max {
			return errPageFull
		}
		page = append(page, shipRec{seq: seq, payload: append([]byte(nil), payload...)})
		return nil
	}
	var err error
	if pr, ok := h.src.(posReplayer); ok {
		// Byte-accurate resume when the client continues where the last
		// page ended (ReplayFromPos never re-covers a delivered record,
		// so cur.Seq is exactly the last shipped seq).
		if h.cur.Seq != since {
			h.cur = TailPos{Seq: since}
		}
		h.cur, err = pr.ReplayFromPos(h.cur, collect)
	} else {
		err = h.src.ReplaySince(since, collect)
	}
	if err != nil && !errors.Is(err, errPageFull) {
		return h.writeCallErr(err)
	}
	// Rebases strictly AFTER the scan: a post-repair record in the page
	// implies the counter moved before its append, so the client cache
	// sees the move before its own post-sweep check runs.
	reb := h.src.Rebases()
	srcSeq := h.src.Seq()
	for _, rec := range page {
		p := make([]byte, 0, len(rec.payload)+binary.MaxVarintLen64)
		p = binary.AppendUvarint(p, rec.seq)
		p = append(p, rec.payload...)
		if werr := h.write(frameRec, p); werr != nil {
			return werr
		}
	}
	var end []byte
	end = binary.AppendUvarint(end, reb)
	end = binary.AppendUvarint(end, srcSeq)
	return h.write(frameReplayEnd, end)
}

// ------------------------------------------------------------- client

// DialFunc opens one transport to the leader (net.Dial, net.Pipe…).
type DialFunc func() (net.Conn, error)

// RemoteOptions tunes the client's reconnect behavior.
type RemoteOptions struct {
	// DialBackoff is the delay before the first redial; it doubles per
	// attempt up to MaxBackoff. Default 25ms.
	DialBackoff time.Duration
	// MaxBackoff caps the redial delay. Default 1s.
	MaxBackoff time.Duration
	// DialAttempts bounds dials per exchange before the exchange fails
	// (which is terminal for an attached follower). Default 5.
	DialAttempts int
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.DialBackoff <= 0 {
		o.DialBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.DialAttempts <= 0 {
		o.DialAttempts = 5
	}
	return o
}

// RemoteTailSource is a TailSource over a ShipServer connection:
// ltree.OpenFollower attaches to it exactly as to an in-process WAL.
// Reads (Latest, ReplaySince) are request/response exchanges with
// redial+resume; Seq/Rebases serve a notify-maintained cache;
// AppendWatch is the local edge of the server's durability broadcast.
// The write half of the WALBackend surface returns ErrRemoteReadOnly.
type RemoteTailSource struct {
	dial DialFunc
	opt  RemoteOptions

	reqMu sync.Mutex // serializes exchanges; acquired before mu
	wm    sync.Mutex // serializes raw conn writes

	mu        sync.Mutex
	conn      net.Conn
	resp      chan wireFrame
	seq       uint64
	rebases   uint64
	watch     chan struct{}
	srcClosed bool // server pushed frameClosed: leader WAL is gone
	closed    bool // Close ran
	leases    map[uint64]*remoteLease
	nextLease uint64
	carry     []shipRec // page remainder after a windowed fn stopped early

	done chan struct{} // closed by Close; aborts backoff sleeps
}

// OpenRemoteTail dials the leader and performs the hello handshake; the
// returned source is ready for OpenFollower. The dial function is kept
// for reconnection.
func OpenRemoteTail(dial DialFunc, opt RemoteOptions) (*RemoteTailSource, error) {
	r := &RemoteTailSource{
		dial:      dial,
		opt:       opt.withDefaults(),
		leases:    make(map[uint64]*remoteLease),
		nextLease: 1,
		done:      make(chan struct{}),
	}
	r.reqMu.Lock()
	err := r.ensureConn()
	r.reqMu.Unlock()
	if err != nil {
		return nil, err
	}
	return r, nil
}

// notifyLocked wakes every AppendWatch waiter. Caller holds r.mu.
func (r *RemoteTailSource) notifyLocked() {
	if r.watch != nil {
		close(r.watch)
		r.watch = nil
	}
}

// writeFrame writes one frame to conn under the write mutex.
func (r *RemoteTailSource) writeFrame(conn net.Conn, kind uint64, payload []byte) error {
	r.wm.Lock()
	defer r.wm.Unlock()
	_, err := conn.Write(frameRecord(kind, payload))
	return err
}

// send is writeFrame for fire-and-forget traffic: a failure is ignored
// (the dead connection surfaces on the next exchange, which re-registers
// leases on reconnect).
func (r *RemoteTailSource) send(conn net.Conn, kind uint64, payload []byte) {
	_ = r.writeFrame(conn, kind, payload)
}

// dropConn retires a failed connection and wakes parked tailers so
// their next sweep redials.
func (r *RemoteTailSource) dropConn(conn net.Conn) {
	conn.Close()
	r.mu.Lock()
	if r.conn == conn {
		r.conn = nil
		r.notifyLocked()
	}
	r.mu.Unlock()
}

// clientHello runs the handshake on a fresh transport and returns the
// server's (seq, rebases) at accept time.
func clientHello(conn net.Conn, br *bufio.Reader) (seq, rebases uint64, err error) {
	var p []byte
	p = binary.AppendUvarint(p, wireProto)
	if _, err = conn.Write(frameRecord(frameHello, p)); err != nil {
		return 0, 0, err
	}
	kind, payload, err := readWireFrame(br)
	if err != nil {
		return 0, 0, err
	}
	if kind == frameErr {
		return 0, 0, decodeErrFrame(payload)
	}
	if kind != frameHelloOK {
		return 0, 0, fmt.Errorf("storage: shipnet: handshake got frame %d", kind)
	}
	wr := wireReader{payload}
	proto, err := wr.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if proto != wireProto {
		return 0, 0, fmt.Errorf("storage: shipnet: server speaks protocol %d (want %d)", proto, wireProto)
	}
	if seq, err = wr.uvarint(); err != nil {
		return 0, 0, err
	}
	if rebases, err = wr.uvarint(); err != nil {
		return 0, 0, err
	}
	return seq, rebases, nil
}

// ensureConn (re)establishes the connection with backoff, bounded by
// DialAttempts. On success the reader goroutine is running and every
// live lease has been re-registered at its current floor. Caller holds
// reqMu.
func (r *RemoteTailSource) ensureConn() error {
	r.mu.Lock()
	if r.closed || r.srcClosed {
		r.mu.Unlock()
		return ErrSourceClosed
	}
	if r.conn != nil {
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()

	backoff := r.opt.DialBackoff
	var lastErr error
	for attempt := 0; attempt < r.opt.DialAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-r.done:
				return ErrSourceClosed
			}
			backoff *= 2
			if backoff > r.opt.MaxBackoff {
				backoff = r.opt.MaxBackoff
			}
		}
		conn, err := r.dial()
		if err != nil {
			lastErr = err
			continue
		}
		br := bufio.NewReader(conn)
		seq, reb, err := clientHello(conn, br)
		if err != nil {
			conn.Close()
			if errors.Is(err, ErrSourceClosed) {
				return err
			}
			lastErr = err
			continue
		}
		resp := make(chan wireFrame, 8)
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return ErrSourceClosed
		}
		r.conn = conn
		r.resp = resp
		if seq > r.seq {
			r.seq = seq
		}
		if reb > r.rebases {
			r.rebases = reb
		}
		type reg struct {
			l         *remoteLease
			id, floor uint64
		}
		var regs []reg
		for id, l := range r.leases {
			regs = append(regs, reg{l, id, l.flr.Load()})
		}
		r.notifyLocked()
		r.mu.Unlock()
		go r.read(conn, br, resp)
		// Re-register live leases before the caller's request goes out
		// (per-conn write order makes the server process them first). A
		// lease released while we were snapshotting would leak server-
		// side until disconnect; the recheck keeps it tight.
		for _, g := range regs {
			var p []byte
			p = binary.AppendUvarint(p, g.id)
			p = binary.AppendUvarint(p, g.floor)
			r.send(conn, frameRetain, p)
			if g.l.rel.Load() {
				var q []byte
				q = binary.AppendUvarint(q, g.id)
				r.send(conn, frameRelease, q)
			}
		}
		return nil
	}
	return fmt.Errorf("storage: remote tail: leader unreachable after %d attempts: %w (%w)", r.opt.DialAttempts, lastErr, errTransport)
}

// read is the per-connection reader: it routes pushes (notify/closed)
// into the cache and everything else to the exchange in flight. A
// dedicated reader is mandatory — net.Pipe is fully synchronous, so
// server pushes would deadlock a client that only reads inside
// exchanges.
func (r *RemoteTailSource) read(conn net.Conn, br *bufio.Reader, resp chan wireFrame) {
	for {
		kind, payload, err := readWireFrame(br)
		if err != nil {
			r.dropConn(conn)
			close(resp)
			return
		}
		switch kind {
		case frameNotify:
			wr := wireReader{payload}
			seq, e1 := wr.uvarint()
			reb, e2 := wr.uvarint()
			if e1 != nil || e2 != nil {
				r.dropConn(conn)
				close(resp)
				return
			}
			r.mu.Lock()
			if r.conn == conn {
				if seq > r.seq {
					r.seq = seq
				}
				if reb > r.rebases {
					r.rebases = reb
				}
				r.notifyLocked()
			}
			r.mu.Unlock()
		case frameClosed:
			r.mu.Lock()
			r.srcClosed = true
			if r.conn == conn {
				r.conn = nil
			}
			r.notifyLocked()
			r.mu.Unlock()
			conn.Close()
			close(resp)
			return
		default:
			select {
			case resp <- wireFrame{kind, payload}:
			case <-r.done:
				r.dropConn(conn)
				close(resp)
				return
			}
		}
	}
}

// ----------------------------------------------- TailSource: reads

// Seq returns the cached last-appended sequence number (maintained by
// hello, notify and replay-end frames; monotone, possibly lagging).
func (r *RemoteTailSource) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Rebases returns the cached re-base count. The cache lags at worst —
// it is updated from the post-scan count every replay — so a moved
// counter is never missed for records already delivered.
func (r *RemoteTailSource) Rebases() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rebases
}

// AppendWatch implements TailSource: nil once the source is closed
// (locally or leader-side); an already-closed channel while
// disconnected, so a parked tailer re-sweeps — and thereby redials —
// instead of waiting on a broadcast that can never arrive.
func (r *RemoteTailSource) AppendWatch() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.srcClosed {
		return nil
	}
	if r.conn == nil {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	if r.watch == nil {
		r.watch = make(chan struct{})
	}
	return r.watch
}

// MarkRebased bumps the cached counter immediately (attached tailers
// must observe the move) and forwards to the leader.
func (r *RemoteTailSource) MarkRebased() {
	r.mu.Lock()
	r.rebases++
	conn := r.conn
	r.mu.Unlock()
	if conn != nil {
		r.send(conn, frameMarkRebase, nil)
	}
}

// Retain implements TailSource: the lease is tracked locally (for
// re-registration on reconnect) and registered server-side.
func (r *RemoteTailSource) Retain(seq uint64) Lease {
	r.mu.Lock()
	id := r.nextLease
	r.nextLease++
	l := &remoteLease{r: r, id: id}
	l.flr.Store(seq)
	r.leases[id] = l
	conn := r.conn
	r.mu.Unlock()
	if conn != nil {
		var p []byte
		p = binary.AppendUvarint(p, id)
		p = binary.AppendUvarint(p, seq)
		r.send(conn, frameRetain, p)
	}
	return l
}

// remoteLease mirrors a server-side lease: the floor is tracked locally
// so a reconnect can re-register at the exact point reached.
type remoteLease struct {
	r   *RemoteTailSource
	id  uint64
	flr atomic.Uint64
	rel atomic.Bool
}

// Advance implements Lease.
func (l *remoteLease) Advance(seq uint64) {
	for {
		cur := l.flr.Load()
		if seq <= cur {
			return
		}
		if l.flr.CompareAndSwap(cur, seq) {
			break
		}
	}
	if l.rel.Load() {
		return
	}
	l.r.mu.Lock()
	conn := l.r.conn
	l.r.mu.Unlock()
	if conn != nil {
		var p []byte
		p = binary.AppendUvarint(p, l.id)
		p = binary.AppendUvarint(p, seq)
		l.r.send(conn, frameAdvance, p)
	}
}

// Release implements Lease. Idempotent.
func (l *remoteLease) Release() {
	if l.rel.Swap(true) {
		return
	}
	l.r.mu.Lock()
	delete(l.r.leases, l.id)
	conn := l.r.conn
	l.r.mu.Unlock()
	if conn != nil {
		var p []byte
		p = binary.AppendUvarint(p, l.id)
		l.r.send(conn, frameRelease, p)
	}
}

// Latest implements Backend: a request/response exchange with redial.
func (r *RemoteTailSource) Latest() (uint64, []byte, error) {
	r.reqMu.Lock()
	defer r.reqMu.Unlock()
	var lastErr error = fmt.Errorf("storage: shipnet: no attempt ran (%w)", errTransport)
	for tries := 0; tries < r.opt.DialAttempts; tries++ {
		if err := r.ensureConn(); err != nil {
			return 0, nil, err
		}
		r.mu.Lock()
		conn, resp := r.conn, r.resp
		r.mu.Unlock()
		if conn == nil {
			continue
		}
		if err := r.writeFrame(conn, frameLatest, nil); err != nil {
			lastErr = err
			r.dropConn(conn)
			continue
		}
		f, open := <-resp
		if !open {
			lastErr = errors.New("storage: shipnet: connection lost awaiting latest")
			continue
		}
		switch f.kind {
		case frameLatestOK:
			wr := wireReader{f.payload}
			v, err := wr.uvarint()
			if err != nil {
				lastErr = err
				r.dropConn(conn)
				continue
			}
			return v, wr.rest(), nil
		case frameErr:
			return 0, nil, decodeErrFrame(f.payload)
		default:
			lastErr = fmt.Errorf("storage: shipnet: unexpected frame %d", f.kind)
			r.dropConn(conn)
		}
	}
	return 0, nil, fmt.Errorf("storage: remote tail: latest failed: %w (%w)", lastErr, errTransport)
}

// ReplaySince implements WALBackend over paged fetches: each page is
// collected whole (so the reader never stalls mid-exchange), the cache
// is updated from the page's post-scan counters, and only then are
// records delivered — a windowed consumer that stops early leaves the
// remainder in the carry, served first on the next contiguous call.
// Reconnection is per page: a lost connection repeats the page from the
// last delivered record.
func (r *RemoteTailSource) ReplaySince(since uint64, fn func(seq uint64, payload []byte) error) error {
	r.reqMu.Lock()
	defer r.reqMu.Unlock()

	r.mu.Lock()
	carry := r.carry
	r.carry = nil
	r.mu.Unlock()
	if len(carry) > 0 && carry[0].seq == since+1 {
		for i, rec := range carry {
			if err := fn(rec.seq, rec.payload); err != nil {
				r.mu.Lock()
				r.carry = carry[i:]
				r.mu.Unlock()
				return err
			}
			since = rec.seq
		}
	}

	for {
		page, reb, srcSeq, err := r.fetchPage(since, wirePage)
		if err != nil {
			return err
		}
		// Cache update BEFORE delivery: a consumer checking Rebases()
		// right after its window fills must see the count that covers
		// every record it buffered.
		r.mu.Lock()
		if reb > r.rebases {
			r.rebases = reb
		}
		if srcSeq > r.seq {
			r.seq = srcSeq
		}
		r.mu.Unlock()
		for i, rec := range page {
			if err := fn(rec.seq, rec.payload); err != nil {
				r.mu.Lock()
				r.carry = page[i:]
				r.mu.Unlock()
				return err
			}
			since = rec.seq
		}
		if len(page) < wirePage {
			return nil // short page: the durable end at scan time
		}
	}
}

// fetchPage runs one frameReplay exchange with transport-level retry.
func (r *RemoteTailSource) fetchPage(since uint64, max int) ([]shipRec, uint64, uint64, error) {
	var lastErr error = fmt.Errorf("storage: shipnet: no attempt ran (%w)", errTransport)
	for tries := 0; tries < r.opt.DialAttempts; tries++ {
		if err := r.ensureConn(); err != nil {
			return nil, 0, 0, err
		}
		page, reb, srcSeq, err := r.tryPage(since, max)
		if err == nil {
			return page, reb, srcSeq, nil
		}
		if !errors.Is(err, errTransport) {
			return nil, 0, 0, err
		}
		lastErr = err
	}
	return nil, 0, 0, fmt.Errorf("storage: remote tail: replay failed: %w", lastErr)
}

// tryPage issues one frameReplay and collects the response stream.
// Transport failures are wrapped with errTransport (retryable);
// anything else is the request's real outcome.
func (r *RemoteTailSource) tryPage(since uint64, max int) ([]shipRec, uint64, uint64, error) {
	r.mu.Lock()
	conn, resp := r.conn, r.resp
	r.mu.Unlock()
	if conn == nil {
		return nil, 0, 0, fmt.Errorf("storage: shipnet: not connected (%w)", errTransport)
	}
	var req []byte
	req = binary.AppendUvarint(req, since)
	req = binary.AppendUvarint(req, uint64(max))
	if err := r.writeFrame(conn, frameReplay, req); err != nil {
		r.dropConn(conn)
		return nil, 0, 0, fmt.Errorf("storage: shipnet: %v (%w)", err, errTransport)
	}
	var page []shipRec
	for {
		f, open := <-resp
		if !open {
			// Lost mid-page: discard the partial page, repeat from the
			// same resume point on a fresh connection.
			return nil, 0, 0, fmt.Errorf("storage: shipnet: connection lost mid-page (%w)", errTransport)
		}
		switch f.kind {
		case frameRec:
			wr := wireReader{f.payload}
			seq, err := wr.uvarint()
			if err != nil {
				r.dropConn(conn)
				return nil, 0, 0, fmt.Errorf("storage: shipnet: %v (%w)", err, errTransport)
			}
			page = append(page, shipRec{seq: seq, payload: wr.rest()})
		case frameReplayEnd:
			wr := wireReader{f.payload}
			reb, e1 := wr.uvarint()
			srcSeq, e2 := wr.uvarint()
			if e1 != nil || e2 != nil {
				r.dropConn(conn)
				return nil, 0, 0, fmt.Errorf("storage: shipnet: malformed replay end (%w)", errTransport)
			}
			return page, reb, srcSeq, nil
		case frameErr:
			return nil, 0, 0, decodeErrFrame(f.payload)
		default:
			r.dropConn(conn)
			return nil, 0, 0, fmt.Errorf("storage: shipnet: unexpected frame %d (%w)", f.kind, errTransport)
		}
	}
}

// ----------------------------------------- WALBackend: write half

// AppendBatch implements WALBackend; remote sources are read-only.
func (r *RemoteTailSource) AppendBatch([]byte) (uint64, error) { return 0, ErrRemoteReadOnly }

// Checkpoint implements WALBackend; remote sources are read-only.
func (r *RemoteTailSource) Checkpoint([]byte) (uint64, error) { return 0, ErrRemoteReadOnly }

// Put implements Backend; remote sources are read-only.
func (r *RemoteTailSource) Put([]byte) (uint64, error) { return 0, ErrRemoteReadOnly }

// Prune implements Backend; remote sources are read-only.
func (r *RemoteTailSource) Prune(uint64) error { return ErrRemoteReadOnly }

// Sync implements WALBackend: a no-op — this handle never appends.
func (r *RemoteTailSource) Sync() error { return nil }

// Get implements Backend. Only the newest checkpoint crosses the wire
// (that is all a follower bootstrap needs); historical versions stay on
// the leader.
func (r *RemoteTailSource) Get(uint64) ([]byte, error) {
	return nil, fmt.Errorf("%w: remote tail source serves only Latest", ErrNoVersion)
}

// Versions implements Backend; see Get.
func (r *RemoteTailSource) Versions() ([]uint64, error) {
	return nil, errors.New("storage: remote tail source does not enumerate versions")
}

// Close implements WALBackend: tears the client down. Attached tailers
// stop with ErrSourceClosed; the server releases this connection's
// leases on disconnect.
func (r *RemoteTailSource) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conn := r.conn
	r.conn = nil
	r.notifyLocked()
	r.mu.Unlock()
	close(r.done)
	if conn != nil {
		conn.Close()
	}
	return nil
}
