package storage

import (
	"errors"
	"fmt"
	"sync"
)

// This file is the log-shipping seam: a Shipper hands out Tailers over a
// write-ahead log, and a Tailer streams every durable batch — catch-up
// via ReplaySince from wherever the consumer left off, then live tail on
// append notification — to feed a read replica (ltree.Follower). The
// L-Tree's deterministic relabeling is what makes this cheap: a follower
// needs no physical page shipping, just the logical op stream the WAL
// already persists, because replaying it from the same checkpoint
// reproduces labels bit-for-bit (the recovery-equals-oracle property the
// crash torture pins).
//
// Retention: every Tailer holds a Lease on its source, registered before
// the first record is read and advanced as records are delivered, so the
// leader's Checkpoint truncation cannot drop a segment the tailer still
// needs — a slow follower survives a checkpoint mid-catch-up. Segments
// kept back by a lease are reclaimed by the next checkpoint after the
// lease advances past them (or is released).

// Lease is a segment-retention guard handed out by a TailSource: while
// held, log records above the floor stay replayable. Advance moves the
// floor forward as records are consumed; Release drops the guard.
type Lease interface {
	// Advance raises the floor to seq (never retreats): records at or
	// below seq are no longer needed by this holder.
	Advance(seq uint64)
	// Release drops the lease. Idempotent.
	Release()
}

// TailSource is the capability set log shipping needs from a WAL backend:
// the WALBackend surface plus durability notification, segment retention
// and re-base detection. The built-in *WAL implements it; a WALBackend
// without these capabilities cannot be tailed live.
type TailSource interface {
	WALBackend
	// Seq returns the sequence number of the last appended batch.
	Seq() uint64
	// AppendWatch returns a channel closed the next time appended
	// records become durable; wait on it instead of polling. It returns
	// nil once the source is closed — nothing will ever fire again.
	AppendWatch() <-chan struct{}
	// Retain registers a retention lease at seq; see Lease.
	Retain(seq uint64) Lease
	// Rebases counts log re-bases: checkpoints covering state the log
	// lost. A tailer that observes the counter move must stop — the op
	// stream no longer reconstructs the source's state.
	Rebases() uint64
	// MarkRebased bumps the re-base counter; the leader's repair path
	// (a checkpoint that covers a lost batch) must call it so attached
	// tailers stop instead of silently diverging. Required here — not
	// just on the leader side — so a backend followers can attach to is
	// guaranteed to be markable: a tailable source whose repairs went
	// unannounced would defeat the whole rebase guard.
	MarkRebased()
}

// posReplayer is the optional fast-sweep capability: a resumable replay
// cursor, so a live tailer reads O(new records) per sweep instead of
// re-decoding the current segment from its start every wakeup. The
// built-in WAL implements it; a TailSource without it falls back to
// plain ReplaySince sweeps.
type posReplayer interface {
	ReplayFromPos(pos TailPos, fn func(seq uint64, payload []byte) error) (TailPos, error)
}

// Errors reported by the shipping layer.
var (
	// ErrTailerClosed reports a receive on a closed Tailer.
	ErrTailerClosed = errors.New("storage: tailer is closed")
	// ErrSourceClosed reports that the tailed WAL was closed: every
	// durable record has been delivered and no more can arrive.
	ErrSourceClosed = errors.New("storage: ship source is closed")
	// ErrShipRebased reports that the leader re-based its log (a repair
	// checkpoint covered batches the log lost): the shipped op stream no
	// longer reconstructs the leader, so the consumer must re-seed from
	// the newest checkpoint instead of continuing.
	ErrShipRebased = errors.New("storage: ship source re-based its log past a lost batch; re-seed from the newest checkpoint")
)

// errFillFull is the internal sentinel fill uses to bound one ReplaySince
// sweep (so catch-up over a long log buffers a window, not the whole
// tail).
var errFillFull = errors.New("storage: fill window full")

// Shipper hands out Tailers over one log source. It holds no state of
// its own — the per-consumer state (position, buffer, lease) lives in
// the Tailer — so one Shipper serves any number of followers.
type Shipper struct {
	src TailSource
}

// NewShipper wraps a WAL backend for log shipping. It fails if the
// backend lacks the tail capabilities (the built-in WAL has them).
func NewShipper(w WALBackend) (*Shipper, error) {
	src, ok := w.(TailSource)
	if !ok {
		return nil, fmt.Errorf("storage: %T cannot be tailed (needs Seq/AppendWatch/Retain; the built-in WAL backend has them)", w)
	}
	return &Shipper{src: src}, nil
}

// Tail attaches a Tailer that streams every durable batch with sequence
// number > since. The retention lease is registered before returning, so
// records above since present at the call are guaranteed reachable; if
// the log has already been truncated past since, the first Next reports
// the gap as ErrCorruptWAL.
func (s *Shipper) Tail(since uint64) *Tailer {
	return newTailer(s.src, since)
}

// TailLatest atomically pairs the newest checkpoint snapshot with a
// Tailer attached right after it — the bootstrap a fresh follower needs:
// restore the snapshot, then stream the tail. A temporary whole-log
// lease bridges the window between reading the checkpoint and
// registering the tailer's own lease, so a concurrent leader checkpoint
// cannot truncate the gap away. ErrNoVersion means the source has no
// checkpoint yet (attach the WAL to a store first; WithWAL writes the
// baseline).
func (s *Shipper) TailLatest() (seq uint64, snapshot []byte, t *Tailer, err error) {
	guard := s.src.Retain(0)
	defer guard.Release()
	// The re-base baseline is read before the checkpoint: a repair that
	// lands in between makes the fresh tailer stop (conservatively) on
	// its first sweep rather than follow a stream recorded against state
	// newer than the snapshot it bootstrapped from.
	rebase := s.src.Rebases()
	seq, snapshot, err = s.src.Latest()
	if err != nil {
		return 0, nil, nil, err
	}
	t = newTailer(s.src, seq)
	t.rebase = rebase
	return seq, snapshot, t, nil
}

// shipRec is one buffered (seq, payload) pair.
type shipRec struct {
	seq     uint64
	payload []byte
}

// Tailer streams durable WAL batches in sequence order: buffered
// catch-up sweeps while behind, blocking on append notification once
// caught up. It is single-consumer — one goroutine calls Next/TryNext —
// but Close may be called from any goroutine to unblock it.
type Tailer struct {
	src       TailSource
	next      uint64  // last delivered (or skipped) sequence number
	pos       TailPos // byte-accurate sweep cursor (posReplayer sources)
	rebase    uint64  // source re-base count at attach
	buf       []shipRec
	lease     Lease
	closed    chan struct{}
	closeOnce sync.Once
}

// newTailer registers the retention lease at since and returns the
// handle positioned to deliver since+1 first.
func newTailer(src TailSource, since uint64) *Tailer {
	return &Tailer{
		src:    src,
		next:   since,
		pos:    TailPos{Seq: since},
		rebase: src.Rebases(),
		lease:  src.Retain(since),
		closed: make(chan struct{}),
	}
}

// Seq returns the sequence number of the last delivered batch.
func (t *Tailer) Seq() uint64 { return t.next }

// RebaseBaseline returns the source re-base count captured when this
// tailer attached. A caller draining the source directly (outside the
// tailer, as leader handoff does) must compare src.Rebases() against
// this baseline *after* its drain — the same post-sweep ordering fill
// relies on — to reject a stream a repair checkpoint re-based mid-drain.
func (t *Tailer) RebaseBaseline() uint64 { return t.rebase }

// Close releases the tailer's retention lease and unblocks a concurrent
// Next with ErrTailerClosed. Idempotent.
func (t *Tailer) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.lease.Release()
	})
	return nil
}

// Next returns the next durable batch, blocking until one is appended or
// the tailer is closed (ErrTailerClosed). The payload is owned by the
// caller. Replay errors — a gap where the log was truncated past this
// tailer's position before it attached, a source re-base
// (ErrShipRebased), the source closing (ErrSourceClosed) — surface
// as-is and are terminal.
func (t *Tailer) Next() (uint64, []byte, error) {
	for {
		seq, payload, ok, err := t.TryNext()
		if err != nil || ok {
			return seq, payload, err
		}
		ch := t.src.AppendWatch()
		if ch == nil {
			// Closed source: the sweep above already delivered every
			// durable record, and no append can ever fire again.
			return 0, nil, ErrSourceClosed
		}
		if t.src.Seq() > t.next {
			continue // appended between the sweep and the watch
		}
		select {
		case <-ch:
		case <-t.closed:
			return 0, nil, ErrTailerClosed
		}
	}
}

// TryNext is the non-blocking Next: ok=false means no durable batch is
// available right now.
func (t *Tailer) TryNext() (uint64, []byte, bool, error) {
	select {
	case <-t.closed:
		return 0, nil, false, ErrTailerClosed
	default:
	}
	if len(t.buf) == 0 {
		if err := t.fill(); err != nil {
			return 0, nil, false, err
		}
	}
	if len(t.buf) == 0 {
		return 0, nil, false, nil
	}
	rec := t.buf[0]
	t.buf = t.buf[1:]
	t.next = rec.seq
	// Records at or below rec.seq are delivered (and anything still in
	// buf is already copied out of the segment files), so the leader may
	// truncate up to here.
	t.lease.Advance(rec.seq)
	return rec.seq, rec.payload, true, nil
}

// fillWindow bounds one sweep's buffered records (per-sweep memory, not
// correctness: the byte cursor resumes exactly where the window closed).
const fillWindow = 256

// fill sweeps up to fillWindow durable records after t.next into the
// buffer. Payloads are copied — the buffer owns them. On a posReplayer
// source the sweep resumes at the byte cursor (O(new records)); plain
// TailSources re-scan from t.next. A moved re-base counter stops the
// tailer before it ships a stream that no longer reconstructs the
// leader.
func (t *Tailer) fill() error {
	collect := func(seq uint64, payload []byte) error {
		if len(t.buf) >= fillWindow {
			return errFillFull
		}
		t.buf = append(t.buf, shipRec{seq: seq, payload: append([]byte(nil), payload...)})
		return nil
	}
	var err error
	if pr, ok := t.src.(posReplayer); ok {
		// fill runs only with an empty buffer, so every record the last
		// sweep buffered has been delivered and t.pos.Seq == t.next.
		t.pos, err = pr.ReplayFromPos(t.pos, collect)
	} else {
		err = t.src.ReplaySince(t.next, collect)
	}
	if err != nil && !errors.Is(err, errFillFull) {
		return err
	}
	// The re-base check runs AFTER the sweep: a repair checkpoint plus a
	// post-repair append landing between a pre-sweep check and the scan
	// could slip a post-rebase record into the buffer undetected. The
	// leader marks the re-base strictly before any post-repair append,
	// so a sweep that could have picked one up always sees the moved
	// counter here — the possibly-tainted buffer is discarded.
	if t.src.Rebases() != t.rebase {
		t.buf = nil
		return ErrShipRebased
	}
	return nil
}
