package storage

import (
	"errors"
	"testing"
)

func backends(t *testing.T) map[string]Backend {
	file, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"memory": NewMemory(), "file": file}
}

func TestBackendVersioning(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, _, err := b.Latest(); !errors.Is(err, ErrNoVersion) {
				t.Fatalf("empty Latest = %v", err)
			}
			v1, err := b.Put([]byte("one"))
			if err != nil {
				t.Fatal(err)
			}
			v2, err := b.Put([]byte("two"))
			if err != nil {
				t.Fatal(err)
			}
			if v2 <= v1 {
				t.Fatalf("versions not increasing: %d then %d", v1, v2)
			}
			if got, _ := b.Get(v1); string(got) != "one" {
				t.Fatalf("Get(v1) = %q", got)
			}
			latest, data, err := b.Latest()
			if err != nil || latest != v2 || string(data) != "two" {
				t.Fatalf("Latest = %d %q %v", latest, data, err)
			}
			vs, err := b.Versions()
			if err != nil || len(vs) != 2 || vs[0] != v1 || vs[1] != v2 {
				t.Fatalf("Versions = %v %v", vs, err)
			}
			if err := b.Prune(v2); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get(v1); !errors.Is(err, ErrNoVersion) {
				t.Fatalf("pruned Get = %v", err)
			}
			if got, _ := b.Get(v2); string(got) != "two" {
				t.Fatal("prune removed the kept version")
			}
			// The newest version survives even an over-eager prune, so
			// version numbers keep growing instead of being reissued.
			if err := b.Prune(v2 + 10); err != nil {
				t.Fatal(err)
			}
			if got, _ := b.Get(v2); string(got) != "two" {
				t.Fatal("prune deleted the newest version")
			}
			v3, err := b.Put([]byte("three"))
			if err != nil {
				t.Fatal(err)
			}
			if v3 <= v2 {
				t.Fatalf("version reissued after prune: %d then %d", v2, v3)
			}
		})
	}
}

func TestMemoryIsolation(t *testing.T) {
	m := NewMemory()
	blob := []byte("abc")
	v, _ := m.Put(blob)
	blob[0] = 'x'
	got, _ := m.Get(v)
	if string(got) != "abc" {
		t.Fatal("backend shares the caller's buffer")
	}
	got[0] = 'y'
	again, _ := m.Get(v)
	if string(again) != "abc" {
		t.Fatal("backend returned its internal buffer")
	}
}
