// Command gen regenerates the golden back-compat snapshots in
// internal/storage/testdata: a v1 gob stream and a v2 binary snapshot of
// the same deterministic document (edits included, so tombstones and
// non-trivial labels are exercised). Run from the repo root:
//
//	go run ./internal/storage/testdata/gen
//
// The goldens exist so future codec edits cannot silently break loading
// of old files — regenerate them ONLY when intentionally revving the
// format, and keep the old files loadable.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

func main() {
	st, err := ltree.OpenString(
		`<site><regions><asia><item id="1"><name>lamp</name></item></asia><europe/></regions><people><person>alice</person><person>bob</person></people></site>`,
		ltree.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}
	// Deterministic edit history: an insert, a subtree paste, a delete
	// (leaves tombstones in the label space), and a move.
	if _, err := st.InsertElement(st.Root(), 0, "header"); err != nil {
		log.Fatal(err)
	}
	asia := st.Elements("asia")[0]
	if _, err := st.InsertXML(asia, 1, `<item id="2"><name>chair</name></item>`); err != nil {
		log.Fatal(err)
	}
	if err := st.Delete(st.Elements("europe")[0]); err != nil {
		log.Fatal(err)
	}
	items := st.Elements("item")
	if err := st.Move(items[0], st.Elements("people")[0], 0); err != nil {
		log.Fatal(err)
	}

	dir := filepath.Join("internal", "storage", "testdata")
	var v2 bytes.Buffer
	if err := st.Snapshot(&v2); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "golden-v2.ltsnap"), v2.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := storage.WriteLegacySnapshot(&v1, st.Document().Image()); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "golden-v1.gob"), v1.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote golden-v2.ltsnap (%d bytes) and golden-v1.gob (%d bytes)\n", v2.Len(), v1.Len())
	fmt.Printf("document: %s\n", st.String())
}
