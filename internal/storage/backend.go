package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Backend stores immutable snapshot versions, graviton-style: every Put
// appends a new version, old versions stay readable until pruned. The
// interface is deliberately tiny — a blob store keyed by a monotonically
// increasing version — so WAL, sharded and remote backends can slot in
// behind it without touching the engine.
type Backend interface {
	// Put stores data as the next version and returns its number
	// (versions start at 1 and only grow).
	Put(data []byte) (uint64, error)
	// Get returns the blob stored under the version.
	Get(version uint64) ([]byte, error)
	// Latest returns the highest version and its blob.
	Latest() (uint64, []byte, error)
	// Versions lists the stored versions in ascending order.
	Versions() ([]uint64, error)
	// Prune removes every version strictly below keep. The newest stored
	// version always survives, whatever keep says: a snapshot store never
	// deletes its only snapshot, and retaining it keeps Put's version
	// numbers growing across prunes (File derives the next number from
	// what is on disk).
	Prune(keep uint64) error
}

// WALBackend extends Backend with incremental persistence: commits append
// framed change batches to a write-ahead log instead of rewriting a
// snapshot, and recovery is the newest checkpoint plus a replay of the
// durable log tail. The snapshot-versioned half of the interface keeps
// working — a WALBackend's versions are its checkpoints.
//
// The *WAL type is the file-backed implementation; the Store engine
// detects a WALBackend in LoadLatest and recovers through ReplaySince.
type WALBackend interface {
	Backend
	// AppendBatch appends one encoded change batch (an EncodeOps payload)
	// as the next log record and returns its sequence number (sequence
	// numbers start at 1 and grow by one per batch).
	AppendBatch(payload []byte) (uint64, error)
	// ReplaySince streams every durable batch with sequence number >
	// since, in order. A torn or corrupt log tail ends the replay
	// silently — recovery semantics are "longest durable prefix".
	ReplaySince(since uint64, fn func(seq uint64, payload []byte) error) error
	// Checkpoint stores snapshot as covering every batch appended so far
	// and truncates the log; it returns the checkpoint's version (the
	// covered sequence number).
	Checkpoint(snapshot []byte) (uint64, error)
	// Sync makes group-committed appends durable.
	Sync() error
	// Close flushes and releases the log; appending afterwards fails.
	Close() error
}

// ErrNoVersion reports a missing snapshot version.
var ErrNoVersion = errors.New("storage: no such snapshot version")

// Memory is an in-process Backend, safe for concurrent use.
type Memory struct {
	mu    sync.RWMutex
	blobs map[uint64][]byte
	next  uint64
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{blobs: make(map[uint64][]byte), next: 1}
}

// Put implements Backend.
func (m *Memory) Put(data []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.next
	m.next++
	m.blobs[v] = append([]byte(nil), data...)
	return v, nil
}

// Get implements Backend.
func (m *Memory) Get(version uint64) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	blob, ok := m.blobs[version]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoVersion, version)
	}
	return append([]byte(nil), blob...), nil
}

// Latest implements Backend.
func (m *Memory) Latest() (uint64, []byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	best := uint64(0)
	for v := range m.blobs {
		if v > best {
			best = v
		}
	}
	if best == 0 {
		return 0, nil, ErrNoVersion
	}
	return best, append([]byte(nil), m.blobs[best]...), nil
}

// Versions implements Backend.
func (m *Memory) Versions() ([]uint64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]uint64, 0, len(m.blobs))
	for v := range m.blobs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Prune implements Backend.
func (m *Memory) Prune(keep uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	newest := uint64(0)
	for v := range m.blobs {
		if v > newest {
			newest = v
		}
	}
	for v := range m.blobs {
		if v < keep && v != newest {
			delete(m.blobs, v)
		}
	}
	return nil
}

// File is a directory-backed Backend: one file per version, written to a
// temp name and renamed so a crash never leaves a torn snapshot visible.
type File struct {
	mu  sync.Mutex
	dir string
}

// NewFile opens (creating if needed) a directory-backed backend.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &File{dir: dir}, nil
}

// path returns the blob file name for a version.
func (f *File) path(version uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("v%016d.ltsnap", version))
}

// Put implements Backend.
func (f *File) Put(data []byte) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	versions, err := f.list()
	if err != nil {
		return 0, err
	}
	next := uint64(1)
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	tmp, err := os.CreateTemp(f.dir, "put-*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), f.path(next)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	// Make the rename durable: without the directory fsync a crash can
	// forget the entry for a version Put already acknowledged.
	if dir, err := os.Open(f.dir); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return next, nil
}

// Get implements Backend.
func (f *File) Get(version uint64) ([]byte, error) {
	data, err := os.ReadFile(f.path(version))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %d", ErrNoVersion, version)
	}
	return data, err
}

// Latest implements Backend.
func (f *File) Latest() (uint64, []byte, error) {
	f.mu.Lock()
	versions, err := f.list()
	f.mu.Unlock()
	if err != nil {
		return 0, nil, err
	}
	if len(versions) == 0 {
		return 0, nil, ErrNoVersion
	}
	v := versions[len(versions)-1]
	data, err := f.Get(v)
	return v, data, err
}

// Versions implements Backend.
func (f *File) Versions() ([]uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.list()
}

// Prune implements Backend.
func (f *File) Prune(keep uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	versions, err := f.list()
	if err != nil || len(versions) == 0 {
		return err
	}
	newest := versions[len(versions)-1]
	for _, v := range versions {
		if v < keep && v != newest {
			if err := os.Remove(f.path(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// list scans the directory for version files (caller holds the lock).
func (f *File) list() ([]uint64, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		var v uint64
		if _, err := fmt.Sscanf(e.Name(), "v%016d.ltsnap", &v); err == nil && v > 0 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
