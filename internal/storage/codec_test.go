package storage

import (
	"bytes"
	"reflect"
	"testing"
)

// img returns a representative snapshot image: tombstones, attributes,
// adjacent text children, a label starting at 0.
func img() *Image {
	return &Image{
		F: 8, S: 2, Height: 3,
		Labels:  []uint64{0, 7, 13, 14, 21, 49, 56},
		Deleted: []bool{false, true, false, false, true, false, false},
		Root: NodeRec{
			Kind: kindElement,
			Tag:  "r",
			Attrs: []AttrRec{
				{Name: "id", Value: "1"},
				{Name: "lang", Value: "xq"},
			},
			Children: []NodeRec{
				{Kind: kindText, Data: "hello <world> & co"},
				{Kind: kindText, Data: "adjacent"},
				{Kind: kindElement, Tag: "c", Children: []NodeRec{
					{Kind: kindText, Data: ""},
				}},
			},
		},
	}
}

func TestV2RoundTrip(t *testing.T) {
	want := img()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestV2NoTombstones(t *testing.T) {
	want := img()
	want.Deleted = nil
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deleted != nil {
		t.Fatal("tombstone map materialized out of nothing")
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatal("labels mangled")
	}
}

// TestV1BackCompat: a stream produced by the original gob writer decodes
// into the same image the v2 path yields.
func TestV1BackCompat(t *testing.T) {
	want := img()
	var buf bytes.Buffer
	if err := WriteLegacySnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 decode mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestReadRejectsFutureVersion: an LTSNAP stream with a higher format
// version must name the version, not fall through to the gob decoder.
func TestReadRejectsFutureVersion(t *testing.T) {
	future := append([]byte{}, magic[:6]...)
	future = append(future, 0, 3) // version 3
	_, err := ReadSnapshot(bytes.NewReader(future))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("unsupported snapshot format 3")) {
		t.Fatalf("future version error = %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		[]byte("not a snapshot"),
		append(append([]byte{}, magic[:]...), 0xff), // magic then truncation
	} {
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatalf("garbage %q decoded", bad)
		}
	}
}

// TestReadBoundedAllocation: a tiny stream claiming 2^29 labels must
// fail on truncation with memory proportional to the stream, not the
// claimed count.
func TestReadBoundedAllocation(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(0)            // flags
	putUvarintTest(&buf, 8)     // F
	putUvarintTest(&buf, 2)     // S
	putUvarintTest(&buf, 3)     // Height
	putUvarintTest(&buf, 1<<29) // label count, then nothing
	if _, err := ReadSnapshot(&buf); err == nil {
		t.Fatal("truncated label stream decoded")
	}
}

func putUvarintTest(buf *bytes.Buffer, v uint64) {
	var tmp [10]byte
	n := 0
	for v >= 0x80 {
		tmp[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	tmp[n] = byte(v)
	buf.Write(tmp[:n+1])
}

func TestWriteRejectsBadLabels(t *testing.T) {
	bad := img()
	bad.Labels = []uint64{3, 3}
	bad.Deleted = nil
	if err := WriteSnapshot(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("non-increasing labels encoded")
	}
}
