package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/ltree-db/ltree/internal/storage/blob"
)

// tinySeg forces a segment rotation every record or two, so every test
// exercises multi-segment upload without thousands of appends.
const tinySeg = 32

// fastTier keeps retry backoff tight so fault-riding tests converge
// quickly.
func fastTier(extra TierOptions) TierOptions {
	extra.RetryBase = 200 * time.Microsecond
	extra.RetryCap = 2 * time.Millisecond
	return extra
}

// appendN appends batches [from, to] with deterministic payloads.
func appendN(t *testing.T, w *WAL, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		if _, err := w.AppendBatch(payloadN(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// barrier waits for the tier to catch up, failing the test on timeout.
func barrier(t *testing.T, tier *BlobTier) {
	t.Helper()
	if err := tier.Barrier(30 * time.Second); err != nil {
		t.Fatalf("tier barrier: %v", err)
	}
}

func TestTierUploadsSealedSegmentsAndCheckpoints(t *testing.T) {
	bs := blob.NewMemory()
	w, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tier, err := w.AttachTier(bs, fastTier(TierOptions{Prefix: "node-a"}))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 10)
	if _, err := w.Checkpoint([]byte("snap@10")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 11, 14)
	barrier(t, tier)

	st := tier.Stats()
	if st.UploadedSegments == 0 || st.UploadedCheckpoints != 1 {
		t.Fatalf("stats after barrier: %+v", st)
	}
	if st.UploadLag != 0 || st.PendingSegments != 0 {
		t.Fatalf("barrier left lag: %+v", st)
	}
	if st.DurableSeq < 10 {
		t.Fatalf("durable seq %d, want >= checkpoint", st.DurableSeq)
	}
	// The manifest in the blob store decodes and lists what Stats claims.
	raw, err := bs.Get("node-a/" + blobManifestKey)
	if err != nil {
		t.Fatal(err)
	}
	man, err := DecodeBlobManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Ckpts) != 1 || man.Ckpts[0].Seq != 10 {
		t.Fatalf("manifest checkpoints: %+v", man.Ckpts)
	}
	if uint64(len(man.Segs)) != st.UploadedSegments {
		t.Fatalf("manifest lists %d segments, stats %d", len(man.Segs), st.UploadedSegments)
	}
	// Every manifest entry verifies against its stored object.
	for _, s := range man.Segs {
		data, err := bs.Get("node-a/" + blobSegKey(s.Base))
		if err != nil || uint64(len(data)) != s.Size {
			t.Fatalf("segment %d: %d bytes, want %d (%v)", s.Base, len(data), s.Size, err)
		}
	}
}

func TestTierCheckpointFetchAfterLocalPrune(t *testing.T) {
	bs := blob.NewMemory()
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tier, err := w.AttachTier(bs, fastTier(TierOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 3)
	if _, err := w.Checkpoint([]byte("snap@3")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 4, 6)
	if _, err := w.Checkpoint([]byte("snap@6")); err != nil {
		t.Fatal(err)
	}
	barrier(t, tier)
	// Prune drops the local copy of checkpoint 3; the tier still serves it.
	if err := w.Prune(6); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(w.ckptPath(3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("prune left local checkpoint 3: %v", err)
	}
	data, err := w.Get(3)
	if err != nil {
		t.Fatalf("Get(3) through tier: %v", err)
	}
	if string(data) != "snap@3" {
		t.Fatalf("Get(3) = %q", data)
	}
	// Versions still lists the pruned one (bottomless history).
	vs, err := w.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs, []uint64{3, 6}) {
		t.Fatalf("Versions = %v, want [3 6]", vs)
	}
}

func TestTierReleaseLocalKeepsFullReplay(t *testing.T) {
	bs := blob.NewMemory()
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tier, err := w.AttachTier(bs, fastTier(TierOptions{ReleaseLocal: true}))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 12)
	if _, err := w.Checkpoint([]byte("snap@12")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 13, 20)
	barrier(t, tier)

	// Everything sealed below the checkpoint must be gone from local disk
	// (checkpoint truncation or explicit release), yet a full-history
	// replay still reconstructs every batch by fetching from the tier.
	got := collect(t, w, 0)
	if len(got) != 20 {
		t.Fatalf("full replay returned %d batches, want 20", len(got))
	}
	for i := 1; i <= 20; i++ {
		if got[uint64(i)] != string(payloadN(i)) {
			t.Fatalf("batch %d replayed as %q", i, got[uint64(i)])
		}
	}
	st := tier.Stats()
	if st.Fetches == 0 {
		t.Fatalf("full replay fetched nothing from the tier: %+v", st)
	}
}

func TestTierReleaseLocalFreesDiskMidLog(t *testing.T) {
	// Sealed segments AFTER the newest checkpoint are release candidates
	// too once a blob checkpoint covers... they are not: release requires
	// end <= blob checkpoint. This test pins the actual rule: segments
	// covered by the blob-durable checkpoint vanish locally even under an
	// active Retain lease, and a leased replay still sees every record.
	bs := blob.NewMemory()
	w, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tier, err := w.AttachTier(bs, fastTier(TierOptions{ReleaseLocal: true}))
	if err != nil {
		t.Fatal(err)
	}
	// Lease at 0 — an attached follower mid-catch-up.
	sh, err := NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()

	appendN(t, w, 1, 15)
	if _, err := w.Checkpoint([]byte("snap@15")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 16, 18)
	barrier(t, tier)

	rs := w.RetentionStats()
	if rs.Leases != 1 || rs.LeaseFloor != 0 {
		t.Fatalf("retention stats: %+v", rs)
	}
	if rs.Tier == nil || rs.Tier.LocalReleased == 0 {
		t.Fatalf("release freed nothing despite the lease: %+v", rs.Tier)
	}
	if rs.OldestLocalBase == 0 {
		t.Fatalf("oldest local segment still 0 after release: %+v", rs)
	}

	// The leased tailer drains the full history anyway — records below
	// the release point come back from the tier.
	for i := 1; i <= 18; i++ {
		seq, payload, err := tail.Next()
		if err != nil {
			t.Fatalf("tail.Next at %d: %v", i, err)
		}
		if seq != uint64(i) || string(payload) != string(payloadN(i)) {
			t.Fatalf("tailed (%d, %q), want (%d, %q)", seq, payload, i, payloadN(i))
		}
	}
	// And live records keep flowing after the catch-up crossed the
	// released range.
	if _, err := w.AppendBatch(payloadN(19)); err != nil {
		t.Fatal(err)
	}
	seq, payload, err := tail.Next()
	if err != nil || seq != 19 || string(payload) != string(payloadN(19)) {
		t.Fatalf("live tail after release: %d %q %v", seq, payload, err)
	}
}

func TestTierSeedsVirginLocalDir(t *testing.T) {
	bs := blob.NewMemory()
	dirA := t.TempDir()
	w, err := OpenWAL(dirA, WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	tier, err := w.AttachTier(bs, fastTier(TierOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 8)
	if _, err := w.Checkpoint([]byte("snap@8")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 9, 12)
	barrier(t, tier)
	durable := tier.Stats().DurableSeq
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The machine died and its disk is gone: recover on a virgin
	// directory from the blob store alone.
	w2, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.AttachTier(bs, fastTier(TierOptions{})); err != nil {
		t.Fatalf("seed attach: %v", err)
	}
	if w2.Seq() != durable {
		t.Fatalf("seeded WAL at seq %d, blob durable %d", w2.Seq(), durable)
	}
	v, snap, err := w2.Latest()
	if err != nil || v != 8 || string(snap) != "snap@8" {
		t.Fatalf("Latest = %d %q %v", v, snap, err)
	}
	got := collect(t, w2, 8)
	for i := 9; i <= int(durable); i++ {
		if got[uint64(i)] != string(payloadN(i)) {
			t.Fatalf("seeded replay missing batch %d: %q", i, got[uint64(i)])
		}
	}
	// The sequence continues exactly where the blob history ends.
	seq, err := w2.AppendBatch(payloadN(int(durable) + 1))
	if err != nil || seq != durable+1 {
		t.Fatalf("post-seed append = %d, %v", seq, err)
	}
}

func TestTierRefusesDivergedLocal(t *testing.T) {
	bs := blob.NewMemory()
	// History A reaches the blob store.
	wa, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	tier, err := wa.AttachTier(bs, fastTier(TierOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, wa, 1, 10)
	if _, err := wa.Checkpoint([]byte("A@10")); err != nil {
		t.Fatal(err)
	}
	barrier(t, tier)
	wa.Close()

	// History B is a different, shorter log. Adopting the blob tier would
	// have to pick one of two diverged histories — it must refuse.
	wb, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer wb.Close()
	appendN(t, wb, 1, 3)
	if _, err := wb.AttachTier(bs, fastTier(TierOptions{})); err == nil {
		t.Fatal("attach adopted a diverged blob tier silently")
	}
}

func TestTierReattachResumesUploads(t *testing.T) {
	bs := blob.NewMemory()
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	tier, err := w.AttachTier(bs, fastTier(TierOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 6)
	if _, err := w.Checkpoint([]byte("snap@6")); err != nil {
		t.Fatal(err)
	}
	barrier(t, tier)
	before := tier.Stats().DurableSeq
	if before < 6 {
		t.Fatalf("durable seq %d before reattach, want >= 6", before)
	}
	w.Close()

	// Reopen the same directory and blob store: the tier resumes where
	// the manifest left off and uploads only what is missing.
	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	tier2, err := w2.AttachTier(bs, fastTier(TierOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w2, 7, 12)
	if _, err := w2.Checkpoint([]byte("snap@12")); err != nil {
		t.Fatal(err)
	}
	barrier(t, tier2)
	st := tier2.Stats()
	if st.DurableSeq <= before {
		t.Fatalf("durable seq did not advance across reattach: %d -> %d", before, st.DurableSeq)
	}
}

func TestTierCorruptManifestIsLoud(t *testing.T) {
	bs := blob.NewMemory()
	if err := bs.Put(blobManifestKey, []byte("this is not a manifest")); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// A garbage manifest must never be treated as an empty (fresh) tier:
	// that would silently forfeit the uploaded history.
	if _, err := w.AttachTier(bs, fastTier(TierOptions{})); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("attach over garbage manifest: %v, want ErrCorruptManifest", err)
	}
}

// TestTierRecoveryDifferential is the blob-tier analog of the WAL crash
// suite: a leader with a blob tier commits and checkpoints while an
// identically-driven local-only WAL serves as the oracle. At every
// sealed-segment boundary, "lose the local disk" — recover onto a virgin
// directory from the blob store alone — and require the recovered
// history to equal the oracle's durable prefix exactly.
func TestTierRecoveryDifferential(t *testing.T) {
	bs := blob.NewMemory()
	w, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tier, err := w.AttachTier(bs, fastTier(TierOptions{ReleaseLocal: true}))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	const total = 24
	lastBoundary := uint64(0)
	for i := 1; i <= total; i++ {
		if _, err := w.AppendBatch(payloadN(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.AppendBatch(payloadN(i)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			snap := []byte(fmt.Sprintf("snap@%d", i))
			if _, err := w.Checkpoint(snap); err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.Checkpoint(snap); err != nil {
				t.Fatal(err)
			}
		}
		// Segment boundaries happen almost every append at tinySeg; probe
		// recovery whenever a new one sealed.
		barrier(t, tier)
		durable := tier.Stats().DurableSeq
		if durable == lastBoundary {
			continue
		}
		lastBoundary = durable

		rw, err := OpenWAL(t.TempDir(), WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rw.AttachTier(bs, fastTier(TierOptions{})); err != nil {
			t.Fatalf("step %d: seed attach: %v", i, err)
		}
		if rw.Seq() != durable {
			t.Fatalf("step %d: recovered seq %d, durable %d", i, rw.Seq(), durable)
		}
		// Newest checkpoint matches the oracle's at the same version.
		rv, rsnap, err := rw.Latest()
		if err != nil {
			t.Fatalf("step %d: recovered Latest: %v", i, err)
		}
		ov, osnap, err := oracle.Latest()
		if err != nil {
			t.Fatalf("step %d: oracle Latest: %v", i, err)
		}
		if rv != ov || !bytes.Equal(rsnap, osnap) {
			t.Fatalf("step %d: recovered checkpoint (%d, %q) != oracle (%d, %q)", i, rv, rsnap, ov, osnap)
		}
		// The full recovered history equals the appended prefix —
		// including records the leader already released from local disk.
		got := map[uint64]string{}
		if err := rw.ReplaySince(0, func(seq uint64, payload []byte) error {
			got[seq] = string(payload)
			return nil
		}); err != nil {
			t.Fatalf("step %d: recovered full replay: %v", i, err)
		}
		if uint64(len(got)) != durable {
			t.Fatalf("step %d: recovered %d batches, want %d", i, len(got), durable)
		}
		for j := uint64(1); j <= durable; j++ {
			if got[j] != string(payloadN(int(j))) {
				t.Fatalf("step %d: batch %d recovered as %q", i, j, got[j])
			}
		}
		rw.Close()
	}
	if lastBoundary == 0 {
		t.Fatal("no segment boundary ever sealed; test exercised nothing")
	}
}

// TestTierTortureUnderFaults drives the tier through a hostile blob
// store — transient errors, partial uploads, torn reads, latency — and
// pins the two contracted properties: the commit path never blocks on
// the blob store (appends succeed even while EVERY blob call fails), and
// once the storm calms, recovery from the blob store alone reproduces
// the durable history exactly (no truncation, no torn object trusted).
func TestTierTortureUnderFaults(t *testing.T) {
	inner := blob.NewMemory()
	faults := blob.NewFaults(inner, blob.FaultOptions{Seed: 99})
	w, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Attach while the store is healthy (attach reads the manifest with a
	// bounded retry budget), then cut the cord.
	tier, err := w.AttachTier(faults, fastTier(TierOptions{ReleaseLocal: true}))
	if err != nil {
		t.Fatal(err)
	}
	faults.SetOptions(blob.FaultOptions{Seed: 99, ErrorRate: 1})

	// Phase 1: the blob store is fully down (ErrorRate 1). If any commit
	// or checkpoint waited on an upload it would hang forever — the
	// watchdog turns that into a loud failure.
	done := make(chan error, 1)
	go func() {
		for i := 1; i <= 40; i++ {
			if _, err := w.AppendBatch(payloadN(i)); err != nil {
				done <- fmt.Errorf("append %d: %w", i, err)
				return
			}
			if i%10 == 0 {
				if _, err := w.Checkpoint([]byte(fmt.Sprintf("snap@%d", i))); err != nil {
					done <- fmt.Errorf("checkpoint @%d: %w", i, err)
					return
				}
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("commit path blocked while the blob store was down")
	}
	if tier.Stats().DurableSeq != 0 {
		t.Fatalf("nothing can be durable with every blob call failing: %+v", tier.Stats())
	}

	// Phase 2: storm instead of outage — transient errors, partial
	// uploads, torn reads, latency spikes. The uploader must converge and
	// the manifest must never list an unverifiable object.
	faults.SetOptions(blob.FaultOptions{
		Seed: 7, ErrorRate: 0.25, PartialPuts: 0.25, TornReads: 0.25,
		Latency: time.Millisecond,
	})
	appendN(t, w, 41, 60)
	if _, err := w.Checkpoint([]byte("snap@60")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 61, 70)
	if err := tier.Barrier(120 * time.Second); err != nil {
		t.Fatalf("tier never converged under the fault storm: %v", err)
	}
	st := tier.Stats()
	if st.UploadRetries == 0 {
		t.Fatalf("fault storm injected nothing (stats %+v, faults %+v)", st, faults.Stats())
	}

	// Phase 3: recovery from the (still faulty) blob store alone — reads
	// retry through transient errors and torn reads, and verify every
	// object against the manifest, so the recovered prefix is exact.
	rw, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if _, err := rw.AttachTier(faults, fastTier(TierOptions{})); err != nil {
		t.Fatalf("recovery attach under faults: %v", err)
	}
	durable := st.DurableSeq
	if rw.Seq() != durable {
		t.Fatalf("recovered seq %d, want %d", rw.Seq(), durable)
	}
	v, snap, err := rw.Latest()
	if err != nil || v != 60 || string(snap) != "snap@60" {
		t.Fatalf("recovered Latest = %d %q %v", v, snap, err)
	}
	got := map[uint64]string{}
	if err := rw.ReplaySince(0, func(seq uint64, payload []byte) error {
		got[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("recovered replay under faults: %v", err)
	}
	if uint64(len(got)) != durable {
		t.Fatalf("recovered %d of %d batches", len(got), durable)
	}
	for i := uint64(1); i <= durable; i++ {
		if got[i] != string(payloadN(int(i))) {
			t.Fatalf("batch %d recovered as %q — a torn object was trusted", i, got[i])
		}
	}
}

func TestBlobManifestCodecRoundtrip(t *testing.T) {
	m := BlobManifest{
		Ckpts: []BlobObject{{Seq: 3, Size: 10, CRC: 1}, {Seq: 9, Size: 2000, CRC: 0xffffffff}},
		Segs: []BlobSegment{
			{Base: 0, End: 3, Size: 77, CRC: 5},
			{Base: 3, End: 9, Size: 1 << 20, CRC: 6},
			{Base: 9, End: 10, Size: 1, CRC: 7},
		},
	}
	data, err := EncodeBlobManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBlobManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("roundtrip: %+v != %+v", back, m)
	}
	// Every truncation of a valid manifest is detected — a torn read can
	// never decode as a shorter valid history.
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeBlobManifest(data[:cut]); !errors.Is(err, ErrCorruptManifest) {
			t.Fatalf("truncation at %d decoded: %v", cut, err)
		}
	}
	// Single-bit flips are detected by the trailing CRC.
	for _, pos := range []int{0, 3, len(data) / 2, len(data) - 5, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		if _, err := DecodeBlobManifest(mut); !errors.Is(err, ErrCorruptManifest) {
			t.Fatalf("bit flip at %d decoded: %v", pos, err)
		}
	}
	// Encode refuses unordered input instead of poisoning the tier.
	if _, err := EncodeBlobManifest(BlobManifest{Segs: []BlobSegment{{Base: 5, End: 6}, {Base: 2, End: 5}}}); err == nil {
		t.Fatal("encode accepted unordered segments")
	}
	if _, err := EncodeBlobManifest(BlobManifest{Segs: []BlobSegment{{Base: 5, End: 5}}}); err == nil {
		t.Fatal("encode accepted an empty segment")
	}
}

func TestTierRetentionStatsWithoutTier(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 3)
	rs := w.RetentionStats()
	if rs.Seq != 3 || rs.Tier != nil || rs.LocalSegments != 1 || rs.Leases != 0 {
		t.Fatalf("retention stats: %+v", rs)
	}
	if _, err := w.Checkpoint([]byte("s")); err != nil {
		t.Fatal(err)
	}
	rs = w.RetentionStats()
	if rs.CheckpointSeq != 3 {
		t.Fatalf("checkpoint seq not reflected: %+v", rs)
	}
}

// TestTierSegmentBytesRotation pins the new size-based rotation on its
// own: no tier attached, segments seal at the configured size, and
// recovery over the multi-segment log is unchanged.
func TestTierSegmentBytesRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 10)
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("size rotation produced %d segments, want several", len(segs))
	}
	bytesLive, records := w.LiveLog()
	if records != 10 || bytesLive <= 0 {
		t.Fatalf("LiveLog = (%d, %d), want 10 records across segments", bytesLive, records)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: sequence continues, replay sees all, live accounting holds.
	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Seq() != 10 {
		t.Fatalf("reopened seq %d", w2.Seq())
	}
	b2, r2 := w2.LiveLog()
	if r2 != 10 || b2 != bytesLive {
		t.Fatalf("reopened LiveLog = (%d, %d), want (%d, 10)", b2, r2, bytesLive)
	}
	got := collect(t, w2, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d of 10", len(got))
	}
}
