package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file is the on-disk layout of a sharded forest: one root directory
// holding a manifest that pins the shard topology, plus one WAL directory
// per shard. The manifest exists so a forest can never be opened with the
// wrong shard count by accident — documents are placed by hashing into
// the shard count, so opening N shards' worth of WALs as M shards would
// silently route every lookup to the wrong store. There is no resharding
// yet; a topology mismatch is a loud, immediate error.
//
// Layout:
//
//	dir/FOREST           manifest: "ltree-forest v1\nshards <n>\n"
//	dir/shard-0000/      shard 0's WAL directory (segments + checkpoints)
//	dir/shard-0001/      ...
//
// The manifest is written with the same temp+rename+dirsync discipline as
// WAL checkpoints, so a crash during forest creation leaves either no
// manifest (the directory reopens as fresh) or a complete one — never a
// torn topology.

// ErrForestTopology reports an OpenForest shard count that contradicts
// the directory's manifest. Matched with errors.Is; the returned error
// carries both counts.
var ErrForestTopology = errors.New("storage: forest shard count differs from the directory's manifest (resharding is not supported)")

const (
	forestManifestName = "FOREST"
	forestManifestV1   = "ltree-forest v1"
)

// ForestManifest pins a forest directory's shard topology.
type ForestManifest struct {
	// Shards is the number of document-partitioned shards. Immutable for
	// the directory's lifetime: the hash placement of every document
	// depends on it.
	Shards int
}

// ForestShardDir returns the WAL directory of one shard. The fixed-width
// name keeps directory listings in shard order.
func ForestShardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", shard))
}

// WriteForestManifest creates dir if needed and durably writes its
// manifest (temp file, fsync, rename, directory sync).
func WriteForestManifest(dir string, m ForestManifest) error {
	if m.Shards <= 0 {
		return fmt.Errorf("storage: forest manifest needs a positive shard count, got %d", m.Shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "forest-*.tmp")
	if err != nil {
		return err
	}
	content := fmt.Sprintf("%s\nshards %d\n", forestManifestV1, m.Shards)
	if _, err := tmp.WriteString(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, forestManifestName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadForestManifest reads dir's manifest. ok=false (with a nil error)
// means the directory holds no manifest — a fresh forest location. A
// manifest that exists but does not parse is an error, never silently
// treated as fresh: opening shard WALs under a garbled topology would
// misroute every document.
func ReadForestManifest(dir string) (m ForestManifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, forestManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return ForestManifest{}, false, nil
	}
	if err != nil {
		return ForestManifest{}, false, err
	}
	var version string
	var shards int
	if n, _ := fmt.Sscanf(string(data), "ltree-forest %s\nshards %d\n", &version, &shards); n != 2 || version != "v1" || shards <= 0 {
		return ForestManifest{}, false, fmt.Errorf("storage: corrupt forest manifest in %s: %q", dir, truncateForLog(data))
	}
	return ForestManifest{Shards: shards}, true, nil
}

// CheckForestManifest reconciles a requested shard count with dir's
// manifest: a fresh directory adopts the request (writing the manifest),
// an existing manifest wins when the request is 0 (adopt), and any other
// disagreement is ErrForestTopology. Returns the effective shard count.
func CheckForestManifest(dir string, requested int) (int, error) {
	m, ok, err := ReadForestManifest(dir)
	if err != nil {
		return 0, err
	}
	if !ok {
		if requested <= 0 {
			requested = 1
		}
		if err := WriteForestManifest(dir, ForestManifest{Shards: requested}); err != nil {
			return 0, err
		}
		return requested, nil
	}
	if requested != 0 && requested != m.Shards {
		return 0, fmt.Errorf("%w: directory %s holds %d shards, open requested %d",
			ErrForestTopology, dir, m.Shards, requested)
	}
	return m.Shards, nil
}

// truncateForLog bounds corrupt-manifest bytes quoted into an error.
func truncateForLog(data []byte) string {
	const max = 64
	if len(data) > max {
		return string(data[:max]) + "…"
	}
	return string(data)
}
