package storage_test

// Golden-file back-compat: a v1 gob stream and a v2 binary snapshot of
// the same document (with an edit history, so tombstones and maintenance
// relabelings are baked in) are checked in under testdata/. Both must
// keep loading forever — a failure here means a codec edit broke old
// files. Regenerate ONLY on an intentional format rev:
//
//	go run ./internal/storage/testdata/gen

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

// goldenXML is the serialized document both goldens must restore to.
const goldenXML = `<site><header/><regions><asia><item id="2"><name>chair</name></item></asia></regions><people><item id="1"><name>lamp</name></item><person>alice</person><person>bob</person></people></site>`

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("golden file missing (go run ./internal/storage/testdata/gen): %v", err)
	}
	return data
}

func TestGoldenSnapshotsLoad(t *testing.T) {
	v1 := readGolden(t, "golden-v1.gob")
	v2 := readGolden(t, "golden-v2.ltsnap")

	// Codec level: both streams decode, to the same image.
	img1, err := storage.ReadSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 gob stream no longer decodes: %v", err)
	}
	img2, err := storage.ReadSnapshot(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 snapshot no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(img1, img2) {
		t.Fatal("v1 and v2 goldens decode to different images")
	}
	if img2.Deleted == nil {
		t.Fatal("golden lost its tombstones — regenerate with an edit history")
	}

	// Document level: both restore to working stores with identical
	// labels, and the restored stores pass the full invariant suite.
	for _, tc := range []struct {
		name string
		data []byte
	}{{"v1", v1}, {"v2", v2}} {
		st, err := ltree.Restore(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s golden no longer restores: %v", tc.name, err)
		}
		if got := st.String(); got != goldenXML {
			t.Fatalf("%s golden restored wrong document:\n got %s\nwant %s", tc.name, got, goldenXML)
		}
		if err := st.Check(); err != nil {
			t.Fatalf("%s golden restored an inconsistent store: %v", tc.name, err)
		}
		// Predicate pushdown back-compat: the goldens predate per-chunk
		// attribute summaries and maxEnd fences, and the byte-stability
		// check below pins that the snapshot format still does not carry
		// them — they are rebuilt from the document on restore. Check()
		// above verifies the rebuilt fences via index.Verify; a predicate
		// query over the restored index exercises them end to end.
		for _, q := range []struct {
			expr string
			want int
		}{{"//item[@id='2']", 1}, {"//item[@id]", 2}, {"//item[@id='9']", 0}} {
			res, err := st.Query(q.expr)
			if err != nil {
				t.Fatalf("%s golden: %s: %v", tc.name, q.expr, err)
			}
			if len(res) != q.want {
				t.Fatalf("%s golden: %s returned %d results, want %d", tc.name, q.expr, len(res), q.want)
			}
		}
	}

	// Encoder stability: re-encoding the v2 image must reproduce the v2
	// golden byte for byte (the crash tests' oracle comparisons and the
	// WAL's checkpoint identity both lean on deterministic encoding).
	var re bytes.Buffer
	if err := storage.WriteSnapshot(&re, img2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), v2) {
		t.Fatal("v2 encoder no longer byte-stable against the golden")
	}
}

// TestGoldenLabelsStable pins the exact label values of the golden
// document: a decoder change that shifted labels (off-by-one in delta
// decoding, say) would pass structural checks but corrupt every
// ancestor/descendant relationship derived from them.
func TestGoldenLabelsStable(t *testing.T) {
	v2 := readGolden(t, "golden-v2.ltsnap")
	img, err := storage.ReadSnapshot(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Labels) == 0 {
		t.Fatal("golden has no labels")
	}
	// Strictly increasing, and stable endpoints (the full sequence is
	// covered by the byte-stability check in TestGoldenSnapshotsLoad).
	prev := img.Labels[0]
	for i, lab := range img.Labels[1:] {
		if lab <= prev {
			t.Fatalf("labels not strictly increasing at %d: %d after %d", i+1, lab, prev)
		}
		prev = lab
	}
	live := 0
	for i := range img.Labels {
		if img.Deleted == nil || !img.Deleted[i] {
			live++
		}
	}
	if live != 26 { // 11 elements ×2 + 4 text sections of goldenXML
		t.Fatalf("golden has %d live labels, want 26", live)
	}
}
