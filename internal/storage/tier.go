package storage

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"github.com/ltree-db/ltree/internal/storage/blob"
)

// This file is the blob tier: an asynchronous upload path that mirrors
// the WAL's immutable artifacts — sealed log segments and checkpoint
// snapshots — into an object store, and the read-through fallbacks that
// let the WAL serve history it no longer holds on local disk.
//
// The contract, in order of importance:
//
//  1. The commit path never waits on the blob store. AppendBatch and
//     Checkpoint only ever *kick* the uploader goroutine (a non-blocking
//     channel send); every blob operation happens off to the side.
//  2. Nothing durable is lost to the tier's failures. The uploader
//     retries transient errors forever (capped backoff); a local file is
//     deleted only after its object AND a manifest listing it are both
//     durably stored; readers verify every fetched object against the
//     manifest's size+CRC, so a partial upload or torn read is retried,
//     never trusted.
//  3. Blob-durable history is bottomless. Local retention may release a
//     sealed segment the moment it is blob-durable and checkpoint-covered
//     — even while a Retain lease still needs it — because ReplaySince /
//     ReplayFromPos transparently fetch released segments back from the
//     tier. Old checkpoints pruned locally stay fetchable the same way,
//     which is what makes historical reconstruction (ltree.LoadAt) work
//     across restarts.
//
// Upload state machine, per artifact:
//
//	local only ──upload──▶ blob-stored ──manifest flush──▶ blob-durable
//	                                        │
//	         (ReleaseLocal, end ≤ blob ckpt)└──▶ local file removed
//
// A crash between "blob-stored" and "blob-durable" re-uploads the object
// on the next pass (Put is idempotent under the same key); a crash during
// an upload leaves at worst a partial object that the next pass
// overwrites and that no reader trusts (manifest CRC).

// TierOptions configures AttachTier.
type TierOptions struct {
	// Prefix namespaces this WAL's objects inside the blob store
	// ("wal-a/"); empty means the store root. A trailing "/" is added if
	// missing.
	Prefix string
	// ReleaseLocal deletes local sealed segment files once they are
	// blob-durable and covered by a blob-durable checkpoint, reclaiming
	// disk; reads through Retain leases and historical replays then fetch
	// from the tier. Off, local files follow the ordinary lease-gated
	// checkpoint retention (the tier is pure backup).
	ReleaseLocal bool
	// RetryBase and RetryCap bound the uploader's backoff between
	// attempts after a blob error. Defaults: 5ms base, 500ms cap.
	RetryBase time.Duration
	RetryCap  time.Duration
}

// TierStats is a snapshot of the tier's accounting.
type TierStats struct {
	// UploadedSegments / UploadedCheckpoints count objects made durable
	// (manifest-listed) since attach.
	UploadedSegments    uint64
	UploadedCheckpoints uint64
	// BytesUploaded counts object payload bytes successfully Put.
	BytesUploaded uint64
	// DurableSeq is the highest sequence number reconstructible from the
	// blob tier alone: the newest blob checkpoint extended through every
	// contiguous blob segment after it.
	DurableSeq uint64
	// UploadLag is how many sealed sequence numbers await upload: the
	// local sealed end minus DurableSeq (0 when the tier has caught up).
	// Live (unsealed) records are excluded — they are not upload
	// candidates yet.
	UploadLag uint64
	// PendingSegments counts sealed local segments not yet blob-durable.
	PendingSegments int
	// Fetches / FetchBytes count read-through object fetches (a released
	// or pruned artifact served from the tier).
	Fetches    uint64
	FetchBytes uint64
	// UploadRetries / FetchRetries count blob operations that failed
	// transiently and were retried.
	UploadRetries uint64
	FetchRetries  uint64
	// LocalReleased counts local segment files deleted because the tier
	// holds them.
	LocalReleased uint64
	// ManifestWrites counts durable manifest updates.
	ManifestWrites uint64
}

// RetentionStats reports the WAL's retention state — what observability
// surfaces (Store.WALStats, ltreed /v1/stats) expose.
type RetentionStats struct {
	// Seq is the last appended batch sequence number.
	Seq uint64
	// CheckpointSeq is the newest checkpoint's covered sequence number.
	CheckpointSeq uint64
	// LocalSegments counts log segment files on local disk (live
	// included); OldestLocalBase is the lowest base among them.
	LocalSegments   int
	OldestLocalBase uint64
	// Leases counts registered retention leases; LeaseFloor is the lowest
	// floor among them (meaningful when Leases > 0): records above it
	// must stay replayable, locally or through the tier.
	Leases     int
	LeaseFloor uint64
	// Tier is the blob tier's accounting, nil when none is attached.
	Tier *TierStats
}

// ErrNoBlobSegment reports a segment the blob manifest does not list.
var ErrNoBlobSegment = errors.New("storage: segment not in blob tier")

// blobRetry bounds and paces retries against a flaky blob store.
type blobRetry struct {
	max  int // attempts; 0 = unlimited
	base time.Duration
	cap  time.Duration
	stop <-chan struct{} // optional: abort sleeps
}

func (r *blobRetry) attempt(i int) bool { return r.max == 0 || i < r.max }

func (r *blobRetry) sleep(i int) {
	d := r.base
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	for j := 0; j < i && d < r.cap; j++ {
		d *= 2
	}
	if r.cap > 0 && d > r.cap {
		d = r.cap
	}
	if r.stop == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.stop:
	}
}

// readRetry is the budget for read-through fetches: generous enough to
// ride out injected fault storms, bounded so a dead blob store surfaces
// as an error instead of a hang.
func readRetry() *blobRetry {
	return &blobRetry{max: 50, base: 1 * time.Millisecond, cap: 50 * time.Millisecond}
}

// blobFetch gets one object and verifies it against the manifest's
// size+CRC, retrying transient errors and torn reads.
func blobFetch(bs blob.Store, key string, size uint64, crc uint32, retry *blobRetry, retries *uint64) ([]byte, error) {
	var lastErr error
	for i := 0; retry.attempt(i); i++ {
		data, err := bs.Get(key)
		if err == nil {
			if uint64(len(data)) == size && crc32.Checksum(data, crcTable) == crc {
				return data, nil
			}
			err = fmt.Errorf("storage: blob object %s failed verification (%d bytes)", key, len(data))
		}
		lastErr = err
		if retries != nil {
			*retries++
		}
		retry.sleep(i)
	}
	return nil, fmt.Errorf("storage: blob fetch %s: %w", key, lastErr)
}

// BlobTier mirrors a WAL's sealed artifacts into a blob store. Create
// one with WAL.AttachTier; its methods are safe for concurrent use.
type BlobTier struct {
	bs  blob.Store
	opt TierOptions
	w   *WAL

	// passMu serializes upload passes (the uploader goroutine and
	// Barrier both run them).
	passMu sync.Mutex

	mu      sync.Mutex   // protects man, flushed, dirty, st
	man     BlobManifest // in-memory truth: entry present ⇒ object bytes durable
	flushed BlobManifest // last manifest durably written to the blob store
	dirty   bool         // man has entries flushed lacks
	st      TierStats

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// AttachTier mirrors this WAL into a blob store and starts the async
// uploader. The tier's manifest is loaded (and reconciled) first:
//
//   - A fresh blob store adopts this WAL.
//   - A blob store holding exactly this WAL's history (its durable end at
//     or behind the local log) resumes uploading where it left off.
//   - A blob store AHEAD of a virgin local directory seeds it: the local
//     log fast-forwards to the blob-durable end, and recovery
//     (Latest + ReplaySince) reads the history through the tier. This is
//     the restore-from-backup / geo-seed path.
//   - Anything else — a non-empty local log behind the blob state — is
//     ambiguous (two diverged histories) and refuses loudly.
//
// Attach before handing the WAL to a store (WithWAL / LoadLatest), so
// recovery already sees the tier. Detaching is not supported; Close the
// WAL to stop the uploader.
func (w *WAL) AttachTier(bs blob.Store, opt TierOptions) (*BlobTier, error) {
	if opt.Prefix != "" && opt.Prefix[len(opt.Prefix)-1] != '/' {
		opt.Prefix += "/"
	}
	if opt.RetryBase <= 0 {
		opt.RetryBase = 5 * time.Millisecond
	}
	if opt.RetryCap <= 0 {
		opt.RetryCap = 500 * time.Millisecond
	}
	man, err := loadBlobManifest(bs, opt.Prefix, readRetry())
	if err != nil {
		return nil, err
	}
	t := &BlobTier{
		bs:      bs,
		opt:     opt,
		w:       w,
		man:     man,
		flushed: man,
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return nil, errors.New("storage: WAL is closed")
	}
	if w.tier != nil {
		return nil, errors.New("storage: WAL already has a blob tier attached")
	}
	if blobEnd := man.durableSeq(); blobEnd > w.seq {
		// The blob tier is ahead of the local log. Only a virgin local
		// directory may adopt it (fast-forward); anything else means two
		// diverged histories and silently picking one would lose data.
		localCkpts, err := w.listCheckpoints()
		if err != nil {
			return nil, err
		}
		virgin := w.seq == 0 && w.segBase == 0 &&
			w.segEnd == int64(segHeaderLen) && len(localCkpts) == 0
		if !virgin {
			return nil, fmt.Errorf(
				"storage: blob tier is at seq %d but the local WAL holds diverged state at seq %d",
				blobEnd, w.seq)
		}
		if err := w.newSegment(blobEnd); err != nil {
			return nil, err
		}
		// Drop the virgin base-0 segment file: left in place it would be
		// mistaken for a sealed segment claiming records it never held.
		if err := os.Remove(w.segPath(0)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		if err := w.syncDir(); err != nil {
			return nil, err
		}
		if ck, ok := man.newestCkpt(); ok {
			w.ckptSeq = ck
		}
	}
	w.tier = t
	go t.run()
	t.Kick()
	return t, nil
}

// Kick nudges the uploader: something sealed. Non-blocking; safe under
// the WAL's lock.
func (t *BlobTier) Kick() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// Stats returns the tier's accounting. UploadLag and PendingSegments are
// computed against the WAL's current sealed state. (The WAL snapshot is
// taken before the tier lock — w.mu is ordered before tier.mu.)
func (t *BlobTier) Stats() TierStats {
	sealed, sealedEnd, _ := t.w.sealedLocal()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.DurableSeq = t.man.durableSeq()
	if sealedEnd > st.DurableSeq {
		st.UploadLag = sealedEnd - st.DurableSeq
	}
	for _, s := range sealed {
		if !t.man.hasSeg(s.base) {
			st.PendingSegments++
		}
	}
	return st
}

// noteReleased counts a local segment file the WAL deleted because this
// tier holds it.
func (t *BlobTier) noteReleased() {
	t.mu.Lock()
	t.st.LocalReleased++
	t.mu.Unlock()
}

// Barrier runs upload passes until everything sealed is blob-durable or
// the deadline passes — the test/benchmark hook for "the tier has caught
// up"; production code never needs it (the uploader converges on its
// own).
func (t *BlobTier) Barrier(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	retry := &blobRetry{base: t.opt.RetryBase, cap: t.opt.RetryCap, stop: t.stop}
	for i := 0; ; i++ {
		err := t.pass()
		if err == nil && t.caughtUp() {
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = errors.New("uploads still pending")
			}
			return fmt.Errorf("storage: blob tier barrier: %w", err)
		}
		retry.sleep(i)
	}
}

// caughtUp reports whether every sealed local artifact is blob-durable
// and the manifest is flushed.
func (t *BlobTier) caughtUp() bool {
	sealed, _, ckpts := t.w.sealedLocal()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dirty {
		return false
	}
	for _, s := range sealed {
		if !t.man.hasSeg(s.base) {
			return false
		}
	}
	for _, seq := range ckpts {
		if !t.man.hasCkpt(seq) {
			return false
		}
	}
	return true
}

// Close stops the uploader and waits for it to exit. In-flight blob
// operations finish; pending uploads resume on the next attach.
func (t *BlobTier) Close() {
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	<-t.done
}

// run is the uploader goroutine: wait for a kick, then run passes until
// one succeeds with nothing left to do.
func (t *BlobTier) run() {
	defer close(t.done)
	retry := &blobRetry{base: t.opt.RetryBase, cap: t.opt.RetryCap, stop: t.stop}
	for {
		select {
		case <-t.stop:
			return
		case <-t.kick:
		}
		for i := 0; ; i++ {
			select {
			case <-t.stop:
				return
			default:
			}
			if err := t.pass(); err == nil {
				break
			}
			t.mu.Lock()
			t.st.UploadRetries++
			t.mu.Unlock()
			retry.sleep(i)
		}
	}
}

// pass runs one upload sweep: checkpoints newest-first (a fresh follower
// seeds from the newest one, so it matters most), then sealed segments
// oldest-first (extending the contiguous blob-durable range), then the
// manifest flush, then local release. Idempotent; an error leaves the
// in-memory manifest consistent and the caller retries.
func (t *BlobTier) pass() error {
	t.passMu.Lock()
	defer t.passMu.Unlock()
	sealed, _, ckpts := t.w.sealedLocal()
	for i := len(ckpts) - 1; i >= 0; i-- {
		seq := ckpts[i]
		if t.hasCkpt(seq) {
			continue
		}
		data, err := os.ReadFile(t.w.ckptPath(seq))
		if errors.Is(err, os.ErrNotExist) {
			continue // pruned since the listing
		}
		if err != nil {
			return err
		}
		if err := t.bs.Put(t.opt.Prefix+blobCkptKey(seq), data); err != nil {
			return err
		}
		obj := BlobObject{Seq: seq, Size: uint64(len(data)), CRC: crc32.Checksum(data, crcTable)}
		// Stamp the index root from the snapshot header so backup
		// verification against a live store is a manifest read, not a
		// checkpoint download.
		obj.Root, obj.HasRoot = SnapshotRootHash(data)
		t.mu.Lock()
		t.man.Ckpts = insertCkpt(t.man.Ckpts, obj)
		t.dirty = true
		t.st.UploadedCheckpoints++
		t.st.BytesUploaded += uint64(len(data))
		t.mu.Unlock()
	}
	for _, s := range sealed {
		if t.hasSeg(s.base) {
			continue
		}
		data, err := os.ReadFile(s.path)
		if errors.Is(err, os.ErrNotExist) {
			continue // released or checkpoint-swept since the listing
		}
		if err != nil {
			return err
		}
		if err := t.bs.Put(t.opt.Prefix+blobSegKey(s.base), data); err != nil {
			return err
		}
		t.mu.Lock()
		t.man.Segs = insertSeg(t.man.Segs, BlobSegment{
			Base: s.base, End: s.end, Size: uint64(len(data)), CRC: crc32.Checksum(data, crcTable)})
		t.dirty = true
		t.st.UploadedSegments++
		t.st.BytesUploaded += uint64(len(data))
		t.mu.Unlock()
	}
	if err := t.flushManifest(); err != nil {
		return err
	}
	if t.opt.ReleaseLocal {
		if err := t.w.releaseLocal(t); err != nil {
			return err
		}
	}
	return nil
}

// flushManifest durably writes the in-memory manifest if it has entries
// the blob store's copy lacks.
func (t *BlobTier) flushManifest() error {
	t.mu.Lock()
	if !t.dirty {
		t.mu.Unlock()
		return nil
	}
	man := t.man // entries only append; a snapshot of the slices is safe
	t.mu.Unlock()
	data, err := EncodeBlobManifest(man)
	if err != nil {
		return err
	}
	if err := t.bs.Put(t.opt.Prefix+blobManifestKey, data); err != nil {
		return err
	}
	t.mu.Lock()
	t.flushed = man
	t.dirty = len(t.man.Ckpts) != len(man.Ckpts) || len(t.man.Segs) != len(man.Segs)
	t.st.ManifestWrites++
	t.mu.Unlock()
	return nil
}

func (t *BlobTier) hasCkpt(seq uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.man.hasCkpt(seq)
}

func (t *BlobTier) hasSeg(base uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.man.hasSeg(base)
}

// segDurableFlushed reports whether the segment is listed by the last
// DURABLY WRITTEN manifest — the bar a local file must clear before
// deletion (an in-memory-only entry would be forgotten by a crash,
// orphaning the object and losing the history).
func (t *BlobTier) segDurableFlushed(base uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushed.hasSeg(base)
}

// flushedNewestCkpt returns the newest checkpoint in the durable
// manifest.
func (t *BlobTier) flushedNewestCkpt() (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushed.newestCkpt()
}

// manifestSegs returns a snapshot of the manifest's segment entries.
func (t *BlobTier) manifestSegs() []BlobSegment {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.man.Segs
}

// manifestCkptSeqs returns the manifest's checkpoint seqs, ascending.
func (t *BlobTier) manifestCkptSeqs() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint64, len(t.man.Ckpts))
	for i, c := range t.man.Ckpts {
		out[i] = c.Seq
	}
	return out
}

// fetchSegment reads one sealed segment back from the tier, verified
// against the manifest.
func (t *BlobTier) fetchSegment(base uint64) ([]byte, error) {
	t.mu.Lock()
	var ent *BlobSegment
	for i := range t.man.Segs {
		if t.man.Segs[i].Base == base {
			ent = &t.man.Segs[i]
			break
		}
	}
	t.mu.Unlock()
	if ent == nil {
		return nil, fmt.Errorf("%w: base %d", ErrNoBlobSegment, base)
	}
	var retries uint64
	data, err := blobFetch(t.bs, t.opt.Prefix+blobSegKey(base), ent.Size, ent.CRC, readRetry(), &retries)
	t.mu.Lock()
	t.st.FetchRetries += retries
	if err == nil {
		t.st.Fetches++
		t.st.FetchBytes += uint64(len(data))
	}
	t.mu.Unlock()
	return data, err
}

// fetchCheckpoint reads one checkpoint snapshot back from the tier,
// verified against the manifest. ErrNoVersion when the manifest does not
// list it.
func (t *BlobTier) fetchCheckpoint(seq uint64) ([]byte, error) {
	t.mu.Lock()
	var ent *BlobObject
	for i := range t.man.Ckpts {
		if t.man.Ckpts[i].Seq == seq {
			ent = &t.man.Ckpts[i]
			break
		}
	}
	t.mu.Unlock()
	if ent == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoVersion, seq)
	}
	var retries uint64
	data, err := blobFetch(t.bs, t.opt.Prefix+blobCkptKey(seq), ent.Size, ent.CRC, readRetry(), &retries)
	t.mu.Lock()
	t.st.FetchRetries += retries
	if err == nil {
		t.st.Fetches++
		t.st.FetchBytes += uint64(len(data))
	}
	t.mu.Unlock()
	return data, err
}

// insertCkpt inserts c keeping the slice ascending by Seq (idempotent on
// duplicates). Copy-on-write: manifest snapshots taken by flushManifest
// must not see in-place mutation.
func insertCkpt(s []BlobObject, c BlobObject) []BlobObject {
	out := make([]BlobObject, 0, len(s)+1)
	added := false
	for _, e := range s {
		if e.Seq == c.Seq {
			return s
		}
		if !added && e.Seq > c.Seq {
			out = append(out, c)
			added = true
		}
		out = append(out, e)
	}
	if !added {
		out = append(out, c)
	}
	return out
}

// insertSeg inserts g keeping the slice ascending by Base (idempotent on
// duplicates).
func insertSeg(s []BlobSegment, g BlobSegment) []BlobSegment {
	out := make([]BlobSegment, 0, len(s)+1)
	added := false
	for _, e := range s {
		if e.Base == g.Base {
			return s
		}
		if !added && e.Base > g.Base {
			out = append(out, g)
			added = true
		}
		out = append(out, e)
	}
	if !added {
		out = append(out, g)
	}
	return out
}

// ------------------------------------------------- blob-seeded bootstrap

// ReadBlobManifest loads and decodes the tier manifest under prefix —
// the hash-compare backup-verification entry point. Each checkpoint
// entry carries the index root its snapshot was stamped with (HasRoot),
// so comparing a live store's root against the newest entry verifies
// the backup without downloading a single object byte. A missing
// manifest decodes as an empty (fresh) tier.
func ReadBlobManifest(bs blob.Store, prefix string) (BlobManifest, error) {
	if prefix != "" && prefix[len(prefix)-1] != '/' {
		prefix += "/"
	}
	return loadBlobManifest(bs, prefix, readRetry())
}

// BlobLatest reads the newest checkpoint directly from a blob tier —
// no WAL, no leader connection — verified against the tier's manifest.
// The first half of seeding a follower from the object store.
func BlobLatest(bs blob.Store, prefix string) (uint64, []byte, error) {
	if prefix != "" && prefix[len(prefix)-1] != '/' {
		prefix += "/"
	}
	man, err := loadBlobManifest(bs, prefix, readRetry())
	if err != nil {
		return 0, nil, err
	}
	seq, ok := man.newestCkpt()
	if !ok {
		return 0, nil, ErrNoVersion
	}
	var ent BlobObject
	for _, c := range man.Ckpts {
		if c.Seq == seq {
			ent = c
		}
	}
	data, err := blobFetch(bs, prefix+blobCkptKey(seq), ent.Size, ent.CRC, readRetry(), nil)
	if err != nil {
		return 0, nil, err
	}
	return seq, data, nil
}

// ReplayBlobSince streams every blob-durable batch with sequence number
// > since, in order, straight from the tier's sealed segments — the
// second half of seeding a follower: restore BlobLatest's checkpoint,
// replay this, then attach a live tail at the returned sequence number.
// Returns the last sequence number delivered (== since when the tier
// holds nothing newer). A tier whose segments cannot reach past since
// contiguously reports ErrCorruptWAL, mirroring the WAL's gap semantics.
func ReplayBlobSince(bs blob.Store, prefix string, since uint64, fn func(seq uint64, payload []byte) error) (uint64, error) {
	if prefix != "" && prefix[len(prefix)-1] != '/' {
		prefix += "/"
	}
	man, err := loadBlobManifest(bs, prefix, readRetry())
	if err != nil {
		return since, err
	}
	next := since
	for _, s := range man.Segs {
		if s.End <= since {
			continue
		}
		if s.Base > next {
			return next, fmt.Errorf("%w: blob tier gap: segment starts after %d but batch %d 	is missing",
				ErrCorruptWAL, s.Base, next+1)
		}
		data, err := blobFetch(bs, prefix+blobSegKey(s.Base), s.Size, s.CRC, readRetry(), nil)
		if err != nil {
			return next, err
		}
		r := bytes.NewReader(data)
		if err := checkSegHeader(r, s.Base); err != nil {
			return next, err
		}
		if _, err := scanRecords(r, s.Base, func(seq uint64, payload []byte) error {
			if seq <= since {
				return nil
			}
			if seq != next+1 {
				return fmt.Errorf("%w: blob tier gap: batch %d follows %d", ErrCorruptWAL, seq, next)
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			next = seq
			return nil
		}); err != nil {
			return next, err
		}
		if next < s.End {
			// A verified sealed segment must hold every record up to its
			// manifest end; anything less is a lying manifest.
			return next, fmt.Errorf("%w: blob segment %d ends at %d, manifest claims %d",
				ErrCorruptWAL, s.Base, next, s.End)
		}
	}
	return next, nil
}
