package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// payloadN builds a distinguishable fake batch payload.
func payloadN(i int) []byte { return []byte(fmt.Sprintf("batch-%04d", i)) }

// collect replays everything after since into a map seq→payload.
func collect(t *testing.T, w *WAL, since uint64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	if err := w.ReplaySince(since, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("ReplaySince(%d): %v", since, err)
	}
	return out
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 5; i++ {
		seq, err := w.AppendBatch(payloadN(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	got := collect(t, w, 0)
	if len(got) != 5 {
		t.Fatalf("replayed %d batches, want 5", len(got))
	}
	for i := 1; i <= 5; i++ {
		if got[uint64(i)] != string(payloadN(i)) {
			t.Fatalf("batch %d replayed as %q", i, got[uint64(i)])
		}
	}
	if got := collect(t, w, 3); len(got) != 2 || got[4] == "" || got[5] == "" {
		t.Fatalf("ReplaySince(3) = %v, want batches 4 and 5", got)
	}
}

func TestWALReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := w.AppendBatch(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Seq() != 3 {
		t.Fatalf("reopened seq = %d, want 3", w2.Seq())
	}
	if seq, err := w2.AppendBatch(payloadN(4)); err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq %d, err %v", seq, err)
	}
	if got := collect(t, w2, 0); len(got) != 4 {
		t.Fatalf("replayed %d batches after reopen, want 4", len(got))
	}
}

func TestWALCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 3; i++ {
		if _, err := w.AppendBatch(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := w.Checkpoint([]byte("snapshot-at-3"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("checkpoint version %d, want 3", v)
	}
	// The old segment is gone, the checkpoint readable as a version.
	if data, err := w.Get(3); err != nil || string(data) != "snapshot-at-3" {
		t.Fatalf("Get(3) = %q, %v", data, err)
	}
	if got := collect(t, w, 3); len(got) != 0 {
		t.Fatalf("log not truncated: replay after checkpoint returned %v", got)
	}
	segs, _ := w.listSegments()
	if !reflect.DeepEqual(segs, []uint64{3}) {
		t.Fatalf("segments after checkpoint: %v, want [3]", segs)
	}
	// Appends continue after the checkpoint and replay from it.
	if seq, err := w.AppendBatch(payloadN(4)); err != nil || seq != 4 {
		t.Fatalf("append after checkpoint: seq %d, err %v", seq, err)
	}
	if got := collect(t, w, 3); len(got) != 1 || got[4] != string(payloadN(4)) {
		t.Fatalf("replay after checkpoint = %v", got)
	}
}

func TestWALBackendVersions(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := w.Latest(); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("Latest on empty WAL: %v, want ErrNoVersion", err)
	}
	if _, err := w.Put([]byte("base")); err != nil { // Put == Checkpoint
		t.Fatal(err)
	}
	if _, err := w.AppendBatch(payloadN(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Checkpoint([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatch(payloadN(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Checkpoint([]byte("two")); err != nil {
		t.Fatal(err)
	}
	vs, err := w.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs, []uint64{0, 1, 2}) {
		t.Fatalf("versions %v, want [0 1 2]", vs)
	}
	v, data, err := w.Latest()
	if err != nil || v != 2 || string(data) != "two" {
		t.Fatalf("Latest = %d %q %v", v, data, err)
	}
	if err := w.Prune(2); err != nil {
		t.Fatal(err)
	}
	vs, _ = w.Versions()
	if !reflect.DeepEqual(vs, []uint64{2}) {
		t.Fatalf("versions after prune: %v, want [2]", vs)
	}
}

func TestWALGroupCommitSync(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 7; i++ {
		if _, err := w.AppendBatch(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// All appends visible despite never hitting the SyncEvery threshold.
	if got := collect(t, w, 0); len(got) != 7 {
		t.Fatalf("replayed %d, want 7", len(got))
	}
}

func TestWALReopenRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := w.AppendBatch(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	segs, _ := w.listSegments()
	seg := w.segPath(segs[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 3 bytes.
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Seq() != 2 {
		t.Fatalf("seq after torn-tail repair = %d, want 2", w2.Seq())
	}
	// The torn bytes are physically gone and the next append reuses seq 3.
	st, _ := os.Stat(seg)
	if st.Size() >= int64(len(data)) {
		t.Fatalf("torn tail not truncated: %d >= %d", st.Size(), len(data))
	}
	if seq, err := w2.AppendBatch([]byte("replacement")); err != nil || seq != 3 {
		t.Fatalf("append after repair: seq %d, err %v", seq, err)
	}
	got := collect(t, w2, 0)
	if len(got) != 3 || got[3] != "replacement" {
		t.Fatalf("replay after repair = %v", got)
	}
}

func TestWALReopenRepairsTornHeader(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	segs, _ := w.listSegments()
	seg := w.segPath(segs[0])
	if err := os.WriteFile(seg, []byte("LTW"), 0o644); err != nil { // torn mid-header
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Seq() != 0 {
		t.Fatalf("seq after header repair = %d, want 0", w2.Seq())
	}
	if _, err := w2.AppendBatch([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w2, 0); len(got) != 1 {
		t.Fatalf("replay after header repair = %v", got)
	}
}

func TestWALCorruptRecordEndsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := w.AppendBatch(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := w.listSegments()
	seg := w.segPath(segs[0])
	data, _ := os.ReadFile(seg)
	// Flip a byte inside the second record's payload.
	recLen := recordHeaderLen + len(payloadN(1))
	off := segHeaderLen + recLen + recordHeaderLen + 2
	data[off] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Only batch 1 survives: the corrupt record and everything after it
	// are discarded (and truncated away by the reopen repair).
	if got := collect(t, w2, 0); len(got) != 1 || got[1] != string(payloadN(1)) {
		t.Fatalf("replay after corruption = %v, want just batch 1", got)
	}
	if w2.Seq() != 1 {
		t.Fatalf("seq after corruption repair = %d, want 1", w2.Seq())
	}
}

func TestOpsCodecRoundtrip(t *testing.T) {
	sub := NodeRec{Kind: kindElement, Tag: "item", Attrs: []AttrRec{{Name: "id", Value: "7"}},
		Children: []NodeRec{{Kind: kindText, Data: "hello"}}}
	ops := []Op{
		{Kind: OpInsert, Path: []uint32{0, 2}, Idx: 1, Labels: []uint64{10, 12, 99}, Sub: &sub},
		{Kind: OpDelete, Path: []uint32{3}, Labels: []uint64{42}},
		{Kind: OpMove, Path: []uint32{1, 0}, Dst: []uint32{}, Idx: 0, Labels: []uint64{5, 6}},
		{Kind: OpCompact},
	}
	payload, err := EncodeOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOps(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, ops)
	}
	// Trailing garbage must be rejected.
	if _, err := DecodeOps(append(payload, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Non-increasing label runs must be rejected by the encoder.
	if _, err := EncodeOps([]Op{{Kind: OpDelete, Path: nil, Labels: []uint64{42}}, {Kind: OpInsert, Path: nil, Labels: []uint64{5, 5}, Sub: &sub}}); err == nil {
		t.Fatal("non-increasing labels encoded")
	}
}

func TestWALSweepsOrphanedCheckpointTemps(t *testing.T) {
	dir := t.TempDir()
	// A crash between CreateTemp and Rename leaves a ckpt-*.tmp behind.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-123456789.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := os.Stat(filepath.Join(dir, "ckpt-123456789.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphaned checkpoint temp file not swept on open")
	}
}

func TestWALForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Checkpoint([]byte("s")); err != nil {
		t.Fatal(err)
	}
	// Leftover temp files and strangers must not be parsed as versions.
	for _, name := range []string{"ckpt-123.tmp", "notes.txt", "wal-x.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := w.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs, []uint64{0}) {
		t.Fatalf("versions with foreign files: %v, want [0]", vs)
	}
}

func TestScanRecordsStopsAtGap(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(frameRecord(1, []byte("a")))
	buf.Write(frameRecord(3, []byte("c"))) // gap: 2 missing
	n := 0
	good, err := scanRecords(bytes.NewReader(buf.Bytes()), 0, func(seq uint64, payload []byte) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered %d records across a gap, want 1", n)
	}
	if want := int64(recordHeaderLen + 1); good != want {
		t.Fatalf("durable prefix %d, want %d", good, want)
	}
}
