// Package storage is the persistence layer: a versioned binary snapshot
// codec and pluggable backends that hold snapshot versions. It sits below
// internal/document — the codec works on a neutral Image so the document
// layer depends on storage, never the other way around, leaving a clean
// seam for write-ahead logging and sharding backends.
//
// Wire formats:
//
//	v2 (current) — length-prefixed binary: a magic header, uvarint scalar
//	fields, delta-encoded labels (they are strictly increasing, so gaps
//	compress to a uvarint each), a bit-packed tombstone map, and a
//	pre-order DOM walk with length-prefixed strings.
//	v1 (read-only) — the original encoding/gob stream; ReadSnapshot
//	detects it by the missing magic and keeps restoring it forever.
package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Image is the codec-neutral picture of a labeled document: the exact
// L-Tree state (labels, tombstones, height, parameters) plus the DOM
// shape. The tree structure is implicit in the labels (paper §4.2), so
// nothing else is needed to restore with bit-identical labels.
type Image struct {
	F, S    int
	Wide    bool
	Height  int
	Labels  []uint64
	Deleted []bool // nil when no tombstones
	Root    NodeRec

	// IndexRoot, when HasIndexRoot is set, is the writer's index root
	// hash at snapshot time — an integrity annotation backup
	// verification and seeded followers compare against a recomputed
	// root. The writer emits it only when present, so images that never
	// carried one re-encode byte-identically (golden stability).
	IndexRoot    [32]byte
	HasIndexRoot bool
}

// NodeRec is the recursive DOM image. Kind mirrors xmldom.Kind (0 =
// element, 1 = text); the DOM is stored structurally so token boundaries
// survive exactly (textual XML would merge adjacent text nodes on
// reparse).
type NodeRec struct {
	Kind     int
	Tag      string
	Data     string
	Attrs    []AttrRec
	Children []NodeRec
}

// AttrRec is one element attribute. Field names match xmldom.Attr so v1
// gob streams (which embedded that type) decode into it transparently.
type AttrRec struct {
	Name  string
	Value string
}

// Wire constants for format v2.
var magic = [8]byte{'L', 'T', 'S', 'N', 'A', 'P', 0, 2}

const (
	flagWide       = 1 << 0
	flagTombstones = 1 << 1
	// flagIndexRoot marks 32 raw index-root-hash bytes immediately after
	// the flags byte. Kept header-adjacent so SnapshotRootHash can peek
	// it without decoding the document; the writer emits the bit (and
	// bytes) only for images that explicitly carry a hash, keeping every
	// pre-existing byte stream and its golden fixtures unchanged.
	flagIndexRoot = 1 << 2

	kindElement = 0
	kindText    = 1

	// maxStr bounds any single length prefix so a corrupt stream cannot
	// force a huge allocation before the read fails.
	maxStr = 1 << 30
)

// ErrCorrupt reports a malformed v2 stream.
var ErrCorrupt = errors.New("storage: corrupt snapshot")

// WriteSnapshot encodes the image in format v2.
func WriteSnapshot(w io.Writer, img *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	flags := byte(0)
	if img.Wide {
		flags |= flagWide
	}
	if img.Deleted != nil {
		flags |= flagTombstones
	}
	if img.HasIndexRoot {
		flags |= flagIndexRoot
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	if img.HasIndexRoot {
		if _, err := bw.Write(img.IndexRoot[:]); err != nil {
			return err
		}
	}
	putUvarint(bw, uint64(img.F))
	putUvarint(bw, uint64(img.S))
	putUvarint(bw, uint64(img.Height))
	putUvarint(bw, uint64(len(img.Labels)))
	prev := uint64(0)
	for i, lab := range img.Labels {
		if i == 0 {
			putUvarint(bw, lab)
		} else {
			if lab <= prev {
				return fmt.Errorf("storage: labels not strictly increasing at %d", i)
			}
			putUvarint(bw, lab-prev)
		}
		prev = lab
	}
	if img.Deleted != nil {
		if len(img.Deleted) != len(img.Labels) {
			return fmt.Errorf("storage: %d tombstone flags for %d labels", len(img.Deleted), len(img.Labels))
		}
		bits := make([]byte, (len(img.Deleted)+7)/8)
		for i, dead := range img.Deleted {
			if dead {
				bits[i/8] |= 1 << (i % 8)
			}
		}
		if _, err := bw.Write(bits); err != nil {
			return err
		}
	}
	if err := writeNode(bw, &img.Root); err != nil {
		return err
	}
	return bw.Flush()
}

// SnapshotRootHash peeks the index root hash out of an encoded v2
// snapshot without decoding the document — the flags byte and hash
// bytes sit right after the magic, so backup verification and manifest
// stamping read 41 bytes, not the image. ok is false for v1 streams,
// short streams, and v2 streams written without a hash.
func SnapshotRootHash(data []byte) (root [32]byte, ok bool) {
	if len(data) < len(magic)+1 || !bytes.Equal(data[:len(magic)], magic[:]) {
		return root, false
	}
	flags := data[len(magic)]
	if flags&flagIndexRoot == 0 || len(data) < len(magic)+1+len(root) {
		return root, false
	}
	copy(root[:], data[len(magic)+1:])
	return root, true
}

// ReadSnapshot decodes a snapshot stream, sniffing the version: streams
// with the "LTSNAP" magic carry a binary format version (2 today; a
// higher one is reported as unsupported rather than mis-decoded),
// anything else is handed to the v1 gob decoder.
func ReadSnapshot(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magic))
	if err == nil && bytes.Equal(head[:6], magic[:6]) {
		if version := uint16(head[6])<<8 | uint16(head[7]); version != 2 {
			return nil, fmt.Errorf("storage: restore: unsupported snapshot format %d", version)
		}
		return readV2(br)
	}
	return readV1(br)
}

// readV2 decodes the current binary format (the magic is still unread).
func readV2(br *bufio.Reader) (*Image, error) {
	if _, err := io.ReadFull(br, make([]byte, len(magic))); err != nil {
		return nil, err
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	img := &Image{Wide: flags&flagWide != 0}
	if flags&flagIndexRoot != 0 {
		if _, err := io.ReadFull(br, img.IndexRoot[:]); err != nil {
			return nil, err
		}
		img.HasIndexRoot = true
	}
	if img.F, err = getInt(br); err != nil {
		return nil, err
	}
	if img.S, err = getInt(br); err != nil {
		return nil, err
	}
	if img.Height, err = getInt(br); err != nil {
		return nil, err
	}
	n, err := getInt(br)
	if err != nil {
		return nil, err
	}
	if n > maxStr {
		return nil, ErrCorrupt
	}
	// Grow the slice as data actually arrives: a corrupt count must not
	// pre-allocate gigabytes before the first read fails (every label
	// costs at least one stream byte, so memory tracks stream length).
	img.Labels = make([]uint64, 0, min(n, 1<<16))
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = v
		} else {
			next := prev + v
			if next < prev || v == 0 {
				return nil, ErrCorrupt
			}
			prev = next
		}
		img.Labels = append(img.Labels, prev)
	}
	if flags&flagTombstones != 0 {
		bits := make([]byte, (n+7)/8)
		if _, err := io.ReadFull(br, bits); err != nil {
			return nil, err
		}
		img.Deleted = make([]bool, n)
		for i := range img.Deleted {
			img.Deleted[i] = bits[i/8]&(1<<(i%8)) != 0
		}
	}
	root, err := readNode(br, 0)
	if err != nil {
		return nil, err
	}
	img.Root = *root
	return img, nil
}

// writeNode emits one DOM node pre-order.
func writeNode(bw *bufio.Writer, n *NodeRec) error {
	switch n.Kind {
	case kindElement:
		if err := bw.WriteByte(kindElement); err != nil {
			return err
		}
		putString(bw, n.Tag)
		putUvarint(bw, uint64(len(n.Attrs)))
		for _, a := range n.Attrs {
			putString(bw, a.Name)
			putString(bw, a.Value)
		}
		putUvarint(bw, uint64(len(n.Children)))
		for i := range n.Children {
			if err := writeNode(bw, &n.Children[i]); err != nil {
				return err
			}
		}
		return nil
	case kindText:
		if err := bw.WriteByte(kindText); err != nil {
			return err
		}
		putString(bw, n.Data)
		return nil
	default:
		return fmt.Errorf("storage: unknown node kind %d", n.Kind)
	}
}

// maxDepth caps DOM recursion so a corrupt stream cannot blow the stack.
const maxDepth = 1 << 16

func readNode(br *bufio.Reader, depth int) (*NodeRec, error) {
	if depth > maxDepth {
		return nil, ErrCorrupt
	}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindElement:
		n := &NodeRec{Kind: kindElement}
		if n.Tag, err = getString(br); err != nil {
			return nil, err
		}
		na, err := getInt(br)
		if err != nil || na > maxStr {
			return nil, firstErr(err)
		}
		for i := 0; i < na; i++ {
			var a AttrRec
			if a.Name, err = getString(br); err != nil {
				return nil, err
			}
			if a.Value, err = getString(br); err != nil {
				return nil, err
			}
			n.Attrs = append(n.Attrs, a)
		}
		nc, err := getInt(br)
		if err != nil || nc > maxStr {
			return nil, firstErr(err)
		}
		for i := 0; i < nc; i++ {
			c, err := readNode(br, depth+1)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, *c)
		}
		return n, nil
	case kindText:
		n := &NodeRec{Kind: kindText}
		if n.Data, err = getString(br); err != nil {
			return nil, err
		}
		return n, nil
	default:
		return nil, fmt.Errorf("%w: node kind %d", ErrCorrupt, kind)
	}
}

func firstErr(err error) error {
	if err != nil {
		return err
	}
	return ErrCorrupt
}

func putUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	bw.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func putString(bw *bufio.Writer, s string) {
	putUvarint(bw, uint64(len(s)))
	bw.WriteString(s)
}

func getInt(br *bufio.Reader) (int, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if v > maxStr {
		return 0, ErrCorrupt
	}
	return int(v), nil
}

func getString(br *bufio.Reader) (string, error) {
	n, err := getInt(br)
	if err != nil {
		return "", err
	}
	// Chunked reads for the same reason as the label loop: a corrupt
	// length must fail after one chunk, not allocate it all up front.
	buf := make([]byte, 0, min(n, 1<<13))
	var chunk [1 << 13]byte
	for len(buf) < n {
		want := min(n-len(buf), len(chunk))
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return "", err
		}
		buf = append(buf, chunk[:want]...)
	}
	return string(buf), nil
}

// ---------------------------------------------------------------- v1 gob

// v1Snapshot mirrors the original gob wire image field for field (gob
// matches struct fields by name, so the package move is invisible to old
// streams).
type v1Snapshot struct {
	Format  int
	F, S    int
	Wide    bool
	Height  int
	Labels  []uint64
	Deleted []bool
	Root    NodeRec
}

const v1Format = 1

func readV1(br *bufio.Reader) (*Image, error) {
	var snap v1Snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("storage: restore: %w", err)
	}
	if snap.Format != v1Format {
		return nil, fmt.Errorf("storage: restore: unsupported format %d", snap.Format)
	}
	return &Image{
		F:       snap.F,
		S:       snap.S,
		Wide:    snap.Wide,
		Height:  snap.Height,
		Labels:  snap.Labels,
		Deleted: snap.Deleted,
		Root:    snap.Root,
	}, nil
}

// WriteLegacySnapshot emits the legacy v1 gob format, for operators who
// need a snapshot an old binary can still read (and for back-compat
// tests). New code should use WriteSnapshot.
func WriteLegacySnapshot(w io.Writer, img *Image) error {
	return gob.NewEncoder(w).Encode(v1Snapshot{
		Format:  v1Format,
		F:       img.F,
		S:       img.S,
		Wide:    img.Wide,
		Height:  img.Height,
		Labels:  img.Labels,
		Deleted: img.Deleted,
		Root:    img.Root,
	})
}
