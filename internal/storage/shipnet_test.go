package storage_test

// Torture tests for the wire transport (shipnet.go): catch-up + live
// tail parity with the in-process tailer, concurrent Close vs Next over
// the socket, mid-stream connection drops with resume-from-applied-seq,
// and server-side lease release on client disconnect (a vanished client
// must never hold back truncation forever).

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ltree-db/ltree/internal/storage"
)

// pipeServer wires a ShipServer over net.Pipe and records every
// client-side conn so tests can sever the transport mid-stream.
type pipeServer struct {
	srv   *storage.ShipServer
	mu    sync.Mutex
	conns []net.Conn
}

func newPipeServer(t *testing.T, w *storage.WAL) *pipeServer {
	t.Helper()
	srv, err := storage.NewShipServer(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &pipeServer{srv: srv}
}

func (p *pipeServer) dial() (net.Conn, error) {
	c1, c2 := net.Pipe()
	go p.srv.ServeConn(c2)
	p.mu.Lock()
	p.conns = append(p.conns, c1)
	p.mu.Unlock()
	return c1, nil
}

// sever closes the newest client-side conn: a network drop.
func (p *pipeServer) sever() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.conns) > 0 {
		p.conns[len(p.conns)-1].Close()
	}
}

func (p *pipeServer) dials() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

func openRemote(t *testing.T, p *pipeServer) *storage.RemoteTailSource {
	t.Helper()
	src, err := storage.OpenRemoteTail(p.dial, storage.RemoteOptions{DialBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

// TestRemoteTailerCatchUpThenLiveTail is the in-process tailer contract
// run over the wire: catch-up in order, live tail after appends, and
// the TailLatest bootstrap (checkpoint snapshot + attach point) all
// crossing a real byte transport.
func TestRemoteTailerCatchUpThenLiveTail(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 5)

	p := newPipeServer(t, w)
	src := openRemote(t, p)
	sh, err := storage.NewShipper(src)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()
	for i := 1; i <= 5; i++ {
		seq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("catch-up next %d: %v", i, err)
		}
		if seq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("catch-up next %d: got seq=%d payload=%q", i, seq, got)
		}
	}
	if _, _, ok, err := tail.TryNext(); err != nil || ok {
		t.Fatalf("TryNext at the durable end: ok=%v err=%v", ok, err)
	}

	// Live tail: appends land on the leader, the remote tailer streams
	// them (durability notify crosses the wire).
	appendN(t, w, 6, 8)
	for i := 6; i <= 8; i++ {
		seq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("live next %d: %v", i, err)
		}
		if seq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("live next %d: got seq=%d payload=%q", i, seq, got)
		}
	}

	// Bootstrap: the checkpoint snapshot crosses the wire paired with
	// the attach point.
	if _, err := w.Checkpoint([]byte("snapshot-at-8")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 9, 10)
	seq, snap, tail2, err := sh.TailLatest()
	if err != nil {
		t.Fatal(err)
	}
	defer tail2.Close()
	if seq != 8 || string(snap) != "snapshot-at-8" {
		t.Fatalf("remote TailLatest = (%d, %q), want (8, snapshot-at-8)", seq, snap)
	}
	for i := 9; i <= 10; i++ {
		gotSeq, got, err := tail2.Next()
		if err != nil {
			t.Fatalf("bootstrap next %d: %v", i, err)
		}
		if gotSeq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("bootstrap next %d: got seq=%d payload=%q", i, gotSeq, got)
		}
	}
}

// TestRemoteCloseVsNextTorture races Close against a blocked/streaming
// Next over the socket, alternating which side closes (the tailer or
// the remote source). Every round must unblock promptly with one of the
// two terminal close errors — never a hang, never a spurious error.
func TestRemoteCloseVsNextTorture(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 3)
	p := newPipeServer(t, w)

	rounds := 24
	if testing.Short() {
		rounds = 8
	}
	for i := 0; i < rounds; i++ {
		src, err := storage.OpenRemoteTail(p.dial, storage.RemoteOptions{DialBackoff: time.Millisecond})
		if err != nil {
			t.Fatalf("round %d: dial: %v", i, err)
		}
		sh, err := storage.NewShipper(src)
		if err != nil {
			t.Fatal(err)
		}
		tail := sh.Tail(0)
		done := make(chan error, 1)
		go func() {
			for {
				if _, _, err := tail.Next(); err != nil {
					done <- err
					return
				}
			}
		}()
		// Vary the interleave: sometimes the closer races the catch-up
		// sweep, sometimes it hits a parked Next.
		if i%3 == 0 {
			time.Sleep(time.Duration(i%5) * time.Millisecond)
		}
		if i%2 == 0 {
			tail.Close()
		} else {
			src.Close()
		}
		select {
		case err := <-done:
			if !errors.Is(err, storage.ErrTailerClosed) && !errors.Is(err, storage.ErrSourceClosed) {
				t.Fatalf("round %d: Next returned %v, want ErrTailerClosed or ErrSourceClosed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: Next did not unblock after close", i)
		}
		tail.Close()
		src.Close()
	}
}

// TestRemoteTailerReconnectResumes drops the connection mid-stream —
// during catch-up and again while parked on the live tail — and asserts
// the tailer still delivers every record exactly once, in order, via
// redial + resume from the last delivered sequence number.
func TestRemoteTailerReconnectResumes(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 10)

	p := newPipeServer(t, w)
	src := openRemote(t, p)
	sh, err := storage.NewShipper(src)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()

	next := func(want int) {
		t.Helper()
		seq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("next %d: %v", want, err)
		}
		if seq != uint64(want) || !bytes.Equal(got, payload(want)) {
			t.Fatalf("next %d: got seq=%d payload=%q", want, seq, got)
		}
	}

	for i := 1; i <= 5; i++ {
		next(i)
	}
	p.sever() // drop mid-catch-up
	for i := 6; i <= 10; i++ {
		next(i)
	}
	p.sever() // drop at the durable end (a parked tailer must re-sweep)
	appendN(t, w, 11, 15)
	for i := 11; i <= 15; i++ {
		next(i)
	}
	if p.dials() < 2 {
		t.Fatalf("only %d dials recorded: the drops never forced a reconnect", p.dials())
	}
}

// TestServerReleasesLeaseOnDisconnect pins the no-leaked-retention
// guarantee: while a remote tailer is connected its lease holds the old
// segment across a leader checkpoint, and once the client vanishes
// (transport closed, no explicit release) the server drops the lease so
// truncation proceeds.
func TestServerReleasesLeaseOnDisconnect(t *testing.T) {
	dir := t.TempDir()
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 6)

	p := newPipeServer(t, w)
	src := openRemote(t, p)
	sh, err := storage.NewShipper(src)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()
	for i := 1; i <= 2; i++ {
		if _, _, err := tail.Next(); err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
	}

	// Connected: the remotely-registered lease keeps the old segment.
	if _, err := w.Checkpoint([]byte("ckpt-at-6")); err != nil {
		t.Fatal(err)
	}
	if n := segmentCount(t, dir); n != 2 {
		t.Fatalf("checkpoint under a remote lease kept %d segments, want 2 (old + live)", n)
	}

	// The client vanishes without releasing anything: the server-side
	// handler must release the conn's leases on its way out, letting a
	// later checkpoint reclaim the old segment.
	src.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := w.Checkpoint([]byte("ckpt-after-drop")); err != nil {
			t.Fatal(err)
		}
		if segmentCount(t, dir) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("remote lease leaked: truncation still held back after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
