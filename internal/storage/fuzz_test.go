package storage

// Native fuzz targets over the two decode surfaces a crashed or hostile
// disk can reach: the v2/v1 snapshot codec (FuzzSnapshotDecode) and the
// WAL record framing + op payload codec (FuzzWALReplay). The contract
// under fuzz: decoders never panic, never allocate unboundedly (every
// length-prefixed read is chunked against actual stream bytes), and
// anything they accept re-encodes and re-decodes to the same value.
//
// Seed corpora live in testdata/fuzz/<FuzzName>/ (the native corpus
// location); TestWriteFuzzSeeds -update regenerates them.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzInputCap bounds fuzz inputs: the decoders' allocation discipline is
// "memory tracks stream length", so a bounded input bounds memory too.
const fuzzInputCap = 1 << 20

// seedImage builds a small, fully-featured image (attrs, text, tombstones).
func seedImage() *Image {
	return &Image{
		F: 8, S: 2, Height: 2,
		Labels:  []uint64{2, 5, 7, 11, 13, 17},
		Deleted: []bool{false, false, true, true, false, false},
		Root: NodeRec{Kind: kindElement, Tag: "site", Attrs: []AttrRec{{Name: "v", Value: "1"}},
			Children: []NodeRec{
				{Kind: kindElement, Tag: "item", Children: []NodeRec{{Kind: kindText, Data: "lamp"}}},
			}},
	}
}

// seedOps builds one of every op kind.
func seedOps() []Op {
	sub := NodeRec{Kind: kindElement, Tag: "item",
		Children: []NodeRec{{Kind: kindText, Data: "x"}}}
	return []Op{
		{Kind: OpInsert, Path: []uint32{0, 1}, Idx: 2, Labels: []uint64{30, 31, 34}, Sub: &sub},
		{Kind: OpDelete, Path: []uint32{1}, Labels: []uint64{9}},
		{Kind: OpMove, Path: []uint32{0}, Dst: []uint32{2, 0}, Idx: 0, Labels: []uint64{40, 41}},
		{Kind: OpCompact},
	}
}

func snapshotSeeds(tb testing.TB) [][]byte {
	var v2 bytes.Buffer
	if err := WriteSnapshot(&v2, seedImage()); err != nil {
		tb.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := WriteLegacySnapshot(&v1, seedImage()); err != nil {
		tb.Fatal(err)
	}
	truncated := v2.Bytes()[:v2.Len()/2]
	return [][]byte{v2.Bytes(), v1.Bytes(), truncated, []byte("LTSNAP\x00\x02garbage"), {}}
}

func walSeeds(tb testing.TB) [][]byte {
	payload, err := EncodeOps(seedOps())
	if err != nil {
		tb.Fatal(err)
	}
	var stream bytes.Buffer
	stream.Write(frameRecord(1, payload))
	stream.Write(frameRecord(2, payload))
	torn := stream.Bytes()[:stream.Len()-5]
	flipped := append([]byte(nil), stream.Bytes()...)
	flipped[len(flipped)/2] ^= 0x40
	return [][]byte{payload, stream.Bytes(), torn, flipped, {0x01, 0x01}, {}}
}

func FuzzSnapshotDecode(f *testing.F) {
	for _, seed := range snapshotSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			t.Skip()
		}
		img, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the image must re-encode and decode back to the
		// same value. The v2 encoder may legitimately reject images that
		// only the lenient v1 gob path can carry (e.g. non-increasing
		// labels); those just must not panic.
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, img); err != nil {
			return
		}
		again, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if !reflect.DeepEqual(img, again) {
			t.Fatal("snapshot roundtrip not stable")
		}
	})
}

func FuzzWALReplay(f *testing.F) {
	for _, seed := range walSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			t.Skip()
		}
		// Surface 1: the record scanner over an arbitrary segment body.
		// It must terminate, never panic, and deliver only CRC-clean
		// records whose payloads are then held to the op codec contract.
		good, err := scanRecords(bytes.NewReader(data), 0, func(seq uint64, payload []byte) error {
			if ops, err := DecodeOps(payload); err == nil {
				reencodeOps(t, ops)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scanRecords errored on hostile input: %v", err)
		}
		if good > int64(len(data)) {
			t.Fatalf("durable prefix %d exceeds input length %d", good, len(data))
		}
		// Surface 2: the op payload codec on the raw input (the scanner's
		// CRC gate would otherwise keep fuzzing away from it).
		if ops, err := DecodeOps(data); err == nil {
			reencodeOps(t, ops)
		}
	})
}

// manifestSeeds builds blob-manifest corpus inputs: a populated manifest,
// an empty one, a truncation, a CRC-breaking flip, and raw junk.
func manifestSeeds(tb testing.TB) [][]byte {
	full, err := EncodeBlobManifest(BlobManifest{
		Ckpts: []BlobObject{{Seq: 5, Size: 100, CRC: 0xdead}, {Seq: 12, Size: 2048, CRC: 0xbeef}},
		Segs: []BlobSegment{
			{Base: 0, End: 5, Size: 400, CRC: 1},
			{Base: 5, End: 12, Size: 512, CRC: 2},
			{Base: 12, End: 19, Size: 64, CRC: 3},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	empty, err := EncodeBlobManifest(BlobManifest{})
	if err != nil {
		tb.Fatal(err)
	}
	torn := full[:len(full)/2]
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x40
	return [][]byte{full, empty, torn, flipped, []byte("LTBLOB\x00\x01junk"), {}}
}

func FuzzBlobManifest(f *testing.F) {
	for _, seed := range manifestSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			t.Skip()
		}
		// The decoder must terminate without panicking and keep allocations
		// bounded by the input (the per-entry size floors cap the counts).
		m, err := DecodeBlobManifest(data)
		if err != nil {
			return
		}
		// Accepted input: ordering invariants actually hold and the value
		// survives an encode/decode roundtrip — the uploader rewrites the
		// manifest on every flush, so a decode that "repairs" input
		// silently would corrupt the tier over time. (Byte identity is NOT
		// required: varint encodings need not be canonical.)
		for i := 1; i < len(m.Ckpts); i++ {
			if m.Ckpts[i].Seq <= m.Ckpts[i-1].Seq {
				t.Fatalf("decoder accepted unordered checkpoints: %+v", m.Ckpts)
			}
		}
		for i, s := range m.Segs {
			if s.End <= s.Base {
				t.Fatalf("decoder accepted empty segment: %+v", s)
			}
			if i > 0 && s.Base <= m.Segs[i-1].Base {
				t.Fatalf("decoder accepted unordered segments: %+v", m.Segs)
			}
		}
		out, err := EncodeBlobManifest(m)
		if err != nil {
			t.Fatalf("re-encode of decoded manifest failed: %v", err)
		}
		again, err := DecodeBlobManifest(out)
		if err != nil {
			t.Fatalf("re-decode of re-encoded manifest failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatal("manifest roundtrip not stable")
		}
	})
}

// reencodeOps checks the accepted-input roundtrip: ops that decoded must
// encode cleanly and decode back to the same value.
func reencodeOps(t *testing.T, ops []Op) {
	t.Helper()
	payload, err := EncodeOps(ops)
	if err != nil {
		t.Fatalf("re-encode of decoded ops failed: %v", err)
	}
	again, err := DecodeOps(payload)
	if err != nil {
		t.Fatalf("re-decode of re-encoded ops failed: %v", err)
	}
	if !reflect.DeepEqual(ops, again) {
		t.Fatal("ops roundtrip not stable")
	}
}

// update regenerates the checked-in seed corpora under testdata/fuzz/.
var update = flag.Bool("update", false, "rewrite golden files and fuzz seed corpora")

// TestWriteFuzzSeeds materializes the in-code seeds as native corpus
// files so `go test -fuzz` starts from meaningful inputs even before any
// cached corpus exists, and so the corpus is versioned with the format.
func TestWriteFuzzSeeds(t *testing.T) {
	if !*update {
		t.Skip("run with -update to regenerate the seed corpora")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzSnapshotDecode", snapshotSeeds(t))
	write("FuzzWALReplay", walSeeds(t))
	write("FuzzBlobManifest", manifestSeeds(t))
}

// TestFuzzSeedCorpusLoads asserts the checked-in corpus files decode with
// the current framing — a failing record here means the wire format
// changed without regenerating testdata/fuzz (old files must keep
// loading; see the golden back-compat test for the snapshot side).
func TestFuzzSeedCorpusLoads(t *testing.T) {
	for _, target := range []string{"FuzzSnapshotDecode", "FuzzWALReplay", "FuzzBlobManifest"} {
		dir := filepath.Join("testdata", "fuzz", target)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("seed corpus missing (run TestWriteFuzzSeeds -update): %v", err)
		}
		if len(entries) == 0 {
			t.Fatalf("empty seed corpus for %s", target)
		}
	}
	// The first WAL seed is a live ops payload: it must still decode.
	payload, err := EncodeOps(seedOps())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeOps(payload); err != nil {
		t.Fatal(err)
	}
}
