package storage_test

// Crash-recovery torture: drive a WAL-backed store through a random op
// trace, then simulate a crash at EVERY byte offset of the log file by
// truncating a copy of it and recovering. The invariant under test is the
// WAL's whole reason to exist: recovery yields exactly the longest
// durable prefix of committed batches — bit-identical labels and a
// consistent index — never a corrupt document, never a panic. A second
// pass flips bytes inside each record (bad CRC instead of torn tail) and
// expects the same prefix semantics.

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

// runTrace builds a WAL store in dir, applies nBatches random batches,
// and returns the oracle: states[i] is the v2 snapshot after i batches.
func runTrace(t *testing.T, dir string, nBatches int, seed int64) [][]byte {
	t.Helper()
	st, err := ltree.OpenString(
		`<site><regions><asia/><europe/></regions><people><person>alice</person></people></site>`,
		ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	states := make([][]byte, 0, nBatches+1)
	states = append(states, snap(t, st))
	for i := 0; i < nBatches; i++ {
		applyRandomBatch(t, st, rng)
		states = append(states, snap(t, st))
	}
	if err := st.Check(); err != nil {
		t.Fatalf("trace left an inconsistent store: %v", err)
	}
	return states
}

func snap(t *testing.T, st *ltree.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// applyRandomBatch plans 1–3 ops against the current store state and runs
// them as one Update (= one WAL record). Individual op errors inside the
// batch are ignored — the leading insert always succeeds, so the batch is
// never empty.
func applyRandomBatch(t *testing.T, st *ltree.Store, rng *rand.Rand) {
	t.Helper()
	elems := st.Elements("*") // document order; [0] is the root
	pick := func() *ltree.Elem { return elems[rng.Intn(len(elems))] }
	type planned struct {
		kind   string
		n, dst *ltree.Elem
		idx    int
		xml    string
	}
	plan := []planned{}
	// Leading insert: always valid.
	parent := pick()
	for parent.Kind() != 0 { // text nodes cannot take children
		parent = pick()
	}
	frag := []string{
		`<item><name>lamp</name></item>`,
		`<person age="3">bob</person>`,
		`<note/>`,
	}[rng.Intn(3)]
	plan = append(plan, planned{kind: "insert", n: parent, idx: rng.Intn(parent.NumChildren() + 1), xml: frag})
	for extra := rng.Intn(3); extra > 0; extra-- {
		switch rng.Intn(3) {
		case 0: // another insert
			p := pick()
			if p.Kind() != 0 {
				continue
			}
			plan = append(plan, planned{kind: "insert", n: p, idx: rng.Intn(p.NumChildren() + 1), xml: `<extra/>`})
		case 1: // delete a non-root element
			n := pick()
			if n == elems[0] {
				continue
			}
			plan = append(plan, planned{kind: "delete", n: n})
		case 2: // move a non-root element under a non-descendant element
			n, dst := pick(), pick()
			if n == elems[0] || dst.Kind() != 0 || inSubtree(dst, n) {
				continue
			}
			plan = append(plan, planned{kind: "move", n: n, dst: dst, idx: rng.Intn(dst.NumChildren() + 1)})
		}
	}
	err := st.Update(func(tx *ltree.Batch) error {
		for _, p := range plan {
			switch p.kind {
			case "insert":
				_, _ = tx.InsertXML(p.n, min(p.idx, p.n.NumChildren()), p.xml)
			case "delete":
				_ = tx.Delete(p.n) // may fail if an earlier op removed it
			case "move":
				_ = tx.Move(p.n, p.dst, min(p.idx, p.dst.NumChildren()))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("batch commit: %v", err)
	}
}

// inSubtree reports whether n is inside (or is) root's subtree, by parent
// links only — no locks, safe outside Update.
func inSubtree(n, root *ltree.Elem) bool {
	for v := n; v != nil; v = v.Parent() {
		if v == root {
			return true
		}
	}
	return false
}

// walFiles locates the single checkpoint and single log segment the trace
// produced, returning their names and contents.
func walFiles(t *testing.T, dir string) (ckptName string, ckpt []byte, segName string, seg []byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		switch filepath.Ext(e.Name()) {
		case ".ltsnap":
			if ckptName != "" {
				t.Fatalf("multiple checkpoints: %s and %s", ckptName, e.Name())
			}
			ckptName, ckpt = e.Name(), data
		case ".log":
			if segName != "" {
				t.Fatalf("multiple segments: %s and %s", segName, e.Name())
			}
			segName, seg = e.Name(), data
		}
	}
	if ckptName == "" || segName == "" {
		t.Fatalf("missing WAL files in %s", dir)
	}
	return
}

// recordEnds parses the framing and returns the absolute end offset of
// each record in the segment (the framing layout is a documented wire
// contract; parsing it here independently cross-checks the writer).
func recordEnds(t *testing.T, seg []byte) []int {
	t.Helper()
	const segHeader = 16
	const recHeader = 16 // length u32 + crc u32 + seq u64
	ends := []int{}
	off := segHeader
	for off < len(seg) {
		if off+recHeader > len(seg) {
			t.Fatalf("trailing garbage after %d records", len(ends))
		}
		length := int(uint32(seg[off]) | uint32(seg[off+1])<<8 | uint32(seg[off+2])<<16 | uint32(seg[off+3])<<24)
		off += recHeader + length
		if off > len(seg) {
			t.Fatalf("record %d overruns the file", len(ends))
		}
		ends = append(ends, off)
	}
	return ends
}

// recoverFrom copies the checkpoint plus a (possibly mutilated) log into
// a fresh directory and runs full recovery, returning the store.
func recoverFrom(t *testing.T, ckptName string, ckpt []byte, segName string, seg []byte) (*ltree.Store, *storage.WAL) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ckptName), ckpt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatalf("OpenWAL on crashed dir: %v", err)
	}
	st, err := ltree.LoadLatest(w)
	if err != nil {
		w.Close()
		t.Fatalf("LoadLatest on crashed dir: %v", err)
	}
	return st, w
}

func TestWALCrashAtEveryOffset(t *testing.T) {
	nBatches := 10
	if testing.Short() {
		nBatches = 5
	}
	dir := t.TempDir()
	states := runTrace(t, dir, nBatches, 1)
	ckptName, ckpt, segName, seg := walFiles(t, dir)
	ends := recordEnds(t, seg)
	if len(ends) != nBatches {
		t.Fatalf("%d records for %d batches (every batch must log exactly one)", len(ends), nBatches)
	}

	for cut := 0; cut <= len(seg); cut++ {
		// Longest durable prefix: every record wholly inside the cut.
		want := 0
		for _, end := range ends {
			if end <= cut {
				want++
			}
		}
		st, w := recoverFrom(t, ckptName, ckpt, segName, seg[:cut])
		got := snap(t, st)
		if !bytes.Equal(got, states[want]) {
			w.Close()
			t.Fatalf("cut at %d: recovered state differs from oracle after %d batches", cut, want)
		}
		if err := st.Check(); err != nil {
			w.Close()
			t.Fatalf("cut at %d: recovered store inconsistent: %v", cut, err)
		}
		w.Close()
	}
}

func TestWALCrashBitFlips(t *testing.T) {
	nBatches := 8
	if testing.Short() {
		nBatches = 4
	}
	dir := t.TempDir()
	states := runTrace(t, dir, nBatches, 2)
	ckptName, ckpt, segName, seg := walFiles(t, dir)
	ends := recordEnds(t, seg)

	// Flip one byte inside each record (header and payload positions):
	// the corrupt record and everything after it must be discarded.
	start := 16 // segment header
	for rec, end := range ends {
		for _, off := range []int{start, start + 4, start + 8, start + 16, end - 1} {
			if off >= end {
				continue
			}
			mut := append([]byte(nil), seg...)
			mut[off] ^= 0x5A
			st, w := recoverFrom(t, ckptName, ckpt, segName, mut)
			got := snap(t, st)
			if !bytes.Equal(got, states[rec]) {
				w.Close()
				t.Fatalf("flip at %d (record %d): recovered state differs from oracle after %d batches",
					off, rec, rec)
			}
			if err := st.Check(); err != nil {
				w.Close()
				t.Fatalf("flip at %d: recovered store inconsistent: %v", off, err)
			}
			w.Close()
		}
		start = end
	}
}

// TestWALRecoveryContinues verifies the recovered store is live: appends
// after recovery land in the same log and survive another recovery.
func TestWALRecoveryContinues(t *testing.T) {
	dir := t.TempDir()
	runTrace(t, dir, 6, 3)
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ltree.LoadLatest(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertElement(st.Root(), 0, "afterlife"); err != nil {
		t.Fatal(err)
	}
	want := snap(t, st)
	w.Close()

	w2, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st2, err := ltree.LoadLatest(w2)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap(t, st2); !bytes.Equal(got, want) {
		t.Fatal("second recovery lost the post-recovery append")
	}
	if len(st2.Elements("afterlife")) != 1 {
		t.Fatal("post-recovery element missing from the recovered index")
	}
}
