package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/ltree-db/ltree/internal/storage/blob"
)

// This file is the blob-tier manifest: the single source of truth for
// which WAL objects are durable in the object store. The uploader appends
// an entry only AFTER the object's bytes are fully stored, and every
// entry pins the object's exact size and CRC-32C — so a reader never has
// to trust the blob store's bytes (a partial upload or a torn read fails
// verification and is retried), and "is this segment blob-durable?" is a
// manifest lookup, never a blob probe.
//
// Key layout under one tier prefix:
//
//	<prefix>MANIFEST       this manifest (overwritten on every update)
//	<prefix>ckpt/%016d     checkpoint snapshot, named by covered seq
//	<prefix>seg/%016d      sealed log segment (full file bytes, including
//	                       the segment header), named by base seq
//
// Wire format (little-endian, uvarint = binary varint):
//
//	magic    [8]byte "LTBLOB\0\2"
//	nCkpt    uvarint
//	per ckpt: seq uvarint (strictly ascending), size uvarint, crc uint32,
//	          flags byte (bit 0: index root present),
//	          root [32]byte when flagged
//	nSeg     uvarint
//	per seg:  base uvarint (strictly ascending), end uvarint (> base),
//	          size uvarint, crc uint32
//	crc      uint32 over every preceding byte
//
// Version 2 added the per-checkpoint index root hash (the flags byte and
// conditional root). Version-1 manifests — everything before it — decode
// with no roots; the first flush after an upgrade rewrites the manifest
// as v2, back-filling nothing (old checkpoints keep HasRoot=false, and
// their snapshots may carry the root inline regardless).
//
// The trailing CRC makes a torn manifest read detectable on its own: a
// reader that gets garbage retries instead of concluding the blob tier
// is empty (which would silently forfeit the whole uploaded history).

// blobManifestMagic heads the manifest: "LTBLOB" + NUL + format version 2.
var blobManifestMagic = [8]byte{'L', 'T', 'B', 'L', 'O', 'B', 0, 2}

// blobManifestMagicV1 is the pre-root format, still accepted on read.
var blobManifestMagicV1 = [8]byte{'L', 'T', 'B', 'L', 'O', 'B', 0, 1}

// blobCkptHasRoot flags a v2 checkpoint entry carrying an index root.
const blobCkptHasRoot = 1 << 0

// Blob object key names under the tier prefix.
const (
	blobManifestKey = "MANIFEST"
	blobCkptPrefix  = "ckpt/"
	blobSegPrefix   = "seg/"
)

func blobCkptKey(seq uint64) string { return fmt.Sprintf("%s%016d", blobCkptPrefix, seq) }
func blobSegKey(base uint64) string { return fmt.Sprintf("%s%016d", blobSegPrefix, base) }

// ErrCorruptManifest reports a blob manifest that does not decode: torn,
// truncated, or written by something else. Never silently treated as
// empty.
var ErrCorruptManifest = errors.New("storage: corrupt blob-tier manifest")

// BlobObject is one durable checkpoint in the blob tier.
type BlobObject struct {
	Seq  uint64 // covered sequence number (the checkpoint's version)
	Size uint64 // exact object size in bytes
	CRC  uint32 // CRC-32C over the object bytes

	// Root is the index content root hash the checkpoint snapshot was
	// stamped with, when HasRoot: backup verification compares it
	// against a live store's root without downloading the object.
	// False for checkpoints uploaded before hashing existed or taken
	// from un-stamped snapshots.
	Root    [32]byte
	HasRoot bool
}

// BlobSegment is one durable sealed log segment in the blob tier.
type BlobSegment struct {
	Base uint64 // sequence number the segment starts after
	End  uint64 // sequence number of its last record (== next base)
	Size uint64 // exact object size in bytes
	CRC  uint32 // CRC-32C over the object bytes
}

// BlobManifest lists every object durable in the blob tier, both slices
// ascending by sequence number.
type BlobManifest struct {
	Ckpts []BlobObject
	Segs  []BlobSegment
}

// ckptSeq reports whether the manifest holds a checkpoint at seq.
func (m *BlobManifest) hasCkpt(seq uint64) bool {
	for _, c := range m.Ckpts {
		if c.Seq == seq {
			return true
		}
	}
	return false
}

// hasSeg reports whether the manifest holds a segment based at base.
func (m *BlobManifest) hasSeg(base uint64) bool {
	for _, s := range m.Segs {
		if s.Base == base {
			return true
		}
	}
	return false
}

// newestCkpt returns the highest checkpoint seq (ok=false when none).
func (m *BlobManifest) newestCkpt() (uint64, bool) {
	if len(m.Ckpts) == 0 {
		return 0, false
	}
	return m.Ckpts[len(m.Ckpts)-1].Seq, true
}

// durableSeq returns the highest sequence number reconstructible from the
// blob tier alone: the newest checkpoint, extended through every
// contiguous segment after it.
func (m *BlobManifest) durableSeq() uint64 {
	cur, ok := m.newestCkpt()
	if !ok {
		return 0
	}
	for _, s := range m.Segs {
		if s.Base <= cur && s.End > cur {
			cur = s.End
		}
	}
	return cur
}

// EncodeBlobManifest serializes a manifest, validating the ordering
// invariants so a buggy writer fails here instead of poisoning the tier.
func EncodeBlobManifest(m BlobManifest) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(blobManifestMagic[:])
	bw := bufio.NewWriter(&buf)
	putUvarint(bw, uint64(len(m.Ckpts)))
	var tmp [4]byte
	prev, first := uint64(0), true
	for _, c := range m.Ckpts {
		if !first && c.Seq <= prev {
			return nil, fmt.Errorf("storage: manifest checkpoints not ascending at %d", c.Seq)
		}
		prev, first = c.Seq, false
		putUvarint(bw, c.Seq)
		putUvarint(bw, c.Size)
		binary.LittleEndian.PutUint32(tmp[:], c.CRC)
		bw.Write(tmp[:])
		if c.HasRoot {
			bw.WriteByte(blobCkptHasRoot)
			bw.Write(c.Root[:])
		} else {
			bw.WriteByte(0)
		}
	}
	putUvarint(bw, uint64(len(m.Segs)))
	prev, first = 0, true
	for _, s := range m.Segs {
		if !first && s.Base <= prev {
			return nil, fmt.Errorf("storage: manifest segments not ascending at %d", s.Base)
		}
		if s.End <= s.Base {
			return nil, fmt.Errorf("storage: manifest segment %d with end %d", s.Base, s.End)
		}
		prev, first = s.Base, false
		putUvarint(bw, s.Base)
		putUvarint(bw, s.End)
		putUvarint(bw, s.Size)
		binary.LittleEndian.PutUint32(tmp[:], s.CRC)
		bw.Write(tmp[:])
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	sum := crc32.Checksum(buf.Bytes(), crcTable)
	binary.LittleEndian.PutUint32(tmp[:], sum)
	buf.Write(tmp[:])
	return buf.Bytes(), nil
}

// DecodeBlobManifest parses a manifest, rejecting torn bytes (trailing
// CRC), bad magic, unordered entries, and trailing garbage.
func DecodeBlobManifest(data []byte) (BlobManifest, error) {
	var m BlobManifest
	if len(data) < len(blobManifestMagic)+4 {
		return m, fmt.Errorf("%w: %d bytes", ErrCorruptManifest, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return m, fmt.Errorf("%w: checksum mismatch", ErrCorruptManifest)
	}
	v2 := bytes.Equal(body[:len(blobManifestMagic)], blobManifestMagic[:])
	if !v2 && !bytes.Equal(body[:len(blobManifestMagic)], blobManifestMagicV1[:]) {
		return m, fmt.Errorf("%w: bad magic", ErrCorruptManifest)
	}
	br := bufio.NewReader(bytes.NewReader(body[len(blobManifestMagic):]))
	nc, err := getInt(br)
	if err != nil {
		return m, fmt.Errorf("%w: ckpt count: %v", ErrCorruptManifest, err)
	}
	// Every entry costs at least 6 bytes; bound the allocation by what the
	// payload could actually hold.
	if nc > len(body)/6 {
		return m, fmt.Errorf("%w: %d checkpoints in %d bytes", ErrCorruptManifest, nc, len(body))
	}
	var tmp [4]byte
	prev, first := uint64(0), true
	for i := 0; i < nc; i++ {
		var c BlobObject
		if c.Seq, err = getUvarint(br); err != nil {
			return m, fmt.Errorf("%w: ckpt %d: %v", ErrCorruptManifest, i, err)
		}
		if !first && c.Seq <= prev {
			return m, fmt.Errorf("%w: checkpoints not ascending at %d", ErrCorruptManifest, c.Seq)
		}
		prev, first = c.Seq, false
		if c.Size, err = getUvarint(br); err != nil {
			return m, fmt.Errorf("%w: ckpt %d size: %v", ErrCorruptManifest, i, err)
		}
		if _, err = io.ReadFull(br, tmp[:]); err != nil {
			return m, fmt.Errorf("%w: ckpt %d crc: %v", ErrCorruptManifest, i, err)
		}
		c.CRC = binary.LittleEndian.Uint32(tmp[:])
		if v2 {
			flags, err := br.ReadByte()
			if err != nil {
				return m, fmt.Errorf("%w: ckpt %d flags: %v", ErrCorruptManifest, i, err)
			}
			if flags&^byte(blobCkptHasRoot) != 0 {
				return m, fmt.Errorf("%w: ckpt %d unknown flags %#x", ErrCorruptManifest, i, flags)
			}
			if flags&blobCkptHasRoot != 0 {
				if _, err = io.ReadFull(br, c.Root[:]); err != nil {
					return m, fmt.Errorf("%w: ckpt %d root: %v", ErrCorruptManifest, i, err)
				}
				c.HasRoot = true
			}
		}
		m.Ckpts = append(m.Ckpts, c)
	}
	ns, err := getInt(br)
	if err != nil {
		return m, fmt.Errorf("%w: segment count: %v", ErrCorruptManifest, err)
	}
	if ns > len(body)/7 {
		return m, fmt.Errorf("%w: %d segments in %d bytes", ErrCorruptManifest, ns, len(body))
	}
	prev, first = 0, true
	for i := 0; i < ns; i++ {
		var s BlobSegment
		if s.Base, err = getUvarint(br); err != nil {
			return m, fmt.Errorf("%w: seg %d: %v", ErrCorruptManifest, i, err)
		}
		if !first && s.Base <= prev {
			return m, fmt.Errorf("%w: segments not ascending at %d", ErrCorruptManifest, s.Base)
		}
		prev, first = s.Base, false
		if s.End, err = getUvarint(br); err != nil {
			return m, fmt.Errorf("%w: seg %d end: %v", ErrCorruptManifest, i, err)
		}
		if s.End <= s.Base {
			return m, fmt.Errorf("%w: segment %d with end %d", ErrCorruptManifest, s.Base, s.End)
		}
		if s.Size, err = getUvarint(br); err != nil {
			return m, fmt.Errorf("%w: seg %d size: %v", ErrCorruptManifest, i, err)
		}
		if _, err = io.ReadFull(br, tmp[:]); err != nil {
			return m, fmt.Errorf("%w: seg %d crc: %v", ErrCorruptManifest, i, err)
		}
		s.CRC = binary.LittleEndian.Uint32(tmp[:])
		m.Segs = append(m.Segs, s)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return m, fmt.Errorf("%w: trailing bytes", ErrCorruptManifest)
	}
	return m, nil
}

// loadBlobManifest reads and decodes the manifest under prefix, retrying
// transient/torn reads. A missing manifest is a fresh tier (empty
// manifest, nil error); bytes that never decode across the retry budget
// are ErrCorruptManifest — loud, never "fresh".
func loadBlobManifest(bs blob.Store, prefix string, retry *blobRetry) (BlobManifest, error) {
	var lastErr error
	for attempt := 0; retry.attempt(attempt); attempt++ {
		data, err := bs.Get(prefix + blobManifestKey)
		if errors.Is(err, blob.ErrNotExist) {
			return BlobManifest{}, nil
		}
		if err == nil {
			m, derr := DecodeBlobManifest(data)
			if derr == nil {
				return m, nil
			}
			err = derr // torn read: retry
		}
		lastErr = err
		retry.sleep(attempt)
	}
	return BlobManifest{}, fmt.Errorf("storage: blob manifest unreadable: %w", lastErr)
}

// getUvarint reads one uvarint (unbounded; callers validate ranges).
func getUvarint(br *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(br)
}
