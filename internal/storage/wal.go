package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// WAL is a write-ahead-logged Backend: commits append one fsync'd framed
// record to a log segment instead of rewriting a snapshot, and a
// checkpoint writes a full snapshot and truncates the log. The recovery
// contract is graviton-style append-only durability: after any crash,
// reopening yields exactly the longest durable prefix — the newest
// checkpoint plus every intact log record after it; a torn tail or a
// corrupt record is detected (length + CRC-32C framing) and discarded.
//
// On-disk layout (one directory):
//
//	ckpt-%016d.ltsnap   checkpoint snapshots; the number is the sequence
//	                    number of the last batch the snapshot covers
//	wal-%016d.log       log segments; the number is the sequence number
//	                    the segment starts after (its first record is
//	                    base+1). Segment header: 8-byte magic "LTWAL\0\1"
//	                    + base as uint64 LE; then framed records
//	                    (walrecord.go).
//
// As a Backend, a WAL's versions are its checkpoints: Put == Checkpoint,
// Get/Latest/Versions/Prune address checkpoint snapshots. Because a
// checkpoint's version is the sequence number it covers, two checkpoints
// with no batches between them share a version (same state, same number)
// — the only departure from the plain backends' strictly-growing Put.
type WAL struct {
	mu       sync.Mutex
	dir      string
	opt      WALOptions
	seg      *os.File // current segment, positioned at its durable end
	segBase  uint64
	segEnd   int64  // byte offset of the segment's last complete record
	seq      uint64 // last appended batch sequence number
	unsynced int    // appends since the last fsync (group commit)
	broken   error  // a partial append this handle could not roll back

	ckptSeq   uint64 // sequence number covered by the newest checkpoint
	liveBytes int64  // framed record bytes appended since that checkpoint

	// tier, when non-nil, mirrors sealed segments and checkpoints into a
	// blob store (tier.go): rotations and checkpoints kick its uploader,
	// reads of released or pruned artifacts fall through to it. Lock
	// order: w.mu may be held when taking tier.mu, never the reverse.
	tier *BlobTier

	// watch is the durability-notification broadcast: whenever appended
	// records become durable (a synced append, Sync, Checkpoint) the
	// current channel is closed — waking every Tailer blocked on it —
	// and AppendWatch lazily allocates the next one. Nil when nobody
	// waits. Group-commit buffered appends do NOT fire it: waking a
	// tailer per buffered append would make its sweep fsync the segment,
	// silently degrading a SyncEvery>1 leader to fsync-per-commit.
	watch chan struct{}

	// rebases counts log re-bases: checkpoints that covered state the
	// log itself lost (a failed append the store repaired). An attached
	// tailer observing the counter move knows the op stream it is
	// following no longer reconstructs the leader and must re-seed; see
	// MarkRebased.
	rebases uint64

	// leases are the segment-retention guards registered by attached
	// tailers (see ship.go): Checkpoint's log truncation never deletes a
	// segment holding records above the lowest lease floor, so a slow
	// follower mid-catch-up survives a leader checkpoint.
	leases map[*walLease]struct{}
}

// WALOptions tunes a WAL.
type WALOptions struct {
	// SyncEvery groups commits: the segment is fsync'd once per SyncEvery
	// appends instead of on every append. 0 or 1 syncs every append (full
	// durability); larger values trade the tail of a crash for latency.
	// Sync and Checkpoint always flush regardless.
	SyncEvery int
	// SegmentBytes seals the live segment and starts a fresh one once it
	// grows past this many bytes, decoupling segment boundaries from
	// checkpoints. 0 (the default) rotates only at checkpoints — the
	// original behavior. Size rotation is what gives an attached blob
	// tier sealed segments to upload between checkpoints, bounding the
	// not-yet-blob-durable window.
	SegmentBytes int64
}

// walMagic heads every log segment: "LTWAL" + NUL + format version 1.
var walMagic = [8]byte{'L', 'T', 'W', 'A', 'L', 0, 0, 1}

// segHeaderLen is the segment header: magic + base sequence number.
const segHeaderLen = len(walMagic) + 8

// OpenWAL opens (creating if needed) a write-ahead log in dir and
// recovers its durable state: the newest segment is scanned and its torn
// or corrupt tail, if any, is truncated away so appends continue from the
// last durable record.
func OpenWAL(dir string, opt WALOptions) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opt: opt}
	// Sweep checkpoint temp files a crash mid-Checkpoint left behind:
	// they are incomplete by definition (a finished checkpoint is renamed
	// to its ckpt-*.ltsnap name before Checkpoint returns).
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if name := e.Name(); filepath.Ext(name) == ".tmp" && strings.HasPrefix(name, "ckpt-") {
				_ = os.Remove(filepath.Join(dir, name))
			}
		}
	}
	segs, err := w.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		base := uint64(0)
		if cks, err := w.listCheckpoints(); err != nil {
			return nil, err
		} else if len(cks) > 0 {
			base = cks[len(cks)-1]
		}
		if err := w.newSegment(base); err != nil {
			return nil, err
		}
		w.ckptSeq = base
		return w, nil
	}
	base := segs[len(segs)-1]
	f, err := os.OpenFile(w.segPath(base), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	good, lastSeq, err := repairSegment(f, base)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.seg, w.segBase, w.segEnd, w.seq = f, base, good, lastSeq
	// Rebuild the live-log accounting: bytes in every segment after the
	// newest checkpoint. Only the newest segment can hold a torn tail
	// (appends go nowhere else), so sealed sizes are trusted as-is.
	cks, err := w.listCheckpoints()
	if err != nil {
		f.Close()
		return nil, err
	}
	if len(cks) > 0 {
		w.ckptSeq = cks[len(cks)-1]
	}
	for _, b := range segs {
		if b < w.ckptSeq {
			continue
		}
		n := good - int64(segHeaderLen)
		if b != base {
			st, err := os.Stat(w.segPath(b))
			if err != nil {
				f.Close()
				return nil, err
			}
			n = st.Size() - int64(segHeaderLen)
		}
		if n > 0 {
			w.liveBytes += n
		}
	}
	return w, nil
}

// repairSegment scans an opened segment, truncates any torn or corrupt
// tail (including a torn header, which resets the file to an empty
// segment), and returns the durable end offset and the last durable
// sequence number.
func repairSegment(f *os.File, base uint64) (int64, uint64, error) {
	if err := checkSegHeader(f, base); err != nil {
		if !errors.Is(err, ErrCorruptWAL) {
			return 0, 0, err // real I/O failure: do not destroy the file
		}
		// Torn or foreign header: treat the whole file as torn and
		// rewrite it as an empty segment rather than appending after junk.
		if err := writeSegHeader(f, base); err != nil {
			return 0, 0, err
		}
		return int64(segHeaderLen), base, nil
	}
	lastSeq := base
	good, err := scanRecords(f, base, func(seq uint64, payload []byte) error {
		lastSeq = seq
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	end := int64(segHeaderLen) + good
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	if st.Size() > end {
		if err := f.Truncate(end); err != nil {
			return 0, 0, err
		}
		if err := f.Sync(); err != nil {
			return 0, 0, err
		}
	}
	return end, lastSeq, nil
}

// checkSegHeader reads and verifies the segment header; the file offset
// is left just past it on success. A short or mismatched header reports
// ErrCorruptWAL (repairable); a real read failure comes back as-is.
func checkSegHeader(r io.Reader, wantBase uint64) error {
	var head [segHeaderLen]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if isStreamEnd(err) {
			return fmt.Errorf("%w: segment header: %v", ErrCorruptWAL, err)
		}
		return err
	}
	for i, b := range walMagic {
		if head[i] != b {
			return fmt.Errorf("%w: bad segment magic", ErrCorruptWAL)
		}
	}
	if base := binary.LittleEndian.Uint64(head[len(walMagic):]); base != wantBase {
		return fmt.Errorf("%w: segment base %d, want %d", ErrCorruptWAL, base, wantBase)
	}
	return nil
}

// writeSegHeader truncates f and writes a fresh header for base.
func writeSegHeader(f *os.File, base uint64) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var head [segHeaderLen]byte
	copy(head[:], walMagic[:])
	binary.LittleEndian.PutUint64(head[len(walMagic):], base)
	if _, err := f.Write(head[:]); err != nil {
		return err
	}
	return f.Sync()
}

// newSegment creates and syncs an empty segment for base and makes it
// current (caller holds the lock or is the constructor).
func (w *WAL) newSegment(base uint64) error {
	f, err := os.OpenFile(w.segPath(base), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if err := writeSegHeader(f, base); err != nil {
		f.Close()
		return err
	}
	if err := w.syncDir(); err != nil {
		f.Close()
		return err
	}
	if w.seg != nil {
		w.seg.Close()
	}
	w.seg, w.segBase, w.segEnd, w.seq, w.unsynced = f, base, int64(segHeaderLen), base, 0
	w.broken = nil
	return nil
}

// Close releases the segment file handle. Appending after Close fails.
// An attached blob tier is stopped first (its uploader briefly takes the
// WAL lock, so it must not be running when the handle goes away); blob
// uploads it had not finished resume on the next attach.
func (w *WAL) Close() error {
	w.mu.Lock()
	t := w.tier
	w.tier = nil
	w.mu.Unlock()
	if t != nil {
		t.Close()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.notifyLocked() // wake waiting tailers so they re-check state
	if w.seg == nil {
		return nil
	}
	err := w.seg.Sync()
	if cerr := w.seg.Close(); err == nil {
		err = cerr
	}
	w.seg = nil
	return err
}

// tierRef returns the attached blob tier, nil when none.
func (w *WAL) tierRef() *BlobTier {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tier
}

// notifyLocked fires the durability broadcast: the current watch channel
// is closed and forgotten; the next AppendWatch call allocates a fresh
// one. Caller holds the lock.
func (w *WAL) notifyLocked() {
	if w.watch != nil {
		close(w.watch)
		w.watch = nil
	}
}

// AppendWatch returns a channel that is closed the next time appended
// records become durable (or the state otherwise moves: MarkRebased,
// Close). Tailers use it to block for new records without polling: grab
// the channel, re-check Seq, then wait. On a closed WAL it returns nil —
// no append can ever fire again, so a tailer must stop instead of
// parking forever.
func (w *WAL) AppendWatch() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return nil
	}
	if w.watch == nil {
		w.watch = make(chan struct{})
	}
	return w.watch
}

// MarkRebased records that the newest checkpoint covers state the log
// lost (the store's repair path after a failed append calls this right
// after the repairing Checkpoint succeeds). Attached tailers observe the
// counter through Rebases and stop with ErrShipRebased: the op stream
// past this point is recorded against state they never received, so
// continuing would verify-fail at best and silently diverge at worst.
func (w *WAL) MarkRebased() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rebases++
	w.notifyLocked() // wake parked tailers so they detect it now
}

// Rebases returns the number of log re-bases; see MarkRebased.
func (w *WAL) Rebases() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rebases
}

// walLease is one registered retention floor; see Retain.
type walLease struct {
	w     *WAL
	floor uint64 // records with seq > floor must stay replayable
}

// Retain registers a segment-retention lease: until released, Checkpoint
// will not delete a log segment containing records with sequence number
// above seq — the holder can still ReplaySince(floor) without hitting a
// gap. Advance the floor as records are consumed so truncation can catch
// up; Release drops the guard entirely. Attached tailers (ship.go) hold
// one lease each; the lowest floor across leases wins.
func (w *WAL) Retain(seq uint64) Lease {
	w.mu.Lock()
	defer w.mu.Unlock()
	l := &walLease{w: w, floor: seq}
	if w.leases == nil {
		w.leases = make(map[*walLease]struct{})
	}
	w.leases[l] = struct{}{}
	return l
}

// Advance raises the lease floor (it never retreats): records at or
// below seq are no longer needed by this holder.
func (l *walLease) Advance(seq uint64) {
	l.w.mu.Lock()
	defer l.w.mu.Unlock()
	if seq > l.floor {
		l.floor = seq
	}
}

// Release drops the lease. Idempotent.
func (l *walLease) Release() {
	l.w.mu.Lock()
	defer l.w.mu.Unlock()
	delete(l.w.leases, l)
}

// retentionFloorLocked returns the lowest lease floor and whether any
// lease is registered. Caller holds the lock.
func (w *WAL) retentionFloorLocked() (uint64, bool) {
	if len(w.leases) == 0 {
		return 0, false
	}
	floor := ^uint64(0)
	for l := range w.leases {
		if l.floor < floor {
			floor = l.floor
		}
	}
	return floor, true
}

// Seq returns the sequence number of the last appended batch (0 before
// any append or checkpoint).
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// LiveLog reports the size of the live log — framed record bytes and
// record count appended since the last checkpoint, across every segment
// after it (size rotation can spread the live log over several). The
// Store's auto-checkpoint policy polls this after each logged commit.
func (w *WAL) LiveLog() (bytes int64, records int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return 0, 0
	}
	return w.liveBytes, int(w.seq - w.ckptSeq)
}

// AppendBatch implements WALBackend: it frames payload as the next record
// and appends it to the current segment. With SyncEvery ≤ 1 the append is
// fsync'd before returning — the batch is durable once AppendBatch
// returns; with group commit it becomes durable at the next flush.
func (w *WAL) AppendBatch(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return 0, errors.New("storage: WAL is closed")
	}
	if w.broken != nil {
		return 0, fmt.Errorf("storage: WAL poisoned by an unrepaired partial append: %w", w.broken)
	}
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("storage: WAL batch of %d bytes exceeds the record limit", len(payload))
	}
	seq := w.seq + 1
	frame := frameRecord(seq, payload)
	if _, err := w.seg.Write(frame); err != nil {
		// The record may be half-written. Roll the file back to the last
		// complete record so later appends cannot land after torn bytes
		// (recovery would silently discard them); if the rollback itself
		// fails, poison the handle — reopening repairs the file.
		if terr := w.seg.Truncate(w.segEnd); terr != nil {
			w.broken = err
		} else if _, serr := w.seg.Seek(w.segEnd, io.SeekStart); serr != nil {
			w.broken = err
		}
		return 0, fmt.Errorf("storage: WAL append: %w", err)
	}
	w.segEnd += int64(len(frame))
	w.liveBytes += int64(len(frame))
	w.seq = seq
	w.unsynced++
	if w.opt.SyncEvery <= 1 || w.unsynced >= w.opt.SyncEvery {
		if err := w.seg.Sync(); err != nil {
			return 0, fmt.Errorf("storage: WAL sync: %w", err)
		}
		w.unsynced = 0
		w.notifyLocked() // the record is durable: wake tailers
	}
	if w.opt.SegmentBytes > 0 && w.segEnd >= int64(segHeaderLen)+w.opt.SegmentBytes {
		// Size rotation: seal the segment, continue in a fresh one. The
		// record above is already durable (or will be at the next group
		// flush — rotateLocked forces it), so a rotation failure is not a
		// commit failure: swallow it and retry on the next append.
		_ = w.rotateLocked()
	}
	return seq, nil
}

// rotateLocked seals the current segment and opens a fresh one based at
// the current sequence number, kicking the blob tier (a sealed segment
// is an upload candidate). Caller holds the lock.
func (w *WAL) rotateLocked() error {
	if w.unsynced > 0 {
		// The sealed file must be durable before the tier may upload it.
		if err := w.seg.Sync(); err != nil {
			return err
		}
		w.unsynced = 0
		w.notifyLocked()
	}
	if err := w.newSegment(w.seq); err != nil {
		return err
	}
	if w.tier != nil {
		w.tier.Kick()
	}
	return nil
}

// Sync flushes any group-committed appends to disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil || w.unsynced == 0 {
		return nil
	}
	if err := w.seg.Sync(); err != nil {
		return err
	}
	w.unsynced = 0
	w.notifyLocked() // the group-commit window is durable: wake tailers
	return nil
}

// ReplaySince implements WALBackend: it streams every durable batch with
// sequence number > since, in order. A torn or corrupt tail ends the
// replay silently (longest-durable-prefix semantics); a gap in the middle
// — records missing although later segments exist — is data loss and is
// reported as ErrCorruptWAL.
func (w *WAL) ReplaySince(since uint64, fn func(seq uint64, payload []byte) error) error {
	_, err := w.ReplayFromPos(TailPos{Seq: since}, fn)
	return err
}

// TailPos is a byte-accurate replay cursor: the last consumed sequence
// number plus the byte offset just past its record in the segment based
// at SegBase. The zero Off means "offset unknown — locate Seq by
// scanning", which is how a fresh replay starts.
type TailPos struct {
	SegBase uint64
	Off     int64
	Seq     uint64
}

// ReplayFromPos is ReplaySince with a resumable cursor: it streams every
// durable batch after pos.Seq and returns the position just past the
// last record it delivered (fn errors included — the returned position
// never re-covers a delivered record, so a windowed consumer can stop
// mid-sweep and resume without re-reading). When pos carries a byte
// offset and its segment still exists, the scan seeks straight to it —
// this is what keeps a live tailer O(new records) per sweep instead of
// re-decoding the whole current segment every wakeup; if the segment was
// truncated away (the consumer's lease had advanced past it), it falls
// back to the locate-by-scan path.
func (w *WAL) ReplayFromPos(pos TailPos, fn func(seq uint64, payload []byte) error) (TailPos, error) {
	w.mu.Lock()
	if w.seg != nil && w.unsynced > 0 {
		// Replay reads the files; make sure everything appended through
		// this handle is visible and durable first.
		if err := w.seg.Sync(); err != nil {
			w.mu.Unlock()
			return pos, err
		}
		w.unsynced = 0
		w.notifyLocked()
	}
	local, err := w.listSegments()
	t := w.tier
	w.mu.Unlock()
	if err != nil {
		return pos, err
	}
	// The replay source is the union of local segment files and blob-tier
	// segments, preferring local (no fetch, and the live segment only
	// exists locally). A segment released from local disk is read back
	// through the tier — this is what keeps Retain leases and historical
	// replays working after ReleaseLocal reclaims the files.
	type segRef struct {
		base  uint64
		local bool
	}
	var segs []segRef
	if t != nil {
		have := make(map[uint64]bool, len(local))
		for _, b := range local {
			have[b] = true
		}
		for _, s := range t.manifestSegs() {
			if !have[s.Base] {
				segs = append(segs, segRef{base: s.Base})
			}
		}
	}
	for _, b := range local {
		segs = append(segs, segRef{base: b, local: true})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	since := pos.Seq
	start, resume := 0, false
	if pos.Off >= int64(segHeaderLen) {
		for i, s := range segs {
			if s.base == pos.SegBase {
				start, resume = i, true
				break
			}
		}
	}
	if !resume {
		// Drop segments that end at or before since: segment i covers
		// (segs[i], segs[i+1]] (the last one is open-ended).
		for i := 0; i+1 < len(segs); i++ {
			if segs[i+1].base <= since {
				start = i + 1
			}
		}
	}
	next := since // last sequence number delivered (or skipped)
	out := pos
	for i := start; i < len(segs); i++ {
		base := segs[i].base
		if base > next {
			return out, fmt.Errorf("%w: log gap: segment starts after %d but batch %d is missing",
				ErrCorruptWAL, base, next+1)
		}
		var (
			src    io.ReadSeeker
			closer io.Closer
		)
		if segs[i].local {
			f, ferr := os.Open(w.segPath(base))
			switch {
			case ferr == nil:
				src, closer = f, f
			case errors.Is(ferr, os.ErrNotExist) && t != nil && t.hasSeg(base):
				// Released between the listing and the open: fall through
				// to the tier below.
			default:
				return out, ferr
			}
		}
		if src == nil {
			data, ferr := t.fetchSegment(base)
			if ferr != nil {
				return out, ferr
			}
			src = bytes.NewReader(data)
		}
		herr := checkSegHeader(src, base)
		if herr != nil {
			if closer != nil {
				closer.Close()
			}
			if errors.Is(herr, ErrCorruptWAL) && i == len(segs)-1 {
				return out, nil // torn newest segment: nothing durable in it
			}
			return out, herr
		}
		// scanBase seeds scanRecords' expected-sequence counter: the
		// segment base normally, the resume position's sequence number
		// when seeking into the middle of the cursor's segment.
		scanBase, offBase := base, int64(segHeaderLen)
		if resume && base == pos.SegBase {
			if _, err := src.Seek(pos.Off, io.SeekStart); err != nil {
				if closer != nil {
					closer.Close()
				}
				return out, err
			}
			scanBase, offBase = since, pos.Off
		}
		good, serr := scanRecords(src, scanBase, func(seq uint64, payload []byte) error {
			if seq <= since {
				next = seq
				return nil
			}
			if seq != next+1 {
				return fmt.Errorf("%w: log gap: batch %d follows %d", ErrCorruptWAL, seq, next)
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			next = seq
			return nil
		})
		if closer != nil {
			closer.Close()
		}
		// good counts only fully-consumed records (a record whose fn
		// errored is excluded), so the cursor lands exactly after the
		// last delivered one.
		out = TailPos{SegBase: base, Off: offBase + good, Seq: next}
		if serr != nil {
			return out, serr
		}
	}
	return out, nil
}

// Checkpoint implements WALBackend: it writes snapshot as the checkpoint
// covering every batch appended so far (temp-write + rename + dir sync,
// so a crash never exposes a torn checkpoint) and truncates the log — a
// fresh segment starts after the checkpointed sequence number and the
// older segments are deleted. Returns the checkpoint's version (= the
// sequence number it covers).
func (w *WAL) Checkpoint(snapshot []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return 0, errors.New("storage: WAL is closed")
	}
	// Batches the checkpoint covers must be durable before the checkpoint
	// claims to cover them.
	if w.unsynced > 0 {
		if err := w.seg.Sync(); err != nil {
			return 0, err
		}
		w.unsynced = 0
		w.notifyLocked()
	}
	seq := w.seq
	tmp, err := os.CreateTemp(w.dir, "ckpt-*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(snapshot); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), w.ckptPath(seq)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := w.syncDir(); err != nil {
		return 0, err
	}
	w.ckptSeq, w.liveBytes = seq, 0
	// Log truncation: switch to a fresh segment starting after seq, then
	// drop the now-redundant older segments. Skip the switch when the
	// current segment is already empty at seq (repeat checkpoint) — but a
	// poisoned empty segment is rewritten so the handle is usable again
	// (the checkpoint supersedes whatever the torn append lost).
	if seq == w.segBase && w.broken != nil {
		if err := writeSegHeader(w.seg, w.segBase); err != nil {
			return 0, err
		}
		w.segEnd = int64(segHeaderLen)
		w.broken = nil
	}
	if seq > w.segBase {
		if err := w.newSegment(seq); err != nil {
			return 0, err
		}
	}
	// The retention sweep runs on every checkpoint — including a repeat
	// checkpoint that rotated nothing — so a segment a lease kept back is
	// reclaimed by the first checkpoint after the lease advances past it
	// or is released, even when the leader has gone quiet and appends
	// nothing in between. (Before this, a lease released during
	// quiescence stranded its segments forever: repeat checkpoints
	// skipped truncation outright.)
	segs, err := w.listSegments()
	if err != nil {
		return 0, err
	}
	// Retention guard: segment i covers records (segs[i], segs[i+1]]
	// (the live segment at w.segBase == seq is always in the list, so
	// every older segment has a successor). A segment is disposable
	// only when every record it holds is at or below the lowest lease
	// floor — an attached tailer mid-catch-up still needs everything
	// above its floor, checkpoint or not. With a blob tier attached, two
	// more rules apply: never delete a segment the tier has not made
	// durable (the local file may be the only copy of history the tier
	// promises to keep forever), and — under ReleaseLocal — leases stop
	// blocking deletion, because a leased replay transparently fetches
	// released segments back from the tier.
	floor, guarded := w.retentionFloorLocked()
	removed := false
	for i, base := range segs {
		if base >= seq {
			continue // the live segment
		}
		end := seq
		if i+1 < len(segs) {
			end = segs[i+1]
		}
		if w.tier != nil && !w.tier.segDurableFlushed(base) {
			continue // the blob tier still needs the local file
		}
		if guarded && end > floor && (w.tier == nil || !w.tier.opt.ReleaseLocal) {
			continue // a tailer still needs records in (base, end]
		}
		if err := os.Remove(w.segPath(base)); err != nil {
			return 0, err
		}
		removed = true
	}
	if removed {
		if err := w.syncDir(); err != nil {
			return 0, err
		}
	}
	if w.tier != nil {
		w.tier.Kick() // a new checkpoint (and maybe a sealed segment) to upload
	}
	return seq, nil
}

// sealedSeg is one local sealed segment, as the blob tier sees it.
type sealedSeg struct {
	base, end uint64
	path      string
}

// sealedLocal snapshots the local artifacts the blob tier may upload:
// sealed segments (every local segment below the live one) and local
// checkpoint versions. Listing errors yield empty results — the uploader
// finds nothing to do and retries on the next kick.
func (w *WAL) sealedLocal() (segs []sealedSeg, segBase uint64, ckpts []uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	segBase = w.segBase
	bases, err := w.listSegments()
	if err != nil {
		return nil, segBase, nil
	}
	for i, base := range bases {
		if base >= segBase {
			continue
		}
		end := segBase
		if i+1 < len(bases) {
			end = bases[i+1]
		}
		segs = append(segs, sealedSeg{base: base, end: end, path: w.segPath(base)})
	}
	ckpts, err = w.listCheckpoints()
	if err != nil {
		return segs, segBase, nil
	}
	return segs, segBase, ckpts
}

// releaseLocal deletes local sealed segment files that the blob tier
// holds durably AND that a blob-durable checkpoint covers — so even if
// every blob object but the newest checkpoint vanished, local recovery
// through the tier would still reach the same state. Called by the
// tier's upload pass when ReleaseLocal is set.
func (w *WAL) releaseLocal(t *BlobTier) error {
	ck, ok := t.flushedNewestCkpt()
	if !ok {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return nil
	}
	segs, err := w.listSegments()
	if err != nil {
		return err
	}
	removed := false
	for i, base := range segs {
		if base >= w.segBase {
			continue
		}
		end := w.segBase
		if i+1 < len(segs) {
			end = segs[i+1]
		}
		if end > ck || !t.segDurableFlushed(base) {
			continue
		}
		if err := os.Remove(w.segPath(base)); err != nil {
			return err
		}
		t.noteReleased()
		removed = true
	}
	if removed {
		return w.syncDir()
	}
	return nil
}

// RetentionStats reports the WAL's current retention state; see the
// RetentionStats type (tier.go).
func (w *WAL) RetentionStats() RetentionStats {
	w.mu.Lock()
	rs := RetentionStats{Seq: w.seq, CheckpointSeq: w.ckptSeq}
	if floor, guarded := w.retentionFloorLocked(); guarded {
		rs.LeaseFloor = floor
	}
	rs.Leases = len(w.leases)
	segs, _ := w.listSegments()
	t := w.tier
	w.mu.Unlock()
	rs.LocalSegments = len(segs)
	if len(segs) > 0 {
		rs.OldestLocalBase = segs[0]
	}
	if t != nil {
		ts := t.Stats()
		rs.Tier = &ts
	}
	return rs
}

// ---------------------------------------------------------------- Backend

// Put implements Backend: for a WAL, storing a snapshot is a checkpoint.
func (w *WAL) Put(data []byte) (uint64, error) { return w.Checkpoint(data) }

// Get implements Backend over checkpoint snapshots. A checkpoint missing
// locally (pruned after upload) is fetched back from the blob tier.
func (w *WAL) Get(version uint64) ([]byte, error) {
	data, err := os.ReadFile(w.ckptPath(version))
	if errors.Is(err, os.ErrNotExist) {
		if t := w.tierRef(); t != nil {
			return t.fetchCheckpoint(version)
		}
		return nil, fmt.Errorf("%w: %d", ErrNoVersion, version)
	}
	return data, err
}

// checkpointVersions merges local checkpoint versions with the blob
// tier's (ascending, deduplicated) — the tier makes checkpoint history
// bottomless, so addressable versions outlive local pruning.
func (w *WAL) checkpointVersions() ([]uint64, error) {
	cks, err := w.listCheckpoints()
	if err != nil {
		return nil, err
	}
	t := w.tierRef()
	if t == nil {
		return cks, nil
	}
	seen := make(map[uint64]bool, len(cks))
	for _, v := range cks {
		seen[v] = true
	}
	for _, v := range t.manifestCkptSeqs() {
		if !seen[v] {
			cks = append(cks, v)
		}
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i] < cks[j] })
	return cks, nil
}

// Latest implements Backend: the newest checkpoint snapshot. Batches
// appended after it are not reflected — recovery is Latest + ReplaySince
// (the Store's LoadLatest does exactly that for WAL backends).
func (w *WAL) Latest() (uint64, []byte, error) {
	cks, err := w.checkpointVersions()
	if err != nil {
		return 0, nil, err
	}
	if len(cks) == 0 {
		return 0, nil, ErrNoVersion
	}
	v := cks[len(cks)-1]
	data, err := w.Get(v)
	return v, data, err
}

// Versions implements Backend: the checkpoint versions, ascending —
// blob-tier checkpoints included.
func (w *WAL) Versions() ([]uint64, error) { return w.checkpointVersions() }

// Prune implements Backend: drops LOCAL checkpoints strictly below keep,
// always retaining the newest one (the log after it is the live tail).
// Blob-tier copies are untouched — the tier's history is bottomless by
// design, so a pruned version stays addressable through Get.
func (w *WAL) Prune(keep uint64) error {
	cks, err := w.listCheckpoints()
	if err != nil || len(cks) == 0 {
		return err
	}
	newest := cks[len(cks)-1]
	for _, v := range cks {
		if v < keep && v != newest {
			if err := os.Remove(w.ckptPath(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ------------------------------------------------------------- dir utils

func (w *WAL) segPath(base uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%016d.log", base))
}

func (w *WAL) ckptPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("ckpt-%016d.ltsnap", seq))
}

// listSegments returns the segment base numbers, ascending.
func (w *WAL) listSegments() ([]uint64, error) {
	return w.scanDir("wal-%016d.log")
}

// listCheckpoints returns the checkpoint versions, ascending.
func (w *WAL) listCheckpoints() ([]uint64, error) {
	return w.scanDir("ckpt-%016d.ltsnap")
}

func (w *WAL) scanDir(pattern string) ([]uint64, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	out := []uint64{}
	for _, e := range entries {
		var v uint64
		if n, err := fmt.Sscanf(e.Name(), pattern, &v); err == nil && n == 1 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir makes directory-entry changes (create/rename/delete) durable.
func (w *WAL) syncDir() error {
	dir, err := os.Open(w.dir)
	if err != nil {
		return err
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	return err
}
