package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// WAL is a write-ahead-logged Backend: commits append one fsync'd framed
// record to a log segment instead of rewriting a snapshot, and a
// checkpoint writes a full snapshot and truncates the log. The recovery
// contract is graviton-style append-only durability: after any crash,
// reopening yields exactly the longest durable prefix — the newest
// checkpoint plus every intact log record after it; a torn tail or a
// corrupt record is detected (length + CRC-32C framing) and discarded.
//
// On-disk layout (one directory):
//
//	ckpt-%016d.ltsnap   checkpoint snapshots; the number is the sequence
//	                    number of the last batch the snapshot covers
//	wal-%016d.log       log segments; the number is the sequence number
//	                    the segment starts after (its first record is
//	                    base+1). Segment header: 8-byte magic "LTWAL\0\1"
//	                    + base as uint64 LE; then framed records
//	                    (walrecord.go).
//
// As a Backend, a WAL's versions are its checkpoints: Put == Checkpoint,
// Get/Latest/Versions/Prune address checkpoint snapshots. Because a
// checkpoint's version is the sequence number it covers, two checkpoints
// with no batches between them share a version (same state, same number)
// — the only departure from the plain backends' strictly-growing Put.
type WAL struct {
	mu       sync.Mutex
	dir      string
	opt      WALOptions
	seg      *os.File // current segment, positioned at its durable end
	segBase  uint64
	segEnd   int64  // byte offset of the segment's last complete record
	seq      uint64 // last appended batch sequence number
	unsynced int    // appends since the last fsync (group commit)
	broken   error  // a partial append this handle could not roll back
}

// WALOptions tunes a WAL.
type WALOptions struct {
	// SyncEvery groups commits: the segment is fsync'd once per SyncEvery
	// appends instead of on every append. 0 or 1 syncs every append (full
	// durability); larger values trade the tail of a crash for latency.
	// Sync and Checkpoint always flush regardless.
	SyncEvery int
}

// walMagic heads every log segment: "LTWAL" + NUL + format version 1.
var walMagic = [8]byte{'L', 'T', 'W', 'A', 'L', 0, 0, 1}

// segHeaderLen is the segment header: magic + base sequence number.
const segHeaderLen = len(walMagic) + 8

// OpenWAL opens (creating if needed) a write-ahead log in dir and
// recovers its durable state: the newest segment is scanned and its torn
// or corrupt tail, if any, is truncated away so appends continue from the
// last durable record.
func OpenWAL(dir string, opt WALOptions) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opt: opt}
	// Sweep checkpoint temp files a crash mid-Checkpoint left behind:
	// they are incomplete by definition (a finished checkpoint is renamed
	// to its ckpt-*.ltsnap name before Checkpoint returns).
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if name := e.Name(); filepath.Ext(name) == ".tmp" && strings.HasPrefix(name, "ckpt-") {
				_ = os.Remove(filepath.Join(dir, name))
			}
		}
	}
	segs, err := w.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		base := uint64(0)
		if cks, err := w.listCheckpoints(); err != nil {
			return nil, err
		} else if len(cks) > 0 {
			base = cks[len(cks)-1]
		}
		if err := w.newSegment(base); err != nil {
			return nil, err
		}
		return w, nil
	}
	base := segs[len(segs)-1]
	f, err := os.OpenFile(w.segPath(base), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	good, lastSeq, err := repairSegment(f, base)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.seg, w.segBase, w.segEnd, w.seq = f, base, good, lastSeq
	return w, nil
}

// repairSegment scans an opened segment, truncates any torn or corrupt
// tail (including a torn header, which resets the file to an empty
// segment), and returns the durable end offset and the last durable
// sequence number.
func repairSegment(f *os.File, base uint64) (int64, uint64, error) {
	if err := checkSegHeader(f, base); err != nil {
		if !errors.Is(err, ErrCorruptWAL) {
			return 0, 0, err // real I/O failure: do not destroy the file
		}
		// Torn or foreign header: treat the whole file as torn and
		// rewrite it as an empty segment rather than appending after junk.
		if err := writeSegHeader(f, base); err != nil {
			return 0, 0, err
		}
		return int64(segHeaderLen), base, nil
	}
	lastSeq := base
	good, err := scanRecords(f, base, func(seq uint64, payload []byte) error {
		lastSeq = seq
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	end := int64(segHeaderLen) + good
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	if st.Size() > end {
		if err := f.Truncate(end); err != nil {
			return 0, 0, err
		}
		if err := f.Sync(); err != nil {
			return 0, 0, err
		}
	}
	return end, lastSeq, nil
}

// checkSegHeader reads and verifies the segment header; the file offset
// is left just past it on success. A short or mismatched header reports
// ErrCorruptWAL (repairable); a real read failure comes back as-is.
func checkSegHeader(r io.Reader, wantBase uint64) error {
	var head [segHeaderLen]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if isStreamEnd(err) {
			return fmt.Errorf("%w: segment header: %v", ErrCorruptWAL, err)
		}
		return err
	}
	for i, b := range walMagic {
		if head[i] != b {
			return fmt.Errorf("%w: bad segment magic", ErrCorruptWAL)
		}
	}
	if base := binary.LittleEndian.Uint64(head[len(walMagic):]); base != wantBase {
		return fmt.Errorf("%w: segment base %d, want %d", ErrCorruptWAL, base, wantBase)
	}
	return nil
}

// writeSegHeader truncates f and writes a fresh header for base.
func writeSegHeader(f *os.File, base uint64) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var head [segHeaderLen]byte
	copy(head[:], walMagic[:])
	binary.LittleEndian.PutUint64(head[len(walMagic):], base)
	if _, err := f.Write(head[:]); err != nil {
		return err
	}
	return f.Sync()
}

// newSegment creates and syncs an empty segment for base and makes it
// current (caller holds the lock or is the constructor).
func (w *WAL) newSegment(base uint64) error {
	f, err := os.OpenFile(w.segPath(base), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if err := writeSegHeader(f, base); err != nil {
		f.Close()
		return err
	}
	if err := w.syncDir(); err != nil {
		f.Close()
		return err
	}
	if w.seg != nil {
		w.seg.Close()
	}
	w.seg, w.segBase, w.segEnd, w.seq, w.unsynced = f, base, int64(segHeaderLen), base, 0
	w.broken = nil
	return nil
}

// Close releases the segment file handle. Appending after Close fails.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return nil
	}
	err := w.seg.Sync()
	if cerr := w.seg.Close(); err == nil {
		err = cerr
	}
	w.seg = nil
	return err
}

// Seq returns the sequence number of the last appended batch (0 before
// any append or checkpoint).
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// LiveLog reports the size of the live log — framed record bytes and
// record count appended since the last checkpoint. Segments rotate
// exactly at checkpoints, so the live log is the current segment. The
// Store's auto-checkpoint policy polls this after each logged commit.
func (w *WAL) LiveLog() (bytes int64, records int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return 0, 0
	}
	return w.segEnd - int64(segHeaderLen), int(w.seq - w.segBase)
}

// AppendBatch implements WALBackend: it frames payload as the next record
// and appends it to the current segment. With SyncEvery ≤ 1 the append is
// fsync'd before returning — the batch is durable once AppendBatch
// returns; with group commit it becomes durable at the next flush.
func (w *WAL) AppendBatch(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return 0, errors.New("storage: WAL is closed")
	}
	if w.broken != nil {
		return 0, fmt.Errorf("storage: WAL poisoned by an unrepaired partial append: %w", w.broken)
	}
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("storage: WAL batch of %d bytes exceeds the record limit", len(payload))
	}
	seq := w.seq + 1
	frame := frameRecord(seq, payload)
	if _, err := w.seg.Write(frame); err != nil {
		// The record may be half-written. Roll the file back to the last
		// complete record so later appends cannot land after torn bytes
		// (recovery would silently discard them); if the rollback itself
		// fails, poison the handle — reopening repairs the file.
		if terr := w.seg.Truncate(w.segEnd); terr != nil {
			w.broken = err
		} else if _, serr := w.seg.Seek(w.segEnd, io.SeekStart); serr != nil {
			w.broken = err
		}
		return 0, fmt.Errorf("storage: WAL append: %w", err)
	}
	w.segEnd += int64(len(frame))
	w.seq = seq
	w.unsynced++
	if w.opt.SyncEvery <= 1 || w.unsynced >= w.opt.SyncEvery {
		if err := w.seg.Sync(); err != nil {
			return 0, fmt.Errorf("storage: WAL sync: %w", err)
		}
		w.unsynced = 0
	}
	return seq, nil
}

// Sync flushes any group-committed appends to disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil || w.unsynced == 0 {
		return nil
	}
	if err := w.seg.Sync(); err != nil {
		return err
	}
	w.unsynced = 0
	return nil
}

// ReplaySince implements WALBackend: it streams every durable batch with
// sequence number > since, in order. A torn or corrupt tail ends the
// replay silently (longest-durable-prefix semantics); a gap in the middle
// — records missing although later segments exist — is data loss and is
// reported as ErrCorruptWAL.
func (w *WAL) ReplaySince(since uint64, fn func(seq uint64, payload []byte) error) error {
	w.mu.Lock()
	if w.seg != nil && w.unsynced > 0 {
		// Replay reads the files; make sure everything appended through
		// this handle is visible and durable first.
		if err := w.seg.Sync(); err != nil {
			w.mu.Unlock()
			return err
		}
		w.unsynced = 0
	}
	segs, err := w.listSegments()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	// Drop segments that end at or before since: segment i covers
	// (segs[i], segs[i+1]] (the last one is open-ended).
	start := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= since {
			start = i + 1
		}
	}
	next := since // last sequence number delivered (or skipped)
	for i := start; i < len(segs); i++ {
		base := segs[i]
		if base > next {
			return fmt.Errorf("%w: log gap: segment starts after %d but batch %d is missing",
				ErrCorruptWAL, base, next+1)
		}
		f, err := os.Open(w.segPath(base))
		if err != nil {
			return err
		}
		herr := checkSegHeader(f, base)
		if herr != nil {
			f.Close()
			if errors.Is(herr, ErrCorruptWAL) && i == len(segs)-1 {
				return nil // torn newest segment: nothing durable in it
			}
			return herr
		}
		_, err = scanRecords(f, base, func(seq uint64, payload []byte) error {
			if seq <= since {
				next = seq
				return nil
			}
			if seq != next+1 {
				return fmt.Errorf("%w: log gap: batch %d follows %d", ErrCorruptWAL, seq, next)
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			next = seq
			return nil
		})
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint implements WALBackend: it writes snapshot as the checkpoint
// covering every batch appended so far (temp-write + rename + dir sync,
// so a crash never exposes a torn checkpoint) and truncates the log — a
// fresh segment starts after the checkpointed sequence number and the
// older segments are deleted. Returns the checkpoint's version (= the
// sequence number it covers).
func (w *WAL) Checkpoint(snapshot []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return 0, errors.New("storage: WAL is closed")
	}
	// Batches the checkpoint covers must be durable before the checkpoint
	// claims to cover them.
	if w.unsynced > 0 {
		if err := w.seg.Sync(); err != nil {
			return 0, err
		}
		w.unsynced = 0
	}
	seq := w.seq
	tmp, err := os.CreateTemp(w.dir, "ckpt-*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(snapshot); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), w.ckptPath(seq)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := w.syncDir(); err != nil {
		return 0, err
	}
	// Log truncation: switch to a fresh segment starting after seq, then
	// drop the now-redundant older segments. Skip the switch when the
	// current segment is already empty at seq (repeat checkpoint) — but a
	// poisoned empty segment is rewritten so the handle is usable again
	// (the checkpoint supersedes whatever the torn append lost).
	if seq == w.segBase && w.broken != nil {
		if err := writeSegHeader(w.seg, w.segBase); err != nil {
			return 0, err
		}
		w.segEnd = int64(segHeaderLen)
		w.broken = nil
	}
	if seq > w.segBase {
		if err := w.newSegment(seq); err != nil {
			return 0, err
		}
		segs, err := w.listSegments()
		if err != nil {
			return 0, err
		}
		for _, base := range segs {
			if base < seq {
				if err := os.Remove(w.segPath(base)); err != nil {
					return 0, err
				}
			}
		}
		if err := w.syncDir(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// ---------------------------------------------------------------- Backend

// Put implements Backend: for a WAL, storing a snapshot is a checkpoint.
func (w *WAL) Put(data []byte) (uint64, error) { return w.Checkpoint(data) }

// Get implements Backend over checkpoint snapshots.
func (w *WAL) Get(version uint64) ([]byte, error) {
	data, err := os.ReadFile(w.ckptPath(version))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %d", ErrNoVersion, version)
	}
	return data, err
}

// Latest implements Backend: the newest checkpoint snapshot. Batches
// appended after it are not reflected — recovery is Latest + ReplaySince
// (the Store's LoadLatest does exactly that for WAL backends).
func (w *WAL) Latest() (uint64, []byte, error) {
	cks, err := w.listCheckpoints()
	if err != nil {
		return 0, nil, err
	}
	if len(cks) == 0 {
		return 0, nil, ErrNoVersion
	}
	v := cks[len(cks)-1]
	data, err := w.Get(v)
	return v, data, err
}

// Versions implements Backend: the checkpoint versions, ascending.
func (w *WAL) Versions() ([]uint64, error) { return w.listCheckpoints() }

// Prune implements Backend: drops checkpoints strictly below keep, always
// retaining the newest one (the log after it is the live tail).
func (w *WAL) Prune(keep uint64) error {
	cks, err := w.listCheckpoints()
	if err != nil || len(cks) == 0 {
		return err
	}
	newest := cks[len(cks)-1]
	for _, v := range cks {
		if v < keep && v != newest {
			if err := os.Remove(w.ckptPath(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ------------------------------------------------------------- dir utils

func (w *WAL) segPath(base uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%016d.log", base))
}

func (w *WAL) ckptPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("ckpt-%016d.ltsnap", seq))
}

// listSegments returns the segment base numbers, ascending.
func (w *WAL) listSegments() ([]uint64, error) {
	return w.scanDir("wal-%016d.log")
}

// listCheckpoints returns the checkpoint versions, ascending.
func (w *WAL) listCheckpoints() ([]uint64, error) {
	return w.scanDir("ckpt-%016d.ltsnap")
}

func (w *WAL) scanDir(pattern string) ([]uint64, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	out := []uint64{}
	for _, e := range entries {
		var v uint64
		if n, err := fmt.Sscanf(e.Name(), pattern, &v); err == nil && n == 1 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir makes directory-entry changes (create/rename/delete) durable.
func (w *WAL) syncDir() error {
	dir, err := os.Open(w.dir)
	if err != nil {
		return err
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	return err
}
