package storage_test

// Unit tests for the log-shipping seam (ship.go): catch-up + live tail
// delivery, the segment-retention guard that keeps a leader Checkpoint
// from dropping segments a slow tailer still needs (the PR's regression
// for WAL.Prune/auto-checkpoint truncation assuming no external
// ReplaySince readers), reclamation once the tailer advances, and the
// close/unblock contract.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ltree-db/ltree/internal/storage"
)

// payload builds a distinguishable batch payload.
func payload(i int) []byte { return []byte(fmt.Sprintf("batch-%03d", i)) }

// appendN appends payloads [from, to] to the WAL.
func appendN(t *testing.T, w *storage.WAL, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		if _, err := w.AppendBatch(payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// segmentCount counts wal-*.log files in dir.
func segmentCount(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && filepath.Ext(e.Name()) == ".log" {
			n++
		}
	}
	return n
}

func TestTailerCatchUpThenLiveTail(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 5)

	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()

	// Catch-up: the five pre-existing batches stream in order.
	for i := 1; i <= 5; i++ {
		seq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if seq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("next %d: got seq=%d payload=%q", i, seq, got)
		}
	}
	if _, _, ok, err := tail.TryNext(); err != nil || ok {
		t.Fatalf("TryNext at the durable end: ok=%v err=%v", ok, err)
	}

	// Live tail: a concurrent appender wakes the blocked Next.
	go func() {
		time.Sleep(10 * time.Millisecond)
		for i := 6; i <= 8; i++ {
			if _, err := w.AppendBatch(payload(i)); err != nil {
				return
			}
		}
	}()
	for i := 6; i <= 8; i++ {
		seq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("live next %d: %v", i, err)
		}
		if seq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("live next %d: got seq=%d payload=%q", i, seq, got)
		}
	}
	if got := tail.Seq(); got != 8 {
		t.Fatalf("tailer seq = %d, want 8", got)
	}
}

// TestTailerRetentionSurvivesCheckpoint is the regression for the
// truncation guard: before it, Checkpoint deleted every pre-checkpoint
// segment outright, so a tailer mid-catch-up found a log gap and died
// with ErrCorruptWAL. With the lease in place the slow tailer keeps
// streaming across the checkpoint, and the held-back segments are
// reclaimed by a later checkpoint once the tailer has advanced.
func TestTailerRetentionSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 6)

	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()

	// Consume only the first two batches, then checkpoint the leader:
	// the old segment still holds batches 3–6 the tailer needs.
	for i := 1; i <= 2; i++ {
		if _, _, err := tail.Next(); err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
	}
	if _, err := w.Checkpoint([]byte("ckpt-at-6")); err != nil {
		t.Fatal(err)
	}
	if n := segmentCount(t, dir); n != 2 {
		t.Fatalf("checkpoint under an active lease kept %d segments, want 2 (old + live)", n)
	}
	appendN(t, w, 7, 8)

	// The slow tailer crosses the checkpoint boundary without a gap.
	for i := 3; i <= 8; i++ {
		seq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("next %d across checkpoint: %v", i, err)
		}
		if seq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("next %d: got seq=%d payload=%q", i, seq, got)
		}
	}

	// Once the tailer has advanced past the old segment, the next
	// checkpoint reclaims it.
	if _, err := w.Checkpoint([]byte("ckpt-at-8")); err != nil {
		t.Fatal(err)
	}
	if n := segmentCount(t, dir); n != 1 {
		t.Fatalf("checkpoint after the tailer advanced kept %d segments, want 1", n)
	}
}

// TestTailerGapAfterTruncation pins the failure mode the guard prevents:
// a tailer attached below what the log still holds must report the gap
// loudly, not silently skip records.
func TestTailerGapAfterTruncation(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 4)
	if _, err := w.Checkpoint([]byte("ckpt")); err != nil { // truncates 1–4 (no lease yet)
		t.Fatal(err)
	}
	appendN(t, w, 5, 6)

	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(2) // records 3–4 are gone
	defer tail.Close()
	if _, _, err := tail.Next(); !errors.Is(err, storage.ErrCorruptWAL) {
		t.Fatalf("tailing into a truncated range: err=%v, want ErrCorruptWAL gap", err)
	}
}

func TestTailLatestBootstrap(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	// No checkpoint yet: bootstrap must refuse rather than invent state.
	if _, _, _, err := sh.TailLatest(); !errors.Is(err, storage.ErrNoVersion) {
		t.Fatalf("TailLatest on a checkpoint-less WAL: err=%v, want ErrNoVersion", err)
	}

	appendN(t, w, 1, 3)
	if _, err := w.Checkpoint([]byte("snapshot-at-3")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 4, 5)

	seq, snap, tail, err := sh.TailLatest()
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if seq != 3 || string(snap) != "snapshot-at-3" {
		t.Fatalf("TailLatest = (%d, %q), want (3, snapshot-at-3)", seq, snap)
	}
	for i := 4; i <= 5; i++ {
		gotSeq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if gotSeq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("next %d: got seq=%d payload=%q", i, gotSeq, got)
		}
	}
}

func TestTailerCloseUnblocksNext(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)

	errc := make(chan error, 1)
	go func() {
		_, _, err := tail.Next()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tail.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, storage.ErrTailerClosed) {
			t.Fatalf("unblocked Next returned %v, want ErrTailerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock a waiting Next")
	}
	// Closed stays closed.
	if _, _, _, err := tail.TryNext(); !errors.Is(err, storage.ErrTailerClosed) {
		t.Fatalf("TryNext after Close: %v", err)
	}
	if err := tail.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestTailerWindowCrossingDrain streams far more records than one fill
// window (256) through a tailer, with a checkpoint rotation in the
// middle — exercising the byte-cursor resume path: a window that closes
// mid-segment must resume exactly after the last buffered record, never
// duplicating or skipping one.
func TestTailerWindowCrossingDrain(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const total = 600
	appendN(t, w, 1, total/2)
	if _, err := w.Checkpoint([]byte("mid")); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, total/2+1, total)

	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	// Attach at 0: the pre-checkpoint segment is gone (no lease existed
	// when the checkpoint ran), so the tailer must report the gap…
	gapTail := sh.Tail(0)
	if _, _, err := gapTail.Next(); !errors.Is(err, storage.ErrCorruptWAL) {
		t.Fatalf("tail below the truncation: err=%v, want gap", err)
	}
	gapTail.Close()
	// …while attaching at the checkpoint streams the rest, in order,
	// across several fill windows.
	tail := sh.Tail(total / 2)
	defer tail.Close()
	for i := total/2 + 1; i <= total; i++ {
		seq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if seq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("next %d: got seq=%d payload=%q", i, seq, got)
		}
	}
	if _, _, ok, err := tail.TryNext(); err != nil || ok {
		t.Fatalf("drained tailer: ok=%v err=%v", ok, err)
	}
}

// TestTailerSourceClosed: closing the WAL must unpark a waiting tailer
// with ErrSourceClosed (not leave it wedged forever), after delivering
// everything durable.
func TestTailerSourceClosed(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 2)
	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()
	for i := 1; i <= 2; i++ {
		if _, _, err := tail.Next(); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := tail.Next()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, storage.ErrSourceClosed) {
			t.Fatalf("parked Next after WAL.Close: err=%v, want ErrSourceClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WAL.Close left the tailer parked")
	}
	if _, _, err := tail.Next(); !errors.Is(err, storage.ErrSourceClosed) {
		t.Fatalf("Next on a closed source: %v", err)
	}
}

// TestTailerPreservesGroupCommit: a parked tailer must not wake per
// group-commit buffered append (its sweep would fsync the segment,
// degrading a SyncEvery>1 leader to fsync-per-commit); the broadcast
// fires only when records become durable.
func TestTailerPreservesGroupCommit(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()

	got := make(chan uint64, 1)
	go func() {
		seq, _, err := tail.Next()
		if err != nil {
			return
		}
		got <- seq
	}()
	time.Sleep(20 * time.Millisecond) // let the tailer park
	if _, err := w.AppendBatch(payload(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case seq := <-got:
		t.Fatalf("buffered (unsynced) append woke the parked tailer (seq %d)", seq)
	case <-time.After(50 * time.Millisecond):
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case seq := <-got:
		if seq != 1 {
			t.Fatalf("delivered seq %d, want 1", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sync did not wake the parked tailer")
	}
}

// TestTailerStopsOnRebase: MarkRebased (the store's repair path after a
// lost batch) must stop an attached tailer with ErrShipRebased — the op
// stream past the repair no longer reconstructs the leader.
func TestTailerStopsOnRebase(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 2)
	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()
	if _, _, err := tail.Next(); err != nil {
		t.Fatal(err)
	}

	// Park the tailer past the durable end, then re-base: the wake must
	// surface the error (after the remaining buffered/durable record).
	errc := make(chan error, 1)
	go func() {
		for {
			if _, _, err := tail.Next(); err != nil {
				errc <- err
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	w.MarkRebased()
	select {
	case err := <-errc:
		if !errors.Is(err, storage.ErrShipRebased) {
			t.Fatalf("tailer after MarkRebased: err=%v, want ErrShipRebased", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MarkRebased did not stop the tailer")
	}
	// A fresh tailer attached after the re-base is fine.
	fresh := sh.Tail(2)
	defer fresh.Close()
	if _, _, ok, err := fresh.TryNext(); err != nil || ok {
		t.Fatalf("fresh post-rebase tailer: ok=%v err=%v", ok, err)
	}
}

// TestTailerGroupCommitVisibility: records appended under group commit
// (unsynced) must still reach a tailer — the sweep syncs before reading.
func TestTailerGroupCommitVisibility(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{SyncEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 3) // all three sit in the unsynced window
	sh, err := storage.NewShipper(w)
	if err != nil {
		t.Fatal(err)
	}
	tail := sh.Tail(0)
	defer tail.Close()
	for i := 1; i <= 3; i++ {
		seq, got, err := tail.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if seq != uint64(i) || !bytes.Equal(got, payload(i)) {
			t.Fatalf("next %d: got seq=%d payload=%q", i, seq, got)
		}
	}
}
