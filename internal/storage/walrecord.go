package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file defines the WAL wire format: the logical operations a write
// batch performs on a labeled document, their batch payload encoding, and
// the crash-tolerant record framing that wal.go appends to segment files.
//
// Op payload encoding (one batch = one record payload):
//
//	nops                uvarint
//	per op: kind        1 byte
//	  OpInsert:  path, idx uvarint, labels, subtree (v2 DOM node encoding)
//	  OpDelete:  path, labels (1 entry: begin label of the deleted root)
//	  OpMove:    path (source), path (destination parent), idx uvarint, labels
//	  OpCompact: nothing
//	  OpStamp:   32 raw bytes — the writer's post-batch index root hash
//	             (an integrity annotation; replay skips it, followers
//	             compare it against their own recomputed root)
//	path   = uvarint count + one uvarint child index per step from the root
//	labels = uvarint count + first label absolute, then strictly positive
//	         deltas — the same delta coding the v2 snapshot codec uses
//	         (run labels are strictly increasing, so gaps are ~1 byte each)
//
// Record framing inside a segment (after the 16-byte segment header,
// see wal.go):
//
//	length  uint32 LE   payload bytes
//	crc     uint32 LE   CRC-32C (Castagnoli) over seq bytes + payload
//	seq     uint64 LE   batch sequence number
//	payload length bytes
//
// A record is durable iff it is complete and its CRC matches; scanning
// stops at the first torn or corrupt record, which makes "the longest
// durable prefix" the recovery semantics.

// OpKind discriminates WAL operations.
type OpKind byte

// WAL operation kinds.
const (
	OpInsert  OpKind = 1 // splice Subtree as the Path node's Idx-th child
	OpDelete  OpKind = 2 // delete the subtree rooted at Path
	OpMove    OpKind = 3 // move subtree at Path to Dst's Idx-th child
	OpCompact OpKind = 4 // rebuild labels without tombstones
	OpStamp   OpKind = 5 // post-batch index root hash (no document effect)
)

// Op is one logical document mutation, serializable and replayable. Nodes
// are referenced by their child-index path from the root at the moment the
// op ran; Labels records the labels the op produced (for OpInsert/OpMove
// the spliced subtree's full token run, for OpDelete the deleted root's
// begin label), which replay verifies to detect divergence.
type Op struct {
	Kind   OpKind
	Path   []uint32 // target node (OpDelete/OpMove) or parent (OpInsert)
	Idx    uint32   // insertion position (OpInsert/OpMove)
	Dst    []uint32 // destination parent path (OpMove)
	Labels []uint64 // post-op token labels, strictly increasing
	Sub    *NodeRec // inserted subtree (OpInsert)
	Root   [32]byte // post-batch index root hash (OpStamp)
}

// crcTable is the Castagnoli polynomial table shared by framing and scan.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecord bounds one framed record's payload so a corrupt length prefix
// cannot force a huge allocation before the CRC check fails.
const maxRecord = 1 << 30

// recordHeaderLen is the fixed framing prefix: length + crc + seq.
const recordHeaderLen = 4 + 4 + 8

// ErrCorruptWAL reports a malformed WAL payload or segment.
var ErrCorruptWAL = errors.New("storage: corrupt WAL")

// EncodeOps serializes a batch of ops into a record payload.
func EncodeOps(ops []Op) ([]byte, error) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	putUvarint(bw, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		if err := bw.WriteByte(byte(op.Kind)); err != nil {
			return nil, err
		}
		switch op.Kind {
		case OpInsert:
			putPath(bw, op.Path)
			putUvarint(bw, uint64(op.Idx))
			if err := putLabels(bw, op.Labels); err != nil {
				return nil, err
			}
			if op.Sub == nil {
				return nil, fmt.Errorf("storage: encode op %d: insert without subtree", i)
			}
			if err := writeNode(bw, op.Sub); err != nil {
				return nil, err
			}
		case OpDelete:
			putPath(bw, op.Path)
			if err := putLabels(bw, op.Labels); err != nil {
				return nil, err
			}
		case OpMove:
			putPath(bw, op.Path)
			putPath(bw, op.Dst)
			putUvarint(bw, uint64(op.Idx))
			if err := putLabels(bw, op.Labels); err != nil {
				return nil, err
			}
		case OpCompact:
			// no body
		case OpStamp:
			if _, err := bw.Write(op.Root[:]); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("storage: encode op %d: unknown kind %d", i, op.Kind)
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeOps parses a record payload back into its op batch. Every count is
// bounded and trailing garbage is rejected, so a payload that passed the
// CRC but was encoded by a buggy writer still fails loudly instead of
// replaying nonsense.
func DecodeOps(payload []byte) ([]Op, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	nops, err := getInt(br)
	if err != nil {
		return nil, fmt.Errorf("%w: op count: %v", ErrCorruptWAL, err)
	}
	// Every op costs at least one payload byte.
	if nops > len(payload) {
		return nil, fmt.Errorf("%w: %d ops in %d bytes", ErrCorruptWAL, nops, len(payload))
	}
	ops := make([]Op, 0, nops)
	for i := 0; i < nops; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: op %d kind: %v", ErrCorruptWAL, i, err)
		}
		op := Op{Kind: OpKind(kind)}
		switch op.Kind {
		case OpInsert:
			if op.Path, err = getPath(br); err != nil {
				return nil, fmt.Errorf("%w: op %d: %v", ErrCorruptWAL, i, err)
			}
			idx, err := getInt(br)
			if err != nil {
				return nil, fmt.Errorf("%w: op %d idx: %v", ErrCorruptWAL, i, err)
			}
			op.Idx = uint32(idx)
			if op.Labels, err = getLabels(br); err != nil {
				return nil, fmt.Errorf("%w: op %d: %v", ErrCorruptWAL, i, err)
			}
			sub, err := readNode(br, 0)
			if err != nil {
				return nil, fmt.Errorf("%w: op %d subtree: %v", ErrCorruptWAL, i, err)
			}
			op.Sub = sub
		case OpDelete:
			if op.Path, err = getPath(br); err != nil {
				return nil, fmt.Errorf("%w: op %d: %v", ErrCorruptWAL, i, err)
			}
			if op.Labels, err = getLabels(br); err != nil {
				return nil, fmt.Errorf("%w: op %d: %v", ErrCorruptWAL, i, err)
			}
			if len(op.Labels) != 1 {
				return nil, fmt.Errorf("%w: op %d: delete carries %d labels", ErrCorruptWAL, i, len(op.Labels))
			}
		case OpMove:
			if op.Path, err = getPath(br); err != nil {
				return nil, fmt.Errorf("%w: op %d: %v", ErrCorruptWAL, i, err)
			}
			if op.Dst, err = getPath(br); err != nil {
				return nil, fmt.Errorf("%w: op %d: %v", ErrCorruptWAL, i, err)
			}
			idx, err := getInt(br)
			if err != nil {
				return nil, fmt.Errorf("%w: op %d idx: %v", ErrCorruptWAL, i, err)
			}
			op.Idx = uint32(idx)
			if op.Labels, err = getLabels(br); err != nil {
				return nil, fmt.Errorf("%w: op %d: %v", ErrCorruptWAL, i, err)
			}
		case OpCompact:
			// no body
		case OpStamp:
			if _, err := io.ReadFull(br, op.Root[:]); err != nil {
				return nil, fmt.Errorf("%w: op %d stamp: %v", ErrCorruptWAL, i, err)
			}
		default:
			return nil, fmt.Errorf("%w: op %d: unknown kind %d", ErrCorruptWAL, i, kind)
		}
		ops = append(ops, op)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after %d ops", ErrCorruptWAL, nops)
	}
	return ops, nil
}

// putPath emits a node path (count + child indices).
func putPath(bw *bufio.Writer, path []uint32) {
	putUvarint(bw, uint64(len(path)))
	for _, step := range path {
		putUvarint(bw, uint64(step))
	}
}

// getPath reads a node path, bounded by the codec's recursion limit (a
// path deeper than maxDepth cannot reference a decodable document).
func getPath(br *bufio.Reader) ([]uint32, error) {
	n, err := getInt(br)
	if err != nil {
		return nil, err
	}
	if n > maxDepth {
		return nil, fmt.Errorf("path depth %d", n)
	}
	path := make([]uint32, n)
	for i := range path {
		step, err := getInt(br)
		if err != nil {
			return nil, err
		}
		path[i] = uint32(step)
	}
	return path, nil
}

// putLabels emits a strictly increasing label run with the v2 snapshot
// delta coding: first label absolute, then positive gaps.
func putLabels(bw *bufio.Writer, labels []uint64) error {
	putUvarint(bw, uint64(len(labels)))
	prev := uint64(0)
	for i, lab := range labels {
		if i == 0 {
			putUvarint(bw, lab)
		} else {
			if lab <= prev {
				return fmt.Errorf("storage: op labels not strictly increasing at %d", i)
			}
			putUvarint(bw, lab-prev)
		}
		prev = lab
	}
	return nil
}

// getLabels reads a delta-coded label run, growing the slice only as
// stream bytes actually arrive (mirrors readV2's label loop).
func getLabels(br *bufio.Reader) ([]uint64, error) {
	n, err := getInt(br)
	if err != nil {
		return nil, err
	}
	labels := make([]uint64, 0, min(n, 1<<16))
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = v
		} else {
			next := prev + v
			if next < prev || v == 0 {
				return nil, fmt.Errorf("label delta %d at %d", v, i)
			}
			prev = next
		}
		labels = append(labels, prev)
	}
	return labels, nil
}

// frameRecord builds one framed record ready to append to a segment.
func frameRecord(seq uint64, payload []byte) []byte {
	frame := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	copy(frame[recordHeaderLen:], payload)
	crc := crc32.Checksum(frame[8:], crcTable) // seq bytes + payload
	binary.LittleEndian.PutUint32(frame[4:8], crc)
	return frame
}

// scanRecords iterates the framed records of a segment stream whose
// header has already been consumed, calling fn for each intact record in
// order. base is the sequence number the segment starts after; records
// must be numbered base+1, base+2, … — a gap means the file was tampered
// with and ends the scan like corruption does.
//
// The returned offset is the length of the durable prefix relative to the
// stream start (i.e. just past the last intact record). A torn or
// corrupt tail is not an error — it ends the scan; only fn's errors and
// real I/O failures are returned.
func scanRecords(r io.Reader, base uint64, fn func(seq uint64, payload []byte) error) (int64, error) {
	br := bufio.NewReader(r)
	var good int64
	expect := base + 1
	var head [recordHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if isStreamEnd(err) {
				return good, nil // clean end or torn header: durable prefix ends here
			}
			return good, err // real I/O failure: not evidence of a torn tail
		}
		length := binary.LittleEndian.Uint32(head[0:4])
		crc := binary.LittleEndian.Uint32(head[4:8])
		seq := binary.LittleEndian.Uint64(head[8:16])
		if length > maxRecord || seq != expect {
			return good, nil
		}
		// Chunked read: a corrupt length prefix must fail after one chunk,
		// not pre-allocate the whole claimed size (same discipline as the
		// snapshot codec's getString).
		payload := make([]byte, 0, min(int(length), 1<<13))
		var chunk [1 << 13]byte
		torn := false
		for len(payload) < int(length) {
			want := min(int(length)-len(payload), len(chunk))
			if _, err := io.ReadFull(br, chunk[:want]); err != nil {
				if !isStreamEnd(err) {
					return good, err
				}
				torn = true
				break
			}
			payload = append(payload, chunk[:want]...)
		}
		if torn {
			return good, nil // torn payload
		}
		sum := crc32.Checksum(head[8:16], crcTable)
		sum = crc32.Update(sum, crcTable, payload)
		if sum != crc {
			return good, nil
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return good, err
			}
		}
		good += recordHeaderLen + int64(length)
		expect++
	}
}

// isStreamEnd reports whether err is evidence the stream simply ended
// (cleanly or torn mid-structure) rather than a real I/O failure. Only
// these justify longest-durable-prefix handling — truncating a segment
// because a disk returned EIO would destroy durable records.
func isStreamEnd(err error) bool {
	return err == io.EOF || err == io.ErrUnexpectedEOF
}
