package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestForestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadForestManifest(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%v err=%v, want absent", ok, err)
	}
	if err := WriteForestManifest(dir, ForestManifest{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	m, ok, err := ReadForestManifest(dir)
	if err != nil || !ok || m.Shards != 4 {
		t.Fatalf("read back: %+v ok=%v err=%v", m, ok, err)
	}
}

func TestForestManifestRejectsBadContent(t *testing.T) {
	dir := t.TempDir()
	for _, bad := range []string{"", "garbage", "ltree-forest v2\nshards 4\n", "ltree-forest v1\nshards -1\n"} {
		if err := os.WriteFile(filepath.Join(dir, forestManifestName), []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadForestManifest(dir); err == nil {
			t.Fatalf("manifest %q read back without error", bad)
		}
	}
}

func TestForestManifestRejectsZeroShardsWrite(t *testing.T) {
	if err := WriteForestManifest(t.TempDir(), ForestManifest{Shards: 0}); err == nil {
		t.Fatal("zero-shard manifest written without error")
	}
}

func TestCheckForestManifest(t *testing.T) {
	dir := t.TempDir()
	// Fresh directory adopts the request and persists it.
	n, err := CheckForestManifest(dir, 4)
	if err != nil || n != 4 {
		t.Fatalf("fresh check: n=%d err=%v", n, err)
	}
	// Same count reopens; 0 adopts the manifest.
	if n, err = CheckForestManifest(dir, 4); err != nil || n != 4 {
		t.Fatalf("same-count reopen: n=%d err=%v", n, err)
	}
	if n, err = CheckForestManifest(dir, 0); err != nil || n != 4 {
		t.Fatalf("adopt reopen: n=%d err=%v", n, err)
	}
	// A different count is the loud topology error.
	if _, err = CheckForestManifest(dir, 8); !errors.Is(err, ErrForestTopology) {
		t.Fatalf("shard-count change: err=%v, want ErrForestTopology", err)
	}
	// Fresh directory with no request defaults to one shard.
	if n, err = CheckForestManifest(t.TempDir(), 0); err != nil || n != 1 {
		t.Fatalf("default check: n=%d err=%v", n, err)
	}
}

func TestForestShardDirNaming(t *testing.T) {
	if got := ForestShardDir("/x", 0); got != filepath.Join("/x", "shard-0000") {
		t.Fatalf("shard 0 dir = %q", got)
	}
	if got := ForestShardDir("/x", 123); got != filepath.Join("/x", "shard-0123") {
		t.Fatalf("shard 123 dir = %q", got)
	}
}
