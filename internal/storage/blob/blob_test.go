package blob

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// stores builds one of each Store implementation for contract tests.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "dir": d}
}

func TestStoreContract(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			// Missing object is ErrNotExist, matchable.
			if _, err := s.Get("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Get(missing) = %v, want ErrNotExist", err)
			}
			// Roundtrip, including an empty value and a nested key.
			cases := map[string][]byte{
				"a":              []byte("alpha"),
				"seg/0000000001": []byte("one"),
				"seg/0000000002": {},
				"ckpt/x.y-z_0":   []byte("dotted"),
			}
			for k, v := range cases {
				if err := s.Put(k, v); err != nil {
					t.Fatalf("Put(%q): %v", k, err)
				}
			}
			for k, v := range cases {
				got, err := s.Get(k)
				if err != nil {
					t.Fatalf("Get(%q): %v", k, err)
				}
				if string(got) != string(v) {
					t.Fatalf("Get(%q) = %q, want %q", k, got, v)
				}
			}
			// Overwrite replaces.
			if err := s.Put("a", []byte("beta")); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.Get("a"); string(got) != "beta" {
				t.Fatalf("overwrite: got %q", got)
			}
			// List is sorted and prefix-filtered.
			keys, err := s.List("seg/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"seg/0000000001", "seg/0000000002"}
			if !reflect.DeepEqual(keys, want) {
				t.Fatalf("List(seg/) = %v, want %v", keys, want)
			}
			all, err := s.List("")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != len(cases) || !strings.HasPrefix(all[0], "a") {
				t.Fatalf("List(\"\") = %v", all)
			}
			// Delete is idempotent.
			if err := s.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("a"); err != nil {
				t.Fatalf("second Delete: %v", err)
			}
			if _, err := s.Get("a"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Get(deleted) = %v, want ErrNotExist", err)
			}
			// Mutating a returned slice must not corrupt the store.
			if err := s.Put("mut", []byte("orig")); err != nil {
				t.Fatal(err)
			}
			got, _ := s.Get("mut")
			for i := range got {
				got[i] = 'x'
			}
			if again, _ := s.Get("mut"); string(again) != "orig" {
				t.Fatalf("stored object mutated through returned slice: %q", again)
			}
		})
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	bad := []string{"", "/", "a//b", "../escape", "a/../b", "a/./b", "sp ace", "semi;colon", "a/"}
	for name, s := range stores(t) {
		for _, k := range bad {
			if err := s.Put(k, []byte("x")); err == nil {
				t.Errorf("%s: Put(%q) accepted a bad key", name, k)
			}
			if _, err := s.Get(k); err == nil || errors.Is(err, ErrNotExist) {
				t.Errorf("%s: Get(%q) should fail validation, got %v", name, k, err)
			}
		}
	}
}

func TestDirSkipsTempFiles(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("seg/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A crashed Put leaves a temp file behind; List and Get must not
	// surface it.
	if err := os.WriteFile(filepath.Join(root, "seg", tmpPrefix+"dead"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := d.List("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"seg/a"}) {
		t.Fatalf("List with temp litter = %v", keys)
	}
}

func TestDirSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
}

func TestFaultsInjects(t *testing.T) {
	inner := NewMemory()
	f := NewFaults(inner, FaultOptions{Seed: 1, ErrorRate: 0.3, PartialPuts: 0.3, TornReads: 0.3})
	data := []byte("0123456789abcdef")
	var transient, partial, torn, clean int
	for i := 0; i < 400; i++ {
		err := f.Put("k", data)
		switch {
		case err == nil:
		case errors.Is(err, ErrTransient):
			transient++
		default:
			t.Fatalf("unexpected Put error: %v", err)
		}
		got, err := f.Get("k")
		switch {
		case errors.Is(err, ErrTransient):
		case errors.Is(err, ErrNotExist):
			// The very first Puts may all have failed.
		case err != nil:
			t.Fatalf("unexpected Get error: %v", err)
		case len(got) < len(data):
			// Torn read, or a partial Put's prefix really stored.
			torn++
		default:
			clean++
		}
	}
	st := f.Stats()
	if st.Errors == 0 || st.Partials == 0 || st.Torn == 0 {
		t.Fatalf("expected all fault kinds at these rates, got %+v", st)
	}
	if transient == 0 || clean == 0 || torn == 0 {
		t.Fatalf("observed transient=%d clean=%d torn=%d; injection not mixing", transient, clean, torn)
	}
	if st.Calls != 800 {
		t.Fatalf("Calls = %d, want 800", st.Calls)
	}
	partial = int(st.Partials)
	if partial == 0 {
		t.Fatal("no partial puts recorded")
	}
}

func TestFaultsDeterministic(t *testing.T) {
	run := func() FaultStats {
		f := NewFaults(NewMemory(), FaultOptions{Seed: 42, ErrorRate: 0.25, PartialPuts: 0.25, TornReads: 0.25})
		for i := 0; i < 200; i++ {
			_ = f.Put("k", []byte("payload-payload"))
			_, _ = f.Get("k")
			_, _ = f.List("")
			_ = f.Delete("maybe")
		}
		return f.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestFaultsPartialPutLeavesPrefix(t *testing.T) {
	inner := NewMemory()
	// ErrorRate 0 so every failure is a partial put.
	f := NewFaults(inner, FaultOptions{Seed: 3, PartialPuts: 1})
	data := []byte("full-object-bytes")
	err := f.Put("k", data)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("Put = %v, want ErrTransient", err)
	}
	got, err := inner.Get("k")
	if err != nil {
		t.Fatalf("partial put left nothing behind: %v", err)
	}
	if len(got) >= len(data) || string(got) != string(data[:len(got)]) {
		t.Fatalf("partial put stored %q, want a strict prefix of %q", got, data)
	}
	// A clean retry overwrites the torn object.
	f.SetOptions(FaultOptions{})
	if err := f.Put("k", data); err != nil {
		t.Fatal(err)
	}
	if got, _ := inner.Get("k"); string(got) != string(data) {
		t.Fatalf("retry did not overwrite: %q", got)
	}
}

func TestFaultsZeroValuePassesThrough(t *testing.T) {
	f := NewFaults(NewMemory(), FaultOptions{})
	for i := 0; i < 50; i++ {
		if err := f.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if got, err := f.Get("k"); err != nil || string(got) != "v" {
			t.Fatalf("Get = %q, %v", got, err)
		}
	}
	if st := f.Stats(); st.Errors != 0 || st.Torn != 0 || st.Partials != 0 {
		t.Fatalf("zero options injected faults: %+v", st)
	}
}
