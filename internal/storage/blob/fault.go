package blob

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Faults wraps a Store with configurable misbehavior — added latency,
// transient errors, partial writes, torn reads — in the same spirit as
// the crash-at-every-offset WAL torture suite: the tier above must keep
// commits unblocked and recovery exact while the object store flakes.
// All decisions come from one seeded rng, so a torture run is
// reproducible from its seed.
//
// Failure model (what each knob simulates):
//
//	ErrorRate     the store is briefly unreachable: the call does nothing
//	              and reports ErrTransient. Retry-able.
//	PartialPuts   a non-atomic medium died mid-upload: a PREFIX of the
//	              object becomes readable under the real key, and the Put
//	              reports ErrTransient. A later retry overwrites it. This
//	              is why readers must verify fetched bytes (the tier's
//	              manifest records size+CRC) — a torn object looks exactly
//	              like a complete one to Get.
//	TornReads     an eventually-consistent read raced the upload: Get
//	              succeeds but returns a prefix of the object.
//	Latency       per-call delay, uniform in [Latency/2, Latency). Applied
//	              outside the wrapper's lock so concurrent calls overlap.
type Faults struct {
	inner Store

	mu  sync.Mutex
	rng *rand.Rand
	opt FaultOptions
	st  FaultStats
}

// FaultOptions configures the injected misbehavior. All probabilities are
// in [0, 1]; the zero value injects nothing.
type FaultOptions struct {
	Seed        int64         // rng seed (0 is a valid, fixed seed)
	ErrorRate   float64       // per-call transient-failure probability
	PartialPuts float64       // probability a failing-free Put writes a prefix then errors
	TornReads   float64       // probability a successful Get returns a prefix
	Latency     time.Duration // per-call added delay upper bound
}

// FaultStats counts what the wrapper did.
type FaultStats struct {
	Calls    uint64 // total operations attempted through the wrapper
	Errors   uint64 // transient errors injected (includes partial puts)
	Partials uint64 // puts that left a torn object behind
	Torn     uint64 // gets that returned truncated bytes
}

// ErrTransient is the injected failure: the operation did not (fully)
// happen and may be retried.
var ErrTransient = errors.New("blob: injected transient error")

// NewFaults wraps inner with fault injection.
func NewFaults(inner Store, opt FaultOptions) *Faults {
	return &Faults{inner: inner, rng: rand.New(rand.NewSource(opt.Seed)), opt: opt}
}

// SetOptions swaps the fault configuration (the rng keeps its state, so
// a test can build clean state first and then turn the pain on).
func (f *Faults) SetOptions(opt FaultOptions) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opt = opt
}

// Stats returns the injection counters so far.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// roll draws the per-call decisions under the lock and applies latency
// outside it.
func (f *Faults) roll(pExtra float64) (fail, extra bool) {
	f.mu.Lock()
	f.st.Calls++
	fail = f.rng.Float64() < f.opt.ErrorRate
	extra = f.rng.Float64() < pExtra
	delay := time.Duration(0)
	if f.opt.Latency > 0 {
		delay = f.opt.Latency/2 + time.Duration(f.rng.Int63n(int64(f.opt.Latency/2)+1))
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return fail, extra
}

// Put implements Store with injected failures.
func (f *Faults) Put(key string, data []byte) error {
	fail, partial := f.roll(f.opt.PartialPuts)
	if fail {
		f.count(func(s *FaultStats) { s.Errors++ })
		return fmt.Errorf("%w: put %s", ErrTransient, key)
	}
	if partial {
		// Simulate a non-atomic upload dying midway: a prefix lands under
		// the real key, then the call fails. len(data)==0 still "succeeds
		// partially" as an empty object.
		n := 0
		if len(data) > 0 {
			f.mu.Lock()
			n = f.rng.Intn(len(data))
			f.mu.Unlock()
		}
		_ = f.inner.Put(key, data[:n])
		f.count(func(s *FaultStats) { s.Errors++; s.Partials++ })
		return fmt.Errorf("%w: partial put %s (%d/%d bytes)", ErrTransient, key, n, len(data))
	}
	return f.inner.Put(key, data)
}

// Get implements Store with injected failures.
func (f *Faults) Get(key string) ([]byte, error) {
	fail, torn := f.roll(f.opt.TornReads)
	if fail {
		f.count(func(s *FaultStats) { s.Errors++ })
		return nil, fmt.Errorf("%w: get %s", ErrTransient, key)
	}
	data, err := f.inner.Get(key)
	if err != nil {
		return nil, err
	}
	if torn && len(data) > 0 {
		f.mu.Lock()
		n := f.rng.Intn(len(data))
		f.mu.Unlock()
		f.count(func(s *FaultStats) { s.Torn++ })
		return data[:n], nil
	}
	return data, nil
}

// List implements Store with injected failures.
func (f *Faults) List(prefix string) ([]string, error) {
	fail, _ := f.roll(0)
	if fail {
		f.count(func(s *FaultStats) { s.Errors++ })
		return nil, fmt.Errorf("%w: list %s", ErrTransient, prefix)
	}
	return f.inner.List(prefix)
}

// Delete implements Store with injected failures.
func (f *Faults) Delete(key string) error {
	fail, _ := f.roll(0)
	if fail {
		f.count(func(s *FaultStats) { s.Errors++ })
		return fmt.Errorf("%w: delete %s", ErrTransient, key)
	}
	return f.inner.Delete(key)
}

func (f *Faults) count(fn func(*FaultStats)) {
	f.mu.Lock()
	fn(&f.st)
	f.mu.Unlock()
}
