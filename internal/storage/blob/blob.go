// Package blob is the object-store seam under the WAL's tiered segment
// storage: a deliberately tiny key→bytes contract that local directories,
// in-memory fakes, and (eventually) real object stores can satisfy. The
// WAL's sealed segments and checkpoints are immutable once written, which
// is exactly the shape an object store wants — graviton's "decoupled
// storage layer usable over Ceph/S3" pitch maps one-to-one onto these
// files — so everything above this interface (internal/storage's BlobTier)
// treats a blob store as dumb, eventually-available, possibly-lying
// storage: objects are verified by size+CRC recorded in a manifest, writes
// are retried until durable, and nothing on the commit path ever waits on
// one.
package blob

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the object-store contract. Keys are "/"-separated names
// (name-addressed, not content-addressed: the manifest layer above pins
// content by size+CRC instead, so a retried upload can overwrite its own
// partial predecessor under the same key).
//
// Implementations must allow concurrent use. Put must be a full-object
// write: either the complete value becomes readable under the key or the
// call errors — except that implementations over non-atomic media may
// leave a partial object behind a failed Put (the fault-injecting wrapper
// simulates exactly this), which is why readers above verify what they
// fetch and never trust a blob's bytes alone.
type Store interface {
	// Put stores data under key, overwriting any previous object.
	Put(key string, data []byte) error
	// Get returns the object stored under key, or ErrNotExist.
	Get(key string) ([]byte, error)
	// List returns the keys beginning with prefix, sorted ascending.
	List(prefix string) ([]string, error)
	// Delete removes the object under key. Deleting a missing key is not
	// an error (idempotent).
	Delete(key string) error
}

// ErrNotExist reports a Get of a missing object.
var ErrNotExist = errors.New("blob: object does not exist")

// validKey checks a "/"-separated key: non-empty components of safe
// filename characters, so the directory implementation can map keys to
// paths without escaping its root.
func validKey(key string) error {
	if key == "" {
		return errors.New("blob: empty key")
	}
	for _, part := range strings.Split(key, "/") {
		if part == "" || part == "." || part == ".." {
			return fmt.Errorf("blob: bad key %q", key)
		}
		for _, r := range part {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '.', r == '_', r == '-':
			default:
				return fmt.Errorf("blob: bad key %q", key)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------- Memory

// Memory is an in-process Store, safe for concurrent use. The fake for
// tests and the seed for the fault-injecting wrapper.
type Memory struct {
	mu   sync.RWMutex
	objs map[string][]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{objs: make(map[string][]byte)}
}

// Put implements Store.
func (m *Memory) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objs[key] = append([]byte(nil), data...)
	return nil
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, key)
	}
	return append([]byte(nil), data...), nil
}

// List implements Store.
func (m *Memory) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := []string{}
	for k := range m.objs {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objs, key)
	return nil
}

// ------------------------------------------------------------------- Dir

// Dir is a directory-backed Store: one file per object, keys mapping to
// relative paths. Writes go to a temp name in the target directory and
// rename into place, so a crash (of this process) never leaves a torn
// object visible — the same discipline as WAL checkpoints. This is the
// "local object store" tier: point it at an NFS/Ceph mount or an
// rsync-replicated backup directory and the WAL's cold segments live
// there.
type Dir struct {
	root string
}

// tmpPrefix marks in-flight writes; List skips them.
const tmpPrefix = ".tmp-"

// NewDir opens (creating if needed) a directory-backed store.
func NewDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &Dir{root: root}, nil
}

// path maps a validated key to its file path.
func (d *Dir) path(key string) string {
	return filepath.Join(d.root, filepath.FromSlash(key))
}

// Put implements Store.
func (d *Dir) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	dst := d.path(key)
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

// Get implements Store.
func (d *Dir) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, key)
	}
	return data, err
}

// List implements Store.
func (d *Dir) List(prefix string) ([]string, error) {
	out := []string{}
	err := filepath.WalkDir(d.root, func(path string, e os.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			return nil
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (d *Dir) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	err := os.Remove(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// syncDir makes directory-entry changes durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
