package xmldom

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ParseOptions tune the parser.
type ParseOptions struct {
	// KeepWhitespace retains whitespace-only text sections. The default
	// drops them, matching how labeled XML stores usually tokenize.
	KeepWhitespace bool
}

// Parse reads an XML document into the DOM. Comments, processing
// instructions and directives are skipped; namespaces are flattened into
// plain local names (prefix:local becomes local).
func Parse(r io.Reader, opts ...ParseOptions) (*Document, error) {
	var opt ParseOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldom: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			attrs := make([]Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				attrs = append(attrs, Attr{a.Name.Local, a.Value})
			}
			el := NewElement(t.Name.Local, attrs...)
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmldom: multiple root elements")
				}
				root = el
			} else if err := stack[len(stack)-1].AppendChild(el); err != nil {
				return nil, err
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmldom: unbalanced end tag")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // prolog whitespace
			}
			text := string(t)
			if !opt.KeepWhitespace && strings.TrimSpace(text) == "" {
				continue
			}
			if err := stack[len(stack)-1].AppendChild(NewText(text)); err != nil {
				return nil, err
			}
		default:
			// Comments, directives and processing instructions carry no
			// document order of interest here.
		}
	}
	if root == nil {
		return nil, errors.New("xmldom: no root element")
	}
	if len(stack) != 0 {
		return nil, errors.New("xmldom: unclosed elements")
	}
	return &Document{Root: root}, nil
}

// ParseString is Parse over a string.
func ParseString(s string, opts ...ParseOptions) (*Document, error) {
	return Parse(strings.NewReader(s), opts...)
}

// Write serializes the document compactly with correct escaping.
func (d *Document) Write(w io.Writer) error {
	return writeNode(w, d.Root)
}

func writeNode(w io.Writer, n *Node) error {
	switch n.kind {
	case Text:
		return escapeInto(w, n.data)
	case Element:
		if _, err := io.WriteString(w, "<"+n.tag); err != nil {
			return err
		}
		for _, a := range n.attr {
			if _, err := io.WriteString(w, " "+a.Name+`="`); err != nil {
				return err
			}
			if err := escapeInto(w, a.Value); err != nil {
				return err
			}
			if _, err := io.WriteString(w, `"`); err != nil {
				return err
			}
		}
		if len(n.children) == 0 {
			_, err := io.WriteString(w, "/>")
			return err
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		for _, c := range n.children {
			if err := writeNode(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "</"+n.tag+">")
		return err
	default:
		return fmt.Errorf("xmldom: unknown node kind %d", n.kind)
	}
}

func escapeInto(w io.Writer, s string) error {
	return xml.EscapeText(w, []byte(s))
}

// TokenKind discriminates the token stream entries.
type TokenKind int

// Token kinds: an element contributes Begin and End, a text node TextTok.
const (
	Begin TokenKind = iota
	End
	TextTok
)

// Token is one entry of the document's ordered tag list (paper §2: "a
// linear ordered list of begin tags, end tags, and text sections").
type Token struct {
	Kind TokenKind
	Node *Node
}

// Tokens returns the document's full token stream in document order.
func (d *Document) Tokens() []Token {
	return SubtreeTokens(d.Root)
}

// SubtreeTokens returns the token stream of n's subtree in document order.
func SubtreeTokens(n *Node) []Token {
	out := make([]Token, 0, n.CountTokens())
	var walk func(v *Node)
	walk = func(v *Node) {
		if v.kind == Text {
			out = append(out, Token{TextTok, v})
			return
		}
		out = append(out, Token{Begin, v})
		for _, c := range v.children {
			walk(c)
		}
		out = append(out, Token{End, v})
	}
	walk(n)
	return out
}
