// Package xmldom provides the ordered XML document model the L-Tree labels
// operate on: a mutable tree of element and text nodes with stable parent/
// child links, a parser over encoding/xml, a serializer, and the begin/
// end/text token view of the document (the paper's ordered list of tags,
// §2).
//
// The model is deliberately minimal — elements, attributes and text; no
// comments, processing instructions or namespaces — because the labeling
// problem only concerns the ordered tree shape.
package xmldom

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind discriminates node types.
type Kind int

// Node kinds.
const (
	Element Kind = iota
	Text
)

// Attr is one element attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is an element or text node. The zero value is not usable; construct
// with NewElement or NewText. Tree edits go through the methods below so
// parent/child links stay consistent.
type Node struct {
	kind     Kind
	tag      string // element name
	data     string // text payload
	attr     []Attr
	parent   *Node
	children []*Node

	// attrGen counts attribute mutations anywhere under this node's root:
	// SetAttr bumps the counter on the root of whatever tree the node is
	// attached to at that moment. Derived per-chunk attribute summaries
	// capture the root's generation at build time and compare it before
	// trusting themselves (a stale summary may claim an attribute absent
	// that a later SetAttr added — a false negative, worse than no
	// summary). Only the root's counter is consulted; bumps that land on a
	// detached subtree's own root are harmless. Atomic because summaries
	// are read by lock-free readers while SetAttr may run under a
	// different discipline.
	attrGen atomic.Uint64
}

// Errors returned by tree edits.
var (
	ErrAttached = errors.New("xmldom: node is already attached to a parent")
	ErrDetached = errors.New("xmldom: node has no parent")
	ErrCycle    = errors.New("xmldom: insertion would create a cycle")
	ErrTextKids = errors.New("xmldom: text nodes cannot have children")
	ErrRange    = errors.New("xmldom: child index out of range")
)

// NewElement returns a fresh detached element node.
func NewElement(tag string, attrs ...Attr) *Node {
	return &Node{kind: Element, tag: tag, attr: attrs}
}

// NewText returns a fresh detached text node.
func NewText(data string) *Node {
	return &Node{kind: Text, data: data}
}

// Kind returns the node kind.
func (n *Node) Kind() Kind { return n.kind }

// Tag returns the element name ("" for text nodes).
func (n *Node) Tag() string { return n.tag }

// Data returns the text payload ("" for elements).
func (n *Node) Data() string { return n.data }

// SetData replaces the text payload of a text node.
func (n *Node) SetData(s string) { n.data = s }

// Attrs returns the attribute list (shared slice; treat as read-only).
func (n *Node) Attrs() []Attr { return n.attr }

// Attr returns the value of the named attribute.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.attr {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets (or adds) an attribute and bumps the attribute-mutation
// generation on the node's current root, so derived attribute summaries
// (see AttrGen) can detect they went stale instead of claiming the new
// attribute absent.
func (n *Node) SetAttr(name, value string) {
	root := n
	for root.parent != nil {
		root = root.parent
	}
	root.attrGen.Add(1)
	for i := range n.attr {
		if n.attr[i].Name == name {
			n.attr[i].Value = value
			return
		}
	}
	n.attr = append(n.attr, Attr{name, value})
}

// AttrGen returns the attribute-mutation generation accumulated on this
// node (meaningful on a tree root: every SetAttr below it bumps it).
// Summary builders capture the root's generation and compare it later —
// an unchanged generation proves no attribute changed since the build,
// so summaries derived then are still exact.
func (n *Node) AttrGen() uint64 { return n.attrGen.Load() }

// Parent returns the parent node (nil for a detached node or the root).
func (n *Node) Parent() *Node { return n.parent }

// NumChildren returns the number of children.
func (n *Node) NumChildren() int { return len(n.children) }

// Child returns the i-th child, or nil when out of range.
func (n *Node) Child(i int) *Node {
	if i < 0 || i >= len(n.children) {
		return nil
	}
	return n.children[i]
}

// Children returns a copy of the child slice.
func (n *Node) Children() []*Node {
	out := make([]*Node, len(n.children))
	copy(out, n.children)
	return out
}

// Index returns the node's position among its siblings (-1 if detached).
func (n *Node) Index() int {
	if n.parent == nil {
		return -1
	}
	for i, c := range n.parent.children {
		if c == n {
			return i
		}
	}
	return -1
}

// Level returns the node's depth: 0 for a detached/root node.
func (n *Node) Level() int {
	d := 0
	for v := n.parent; v != nil; v = v.parent {
		d++
	}
	return d
}

// InsertChildAt splices the detached node c as n's i-th child.
func (n *Node) InsertChildAt(i int, c *Node) error {
	if n.kind == Text {
		return ErrTextKids
	}
	if c.parent != nil {
		return ErrAttached
	}
	if i < 0 || i > len(n.children) {
		return ErrRange
	}
	for v := n; v != nil; v = v.parent {
		if v == c {
			return ErrCycle
		}
	}
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	c.parent = n
	return nil
}

// AppendChild splices the detached node c as n's last child.
func (n *Node) AppendChild(c *Node) error {
	return n.InsertChildAt(len(n.children), c)
}

// InsertSiblingAfter splices the detached node c right after n.
func (n *Node) InsertSiblingAfter(c *Node) error {
	if n.parent == nil {
		return ErrDetached
	}
	return n.parent.InsertChildAt(n.Index()+1, c)
}

// InsertSiblingBefore splices the detached node c right before n.
func (n *Node) InsertSiblingBefore(c *Node) error {
	if n.parent == nil {
		return ErrDetached
	}
	return n.parent.InsertChildAt(n.Index(), c)
}

// Detach removes the node from its parent (no-op when already detached).
func (n *Node) Detach() {
	p := n.parent
	if p == nil {
		return
	}
	i := n.Index()
	copy(p.children[i:], p.children[i+1:])
	p.children[len(p.children)-1] = nil
	p.children = p.children[:len(p.children)-1]
	n.parent = nil
}

// Walk visits n and every descendant in document order until fn returns
// false; it reports whether the walk ran to completion.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Subtree size helpers.

// CountNodes returns the number of nodes in n's subtree (including n).
func (n *Node) CountNodes() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// CountTokens returns the number of L-Tree leaves n's subtree occupies:
// two per element (begin and end tag) and one per text section (§2).
func (n *Node) CountTokens() int {
	total := 0
	n.Walk(func(v *Node) bool {
		if v.kind == Element {
			total += 2
		} else {
			total++
		}
		return true
	})
	return total
}

// Document is a parsed XML document with a single root element.
type Document struct {
	Root *Node
}

// NewDocument wraps a detached element as a document root.
func NewDocument(root *Node) (*Document, error) {
	if root == nil || root.kind != Element || root.parent != nil {
		return nil, errors.New("xmldom: document root must be a detached element")
	}
	return &Document{Root: root}, nil
}

// CountNodes returns the number of nodes in the document.
func (d *Document) CountNodes() int { return d.Root.CountNodes() }

// CountTokens returns the document's token count (= L-Tree leaves).
func (d *Document) CountTokens() int { return d.Root.CountTokens() }

// Check validates parent/child link consistency across the document.
func (d *Document) Check() error {
	if d.Root == nil {
		return errors.New("xmldom: nil root")
	}
	if d.Root.parent != nil {
		return errors.New("xmldom: root has a parent")
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.kind == Text && len(n.children) > 0 {
			return fmt.Errorf("xmldom: text node %q has children", n.data)
		}
		for _, c := range n.children {
			if c.parent != n {
				return fmt.Errorf("xmldom: broken parent link under <%s>", n.tag)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(d.Root)
}

// String renders the document compactly (see Write).
func (d *Document) String() string {
	var b strings.Builder
	_ = d.Write(&b)
	return b.String()
}
