package xmldom

import (
	"errors"
	"strings"
	"testing"
)

const sample = `<book year="2004"><chapter><title>L-Trees</title>text</chapter><title>Other</title></book>`

func TestParseBasics(t *testing.T) {
	d, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	root := d.Root
	if root.Tag() != "book" {
		t.Fatalf("root = %q", root.Tag())
	}
	if v, ok := root.Attr("year"); !ok || v != "2004" {
		t.Fatalf("year = %q/%v", v, ok)
	}
	if root.NumChildren() != 2 {
		t.Fatalf("children = %d", root.NumChildren())
	}
	ch := root.Child(0)
	if ch.Tag() != "chapter" || ch.Level() != 1 || ch.Index() != 0 {
		t.Fatalf("chapter wrong: %q level %d idx %d", ch.Tag(), ch.Level(), ch.Index())
	}
	title := ch.Child(0)
	if title.Tag() != "title" || title.Child(0).Data() != "L-Trees" {
		t.Fatal("title wrong")
	}
	if txt := ch.Child(1); txt.Kind() != Text || txt.Data() != "text" {
		t.Fatalf("text node wrong: %v %q", txt.Kind(), txt.Data())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a><b></a></b>`,
		`<a></a><b></b>`,
		`<a>`,
		`garbage`,
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q) should fail", c)
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	src := "<a>\n  <b/>\n</a>"
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.NumChildren() != 1 {
		t.Fatalf("whitespace kept: %d children", d.Root.NumChildren())
	}
	d2, err := ParseString(src, ParseOptions{KeepWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Root.NumChildren() != 3 {
		t.Fatalf("whitespace dropped: %d children", d2.Root.NumChildren())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	out := d.String()
	d2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if d2.String() != out {
		t.Fatalf("unstable serialization: %q vs %q", out, d2.String())
	}
	if d2.CountTokens() != d.CountTokens() {
		t.Fatal("token count changed in round trip")
	}
}

func TestEscaping(t *testing.T) {
	root := NewElement("a", Attr{"k", `<&">`})
	if err := root.AppendChild(NewText("x<y & z")); err != nil {
		t.Fatal(err)
	}
	d, err := NewDocument(root)
	if err != nil {
		t.Fatal(err)
	}
	out := d.String()
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if got, _ := back.Root.Attr("k"); got != `<&">` {
		t.Fatalf("attr escape broken: %q", got)
	}
	if got := back.Root.Child(0).Data(); got != "x<y & z" {
		t.Fatalf("text escape broken: %q", got)
	}
}

func TestEdits(t *testing.T) {
	root := NewElement("r")
	a := NewElement("a")
	b := NewElement("b")
	c := NewElement("c")
	if err := root.AppendChild(a); err != nil {
		t.Fatal(err)
	}
	if err := a.InsertSiblingAfter(c); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertSiblingBefore(b); err != nil {
		t.Fatal(err)
	}
	d, _ := NewDocument(root)
	if got := d.String(); got != "<r><a/><b/><c/></r>" {
		t.Fatalf("edit order wrong: %s", got)
	}
	// Error paths.
	if err := root.AppendChild(a); !errors.Is(err, ErrAttached) {
		t.Fatalf("AppendChild attached = %v", err)
	}
	if err := a.AppendChild(root); !errors.Is(err, ErrCycle) {
		t.Fatalf("appending an ancestor = %v, want ErrCycle", err)
	}
	root.Detach() // no-op
	b.Detach()
	if got := d.String(); got != "<r><a/><c/></r>" {
		t.Fatalf("detach wrong: %s", got)
	}
	x := NewElement("x")
	y := NewElement("y")
	if err := x.AppendChild(y); err != nil {
		t.Fatal(err)
	}
	if err := y.AppendChild(x); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle = %v", err)
	}
	txt := NewText("t")
	if err := txt.AppendChild(NewElement("z")); !errors.Is(err, ErrTextKids) {
		t.Fatalf("text child = %v", err)
	}
	if err := root.InsertChildAt(5, NewElement("z")); !errors.Is(err, ErrRange) {
		t.Fatalf("range = %v", err)
	}
}

func TestTokens(t *testing.T) {
	d, err := ParseString(`<a><b>hi</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	toks := d.Tokens()
	want := []struct {
		kind TokenKind
		name string
	}{
		{Begin, "a"}, {Begin, "b"}, {TextTok, "hi"}, {End, "b"},
		{Begin, "c"}, {End, "c"}, {End, "a"},
	}
	if len(toks) != len(want) {
		t.Fatalf("%d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind {
			t.Fatalf("token %d kind %d, want %d", i, toks[i].Kind, w.kind)
		}
		name := toks[i].Node.Tag()
		if w.kind == TextTok {
			name = toks[i].Node.Data()
		}
		if name != w.name {
			t.Fatalf("token %d name %q, want %q", i, name, w.name)
		}
	}
	if d.CountTokens() != len(want) {
		t.Fatalf("CountTokens = %d", d.CountTokens())
	}
	if d.CountNodes() != 4 {
		t.Fatalf("CountNodes = %d", d.CountNodes())
	}
}

func TestSetAttrAndData(t *testing.T) {
	e := NewElement("e")
	e.SetAttr("a", "1")
	e.SetAttr("a", "2")
	e.SetAttr("b", "3")
	if v, _ := e.Attr("a"); v != "2" {
		t.Fatalf("a = %q", v)
	}
	if len(e.Attrs()) != 2 {
		t.Fatalf("attrs = %d", len(e.Attrs()))
	}
	txt := NewText("x")
	txt.SetData("y")
	if txt.Data() != "y" {
		t.Fatal("SetData failed")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	d, _ := ParseString(`<a><b/><c/><d/></a>`)
	count := 0
	d.Root.Walk(func(n *Node) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("walked %d", count)
	}
}

func TestLargeRoundTrip(t *testing.T) {
	// Build a moderately deep document programmatically and round-trip it.
	root := NewElement("root")
	cur := root
	for i := 0; i < 50; i++ {
		next := NewElement("n", Attr{"i", strings.Repeat("x", i%7)})
		if err := cur.AppendChild(next); err != nil {
			t.Fatal(err)
		}
		if err := cur.AppendChild(NewText("t")); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	d, _ := NewDocument(root)
	out := d.String()
	back, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.CountTokens() != d.CountTokens() {
		t.Fatalf("token mismatch: %d vs %d", back.CountTokens(), d.CountTokens())
	}
}
