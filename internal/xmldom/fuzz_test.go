package xmldom

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the XML parser: it must never panic,
// and any document it accepts must survive serialize → parse → serialize
// as a fixed point.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`<a/>`, `<a><b>t</b></a>`, `<a k="v">x&amp;y</a>`, `<a><a><a/></a></a>`,
		`<a`, `</a>`, `<a></b>`, `text`, `<a><!-- c --><b/></a>`, `<?xml version="1.0"?><r/>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(strings.NewReader(src), ParseOptions{KeepWhitespace: true})
		if err != nil {
			return
		}
		if err := d.Check(); err != nil {
			t.Fatalf("accepted document fails Check: %v", err)
		}
		once := d.String()
		d2, err := ParseString(once, ParseOptions{KeepWhitespace: true})
		if err != nil {
			t.Fatalf("serialization of accepted input does not re-parse: %v\n%q", err, once)
		}
		if twice := d2.String(); twice != once {
			t.Fatalf("serialization not a fixed point:\n%q\nvs\n%q", once, twice)
		}
	})
}
