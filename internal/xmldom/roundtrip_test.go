package xmldom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRandom constructs a random document tree directly (not via the
// parser), including hostile text and attribute values.
func buildRandom(rng *rand.Rand, budget int) *Document {
	payloads := []string{
		"plain", "with space", "<angle>", "a&b", `"quoted"`, "'single'",
		"tab\there", "uni-é世", "]]>", "",
	}
	tags := []string{"a", "b", "cd", "e-f", "g_h"}
	root := NewElement("root")
	nodes := []*Node{root}
	for i := 0; i < budget; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		if parent.Kind() != Element {
			continue
		}
		if rng.Intn(3) == 0 {
			txt := payloads[rng.Intn(len(payloads))]
			if txt == "" {
				continue // empty text nodes do not round-trip (no bytes)
			}
			_ = parent.AppendChild(NewText(txt))
			continue
		}
		el := NewElement(tags[rng.Intn(len(tags))])
		if rng.Intn(2) == 0 {
			el.SetAttr("k", payloads[rng.Intn(len(payloads))])
		}
		_ = parent.AppendChild(el)
		nodes = append(nodes, el)
	}
	d, _ := NewDocument(root)
	return d
}

// equal compares two documents structurally.
func equal(a, b *Node) bool {
	if a.Kind() != b.Kind() || a.Tag() != b.Tag() || a.Data() != b.Data() {
		return false
	}
	if len(a.Attrs()) != len(b.Attrs()) {
		return false
	}
	for _, attr := range a.Attrs() {
		v, ok := b.Attr(attr.Name)
		if !ok || v != attr.Value {
			return false
		}
	}
	if a.NumChildren() != b.NumChildren() {
		return false
	}
	for i := 0; i < a.NumChildren(); i++ {
		if !equal(a.Child(i), b.Child(i)) {
			return false
		}
	}
	return true
}

// TestQuickSerializeParseRoundTrip: serialize → parse preserves any
// generated document (textual coalescing aside: the generator never
// creates adjacent text siblings, matching parser output invariants).
func TestQuickSerializeParseRoundTrip(t *testing.T) {
	prop := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := buildRandom(rng, int(sizeRaw)%60+5)
		// The generator may create adjacent texts; merge them the way a
		// parser would before comparing.
		mergeAdjacentTexts(d.Root)
		out := d.String()
		back, err := ParseString(out, ParseOptions{KeepWhitespace: true})
		if err != nil {
			return false
		}
		return equal(d.Root, back.Root)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// mergeAdjacentTexts coalesces sibling text nodes in place.
func mergeAdjacentTexts(n *Node) {
	for i := 0; i < n.NumChildren(); {
		c := n.Child(i)
		if c.Kind() == Text && i+1 < n.NumChildren() && n.Child(i+1).Kind() == Text {
			c.SetData(c.Data() + n.Child(i+1).Data())
			n.Child(i + 1).Detach()
			continue
		}
		mergeAdjacentTexts(c)
		i++
	}
}
