package query

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/ltree-db/ltree/internal/document"
)

// randomBranches builds k begin-sorted entry slices with begins drawn
// from a shared space, so branches interleave, tie, and leave gaps.
func randomBranches(rng *rand.Rand, k, maxLen int) [][]document.Entry {
	out := make([][]document.Entry, k)
	for i := range out {
		n := rng.Intn(maxLen + 1)
		begins := make([]uint64, n)
		for j := range begins {
			begins[j] = uint64(rng.Intn(4 * maxLen))
		}
		sort.Slice(begins, func(a, b int) bool { return begins[a] < begins[b] })
		es := make([]document.Entry, n)
		for j, b := range begins {
			es[j] = document.Entry{Label: document.Label{Begin: b, End: b + 1 + uint64(rng.Intn(16))}}
		}
		out[i] = es
	}
	return out
}

// mergeOracle is the reference: concatenate, stable-sort by (begin,
// branch) — exactly the order Merge promises.
func mergeOracle(branches [][]document.Entry) []document.Entry {
	type tagged struct {
		e      document.Entry
		branch int
	}
	var all []tagged
	for i, es := range branches {
		for _, e := range es {
			all = append(all, tagged{e, i})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].e.Label.Begin != all[b].e.Label.Begin {
			return all[a].e.Label.Begin < all[b].e.Label.Begin
		}
		return all[a].branch < all[b].branch
	})
	out := make([]document.Entry, len(all))
	for i, t := range all {
		out[i] = t.e
	}
	return out
}

func cursorsOf(branches [][]document.Entry) []document.Cursor {
	curs := make([]document.Cursor, len(branches))
	for i, es := range branches {
		curs[i] = document.NewSliceCursor(es)
	}
	return curs
}

func TestMergeDrainMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(12) // spans both the linear-scan and heap variants
		branches := randomBranches(rng, k, 40)
		got := document.DrainCursor(Merge(cursorsOf(branches)...))
		want := mergeOracle(branches)
		if len(got) != len(want) {
			t.Fatalf("trial %d: drained %d entries, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Label != want[i].Label {
				t.Fatalf("trial %d: entry %d = %+v, want %+v", trial, i, got[i].Label, want[i].Label)
			}
		}
	}
}

// TestMergeSeekInterleavings drives random Next/Seek sequences against
// the forward-only contract's oracle: Seek(b) yields the first remaining
// entry with Begin >= b, and a target at or behind the current position
// degrades to a plain Next. Seek targets are drawn both ahead of and
// behind the current position.
func TestMergeSeekInterleavings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(12) // spans both the linear-scan and heap variants
		branches := randomBranches(rng, k, 40)
		want := mergeOracle(branches)
		cur := Merge(cursorsOf(branches)...)
		pos := 0
		for step := 0; step < 60; step++ {
			if rng.Intn(2) == 0 {
				e, ok := cur.Next()
				if pos >= len(want) {
					if ok {
						t.Fatalf("trial %d step %d: Next yielded %+v past exhaustion", trial, step, e.Label)
					}
					break
				}
				if !ok || e.Label != want[pos].Label {
					t.Fatalf("trial %d step %d: Next = %+v/%v, want %+v", trial, step, e.Label, ok, want[pos].Label)
				}
				pos++
				continue
			}
			target := uint64(rng.Intn(200))
			// Oracle: skip remaining entries behind the target; a target
			// at or behind the current position skips nothing (Next).
			for pos < len(want) && want[pos].Label.Begin < target {
				pos++
			}
			e, ok := cur.Seek(target)
			if pos >= len(want) {
				if ok {
					t.Fatalf("trial %d step %d: Seek(%d) yielded %+v past exhaustion", trial, step, target, e.Label)
				}
				break
			}
			if !ok || e.Label != want[pos].Label {
				t.Fatalf("trial %d step %d: Seek(%d) = %+v/%v, want %+v", trial, step, target, e.Label, ok, want[pos].Label)
			}
			pos++
		}
	}
}

func TestMergeDegenerate(t *testing.T) {
	// No branches, and branches that are all empty: exhausted, not a panic.
	if _, ok := Merge().Next(); ok {
		t.Fatal("empty merge yielded an entry")
	}
	empty := Merge(document.NewSliceCursor(nil), document.NewSliceCursor(nil))
	if _, ok := empty.Next(); ok {
		t.Fatal("merge of empty branches yielded an entry")
	}
	if _, ok := empty.Seek(0); ok {
		t.Fatal("Seek on exhausted merge yielded an entry")
	}
	// One branch: passthrough, byte-for-byte.
	es := []document.Entry{
		{Label: document.Label{Begin: 1, End: 10}},
		{Label: document.Label{Begin: 3, End: 4}},
	}
	one := Merge(document.NewSliceCursor(es))
	got := document.DrainCursor(one)
	if len(got) != 2 || got[0].Label != es[0].Label || got[1].Label != es[1].Label {
		t.Fatalf("single-branch merge = %+v", got)
	}
	// Nil branches are dropped, not dereferenced.
	mixed := Merge(nil, document.NewSliceCursor(es), nil)
	if got := document.DrainCursor(mixed); len(got) != 2 {
		t.Fatalf("nil-branch merge drained %d entries, want 2", len(got))
	}
}

// TestMergeSeekBeforeFirstPull pins the lazy-start path: a Seek issued
// before any Next must prime every branch through its own Seek.
func TestMergeSeekBeforeFirstPull(t *testing.T) {
	branches := [][]document.Entry{
		{{Label: document.Label{Begin: 1, End: 2}}, {Label: document.Label{Begin: 50, End: 51}}},
		{{Label: document.Label{Begin: 2, End: 3}}, {Label: document.Label{Begin: 40, End: 41}}},
	}
	cur := Merge(cursorsOf(branches)...)
	e, ok := cur.Seek(10)
	if !ok || e.Label.Begin != 40 {
		t.Fatalf("Seek(10) = %+v/%v, want begin 40", e.Label, ok)
	}
	e, ok = cur.Next()
	if !ok || e.Label.Begin != 50 {
		t.Fatalf("Next = %+v/%v, want begin 50", e.Label, ok)
	}
}

// TestMergeTieBreakDeterministic pins the branch-order tie-break.
func TestMergeTieBreakDeterministic(t *testing.T) {
	a := []document.Entry{{Label: document.Label{Begin: 5, End: 6}}}
	b := []document.Entry{{Label: document.Label{Begin: 5, End: 9}}}
	for trial := 0; trial < 3; trial++ {
		cur := Merge(document.NewSliceCursor(a), document.NewSliceCursor(b))
		first, _ := cur.Next()
		second, _ := cur.Next()
		if first.Label.End != 6 || second.Label.End != 9 {
			t.Fatalf("tie-break order: got ends %d,%d, want 6,9", first.Label.End, second.Label.End)
		}
	}
}

func BenchmarkMergeDrain(b *testing.B) {
	for _, k := range []int{2, 4, 16} {
		b.Run(fmt.Sprintf("branches-%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			branches := randomBranches(rng, k, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur := Merge(cursorsOf(branches)...)
				for _, ok := cur.Next(); ok; _, ok = cur.Next() {
				}
			}
		})
	}
}
