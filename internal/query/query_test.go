package query

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/workload"
	"github.com/ltree-db/ltree/internal/xmldom"
)

var p42 = core.Params{F: 4, S: 2}

func load(t *testing.T, src string) *document.Doc {
	t.Helper()
	d, err := document.Parse(strings.NewReader(src), p42)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParsePath(t *testing.T) {
	cases := []struct {
		in  string
		out string
		err bool
	}{
		{"/a/b//c", "/a/b//c", false},
		{"book//title", "//book//title", false},
		{"//item/name", "//item/name", false},
		{"//*", "//*", false},
		{"/a", "/a", false},
		{"", "", true},
		{"/", "", true},
		{"//", "", true},
		{"/a//", "", true},
		{"a/", "", true},
		{"a[1]", "", true},
		{"a b", "", true},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if c.err {
			if err == nil {
				t.Errorf("Parse(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, p.String(), c.out)
		}
	}
}

// TestFigure1Query reproduces the paper's motivating query "book//title".
func TestFigure1Query(t *testing.T) {
	d := load(t, `<book><chapter><title/></chapter><title/></book>`)
	idx := d.BuildTagIndex()
	p, err := Parse("book//title")
	if err != nil {
		t.Fatal(err)
	}
	nav := Nav(d, p)
	join := Join(d, idx, p)
	if len(nav) != 2 || len(join) != 2 {
		t.Fatalf("book//title: nav %d, join %d, want 2", len(nav), len(join))
	}
	for i := range nav {
		if nav[i] != join[i] {
			t.Fatal("nav and join disagree")
		}
	}
	// Child axis distinguishes the direct title.
	p2, _ := Parse("/book/title")
	if res := Join(d, idx, p2); len(res) != 1 {
		t.Fatalf("/book/title: %d results, want 1", len(res))
	}
	// Rooted path with wrong root tag matches nothing.
	p3, _ := Parse("/chapter/title")
	if res := Join(d, idx, p3); len(res) != 0 {
		t.Fatalf("/chapter/title: %d results, want 0", len(res))
	}
}

func TestWildcardAndNested(t *testing.T) {
	d := load(t, `<r><a><b><c/></b></a><b/><a><c/></a></r>`)
	idx := d.BuildTagIndex()
	for _, c := range []struct {
		path string
		want int
	}{
		{"//a//c", 2},
		{"//a/c", 1},
		{"//b/c", 1},
		{"//*", 7},
		{"/r/*", 3},
		{"//a//*", 3},
		{"/r//c", 2},
		{"//r", 1},
		{"//missing", 0},
	} {
		p, err := Parse(c.path)
		if err != nil {
			t.Fatal(err)
		}
		nav := Nav(d, p)
		join := Join(d, idx, p)
		if len(nav) != c.want {
			t.Errorf("%s: nav %d, want %d", c.path, len(nav), c.want)
		}
		if len(join) != len(nav) {
			t.Errorf("%s: join %d, nav %d", c.path, len(join), len(nav))
			continue
		}
		for i := range nav {
			if nav[i] != join[i] {
				t.Errorf("%s: result %d differs", c.path, i)
			}
		}
	}
}

// TestNavJoinEquivalenceRandom is the differential test: on random and
// xmark-lite documents, every random path yields identical results from
// the navigation and the structural-join evaluators.
func TestNavJoinEquivalenceRandom(t *testing.T) {
	docs := []*xmldom.Document{
		workload.GenerateDoc(workload.DocConfig{Elements: 400, MaxDepth: 9, MaxFanout: 6, TextProb: 0.3}, 3),
		workload.GenerateDoc(workload.DocConfig{Elements: 700, MaxDepth: 4, MaxFanout: 20, TextProb: 0.1}, 4),
		workload.XMarkLite(3, 5),
	}
	tags := append([]string{"*"}, workload.DefaultTags...)
	tags = append(tags, "item", "name", "person", "bidder", "open_auction", "para")
	rng := rand.New(rand.NewSource(99))
	for di, x := range docs {
		d, err := document.Load(x, p42)
		if err != nil {
			t.Fatal(err)
		}
		idx := d.BuildTagIndex()
		for trial := 0; trial < 120; trial++ {
			steps := rng.Intn(3) + 1
			var sb strings.Builder
			if rng.Intn(2) == 0 {
				sb.WriteString("/")
				if rng.Intn(2) == 0 {
					sb.WriteString("/")
				}
			}
			for i := 0; i < steps; i++ {
				if i > 0 {
					if rng.Intn(2) == 0 {
						sb.WriteString("/")
					} else {
						sb.WriteString("//")
					}
				}
				sb.WriteString(tags[rng.Intn(len(tags))])
			}
			expr := sb.String()
			p, err := Parse(expr)
			if err != nil {
				continue // malformed by construction (e.g. leading "//"+"/")
			}
			nav := Nav(d, p)
			join := Join(d, idx, p)
			if len(nav) != len(join) {
				t.Fatalf("doc %d %q: nav %d join %d", di, expr, len(nav), len(join))
			}
			for i := range nav {
				if nav[i] != join[i] {
					t.Fatalf("doc %d %q: result %d differs", di, expr, i)
				}
			}
		}
	}
}

func TestDescendantsRangeScan(t *testing.T) {
	x := workload.XMarkLite(2, 9)
	d, err := document.Load(x, p42)
	if err != nil {
		t.Fatal(err)
	}
	idx := d.BuildTagIndex()
	if len(AllElements(idx)) == 0 {
		t.Fatal("AllElements drained nothing")
	}
	for _, anchor := range d.Elements("item") {
		got := Descendants(d, idx, anchor)
		want := 0
		anchor.Walk(func(n *xmldom.Node) bool {
			if n != anchor && n.Kind() == xmldom.Element {
				want++
			}
			return true
		})
		if len(got) != want {
			t.Fatalf("item descendants = %d, want %d", len(got), want)
		}
		for _, g := range got {
			ok, _ := d.IsAncestor(anchor, g)
			if !ok {
				t.Fatal("range scan returned a non-descendant")
			}
		}
	}
}

// TestQueriesSurviveUpdates runs queries, applies updates (forcing
// relabels), rebuilds the index and re-verifies equivalence.
func TestQueriesSurviveUpdates(t *testing.T) {
	d := load(t, `<lib><book><title/></book><book><title/></book></lib>`)
	p, _ := Parse("book//title")
	rng := rand.New(rand.NewSource(21))
	for round := 0; round < 30; round++ {
		books := d.Elements("book")
		b := books[rng.Intn(len(books))]
		if _, err := d.InsertElement(b, rng.Intn(b.NumChildren()+1), "title"); err != nil {
			t.Fatal(err)
		}
		idx := d.BuildTagIndex()
		nav := Nav(d, p)
		join := Join(d, idx, p)
		if len(nav) != len(join) {
			t.Fatalf("round %d: nav %d join %d", round, len(nav), len(join))
		}
		for i := range nav {
			if nav[i] != join[i] {
				t.Fatalf("round %d: result %d differs", round, i)
			}
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}
