package query

import (
	"testing"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/workload"
)

func TestParsePredicates(t *testing.T) {
	cases := []struct {
		in  string
		out string
		err bool
	}{
		{"//item[@id]", "//item[@id]", false},
		{"//item[@id='item3']", "//item[@id='item3']", false},
		{`//item[@id="item3"]`, "//item[@id='item3']", false},
		{"//item[@a][@b='2']/name", "//item[@a][@b='2']/name", false},
		{"/site//person[@id='person0']", "/site//person[@id='person0']", false},
		{"//*[@id]", "//*[@id]", false},
		{"//item[", "", true},
		{"//item[]", "", true},
		{"//item[id]", "", true},
		{"//item[@]", "", true},
		{"//item[@id=]", "", true},
		{"//item[@id=v]", "", true},
		{"//item[@id='v]", "", true},
		{"//[@id]", "", true},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if c.err {
			if err == nil {
				t.Errorf("Parse(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, p.String(), c.out)
		}
	}
}

func TestPredicateEvaluation(t *testing.T) {
	x := workload.XMarkLite(2, 7)
	d, err := document.Load(x, p42)
	if err != nil {
		t.Fatal(err)
	}
	idx := d.BuildTagIndex()
	cases := []struct {
		path string
		want int
	}{
		{"//item[@id='item3']", 1},
		{"//item[@id='item3']/name", 1},
		{"//item[@id]", 24},  // all items carry @id
		{"//item[@nope]", 0}, // nobody has it
		{"//person[@id='person1']//emailaddress", 1},
		{"//*[@id]", 24 + 10 + 6},                     // items + persons + auctions
		{"//open_auction[@id='auction0']/bidder", -1}, // count varies; just nav==join
	}
	for _, c := range cases {
		p, err := Parse(c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		nav := Nav(d, p)
		join := Join(d, idx, p)
		if len(nav) != len(join) {
			t.Fatalf("%s: nav %d join %d", c.path, len(nav), len(join))
		}
		for i := range nav {
			if nav[i] != join[i] {
				t.Fatalf("%s: result %d differs", c.path, i)
			}
		}
		if c.want >= 0 && len(nav) != c.want {
			t.Fatalf("%s: %d results, want %d", c.path, len(nav), c.want)
		}
	}
}

// TestPredicatesSurviveUpdates inserts attributed elements and re-queries.
func TestPredicatesSurviveUpdates(t *testing.T) {
	d := loadDoc(t, `<r><item id="a"/><item id="b"/></r>`)
	for i := 0; i < 20; i++ {
		if _, err := d.InsertElement(d.X.Root, 0, "item"); err != nil {
			t.Fatal(err)
		}
	}
	idx := d.BuildTagIndex()
	p, _ := Parse("//item[@id='b']")
	res := Join(d, idx, p)
	if len(res) != 1 {
		t.Fatalf("got %d", len(res))
	}
	if v, _ := res[0].Attr("id"); v != "b" {
		t.Fatal("wrong element")
	}
}

func loadDoc(t *testing.T, src string) *document.Doc {
	t.Helper()
	return load(t, src)
}
