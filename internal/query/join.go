package query

import (
	"sort"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Index supplies begin-sorted posting streams per element tag; the tag
// "*" stands for every element. Both document.TagIndex (a one-shot
// snapshot) and index.Index (the incremental chunked copy-on-write
// versions the Store publishes) satisfy it. Implementations must be safe
// for concurrent readers; each traversal obtains its own cursor, and the
// postings behind it are shared and read-only.
//
// The cursor abstraction is what frees the index from contiguous
// slices: the chunked index serves postings straight out of its
// immutable chunks, and its Seek skips whole chunks by fence comparison,
// which the structural joins below exploit to jump over candidates that
// cannot have an ancestor in the context set.
type Index interface {
	Cursor(tag string) document.Cursor
}

// Join evaluates the path with label-based structural joins over a tag
// index and materializes the matches in document order. Every step is
// one linear merge of two begin-sorted posting streams using the
// interval containment predicate — the relational plan the paper's
// labeling scheme enables ("exactly one self-join with label comparisons
// as predicates", §1). The child axis adds a level-equality check on top
// of containment.
//
// Join drains the lazy cursor pipeline (JoinCursor, stream.go): steps
// compose as cursors end-to-end, so only the final result set is
// allocated here. The d parameter is kept for call-site compatibility;
// evaluation reads the index alone.
func Join(d *document.Doc, idx Index, p *Path) []*xmldom.Node {
	_ = d
	var out []*xmldom.Node
	cur := JoinCursor(idx, p)
	for e, ok := cur.Next(); ok; e, ok = cur.Next() {
		out = append(out, e.Node)
	}
	return out
}

// JoinMaterialized is the eager evaluator: each step's result set is
// materialized as a begin-sorted entry slice before the next step joins
// against it. It is retained as the differential oracle for the lazy
// pipeline (fuzz_test.go) and as the memory baseline the `-exp pipeline`
// experiment measures against; production paths use Join/JoinCursor.
func JoinMaterialized(d *document.Doc, idx Index, p *Path) []*xmldom.Node {
	if len(p.Steps) == 0 {
		return nil
	}
	first := p.Steps[0]
	var ctx []document.Entry
	if p.Rooted {
		// Anchor at the root element.
		rootEntry, ok := findEntry(d, idx, d.X.Root)
		if !ok {
			return nil
		}
		switch first.Axis {
		case Child:
			if matchesStep(d.X.Root, first) {
				ctx = []document.Entry{rootEntry}
			}
		case Descendant:
			if matchesStep(d.X.Root, first) {
				ctx = append(ctx, rootEntry)
			}
			ctx = append(ctx, containedIn(stepCursor(idx, first), []document.Entry{rootEntry}, false)...)
			ctx = dedupEntries(ctx)
		}
	} else {
		ctx = document.DrainCursor(stepCursor(idx, first))
	}
	for _, st := range p.Steps[1:] {
		ctx = containedIn(stepCursor(idx, st), ctx, st.Axis == Child)
	}
	out := make([]*xmldom.Node, len(ctx))
	for i, e := range ctx {
		out[i] = e.Node
	}
	return out
}

// stepCursor returns the begin-sorted posting stream for a step,
// applying its attribute predicates as a streaming filter.
func stepCursor(idx Index, st Step) document.Cursor {
	cur := idx.Cursor(st.Tag)
	if len(st.Preds) == 0 {
		return cur
	}
	return &predCursor{cur: cur, preds: st.Preds}
}

// predCursor filters a posting stream through a step's attribute
// predicates without materializing the list.
type predCursor struct {
	cur   document.Cursor
	preds []Pred
}

func (c *predCursor) Next() (document.Entry, bool) {
	for {
		e, ok := c.cur.Next()
		if !ok {
			return document.Entry{}, false
		}
		if passesPreds(e.Node, c.preds) {
			return e, true
		}
	}
}

func (c *predCursor) Seek(begin uint64) (document.Entry, bool) {
	e, ok := c.cur.Seek(begin)
	for ok && !passesPreds(e.Node, c.preds) {
		e, ok = c.cur.Next()
	}
	if !ok {
		return document.Entry{}, false
	}
	return e, true
}

func sortEntries(es []document.Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Label.Begin < es[j].Label.Begin })
}

// containedIn returns the candidates that have an ancestor (or parent,
// when childOnly) in ctx — the stack-based structural merge join: both
// inputs are begin-sorted; ancestors are pushed while their intervals
// are open and popped once passed, so each element is touched O(1)
// times. Candidates stream through a cursor: whenever the ancestor stack
// runs empty, every candidate before the next context interval is
// provably unmatched, so the join Seeks past all of them — on the
// chunked index that discards whole chunks by fence comparison instead
// of scanning every posting.
func containedIn(candidates document.Cursor, ctx []document.Entry, childOnly bool) []document.Entry {
	if len(ctx) == 0 {
		return nil
	}
	var out []document.Entry
	var stack []document.Entry
	ai := 0
	// Containment is strict (anc.Begin < cand.Begin), so nothing at or
	// before the first context begin can qualify.
	cand, ok := candidates.Seek(ctx[0].Label.Begin + 1)
	for ok {
		// Pop closed ancestors.
		for len(stack) > 0 && stack[len(stack)-1].Label.End < cand.Label.Begin {
			stack = stack[:len(stack)-1]
		}
		// Push ancestors opening before this candidate.
		for ai < len(ctx) && ctx[ai].Label.Begin < cand.Label.Begin {
			if ctx[ai].Label.End > cand.Label.Begin { // still open
				stack = append(stack, ctx[ai])
			}
			ai++
		}
		if len(stack) == 0 {
			if ai >= len(ctx) {
				break // no context intervals left to open
			}
			// Skip every candidate before the next context interval.
			cand, ok = candidates.Seek(ctx[ai].Label.Begin + 1)
			continue
		}
		top := stack[len(stack)-1]
		if top.Label.Contains(cand.Label) {
			if !childOnly {
				out = append(out, cand)
			} else if top.Level == cand.Level-1 {
				// The innermost ctx ancestor is the parent iff it sits one
				// level above; deeper ctx ancestors cannot be (nesting).
				out = append(out, cand)
			}
		}
		cand, ok = candidates.Next()
	}
	return out
}

// findEntry builds the root's entry (the tag index stores it too, but this
// avoids a scan when the tag is unknown).
func findEntry(d *document.Doc, idx Index, n *xmldom.Node) (document.Entry, bool) {
	lab, err := d.Label(n)
	if err != nil {
		return document.Entry{}, false
	}
	return document.Entry{Node: n, Label: lab, Level: n.Level()}, true
}

// dedupEntries removes duplicates from a begin-sorted entry list.
func dedupEntries(es []document.Entry) []document.Entry {
	if len(es) < 2 {
		return es
	}
	sortEntries(es)
	out := es[:1]
	for _, e := range es[1:] {
		if e.Node != out[len(out)-1].Node {
			out = append(out, e)
		}
	}
	return out
}

// Descendants returns all elements strictly inside n, found by one Seek
// plus a contiguous scan of the "*" posting stream — the primitive that
// turns "give me the subtree" into an index range lookup. On the chunked
// index the Seek lands mid-chunk without touching anything before it.
func Descendants(d *document.Doc, idx Index, n *xmldom.Node) []*xmldom.Node {
	lab, err := d.Label(n)
	if err != nil {
		return nil
	}
	var out []*xmldom.Node
	cur := idx.Cursor("*")
	for e, ok := cur.Seek(lab.Begin + 1); ok && e.Label.Begin < lab.End; e, ok = cur.Next() {
		if e.Label.End < lab.End {
			out = append(out, e.Node)
		}
	}
	return out
}

// AllElements materializes the "*" posting stream: every element in
// document order.
func AllElements(idx Index) []document.Entry {
	return document.DrainCursor(idx.Cursor("*"))
}
