package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Index supplies begin-sorted posting streams per element tag; the tag
// "*" stands for every element. Both document.TagIndex (a one-shot
// snapshot) and index.Index (the incremental chunked copy-on-write
// versions the Store publishes) satisfy it. Implementations must be safe
// for concurrent readers; each traversal obtains its own cursor, and the
// postings behind it are shared and read-only.
//
// The cursor abstraction is what frees the index from contiguous
// slices: the chunked index serves postings straight out of its
// immutable chunks, and its Seek skips whole chunks by fence comparison,
// which the structural joins below exploit to jump over candidates that
// cannot have an ancestor in the context set.
type Index interface {
	Cursor(tag string) document.Cursor
}

// Join evaluates the path with label-based structural joins over a tag
// index and materializes the matches in document order. Every step is
// one linear merge of two begin-sorted posting streams using the
// interval containment predicate — the relational plan the paper's
// labeling scheme enables ("exactly one self-join with label comparisons
// as predicates", §1). The child axis adds a level-equality check on top
// of containment.
//
// Join drains the lazy cursor pipeline (JoinCursor, stream.go): steps
// compose as cursors end-to-end, so only the final result set is
// allocated here. The d parameter is kept for call-site compatibility;
// evaluation reads the index alone.
func Join(d *document.Doc, idx Index, p *Path) []*xmldom.Node {
	_ = d
	var out []*xmldom.Node
	cur := JoinCursor(idx, p)
	for e, ok := cur.Next(); ok; e, ok = cur.Next() {
		out = append(out, e.Node)
	}
	return out
}

// JoinMaterialized is the eager evaluator: each step's result set is
// materialized as a begin-sorted entry slice before the next step joins
// against it. It is retained as the differential oracle for the lazy
// pipeline (fuzz_test.go) and as the memory baseline the `-exp pipeline`
// experiment measures against; production paths use Join/JoinCursor.
func JoinMaterialized(d *document.Doc, idx Index, p *Path) []*xmldom.Node {
	if len(p.Steps) == 0 {
		return nil
	}
	first := p.Steps[0]
	var ctx []document.Entry
	if p.Rooted {
		// Anchor at the root element.
		rootEntry, ok := findEntry(d, idx, d.X.Root)
		if !ok {
			return nil
		}
		switch first.Axis {
		case Child:
			if matchesStep(d.X.Root, first) {
				ctx = []document.Entry{rootEntry}
			}
		case Descendant:
			if matchesStep(d.X.Root, first) {
				ctx = append(ctx, rootEntry)
			}
			ctx = append(ctx, containedIn(stepCursor(idx, first), []document.Entry{rootEntry}, false)...)
			ctx = dedupEntries(ctx)
		}
	} else {
		ctx = document.DrainCursor(stepCursor(idx, first))
	}
	for _, st := range p.Steps[1:] {
		ctx = containedIn(stepCursor(idx, st), ctx, st.Axis == Child)
	}
	out := make([]*xmldom.Node, len(ctx))
	for i, e := range ctx {
		out[i] = e.Node
	}
	return out
}

// stepCursor returns the plain begin-sorted posting stream for a step,
// applying its attribute predicates as an entry-by-entry streaming
// filter — no pushdown, no memoization. JoinMaterialized evaluates on
// exactly this so the oracle shares none of the optimized machinery the
// differential tests are checking.
func stepCursor(idx Index, st Step) document.Cursor {
	cur := idx.Cursor(st.Tag)
	if len(st.Preds) == 0 {
		return cur
	}
	return &predCursor{cur: cur, preds: st.Preds}
}

// stepCursorOpt is the production step stream: on a predicate-bearing
// step it pushes the required attribute keys below the fence directory
// (the cursor then rejects whole chunks whose summary proves a key
// absent, before decoding a posting) and installs the step's shared
// verdict memo when the evaluation carries one.
func stepCursorOpt(idx Index, st Step, o EvalOptions, memos map[string]map[*xmldom.Node]bool) document.Cursor {
	cur := idx.Cursor(st.Tag)
	if len(st.Preds) == 0 {
		return cur
	}
	if !o.DisablePushdown {
		if cf, ok := cur.(document.ChunkFilter); ok {
			cf.FilterChunks(predHashes(st.Preds))
		}
	}
	var memo map[*xmldom.Node]bool
	if memos != nil {
		memo = memos[stepSig(st)]
	}
	return &predCursor{cur: cur, preds: st.Preds, memo: memo}
}

// predHashes renders a step's predicates as the attribute-key hashes a
// chunk must contain for any entry to pass: the name=value key for an
// equality test (strictly tighter than the bare name), the name key for
// an existence test. Conjunctive, like the predicates themselves.
func predHashes(preds []Pred) []uint64 {
	out := make([]uint64, len(preds))
	for i, p := range preds {
		if p.HasValue {
			out[i] = document.AttrKVHash(p.Attr, p.Value)
		} else {
			out[i] = document.AttrKeyHash(p.Attr)
		}
	}
	return out
}

// stepSig canonically renders a step's tag and predicates — the identity
// under which predicate verdicts may be shared between cursors (the axis
// deliberately excluded: it never affects a node's verdict).
func stepSig(st Step) string {
	var b strings.Builder
	b.WriteString(st.Tag)
	for _, p := range st.Preds {
		if p.HasValue {
			fmt.Fprintf(&b, "[@%s='%s']", p.Attr, p.Value)
		} else {
			fmt.Fprintf(&b, "[@%s]", p.Attr)
		}
	}
	return b.String()
}

// PredMemo caches node→verdict predicate resolutions per step signature
// across every query evaluated with it — the Txn-scoped mirror of the
// Txn label memo: within one read transaction attributes are stable, so
// a node's verdict for a given predicate set never changes. Not safe for
// concurrent use (like the Txn that owns it).
type PredMemo struct {
	steps map[string]map[*xmldom.Node]bool
}

// NewPredMemo returns an empty memo.
func NewPredMemo() *PredMemo {
	return &PredMemo{steps: make(map[string]map[*xmldom.Node]bool)}
}

// step returns (allocating on first use) the verdict cache for one step
// signature.
func (m *PredMemo) step(sig string) map[*xmldom.Node]bool {
	s := m.steps[sig]
	if s == nil {
		s = make(map[*xmldom.Node]bool)
		m.steps[sig] = s
	}
	return s
}

// predMemos wires a Txn-scoped memo's per-signature caches to the
// predicate steps of one path. Verdicts are memoized ONLY when a Txn
// supplies the memo: a single query never revisits a node often enough
// to amortize the map inserts (measured in BenchmarkPredMemo — a
// per-query cache for repeated signatures lost to plain re-evaluation
// on both lean and attribute-heavy corpora), but across the repeated
// queries of one read transaction the steady state is pure pointer
// probes, which beat re-walking long attribute lists.
func predMemos(p *Path, o EvalOptions) map[string]map[*xmldom.Node]bool {
	if o.DisableMemo || o.Memo == nil {
		return nil
	}
	var out map[string]map[*xmldom.Node]bool
	for _, st := range p.Steps {
		if len(st.Preds) == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]map[*xmldom.Node]bool)
		}
		sig := stepSig(st)
		out[sig] = o.Memo.step(sig)
	}
	return out
}

// predCursor filters a posting stream through a step's attribute
// predicates without materializing the list. With a memo installed,
// verdicts resolve through one hash probe instead of re-walking the
// node's attribute list.
type predCursor struct {
	cur   document.Cursor
	preds []Pred
	memo  map[*xmldom.Node]bool // shared verdict cache; nil = evaluate always
}

// memoMinAttrs gates which nodes a memo caches: a pointer-keyed map
// probe costs about as much as walking a couple of attributes, so
// caching short-listed nodes is pure overhead (BenchmarkPredMemo). By
// skipping them the memo stays empty on lean documents — and probing an
// empty map is a near-free early return — while attribute-heavy nodes,
// where the probe replaces a long string-compare walk, still hit.
const memoMinAttrs = 4

// passes evaluates (or recalls) one node's verdict. The len guard keeps
// the still-empty-memo path to one inlined field read — a map access is
// an uninlinable runtime call even when the map holds nothing, and it is
// paid per posting.
func (c *predCursor) passes(n *xmldom.Node) bool {
	if len(c.memo) > 0 {
		if v, ok := c.memo[n]; ok {
			return v
		}
	}
	v := passesPreds(n, c.preds)
	if c.memo != nil && len(n.Attrs()) >= memoMinAttrs {
		c.memo[n] = v
	}
	return v
}

func (c *predCursor) Next() (document.Entry, bool) {
	for {
		e, ok := c.cur.Next()
		if !ok {
			return document.Entry{}, false
		}
		if c.passes(e.Node) {
			return e, true
		}
	}
}

func (c *predCursor) Seek(begin uint64) (document.Entry, bool) {
	e, ok := c.cur.Seek(begin)
	for ok && !c.passes(e.Node) {
		e, ok = c.cur.Next()
	}
	if !ok {
		return document.Entry{}, false
	}
	return e, true
}

// SeekOpen implements document.OpenSeeker: predicate filtering composes
// with the zig-zag context skip, so a predicate-bearing context step
// both skips closed chunks (maxEnd fences, via the inner cursor) and
// never evaluates predicates on the entries those skips discard.
func (c *predCursor) SeekOpen(begin uint64) (document.Entry, bool) {
	for {
		e, ok := seekOpenOn(c.cur, begin)
		if !ok {
			return document.Entry{}, false
		}
		if c.passes(e.Node) {
			return e, true
		}
	}
}

func sortEntries(es []document.Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Label.Begin < es[j].Label.Begin })
}

// containedIn returns the candidates that have an ancestor (or parent,
// when childOnly) in ctx — the stack-based structural merge join: both
// inputs are begin-sorted; ancestors are pushed while their intervals
// are open and popped once passed, so each element is touched O(1)
// times. Candidates stream through a cursor: whenever the ancestor stack
// runs empty, every candidate before the next context interval is
// provably unmatched, so the join Seeks past all of them — on the
// chunked index that discards whole chunks by fence comparison instead
// of scanning every posting.
func containedIn(candidates document.Cursor, ctx []document.Entry, childOnly bool) []document.Entry {
	if len(ctx) == 0 {
		return nil
	}
	var out []document.Entry
	var stack []document.Entry
	ai := 0
	// Containment is strict (anc.Begin < cand.Begin), so nothing at or
	// before the first context begin can qualify.
	cand, ok := candidates.Seek(ctx[0].Label.Begin + 1)
	for ok {
		// Pop closed ancestors.
		for len(stack) > 0 && stack[len(stack)-1].Label.End < cand.Label.Begin {
			stack = stack[:len(stack)-1]
		}
		// Push ancestors opening before this candidate.
		for ai < len(ctx) && ctx[ai].Label.Begin < cand.Label.Begin {
			if ctx[ai].Label.End > cand.Label.Begin { // still open
				stack = append(stack, ctx[ai])
			}
			ai++
		}
		if len(stack) == 0 {
			if ai >= len(ctx) {
				break // no context intervals left to open
			}
			// Skip every candidate before the next context interval.
			cand, ok = candidates.Seek(ctx[ai].Label.Begin + 1)
			continue
		}
		top := stack[len(stack)-1]
		if top.Label.Contains(cand.Label) {
			if !childOnly {
				out = append(out, cand)
			} else if top.Level == cand.Level-1 {
				// The innermost ctx ancestor is the parent iff it sits one
				// level above; deeper ctx ancestors cannot be (nesting).
				out = append(out, cand)
			}
		}
		cand, ok = candidates.Next()
	}
	return out
}

// findEntry builds the root's entry (the tag index stores it too, but this
// avoids a scan when the tag is unknown).
func findEntry(d *document.Doc, idx Index, n *xmldom.Node) (document.Entry, bool) {
	lab, err := d.Label(n)
	if err != nil {
		return document.Entry{}, false
	}
	return document.Entry{Node: n, Label: lab, Level: n.Level()}, true
}

// dedupEntries removes duplicates from a begin-sorted entry list.
func dedupEntries(es []document.Entry) []document.Entry {
	if len(es) < 2 {
		return es
	}
	sortEntries(es)
	out := es[:1]
	for _, e := range es[1:] {
		if e.Node != out[len(out)-1].Node {
			out = append(out, e)
		}
	}
	return out
}

// Descendants returns all elements strictly inside n, found by one Seek
// plus a contiguous scan of the "*" posting stream — the primitive that
// turns "give me the subtree" into an index range lookup. On the chunked
// index the Seek lands mid-chunk without touching anything before it.
func Descendants(d *document.Doc, idx Index, n *xmldom.Node) []*xmldom.Node {
	lab, err := d.Label(n)
	if err != nil {
		return nil
	}
	var out []*xmldom.Node
	cur := idx.Cursor("*")
	for e, ok := cur.Seek(lab.Begin + 1); ok && e.Label.Begin < lab.End; e, ok = cur.Next() {
		if e.Label.End < lab.End {
			out = append(out, e.Node)
		}
	}
	return out
}

// AllElements materializes the "*" posting stream: every element in
// document order.
func AllElements(idx Index) []document.Entry {
	return document.DrainCursor(idx.Cursor("*"))
}
