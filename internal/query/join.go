package query

import (
	"sort"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Index supplies begin-sorted posting lists per element tag; the tag "*"
// stands for every element. Both document.TagIndex (a one-shot snapshot)
// and index.Index (the incremental copy-on-write versions the Store
// publishes) satisfy it. Implementations must be safe for concurrent
// readers; the returned slices are shared and read-only.
type Index interface {
	Postings(tag string) []document.Entry
}

// Join evaluates the path with label-based structural joins over a tag
// index. Every step is one linear merge of two begin-sorted posting lists
// using the interval containment predicate — the relational plan the
// paper's labeling scheme enables ("exactly one self-join with label
// comparisons as predicates", §1). The child axis adds a level-equality
// check on top of containment.
func Join(d *document.Doc, idx Index, p *Path) []*xmldom.Node {
	if len(p.Steps) == 0 {
		return nil
	}
	first := p.Steps[0]
	var ctx []document.Entry
	if p.Rooted {
		// Anchor at the root element.
		rootEntry, ok := findEntry(d, idx, d.X.Root)
		if !ok {
			return nil
		}
		switch first.Axis {
		case Child:
			if matchesStep(d.X.Root, first) {
				ctx = []document.Entry{rootEntry}
			}
		case Descendant:
			if matchesStep(d.X.Root, first) {
				ctx = append(ctx, rootEntry)
			}
			ctx = append(ctx, containedIn(stepPostings(idx, first), []document.Entry{rootEntry}, false)...)
			ctx = dedupEntries(ctx)
		}
	} else {
		ctx = stepPostings(idx, first)
	}
	for _, st := range p.Steps[1:] {
		ctx = containedIn(stepPostings(idx, st), ctx, st.Axis == Child)
	}
	out := make([]*xmldom.Node, len(ctx))
	for i, e := range ctx {
		out[i] = e.Node
	}
	return out
}

// stepPostings returns the begin-sorted posting list for a step,
// applying its attribute predicates as an index filter.
func stepPostings(idx Index, st Step) []document.Entry {
	posts := idx.Postings(st.Tag)
	if len(st.Preds) == 0 {
		return posts
	}
	out := make([]document.Entry, 0, len(posts))
	for _, e := range posts {
		if passesPreds(e.Node, st.Preds) {
			out = append(out, e)
		}
	}
	return out
}

func sortEntries(es []document.Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Label.Begin < es[j].Label.Begin })
}

// containedIn returns the candidates that have an ancestor (or parent,
// when childOnly) in ctx — the stack-based structural merge join: both
// lists are begin-sorted; ancestors are pushed while their intervals are
// open and popped once passed, so each element is touched O(1) times.
func containedIn(candidates, ctx []document.Entry, childOnly bool) []document.Entry {
	if len(candidates) == 0 || len(ctx) == 0 {
		return nil
	}
	var out []document.Entry
	var stack []document.Entry
	ai := 0
	for _, cand := range candidates {
		// Pop closed ancestors.
		for len(stack) > 0 && stack[len(stack)-1].Label.End < cand.Label.Begin {
			stack = stack[:len(stack)-1]
		}
		// Push ancestors opening before this candidate.
		for ai < len(ctx) && ctx[ai].Label.Begin < cand.Label.Begin {
			if ctx[ai].Label.End > cand.Label.Begin { // still open
				stack = append(stack, ctx[ai])
			}
			ai++
		}
		if len(stack) == 0 {
			continue
		}
		top := stack[len(stack)-1]
		if !top.Label.Contains(cand.Label) {
			continue
		}
		if childOnly {
			// The innermost ctx ancestor is the parent iff it sits one
			// level above; deeper ctx ancestors cannot be (nesting).
			if top.Level == cand.Level-1 {
				out = append(out, cand)
			}
			continue
		}
		out = append(out, cand)
	}
	return out
}

// findEntry builds the root's entry (the tag index stores it too, but this
// avoids a scan when the tag is unknown).
func findEntry(d *document.Doc, idx Index, n *xmldom.Node) (document.Entry, bool) {
	lab, err := d.Label(n)
	if err != nil {
		return document.Entry{}, false
	}
	return document.Entry{Node: n, Label: lab, Level: n.Level()}, true
}

// dedupEntries removes duplicates from a begin-sorted entry list.
func dedupEntries(es []document.Entry) []document.Entry {
	if len(es) < 2 {
		return es
	}
	sortEntries(es)
	out := es[:1]
	for _, e := range es[1:] {
		if e.Node != out[len(out)-1].Node {
			out = append(out, e)
		}
	}
	return out
}

// Descendants returns all elements strictly inside n, found by one binary
// search plus a contiguous scan over a begin-sorted element list — the
// primitive that turns "give me the subtree" into an index range lookup.
// Pass the result of AllElements (reusable across calls).
func Descendants(d *document.Doc, all []document.Entry, n *xmldom.Node) []*xmldom.Node {
	lab, err := d.Label(n)
	if err != nil {
		return nil
	}
	lo := sort.Search(len(all), func(i int) bool { return all[i].Label.Begin > lab.Begin })
	var out []*xmldom.Node
	for i := lo; i < len(all) && all[i].Label.Begin < lab.End; i++ {
		if all[i].Label.End < lab.End {
			out = append(out, all[i].Node)
		}
	}
	return out
}

// AllElements flattens a tag index into one begin-sorted posting list.
func AllElements(idx Index) []document.Entry {
	return idx.Postings("*")
}
