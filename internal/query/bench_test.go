package query

import (
	"fmt"
	"testing"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/workload"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// BenchmarkPredMemo isolates the Txn-scoped predicate-verdict memo
// (satellite of the pushdown PR): across the repeated queries of one
// read transaction, verdicts resolve by pointer probe instead of
// re-walking attribute lists. The bench runs two corpora because the
// memo's economics depend on attribute-list length: on "lean" documents
// (≤2 attrs per node, the workload default) a map probe costs about as
// much as walking the list, so the memo must stay out of the way (the
// memoMinAttrs gate keeps it empty and the probe un-taken — expect
// parity); on "heavy" documents (12 attrs per node, the queried key
// last) the probe replaces a 12-entry string-compare walk and the
// steady state wins ~1.5x. These numbers are why evaluation memoizes
// only with a Txn-supplied memo and only for attribute-heavy nodes — an
// earlier per-query cache for repeated signatures lost to plain
// re-evaluation on both corpora (map inserts dominate a stream that
// touches each node at most twice). Zig-zag and pushdown are held fixed
// (enabled) so the delta is the memo alone.
func BenchmarkPredMemo(b *testing.B) {
	lean := workload.GenerateDoc(workload.DocConfig{
		Elements: 4000, MaxDepth: 10, MaxFanout: 6, AttrProb: 0.6,
	}, 21)
	heavy := workload.GenerateDoc(workload.DocConfig{
		Elements: 4000, MaxDepth: 10, MaxFanout: 6,
	}, 21)
	// Give every element a 12-attribute list with the discriminating keys
	// appended last — the worst case for the linear Attr() walk the
	// un-memoized predicate evaluation performs per posting. (SetAttr
	// appends unknown names, so padding first places cat/id at the tail.)
	seq := 0
	var pad func(n *xmldom.Node)
	pad = func(n *xmldom.Node) {
		if n.Kind() == xmldom.Element {
			for i := 0; i < 10; i++ {
				n.SetAttr(fmt.Sprintf("pad%d", i), "x")
			}
			n.SetAttr("cat", fmt.Sprintf("v%d", seq%8))
			n.SetAttr("id", fmt.Sprintf("v%d", (seq/3)%8))
			seq++
		}
		for _, c := range n.Children() {
			pad(c)
		}
	}
	pad(heavy.Root)

	for _, corpus := range []struct {
		name string
		x    *xmldom.Document
	}{{"lean", lean}, {"heavy", heavy}} {
		d, err := document.Load(corpus.x, p42)
		if err != nil {
			b.Fatal(err)
		}
		ix := index.FromSized(d.BuildTagIndex(), 64)
		// Repeated signature: section[@cat] appears twice, so the
		// per-query memo is live even without a Txn-scoped one.
		p, err := Parse("//section[@cat]//section[@cat]//item[@id='v1']")
		if err != nil {
			b.Fatal(err)
		}
		drain := func(o EvalOptions) int {
			n := 0
			cur := JoinCursorWith(ix, p, o)
			for _, ok := cur.Next(); ok; _, ok = cur.Next() {
				n++
			}
			return n
		}
		if drain(EvalOptions{}) == 0 {
			b.Fatal("benchmark path matches nothing")
		}
		b.Run(corpus.name+"/nomemo", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drain(EvalOptions{})
			}
		})
		b.Run(corpus.name+"/txn-memo", func(b *testing.B) {
			// One memo across all iterations, the Txn.Query shape: the
			// first drain pays resolution, the rest recall verdicts by
			// pointer probe.
			m := NewPredMemo()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drain(EvalOptions{Memo: m})
			}
		})
	}
}
