package query

import "github.com/ltree-db/ltree/internal/document"

// This file is the k-way merge cursor: the scatter-gather primitive the
// forest layer builds on. Each branch is an independent begin-sorted
// cursor (typically one shard's query pipeline); the merge is itself a
// begin-sorted cursor, so a fanned-out query composes with everything
// else that consumes cursors — Collect, range adapters, or another merge.
// Intermediate memory is one buffered head per branch, independent of how
// many entries any branch produces, and a Seek pushes down into every
// branch so cold regions are skipped with each branch's own fence
// machinery rather than pulled entry-by-entry through the heap.

// Merge returns a cursor yielding the union of the given begin-sorted
// cursors in global begin order. Branches are consumed lazily: one entry
// of lookahead per branch, pulled only as the merged stream advances.
// Entries with equal begins surface in branch order (earlier argument
// first), so the merged order is deterministic.
//
// The merged cursor honors the forward-only Cursor contract exactly when
// every branch does: Next yields the global minimum of the buffered
// heads, and Seek(begin) forwards the target to every branch whose
// buffered head is behind it — each branch skips with its own Seek
// (fence-directory jumps on the chunked index) — then yields as Next
// does. Seeking at or behind the current position degrades to Next,
// because every buffered head already sits at or past the last yielded
// entry. Like its branches, the merged cursor is single-use and not safe
// for concurrent use.
func Merge(branches ...document.Cursor) document.Cursor {
	live := make([]document.Cursor, 0, len(branches))
	for _, b := range branches {
		if b != nil {
			live = append(live, b)
		}
	}
	switch len(live) {
	case 0:
		return emptyCursor{}
	case 1:
		return live[0]
	}
	// Small fan-outs (the common case: one branch per forest shard) pay
	// less for a linear min-scan than for heap maintenance — no sift
	// swaps, no head copies, refill overwrites one slot in place. The
	// crossover sits past any realistic shard count; the heap covers the
	// long tail.
	if len(live) <= linearMergeMax {
		return &linearMergeCursor{branches: live}
	}
	return &mergeCursor{branches: live}
}

// linearMergeMax bounds the linear-scan variant: k-1 begin comparisons
// per entry beat O(log k) sift steps (each a 32-byte head copy plus two
// comparisons) until roughly this fan-out.
const linearMergeMax = 8

// headLess orders heads by (begin, branch) — the shared tie-break that
// makes equal begins deterministic across runs and shardings.
func headLess(a, b mergeHead) bool {
	if a.e.Label.Begin != b.e.Label.Begin {
		return a.e.Label.Begin < b.e.Label.Begin
	}
	return a.branch < b.branch
}

// linearMergeCursor is the small-k merge: an unordered slice of live
// per-branch heads, min found by linear scan. Same contract and same
// (begin, branch) order as mergeCursor.
type linearMergeCursor struct {
	branches []document.Cursor
	heads    []mergeHead
	started  bool
}

func (m *linearMergeCursor) prime(pull func(document.Cursor) (document.Entry, bool)) {
	m.started = true
	for i, b := range m.branches {
		if e, ok := pull(b); ok {
			m.heads = append(m.heads, mergeHead{e: e, branch: i})
		}
	}
}

func (m *linearMergeCursor) Next() (document.Entry, bool) {
	if !m.started {
		m.prime(func(b document.Cursor) (document.Entry, bool) { return b.Next() })
	}
	if len(m.heads) == 0 {
		return document.Entry{}, false
	}
	min := 0
	for i := 1; i < len(m.heads); i++ {
		if headLess(m.heads[i], m.heads[min]) {
			min = i
		}
	}
	out := m.heads[min].e
	if e, ok := m.branches[m.heads[min].branch].Next(); ok {
		m.heads[min].e = e
	} else {
		last := len(m.heads) - 1
		m.heads[min] = m.heads[last]
		m.heads = m.heads[:last]
	}
	return out, true
}

// Seek forwards the target into every branch that is behind it, exactly
// like the heap variant; surviving heads stay unordered.
func (m *linearMergeCursor) Seek(begin uint64) (document.Entry, bool) {
	if !m.started {
		m.prime(func(b document.Cursor) (document.Entry, bool) { return b.Seek(begin) })
		return m.Next()
	}
	kept := m.heads[:0]
	for _, h := range m.heads {
		if h.e.Label.Begin >= begin {
			kept = append(kept, h)
			continue
		}
		if e, ok := m.branches[h.branch].Seek(begin); ok {
			kept = append(kept, mergeHead{e: e, branch: h.branch})
		}
	}
	m.heads = kept
	return m.Next()
}

// mergeHead is one branch's buffered entry in the heap.
type mergeHead struct {
	e      document.Entry
	branch int // index into branches; the tie-break keeps merges deterministic
}

// mergeCursor is a binary min-heap of per-branch lookahead entries,
// ordered by (Label.Begin, branch). Exhausted branches leave the heap;
// the cursor is exhausted when the heap empties.
type mergeCursor struct {
	branches []document.Cursor
	heap     []mergeHead
	started  bool
}

// start primes the heap with each branch's first entry.
func (m *mergeCursor) start() {
	m.started = true
	for i, b := range m.branches {
		if e, ok := b.Next(); ok {
			m.heap = append(m.heap, mergeHead{e: e, branch: i})
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

func (m *mergeCursor) Next() (document.Entry, bool) {
	if !m.started {
		m.start()
	}
	if len(m.heap) == 0 {
		return document.Entry{}, false
	}
	top := m.heap[0]
	m.refill(top.branch)
	return top.e, true
}

// Seek pushes the target down into every branch that is behind it: the
// branch's own Seek does the skipping, and only the surviving heads are
// re-heapified. Branches whose buffered head already satisfies the target
// are left untouched (their cursor position must not be disturbed — the
// head is not yet consumed).
func (m *mergeCursor) Seek(begin uint64) (document.Entry, bool) {
	if !m.started {
		// Prime lazily but through each branch's Seek, not Next: the very
		// first pull already skips to the target on every branch.
		m.started = true
		for i, b := range m.branches {
			if e, ok := b.Seek(begin); ok {
				m.heap = append(m.heap, mergeHead{e: e, branch: i})
			}
		}
		for i := len(m.heap)/2 - 1; i >= 0; i-- {
			m.siftDown(i)
		}
		return m.Next()
	}
	kept := m.heap[:0]
	for _, h := range m.heap {
		if h.e.Label.Begin >= begin {
			kept = append(kept, h)
			continue
		}
		if e, ok := m.branches[h.branch].Seek(begin); ok {
			kept = append(kept, mergeHead{e: e, branch: h.branch})
		}
	}
	m.heap = kept
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m.Next()
}

// refill replaces the popped root with the same branch's next entry (or
// shrinks the heap when the branch is exhausted) and restores heap order.
func (m *mergeCursor) refill(branch int) {
	if e, ok := m.branches[branch].Next(); ok {
		m.heap[0] = mergeHead{e: e, branch: branch}
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	}
	m.siftDown(0)
}

func (m *mergeCursor) less(a, b mergeHead) bool { return headLess(a, b) }

func (m *mergeCursor) siftDown(i int) {
	n := len(m.heap)
	for {
		min := i
		if l := 2*i + 1; l < n && m.less(m.heap[l], m.heap[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && m.less(m.heap[r], m.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		m.heap[i], m.heap[min] = m.heap[min], m.heap[i]
		i = min
	}
}
