package query

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/workload"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// randomPathExpr builds a random (possibly malformed) path expression
// over the tag alphabet — steps may carry attribute predicates ([@k],
// [@k='v']), so the zig-zag join's pushdown path is on the differential
// surface. Shared by the differential test and the fuzz target.
func randomPathExpr(rng *rand.Rand, tags []string) string {
	steps := rng.Intn(4) + 1
	var sb strings.Builder
	if rng.Intn(2) == 0 {
		sb.WriteString("/")
		if rng.Intn(2) == 0 {
			sb.WriteString("/")
		}
	}
	for i := 0; i < steps; i++ {
		if i > 0 {
			if rng.Intn(2) == 0 {
				sb.WriteString("/")
			} else {
				sb.WriteString("//")
			}
		}
		sb.WriteString(tags[rng.Intn(len(tags))])
		if rng.Intn(3) == 0 {
			sb.WriteString(randomPredExpr(rng))
			if rng.Intn(4) == 0 {
				sb.WriteString(randomPredExpr(rng)) // conjunction
			}
		}
	}
	return sb.String()
}

// randomPredExpr picks one attribute predicate over the alphabets the
// workload generator (id/cat/role, v0..v7, rare) and XMarkLite (id=itemN
// etc) actually emit, plus always-absent keys and values, so predicates
// hit matching, partially-matching and definitely-absent chunks.
func randomPredExpr(rng *rand.Rand) string {
	names := []string{"id", "cat", "role", "nope"}
	name := names[rng.Intn(len(names))]
	switch rng.Intn(3) {
	case 0:
		return "[@" + name + "]"
	case 1:
		vals := []string{"v0", "v1", "rare", "item3", "person1", "ghost"}
		return "[@" + name + "='" + vals[rng.Intn(len(vals))] + "']"
	default:
		return "[@" + name + "='v" + string(rune('0'+rng.Intn(8))) + "']"
	}
}

// evalVariants is the evaluator configuration matrix every differential
// test runs: the production default plus each optimization disabled in
// turn, down to the PR-4 linear-context baseline. All four must agree
// with the materialized oracle on every stream.
var evalVariants = []struct {
	name string
	opts EvalOptions
}{
	{"full", EvalOptions{}},
	{"nozig", EvalOptions{DisableZigzag: true}},
	{"nopush", EvalOptions{DisablePushdown: true}},
	{"legacy", EvalOptions{DisableZigzag: true, DisablePushdown: true, DisableMemo: true}},
}

// oracleEntries materializes the eager evaluator's result with labels —
// the reference stream the lazy pipeline must reproduce under any
// consumption pattern.
func oracleEntries(t *testing.T, d *document.Doc, idx Index, p *Path) []document.Entry {
	t.Helper()
	nodes := JoinMaterialized(d, idx, p)
	out := make([]document.Entry, len(nodes))
	for i, n := range nodes {
		lab, err := d.Label(n)
		if err != nil {
			t.Fatalf("oracle result %d unbound: %v", i, err)
		}
		out[i] = document.Entry{Node: n, Label: lab, Level: n.Level()}
	}
	return out
}

// drainMatches fully drains a cursor and compares against the oracle.
func drainMatches(t *testing.T, tag, expr string, cur document.Cursor, want []document.Entry) {
	t.Helper()
	for i := 0; ; i++ {
		e, ok := cur.Next()
		if !ok {
			if i != len(want) {
				t.Fatalf("[%s] %q: lazy drained %d results, oracle %d", tag, expr, i, len(want))
			}
			return
		}
		if i >= len(want) || e.Node != want[i].Node {
			t.Fatalf("[%s] %q: lazy result %d disagrees with oracle", tag, expr, i)
		}
	}
}

// torturePartial drives a fresh lazy cursor with a random Next/Seek
// interleaving and checks every yield against the forward-only contract
// over the oracle stream: Seek(b) must land on the first unconsumed
// match with Begin >= b, Next on the next unconsumed match.
func torturePartial(t *testing.T, tag, expr string, cur document.Cursor, want []document.Entry, rng *rand.Rand) {
	t.Helper()
	pos := 0
	for step := 0; step < 40; step++ {
		if rng.Intn(3) == 0 && len(want) > 0 {
			// Seek to a begin picked off the oracle (sometimes nudged to
			// fall between matches, behind the cursor, or past the end).
			b := want[rng.Intn(len(want))].Label.Begin
			switch rng.Intn(4) {
			case 0:
				b++
			case 1:
				b = 0
			case 2:
				b += 1 << 20
			}
			at := sort.Search(len(want), func(i int) bool { return want[i].Label.Begin >= b })
			if at < pos {
				at = pos // forward-only: seeking behind degrades to Next
			}
			e, ok := cur.Seek(b)
			if at >= len(want) {
				if ok {
					t.Fatalf("[%s] %q: Seek(%d) yielded a result past the oracle end", tag, expr, b)
				}
				return
			}
			if !ok || e.Node != want[at].Node {
				t.Fatalf("[%s] %q: Seek(%d) disagrees with oracle position %d", tag, expr, b, at)
			}
			pos = at + 1
		} else {
			e, ok := cur.Next()
			if pos >= len(want) {
				if ok {
					t.Fatalf("[%s] %q: Next yielded a result past the oracle end", tag, expr)
				}
				return
			}
			if !ok || e.Node != want[pos].Node {
				t.Fatalf("[%s] %q: Next disagrees with oracle position %d", tag, expr, pos)
			}
			pos++
		}
	}
}

// TestJoinLazyVsMaterialized is the pipeline differential: on random and
// xmark-lite documents, random paths must yield identical streams from
// the cursor-composed join and the materialized PR-3 oracle — under full
// drains and under random partial Next/Seek interleavings, over both the
// flat TagIndex and a finely chunked index (so Seek fence-skips are on
// the tested path).
func TestJoinLazyVsMaterialized(t *testing.T) {
	type namedDoc struct {
		name string
		d    *document.Doc
	}
	var docs []namedDoc
	for i, x := range []*xmldom.Document{
		workload.GenerateDoc(workload.DocConfig{Elements: 400, MaxDepth: 9, MaxFanout: 6, TextProb: 0.3, AttrProb: 0.5}, 11),
		workload.GenerateDoc(workload.DocConfig{Elements: 700, MaxDepth: 4, MaxFanout: 20, TextProb: 0.1, AttrProb: 0.3}, 12),
		workload.XMarkLite(3, 13),
	} {
		d, err := document.Load(x, p42)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, namedDoc{name: []string{"deep", "wide", "xmark"}[i], d: d})
	}
	tags := append([]string{"*", "root"}, workload.DefaultTags...)
	tags = append(tags, "item", "name", "site", "bidder", "missing")
	rng := rand.New(rand.NewSource(7))
	for _, dc := range docs {
		flat := dc.d.BuildTagIndex()
		chunked := index.FromSized(dc.d.BuildTagIndex(), 4) // tiny chunks: many fences
		for trial := 0; trial < 150; trial++ {
			expr := randomPathExpr(rng, tags)
			p, err := Parse(expr)
			if err != nil {
				continue
			}
			for _, ix := range []struct {
				tag string
				idx Index
			}{{dc.name + "/flat", flat}, {dc.name + "/chunk4", chunked}} {
				want := oracleEntries(t, dc.d, ix.idx, p)
				for _, v := range evalVariants {
					tag := ix.tag + "/" + v.name
					drainMatches(t, tag, expr, JoinCursorWith(ix.idx, p, v.opts), want)
					torturePartial(t, tag, expr, JoinCursorWith(ix.idx, p, v.opts), want,
						rand.New(rand.NewSource(int64(trial))))
				}
			}
		}
	}
}

// TestJoinCursorPredicates: attribute predicates stream through the lazy
// pipeline identically to the oracle — on the flat index and on a finely
// chunked one (where the pushdown path can actually reject chunks), in
// every evaluator variant.
func TestJoinCursorPredicates(t *testing.T) {
	d := load(t, `<db><u role="admin"><k/></u><u><k/></u><u role="admin"/><g><u role="admin"><k id="7"/></u></g></db>`)
	flat := d.BuildTagIndex()
	chunked := index.FromSized(d.BuildTagIndex(), 2)
	for _, expr := range []string{
		"//u[@role='admin']", "//u[@role]/k", "/db/u[@role='admin']",
		"//u[@role='admin']//k[@id='7']", "//u[@missing]",
		"//u[@role='admin']//u[@role='admin']", // repeated signature: shared verdict memo
		"//u[@role='root']", "//k[@id='8']",    // present key, absent value
	} {
		p, err := Parse(expr)
		if err != nil {
			t.Fatal(err)
		}
		for _, ix := range []struct {
			tag string
			idx Index
		}{{"flat", flat}, {"chunk2", chunked}} {
			want := JoinMaterialized(d, ix.idx, p)
			for _, v := range evalVariants {
				cur := JoinCursorWith(ix.idx, p, v.opts)
				got := document.DrainCursor(cur)
				if len(got) != len(want) {
					t.Fatalf("%s[%s/%s]: lazy %d, oracle %d", expr, ix.tag, v.name, len(got), len(want))
				}
				for i := range want {
					if got[i].Node != want[i] {
						t.Fatalf("%s[%s/%s]: result %d differs", expr, ix.tag, v.name, i)
					}
				}
			}
		}
	}
}

// TestDescendantsCursorMatchesEager: the range cursor agrees with the
// eager Descendants on every anchor, including partial consumption.
func TestDescendantsCursorMatchesEager(t *testing.T) {
	x := workload.XMarkLite(2, 17)
	d, err := document.Load(x, p42)
	if err != nil {
		t.Fatal(err)
	}
	idx := index.FromSized(d.BuildTagIndex(), 8)
	flat := d.BuildTagIndex()
	for _, anchor := range d.Elements("item") {
		want := Descendants(d, flat, anchor)
		lab, err := d.Label(anchor)
		if err != nil {
			t.Fatal(err)
		}
		cur := DescendantsCursor(idx, document.Entry{Node: anchor, Label: lab, Level: anchor.Level()})
		got := document.DrainCursor(cur)
		if len(got) != len(want) {
			t.Fatalf("descendants: lazy %d, eager %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Node != want[i] {
				t.Fatalf("descendants: result %d differs", i)
			}
		}
		if len(want) > 1 {
			// Seek into the middle of the subtree range stays in bounds.
			cur := DescendantsCursor(idx, document.Entry{Node: anchor, Label: lab, Level: anchor.Level()})
			mid, _ := d.Label(want[len(want)/2])
			e, ok := cur.Seek(mid.Begin)
			if !ok || e.Node != want[len(want)/2] {
				t.Fatal("descendants Seek landed wrong")
			}
		}
	}
}
