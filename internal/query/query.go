// Package query implements the XPath fragment the paper's motivation uses
// ("book//title", §1): absolute or relative paths of child (/) and
// descendant (//) steps with tag or wildcard tests. Two evaluators are
// provided:
//
//   - Nav: plain tree navigation, the label-free reference evaluator;
//   - Join: label-based structural joins over the per-tag index — each
//     step is one merge pass with interval-containment predicates, the
//     "exactly one self-join" evaluation the labeling scheme enables in
//     an RDBMS.
//
// The two are verified equivalent on random documents, so Join's results
// are trusted wherever it wins on speed (experiment E11).
package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Axis is a step's navigation axis.
type Axis int

// Supported axes.
const (
	Child Axis = iota
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Pred is an attribute predicate on a step: [@attr] (existence) or
// [@attr='value'] (equality).
type Pred struct {
	Attr     string
	Value    string
	HasValue bool
}

// Step is one location step: an axis, a tag test ("*" matches any
// element), and optional attribute predicates (conjunctive).
type Step struct {
	Axis  Axis
	Tag   string
	Preds []Pred
}

// Path is a parsed path expression.
type Path struct {
	// Rooted paths ("/a/...") anchor the first step at the document root;
	// relative paths ("a//b") search the whole document (implicit leading
	// descendant axis).
	Rooted bool
	Steps  []Step
}

// ErrEmptyPath reports a path with no steps.
var ErrEmptyPath = errors.New("query: empty path")

// Parse parses expressions like "/site//item/name", "book//title", "//*".
func Parse(expr string) (*Path, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return nil, ErrEmptyPath
	}
	p := &Path{}
	axis := Descendant // relative paths search anywhere
	switch {
	case strings.HasPrefix(s, "//"):
		s = s[2:]
		axis = Descendant
	case strings.HasPrefix(s, "/"):
		s = s[1:]
		p.Rooted = true
		axis = Child
	}
	if s == "" {
		return nil, ErrEmptyPath
	}
	for len(s) > 0 {
		cut := strings.IndexByte(s, '/')
		var name string
		if cut == -1 {
			name, s = s, ""
		} else {
			name, s = s[:cut], s[cut:]
		}
		if name == "" {
			return nil, fmt.Errorf("query: empty step in %q", expr)
		}
		step := Step{Axis: axis}
		tag, preds, err := parseStep(name)
		if err != nil {
			return nil, fmt.Errorf("query: %w in %q", err, expr)
		}
		step.Tag, step.Preds = tag, preds
		p.Steps = append(p.Steps, step)
		switch {
		case strings.HasPrefix(s, "//"):
			axis = Descendant
			s = s[2:]
			if s == "" {
				return nil, fmt.Errorf("query: trailing // in %q", expr)
			}
		case strings.HasPrefix(s, "/"):
			axis = Child
			s = s[1:]
			if s == "" {
				return nil, fmt.Errorf("query: trailing / in %q", expr)
			}
		}
	}
	return p, nil
}

// parseStep splits "tag[@a][@b='v']" into the tag test and predicates.
func parseStep(s string) (string, []Pred, error) {
	name := s
	var preds []Pred
	if i := strings.IndexByte(s, '['); i >= 0 {
		name = s[:i]
		rest := s[i:]
		for rest != "" {
			if !strings.HasPrefix(rest, "[") {
				return "", nil, fmt.Errorf("bad predicate %q", rest)
			}
			end := strings.IndexByte(rest, ']')
			if end < 0 {
				return "", nil, fmt.Errorf("unterminated predicate %q", rest)
			}
			body := rest[1:end]
			rest = rest[end+1:]
			pred, err := parsePred(body)
			if err != nil {
				return "", nil, err
			}
			preds = append(preds, pred)
		}
	}
	if name == "" {
		return "", nil, errors.New("empty tag test")
	}
	if strings.ContainsAny(name, " \t[]@='\"") {
		return "", nil, fmt.Errorf("unsupported step %q (tags, * and [@attr(='v')] are supported)", name)
	}
	return name, preds, nil
}

// parsePred parses "@attr" or "@attr='value'" (single or double quotes).
func parsePred(body string) (Pred, error) {
	if !strings.HasPrefix(body, "@") {
		return Pred{}, fmt.Errorf("unsupported predicate [%s] (only attribute tests)", body)
	}
	body = body[1:]
	eq := strings.IndexByte(body, '=')
	if eq < 0 {
		if body == "" {
			return Pred{}, errors.New("empty attribute name")
		}
		return Pred{Attr: body}, nil
	}
	attr, val := body[:eq], body[eq+1:]
	if attr == "" {
		return Pred{}, errors.New("empty attribute name")
	}
	if len(val) < 2 || (val[0] != '\'' && val[0] != '"') || val[len(val)-1] != val[0] {
		return Pred{}, fmt.Errorf("attribute value must be quoted in [@%s=...]", attr)
	}
	return Pred{Attr: attr, Value: val[1 : len(val)-1], HasValue: true}, nil
}

// String renders the parsed path canonically.
func (p *Path) String() string {
	var b strings.Builder
	for i, st := range p.Steps {
		switch {
		case i == 0 && p.Rooted:
			b.WriteString("/")
		case i == 0:
			b.WriteString("//")
		default:
			b.WriteString(st.Axis.String())
		}
		b.WriteString(st.Tag)
		for _, pred := range st.Preds {
			if pred.HasValue {
				fmt.Fprintf(&b, "[@%s='%s']", pred.Attr, pred.Value)
			} else {
				fmt.Fprintf(&b, "[@%s]", pred.Attr)
			}
		}
	}
	return b.String()
}

// matches reports whether the element node passes the step's tag test and
// all of its predicates.
func matches(n *xmldom.Node, tag string) bool {
	return n.Kind() == xmldom.Element && (tag == "*" || n.Tag() == tag)
}

// matchesStep applies the full step test (tag + predicates).
func matchesStep(n *xmldom.Node, st Step) bool {
	if !matches(n, st.Tag) {
		return false
	}
	return passesPreds(n, st.Preds)
}

// passesPreds evaluates the conjunction of attribute predicates.
func passesPreds(n *xmldom.Node, preds []Pred) bool {
	for _, pred := range preds {
		v, ok := n.Attr(pred.Attr)
		if !ok {
			return false
		}
		if pred.HasValue && v != pred.Value {
			return false
		}
	}
	return true
}

// Nav evaluates the path by plain navigation and returns matching elements
// in document order.
func Nav(d *document.Doc, p *Path) []*xmldom.Node {
	if len(p.Steps) == 0 {
		return nil
	}
	// Current context set, kept in document order and duplicate-free by
	// construction of each expansion pass (a set for dedup).
	ctx := map[*xmldom.Node]bool{}
	first := p.Steps[0]
	root := d.X.Root
	if p.Rooted {
		if matchesStep(root, first) {
			ctx[root] = true
		}
		if first.Axis == Descendant {
			root.Walk(func(n *xmldom.Node) bool {
				if n != root && matchesStep(n, first) {
					ctx[n] = true
				}
				return true
			})
		}
	} else {
		root.Walk(func(n *xmldom.Node) bool {
			if matchesStep(n, first) {
				ctx[n] = true
			}
			return true
		})
	}
	for _, st := range p.Steps[1:] {
		next := map[*xmldom.Node]bool{}
		for n := range ctx {
			if st.Axis == Child {
				for _, c := range n.Children() {
					if matchesStep(c, st) {
						next[c] = true
					}
				}
			} else {
				n.Walk(func(v *xmldom.Node) bool {
					if v != n && matchesStep(v, st) {
						next[v] = true
					}
					return true
				})
			}
		}
		ctx = next
	}
	return sortDocOrder(d, ctx)
}

// sortDocOrder flattens a node set into document order using labels.
func sortDocOrder(d *document.Doc, set map[*xmldom.Node]bool) []*xmldom.Node {
	out := make([]*xmldom.Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	// Labels give document order directly.
	lab := func(n *xmldom.Node) uint64 {
		l, _ := d.Label(n)
		return l.Begin
	}
	sort.Slice(out, func(i, j int) bool { return lab(out[i]) < lab(out[j]) })
	return out
}
