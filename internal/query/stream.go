package query

import "github.com/ltree-db/ltree/internal/document"

// This file is the lazy evaluation pipeline: every step of a path is a
// cursor whose *output* is again a begin-sorted cursor, so a whole path
// composes into one pull-driven operator tree. Nothing is materialized
// between steps — the only per-step state is the structural join's stack
// of open ancestor intervals, which tree nesting bounds by the document
// depth. A k-step path over a snapshot therefore evaluates in
// O(k · depth) intermediate memory no matter how large the step results
// are, and the first match surfaces after touching only the postings
// before it.
//
// JoinMaterialized (join.go) is the PR-3 evaluator kept as the
// differential oracle; the two are verified equivalent on random
// documents and random paths (fuzz_test.go).

// JoinCursor evaluates the path lazily against a tag index and returns a
// begin-sorted, duplicate-free cursor of the matching elements. The
// cursor borrows the index version it was built from: with an immutable
// snapshot (index.Index, or a Txn's pinned version) it stays valid for
// as long as the caller keeps pulling.
//
// Rooted paths anchor at the root element, which is recovered from the
// index itself (the minimal begin of the "*" stream) rather than the
// live document, so a pinned snapshot never consults mutable label
// state.
//
// Evaluation runs with every optimization on: the zig-zag join (both
// sides fence-skip) and chunk-level predicate pushdown. JoinCursorWith
// exposes the knobs for baselines and differential tests.
func JoinCursor(idx Index, p *Path) document.Cursor {
	return JoinCursorWith(idx, p, EvalOptions{})
}

// EvalOptions tunes the lazy pipeline. The zero value is production
// behavior; the Disable knobs reconstruct earlier evaluator generations
// for baselines, benchmarks and differential fuzzing.
type EvalOptions struct {
	// DisablePushdown keeps predicate evaluation entry-by-entry: no
	// chunk-level attribute-summary rejection below the fence directory.
	DisablePushdown bool
	// DisableZigzag keeps the context side of every structural join
	// pulled linearly (the PR-4 behavior): only the candidate side
	// fence-skips.
	DisableZigzag bool
	// DisableMemo turns off per-step node→verdict predicate memoization.
	DisableMemo bool
	// Memo, when set, shares predicate verdicts across every query
	// evaluated with it (one per Txn, mirroring the Txn label memo). Not
	// safe for concurrent use.
	Memo *PredMemo
}

// JoinCursorWith is JoinCursor with explicit evaluation options.
func JoinCursorWith(idx Index, p *Path, o EvalOptions) document.Cursor {
	if len(p.Steps) == 0 {
		return emptyCursor{}
	}
	memos := predMemos(p, o)
	step := func(st Step) document.Cursor { return stepCursorOpt(idx, st, o, memos) }
	zig := !o.DisableZigzag
	first := p.Steps[0]
	var ctx document.Cursor
	if p.Rooted {
		root, ok := rootEntry(idx)
		if !ok {
			return emptyCursor{}
		}
		switch first.Axis {
		case Child:
			// A rooted child first step matches only the root itself.
			if !matchesStep(root.Node, first) {
				return emptyCursor{}
			}
			ctx = document.NewSliceCursor([]document.Entry{root})
		case Descendant:
			anchor := document.NewSliceCursor([]document.Entry{root})
			ctx = newJoinCursor(step(first), anchor, false, zig)
			if matchesStep(root.Node, first) {
				// The root precedes every descendant in begin order, so
				// prepending keeps the stream sorted (and duplicate-free:
				// the join emits strictly contained candidates only).
				ctx = &prependCursor{head: root, rest: ctx}
			}
		}
	} else {
		ctx = step(first)
	}
	for _, st := range p.Steps[1:] {
		ctx = newJoinCursor(step(st), ctx, st.Axis == Child, zig)
	}
	return ctx
}

// rootEntry recovers the document root's posting from the index: the
// first entry of the "*" stream (the root owns the minimal begin label).
func rootEntry(idx Index) (document.Entry, bool) {
	return idx.Cursor("*").Next()
}

// emptyCursor is the always-exhausted stream.
type emptyCursor struct{}

func (emptyCursor) Next() (document.Entry, bool)       { return document.Entry{}, false }
func (emptyCursor) Seek(uint64) (document.Entry, bool) { return document.Entry{}, false }

// prependCursor yields one entry ahead of an already-sorted rest stream.
type prependCursor struct {
	head document.Entry
	rest document.Cursor
	used bool
}

func (c *prependCursor) Next() (document.Entry, bool) {
	if !c.used {
		c.used = true
		return c.head, true
	}
	return c.rest.Next()
}

func (c *prependCursor) Seek(begin uint64) (document.Entry, bool) {
	if !c.used {
		c.used = true
		if c.head.Label.Begin >= begin {
			return c.head, true
		}
	}
	return c.rest.Seek(begin)
}

// SeekOpen implements document.OpenSeeker, so a rooted descendant anchor
// does not hide the inner join's skip machinery from an enclosing join.
func (c *prependCursor) SeekOpen(begin uint64) (document.Entry, bool) {
	if !c.used {
		c.used = true
		if c.head.Label.Begin >= begin || c.head.Label.End >= begin {
			return c.head, true
		}
	}
	return seekOpenOn(c.rest, begin)
}

// seekOpenOn advances a cursor to the first entry whose interval may
// still be open at begin — the cursor's native SeekOpen when it has one
// (chunk-level maxEnd skips), a filtering scan otherwise (same work the
// join's discard loop would have done).
func seekOpenOn(cur document.Cursor, begin uint64) (document.Entry, bool) {
	if os, ok := cur.(document.OpenSeeker); ok {
		return os.SeekOpen(begin)
	}
	for {
		e, ok := cur.Next()
		if !ok || e.Label.Begin >= begin || e.Label.End >= begin {
			return e, ok
		}
	}
}

// peekCursor adds one-entry lookahead to a cursor; the streaming join
// needs to inspect the next context interval without consuming it (it
// decides whether to open it only once a candidate reaches it).
type peekCursor struct {
	cur  document.Cursor
	os   document.OpenSeeker // cur's native SeekOpen, nil when absent
	head document.Entry
	has  bool
}

func newPeekCursor(cur document.Cursor) *peekCursor {
	c := &peekCursor{cur: cur}
	c.os, _ = cur.(document.OpenSeeker)
	return c
}

func (c *peekCursor) peek() (document.Entry, bool) {
	if !c.has {
		c.head, c.has = c.cur.Next()
		if !c.has {
			return document.Entry{}, false
		}
	}
	return c.head, true
}

// peekOpen is the zig-zag join's seek: like peek, but entries whose
// intervals provably closed before begin (End < begin, hence also
// Begin < begin) are discarded first — the buffered head included — so a
// far candidate jump fast-forwards the context side instead of pulling
// it linearly. Clamped to the forward-only contract: the position never
// retreats, and an already-buffered head that may still be open is
// returned as-is. Straddling ancestors (Begin < begin < End) are always
// retained.
func (c *peekCursor) peekOpen(begin uint64) (document.Entry, bool) {
	if c.has {
		if c.head.Label.Begin >= begin || c.head.Label.End >= begin {
			return c.head, true
		}
		c.has = false // buffered head provably closed before begin
	}
	if c.os != nil {
		c.head, c.has = c.os.SeekOpen(begin)
	} else {
		c.head, c.has = seekOpenOn(c.cur, begin)
	}
	if !c.has {
		return document.Entry{}, false
	}
	return c.head, true
}

func (c *peekCursor) next() (document.Entry, bool) {
	if c.has {
		c.has = false
		return c.head, true
	}
	return c.cur.Next()
}

// joinCursor is containedIn as a cursor-composing operator: it streams
// the candidates that have an ancestor (parent, when childOnly) in the
// context stream. Both inputs arrive begin-sorted; the output is too.
//
// The merge is the same stack join as the materialized evaluator —
// context intervals are pushed while open and popped once passed — but
// the context side is pulled lazily, one entry ahead of the current
// candidate, so chaining k of these keeps only k stacks of open
// ancestors alive: O(depth) each by tree nesting, independent of how
// many entries either side produces.
//
// Skips run in both directions (the zig-zag join): whenever the stack
// runs empty the candidate side Seeks past everything before the next
// context interval, and whenever a candidate lands far ahead the context
// side peekOpens past every interval that closed before it — on the
// chunked index both turn into fence-directory skips (begin fences for
// the candidate jump, maxEnd fences for the context jump, since an
// ancestor interval can straddle the target and must never be skipped).
type joinCursor struct {
	cand      document.Cursor
	ctx       *peekCursor
	childOnly bool
	zigzag    bool
	stack     []document.Entry
	started   bool
}

func newJoinCursor(cand, ctx document.Cursor, childOnly, zigzag bool) *joinCursor {
	return &joinCursor{cand: cand, ctx: newPeekCursor(ctx), childOnly: childOnly, zigzag: zigzag}
}

func (j *joinCursor) Next() (document.Entry, bool) {
	var cand document.Entry
	var ok bool
	if !j.started {
		j.started = true
		// Containment is strict, so nothing at or before the first
		// context begin can qualify.
		first, have := j.ctx.peek()
		if !have {
			return document.Entry{}, false
		}
		cand, ok = j.cand.Seek(first.Label.Begin + 1)
	} else {
		cand, ok = j.cand.Next()
	}
	return j.advance(cand, ok)
}

func (j *joinCursor) Seek(begin uint64) (document.Entry, bool) {
	j.started = true
	cand, ok := j.cand.Seek(begin)
	return j.advance(cand, ok)
}

// SeekOpen implements document.OpenSeeker, cascading the zig-zag skip
// through nested joins on deep paths: when an enclosing join declares
// everything closed before begin irrelevant, this join forwards the
// declaration to its own candidate side — matches that closed before
// begin are never discovered, and on a chunked candidate stream whole
// chunks are discarded by their maxEnd fences. The join's merge state
// stays sound: skipped candidates only mean later context pulls, and
// every remaining candidate still sees its full open-ancestor stack.
func (j *joinCursor) SeekOpen(begin uint64) (document.Entry, bool) {
	j.started = true
	cand, ok := seekOpenOn(j.cand, begin)
	for ok {
		e, have := j.advance(cand, ok)
		if !have {
			return document.Entry{}, false
		}
		if e.Label.Begin >= begin || e.Label.End >= begin {
			return e, true
		}
		// advance surfaced a match that closed before begin (it pulled
		// candidates itself, plain Next): resume skipping.
		cand, ok = seekOpenOn(j.cand, begin)
	}
	return document.Entry{}, false
}

// advance runs the stack merge from the given candidate until a match
// surfaces or a side exhausts.
func (j *joinCursor) advance(cand document.Entry, ok bool) (document.Entry, bool) {
	for ok {
		// Pop closed ancestors.
		for n := len(j.stack); n > 0 && j.stack[n-1].Label.End < cand.Label.Begin; n-- {
			j.stack = j.stack[:n-1]
		}
		// Pull context intervals opening before this candidate. With
		// zig-zag on, intervals that closed before the candidate are
		// skipped wholesale (they can never be ancestors of it or of any
		// later candidate); only straddlers and not-yet-open intervals
		// are surfaced.
		for {
			var c document.Entry
			var have bool
			if j.zigzag {
				c, have = j.ctx.peekOpen(cand.Label.Begin)
			} else {
				c, have = j.ctx.peek()
			}
			if !have || c.Label.Begin >= cand.Label.Begin {
				break
			}
			j.ctx.next()
			if c.Label.End > cand.Label.Begin { // still open
				j.stack = append(j.stack, c)
			}
		}
		if len(j.stack) == 0 {
			c, have := j.ctx.peek()
			if !have {
				return document.Entry{}, false // no context intervals left to open
			}
			// Skip every candidate before the next context interval.
			cand, ok = j.cand.Seek(c.Label.Begin + 1)
			continue
		}
		top := j.stack[len(j.stack)-1]
		if top.Label.Contains(cand.Label) {
			if !j.childOnly {
				return cand, true
			}
			if top.Level == cand.Level-1 {
				// The innermost ctx ancestor is the parent iff it sits one
				// level above; deeper ctx ancestors cannot be (nesting).
				return cand, true
			}
		}
		cand, ok = j.cand.Next()
	}
	return document.Entry{}, false
}

// DescendantsCursor streams all elements strictly inside the anchor
// entry in document order: one Seek plus a bounded scan of the "*"
// stream — the subtree-as-index-range primitive, now usable against a
// pinned snapshot (the anchor's label comes from the same index version,
// not the live document).
func DescendantsCursor(idx Index, anchor document.Entry) document.Cursor {
	return &rangeCursor{cur: idx.Cursor("*"), anchor: anchor.Label}
}

// rangeCursor bounds a begin-sorted stream to entries strictly contained
// in an interval.
type rangeCursor struct {
	cur     document.Cursor
	anchor  document.Label
	started bool
}

func (c *rangeCursor) Next() (document.Entry, bool) {
	var e document.Entry
	var ok bool
	if !c.started {
		c.started = true
		e, ok = c.cur.Seek(c.anchor.Begin + 1)
	} else {
		e, ok = c.cur.Next()
	}
	return c.bound(e, ok)
}

func (c *rangeCursor) Seek(begin uint64) (document.Entry, bool) {
	if begin <= c.anchor.Begin {
		begin = c.anchor.Begin + 1 // nothing before the anchor's interior qualifies
	}
	c.started = true
	e, ok := c.cur.Seek(begin)
	return c.bound(e, ok)
}

// bound filters the underlying stream down to strict containment: skip
// entries reaching past the anchor's end (tombstone-free trees nest, so
// the first entry with Begin >= anchor.End also ends the scan).
func (c *rangeCursor) bound(e document.Entry, ok bool) (document.Entry, bool) {
	for ok && e.Label.Begin < c.anchor.End {
		if e.Label.End < c.anchor.End {
			return e, true
		}
		e, ok = c.cur.Next()
	}
	return document.Entry{}, false
}
