package query

import "github.com/ltree-db/ltree/internal/document"

// This file is the lazy evaluation pipeline: every step of a path is a
// cursor whose *output* is again a begin-sorted cursor, so a whole path
// composes into one pull-driven operator tree. Nothing is materialized
// between steps — the only per-step state is the structural join's stack
// of open ancestor intervals, which tree nesting bounds by the document
// depth. A k-step path over a snapshot therefore evaluates in
// O(k · depth) intermediate memory no matter how large the step results
// are, and the first match surfaces after touching only the postings
// before it.
//
// JoinMaterialized (join.go) is the PR-3 evaluator kept as the
// differential oracle; the two are verified equivalent on random
// documents and random paths (fuzz_test.go).

// JoinCursor evaluates the path lazily against a tag index and returns a
// begin-sorted, duplicate-free cursor of the matching elements. The
// cursor borrows the index version it was built from: with an immutable
// snapshot (index.Index, or a Txn's pinned version) it stays valid for
// as long as the caller keeps pulling.
//
// Rooted paths anchor at the root element, which is recovered from the
// index itself (the minimal begin of the "*" stream) rather than the
// live document, so a pinned snapshot never consults mutable label
// state.
func JoinCursor(idx Index, p *Path) document.Cursor {
	if len(p.Steps) == 0 {
		return emptyCursor{}
	}
	first := p.Steps[0]
	var ctx document.Cursor
	if p.Rooted {
		root, ok := rootEntry(idx)
		if !ok {
			return emptyCursor{}
		}
		switch first.Axis {
		case Child:
			// A rooted child first step matches only the root itself.
			if !matchesStep(root.Node, first) {
				return emptyCursor{}
			}
			ctx = document.NewSliceCursor([]document.Entry{root})
		case Descendant:
			anchor := document.NewSliceCursor([]document.Entry{root})
			ctx = newJoinCursor(stepCursor(idx, first), anchor, false)
			if matchesStep(root.Node, first) {
				// The root precedes every descendant in begin order, so
				// prepending keeps the stream sorted (and duplicate-free:
				// the join emits strictly contained candidates only).
				ctx = &prependCursor{head: root, rest: ctx}
			}
		}
	} else {
		ctx = stepCursor(idx, first)
	}
	for _, st := range p.Steps[1:] {
		ctx = newJoinCursor(stepCursor(idx, st), ctx, st.Axis == Child)
	}
	return ctx
}

// rootEntry recovers the document root's posting from the index: the
// first entry of the "*" stream (the root owns the minimal begin label).
func rootEntry(idx Index) (document.Entry, bool) {
	return idx.Cursor("*").Next()
}

// emptyCursor is the always-exhausted stream.
type emptyCursor struct{}

func (emptyCursor) Next() (document.Entry, bool)       { return document.Entry{}, false }
func (emptyCursor) Seek(uint64) (document.Entry, bool) { return document.Entry{}, false }

// prependCursor yields one entry ahead of an already-sorted rest stream.
type prependCursor struct {
	head document.Entry
	rest document.Cursor
	used bool
}

func (c *prependCursor) Next() (document.Entry, bool) {
	if !c.used {
		c.used = true
		return c.head, true
	}
	return c.rest.Next()
}

func (c *prependCursor) Seek(begin uint64) (document.Entry, bool) {
	if !c.used {
		c.used = true
		if c.head.Label.Begin >= begin {
			return c.head, true
		}
	}
	return c.rest.Seek(begin)
}

// peekCursor adds one-entry lookahead to a cursor; the streaming join
// needs to inspect the next context interval without consuming it (it
// decides whether to open it only once a candidate reaches it).
type peekCursor struct {
	cur  document.Cursor
	head document.Entry
	has  bool
}

func (c *peekCursor) peek() (document.Entry, bool) {
	if !c.has {
		c.head, c.has = c.cur.Next()
		if !c.has {
			return document.Entry{}, false
		}
	}
	return c.head, true
}

func (c *peekCursor) next() (document.Entry, bool) {
	if c.has {
		c.has = false
		return c.head, true
	}
	return c.cur.Next()
}

// joinCursor is containedIn as a cursor-composing operator: it streams
// the candidates that have an ancestor (parent, when childOnly) in the
// context stream. Both inputs arrive begin-sorted; the output is too.
//
// The merge is the same stack join as the materialized evaluator —
// context intervals are pushed while open and popped once passed — but
// the context side is pulled lazily, one entry ahead of the current
// candidate, so chaining k of these keeps only k stacks of open
// ancestors alive: O(depth) each by tree nesting, independent of how
// many entries either side produces. Whenever the stack runs empty the
// candidate side Seeks past everything before the next context interval,
// which the chunked index turns into fence-directory skips.
type joinCursor struct {
	cand      document.Cursor
	ctx       *peekCursor
	childOnly bool
	stack     []document.Entry
	started   bool
}

func newJoinCursor(cand, ctx document.Cursor, childOnly bool) *joinCursor {
	return &joinCursor{cand: cand, ctx: &peekCursor{cur: ctx}, childOnly: childOnly}
}

func (j *joinCursor) Next() (document.Entry, bool) {
	var cand document.Entry
	var ok bool
	if !j.started {
		j.started = true
		// Containment is strict, so nothing at or before the first
		// context begin can qualify.
		first, have := j.ctx.peek()
		if !have {
			return document.Entry{}, false
		}
		cand, ok = j.cand.Seek(first.Label.Begin + 1)
	} else {
		cand, ok = j.cand.Next()
	}
	return j.advance(cand, ok)
}

func (j *joinCursor) Seek(begin uint64) (document.Entry, bool) {
	j.started = true
	cand, ok := j.cand.Seek(begin)
	return j.advance(cand, ok)
}

// advance runs the stack merge from the given candidate until a match
// surfaces or a side exhausts.
func (j *joinCursor) advance(cand document.Entry, ok bool) (document.Entry, bool) {
	for ok {
		// Pop closed ancestors.
		for n := len(j.stack); n > 0 && j.stack[n-1].Label.End < cand.Label.Begin; n-- {
			j.stack = j.stack[:n-1]
		}
		// Pull context intervals opening before this candidate.
		for {
			c, have := j.ctx.peek()
			if !have || c.Label.Begin >= cand.Label.Begin {
				break
			}
			j.ctx.next()
			if c.Label.End > cand.Label.Begin { // still open
				j.stack = append(j.stack, c)
			}
		}
		if len(j.stack) == 0 {
			c, have := j.ctx.peek()
			if !have {
				return document.Entry{}, false // no context intervals left to open
			}
			// Skip every candidate before the next context interval.
			cand, ok = j.cand.Seek(c.Label.Begin + 1)
			continue
		}
		top := j.stack[len(j.stack)-1]
		if top.Label.Contains(cand.Label) {
			if !j.childOnly {
				return cand, true
			}
			if top.Level == cand.Level-1 {
				// The innermost ctx ancestor is the parent iff it sits one
				// level above; deeper ctx ancestors cannot be (nesting).
				return cand, true
			}
		}
		cand, ok = j.cand.Next()
	}
	return document.Entry{}, false
}

// DescendantsCursor streams all elements strictly inside the anchor
// entry in document order: one Seek plus a bounded scan of the "*"
// stream — the subtree-as-index-range primitive, now usable against a
// pinned snapshot (the anchor's label comes from the same index version,
// not the live document).
func DescendantsCursor(idx Index, anchor document.Entry) document.Cursor {
	return &rangeCursor{cur: idx.Cursor("*"), anchor: anchor.Label}
}

// rangeCursor bounds a begin-sorted stream to entries strictly contained
// in an interval.
type rangeCursor struct {
	cur     document.Cursor
	anchor  document.Label
	started bool
}

func (c *rangeCursor) Next() (document.Entry, bool) {
	var e document.Entry
	var ok bool
	if !c.started {
		c.started = true
		e, ok = c.cur.Seek(c.anchor.Begin + 1)
	} else {
		e, ok = c.cur.Next()
	}
	return c.bound(e, ok)
}

func (c *rangeCursor) Seek(begin uint64) (document.Entry, bool) {
	if begin <= c.anchor.Begin {
		begin = c.anchor.Begin + 1 // nothing before the anchor's interior qualifies
	}
	c.started = true
	e, ok := c.cur.Seek(begin)
	return c.bound(e, ok)
}

// bound filters the underlying stream down to strict containment: skip
// entries reaching past the anchor's end (tombstone-free trees nest, so
// the first entry with Begin >= anchor.End also ends the scan).
func (c *rangeCursor) bound(e document.Entry, ok bool) (document.Entry, bool) {
	for ok && e.Label.Begin < c.anchor.End {
		if e.Label.End < c.anchor.End {
			return e, true
		}
		e, ok = c.cur.Next()
	}
	return document.Entry{}, false
}
