package query

import "testing"

// FuzzParse feeds arbitrary expressions to the path parser: it must never
// panic, and anything it accepts must round-trip through String/Parse to
// the same canonical form.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"/a/b//c", "book//title", "//item[@id='3']/name", "//*", "a[", "[]",
		"//a[@b][@c='d']", "/", "///", "a//", "@", "a[@x=\"y\"]", "日本//語",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := Parse(expr)
		if err != nil {
			return
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, expr, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form not stable: %q -> %q", canon, p2.String())
		}
		if len(p.Steps) == 0 {
			t.Fatalf("accepted %q with zero steps", expr)
		}
	})
}
