package query

import (
	"math/rand"
	"testing"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/workload"
)

// FuzzParse feeds arbitrary expressions to the path parser: it must never
// panic, and anything it accepts must round-trip through String/Parse to
// the same canonical form.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"/a/b//c", "book//title", "//item[@id='3']/name", "//*", "a[", "[]",
		"//a[@b][@c='d']", "/", "///", "a//", "@", "a[@x=\"y\"]", "日本//語",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := Parse(expr)
		if err != nil {
			return
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, expr, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form not stable: %q -> %q", canon, p2.String())
		}
		if len(p.Steps) == 0 {
			t.Fatalf("accepted %q with zero steps", expr)
		}
	})
}

// FuzzJoinPipeline is the lazy-pipeline differential fuzzer: a random
// document (shape and seed fuzzer-chosen) and a random path — steps may
// carry attribute predicates, so the zig-zag/pushdown/memo machinery is
// on the fuzzed surface — must yield identical streams from the
// cursor-composed join and the materialized PR-3 oracle, for every
// evaluator variant (full, zig-zag off, pushdown off, legacy), under a
// full drain and under a random Next/Seek interleaving, on both the flat
// TagIndex and a finely chunked index. The checked-in corpus
// (testdata/fuzz/FuzzJoinPipeline) pins the seeds that cover
// rooted/relative anchors, child/descendant mixes, fence-skip Seeks and
// predicate-bearing steps over attribute-carrying documents.
func FuzzJoinPipeline(f *testing.F) {
	f.Add(int64(1), int64(1), uint8(0))
	f.Add(int64(42), int64(7), uint8(1))
	f.Add(int64(11), int64(23), uint8(2))
	f.Add(int64(99), int64(3), uint8(3))
	f.Fuzz(func(t *testing.T, docSeed, pathSeed int64, shape uint8) {
		cfgs := []workload.DocConfig{
			{Elements: 150, MaxDepth: 10, MaxFanout: 4, TextProb: 0.2, AttrProb: 0.5}, // deep chains
			{Elements: 250, MaxDepth: 3, MaxFanout: 40, TextProb: 0.1, AttrProb: 0.3}, // flat and wide
			{Elements: 200, MaxDepth: 6, MaxFanout: 8, TextProb: 0.4, AttrProb: 0.7},  // balanced, attr-heavy
			{Elements: 30, MaxDepth: 12, MaxFanout: 2},                                // tiny, near-list, no attrs
		}
		var d *document.Doc
		var err error
		if int(shape)%5 == 4 {
			d, err = document.Load(workload.XMarkLite(1, docSeed), p42)
		} else {
			d, err = document.Load(workload.GenerateDoc(cfgs[int(shape)%len(cfgs)], docSeed), p42)
		}
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(pathSeed))
		tags := append([]string{"*", "root", "missing", "item", "name"}, workload.DefaultTags...)
		expr := randomPathExpr(rng, tags)
		p, err := Parse(expr)
		if err != nil {
			return
		}
		flat := d.BuildTagIndex()
		chunked := index.FromSized(d.BuildTagIndex(), 1+int(shape%7))
		for _, ix := range []struct {
			tag string
			idx Index
		}{{"flat", flat}, {"chunked", chunked}} {
			want := oracleEntries(t, d, ix.idx, p)
			for _, v := range evalVariants {
				tag := ix.tag + "/" + v.name
				drainMatches(t, tag, expr, JoinCursorWith(ix.idx, p, v.opts), want)
				torturePartial(t, tag, expr, JoinCursorWith(ix.idx, p, v.opts), want, rng)
			}
		}
	})
}
