package stats

import (
	"strings"
	"testing"
)

func TestCountersDerived(t *testing.T) {
	c := Counters{
		Inserts:           10,
		BulkInserts:       2,
		BulkLeaves:        20,
		Deletes:           3,
		AncestorUpdates:   40,
		RelabeledLeaves:   50,
		RelabeledInternal: 6,
		Splits:            4,
		RootSplits:        1,
	}
	if c.Relabelings() != 56 {
		t.Fatalf("relabelings = %d", c.Relabelings())
	}
	if c.NodesTouched() != 96 {
		t.Fatalf("nodes touched = %d", c.NodesTouched())
	}
	if c.Ops() != 15 {
		t.Fatalf("ops = %d", c.Ops())
	}
	if got := c.AmortizedCost(); got != 96.0/30.0 {
		t.Fatalf("amortized = %f", got)
	}
	if (Counters{}).AmortizedCost() != 0 {
		t.Fatal("empty amortized should be 0")
	}
	if !strings.Contains(c.String(), "inserts=10") {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestCountersAddReset(t *testing.T) {
	a := Counters{Inserts: 1, Splits: 2, RelabeledLeaves: 3}
	b := Counters{Inserts: 10, Splits: 20, RelabeledLeaves: 30, Rebuilds: 1}
	a.Add(b)
	if a.Inserts != 11 || a.Splits != 22 || a.RelabeledLeaves != 33 || a.Rebuilds != 1 {
		t.Fatalf("add wrong: %+v", a)
	}
	a.Reset()
	if a != (Counters{}) {
		t.Fatalf("reset wrong: %+v", a)
	}
}

func TestTableRendering(t *testing.T) {
	var sb strings.Builder
	tbl := NewTable(&sb, "name", "value", "ratio")
	tbl.Row("alpha", 42, 0.5)
	tbl.Row("beta", uint64(7), 123.456)
	tbl.Row("gamma", 1e-6, float32(2))
	tbl.Flush()
	out := sb.String()
	for _, want := range []string{"name", "-----", "alpha", "42", "0.500", "beta", "123.46", "1.00e-06"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d", len(lines))
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{-3, "-3"},
		{0.25, "0.250"},
		{99.9, "99.900"},
		{1234.5, "1234.50"},
		{0.0001, "1.00e-04"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
