// Package stats provides the cost accounting used throughout the L-Tree
// reproduction and small helpers for rendering experiment tables.
//
// The paper (§3.1) measures maintenance cost as "the number of nodes
// accessed for searching or relabeling". Counters records exactly that
// decomposition so every labeling scheme — the L-Tree, the virtual L-Tree
// and the baselines — reports comparable numbers.
package stats

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Counters accumulates the unit costs of label maintenance. All fields are
// totals since construction or the last Reset.
type Counters struct {
	// Inserts is the number of single-leaf insertions performed.
	Inserts uint64
	// BulkInserts is the number of bulk (run) insertions performed.
	BulkInserts uint64
	// BulkLeaves is the total number of leaves added by bulk insertions.
	BulkLeaves uint64
	// Deletes counts tombstone deletions.
	Deletes uint64
	// AncestorUpdates counts leaf-count maintenance touches: one per
	// ancestor per (bulk) insertion. This is the "cost h" term of §3.1.
	AncestorUpdates uint64
	// RelabeledLeaves counts leaf renumberings, i.e. XML label rewrites.
	// A freshly inserted leaf's first numbering is also counted, matching
	// the paper's "relabel x and its right siblings".
	RelabeledLeaves uint64
	// RelabeledInternal counts internal-node renumberings during splits
	// and sibling shifts.
	RelabeledInternal uint64
	// Splits counts node splits (including root splits).
	Splits uint64
	// RootSplits counts splits of the root (each grows the height by one).
	RootSplits uint64
	// Rebuilds counts whole-tree rebuilds (bulk-insert escalation or
	// Compact; never triggered by single insertions).
	Rebuilds uint64
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// Relabelings returns the total number of renumbered nodes (internal +
// leaves), the paper's primary cost unit.
func (c Counters) Relabelings() uint64 {
	return c.RelabeledLeaves + c.RelabeledInternal
}

// NodesTouched returns the paper's full §3.1 cost: ancestor-count updates
// plus all renumbered nodes.
func (c Counters) NodesTouched() uint64 {
	return c.AncestorUpdates + c.Relabelings()
}

// Ops returns the number of update operations (single inserts + bulk
// inserts + deletes) used to amortize costs.
func (c Counters) Ops() uint64 {
	return c.Inserts + c.BulkInserts + c.Deletes
}

// AmortizedCost returns NodesTouched divided by the number of inserted
// leaves (single + bulk), the quantity bounded by cost(f,s,n) in §3.1 and
// §4.1. It returns 0 when nothing was inserted.
func (c Counters) AmortizedCost() float64 {
	leaves := c.Inserts + c.BulkLeaves
	if leaves == 0 {
		return 0
	}
	return float64(c.NodesTouched()) / float64(leaves)
}

// String renders the counters compactly for logs and examples.
func (c Counters) String() string {
	return fmt.Sprintf(
		"inserts=%d bulk=%d(+%d leaves) deletes=%d ancestor=%d relabelLeaf=%d relabelInt=%d splits=%d(root %d) rebuilds=%d amortized=%.2f",
		c.Inserts, c.BulkInserts, c.BulkLeaves, c.Deletes,
		c.AncestorUpdates, c.RelabeledLeaves, c.RelabeledInternal,
		c.Splits, c.RootSplits, c.Rebuilds, c.AmortizedCost())
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Inserts += other.Inserts
	c.BulkInserts += other.BulkInserts
	c.BulkLeaves += other.BulkLeaves
	c.Deletes += other.Deletes
	c.AncestorUpdates += other.AncestorUpdates
	c.RelabeledLeaves += other.RelabeledLeaves
	c.RelabeledInternal += other.RelabeledInternal
	c.Splits += other.Splits
	c.RootSplits += other.RootSplits
	c.Rebuilds += other.Rebuilds
}

// Table renders aligned experiment tables. It is a thin wrapper over
// text/tabwriter that keeps harness output uniform across experiments.
type Table struct {
	w      io.Writer
	tw     *tabwriter.Writer
	header []string
}

// NewTable creates a table writing to w with the given column headers.
func NewTable(w io.Writer, header ...string) *Table {
	t := &Table{
		w:      w,
		tw:     tabwriter.NewWriter(w, 2, 4, 2, ' ', 0),
		header: header,
	}
	fmt.Fprintln(t.tw, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(t.tw, strings.Join(sep, "\t"))
	return t
}

// Row appends one row; cells are formatted with %v except floats, which use
// a compact fixed notation.
func (t *Table) Row(cells ...interface{}) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			parts[i] = FormatFloat(v)
		case float32:
			parts[i] = FormatFloat(float64(v))
		default:
			parts[i] = fmt.Sprintf("%v", c)
		}
	}
	fmt.Fprintln(t.tw, strings.Join(parts, "\t"))
}

// Flush writes buffered rows to the underlying writer.
func (t *Table) Flush() { t.tw.Flush() }

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to compare, large with two decimals.
func FormatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 0.01 && v > -0.01):
		return fmt.Sprintf("%.2e", v)
	case v < 100 && v > -100:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
