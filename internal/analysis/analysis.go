// Package analysis implements the paper's §3 cost model and the three
// §3.2 tuning problems:
//
//  1. minimize the amortized update cost cost(f,s,n);
//  2. minimize it subject to a label-size budget bits(f,s,n) ≤ B (the
//     paper solves this with a Lagrange multiplier on the boundary; we
//     search the same boundary numerically and verify it against an
//     exhaustive feasible-grid scan);
//  3. minimize a combined query+update cost for a given workload mix,
//     where a label comparison costs one unit per machine word once
//     labels outgrow the hardware word (§3.2 "Minimize the Overall Cost").
//
// The formulas (DESIGN.md §2.2, reconstructed from the paper):
//
//	cost(f,s,n) = (1 + 2f/(s−1)) · log n / log(f/s) + f
//	bits(f,s,n) = log2(f−1) · log n / log(f/s)
//
// All functions treat f and s as continuous for calculus and then snap to
// the feasible integer lattice (s ≥ 2 and f = r·s for integer r ≥ 2).
package analysis

import (
	"errors"
	"math"
)

// UpdateCost returns the §3.1 amortized insertion cost bound in node
// accesses: (1 + 2f/(s−1))·log_{f/s}(n) + f.
func UpdateCost(f, s, n float64) float64 {
	if n < 2 {
		n = 2
	}
	return (1+2*f/(s-1))*math.Log(n)/math.Log(f/s) + f
}

// LabelBits returns the asymptotic label width log2(f−1)·log_{f/s}(n),
// using the tight radix f−1 (DESIGN.md §2.1).
func LabelBits(f, s, n float64) float64 {
	if n < 2 {
		n = 2
	}
	return math.Log2(f-1) * math.Log(n) / math.Log(f/s)
}

// PaperLabelBits returns the bound with the looser radix the paper's text
// prints (f+1); reported alongside for fidelity.
func PaperLabelBits(f, s, n float64) float64 {
	if n < 2 {
		n = 2
	}
	return math.Log2(f+1) * math.Log(n) / math.Log(f/s)
}

// LabelBitsExact returns the label width an actual tree of n leaves uses:
// H = ⌈log_{f/s} n⌉ levels at radix f−1.
func LabelBitsExact(f, s, n int) int {
	if n < 2 {
		n = 2
	}
	r := f / s
	h := 1
	p := r
	for p < n {
		h++
		p *= r
	}
	space := math.Pow(float64(f-1), float64(h))
	return int(math.Ceil(math.Log2(space)))
}

// BulkCost returns the §4.1 amortized per-leaf cost of inserting runs of
// k leaves into a tree of n: log n/(k·log r) + f/k + (2f/(s−1))·(1 +
// log(n/k)/log r).
func BulkCost(f, s, n, k float64) float64 {
	if k < 1 {
		k = 1
	}
	if n < 2 {
		n = 2
	}
	r := f / s
	logr := math.Log(r)
	cost := math.Log(n)/(k*logr) + f/k
	ratio := n / k
	if ratio < 1 {
		ratio = 1
	}
	cost += (2 * f / (s - 1)) * (1 + math.Log(ratio)/logr)
	return cost
}

// QueryCompareCost returns the §3.2 per-comparison query cost model: one
// unit while a label fits the machine word, one unit per word beyond.
func QueryCompareCost(bits, wordBits float64) float64 {
	if wordBits <= 0 {
		wordBits = 64
	}
	return math.Max(1, math.Ceil(bits/wordBits))
}

// MixedCost combines update and query cost for a workload with the given
// fraction of queries (model 3): each update pays UpdateCost, each query
// pays QueryCompareCost per label comparison.
func MixedCost(f, s, n, queryFrac, wordBits float64) float64 {
	u := UpdateCost(f, s, n)
	q := QueryCompareCost(LabelBits(f, s, n), wordBits)
	return (1-queryFrac)*u + queryFrac*q
}

// Choice is a parameter selection with its predicted characteristics.
type Choice struct {
	F, S int
	Cost float64 // predicted amortized update cost
	Bits float64 // predicted label width
}

// ErrInfeasible reports that no feasible parameters satisfy a constraint.
var ErrInfeasible = errors.New("analysis: no feasible (f, s) under the constraint")

// feasible enumerates the integer lattice s ≥ 2, r ≥ 2, f = r·s ≤ fmax.
func feasible(fmax int, visit func(f, s int)) {
	if fmax < 4 {
		fmax = 4
	}
	for s := 2; 2*s <= fmax; s++ {
		for r := 2; r*s <= fmax; r++ {
			visit(r*s, s)
		}
	}
}

// MinimizeCost solves §3.2 problem 1 on the integer lattice with f ≤ fmax.
func MinimizeCost(n float64, fmax int) Choice {
	best := Choice{Cost: math.Inf(1)}
	feasible(fmax, func(f, s int) {
		c := UpdateCost(float64(f), float64(s), n)
		if c < best.Cost {
			best = Choice{F: f, S: s, Cost: c, Bits: LabelBits(float64(f), float64(s), n)}
		}
	})
	return best
}

// MinimizeCostUnderBits solves §3.2 problem 2: the cheapest parameters
// whose predicted label width fits the budget. The result of the interior
// optimum is used when it already fits (the Kuhn-Tucker case split of the
// paper); otherwise the feasible boundary is scanned.
func MinimizeCostUnderBits(n float64, budgetBits float64, fmax int) (Choice, error) {
	interior := MinimizeCost(n, fmax)
	if interior.Bits <= budgetBits {
		return interior, nil
	}
	best := Choice{Cost: math.Inf(1)}
	feasible(fmax, func(f, s int) {
		b := LabelBits(float64(f), float64(s), n)
		if b > budgetBits {
			return
		}
		c := UpdateCost(float64(f), float64(s), n)
		if c < best.Cost {
			best = Choice{F: f, S: s, Cost: c, Bits: b}
		}
	})
	if math.IsInf(best.Cost, 1) {
		return Choice{}, ErrInfeasible
	}
	return best, nil
}

// MinimizeMixed solves §3.2 problem 3 for a query fraction in [0, 1].
func MinimizeMixed(n, queryFrac, wordBits float64, fmax int) Choice {
	best := Choice{Cost: math.Inf(1)}
	feasible(fmax, func(f, s int) {
		c := MixedCost(float64(f), float64(s), n, queryFrac, wordBits)
		if c < best.Cost {
			best = Choice{F: f, S: s, Cost: c, Bits: LabelBits(float64(f), float64(s), n)}
		}
	})
	return best
}

// ContinuousMin solves problem 1 on the continuous relaxation by nested
// golden-section search over s ∈ [2, smax] and r = f/s ∈ [2, rmax] — the
// numeric counterpart of the paper's ∂cost/∂f = ∂cost/∂s = 0 system. It
// returns real-valued (f*, s*) for comparison with the lattice optimum.
func ContinuousMin(n float64) (fStar, sStar, cost float64) {
	costRS := func(r, s float64) float64 { return UpdateCost(r*s, s, n) }
	bestR, bestS, bestC := 2.0, 2.0, math.Inf(1)
	// The surface is unimodal in each coordinate on the region of
	// interest; alternate golden-section sweeps until movement stalls.
	r, s := 3.0, 3.0
	for iter := 0; iter < 40; iter++ {
		r2 := goldenMin(func(x float64) float64 { return costRS(x, s) }, 2, 64)
		s2 := goldenMin(func(x float64) float64 { return costRS(r2, x) }, 2, 64)
		if math.Abs(r2-r) < 1e-9 && math.Abs(s2-s) < 1e-9 {
			r, s = r2, s2
			break
		}
		r, s = r2, s2
	}
	if c := costRS(r, s); c < bestC {
		bestR, bestS, bestC = r, s, c
	}
	return bestR * bestS, bestS, bestC
}

// goldenMin minimizes a unimodal function on [lo, hi].
func goldenMin(fn func(float64) float64, lo, hi float64) float64 {
	const phi = 1.618033988749895
	invPhi := 1 / phi
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	for i := 0; i < 80 && b-a > 1e-10; i++ {
		if fn(c) < fn(d) {
			b = d
		} else {
			a = c
		}
		c = b - (b-a)*invPhi
		d = a + (b-a)*invPhi
	}
	return (a + b) / 2
}
