package analysis

import (
	"errors"
	"math"
	"testing"
)

func TestUpdateCostShape(t *testing.T) {
	// Grows logarithmically with n.
	c1 := UpdateCost(8, 2, 1e3)
	c2 := UpdateCost(8, 2, 1e6)
	if !(c2 > c1 && c2 < 2.2*c1) {
		t.Fatalf("cost should grow ≈2x from 1e3 to 1e6: %.2f -> %.2f", c1, c2)
	}
	// Exploding f dominates through the +f term.
	if UpdateCost(4096, 2, 1e6) < UpdateCost(64, 2, 1e6) {
		t.Fatal("huge f should not be cheaper")
	}
	// s close to 1 explodes via 2f/(s−1)... s is ≥ 2 by the lattice, but
	// the continuous function must blow up toward s → 1.
	if UpdateCost(8, 1.01, 1e6) < UpdateCost(8, 2, 1e6) {
		t.Fatal("s→1 must explode")
	}
}

func TestLabelBits(t *testing.T) {
	// f=4, s=2, n=8: exact H=3, radix 3 → ceil(log2 27) = 5 bits.
	if got := LabelBitsExact(4, 2, 8); got != 5 {
		t.Fatalf("exact bits = %d, want 5", got)
	}
	// Asymptotic close to exact for large n.
	asym := LabelBits(4, 2, 1<<20)
	exact := float64(LabelBitsExact(4, 2, 1<<20))
	if math.Abs(asym-exact) > 3 {
		t.Fatalf("asymptotic %f vs exact %f drifted", asym, exact)
	}
	// Paper's variant is looser.
	if PaperLabelBits(4, 2, 1e6) <= LabelBits(4, 2, 1e6) {
		t.Fatal("paper bound should exceed the tight bound")
	}
}

func TestBulkCostDecreases(t *testing.T) {
	prev := math.Inf(1)
	for _, k := range []float64{1, 4, 16, 64, 256} {
		c := BulkCost(8, 2, 1e6, k)
		if c >= prev {
			t.Fatalf("bulk cost should fall with k: k=%v gives %.2f ≥ %.2f", k, c, prev)
		}
		prev = c
	}
	// But the decrease is logarithmic, not linear: doubling k far from
	// halves the cost at large k.
	c64 := BulkCost(8, 2, 1e6, 64)
	c128 := BulkCost(8, 2, 1e6, 128)
	if c128 < 0.5*c64 {
		t.Fatal("decrease should be roughly logarithmic")
	}
}

func TestMinimizeCost(t *testing.T) {
	for _, n := range []float64{1e3, 1e5, 1e7} {
		best := MinimizeCost(n, 128)
		if best.F < 4 || best.S < 2 || best.F%best.S != 0 || best.F/best.S < 2 {
			t.Fatalf("infeasible optimum %+v", best)
		}
		// No feasible point beats it.
		feasible(128, func(f, s int) {
			if c := UpdateCost(float64(f), float64(s), n); c < best.Cost-1e-9 {
				t.Fatalf("grid point (%d,%d)=%.3f beats reported optimum %.3f", f, s, c, best.Cost)
			}
		})
	}
}

func TestMinimizeCostUnderBits(t *testing.T) {
	n := 1e6
	// Loose budget returns the interior optimum.
	interior := MinimizeCost(n, 128)
	loose, err := MinimizeCostUnderBits(n, interior.Bits+10, 128)
	if err != nil || loose.F != interior.F || loose.S != interior.S {
		t.Fatalf("loose budget: %+v vs %+v (%v)", loose, interior, err)
	}
	// Tight budget forces a different choice that satisfies it.
	tight, err := MinimizeCostUnderBits(n, interior.Bits-5, 128)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Bits > interior.Bits-5 {
		t.Fatalf("budget violated: %+v", tight)
	}
	if tight.Cost < interior.Cost {
		t.Fatal("constrained optimum cannot beat the interior optimum")
	}
	// Impossible budget errors.
	if _, err := MinimizeCostUnderBits(n, 1, 128); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("1-bit budget = %v", err)
	}
}

func TestMinimizeMixed(t *testing.T) {
	n := 1e6
	// With word-size labels the query term is flat at 1, so the pure
	// update optimum wins at q=0 and stays optimal for small q.
	upd := MinimizeMixed(n, 0, 64, 128)
	pure := MinimizeCost(n, 128)
	if upd.F != pure.F || upd.S != pure.S {
		t.Fatalf("q=0 mixed %+v != pure %+v", upd, pure)
	}
	// With a tiny machine word, query-heavy workloads must pick smaller
	// labels even at higher update cost.
	queryHeavy := MinimizeMixed(n, 0.95, 8, 128)
	if queryHeavy.Bits > upd.Bits {
		t.Fatalf("query-heavy choice has wider labels: %+v vs %+v", queryHeavy, upd)
	}
	mixedCostAtPure := MixedCost(float64(pure.F), float64(pure.S), n, 0.95, 8)
	mixedCostAtChoice := MixedCost(float64(queryHeavy.F), float64(queryHeavy.S), n, 0.95, 8)
	if mixedCostAtChoice > mixedCostAtPure+1e-9 {
		t.Fatal("mixed optimizer returned a worse point than the pure optimum")
	}
}

func TestContinuousMinMatchesLattice(t *testing.T) {
	for _, n := range []float64{1e4, 1e6} {
		f, s, c := ContinuousMin(n)
		if s < 2 || f < 2*s {
			t.Fatalf("continuous optimum infeasible: f=%.2f s=%.2f", f, s)
		}
		lattice := MinimizeCost(n, 256)
		// The continuous optimum lower-bounds the lattice optimum and
		// should be close (the lattice rounds it).
		if c > lattice.Cost+1e-6 {
			t.Fatalf("continuous %.3f worse than lattice %.3f", c, lattice.Cost)
		}
		if lattice.Cost > 1.35*c {
			t.Fatalf("lattice %.3f too far above continuous %.3f", lattice.Cost, c)
		}
	}
}

func TestQueryCompareCost(t *testing.T) {
	if QueryCompareCost(32, 64) != 1 || QueryCompareCost(64, 64) != 1 {
		t.Fatal("word-size labels cost 1")
	}
	if QueryCompareCost(65, 64) != 2 || QueryCompareCost(129, 64) != 3 {
		t.Fatal("beyond-word labels cost per word")
	}
	if QueryCompareCost(100, 0) != 2 {
		t.Fatal("default word size should be 64")
	}
}
