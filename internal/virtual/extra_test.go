package virtual

import (
	"testing"

	"github.com/ltree-db/ltree/internal/core"
)

// driveHostile runs an append- or prepend-only stream on both trees —
// maximal root-split pressure — and compares everything.
func driveHostile(t *testing.T, p core.Params, n int, front bool) {
	t.Helper()
	mt, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if front {
			if _, err := mt.InsertFirst(); err != nil {
				t.Fatal(err)
			}
			if _, err := vt.InsertFirst(); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := mt.InsertLast(); err != nil {
				t.Fatal(err)
			}
			if _, err := vt.InsertLast(); err != nil {
				t.Fatal(err)
			}
		}
	}
	mNums, vNums := mt.Nums(), vt.Labels()
	if len(mNums) != len(vNums) {
		t.Fatalf("%d vs %d labels", len(mNums), len(vNums))
	}
	for i := range mNums {
		if mNums[i] != vNums[i] {
			t.Fatalf("label %d: %d vs %d", i, mNums[i], vNums[i])
		}
	}
	if mt.Height() != vt.Height() || mt.BitsPerLabel() != vt.BitsPerLabel() {
		t.Fatalf("height/bits diverged: %d/%d vs %d/%d",
			mt.Height(), mt.BitsPerLabel(), vt.Height(), vt.BitsPerLabel())
	}
	if mt.LabelSpace() != vt.LabelSpace() {
		t.Fatalf("label space %d vs %d", mt.LabelSpace(), vt.LabelSpace())
	}
	ms, vs := mt.Stats(), vt.Stats()
	if ms.RelabeledLeaves != vs.RelabeledLeaves || ms.RootSplits != vs.RootSplits {
		t.Fatalf("stats diverged: %v vs %v", ms, vs)
	}
	if err := vt.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialAppendOnly(t *testing.T) {
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 8, S: 4}} {
		driveHostile(t, p, 4000, false)
	}
}

func TestDifferentialPrependOnly(t *testing.T) {
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 6, S: 3}} {
		driveHostile(t, p, 4000, true)
	}
}

// TestVirtualWideRadix: the ablation radix flows through the virtual tree
// and stays equivalent to the materialized one.
func TestVirtualWideRadix(t *testing.T) {
	p := core.Params{F: 4, S: 2, WideRadix: true}
	mt, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Load(50); err != nil {
		t.Fatal(err)
	}
	if _, err := vt.Load(50); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		at := i * 7 % mt.Len()
		if _, err := mt.InsertAfter(mt.LeafAt(at)); err != nil {
			t.Fatal(err)
		}
		x, _ := vt.LabelAt(at)
		if _, err := vt.InsertAfter(x); err != nil {
			t.Fatal(err)
		}
	}
	m, v := mt.Nums(), vt.Labels()
	for i := range m {
		if m[i] != v[i] {
			t.Fatalf("wide-radix label %d: %d vs %d", i, m[i], v[i])
		}
	}
	if err := vt.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualRankSelect mirrors the order-statistic access.
func TestVirtualRankSelect(t *testing.T) {
	vt, err := New(core.Params{F: 8, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := vt.Load(300)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range labels {
		if got := vt.Rank(x); got != i {
			t.Fatalf("Rank(%d) = %d, want %d", x, got, i)
		}
		sel, ok := vt.LabelAt(i)
		if !ok || sel != x {
			t.Fatalf("LabelAt(%d) = %d/%v, want %d", i, sel, ok, x)
		}
	}
	if !vt.Has(labels[7]) || vt.Has(labels[len(labels)-1]+100) {
		t.Fatal("Has() wrong")
	}
	if _, ok := vt.LabelAt(-1); ok {
		t.Fatal("LabelAt(-1)")
	}
}
