package virtual

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ltree-db/ltree/internal/core"
)

func mustNew(t *testing.T, f, s int) *Tree {
	t.Helper()
	v, err := New(core.Params{F: f, S: s})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFigure2Virtual replays the paper's Figure 2 on the virtual tree: the
// label sequences must be identical to the materialized golden values.
func TestFigure2Virtual(t *testing.T) {
	v := mustNew(t, 4, 2)
	labels, err := v.Load(8)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 3, 4, 9, 10, 12, 13}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("bulk load: %v, want %v", labels, want)
		}
	}
	// Insert "D" before the leaf labeled 3 (no split): 3,4,5.
	d, err := v.InsertBefore(3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Fatalf("D = %d, want 3", d)
	}
	got := v.Labels()
	want = []uint64{0, 1, 3, 4, 5, 9, 10, 12, 13}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after D: %v, want %v", got, want)
		}
	}
	// Insert "/D" after 3: split; final 0,1,3,4,6,7,9,10,12,13.
	dEnd, err := v.InsertAfter(3)
	if err != nil {
		t.Fatal(err)
	}
	if dEnd != 4 {
		t.Fatalf("/D = %d, want 4", dEnd)
	}
	got = v.Labels()
	want = []uint64{0, 1, 3, 4, 6, 7, 9, 10, 12, 13}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after /D: %v, want %v", got, want)
		}
	}
	if st := v.Stats(); st.Splits != 1 || st.RootSplits != 0 {
		t.Fatalf("splits=%d root=%d", st.Splits, st.RootSplits)
	}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
}

// drive applies the identical operation stream to a materialized and a
// virtual tree and asserts bit-identical labels, equal heights and equal
// leaf-relabeling counters after every step batch.
func drive(t *testing.T, p core.Params, seed int64, ops int, withRemove bool) {
	t.Helper()
	mt, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	compare := func(step int) {
		t.Helper()
		mNums := mt.Nums()
		vNums := vt.Labels()
		if len(mNums) != len(vNums) {
			t.Fatalf("%v seed %d step %d: %d vs %d labels", p, seed, step, len(mNums), len(vNums))
		}
		for i := range mNums {
			if mNums[i] != vNums[i] {
				t.Fatalf("%v seed %d step %d: label[%d] %d vs %d\nmat: %v\nvir: %v",
					p, seed, step, i, mNums[i], vNums[i], mNums, vNums)
			}
		}
		if mt.Height() != vt.Height() {
			t.Fatalf("%v seed %d step %d: height %d vs %d", p, seed, step, mt.Height(), vt.Height())
		}
		ms, vs := mt.Stats(), vt.Stats()
		if ms.RelabeledLeaves != vs.RelabeledLeaves {
			t.Fatalf("%v seed %d step %d: relabeled leaves %d vs %d",
				p, seed, step, ms.RelabeledLeaves, vs.RelabeledLeaves)
		}
		if ms.Splits != vs.Splits || ms.RootSplits != vs.RootSplits {
			t.Fatalf("%v seed %d step %d: splits %d/%d vs %d/%d",
				p, seed, step, ms.Splits, ms.RootSplits, vs.Splits, vs.RootSplits)
		}
	}
	for op := 0; op < ops; op++ {
		n := mt.Len()
		switch {
		case n == 0 || rng.Intn(100) < 70 || !withRemove:
			pos := 0
			if n > 0 {
				pos = rng.Intn(n + 1)
			}
			before := rng.Intn(2) == 0
			var mErr, vErr error
			if pos == 0 {
				if before || n == 0 {
					_, mErr = mt.InsertFirst()
					_, vErr = vt.InsertFirst()
				} else {
					anchor := mt.LeafAt(0)
					va, _ := vt.LabelAt(0)
					_, mErr = mt.InsertBefore(anchor)
					_, vErr = vt.InsertBefore(va)
				}
			} else {
				anchor := mt.LeafAt(pos - 1)
				va, ok := vt.LabelAt(pos - 1)
				if !ok {
					t.Fatalf("virtual rank %d missing", pos-1)
				}
				_, mErr = mt.InsertAfter(anchor)
				_, vErr = vt.InsertAfter(va)
			}
			if mErr != nil || vErr != nil {
				t.Fatalf("op %d: insert errors %v / %v", op, mErr, vErr)
			}
		default:
			pos := rng.Intn(n)
			anchor := mt.LeafAt(pos)
			va, _ := vt.LabelAt(pos)
			if err := mt.Remove(anchor); err != nil {
				t.Fatal(err)
			}
			if err := vt.Remove(va); err != nil {
				t.Fatal(err)
			}
		}
		if op%64 == 63 {
			compare(op)
		}
	}
	compare(ops)
	if err := mt.Check(); err != nil {
		t.Fatalf("materialized: %v", err)
	}
	if err := vt.Check(); err != nil {
		t.Fatalf("virtual: %v", err)
	}
}

// TestDifferentialInsertOnly is the headline §4.2 equivalence: identical
// insertion streams produce identical labels, heights and counters.
func TestDifferentialInsertOnly(t *testing.T) {
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 6, S: 2}, {F: 6, S: 3}, {F: 8, S: 4}, {F: 12, S: 2}} {
		for seed := int64(1); seed <= 3; seed++ {
			drive(t, p, seed, 900, false)
		}
	}
}

// TestDifferentialWithRemovals extends the equivalence to physical
// removals (both sides compact right siblings and prune empty ancestors).
func TestDifferentialWithRemovals(t *testing.T) {
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 9, S: 3}} {
		for seed := int64(10); seed <= 12; seed++ {
			drive(t, p, seed, 700, true)
		}
	}
}

// TestQuickDifferential drives short random streams under quick.
func TestQuickDifferential(t *testing.T) {
	prop := func(seed int64) bool {
		mt, _ := core.New(core.Params{F: 6, S: 2})
		vt, _ := New(core.Params{F: 6, S: 2})
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 150; op++ {
			pos := 0
			if mt.Len() > 0 {
				pos = rng.Intn(mt.Len() + 1)
			}
			if pos == 0 {
				if _, err := mt.InsertFirst(); err != nil {
					return false
				}
				if _, err := vt.InsertFirst(); err != nil {
					return false
				}
			} else {
				a := mt.LeafAt(pos - 1)
				va, _ := vt.LabelAt(pos - 1)
				if _, err := mt.InsertAfter(a); err != nil {
					return false
				}
				if _, err := vt.InsertAfter(va); err != nil {
					return false
				}
			}
		}
		m, v := mt.Nums(), vt.Labels()
		if len(m) != len(v) {
			return false
		}
		for i := range m {
			if m[i] != v[i] {
				return false
			}
		}
		return vt.Check() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualErrors(t *testing.T) {
	v := mustNew(t, 4, 2)
	if _, err := v.InsertAfter(7); !errors.Is(err, ErrUnknownLabel) {
		t.Fatalf("InsertAfter(unknown) = %v", err)
	}
	if err := v.Remove(7); !errors.Is(err, ErrUnknownLabel) {
		t.Fatalf("Remove(unknown) = %v", err)
	}
	if _, err := v.Load(-1); !errors.Is(err, core.ErrBadCount) {
		t.Fatalf("Load(-1) = %v", err)
	}
	if _, err := v.Load(3); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Load(3); !errors.Is(err, core.ErrNotEmpty) {
		t.Fatalf("second Load = %v", err)
	}
	if _, err := New(core.Params{F: 5, S: 2}); !errors.Is(err, core.ErrBadParams) {
		t.Fatalf("bad params: %v", err)
	}
}

func TestVirtualRemoveDrain(t *testing.T) {
	v := mustNew(t, 4, 2)
	labels, err := v.Load(20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for v.Len() > 0 {
		i := rng.Intn(v.Len())
		x, _ := v.LabelAt(i)
		if err := v.Remove(x); err != nil {
			t.Fatal(err)
		}
		if err := v.Check(); err != nil {
			t.Fatal(err)
		}
	}
	_ = labels
	if v.Height() != 1 {
		t.Fatalf("drained height = %d", v.Height())
	}
	if x, err := v.InsertFirst(); err != nil || x != 0 {
		t.Fatalf("insert after drain: %d, %v", x, err)
	}
}

func TestMemoryFootprint(t *testing.T) {
	v := mustNew(t, 4, 2)
	if _, err := v.Load(1000); err != nil {
		t.Fatal(err)
	}
	if got := v.MemoryFootprint(); got != 16000 {
		t.Fatalf("footprint = %d", got)
	}
}
