package virtual

import "fmt"

// InsertAfter inserts a new leaf right after the leaf labeled x and
// returns the new label. It runs Algorithm 1 on the virtual tree: range
// counts stand in for the ancestors' leaf counters, and splits renumber
// label ranges in place.
func (t *Tree) InsertAfter(x uint64) (uint64, error) {
	if !t.ost.Has(x) {
		return 0, ErrUnknownLabel
	}
	return t.insert(x, true)
}

// InsertBefore inserts a new leaf right before the leaf labeled x.
func (t *Tree) InsertBefore(x uint64) (uint64, error) {
	if !t.ost.Has(x) {
		return 0, ErrUnknownLabel
	}
	return t.insert(x, false)
}

// InsertFirst inserts a new leaf before all existing ones (label 0 lands
// on an empty tree).
func (t *Tree) InsertFirst() (uint64, error) {
	min, ok := t.ost.Min()
	if !ok {
		t.st.Inserts++
		t.st.AncestorUpdates += uint64(t.height)
		t.st.RelabeledLeaves++
		t.ost.Insert(0)
		return 0, nil
	}
	return t.insert(min, false)
}

// InsertLast appends a new leaf after all existing ones.
func (t *Tree) InsertLast() (uint64, error) {
	max, ok := t.ost.Max()
	if !ok {
		return t.InsertFirst()
	}
	return t.insert(max, true)
}

// insert places a new leaf next to anchor x (after when right is true).
func (t *Tree) insert(x uint64, right bool) (uint64, error) {
	// Pass 1 (read-only): mirror the materialized pass — find the highest
	// virtual ancestor whose occupancy would reach its limit.
	splitH := 0
	for h := 1; h <= t.height; h++ {
		base := t.trunc(x, h)
		if t.ost.CountRange(base, base+t.pow[h])+1 == t.lmax(h) {
			splitH = h
		}
	}
	if splitH > 0 {
		// A split may escalate to a whole-tree rebuild (mirroring the
		// materialized tree); reserve label space before mutating.
		need := t.height + 1
		if alt := t.minHeight(t.ost.Len() + 1); alt > need {
			need = alt
		}
		if err := t.ensurePow(need); err != nil {
			return 0, err
		}
	}
	t.st.Inserts++
	t.st.AncestorUpdates += uint64(t.height)

	if splitH == 0 {
		// No limit reached: shift the right siblings inside the height-1
		// parent up by one and take the vacated slot.
		parent := t.trunc(x, 1)
		end := parent + t.pow[1]
		var newLabel uint64
		if right {
			newLabel = x + 1
		} else {
			newLabel = x
		}
		shifted := t.ost.CollectRange(newLabel, end)
		for i := len(shifted) - 1; i >= 0; i-- {
			t.ost.Delete(shifted[i])
			t.ost.Insert(shifted[i] + 1)
			t.st.RelabeledLeaves++
		}
		t.ost.Insert(newLabel)
		t.st.RelabeledLeaves++
		return newLabel, nil
	}
	return t.splitInsert(x, right, splitH)
}

// splitInsert handles the split case, mirroring the materialized tree
// move for move. At the trigger height h the ancestor is renumbered into
// m = ⌈l/r^h⌉ complete r-ary subtrees (m = s for a single-insert split);
// if its parent's fanout cannot absorb m−1 extra children, the rebuild
// escalates a level (only reachable after physical removals); a split of
// the implicit root raises the height; an escalation that reaches the
// root renumbers everything at the minimal sufficient height.
func (t *Tree) splitInsert(x uint64, right bool, splitH int) (uint64, error) {
	for h := splitH; ; h++ {
		if h == t.height {
			if h == splitH {
				// The paper's root split: height + 1, s perfect subtrees.
				t.st.Splits++
				t.st.RootSplits++
				oldH := t.height
				t.height++
				return t.renumberRange(x, right, 0, oldH, oldH, t.s)
			}
			// Escalated to the root: whole-tree rebuild at the minimal
			// sufficient height (mirror of core's rebuildRoot).
			t.st.Rebuilds++
			t.st.RootSplits++
			oldH := t.height
			newH := t.minHeight(t.ost.Len() + 1)
			collectH := newH
			if oldH > collectH {
				collectH = oldH
			}
			t.height = newH
			if err := t.ensurePow(collectH); err != nil {
				return 0, err
			}
			return t.renumberRange(x, right, 0, collectH, newH, 1)
		}
		base := t.trunc(x, h)
		l := t.ost.CountRange(base, base+t.pow[h]) + 1 // including the new leaf
		capacity := int(t.rpow[h])
		m := (l + capacity - 1) / capacity
		if m < 1 {
			m = 1
		}
		// Parent fanout check (the escalation rule of core's rebuild):
		// with the gap-free slot invariant, the fanout is the slot of the
		// largest label in the parent's interval, plus one.
		parentBase := t.trunc(x, h+1)
		maxLab, ok := t.ost.Pred(parentBase + t.pow[h+1])
		if !ok || maxLab < parentBase {
			return 0, fmt.Errorf("virtual: internal error: empty parent interval at height %d", h+1)
		}
		fanout := int((maxLab-parentBase)/t.pow[h]) + 1
		if fanout-1+m > t.params.F-1 {
			continue // escalate to the parent
		}
		t.st.Splits++
		return t.renumberRange(x, right, base, h, h, m)
	}
}

// renumberRange rewrites the labels of the interval [base, base+(f−1)^
// collectH): the leaves there (with the new one spliced next to x) are
// redistributed over m complete r-ary subtrees of height treeH rooted at
// consecutive child slots from base, with even group sizes — exactly
// core's rebuild/split shape. The rebuilt node's former right siblings
// (labels between its old single slot and its parent's interval end)
// shift up by (m−1)·(f−1)^treeH. It returns the new leaf's label.
func (t *Tree) renumberRange(x uint64, right bool, base uint64, collectH, treeH, m int) (uint64, error) {
	old := t.ost.CollectRange(base, base+t.pow[collectH])
	idx := indexOf(old, x)
	if idx < 0 {
		return 0, fmt.Errorf("virtual: internal error: anchor %d not in range", x)
	}
	if right {
		idx++
	}
	ordered := make([]uint64, 0, len(old)+1)
	ordered = append(ordered, old[:idx]...)
	ordered = append(ordered, sentinel)
	ordered = append(ordered, old[idx:]...)

	// New labels: even split into m groups, each a complete r-ary subtree.
	newLabels := make([]uint64, 0, len(ordered))
	szBase, extra := len(ordered)/m, len(ordered)%m
	for i := 0; i < m; i++ {
		size := szBase
		if i < extra {
			size++
		}
		t.genComplete(base+uint64(i)*t.pow[treeH], size, treeH, &newLabels)
	}

	// Shift right siblings first (descending: upward shifts cannot
	// collide), then replace the rebuilt range wholesale.
	if delta := uint64(m-1) * t.pow[treeH]; delta > 0 && treeH < t.height {
		oldEnd := base + t.pow[treeH]
		parentEnd := t.trunc(x, treeH+1) + t.pow[treeH+1]
		if parentEnd > oldEnd {
			shifted := t.ost.CollectRange(oldEnd, parentEnd)
			for i := len(shifted) - 1; i >= 0; i-- {
				t.ost.Delete(shifted[i])
				t.ost.Insert(shifted[i] + delta)
				t.st.RelabeledLeaves++
			}
		}
	}
	for _, k := range old {
		t.ost.Delete(k)
	}
	var newLabel uint64
	for j, lab := range newLabels {
		t.ost.Insert(lab)
		switch {
		case ordered[j] == sentinel:
			newLabel = lab
			t.st.RelabeledLeaves++
		case ordered[j] != lab:
			t.st.RelabeledLeaves++
		}
	}
	return newLabel, nil
}

// sentinel marks the new leaf's position inside the reordered label run.
const sentinel = ^uint64(0)

// indexOf returns the position of x in the sorted slice, or -1.
func indexOf(keys []uint64, x uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == x {
		return lo
	}
	return -1
}

// Remove physically deletes label x, compacting its right siblings within
// the height-1 parent and pruning emptied virtual ancestors — the exact
// mirror of the materialized Remove (labels shift down one slot per
// affected level). Works in O(height · affected) time.
func (t *Tree) Remove(x uint64) error {
	if !t.ost.Delete(x) {
		return ErrUnknownLabel
	}
	t.st.Deletes++
	// Leaf-level compaction: right siblings within the height-1 parent
	// shift down by one (ascending walk, the slot at x is free).
	parent := t.trunc(x, 1)
	end := parent + t.pow[1]
	for _, k := range t.ost.CollectRange(x+1, end) {
		t.ost.Delete(k)
		t.ost.Insert(k - 1)
		t.st.RelabeledLeaves++
	}
	// Prune emptied ancestors: while the height-h ancestor of x has no
	// labels left, its right siblings shift down one slot (= (f−1)^h).
	for h := 1; h < t.height; h++ {
		base := t.trunc(x, h)
		if t.ost.CountRange(base, base+t.pow[h]) > 0 {
			break
		}
		pend := t.trunc(x, h+1) + t.pow[h+1]
		for _, k := range t.ost.CollectRange(base+t.pow[h], pend) {
			t.ost.Delete(k)
			t.ost.Insert(k - t.pow[h])
			t.st.RelabeledLeaves++
		}
	}
	if t.ost.Len() == 0 {
		t.height = 1
	}
	return nil
}
