// Package virtual implements the virtual L-Tree of paper §4.2: the L-Tree
// is never materialized — only the leaf labels are stored, in a counted
// B-tree — because the whole structure is implicit in the labels
// themselves. The base-(f−1) digits of a label spell out the child slots
// of all its ancestors, so
//
//   - the height-h ancestor of label x is x − x mod (f−1)^h,
//   - its occupancy l(v) is a range count over [num(v), num(v)+(f−1)^h),
//   - a split renumbers a label range in place.
//
// Every operation reproduces the materialized algorithm exactly: on the
// same operation stream the two emit bit-identical label sequences (the
// differential test in virtual_test.go), trading the O(n) materialized
// node storage for a logarithmic-time range count per ancestor.
package virtual

import (
	"errors"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/ostree"
	"github.com/ltree-db/ltree/internal/stats"
)

// maxLabelSpace mirrors internal/core: labels stay below 2^62.
const maxLabelSpace = uint64(1) << 62

// ErrUnknownLabel is returned when the reference label is not present.
var ErrUnknownLabel = errors.New("virtual: reference label not present")

// ErrLabelOverflow mirrors core.ErrLabelOverflow for the virtual variant.
var ErrLabelOverflow = errors.New("virtual: label space exceeds 2^62; choose larger f or s")

// Tree is a virtual L-Tree: parameters, the current height, and the label
// set. The zero value is not usable; construct with New.
type Tree struct {
	params core.Params
	r      int
	s      int
	radix  uint64
	height int // implicit root height H (≥ 1)
	ost    *ostree.Tree
	pow    []uint64 // pow[h] = radix^h
	rpow   []uint64 // rpow[h] = r^h
	st     stats.Counters
}

// New returns an empty virtual L-Tree with the paper's parameters.
func New(p core.Params) (*Tree, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{
		params: p,
		r:      p.R(),
		s:      p.S,
		radix:  uint64(p.Radix()),
		height: 1,
		ost:    ostree.New(),
		pow:    []uint64{1},
		rpow:   []uint64{1},
	}
	if err := t.ensurePow(1); err != nil {
		return nil, err
	}
	return t, nil
}

// Params returns the tree's parameters.
func (t *Tree) Params() core.Params { return t.params }

// Len returns the number of labels.
func (t *Tree) Len() int { return t.ost.Len() }

// Height returns the implicit root height.
func (t *Tree) Height() int { return t.height }

// LabelSpace returns (f−1)^H, the exclusive upper bound on labels.
func (t *Tree) LabelSpace() uint64 { return t.pow[t.height] }

// BitsPerLabel returns ⌈log2 LabelSpace⌉.
func (t *Tree) BitsPerLabel() int {
	bits := 0
	for v := t.LabelSpace() - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// Stats returns a copy of the maintenance counters.
func (t *Tree) Stats() stats.Counters { return t.st }

// ResetStats zeroes the maintenance counters.
func (t *Tree) ResetStats() { t.st.Reset() }

// Has reports whether x is a current label.
func (t *Tree) Has(x uint64) bool { return t.ost.Has(x) }

// Labels returns all labels in order.
func (t *Tree) Labels() []uint64 { return t.ost.Keys() }

// LabelAt returns the label with the given rank (0-based).
func (t *Tree) LabelAt(rank int) (uint64, bool) { return t.ost.SelectK(rank) }

// Rank returns the number of labels smaller than x.
func (t *Tree) Rank(x uint64) int { return t.ost.Rank(x) }

// MemoryFootprint estimates the resident bytes of the label store: labels
// are the only state (8 bytes each plus B-tree node overhead ≈ 8/15), the
// §4.2 storage trade-off measured by experiment E10.
func (t *Tree) MemoryFootprint() int {
	// Keys dominate; B-tree occupancy ≥ 50% doubles the per-key bound.
	return 16 * t.ost.Len()
}

func (t *Tree) lmax(h int) int { return t.s * int(t.rpow[h]) }

func (t *Tree) ensurePow(h int) error {
	for len(t.pow) <= h {
		last := t.pow[len(t.pow)-1]
		if last > maxLabelSpace/t.radix {
			return ErrLabelOverflow
		}
		t.pow = append(t.pow, last*t.radix)
		t.rpow = append(t.rpow, t.rpow[len(t.rpow)-1]*uint64(t.r))
	}
	return nil
}

func (t *Tree) minHeight(n int) int {
	h := 1
	p := uint64(t.r)
	for p < uint64(n) {
		h++
		p *= uint64(t.r)
	}
	return h
}

// trunc returns the number of x's height-h virtual ancestor: x with its
// low h base-(f−1) digits cleared.
func (t *Tree) trunc(x uint64, h int) uint64 { return x - x%t.pow[h] }

// Load bulk-loads n labels into an empty tree, reproducing exactly the
// complete r-ary shape (and therefore the exact labels) of the
// materialized bulk load.
func (t *Tree) Load(n int) ([]uint64, error) {
	if n < 0 {
		return nil, core.ErrBadCount
	}
	if t.ost.Len() != 0 {
		return nil, core.ErrNotEmpty
	}
	if n == 0 {
		return nil, nil
	}
	h := t.minHeight(n)
	if err := t.ensurePow(h); err != nil {
		return nil, err
	}
	t.height = h
	labels := make([]uint64, 0, n)
	t.genComplete(0, n, h, &labels)
	for _, x := range labels {
		t.ost.Insert(x)
	}
	t.st.Reset()
	return labels, nil
}

// genComplete emits the labels of a complete r-ary subtree with count
// leaves based at base — the label-space image of core's buildComplete
// (same even distribution, so the shapes coincide).
func (t *Tree) genComplete(base uint64, count, h int, out *[]uint64) {
	if h == 0 {
		*out = append(*out, base)
		return
	}
	capacity := int(t.rpow[h-1])
	k := (count + capacity - 1) / capacity
	szBase, extra := count/k, count%k
	for i := 0; i < k; i++ {
		size := szBase
		if i < extra {
			size++
		}
		t.genComplete(base+uint64(i)*t.pow[h-1], size, h-1, out)
	}
}
