package virtual

import "fmt"

// Check validates the virtual tree's implicit invariants against the full
// label set (O(n·height); for tests and the harness):
//
//  1. every label is inside the root interval [0, (f−1)^H);
//  2. every virtual ancestor's occupancy is below its limit s·r^h;
//  3. within every virtual internal node the occupied child slots form a
//     gap-free prefix 0..c−1 with c ≤ f−1 — the structural property that
//     makes the labels a faithful image of a materialized L-Tree.
func (t *Tree) Check() error {
	labels := t.Labels()
	space := t.pow[t.height]
	for i, x := range labels {
		if x >= space {
			return fmt.Errorf("virtual: label %d outside space %d", x, space)
		}
		if i > 0 && labels[i-1] >= x {
			return fmt.Errorf("virtual: labels not increasing at %d", i)
		}
	}
	for h := 1; h <= t.height; h++ {
		// Iterate the distinct height-h ancestors.
		for i := 0; i < len(labels); {
			base := t.trunc(labels[i], h)
			j := i
			slots := map[uint64]bool{}
			var maxSlot uint64
			for j < len(labels) && t.trunc(labels[j], h) == base {
				slot := (labels[j] - base) / t.pow[h-1]
				slots[slot] = true
				if slot > maxSlot {
					maxSlot = slot
				}
				j++
			}
			count := j - i
			if count >= t.lmax(h) {
				return fmt.Errorf("virtual: ancestor %d at height %d holds %d ≥ lmax %d",
					base, h, count, t.lmax(h))
			}
			if int(maxSlot)+1 != len(slots) {
				return fmt.Errorf("virtual: ancestor %d at height %d has gapped child slots (%d slots, max %d)",
					base, h, len(slots), maxSlot)
			}
			if len(slots) > t.params.F-1 {
				return fmt.Errorf("virtual: ancestor %d at height %d has fanout %d > f−1",
					base, h, len(slots))
			}
			i = j
		}
	}
	return nil
}
