package document

import "sort"

// Cursor streams one begin-sorted posting list. It is the query layer's
// view of an index: implementations back it with whatever physical layout
// they use (a contiguous slice here, immutable chunks in internal/index),
// and the structural joins consume postings one at a time instead of
// demanding a contiguous slice.
//
// A cursor is forward-only and single-use: Next yields the next posting
// in begin order, Seek advances to the first posting whose Label.Begin is
// >= begin (never retreating — seeking behind the current position is a
// plain Next) and yields it. Both report ok=false once the list is
// exhausted. Cursors are not safe for concurrent use; obtain one per
// traversal. The underlying postings are shared and read-only.
type Cursor interface {
	Next() (Entry, bool)
	Seek(begin uint64) (Entry, bool)
}

// SliceCursor adapts a begin-sorted []Entry to the Cursor interface —
// the one-shot TagIndex snapshot and any materialized intermediate result
// stream through it.
type SliceCursor struct {
	es []Entry
	i  int
}

// NewSliceCursor wraps a begin-sorted entry slice. The slice is shared,
// not copied, and must not be mutated while the cursor lives.
func NewSliceCursor(es []Entry) *SliceCursor { return &SliceCursor{es: es} }

// Next implements Cursor.
func (c *SliceCursor) Next() (Entry, bool) {
	if c.i >= len(c.es) {
		return Entry{}, false
	}
	e := c.es[c.i]
	c.i++
	return e, true
}

// Seek implements Cursor by binary search over the remaining entries.
func (c *SliceCursor) Seek(begin uint64) (Entry, bool) {
	rest := c.es[c.i:]
	c.i += sort.Search(len(rest), func(i int) bool { return rest[i].Label.Begin >= begin })
	return c.Next()
}

// Cursor returns a streaming view of the begin-sorted posting list for a
// tag ("*" flattens every element). This makes a plain TagIndex satisfy
// the query layer's cursor-based index interface; internal/index provides
// the incremental chunked variant whose Seek skips whole chunks.
func (ix TagIndex) Cursor(tag string) Cursor { return NewSliceCursor(ix.Postings(tag)) }

// DrainCursor materializes the rest of a cursor into a slice.
func DrainCursor(c Cursor) []Entry {
	var out []Entry
	for e, ok := c.Next(); ok; e, ok = c.Next() {
		out = append(out, e)
	}
	return out
}
