package document

import "sort"

// Cursor streams one begin-sorted posting list. It is the query layer's
// view of an index: implementations back it with whatever physical layout
// they use (a contiguous slice here, immutable chunks in internal/index),
// and the structural joins consume postings one at a time instead of
// demanding a contiguous slice.
//
// A cursor is forward-only and single-use: Next yields the next posting
// in begin order, Seek advances to the first posting whose Label.Begin is
// >= begin (never retreating — seeking behind the current position is a
// plain Next) and yields it. Both report ok=false once the list is
// exhausted. Cursors are not safe for concurrent use; obtain one per
// traversal. The underlying postings are shared and read-only.
type Cursor interface {
	Next() (Entry, bool)
	Seek(begin uint64) (Entry, bool)
}

// OpenSeeker is an optional Cursor extension for interval streams: a
// SeekOpen(begin) advances to the first remaining entry whose interval
// may still be open at begin — every skipped entry provably satisfies
// Label.End < begin (and hence Label.Begin < begin, since Begin < End).
// Entries with Begin >= begin are never skipped, so a SeekOpen is a
// strictly weaker skip than Seek: it jumps over intervals that closed
// before the target while retaining ancestors that straddle it.
//
// The structural join uses this on its context side after a far
// candidate jump (the zig-zag step): context entries closed before the
// candidate can never be its ancestors, nor ancestors of any later
// candidate, so whole chunks of them are skipped by fence comparison
// (the chunked index keeps a maxEnd per fence for exactly this test).
// Like Seek, SeekOpen is forward-only and consumes what it yields.
type OpenSeeker interface {
	Cursor
	SeekOpen(begin uint64) (Entry, bool)
}

// ChunkFilter is an optional Cursor extension for predicate pushdown: a
// consumer that will drop every entry lacking one of the required
// attribute keys (hashes from AttrKeyHash/AttrKVHash, conjunctive)
// declares them up front, and a chunk-aware cursor may then skip any
// chunk whose attribute summary proves a required key absent — the
// entries are never decoded. The filtered stream is a superset of the
// entries passing the predicates (summaries have false positives, never
// false negatives), so the consumer must still test each entry; it is
// NOT a complete stream of the tag, which is why the filter is opt-in
// per cursor rather than part of the Seek contract.
type ChunkFilter interface {
	Cursor
	FilterChunks(required []uint64)
}

// SliceCursor adapts a begin-sorted []Entry to the Cursor interface —
// the one-shot TagIndex snapshot and any materialized intermediate result
// stream through it.
type SliceCursor struct {
	es []Entry
	i  int
}

// NewSliceCursor wraps a begin-sorted entry slice. The slice is shared,
// not copied, and must not be mutated while the cursor lives.
func NewSliceCursor(es []Entry) *SliceCursor { return &SliceCursor{es: es} }

// Next implements Cursor.
func (c *SliceCursor) Next() (Entry, bool) {
	if c.i >= len(c.es) {
		return Entry{}, false
	}
	e := c.es[c.i]
	c.i++
	return e, true
}

// Seek implements Cursor by binary search over the remaining entries.
func (c *SliceCursor) Seek(begin uint64) (Entry, bool) {
	rest := c.es[c.i:]
	c.i += sort.Search(len(rest), func(i int) bool { return rest[i].Label.Begin >= begin })
	return c.Next()
}

// Cursor returns a streaming view of the begin-sorted posting list for a
// tag ("*" flattens every element). This makes a plain TagIndex satisfy
// the query layer's cursor-based index interface; internal/index provides
// the incremental chunked variant whose Seek skips whole chunks.
func (ix TagIndex) Cursor(tag string) Cursor { return NewSliceCursor(ix.Postings(tag)) }

// DrainCursor materializes the rest of a cursor into a slice.
func DrainCursor(c Cursor) []Entry {
	var out []Entry
	for e, ok := c.Next(); ok; e, ok = c.Next() {
		out = append(out, e)
	}
	return out
}
