package document

import (
	"errors"
	"fmt"

	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// This file records the logical operation log behind write-ahead logging:
// alongside the index-relevant Changes sets, a Doc can keep the ordered,
// serializable list of mutations (storage.Op) a batch performed, and can
// replay such a list — ApplyOps — through the exact same mutation code
// paths, so L-Tree maintenance, the relabel hook, and change tracking all
// fire identically on recovery as they did at runtime.
//
// Ops reference nodes by child-index paths from the root, captured at the
// moment each op ran; since replay applies ops in order against the same
// evolving document state, the paths resolve to the same nodes. Each op
// also records the labels it produced (the spliced run for inserts and
// moves, the victim's begin label for deletes). L-Tree relabeling is a
// deterministic function of tree state, so replay from a bit-identical
// checkpoint must reproduce these labels bit-identically; the recorded
// labels let replay verify that instead of assuming it.

// ErrReplayDiverged reports a replayed op that produced different labels
// than the recorded run — the log does not describe this document.
var ErrReplayDiverged = errors.New("document: replay diverged from recorded labels")

// TrackOps starts recording the ordered logical op log. Call TakeOps to
// drain it; like change tracking it stays enabled for the document's
// lifetime. Mutations made below this API (directly on X) are invisible
// to the log — a WAL-backed store must mutate through the Doc methods.
func (d *Doc) TrackOps() { d.oplogging = true }

// OpLogging reports whether the logical op log is being recorded.
func (d *Doc) OpLogging() bool { return d.oplogging }

// TakeOps returns the ops recorded since the last call and resets the
// log. It returns nil when tracking is off or nothing was recorded.
func (d *Doc) TakeOps() []storage.Op {
	out := d.ops
	d.ops = nil
	return out
}

// recordingOps reports whether the current mutation should be logged:
// tracking is on and we are not inside a compound op (Move) or a replay.
func (d *Doc) recordingOps() bool { return d.oplogging && d.opdepth == 0 }

// PathOf returns n's child-index path from the root.
func (d *Doc) PathOf(n *xmldom.Node) ([]uint32, error) {
	if _, ok := d.bind[n]; !ok {
		return nil, ErrUnbound
	}
	var rev []uint32
	for v := n; v != d.X.Root; v = v.Parent() {
		i := v.Index()
		if i < 0 {
			return nil, ErrUnbound
		}
		rev = append(rev, uint32(i))
	}
	path := make([]uint32, len(rev))
	for i, step := range rev {
		path[len(rev)-1-i] = step
	}
	return path, nil
}

// ResolvePath walks a child-index path down from the root.
func (d *Doc) ResolvePath(path []uint32) (*xmldom.Node, error) {
	n := d.X.Root
	for depth, step := range path {
		c := n.Child(int(step))
		if c == nil {
			return nil, fmt.Errorf("document: path step %d (child %d of <%s>) does not resolve",
				depth, step, n.Tag())
		}
		n = c
	}
	return n, nil
}

// subtreeLabels reads the current labels of sub's token run in document
// order — strictly increasing, exactly what the WAL op codec delta-codes.
func (d *Doc) subtreeLabels(sub *xmldom.Node) []uint64 {
	tokens := xmldom.SubtreeTokens(sub)
	out := make([]uint64, len(tokens))
	for i, tok := range tokens {
		b := d.bind[tok.Node]
		if tok.Kind == xmldom.End {
			out[i] = b.end.Num()
		} else {
			out[i] = b.begin.Num()
		}
	}
	return out
}

// verifyRunLabels checks a replayed splice against the recorded run.
func (d *Doc) verifyRunLabels(sub *xmldom.Node, want []uint64) error {
	got := d.subtreeLabels(sub)
	if len(got) != len(want) {
		return fmt.Errorf("%w: run of %d labels, recorded %d", ErrReplayDiverged, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%w: token %d labeled %d, recorded %d", ErrReplayDiverged, i, got[i], want[i])
		}
	}
	return nil
}

// PayloadInfo summarizes one applied batch payload: whether it held a
// compaction (compaction relabels everything, so a caller maintaining
// an incremental index must rebuild instead of patching), and the
// writer's post-batch index root hash when the batch carried an
// OpStamp annotation (HasRoot false otherwise — payloads written
// before stamping existed replay unchanged).
type PayloadInfo struct {
	Compacted bool
	Root      [32]byte
	HasRoot   bool
}

// ApplyPayload is the op-stream decode entry point shared by WAL
// recovery and log-shipping followers: it decodes one encoded batch
// payload (an EncodeOps record, exactly what AppendBatch persisted and a
// Tailer ships) and replays it through ApplyOps, returning the batch's
// PayloadInfo.
func (d *Doc) ApplyPayload(payload []byte) (PayloadInfo, error) {
	var info PayloadInfo
	ops, err := storage.DecodeOps(payload)
	if err != nil {
		return info, err
	}
	if err := d.ApplyOps(ops); err != nil {
		return info, err
	}
	for i := range ops {
		switch ops[i].Kind {
		case storage.OpCompact:
			info.Compacted = true
		case storage.OpStamp:
			info.Root = ops[i].Root
			info.HasRoot = true
		}
	}
	return info, nil
}

// ApplyOps replays a recorded op batch through the normal mutation
// methods: the L-Tree performs the same maintenance, the relabel hook and
// change tracking fire exactly as they did at runtime (so an incremental
// index patches identically), and every op's recorded labels are verified
// against what the replay produced. Ops applied here are not re-recorded
// into the op log.
func (d *Doc) ApplyOps(ops []storage.Op) error {
	d.opdepth++
	defer func() { d.opdepth-- }()
	for i := range ops {
		if err := d.applyOp(&ops[i]); err != nil {
			return fmt.Errorf("document: replay op %d/%d: %w", i+1, len(ops), err)
		}
	}
	return nil
}

func (d *Doc) applyOp(op *storage.Op) error {
	switch op.Kind {
	case storage.OpInsert:
		parent, err := d.ResolvePath(op.Path)
		if err != nil {
			return err
		}
		if op.Sub == nil {
			return errors.New("document: insert op without subtree")
		}
		sub, err := fromRec(op.Sub)
		if err != nil {
			return err
		}
		if err := d.InsertSubtree(parent, int(op.Idx), sub); err != nil {
			return err
		}
		return d.verifyRunLabels(sub, op.Labels)
	case storage.OpDelete:
		n, err := d.ResolvePath(op.Path)
		if err != nil {
			return err
		}
		b, ok := d.bind[n]
		if !ok {
			return ErrUnbound
		}
		if len(op.Labels) != 1 || b.begin.Num() != op.Labels[0] {
			return fmt.Errorf("%w: deleting node labeled %d, recorded %v",
				ErrReplayDiverged, b.begin.Num(), op.Labels)
		}
		return d.DeleteSubtree(n)
	case storage.OpMove:
		n, err := d.ResolvePath(op.Path)
		if err != nil {
			return err
		}
		dst, err := d.ResolvePath(op.Dst)
		if err != nil {
			return err
		}
		if err := d.Move(n, dst, int(op.Idx)); err != nil {
			return err
		}
		return d.verifyRunLabels(n, op.Labels)
	case storage.OpCompact:
		return d.CompactLabels()
	case storage.OpStamp:
		return nil // integrity annotation, no document effect
	default:
		return fmt.Errorf("document: unknown op kind %d", op.Kind)
	}
}
