package document

import "github.com/ltree-db/ltree/internal/xmldom"

// AttrSummary is a small fixed-size bloom filter over the attribute keys
// of a run of elements: for every attribute a of every element it holds
// both the name key (AttrKeyHash) and the name=value key (AttrKVHash).
// The chunked index builds one per immutable chunk at chunk-build time
// and stores it beside the fence directory, so a predicate-filtered
// cursor can reject a whole chunk — no posting decoded, no attribute
// list scanned — when a required key is provably absent.
//
// Semantics are strictly one-sided: MayContain never reports false for a
// key that was added (no false negatives), so a skip is always sound;
// false positives only cost a wasted chunk decode. A chunk whose
// elements carry many distinct attribute values saturates the filter and
// degrades to "maybe" for everything — per-chunk summaries pay off on
// low-cardinality, clustered attributes (flags, roles, categories), and
// cost one branch per chunk everywhere else. See DESIGN.md §3.5.
type AttrSummary [4]uint64

// attrSummaryBits is the filter width in bits (4 × 64).
const attrSummaryBits = 256

// Add inserts a key hash, setting two derived bits (classic double
// hashing: the low and high halves of the 64-bit key index independent
// bit positions).
func (s *AttrSummary) Add(h uint64) {
	b1 := h % attrSummaryBits
	b2 := (h >> 32) % attrSummaryBits
	s[b1/64] |= 1 << (b1 % 64)
	s[b2/64] |= 1 << (b2 % 64)
}

// MayContain reports whether the key hash may have been added: false
// means definitely absent (both derived bits cannot be set by accident
// of a single other key only when the filter is sparse — collisions make
// this "maybe", never a lost key).
func (s AttrSummary) MayContain(h uint64) bool {
	b1 := h % attrSummaryBits
	b2 := (h >> 32) % attrSummaryBits
	return s[b1/64]&(1<<(b1%64)) != 0 && s[b2/64]&(1<<(b2%64)) != 0
}

// Empty reports a filter with no keys at all (a chunk of attribute-free
// elements): every existence predicate is definitely absent.
func (s AttrSummary) Empty() bool { return s == AttrSummary{} }

// AddNode inserts every attribute of one element: the name key and the
// name=value key.
func (s *AttrSummary) AddNode(n *xmldom.Node) {
	for _, a := range n.Attrs() {
		s.Add(AttrKeyHash(a.Name))
		s.Add(AttrKVHash(a.Name, a.Value))
	}
}

// FNV-1a constants (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// AttrKeyHash hashes an attribute name — the key an existence predicate
// ([@name]) probes.
func AttrKeyHash(name string) uint64 {
	return fnvString(fnvOffset, name)
}

// AttrKVHash hashes an attribute name=value pair — the key an equality
// predicate ([@name='value']) probes. It continues the same FNV-1a
// stream over name, '=', value, so no intermediate string is built; the
// '=' separator keeps ("ab","c") and ("a","bc") distinct.
func AttrKVHash(name, value string) uint64 {
	h := fnvString(fnvOffset, name)
	h ^= '='
	h *= fnvPrime
	return fnvString(h, value)
}
