// Package document binds an XML document (internal/xmldom) to an L-Tree
// (internal/core): every begin tag, end tag and text section owns one
// L-Tree leaf, and the label of an element is the pair of its begin and
// end leaf numbers (paper §2.1). Structural edits on the document are
// translated into leaf (run) insertions and deletions, so subtree pastes
// use the paper's §4.1 multiple-node insertion, and all relabeling cost is
// accounted on the underlying tree.
package document

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Errors reported by the binding layer.
var (
	ErrUnbound  = errors.New("document: node is not bound to this document")
	ErrRootEdit = errors.New("document: the root element cannot be moved or deleted")
)

// Label is an element's (begin, end) interval or a text node's point label
// (Begin == End).
type Label struct {
	Begin uint64
	End   uint64
}

// Contains reports the paper's interval containment test: l strictly
// contains d, i.e. the node labeled l is an ancestor of the one labeled d.
func (l Label) Contains(d Label) bool {
	return l.Begin < d.Begin && d.End < l.End
}

// binding holds the leaves an XML node owns.
type binding struct {
	begin *core.Node
	end   *core.Node // == begin for text nodes
}

// Doc is a labeled XML document.
type Doc struct {
	X    *xmldom.Document
	tree *core.Tree
	bind map[*xmldom.Node]binding
	rec  *Changes // mutation recorder (nil until TrackChanges)

	// Logical op log (oplog.go): the ordered, serializable mutations the
	// WAL persists. opdepth suppresses recording inside compound ops
	// (Move's internal insert) and during replay.
	ops       []storage.Op
	oplogging bool
	opdepth   int

	// restoredRoot carries the index root hash the restore snapshot was
	// stamped with (persist.go), for restore-time integrity checks.
	restoredRoot    [32]byte
	hasRestoredRoot bool
}

// Load labels an entire XML document via bulk loading (§2.2).
func Load(x *xmldom.Document, p core.Params) (*Doc, error) {
	if err := x.Check(); err != nil {
		return nil, err
	}
	tree, err := core.New(p)
	if err != nil {
		return nil, err
	}
	tokens := x.Tokens()
	leaves, err := tree.Load(len(tokens))
	if err != nil {
		return nil, err
	}
	d := &Doc{X: x, tree: tree, bind: make(map[*xmldom.Node]binding, len(tokens)/2+1)}
	d.bindTokens(tokens, leaves)
	return d, nil
}

// Parse reads and labels an XML document in one step.
func Parse(r io.Reader, p core.Params, opts ...xmldom.ParseOptions) (*Doc, error) {
	x, err := xmldom.Parse(r, opts...)
	if err != nil {
		return nil, err
	}
	return Load(x, p)
}

// bindTokens associates a token run with a leaf run of equal length.
func (d *Doc) bindTokens(tokens []xmldom.Token, leaves []*core.Node) {
	for i, tok := range tokens {
		lf := leaves[i]
		b := d.bind[tok.Node]
		switch tok.Kind {
		case xmldom.Begin:
			b.begin = lf
			lf.SetPayload(tok.Node)
			d.recordAdded(tok.Node)
		case xmldom.End:
			b.end = lf
			lf.SetPayload(tok.Node)
		case xmldom.TextTok:
			b.begin, b.end = lf, lf
			lf.SetPayload(tok.Node)
		}
		d.bind[tok.Node] = b
	}
}

// Tree exposes the underlying L-Tree (read-mostly: stats, checks, params).
func (d *Doc) Tree() *core.Tree { return d.tree }

// Stats returns the accumulated maintenance cost counters.
func (d *Doc) Stats() stats.Counters { return d.tree.Stats() }

// Label returns the node's current label.
func (d *Doc) Label(n *xmldom.Node) (Label, error) {
	b, ok := d.bind[n]
	if !ok {
		return Label{}, ErrUnbound
	}
	return Label{Begin: b.begin.Num(), End: b.end.Num()}, nil
}

// IsAncestor reports whether a is a proper ancestor of x, decided purely
// by label comparison (the paper's containment test, §1).
func (d *Doc) IsAncestor(a, x *xmldom.Node) (bool, error) {
	la, err := d.Label(a)
	if err != nil {
		return false, err
	}
	lx, err := d.Label(x)
	if err != nil {
		return false, err
	}
	return la.Contains(lx), nil
}

// Compare orders two nodes by document order using only their labels.
func (d *Doc) Compare(a, b *xmldom.Node) (int, error) {
	la, err := d.Label(a)
	if err != nil {
		return 0, err
	}
	lb, err := d.Label(b)
	if err != nil {
		return 0, err
	}
	switch {
	case la.Begin < lb.Begin:
		return -1, nil
	case la.Begin > lb.Begin:
		return 1, nil
	default:
		return 0, nil
	}
}

// InsertSubtree splices the detached subtree rooted at sub as the idx-th
// child of parent, labeling all of its tokens with one §4.1 run insertion.
func (d *Doc) InsertSubtree(parent *xmldom.Node, idx int, sub *xmldom.Node) error {
	pb, ok := d.bind[parent]
	if !ok {
		return ErrUnbound
	}
	logged := d.recordingOps()
	var ppath []uint32
	if logged {
		var err error
		if ppath, err = d.PathOf(parent); err != nil {
			return err
		}
	}
	// The leaf after which the subtree's token run starts: the begin leaf
	// of the parent when inserting first, otherwise the last leaf of the
	// preceding sibling's subtree.
	anchor := pb.begin
	if idx > 0 {
		prev := parent.Child(idx - 1)
		if prev == nil {
			return xmldom.ErrRange
		}
		b, ok := d.bind[prev]
		if !ok {
			return ErrUnbound
		}
		anchor = b.end
	}
	if err := parent.InsertChildAt(idx, sub); err != nil {
		return err
	}
	tokens := xmldom.SubtreeTokens(sub)
	run, err := d.tree.InsertRunAfter(anchor, len(tokens))
	if err != nil {
		sub.Detach()
		return err
	}
	d.bindTokens(tokens, run)
	if logged {
		rec := toRec(sub)
		d.ops = append(d.ops, storage.Op{
			Kind:   storage.OpInsert,
			Path:   ppath,
			Idx:    uint32(idx),
			Labels: d.subtreeLabels(sub),
			Sub:    &rec,
		})
	}
	return nil
}

// AppendSubtree splices sub as parent's last child.
func (d *Doc) AppendSubtree(parent, sub *xmldom.Node) error {
	return d.InsertSubtree(parent, parent.NumChildren(), sub)
}

// InsertElement creates, splices and labels a fresh empty element.
func (d *Doc) InsertElement(parent *xmldom.Node, idx int, tag string, attrs ...xmldom.Attr) (*xmldom.Node, error) {
	el := xmldom.NewElement(tag, attrs...)
	if err := d.InsertSubtree(parent, idx, el); err != nil {
		return nil, err
	}
	return el, nil
}

// InsertText creates, splices and labels a fresh text node.
func (d *Doc) InsertText(parent *xmldom.Node, idx int, data string) (*xmldom.Node, error) {
	txt := xmldom.NewText(data)
	if err := d.InsertSubtree(parent, idx, txt); err != nil {
		return nil, err
	}
	return txt, nil
}

// DeleteSubtree detaches the subtree rooted at n from the document and
// tombstones its leaves — the paper's deletion: no relabeling at all
// (§2.3). The label slots stay occupied until CompactLabels.
func (d *Doc) DeleteSubtree(n *xmldom.Node) error {
	if n == d.X.Root {
		return ErrRootEdit
	}
	nb, ok := d.bind[n]
	if !ok {
		return ErrUnbound
	}
	logged := d.recordingOps()
	var npath []uint32
	var begin uint64
	if logged {
		var perr error
		if npath, perr = d.PathOf(n); perr != nil {
			return perr
		}
		begin = nb.begin.Num()
	}
	var err error
	n.Walk(func(v *xmldom.Node) bool {
		b := d.bind[v]
		if e := d.tree.Delete(b.begin); e != nil {
			err = e
			return false
		}
		if b.end != b.begin {
			if e := d.tree.Delete(b.end); e != nil {
				err = e
				return false
			}
		}
		delete(d.bind, v)
		d.recordRemoved(v, b.begin.Num())
		return true
	})
	if err != nil {
		return err
	}
	n.Detach()
	if logged {
		d.ops = append(d.ops, storage.Op{Kind: storage.OpDelete, Path: npath, Labels: []uint64{begin}})
	}
	return nil
}

// CompactLabels rebuilds the L-Tree without tombstones (extension beyond
// the paper; see core.Compact).
func (d *Doc) CompactLabels() error {
	logged := d.recordingOps()
	err := d.tree.Compact()
	if logged && err == nil {
		d.ops = append(d.ops, storage.Op{Kind: storage.OpCompact})
	}
	return err
}

// Move relocates the subtree rooted at n to become parent's idx-th child,
// preserving XML node identities. The old leaves are tombstoned (free,
// §2.3) and the subtree's tokens are relabeled at the target with one
// §4.1 run insertion.
func (d *Doc) Move(n, parent *xmldom.Node, idx int) error {
	logged := d.recordingOps()
	var npath, dpath []uint32
	if logged {
		var err error
		if npath, err = d.PathOf(n); err != nil {
			return err
		}
		if dpath, err = d.PathOf(parent); err != nil {
			return err
		}
	}
	// The internal insert half must not log a second op.
	d.opdepth++
	err := d.move(n, parent, idx)
	d.opdepth--
	if logged && err == nil {
		d.ops = append(d.ops, storage.Op{
			Kind:   storage.OpMove,
			Path:   npath,
			Dst:    dpath,
			Idx:    uint32(idx),
			Labels: d.subtreeLabels(n),
		})
	}
	return err
}

// move is Move without op recording (the compound body).
func (d *Doc) move(n, parent *xmldom.Node, idx int) error {
	if n == d.X.Root {
		return ErrRootEdit
	}
	if _, ok := d.bind[n]; !ok {
		return ErrUnbound
	}
	if _, ok := d.bind[parent]; !ok {
		return ErrUnbound
	}
	for v := parent; v != nil; v = v.Parent() {
		if v == n {
			return xmldom.ErrCycle
		}
	}
	// Pre-validate the insert half so its failure cannot strand the
	// subtree half-moved (already tombstoned and detached): the target
	// must accept children and idx must be in range against the
	// post-detach child count (detaching n from the same parent shrinks
	// the valid range by one).
	if parent.Kind() == xmldom.Text {
		return xmldom.ErrTextKids
	}
	limit := parent.NumChildren()
	if n.Parent() == parent {
		limit--
	}
	if idx < 0 || idx > limit {
		return xmldom.ErrRange
	}
	// Tombstone the old labels before detaching (order irrelevant: marks
	// never relabel).
	var err error
	n.Walk(func(v *xmldom.Node) bool {
		b := d.bind[v]
		if e := d.tree.Delete(b.begin); e != nil {
			err = e
			return false
		}
		if b.end != b.begin {
			if e := d.tree.Delete(b.end); e != nil {
				err = e
				return false
			}
		}
		delete(d.bind, v)
		d.recordRemoved(v, b.begin.Num())
		return true
	})
	if err != nil {
		return err
	}
	n.Detach()
	return d.InsertSubtree(parent, idx, n)
}

// Elements returns all elements with the given tag in document order
// ("*" matches every element).
func (d *Doc) Elements(tag string) []*xmldom.Node {
	var out []*xmldom.Node
	d.X.Root.Walk(func(n *xmldom.Node) bool {
		if n.Kind() == xmldom.Element && (tag == "*" || n.Tag() == tag) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Entry is one tag-index posting: an element with its interval label and
// depth, the unit the query processor's structural joins consume.
type Entry struct {
	Node  *xmldom.Node
	Label Label
	Level int
}

// TagIndex maps each element tag to its postings sorted by begin label —
// the per-tag clustering the paper assumes for query processing (§3.1).
type TagIndex map[string][]Entry

// Postings returns the begin-sorted posting list for a tag; "*" flattens
// every element. This makes a plain TagIndex satisfy the query layer's
// index interface (internal/index provides the incremental variant).
func (ix TagIndex) Postings(tag string) []Entry {
	if tag != "*" {
		return ix[tag]
	}
	var all []Entry
	for _, posts := range ix {
		all = append(all, posts...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Label.Begin < all[j].Label.Begin })
	return all
}

// BuildTagIndex snapshots the current labels into a tag index. It must be
// rebuilt (or resynced via reltab) after updates that relabel.
func (d *Doc) BuildTagIndex() TagIndex {
	idx := make(TagIndex)
	level := 0
	var walk func(n *xmldom.Node)
	walk = func(n *xmldom.Node) {
		if n.Kind() == xmldom.Element {
			b := d.bind[n]
			idx[n.Tag()] = append(idx[n.Tag()], Entry{
				Node:  n,
				Label: Label{Begin: b.begin.Num(), End: b.end.Num()},
				Level: level,
			})
			level++
			for _, c := range n.Children() {
				walk(c)
			}
			level--
		}
	}
	walk(d.X.Root)
	for _, posts := range idx {
		sort.Slice(posts, func(i, j int) bool { return posts[i].Label.Begin < posts[j].Label.Begin })
	}
	return idx
}

// Check validates the binding: every token has a live leaf, token order
// matches leaf order, and element intervals nest properly.
func (d *Doc) Check() error {
	if err := d.X.Check(); err != nil {
		return err
	}
	if err := d.tree.Check(); err != nil {
		return err
	}
	tokens := d.X.Tokens()
	var prev uint64
	first := true
	for i, tok := range tokens {
		b, ok := d.bind[tok.Node]
		if !ok {
			return fmt.Errorf("document: token %d unbound", i)
		}
		lf := b.begin
		if tok.Kind == xmldom.End {
			lf = b.end
		}
		if lf == nil {
			return fmt.Errorf("document: token %d missing leaf", i)
		}
		if lf.Deleted() {
			return fmt.Errorf("document: token %d bound to tombstone", i)
		}
		if !first && lf.Num() <= prev {
			return fmt.Errorf("document: label order broken at token %d (%d after %d)", i, lf.Num(), prev)
		}
		prev = lf.Num()
		first = false
	}
	if live := d.tree.Live(); live != len(tokens) {
		return fmt.Errorf("document: %d live leaves for %d tokens", live, len(tokens))
	}
	// Interval nesting: parent strictly contains child.
	var nest func(n *xmldom.Node) error
	nest = func(n *xmldom.Node) error {
		ln, err := d.Label(n)
		if err != nil {
			return err
		}
		if n.Kind() == xmldom.Element && ln.Begin >= ln.End {
			return fmt.Errorf("document: element <%s> has degenerate interval (%d,%d)", n.Tag(), ln.Begin, ln.End)
		}
		for _, c := range n.Children() {
			lc, err := d.Label(c)
			if err != nil {
				return err
			}
			if !ln.Contains(lc) {
				return fmt.Errorf("document: <%s>(%d,%d) does not contain child (%d,%d)",
					n.Tag(), ln.Begin, ln.End, lc.Begin, lc.End)
			}
			if err := nest(c); err != nil {
				return err
			}
		}
		return nil
	}
	return nest(d.X.Root)
}
