package document

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/xmldom"
)

func TestSnapshotRestoreBasic(t *testing.T) {
	d := loadString(t, figure2XML, p42)
	// Mutate: inserts (forcing a split) and a tombstoning delete.
	b := d.X.Root.Child(0)
	if _, err := d.InsertElement(b, 0, "D"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertText(b, 1, "hello <world> & co"); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteSubtree(d.X.Root.Child(1)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Check(); err != nil {
		t.Fatal(err)
	}
	// Identical labels for corresponding nodes (walk both docs in step).
	wantNums := d.tree.Nums()
	gotNums := restored.tree.Nums()
	if len(wantNums) != len(gotNums) {
		t.Fatalf("%d labels, want %d", len(gotNums), len(wantNums))
	}
	for i := range wantNums {
		if wantNums[i] != gotNums[i] {
			t.Fatalf("label %d: %d, want %d", i, gotNums[i], wantNums[i])
		}
	}
	if restored.tree.Height() != d.tree.Height() {
		t.Fatal("height not preserved")
	}
	if restored.tree.Live() != d.tree.Live() || restored.tree.Len() != d.tree.Len() {
		t.Fatal("tombstone slots not preserved")
	}
	if restored.X.String() != d.X.String() {
		t.Fatalf("document text changed:\n%s\nvs\n%s", restored.X.String(), d.X.String())
	}
}

// TestSnapshotAdjacentTextNodes is the regression for the structural DOM
// encoding: adjacent text siblings must survive (textual XML would merge
// them and break the token-leaf correspondence).
func TestSnapshotAdjacentTextNodes(t *testing.T) {
	d := loadString(t, `<r>a</r>`, p42)
	if _, err := d.InsertText(d.X.Root, 1, "b"); err != nil {
		t.Fatal(err)
	}
	if d.X.Root.NumChildren() != 2 {
		t.Fatal("setup: need two adjacent text nodes")
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.X.Root.NumChildren() != 2 {
		t.Fatalf("adjacent text nodes merged: %d children", restored.X.Root.NumChildren())
	}
	if err := restored.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreContinuesWorking(t *testing.T) {
	d := loadString(t, `<r><a/><b/></r>`, p42)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		els := d.Elements("*")
		parent := els[rng.Intn(len(els))]
		if _, err := d.InsertElement(parent, rng.Intn(parent.NumChildren()+1), "x"); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Keep editing the restored document heavily.
	for i := 0; i < 300; i++ {
		els := restored.Elements("*")
		parent := els[rng.Intn(len(els))]
		if _, err := restored.InsertElement(parent, rng.Intn(parent.NumChildren()+1), "y"); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreReadsV1 feeds Restore a legacy gob (format v1) stream and
// expects bit-identical labels — old snapshots must stay restorable.
func TestRestoreReadsV1(t *testing.T) {
	d := loadString(t, figure2XML, p42)
	if _, err := d.InsertElement(d.X.Root.Child(0), 0, "D"); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteSubtree(d.X.Root.Child(1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := storage.WriteLegacySnapshot(&buf, d.Image()); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Check(); err != nil {
		t.Fatal(err)
	}
	want, got := d.tree.Nums(), restored.tree.Nums()
	if len(want) != len(got) {
		t.Fatalf("%d labels, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("label %d: %d, want %d", i, got[i], want[i])
		}
	}
	if restored.X.String() != d.X.String() {
		t.Fatal("document text changed through v1 round trip")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage restore should fail")
	}
}

func TestMove(t *testing.T) {
	d := loadString(t, `<r><a><x/><y/></a><b/></r>`, p42)
	a := d.X.Root.Child(0)
	b := d.X.Root.Child(1)
	x := a.Child(0)
	relBefore := d.Stats().Relabelings()
	if err := d.Move(x, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if x.Parent() != b {
		t.Fatal("move did not reparent")
	}
	// Labels reflect the new position.
	if anc, _ := d.IsAncestor(b, x); !anc {
		t.Fatal("b should contain x after move")
	}
	if anc, _ := d.IsAncestor(a, x); anc {
		t.Fatal("a should no longer contain x")
	}
	// Move cost: tombstones (free) + one bulk run.
	if moved := d.Stats().Relabelings() - relBefore; moved == 0 {
		t.Fatal("move must relabel the moved tokens")
	}
	st := d.Stats()
	if st.BulkInserts != 1 {
		t.Fatalf("move should use one run insertion, got %d", st.BulkInserts)
	}

	// Error paths.
	if err := d.Move(d.X.Root, b, 0); err != ErrRootEdit {
		t.Fatalf("moving root = %v", err)
	}
	if err := d.Move(b, b.Child(0), 0); err != xmldom.ErrCycle {
		t.Fatalf("moving into own subtree = %v", err)
	}
	stranger := xmldom.NewElement("s")
	if err := d.Move(stranger, b, 0); err != ErrUnbound {
		t.Fatalf("moving stranger = %v", err)
	}
	if err := d.Move(x, stranger, 0); err != ErrUnbound {
		t.Fatalf("moving onto stranger = %v", err)
	}
}

func TestMoveStress(t *testing.T) {
	d := loadString(t, `<r><a/><b/><c/></r>`, p42)
	rng := rand.New(rand.NewSource(9))
	// Grow, then shuffle subtrees around randomly.
	for i := 0; i < 150; i++ {
		els := d.Elements("*")
		parent := els[rng.Intn(len(els))]
		if _, err := d.InsertElement(parent, rng.Intn(parent.NumChildren()+1), "n"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 120; i++ {
		els := d.Elements("*")
		n := els[rng.Intn(len(els))]
		target := els[rng.Intn(len(els))]
		if n == d.X.Root || target == n {
			continue
		}
		// Skip cycles; Move reports them, and that is fine too.
		err := d.Move(n, target, rng.Intn(target.NumChildren()+1))
		if err != nil && err != xmldom.ErrCycle && err != ErrUnbound {
			t.Fatalf("move %d: %v", i, err)
		}
		if i%20 == 19 {
			if err := d.Check(); err != nil {
				t.Fatalf("move %d: %v", i, err)
			}
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}
