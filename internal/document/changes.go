package document

import (
	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Changes is the index-relevant effect of a batch of document mutations:
// which elements were bound (inserted), which were unbound (deleted or the
// removal half of a move), and which kept their identity but had a leaf
// renumbered by L-Tree maintenance (splits, rebuilds). Text nodes are not
// recorded — the tag index only stores elements.
//
// The three sets are exactly what an incremental tag index needs to patch
// itself copy-on-write: drop Removed, re-read labels for Touched, insert
// Added with their fresh labels. A node may appear in more than one set
// (a moved subtree's elements are Removed and then Added); consumers
// resolve that by checking whether the node is still bound at apply time.
//
// Removed carries the element's begin label captured at its first unbind
// in the batch — the last position the element verifiably held. A chunked
// index uses it to route the removal to the one chunk that holds the
// entry instead of scanning the tag (sound whenever the tag saw no
// relabeling in the same batch; see index.patchTag).
type Changes struct {
	Added   map[*xmldom.Node]struct{}
	Removed map[*xmldom.Node]uint64
	Touched map[*xmldom.Node]struct{}
}

func newChanges() *Changes {
	return &Changes{
		Added:   make(map[*xmldom.Node]struct{}),
		Removed: make(map[*xmldom.Node]uint64),
		Touched: make(map[*xmldom.Node]struct{}),
	}
}

// Empty reports whether the batch recorded nothing.
func (c *Changes) Empty() bool {
	return c == nil || (len(c.Added) == 0 && len(c.Removed) == 0 && len(c.Touched) == 0)
}

// TrackChanges starts recording mutations into an internal change set and
// installs the L-Tree relabel hook so maintenance renumberings are
// captured too. Call TakeChanges to drain the set. Tracking stays enabled
// for the lifetime of the document.
func (d *Doc) TrackChanges() {
	if d.rec != nil {
		return
	}
	d.rec = newChanges()
	d.tree.SetRelabelHook(func(lf *core.Node) {
		// Tombstoned leaves still get renumbered by maintenance, but their
		// nodes left the index when they were removed — recording them
		// would resurrect long-dead elements as "touched".
		if lf.Deleted() {
			return
		}
		n, ok := lf.Payload().(*xmldom.Node)
		if !ok || n.Kind() != xmldom.Element {
			return
		}
		d.rec.Touched[n] = struct{}{}
	})
}

// ChangesPending reports whether mutations have been recorded since the
// last TakeChanges — a non-destructive peek (snapshot stamping uses it
// to decide whether the published index still describes the document).
func (d *Doc) ChangesPending() bool { return d.rec != nil && !d.rec.Empty() }

// TakeChanges returns the mutations recorded since the last call and
// resets the set. It returns nil when tracking is off or nothing changed.
func (d *Doc) TakeChanges() *Changes {
	if d.rec == nil || d.rec.Empty() {
		return nil
	}
	out := d.rec
	d.rec = newChanges()
	return out
}

// recordAdded notes a freshly bound element.
func (d *Doc) recordAdded(n *xmldom.Node) {
	if d.rec != nil && n.Kind() == xmldom.Element {
		d.rec.Added[n] = struct{}{}
	}
}

// recordRemoved notes an unbound element and the begin label it held.
// The first removal in a batch wins: a node removed, re-added, and
// removed again still sat at its original position in the last published
// index, which is the position the label must name.
func (d *Doc) recordRemoved(n *xmldom.Node, begin uint64) {
	if d.rec != nil && n.Kind() == xmldom.Element {
		if _, dup := d.rec.Removed[n]; !dup {
			d.rec.Removed[n] = begin
		}
	}
}
