package document

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// snapshot is the on-wire representation: the DOM (structurally, so token
// boundaries survive exactly — textual XML would merge adjacent text
// nodes on reparse) plus the exact L-Tree state (labels, tombstones,
// height). Nothing else is needed: the tree structure is implicit in the
// labels (paper §4.2).
type snapshot struct {
	Format  int // format version
	F, S    int
	Wide    bool
	Height  int
	Labels  []uint64
	Deleted []bool
	Root    nodeRec
}

// snapshotFormat is the current wire version.
const snapshotFormat = 1

// nodeRec is the gob-friendly recursive DOM image.
type nodeRec struct {
	Kind     int
	Tag      string
	Data     string
	Attrs    []xmldom.Attr
	Children []nodeRec
}

func toRec(n *xmldom.Node) nodeRec {
	rec := nodeRec{
		Kind: int(n.Kind()),
		Tag:  n.Tag(),
		Data: n.Data(),
	}
	if attrs := n.Attrs(); len(attrs) > 0 {
		rec.Attrs = append([]xmldom.Attr(nil), attrs...)
	}
	for _, c := range n.Children() {
		rec.Children = append(rec.Children, toRec(c))
	}
	return rec
}

func fromRec(rec nodeRec) (*xmldom.Node, error) {
	var n *xmldom.Node
	switch xmldom.Kind(rec.Kind) {
	case xmldom.Element:
		n = xmldom.NewElement(rec.Tag, rec.Attrs...)
	case xmldom.Text:
		n = xmldom.NewText(rec.Data)
	default:
		return nil, fmt.Errorf("document: restore: unknown node kind %d", rec.Kind)
	}
	for _, cr := range rec.Children {
		c, err := fromRec(cr)
		if err != nil {
			return nil, err
		}
		if err := n.AppendChild(c); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Snapshot serializes the labeled document so Restore can bring it back
// with bit-identical labels — no relabeling on restart.
func (d *Doc) Snapshot(w io.Writer) error {
	labels, deleted, height := d.tree.SnapshotState()
	p := d.tree.Params()
	return gob.NewEncoder(w).Encode(snapshot{
		Format:  snapshotFormat,
		F:       p.F,
		S:       p.S,
		Wide:    p.WideRadix,
		Height:  height,
		Labels:  labels,
		Deleted: deleted,
		Root:    toRec(d.X.Root),
	})
}

// Restore reconstructs a labeled document from a Snapshot stream. Labels,
// tombstone slots and the tree height come back exactly as saved.
func Restore(r io.Reader) (*Doc, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("document: restore: %w", err)
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("document: restore: unsupported format %d", snap.Format)
	}
	root, err := fromRec(snap.Root)
	if err != nil {
		return nil, err
	}
	x, err := xmldom.NewDocument(root)
	if err != nil {
		return nil, fmt.Errorf("document: restore: %w", err)
	}
	p := core.Params{F: snap.F, S: snap.S, WideRadix: snap.Wide}
	tree, leaves, err := core.FromLabels(p, snap.Labels, snap.Deleted, snap.Height)
	if err != nil {
		return nil, fmt.Errorf("document: restore: %w", err)
	}
	// Bind the document's tokens to the live (non-tombstoned) leaves in
	// order; tombstoned slots have no XML token by construction.
	tokens := x.Tokens()
	live := make([]*core.Node, 0, len(tokens))
	for _, lf := range leaves {
		if !lf.Deleted() {
			live = append(live, lf)
		}
	}
	if len(live) != len(tokens) {
		return nil, fmt.Errorf("document: restore: %d live labels for %d tokens", len(live), len(tokens))
	}
	d := &Doc{X: x, tree: tree, bind: make(map[*xmldom.Node]binding, len(tokens)/2+1)}
	d.bindTokens(tokens, live)
	if err := d.Check(); err != nil {
		return nil, fmt.Errorf("document: restore: %w", err)
	}
	return d, nil
}
