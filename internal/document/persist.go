package document

import (
	"fmt"
	"io"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// This file bridges the labeled document to the persistence layer: it
// projects a Doc onto storage.Image (the codec-neutral snapshot: exact
// L-Tree state plus the DOM, nothing more — the tree structure is
// implicit in the labels, paper §4.2) and rebuilds a Doc from one. The
// wire formats themselves live in internal/storage.

func toRec(n *xmldom.Node) storage.NodeRec {
	rec := storage.NodeRec{
		Kind: int(n.Kind()),
		Tag:  n.Tag(),
		Data: n.Data(),
	}
	for _, a := range n.Attrs() {
		rec.Attrs = append(rec.Attrs, storage.AttrRec{Name: a.Name, Value: a.Value})
	}
	for _, c := range n.Children() {
		rec.Children = append(rec.Children, toRec(c))
	}
	return rec
}

func fromRec(rec *storage.NodeRec) (*xmldom.Node, error) {
	var n *xmldom.Node
	switch xmldom.Kind(rec.Kind) {
	case xmldom.Element:
		attrs := make([]xmldom.Attr, len(rec.Attrs))
		for i, a := range rec.Attrs {
			attrs[i] = xmldom.Attr{Name: a.Name, Value: a.Value}
		}
		n = xmldom.NewElement(rec.Tag, attrs...)
	case xmldom.Text:
		n = xmldom.NewText(rec.Data)
	default:
		return nil, fmt.Errorf("document: restore: unknown node kind %d", rec.Kind)
	}
	for i := range rec.Children {
		c, err := fromRec(&rec.Children[i])
		if err != nil {
			return nil, err
		}
		if err := n.AppendChild(c); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Image projects the document onto the codec-neutral snapshot image.
func (d *Doc) Image() *storage.Image {
	labels, deleted, height := d.tree.SnapshotState()
	p := d.tree.Params()
	return &storage.Image{
		F:       p.F,
		S:       p.S,
		Wide:    p.WideRadix,
		Height:  height,
		Labels:  labels,
		Deleted: deleted,
		Root:    toRec(d.X.Root),
	}
}

// FromImage rebuilds a labeled document from a snapshot image. Labels,
// tombstone slots and the tree height come back exactly as saved.
func FromImage(img *storage.Image) (*Doc, error) {
	root, err := fromRec(&img.Root)
	if err != nil {
		return nil, err
	}
	x, err := xmldom.NewDocument(root)
	if err != nil {
		return nil, fmt.Errorf("document: restore: %w", err)
	}
	p := core.Params{F: img.F, S: img.S, WideRadix: img.Wide}
	tree, leaves, err := core.FromLabels(p, img.Labels, img.Deleted, img.Height)
	if err != nil {
		return nil, fmt.Errorf("document: restore: %w", err)
	}
	// Bind the document's tokens to the live (non-tombstoned) leaves in
	// order; tombstoned slots have no XML token by construction.
	tokens := x.Tokens()
	live := make([]*core.Node, 0, len(tokens))
	for _, lf := range leaves {
		if !lf.Deleted() {
			live = append(live, lf)
		}
	}
	if len(live) != len(tokens) {
		return nil, fmt.Errorf("document: restore: %d live labels for %d tokens", len(live), len(tokens))
	}
	d := &Doc{X: x, tree: tree, bind: make(map[*xmldom.Node]binding, len(tokens)/2+1)}
	d.restoredRoot, d.hasRestoredRoot = img.IndexRoot, img.HasIndexRoot
	d.bindTokens(tokens, live)
	if err := d.Check(); err != nil {
		return nil, fmt.Errorf("document: restore: %w", err)
	}
	return d, nil
}

// Snapshot serializes the labeled document (format v2) so Restore can
// bring it back with bit-identical labels — no relabeling on restart.
func (d *Doc) Snapshot(w io.Writer) error {
	return storage.WriteSnapshot(w, d.Image())
}

// SnapshotStamped is Snapshot with an index root hash embedded in the
// image header (storage.SnapshotRootHash peeks it back without a
// decode). The hash is an annotation about the index the document
// implies; the caller owns its accuracy.
func (d *Doc) SnapshotStamped(w io.Writer, root [32]byte) error {
	img := d.Image()
	img.IndexRoot, img.HasIndexRoot = root, true
	return storage.WriteSnapshot(w, img)
}

// RestoredIndexRoot returns the index root hash the restore snapshot
// carried, if any — the hook restore-time integrity verification
// compares a freshly built index against.
func (d *Doc) RestoredIndexRoot() ([32]byte, bool) {
	return d.restoredRoot, d.hasRestoredRoot
}

// Restore reconstructs a labeled document from a Snapshot stream; both
// the current v2 format and legacy v1 gob streams are accepted.
func Restore(r io.Reader) (*Doc, error) {
	img, err := storage.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("document: restore: %w", err)
	}
	return FromImage(img)
}
