package document

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/xmldom"
)

var p42 = core.Params{F: 4, S: 2}

// figure2XML is the document of the paper's Figure 2: <A><B><C/></B><D/></A>.
const figure2XML = `<A><B><C/></B><D/></A>`

func loadString(t *testing.T, src string, p core.Params) *Doc {
	t.Helper()
	d, err := Parse(strings.NewReader(src), p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFigure2Document(t *testing.T) {
	d := loadString(t, figure2XML, p42)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	a := d.X.Root
	b := a.Child(0)
	c := b.Child(0)
	dd := a.Child(1)
	want := map[*xmldom.Node]Label{
		a:  {0, 13},
		b:  {1, 9},
		c:  {3, 4},
		dd: {10, 12},
	}
	for n, w := range want {
		got, err := d.Label(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("<%s> label = %v, want %v", n.Tag(), got, w)
		}
	}
	// Paper's containment semantics.
	if anc, _ := d.IsAncestor(a, c); !anc {
		t.Fatal("A should contain C")
	}
	if anc, _ := d.IsAncestor(b, dd); anc {
		t.Fatal("B should not contain D")
	}
	if cmp, _ := d.Compare(b, dd); cmp != -1 {
		t.Fatalf("B before D, got %d", cmp)
	}

	// Figure 2(c)+(d): insert <D/> before <C/> under B — two leaf inserts.
	dNew, err := d.InsertElement(b, 0, "D")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	lab, _ := d.Label(dNew)
	if lab != (Label{3, 4}) {
		t.Fatalf("new D label = %v, want {3 4}", lab)
	}
	labC, _ := d.Label(c)
	if labC != (Label{6, 7}) {
		t.Fatalf("C label = %v, want {6 7} (post split)", labC)
	}
	labB, _ := d.Label(b)
	if labB != (Label{1, 9}) {
		t.Fatalf("B label moved: %v", labB)
	}
}

func TestInsertSubtreeRun(t *testing.T) {
	d := loadString(t, `<root><a/><b/></root>`, p42)
	sub := xmldom.NewElement("sub")
	for i := 0; i < 5; i++ {
		el := xmldom.NewElement("x")
		if err := sub.AppendChild(el); err != nil {
			t.Fatal(err)
		}
		if err := el.AppendChild(xmldom.NewText("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.InsertSubtree(d.X.Root, 1, sub); err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.BulkInserts != 1 {
		t.Fatalf("bulk inserts = %d, want 1 (one §4.1 run)", st.BulkInserts)
	}
	if st.BulkLeaves != uint64(sub.CountTokens()) {
		t.Fatalf("bulk leaves = %d, want %d", st.BulkLeaves, sub.CountTokens())
	}
	// Order: a < sub < b.
	labA, _ := d.Label(d.X.Root.Child(0))
	labS, _ := d.Label(sub)
	labB, _ := d.Label(d.X.Root.Child(2))
	if !(labA.End < labS.Begin && labS.End < labB.Begin) {
		t.Fatalf("subtree order wrong: %v %v %v", labA, labS, labB)
	}
}

func TestDeleteSubtreeTombstones(t *testing.T) {
	d := loadString(t, `<root><a><x/><y/></a><b/></root>`, p42)
	a := d.X.Root.Child(0)
	before := d.Stats().Relabelings()
	if err := d.DeleteSubtree(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Relabelings(); got != before {
		t.Fatalf("deletion relabeled %d nodes; the paper promises zero", got-before)
	}
	if d.Tree().Live() != d.X.CountTokens() {
		t.Fatalf("live %d != tokens %d", d.Tree().Live(), d.X.CountTokens())
	}
	if _, err := d.Label(a); !errors.Is(err, ErrUnbound) {
		t.Fatalf("deleted node still labeled: %v", err)
	}
	// Root cannot be deleted.
	if err := d.DeleteSubtree(d.X.Root); !errors.Is(err, ErrRootEdit) {
		t.Fatalf("root delete = %v", err)
	}
	// Compaction reclaims slots and keeps the binding valid.
	if err := d.CompactLabels(); err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Tree().Len() != d.X.CountTokens() {
		t.Fatalf("after compact: %d slots for %d tokens", d.Tree().Len(), d.X.CountTokens())
	}
}

func TestUnboundErrors(t *testing.T) {
	d := loadString(t, `<root><a/></root>`, p42)
	stranger := xmldom.NewElement("s")
	if _, err := d.Label(stranger); !errors.Is(err, ErrUnbound) {
		t.Fatalf("Label(stranger) = %v", err)
	}
	if err := d.InsertSubtree(stranger, 0, xmldom.NewElement("x")); !errors.Is(err, ErrUnbound) {
		t.Fatalf("InsertSubtree(unbound parent) = %v", err)
	}
	if err := d.DeleteSubtree(stranger); !errors.Is(err, ErrUnbound) {
		t.Fatalf("DeleteSubtree(stranger) = %v", err)
	}
}

// TestRandomEditsAgainstDOM performs random structural edits and verifies
// after each batch that label-derived ancestry and order agree with the
// DOM ground truth.
func TestRandomEditsAgainstDOM(t *testing.T) {
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 6, S: 3}} {
		d := loadString(t, `<root><a/></root>`, p)
		rng := rand.New(rand.NewSource(77))
		elements := []*xmldom.Node{d.X.Root, d.X.Root.Child(0)}
		for i := 0; i < 300; i++ {
			parent := elements[rng.Intn(len(elements))]
			idx := rng.Intn(parent.NumChildren() + 1)
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				el, err := d.InsertElement(parent, idx, "e")
				if err != nil {
					t.Fatal(err)
				}
				elements = append(elements, el)
			case 6, 7:
				if _, err := d.InsertText(parent, idx, "txt"); err != nil {
					t.Fatal(err)
				}
			default:
				sub := xmldom.NewElement("s")
				for j := 0; j < rng.Intn(4)+1; j++ {
					if err := sub.AppendChild(xmldom.NewElement("c")); err != nil {
						t.Fatal(err)
					}
				}
				if err := d.InsertSubtree(parent, idx, sub); err != nil {
					t.Fatal(err)
				}
				elements = append(elements, sub)
			}
			if i%50 == 49 {
				if err := d.Check(); err != nil {
					t.Fatalf("%v edit %d: %v", p, i, err)
				}
				verifyAncestry(t, d)
			}
		}
		if err := d.Check(); err != nil {
			t.Fatal(err)
		}
		verifyAncestry(t, d)
	}
}

// verifyAncestry cross-checks label containment against DOM parent links
// for a sample of node pairs.
func verifyAncestry(t *testing.T, d *Doc) {
	t.Helper()
	nodes := d.Elements("*")
	rng := rand.New(rand.NewSource(int64(len(nodes))))
	isAncestorDOM := func(a, x *xmldom.Node) bool {
		for v := x.Parent(); v != nil; v = v.Parent() {
			if v == a {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 200; trial++ {
		a := nodes[rng.Intn(len(nodes))]
		x := nodes[rng.Intn(len(nodes))]
		byLabel, err := d.IsAncestor(a, x)
		if err != nil {
			t.Fatal(err)
		}
		if byLabel != isAncestorDOM(a, x) {
			la, _ := d.Label(a)
			lx, _ := d.Label(x)
			t.Fatalf("ancestry mismatch: labels %v vs %v, DOM says %v", la, lx, isAncestorDOM(a, x))
		}
	}
}

func TestTagIndex(t *testing.T) {
	d := loadString(t, `<r><a/><b><a/></b><a/></r>`, p42)
	idx := d.BuildTagIndex()
	if len(idx["a"]) != 3 || len(idx["b"]) != 1 || len(idx["r"]) != 1 {
		t.Fatalf("index sizes wrong: %d a, %d b", len(idx["a"]), len(idx["b"]))
	}
	for i := 1; i < len(idx["a"]); i++ {
		if idx["a"][i-1].Label.Begin >= idx["a"][i].Label.Begin {
			t.Fatal("postings not begin-sorted")
		}
	}
	if idx["b"][0].Level != 1 {
		t.Fatalf("b level = %d", idx["b"][0].Level)
	}
	inner := idx["a"][1]
	if inner.Level != 2 {
		t.Fatalf("nested a level = %d", inner.Level)
	}
}
