package index

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ltree-db/ltree/internal/document"
)

// DefaultChunkSize is the target chunk capacity: the copy-on-write floor
// of a single-posting patch. 256 entries keeps a chunk around 10KB — big
// enough that the per-chunk directory stays tiny, small enough that the
// copy is a short memmove.
const DefaultChunkSize = 256

// chunk is an immutable run of begin-sorted postings. Once a chunk is
// referenced by a published index version it is never mutated; patches
// build replacement chunks and share the rest.
type chunk struct {
	entries []document.Entry // 1 <= len <= chunkSize

	// sum caches the chunk's content digest (hash.go), computed lazily
	// at most once — immutability makes the cache safe to share across
	// every version referencing the chunk.
	sumOnce sync.Once
	sum     digest
}

func (c *chunk) minBegin() uint64 { return c.entries[0].Label.Begin }
func (c *chunk) maxBegin() uint64 { return c.entries[len(c.entries)-1].Label.Begin }

// fence summarizes one chunk for routing and skip scans: its first and
// last begin labels, plus the maximum end label of any entry in the
// chunk. Begins are monotone across the directory so (min, max) drives
// binary-searched Seeks; maxEnd is NOT monotone (an early chunk may hold
// the root's huge interval) and drives the zig-zag join's SeekOpen —
// a chunk with maxEnd < target provably holds only intervals closed
// before the target, so a context-side skip discards it whole. Fences
// are kept in their own pointer-free packed array so a directory copy is
// a plain memmove (no write barriers) and a cursor's Seek binary-searches
// cache-dense uint64 triples — the fences double as a skip index over the
// chunk sequence, in the spirit of the clustered per-tag layouts of
// succinct labeled-tree representations.
type fence struct {
	min    uint64
	max    uint64
	maxEnd uint64
}

// postings is one tag's chunked posting list: parallel fence, summary
// and chunk arrays (the directory; fences[i] and sums[i] describe
// chunks[i]) plus the entry total. A patch copies the directory —
// pointer-free fence and summary bytes plus one pointer per chunk — and
// the chunks it touches; everything else is shared between versions.
// The summaries are per-chunk attribute blooms (document.AttrSummary)
// computed once when an immutable chunk is built; predicate-filtered
// cursors consult them to reject whole chunks before decoding postings.
type postings struct {
	fences []fence
	sums   []document.AttrSummary
	chunks []*chunk
	count  int

	// sum caches the tag's content digest — the lane-wise sum of its
	// chunks' digests (hash.go) — computed lazily at most once per
	// version. Untouched tags share the postings pointer across
	// versions, so their digest is computed once ever.
	sumOnce sync.Once
	sum     digest
}

// builder accumulates a directory during a patch pass.
type builder struct {
	fences []fence
	sums   []document.AttrSummary
	chunks []*chunk
}

// grown pre-sizes a builder for about n chunks.
func grown(n int) builder {
	return builder{
		fences: make([]fence, 0, n),
		sums:   make([]document.AttrSummary, 0, n),
		chunks: make([]*chunk, 0, n),
	}
}

// share appends an existing chunk with its fence and summary unchanged.
func (b *builder) share(f fence, s document.AttrSummary, c *chunk) {
	b.fences = append(b.fences, f)
	b.sums = append(b.sums, s)
	b.chunks = append(b.chunks, c)
}

// add wraps a fresh entry run as one chunk and computes its fence and
// attribute summary. This is the one place chunk metadata is born: a
// rebuilt chunk re-reads its entries' labels and attributes, so fences
// and summaries published by Apply are always exact for their entries.
func (b *builder) add(es []document.Entry) {
	c := &chunk{entries: es}
	f := fence{min: c.minBegin(), max: c.maxBegin()}
	var s document.AttrSummary
	for _, e := range es {
		if e.Label.End > f.maxEnd {
			f.maxEnd = e.Label.End
		}
		s.AddNode(e.Node)
	}
	b.fences = append(b.fences, f)
	b.sums = append(b.sums, s)
	b.chunks = append(b.chunks, c)
}

// addRun splits a begin-sorted entry run into balanced chunks of at
// most size entries each. Balancing (rather than greedy filling) keeps
// every emitted chunk at least size/2 when the run overflows, so splits
// never create an undersized remainder.
func (b *builder) addRun(es []document.Entry, size int) {
	n := len(es)
	if n == 0 {
		return
	}
	k := (n + size - 1) / size
	base, rem := n/k, n%k
	for lo := 0; lo < n; {
		hi := lo + base
		if rem > 0 {
			hi++
			rem--
		}
		b.add(es[lo:hi:hi])
		lo = hi
	}
}

// posting finalizes the builder into a postings value.
func (b *builder) postings() *postings {
	p := &postings{fences: b.fences, sums: b.sums, chunks: b.chunks}
	for _, c := range b.chunks {
		p.count += len(c.entries)
	}
	return p
}

// chunkify builds a tag's chunked postings from a begin-sorted run.
func chunkify(es []document.Entry, size int) *postings {
	b := grown((len(es) + size - 1) / size)
	b.addRun(es, size)
	return b.postings()
}

// flatten materializes the full begin-sorted run.
func (p *postings) flatten() []document.Entry {
	if p == nil {
		return nil
	}
	out := make([]document.Entry, 0, p.count)
	for _, c := range p.chunks {
		out = append(out, c.entries...)
	}
	return out
}

// appendTo appends every entry to dst (an allocation-free flatten step
// for the all-elements merge).
func (p *postings) appendTo(dst []document.Entry) []document.Entry {
	if p == nil {
		return dst
	}
	for _, c := range p.chunks {
		dst = append(dst, c.entries...)
	}
	return dst
}

// mergeUnderflow re-balances a patched directory: a chunk that shrank
// below size/4 absorbs following chunks (or, at the tail, its
// predecessor) until the run reaches the floor again, then re-splits
// balanced. Chunks already at or above the floor pass through untouched,
// so the work stays proportional to the chunks the batch shrank. A tag
// whose entire population fits below the floor keeps one undersized
// chunk — the only-chunk exception.
func mergeUnderflow(b builder, size int) builder {
	min := size / 4
	if min < 1 {
		min = 1
	}
	if len(b.chunks) < 2 {
		return b
	}
	ok := true
	for _, c := range b.chunks {
		if len(c.entries) < min {
			ok = false
			break
		}
	}
	if ok {
		return b
	}
	out := grown(len(b.chunks))
	for i := 0; i < len(b.chunks); {
		if len(b.chunks[i].entries) >= min {
			out.share(b.fences[i], b.sums[i], b.chunks[i])
			i++
			continue
		}
		run := append([]document.Entry(nil), b.chunks[i].entries...)
		i++
		for len(run) < min && i < len(b.chunks) {
			run = append(run, b.chunks[i].entries...)
			i++
		}
		if len(run) < min && len(out.chunks) > 0 {
			prev := out.chunks[len(out.chunks)-1]
			out.fences = out.fences[:len(out.fences)-1]
			out.sums = out.sums[:len(out.sums)-1]
			out.chunks = out.chunks[:len(out.chunks)-1]
			run = append(append([]document.Entry(nil), prev.entries...), run...)
		}
		out.addRun(run, size)
	}
	return out
}

// checkChunks validates the chunk invariants for one tag: fences match
// the entries (min/max begin exact, maxEnd covering every entry's end),
// sizes stay within [size/4, size] (the floor waived for a tag's only
// chunk), begins strictly increase within and across chunks, the
// attribute summary holds every key actually present in the chunk (a
// lost key would make predicate pushdown silently drop matches, so it
// is checked loudly here), and the directory count matches the entry
// total.
func (p *postings) checkChunks(tag string, size int, sumsFresh bool) error {
	min := size / 4
	if min < 1 {
		min = 1
	}
	if len(p.fences) != len(p.chunks) {
		return fmt.Errorf("index: tag %q has %d fences for %d chunks", tag, len(p.fences), len(p.chunks))
	}
	if len(p.sums) != len(p.chunks) {
		return fmt.Errorf("index: tag %q has %d attr summaries for %d chunks", tag, len(p.sums), len(p.chunks))
	}
	total := 0
	prev := uint64(0)
	first := true
	for i, c := range p.chunks {
		n := len(c.entries)
		if n == 0 {
			return fmt.Errorf("index: tag %q chunk %d is empty", tag, i)
		}
		if n > size {
			return fmt.Errorf("index: tag %q chunk %d holds %d entries, max %d", tag, i, n, size)
		}
		if n < min && len(p.chunks) > 1 {
			return fmt.Errorf("index: tag %q chunk %d holds %d entries, floor %d", tag, i, n, min)
		}
		if p.fences[i].min != c.minBegin() || p.fences[i].max != c.maxBegin() {
			return fmt.Errorf("index: tag %q chunk %d fences (%d,%d) disagree with entries (%d,%d)",
				tag, i, p.fences[i].min, p.fences[i].max, c.minBegin(), c.maxBegin())
		}
		for _, e := range c.entries {
			if !first && e.Label.Begin <= prev {
				return fmt.Errorf("index: tag %q begin %d out of order in chunk %d", tag, e.Label.Begin, i)
			}
			if e.Label.End > p.fences[i].maxEnd {
				return fmt.Errorf("index: tag %q chunk %d maxEnd fence %d below entry end %d",
					tag, i, p.fences[i].maxEnd, e.Label.End)
			}
			if sumsFresh {
				for _, a := range e.Node.Attrs() {
					if !p.sums[i].MayContain(document.AttrKeyHash(a.Name)) {
						return fmt.Errorf("index: tag %q chunk %d summary lost attr key %q", tag, i, a.Name)
					}
					if !p.sums[i].MayContain(document.AttrKVHash(a.Name, a.Value)) {
						return fmt.Errorf("index: tag %q chunk %d summary lost attr pair %s=%q", tag, i, a.Name, a.Value)
					}
				}
			}
			prev = e.Label.Begin
			first = false
			total++
		}
	}
	if total != p.count {
		return fmt.Errorf("index: tag %q directory count %d, entries %d", tag, p.count, total)
	}
	return nil
}

// chunkCursor streams a chunked posting list. Seek uses the packed
// fence array to discard whole chunks before descending into one — the
// skip step that accelerates structural joins over large tags. Two
// opt-in extensions skip further without decoding postings:
//
//   - FilterChunks (predicate pushdown): required attribute-key hashes,
//     installed by the query layer for a predicate-bearing step; a chunk
//     whose summary proves any required key absent is rejected whole.
//   - SeekOpen (zig-zag context skip): discards chunks whose maxEnd
//     fence proves every interval closed before the target.
type chunkCursor struct {
	fences    []fence
	sums      []document.AttrSummary
	chunks    []*chunk
	required  []uint64     // conjunctive attr-key hashes; nil = no pushdown
	stats     *CursorStats // optional skip/decode accounting; nil = off
	sumsStale bool         // summaries predate an attr mutation: ignore them
	ci        int          // current chunk
	ei        int          // next entry within it
	decoded   int          // last chunk counted as decoded (stats), -1 none
}

// FilterChunks implements document.ChunkFilter: install the required
// attribute-key hashes. The resulting stream omits chunks that provably
// contain no entry carrying every key — a superset of the matching
// entries, not the full tag stream. When the version's summaries are
// stale (an attribute mutated below the document layer since the last
// full build), the install is a no-op: a stale summary can hold false
// negatives, and a skipped chunk is a silently dropped match — so the
// cursor serves the full stream and leaves filtering to the per-entry
// predicate check above it.
func (c *chunkCursor) FilterChunks(required []uint64) {
	if c.sumsStale {
		return
	}
	c.required = required
}

// passes reports whether chunk i may contain entries with every required
// attribute key.
func (c *chunkCursor) passes(i int) bool {
	for _, h := range c.required {
		if !c.sums[i].MayContain(h) {
			return false
		}
	}
	return true
}

// admit advances past filter-rejected chunks. Only whole, unentered
// chunks are tested (ei == 0): once a chunk yielded an entry it stays
// admitted.
func (c *chunkCursor) admit() {
	if c.required == nil {
		return
	}
	for c.ei == 0 && c.ci < len(c.chunks) && !c.passes(c.ci) {
		c.ci++
		if c.stats != nil {
			c.stats.SkippedFilter.Add(1)
		}
	}
}

// note counts the current chunk as decoded (first entry touched) at most
// once per chunk.
func (c *chunkCursor) note() {
	if c.stats != nil && c.decoded != c.ci+1 {
		c.decoded = c.ci + 1
		c.stats.Decoded.Add(1)
	}
}

// Next implements document.Cursor.
func (c *chunkCursor) Next() (document.Entry, bool) {
	for c.ci < len(c.chunks) {
		if c.ei == 0 {
			c.admit()
			if c.ci >= len(c.chunks) {
				break
			}
		}
		es := c.chunks[c.ci].entries
		if c.ei < len(es) {
			c.note()
			e := es[c.ei]
			c.ei++
			return e, true
		}
		c.ci++
		c.ei = 0
	}
	return document.Entry{}, false
}

// Seek implements document.Cursor: binary search over the remaining
// fences, then over the landing chunk's remaining entries.
func (c *chunkCursor) Seek(begin uint64) (document.Entry, bool) {
	if c.ci < len(c.chunks) && c.fences[c.ci].max < begin {
		rest := c.fences[c.ci:]
		n := sort.Search(len(rest), func(i int) bool { return rest[i].max >= begin })
		c.ci += n
		c.ei = 0
		if c.stats != nil {
			c.stats.SkippedSeek.Add(uint64(n))
		}
	}
	if c.ei == 0 {
		c.admit()
	}
	if c.ci >= len(c.chunks) {
		return document.Entry{}, false
	}
	es := c.chunks[c.ci].entries[c.ei:]
	c.ei += sort.Search(len(es), func(i int) bool { return es[i].Label.Begin >= begin })
	return c.Next()
}

// SeekOpen implements document.OpenSeeker: advance to the first
// remaining entry whose interval may still be open at begin, skipping —
// without decoding — every chunk whose maxEnd fence proves all its
// intervals closed before the target (and, with a filter installed,
// chunks missing a required attribute key). maxEnd is not monotone
// across the directory, so this is a forward fence scan, not a binary
// search: O(chunks passed), never O(postings).
func (c *chunkCursor) SeekOpen(begin uint64) (document.Entry, bool) {
	for c.ci < len(c.chunks) {
		if c.fences[c.ci].maxEnd < begin {
			// Every entry here has End < begin (hence Begin < begin too):
			// closed before the target, irrelevant to this and every later
			// open-seek or candidate.
			c.ci++
			c.ei = 0
			if c.stats != nil {
				c.stats.SkippedEnd.Add(1)
			}
			continue
		}
		if c.ei == 0 {
			c.admit()
			if c.ci >= len(c.chunks) {
				break
			}
			if c.fences[c.ci].maxEnd < begin {
				continue // admit moved us onto another closed chunk
			}
		}
		es := c.chunks[c.ci].entries
		if c.ei < len(es) {
			c.note()
		}
		for c.ei < len(es) {
			e := es[c.ei]
			c.ei++
			if e.Label.Begin >= begin || e.Label.End >= begin {
				return e, true
			}
		}
		c.ci++
		c.ei = 0
	}
	return document.Entry{}, false
}
