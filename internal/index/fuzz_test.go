package index

import (
	"strings"
	"testing"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// FuzzChunkSplitMerge drives the chunk split/merge machinery with an
// arbitrary byte-encoded mutation script at an aggressively small chunk
// size, then checks the full invariant set after every batch: the
// patched index must match a flat ground-truth rebuild (Verify) and
// hold the chunk invariants (fences exact, sizes within [size/4, size],
// begins strictly increasing). Each script byte encodes one mutation:
// op = b%4 (insert element / insert subtree / delete / move), target
// position = b/4; a zero byte commits the pending batch. Inserted
// elements carry script-derived attributes, so the per-chunk attribute
// summaries and maxEnd fences added for predicate pushdown are on the
// fuzzed invariant surface (Verify checks every present attr key/value
// is claimed by its chunk's summary and no entry End exceeds maxEnd).
func FuzzChunkSplitMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 9, 13, 0, 17, 21, 0})
	f.Add([]byte{1, 1, 1, 1, 0, 2, 2, 2, 0, 3, 3, 3, 0})
	f.Add([]byte{255, 254, 253, 0, 252, 251, 0, 5, 5, 5, 5, 5, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			t.Skip("script budget")
		}
		d, err := document.Parse(strings.NewReader(`<r><a id="v1"/><b cat="rare" role="v0"/></r>`), core.Params{F: 4, S: 2})
		if err != nil {
			t.Fatal(err)
		}
		d.TrackChanges()
		ix := BuildSized(d, 4)
		d.TakeChanges()
		tags := []string{"a", "b", "c"}

		commit := func() {
			next, err := ix.Apply(d, d.TakeChanges())
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			ix = next
			if err := Verify(ix, d); err != nil {
				t.Fatal(err)
			}
		}
		for _, b := range script {
			if b == 0 {
				commit()
				continue
			}
			els := d.Elements("*")
			n := els[int(b/4)%len(els)]
			switch b % 4 {
			case 0, 1:
				el, err := d.InsertElement(n, int(b)%(n.NumChildren()+1), tags[int(b)%len(tags)])
				if err != nil {
					t.Fatal(err)
				}
				// Attach attributes before the batch commits: summaries are
				// built per immutable chunk at Apply time, so these must be
				// claimed by the owning chunk's summary or Verify fails.
				if b%3 != 0 {
					attrs := []string{"id", "cat", "role"}
					el.SetAttr(attrs[int(b/16)%len(attrs)], "v"+string(rune('0'+b%8)))
					if b%5 == 0 {
						el.SetAttr("rare", "x")
					}
				}
			case 2:
				if n != d.X.Root {
					if err := d.DeleteSubtree(n); err != nil {
						t.Fatal(err)
					}
				}
			case 3:
				target := els[int(b/8)%len(els)]
				if n == d.X.Root || target == n {
					continue
				}
				err := d.Move(n, target, int(b)%(target.NumChildren()+1))
				if err != nil && err != xmldom.ErrCycle && err != document.ErrUnbound && err != xmldom.ErrRange {
					t.Fatal(err)
				}
			}
		}
		commit()
		if err := d.Check(); err != nil {
			t.Fatal(err)
		}
	})
}
