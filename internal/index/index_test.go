package index

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

var p82 = core.Params{F: 8, S: 2}

func loadTracked(t *testing.T, src string) *document.Doc {
	t.Helper()
	d, err := document.Parse(strings.NewReader(src), p82)
	if err != nil {
		t.Fatal(err)
	}
	d.TrackChanges()
	return d
}

// equal checks an incremental index against a freshly built ground-truth
// snapshot: same tags, same nodes, same labels, same levels, same order
// (plus the chunk invariants, via Verify).
func equal(t *testing.T, got *Index, d *document.Doc) {
	t.Helper()
	if err := Verify(got, d); err != nil {
		t.Fatal(err)
	}
}

// apply drains the pending change batch into the next index version,
// failing the test on a patch error.
func apply(t *testing.T, ix *Index, d *document.Doc) *Index {
	t.Helper()
	next, err := ix.Apply(d, d.TakeChanges())
	if err != nil {
		t.Fatal(err)
	}
	return next
}

func TestApplyInsert(t *testing.T) {
	d := loadTracked(t, `<r><a/><b/></r>`)
	ix := Build(d)
	d.TakeChanges() // building already reflects the load

	if _, err := d.InsertElement(d.X.Root, 1, "c"); err != nil {
		t.Fatal(err)
	}
	ix = apply(t, ix, d)
	equal(t, ix, d)
	if len(ix.Postings("c")) != 1 {
		t.Fatal("inserted element missing from index")
	}
}

func TestApplyDelete(t *testing.T) {
	d := loadTracked(t, `<r><a><x/></a><b/></r>`)
	ix := Build(d)
	d.TakeChanges()

	if err := d.DeleteSubtree(d.X.Root.Child(0)); err != nil {
		t.Fatal(err)
	}
	ix = apply(t, ix, d)
	equal(t, ix, d)
	if len(ix.Postings("a")) != 0 || len(ix.Postings("x")) != 0 {
		t.Fatal("deleted subtree still indexed")
	}
}

func TestApplyMove(t *testing.T) {
	d := loadTracked(t, `<r><a><x/><y/></a><b/></r>`)
	ix := Build(d)
	d.TakeChanges()

	x := d.X.Root.Child(0).Child(0)
	b := d.X.Root.Child(1)
	if err := d.Move(x, b, 0); err != nil {
		t.Fatal(err)
	}
	ix = apply(t, ix, d)
	equal(t, ix, d)
}

// TestApplyRandomized drives a long random mutation stream (inserts that
// force splits, deletes, moves, subtree pastes) and checks the patched
// index against a fresh BuildTagIndex after every batch.
func TestApplyRandomized(t *testing.T) {
	d := loadTracked(t, `<r><a/><b/><c/></r>`)
	ix := Build(d)
	d.TakeChanges()
	rng := rand.New(rand.NewSource(7))
	tags := []string{"a", "b", "c", "d", "e"}

	for step := 0; step < 400; step++ {
		els := d.Elements("*")
		n := els[rng.Intn(len(els))]
		switch op := rng.Intn(10); {
		case op < 5: // insert a fresh element
			if _, err := d.InsertElement(n, rng.Intn(n.NumChildren()+1), tags[rng.Intn(len(tags))]); err != nil {
				t.Fatal(err)
			}
		case op < 6: // paste a small subtree
			sub := xmldom.NewElement(tags[rng.Intn(len(tags))])
			if err := sub.AppendChild(xmldom.NewElement(tags[rng.Intn(len(tags))])); err != nil {
				t.Fatal(err)
			}
			if err := sub.Child(0).AppendChild(xmldom.NewText("t")); err != nil {
				t.Fatal(err)
			}
			if err := d.InsertSubtree(n, rng.Intn(n.NumChildren()+1), sub); err != nil {
				t.Fatal(err)
			}
		case op < 8: // delete
			if n != d.X.Root {
				if err := d.DeleteSubtree(n); err != nil {
					t.Fatal(err)
				}
			}
		default: // move
			target := els[rng.Intn(len(els))]
			if n == d.X.Root || target == n {
				continue
			}
			// ErrRange: moving under the old parent can invalidate the slot
			// picked before the detach; the subtree ends up deleted, which
			// the index must track all the same.
			err := d.Move(n, target, rng.Intn(target.NumChildren()+1))
			if err != nil && err != xmldom.ErrCycle && err != document.ErrUnbound && err != xmldom.ErrRange {
				t.Fatal(err)
			}
		}
		ix = apply(t, ix, d)
		// Checking every step is O(n) each; the stream is small enough.
		equal(t, ix, d)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatched folds several mutations into one change batch before a
// single Apply — the Store's Update transaction shape.
func TestApplyBatched(t *testing.T) {
	d := loadTracked(t, `<r><a/><b/></r>`)
	ix := Build(d)
	d.TakeChanges()

	a := d.X.Root.Child(0)
	if _, err := d.InsertElement(a, 0, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertElement(a, 1, "y"); err != nil {
		t.Fatal(err)
	}
	x := a.Child(0)
	if err := d.DeleteSubtree(x); err != nil { // add then delete in one batch
		t.Fatal(err)
	}
	if err := d.Move(a.Child(0), d.X.Root, 0); err != nil { // y to the front
		t.Fatal(err)
	}
	ix = apply(t, ix, d)
	equal(t, ix, d)
}

// TestCopyOnWriteSharing: versions share posting lists for untouched tags
// and old versions stay intact after Apply.
func TestCopyOnWriteSharing(t *testing.T) {
	d := loadTracked(t, `<r><a/><a/><b/></r>`)
	v1 := Build(d)
	d.TakeChanges()
	bBefore := v1.Postings("b")

	if _, err := d.InsertElement(d.X.Root, 0, "a"); err != nil {
		t.Fatal(err)
	}
	v2 := apply(t, v1, d)

	if len(v1.Postings("a")) != 2 {
		t.Fatal("old version mutated by Apply")
	}
	if len(bBefore) != 1 || len(v1.Postings("b")) != 1 {
		t.Fatal("old version's b postings changed")
	}
	if len(v2.Postings("a")) != 3 {
		t.Fatal("new version missing the insert")
	}
	// Postings materializes, so sharing is asserted on the chunks
	// themselves: the untouched tag must point at the same chunk.
	if v1.tags["b"].chunks[0] != v2.tags["b"].chunks[0] {
		t.Fatal("untouched tag chunks not shared between versions")
	}
	if v1.tags["a"].chunks[0] == v2.tags["a"].chunks[0] {
		t.Fatal("patched tag still shares its chunk with the old version")
	}
}

func TestAllFlattens(t *testing.T) {
	d := loadTracked(t, `<r><a/><b/><a/></r>`)
	ix := Build(d)
	all := ix.Postings("*")
	if len(all) != 4 {
		t.Fatalf("* postings = %d, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Label.Begin >= all[i].Label.Begin {
			t.Fatal("* postings not begin-sorted")
		}
	}
}

// TestVerifyCatchesFenceCorruption: the pushdown invariants added to
// checkChunks are live — an understated maxEnd fence or a summary that
// disclaims a present attribute must fail Verify. (Soundness of chunk
// skipping depends on exactly these two properties.)
func TestVerifyCatchesFenceCorruption(t *testing.T) {
	d := loadTracked(t, `<r><a id="v1"/><a/><a cat="rare"/><a/><a role="v2"/></r>`)
	ix := BuildSized(d, 2)
	if err := Verify(ix, d); err != nil {
		t.Fatalf("clean index failed verify: %v", err)
	}
	p := ix.tags["a"]
	if len(p.chunks) < 2 {
		t.Fatalf("want >=2 chunks at size 2, got %d", len(p.chunks))
	}

	saved := p.fences[0].maxEnd
	p.fences[0].maxEnd = 0
	if err := Verify(ix, d); err == nil || !strings.Contains(err.Error(), "maxEnd") {
		t.Fatalf("understated maxEnd not caught: %v", err)
	}
	p.fences[0].maxEnd = saved

	savedSum := p.sums[0]
	p.sums[0] = document.AttrSummary{}
	if err := Verify(ix, d); err == nil || !strings.Contains(err.Error(), "summary") {
		t.Fatalf("cleared attr summary not caught: %v", err)
	}
	p.sums[0] = savedSum
	if err := Verify(ix, d); err != nil {
		t.Fatalf("restored index failed verify: %v", err)
	}
}
