package index

import (
	"strings"
	"sync"
	"testing"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
)

func retainedDoc(t *testing.T) *document.Doc {
	t.Helper()
	d, err := document.Parse(strings.NewReader(`<r><a/><b/></r>`), core.Params{F: 4, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRetainedLifecycle walks the registry through publish/pin/release
// and checks the accounting at every step.
func TestRetainedLifecycle(t *testing.T) {
	d := retainedDoc(t)
	r := NewRetained(Build(d))
	if got := r.Current().N; got != 1 {
		t.Fatalf("initial version %d, want 1", got)
	}

	v1, rel1 := r.Pin()
	if v1.N != 1 {
		t.Fatalf("pinned %d, want 1", v1.N)
	}
	if n := r.Publish(Build(d)); n != 2 {
		t.Fatalf("publish -> %d, want 2", n)
	}
	if open, retired := r.Stats(); open != 1 || retired != 1 {
		t.Fatalf("stats after retire = (%d, %d), want (1, 1)", open, retired)
	}

	// Retired-but-pinned is attachable; the new pin extends its life.
	v1b, rel1b, ok := r.PinAt(1)
	if !ok || v1b != v1 {
		t.Fatal("PinAt(1) should attach to the pinned retired version")
	}
	rel1()
	rel1() // idempotent
	_, rel1c, ok := r.PinAt(1)
	if !ok {
		t.Fatal("version 1 dropped while still pinned by the second handle")
	}
	rel1c()
	rel1b()
	if _, _, ok := r.PinAt(1); ok {
		t.Fatal("version 1 attachable after its last pin released")
	}
	if open, retired := r.Stats(); open != 0 || retired != 0 {
		t.Fatalf("stats after drain = (%d, %d), want (0, 0)", open, retired)
	}

	// Unpinned versions retire silently.
	if n := r.Publish(Build(d)); n != 3 {
		t.Fatalf("publish -> %d, want 3", n)
	}
	if _, _, ok := r.PinAt(2); ok {
		t.Fatal("unpinned version 2 should not be attachable")
	}
	if _, _, ok := r.PinAt(3); !ok {
		t.Fatal("current version must be attachable by number")
	}
}

// TestRetainedConcurrentPins hammers Pin/release against Publish: run
// under -race this pins the lock-free Current fast path against the
// registry bookkeeping, and the final accounting must come out empty.
func TestRetainedConcurrentPins(t *testing.T) {
	d := retainedDoc(t)
	r := NewRetained(Build(d))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, rel := r.Pin()
				if v.Ix == nil || v.N == 0 {
					t.Error("pinned an incomplete version")
				}
				cur := r.Current()
				if cur.N < v.N {
					t.Error("current version went backwards")
				}
				rel()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		r.Publish(Build(d))
	}
	close(stop)
	wg.Wait()
	if open, retired := r.Stats(); open != 0 || retired != 0 {
		t.Fatalf("stats after workload = (%d, %d), want (0, 0)", open, retired)
	}
	if got := r.Current().N; got != 201 {
		t.Fatalf("final version %d, want 201", got)
	}
}
