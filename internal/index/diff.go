package index

import (
	"sort"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// ChangeKind classifies one entry-level difference between two index
// versions.
type ChangeKind uint8

const (
	// Added: the node is indexed under the tag in b but not in a.
	Added ChangeKind = iota + 1
	// Removed: the node is indexed under the tag in a but not in b.
	Removed
	// Relabeled: the node is indexed in both, with a different label
	// or level (an L-Tree split renumbered it, or a move re-homed it).
	Relabeled
)

func (k ChangeKind) String() string {
	switch k {
	case Added:
		return "added"
	case Removed:
		return "removed"
	case Relabeled:
		return "relabeled"
	default:
		return "unknown"
	}
}

// Change is one entry-level difference. Old is the entry's label in a
// (zero for Added), New its label in b (zero for Removed); Level is the
// entry's level in b, or in a for Removed. OldLevel is the a-side
// entry's level — zero for Added, equal to Level for Removed, and the
// pre-move depth for Relabeled (a move can re-home a node to a
// different depth, so a relabel's two entries need not share a level).
// A consumer maintaining its own content multiset subtracts
// (Tag, Old, OldLevel) and adds (Tag, New, Level).
type Change struct {
	Tag      string
	Node     *xmldom.Node
	Kind     ChangeKind
	Old      document.Label
	New      document.Label
	Level    int
	OldLevel int
}

// DiffStats reports how much work a diff walk actually did — the
// observable behind the O(changed chunks) claim: ChunksTouched counts
// chunks whose entries were decoded, ChunksShared chunks skipped by
// pointer identity, TagsSkipped whole tags skipped by pointer or
// digest equality.
type DiffStats struct {
	Tags          int // tags in the union of both versions
	TagsSkipped   int // tags skipped whole (pointer- or digest-equal)
	ChunksShared  int // chunks skipped by pointer identity
	ChunksTouched int // chunks whose entries were decoded
	Changes       int // changes emitted
}

// Diff streams the entry-level differences from version a to version b
// through emit, walking only unequal subtrees: tags whose postings are
// pointer- or digest-equal are skipped whole, and within a changed tag
// every chunk the two versions share by pointer is skipped without
// decoding an entry. Versions derived from one another by Apply share
// every untouched chunk, so the walk costs O(changed chunks ×
// chunkSize) there; versions with unrelated chunk structure (a leader's
// live index vs a rebuilt one) degrade gracefully to comparing the
// tags whose digests disagree.
//
// Diff reports *index-content* changes. Node identity is process-local
// and absent from the content hash, so the one case where they part
// ways is resolved in the hash's favor: a removed node and an added
// node carrying the identical (tag, label, level) cancel and emit
// nothing — the index content at that position is unchanged, and a
// hash-pruned walk could not have seen it anyway. Every other change
// is reported in node terms: Relabeled pairs an entry's old and new
// label through its node pointer.
//
// Within a tag, changes stream as Relabeled (b's begin order), then
// Added (b's begin order), then Removed (a's begin order); tags stream
// in sorted order. A non-nil error from emit aborts the walk and is
// returned.
//
// Soundness leans on two index invariants: a (node, tag) pair appears
// exactly once per version (node matching pairs each node's old and
// new entry, never two stale copies), and begin labels are unique
// within a version (content cancellation is at most one-to-one).
func Diff(a, b *Index, emit func(Change) error) (DiffStats, error) {
	var st DiffStats
	if a == b || a.RootHash() == b.RootHash() {
		st.Tags = len(a.tags)
		st.TagsSkipped = len(a.tags)
		return st, nil
	}
	tags := make([]string, 0, len(a.tags)+len(b.tags))
	for tag := range a.tags {
		tags = append(tags, tag)
	}
	for tag := range b.tags {
		if _, dup := a.tags[tag]; !dup {
			tags = append(tags, tag)
		}
	}
	sort.Strings(tags)
	st.Tags = len(tags)
	for _, tag := range tags {
		pa, pb := a.tags[tag], b.tags[tag]
		if pa == pb || (pa != nil && pb != nil && pa.contentSum() == pb.contentSum()) {
			st.TagsSkipped++
			continue
		}
		if err := diffTag(tag, pa, pb, &st, emit); err != nil {
			return st, err
		}
	}
	return st, nil
}

// diffTag diffs one tag's postings. Chunks present in both directories
// are skipped by pointer identity; the entries of the remaining chunks
// are matched by node pointer.
func diffTag(tag string, pa, pb *postings, st *DiffStats, emit func(Change) error) error {
	inA := make(map[*chunk]bool)
	if pa != nil {
		for _, c := range pa.chunks {
			inA[c] = true
		}
	}
	shared := make(map[*chunk]bool)
	var onlyB []*chunk
	if pb != nil {
		for _, c := range pb.chunks {
			if inA[c] {
				shared[c] = true
				st.ChunksShared++
			} else {
				onlyB = append(onlyB, c)
				st.ChunksTouched++
			}
		}
	}
	// Old entries from a-only chunks, keyed by node. Values index a
	// flat slice so removals can later be emitted in a's begin order.
	var oldRun []document.Entry
	old := make(map[*xmldom.Node]int)
	if pa != nil {
		for _, c := range pa.chunks {
			if shared[c] {
				continue
			}
			st.ChunksTouched++
			for _, e := range c.entries {
				old[e.Node] = len(oldRun)
				oldRun = append(oldRun, e)
			}
		}
	}
	// Pass 1: pair b-side entries with their node's a-side entry. Same
	// content cancels silently, different content is a relabel; entries
	// of nodes unseen in a are deferred — whether they are additions or
	// content-neutral replacements depends on what survives pass 1.
	matched := make([]bool, len(oldRun))
	var fresh []document.Entry
	for _, c := range onlyB {
		for _, e := range c.entries {
			i, ok := old[e.Node]
			if !ok {
				fresh = append(fresh, e)
				continue
			}
			matched[i] = true
			prev := oldRun[i]
			if prev.Label != e.Label || prev.Level != e.Level {
				st.Changes++
				if err := emit(Change{Tag: tag, Node: e.Node, Kind: Relabeled, Old: prev.Label, New: e.Label, Level: e.Level, OldLevel: prev.Level}); err != nil {
					return err
				}
			}
		}
	}
	// Pass 2: cancel content-equal removed/added pairs — a different
	// node under the same (label, level) leaves the index content
	// unchanged. Begin labels are unique per version, so the content
	// key maps to at most one survivor on each side.
	type content struct {
		lab document.Label
		lvl int
	}
	leftover := make(map[content]int, len(oldRun))
	for i, e := range oldRun {
		if !matched[i] {
			leftover[content{e.Label, e.Level}] = i
		}
	}
	for _, e := range fresh {
		if i, dup := leftover[content{e.Label, e.Level}]; dup {
			matched[i] = true
			delete(leftover, content{e.Label, e.Level})
			continue
		}
		st.Changes++
		if err := emit(Change{Tag: tag, Node: e.Node, Kind: Added, New: e.Label, Level: e.Level}); err != nil {
			return err
		}
	}
	for i, e := range oldRun {
		if matched[i] {
			continue
		}
		st.Changes++
		if err := emit(Change{Tag: tag, Node: e.Node, Kind: Removed, Old: e.Label, Level: e.Level, OldLevel: e.Level}); err != nil {
			return err
		}
	}
	return nil
}
