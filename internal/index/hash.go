package index

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"github.com/ltree-db/ltree/internal/document"
)

// Hash is the 32-byte authenticated digest of one index version's
// logical content: the full multiset of (tag, begin, end, level)
// postings. Two versions carry the same Hash exactly when they index
// the same elements under the same labels — regardless of how either
// version happens to be chunked.
type Hash [32]byte

// IsZero reports whether h is the zero hash (no hash recorded).
func (h Hash) IsZero() bool { return h == Hash{} }

// digest is the internal combinable form of a content hash: a SHA-256
// output folded into four 64-bit lanes that combine by lane-wise
// wrapping addition (an AdHash-style multiset hash). Addition is
// commutative and associative, which buys the property the whole
// scheme leans on: a tag's digest is the same no matter how its
// entries are partitioned into chunks.
//
// Partition independence is load-bearing, not a nicety. A leader that
// has been running for a while carries chunk boundaries drifted by
// incremental patching; a follower bootstrapped from the same
// checkpoint rebuilds the same content with fresh, evenly-split
// chunks. A Merkle rollup over chunk boundaries would brand that pair
// divergent; the multiset digest sees identical content. The cost is
// that the digest is an equality check, not a membership proof — which
// is all diff, change feeds, and replica integrity need.
//
// Collision resistance rests on the per-entry SHA-256 preimages; the
// additive combine is weaker than a Merkle tree against adversarial
// inputs, but the threat model here is silent replica divergence and
// backup corruption, not hostile proofs.
type digest [4]uint64

// add folds another digest in, lane-wise mod 2^64.
func (d *digest) add(o digest) {
	d[0] += o[0]
	d[1] += o[1]
	d[2] += o[2]
	d[3] += o[3]
}

// entryDigest hashes one posting's content. Node identity is pointer-
// valued and process-local, so it never enters the hash: the label
// pair and level are what replicas must agree on. Fences are derived
// from entry labels and attr summaries from node attributes, so
// neither is hashed separately — a fence that disagrees with its
// entries is caught by checkChunks, not the digest.
func entryDigest(e document.Entry) digest {
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], e.Label.Begin)
	binary.LittleEndian.PutUint64(buf[8:], e.Label.End)
	binary.LittleEndian.PutUint64(buf[16:], uint64(e.Level))
	s := sha256.Sum256(buf[:])
	var d digest
	d[0] = binary.LittleEndian.Uint64(s[0:])
	d[1] = binary.LittleEndian.Uint64(s[8:])
	d[2] = binary.LittleEndian.Uint64(s[16:])
	d[3] = binary.LittleEndian.Uint64(s[24:])
	return d
}

// runDigest sums a begin-sorted entry run.
func runDigest(es []document.Entry) digest {
	var d digest
	for i := range es {
		d.add(entryDigest(es[i]))
	}
	return d
}

// contentSum returns the chunk's cached content digest, computing it
// at most once — a chunk is immutable, so the digest is computed the
// first time any version sharing the chunk asks and reused by every
// later version and diff.
func (c *chunk) contentSum() digest {
	c.sumOnce.Do(func() { c.sum = runDigest(c.entries) })
	return c.sum
}

// contentSum returns the tag's cached digest: the lane-wise sum of its
// chunks' digests. Shared chunks contribute their already-computed
// sums, so a freshly patched postings re-hashes only the chunks the
// patch rebuilt — O(changed chunks × chunkSize) SHA-256 work plus an
// O(chunks) summation.
func (p *postings) contentSum() digest {
	p.sumOnce.Do(func() {
		var d digest
		for _, c := range p.chunks {
			d.add(c.contentSum())
		}
		p.sum = d
	})
	return p.sum
}

// RootHash returns the version's root content hash, computing it at
// most once (the version is immutable). The root finalizes the per-tag
// multiset digests under their tag names in sorted order, so it binds
// which tag every posting lives in, not just the label multiset.
//
// Cost profile: the first call on a freshly built index hashes every
// entry; a call on a version derived with Apply reuses every shared
// chunk's cached digest and pays only for the chunks the batch
// rebuilt, plus O(tags) finalization — the COW sharing that makes
// per-commit hashing affordable.
func (ix *Index) RootHash() Hash {
	ix.rootOnce.Do(func() {
		tags := make([]string, 0, len(ix.tags))
		for tag := range ix.tags {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		h := sha256.New()
		h.Write([]byte("LTIXROOT\x01"))
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(len(tags)))
		h.Write(buf[:])
		for _, tag := range tags {
			p := ix.tags[tag]
			binary.LittleEndian.PutUint64(buf[:], uint64(len(tag)))
			h.Write(buf[:])
			h.Write([]byte(tag))
			binary.LittleEndian.PutUint64(buf[:], uint64(p.count))
			h.Write(buf[:])
			d := p.contentSum()
			for _, lane := range d {
				binary.LittleEndian.PutUint64(buf[:], lane)
				h.Write(buf[:])
			}
		}
		copy(ix.root[:], h.Sum(nil))
	})
	return ix.root
}

// RootFrom computes the canonical root hash of a plain TagIndex by the
// same construction as Index.RootHash, without building chunks. It is
// the hash oracle: Verify recomputes the root from ground truth through
// this independent path and compares, so a stale cached chunk or tag
// digest cannot hide behind the cache that produced it.
func RootFrom(ti document.TagIndex) Hash {
	tags := make([]string, 0, len(ti))
	for tag, posts := range ti {
		if len(posts) > 0 {
			tags = append(tags, tag)
		}
	}
	sort.Strings(tags)
	h := sha256.New()
	h.Write([]byte("LTIXROOT\x01"))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(tags)))
	h.Write(buf[:])
	for _, tag := range tags {
		posts := ti[tag]
		binary.LittleEndian.PutUint64(buf[:], uint64(len(tag)))
		h.Write(buf[:])
		h.Write([]byte(tag))
		binary.LittleEndian.PutUint64(buf[:], uint64(len(posts)))
		h.Write(buf[:])
		d := runDigest(posts)
		for _, lane := range d {
			binary.LittleEndian.PutUint64(buf[:], lane)
			h.Write(buf[:])
		}
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}
