package index

import (
	"sync"
	"sync/atomic"
)

// Version pairs one immutable Index with its version number. Readers that
// obtained a Version through Retained.Pin hold it for the lifetime of
// their read transaction: the number identifies the snapshot (two reads
// seeing the same number saw the same index), the pin keeps the version
// registered so other transactions can attach to it by number even after
// a writer publishes a successor.
type Version struct {
	Ix *Index
	N  uint64

	// pins counts the open transactions holding this version; guarded by
	// the owning Retained's mutex. Ix and N are written once before the
	// Version is published and are safe to read lock-free.
	pins int
}

// Retained is the version registry behind the store's read transactions:
// it tracks the current published index version plus every retired
// version still pinned by an open transaction.
//
// The registry is the whole retire-accounting story: publishing a new
// version retires the previous one, but a retired version stays
// registered — and therefore attachable by number — until its last pin
// is released. Unpinned retired versions are forgotten immediately; the
// garbage collector reclaims their unshared chunks once no published
// successor shares them.
//
// Current is lock-free (single-shot readers stay on the fast path);
// Pin/release/Publish synchronize on one mutex, which is touched only at
// transaction open/close and at commit — never per read.
type Retained struct {
	mu  sync.Mutex
	cur atomic.Pointer[Version]
	old map[uint64]*Version // retired versions with pins > 0
}

// NewRetained starts the registry at version 1.
func NewRetained(ix *Index) *Retained {
	r := &Retained{old: make(map[uint64]*Version)}
	r.cur.Store(&Version{Ix: ix, N: 1})
	return r
}

// Current returns the published version without locking.
func (r *Retained) Current() *Version { return r.cur.Load() }

// Publish registers ix as the next version and returns its number. The
// previous version is retired: if transactions still pin it, it stays
// registered until the last one releases; otherwise it is dropped on the
// spot. Publish must be serialized by the writer (the store's write
// lock); it may race freely with Pin/Current.
func (r *Retained) Publish(ix *Index) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.cur.Load()
	if prev.pins > 0 {
		r.old[prev.N] = prev
	}
	next := &Version{Ix: ix, N: prev.N + 1}
	r.cur.Store(next)
	return next.N
}

// Pin attaches to the current version and returns it with a release
// closure. Until release is called, the version stays registered even
// after writers publish successors.
func (r *Retained) Pin() (*Version, func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.cur.Load()
	v.pins++
	return v, r.releaser(v)
}

// PinAt attaches to a version by number: the current version, or a
// retired one some open transaction still pins. It reports false when
// the version was never published or has already been forgotten.
func (r *Retained) PinAt(n uint64) (*Version, func(), bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.cur.Load()
	if v.N != n {
		if v = r.old[n]; v == nil {
			return nil, nil, false
		}
	}
	v.pins++
	return v, r.releaser(v), true
}

// releaser returns the idempotent unpin closure for v. Caller holds mu.
func (r *Retained) releaser(v *Version) func() {
	done := false
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if done {
			return
		}
		done = true
		v.pins--
		if v.pins == 0 && r.cur.Load() != v {
			delete(r.old, v.N)
		}
	}
}

// Stats reports the open pin count across all versions and how many
// retired versions the registry is keeping alive for them.
func (r *Retained) Stats() (open, retired int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	open = r.cur.Load().pins
	for _, v := range r.old {
		open += v.pins
	}
	return open, len(r.old)
}
