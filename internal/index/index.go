// Package index maintains the tag index incrementally. An Index is an
// immutable snapshot: per-tag posting lists (elements with materialized
// (begin, end) labels, begin-sorted — the per-tag clustering the paper
// assumes for query processing, §3.1) that readers consume without any
// lock. Writers never mutate a published Index; they derive the next
// version with Apply, which copies only the posting lists a change batch
// touched and shares the rest — copy-on-write in the style of versioned
// snapshot stores.
//
// Incrementality leans on the L-Tree's own cost bound: an update relabels
// O(log n) leaves amortized (paper §3), and the document layer reports
// exactly which elements those were (document.Changes). Apply therefore
// patches the few affected tags instead of re-walking the DOM the way
// BuildTagIndex does.
package index

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Index is one immutable tag-index version. The zero value is not usable;
// build with Build or From, derive successors with Apply.
type Index struct {
	tags map[string][]document.Entry

	// all caches the flattened "*" posting list, computed at most once per
	// version on first use (a version is immutable, so the merge result
	// never goes stale).
	allOnce sync.Once
	all     []document.Entry
}

// Build walks the document and materializes a fresh index version.
func Build(d *document.Doc) *Index { return From(d.BuildTagIndex()) }

// From wraps an already-built tag index. The map is owned by the Index
// afterwards and must not be mutated by the caller.
func From(ti document.TagIndex) *Index {
	return &Index{tags: map[string][]document.Entry(ti)}
}

// Postings returns the begin-sorted posting list for a tag; "*" returns
// every element. The slice is shared and must be treated as read-only.
func (ix *Index) Postings(tag string) []document.Entry {
	if tag == "*" {
		return ix.All()
	}
	return ix.tags[tag]
}

// All returns every element in document order (the flattened "*" list),
// computing it once per version via the shared TagIndex flatten.
func (ix *Index) All() []document.Entry {
	ix.allOnce.Do(func() {
		ix.all = document.TagIndex(ix.tags).Postings("*")
	})
	return ix.all
}

// Tags returns the number of distinct tags.
func (ix *Index) Tags() int { return len(ix.tags) }

// Len returns the total number of postings.
func (ix *Index) Len() int {
	n := 0
	for _, posts := range ix.tags {
		n += len(posts)
	}
	return n
}

// Apply derives the next index version from a change batch. Posting lists
// of unaffected tags are shared with the receiver; affected tags get a
// fresh list in one merge pass: removed elements are dropped, surviving
// labels are re-read from the document (relabelings preserve document
// order, so no re-sort is needed), and added elements are merged in at
// their begin position. The receiver is left untouched and stays valid
// for readers still holding it.
//
// Apply must run with the document quiescent (the write path's exclusive
// section); the returned Index is immutable and may be published to
// readers immediately.
func (ix *Index) Apply(d *document.Doc, ch *document.Changes) *Index {
	if ch.Empty() {
		return ix
	}
	// Bucket additions per tag up front so each patchTag pass is linear
	// in its own postings, not in the whole batch.
	addedByTag := make(map[string][]*xmldom.Node)
	for n := range ch.Added {
		addedByTag[n.Tag()] = append(addedByTag[n.Tag()], n)
	}
	affected := make(map[string]struct{}, len(addedByTag))
	for tag := range addedByTag {
		affected[tag] = struct{}{}
	}
	for n := range ch.Removed {
		affected[n.Tag()] = struct{}{}
	}
	for n := range ch.Touched {
		affected[n.Tag()] = struct{}{}
	}

	next := &Index{tags: make(map[string][]document.Entry, len(ix.tags)+len(affected))}
	for tag, posts := range ix.tags {
		if _, hit := affected[tag]; !hit {
			next.tags[tag] = posts
		}
	}
	for tag := range affected {
		if posts := ix.patchTag(d, tag, addedByTag[tag], ch); len(posts) > 0 {
			next.tags[tag] = posts
		}
	}
	return next
}

// Verify checks an index version against a fresh ground-truth build:
// same tags, same nodes in the same order, same labels and levels. It is
// O(n) and meant for invariant suites and tests, not the hot path.
func Verify(ix *Index, d *document.Doc) error {
	want := d.BuildTagIndex()
	total := 0
	for tag, wposts := range want {
		total += len(wposts)
		gposts := ix.Postings(tag)
		if len(gposts) != len(wposts) {
			return fmt.Errorf("index: tag %q has %d postings, want %d", tag, len(gposts), len(wposts))
		}
		for i := range wposts {
			switch {
			case gposts[i].Node != wposts[i].Node:
				return fmt.Errorf("index: tag %q posting %d binds the wrong node", tag, i)
			case gposts[i].Label != wposts[i].Label:
				return fmt.Errorf("index: tag %q posting %d has label %v, want %v",
					tag, i, gposts[i].Label, wposts[i].Label)
			case gposts[i].Level != wposts[i].Level:
				return fmt.Errorf("index: tag %q posting %d has level %d, want %d",
					tag, i, gposts[i].Level, wposts[i].Level)
			}
		}
	}
	if got := ix.Len(); got != total {
		return fmt.Errorf("index: holds %d postings, want %d", got, total)
	}
	return nil
}

// patchTag rebuilds one tag's posting list against the current document
// state: one pass over the old list plus a sorted merge of the additions.
func (ix *Index) patchTag(d *document.Doc, tag string, added []*xmldom.Node, ch *document.Changes) []document.Entry {
	old := ix.tags[tag]
	kept := make([]document.Entry, 0, len(old))
	for _, e := range old {
		if _, gone := ch.Removed[e.Node]; gone {
			continue
		}
		lab, err := d.Label(e.Node)
		if err != nil {
			// Unbound without a removal record cannot happen through the
			// document API; drop defensively rather than serve a stale label.
			continue
		}
		e.Label = lab
		kept = append(kept, e)
	}

	var fresh []document.Entry
	for _, n := range added {
		lab, err := d.Label(n)
		if err != nil {
			continue // added and removed within the same batch
		}
		fresh = append(fresh, document.Entry{Node: n, Label: lab, Level: n.Level()})
	}
	if len(fresh) == 0 {
		return kept
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Label.Begin < fresh[j].Label.Begin })

	merged := make([]document.Entry, 0, len(kept)+len(fresh))
	i, j := 0, 0
	for i < len(kept) && j < len(fresh) {
		if kept[i].Label.Begin < fresh[j].Label.Begin {
			merged = append(merged, kept[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, kept[i:]...)
	merged = append(merged, fresh[j:]...)
	return merged
}
