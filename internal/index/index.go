// Package index maintains the tag index incrementally. An Index is an
// immutable snapshot: per-tag posting lists (elements with materialized
// (begin, end) labels, begin-sorted — the per-tag clustering the paper
// assumes for query processing, §3.1) that readers consume without any
// lock. Writers never mutate a published Index; they derive the next
// version with Apply, which copies only the chunks a change batch
// touched and shares the rest — copy-on-write in the style of versioned
// snapshot stores.
//
// Each tag's postings are a sequence of immutable fixed-capacity chunks
// behind a small directory of (minBegin, maxBegin, count) fences
// (chunk.go). The chunking bounds write amplification: a single-posting
// patch into a large tag copies one chunk, not the tag — the COW floor
// is O(chunk) — while the fences give queries a skip index over the same
// layout.
//
// Incrementality leans on the L-Tree's own cost bound: an update relabels
// O(log n) leaves amortized (paper §3), and the document layer reports
// exactly which elements those were (document.Changes). Apply therefore
// patches the few affected chunks instead of re-walking the DOM the way
// BuildTagIndex does.
package index

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Index is one immutable tag-index version. The zero value is not usable;
// build with Build or From, derive successors with Apply.
type Index struct {
	tags      map[string]*postings
	chunkSize int // inherited by every version derived with Apply

	// sumRoot/sumGen pin the chunk attribute summaries' validity: the
	// document root and its attribute-mutation generation
	// (xmldom.Node.AttrGen) captured at the last full build. A raw
	// SetAttr below the document layer moves the root's generation, and a
	// summary computed before it may falsely claim the new attribute
	// absent — so Cursor disables predicate pushdown (FilterChunks
	// becomes a no-op) whenever the generations disagree: queries fall
	// back to per-entry predicate checks, trading the skip optimization
	// for correctness until the next full build re-captures the
	// generation. Chunks patched by Apply recompute their summaries, but
	// shared chunks reach back to the last full build, so Apply inherits
	// the baseline unchanged. A nil sumRoot (Index built via From, no
	// document in sight) leaves pushdown on — such callers own their
	// attribute discipline.
	sumRoot *xmldom.Node
	sumGen  uint64

	// stats, when set (SetCursorStats), is inherited by every cursor this
	// version hands out — skip/decode observability for benchmarks and
	// experiments, off (nil) in production.
	stats *CursorStats

	// all caches the flattened "*" posting list, computed at most once per
	// version on first use (a version is immutable, so the merge result
	// never goes stale).
	allOnce sync.Once
	all     []document.Entry

	// root caches the version's root content hash (hash.go), computed at
	// most once on first RootHash call.
	rootOnce sync.Once
	root     Hash
}

// CursorStats accumulates chunk-granular work accounting across every
// cursor of an index version: chunks whose entries were actually decoded
// vs chunks discarded whole — by the Seek fence search, by a predicate
// pushdown summary rejection, or by a SeekOpen maxEnd skip. Counters are
// atomic so concurrent cursors may share one CursorStats; increments
// happen at chunk granularity (at most once per ~chunkSize entries), so
// the accounting is effectively free.
type CursorStats struct {
	Decoded       atomic.Uint64 // chunks at least one entry was read from
	SkippedSeek   atomic.Uint64 // chunks jumped by Seek's begin-fence search
	SkippedFilter atomic.Uint64 // chunks rejected by the attribute summary
	SkippedEnd    atomic.Uint64 // chunks discarded by SeekOpen's maxEnd fence
}

// Skipped totals every chunk discarded without decoding.
func (s *CursorStats) Skipped() uint64 {
	return s.SkippedSeek.Load() + s.SkippedFilter.Load() + s.SkippedEnd.Load()
}

// Reset zeroes all counters.
func (s *CursorStats) Reset() {
	s.Decoded.Store(0)
	s.SkippedSeek.Store(0)
	s.SkippedFilter.Store(0)
	s.SkippedEnd.Store(0)
}

// SetCursorStats installs a skip/decode accounting sink on this version:
// every cursor obtained afterwards reports into it. Call before handing
// the version to concurrent readers (the field itself is unsynchronized;
// the counters are atomic). Versions derived with Apply do not inherit
// the sink.
func (ix *Index) SetCursorStats(s *CursorStats) { ix.stats = s }

// Build walks the document and materializes a fresh index version with
// the default chunk size.
func Build(d *document.Doc) *Index { return BuildSized(d, DefaultChunkSize) }

// BuildSized is Build with an explicit chunk capacity (benchmark sweeps
// and split/merge stress tests; production uses DefaultChunkSize).
func BuildSized(d *document.Doc, chunkSize int) *Index {
	root := d.X.Root
	gen := root.AttrGen()
	ix := FromSized(d.BuildTagIndex(), chunkSize)
	// The generation is read BEFORE the walk: an attribute mutation racing
	// the build marks the result stale rather than fresh-by-accident.
	ix.sumRoot, ix.sumGen = root, gen
	return ix
}

// From wraps an already-built tag index. The map is consumed by the Index
// (its slices become chunk storage) and must not be mutated afterwards.
func From(ti document.TagIndex) *Index { return FromSized(ti, DefaultChunkSize) }

// FromSized is From with an explicit chunk capacity.
func FromSized(ti document.TagIndex, chunkSize int) *Index {
	if chunkSize < 1 {
		chunkSize = DefaultChunkSize
	}
	ix := &Index{tags: make(map[string]*postings, len(ti)), chunkSize: chunkSize}
	for tag, posts := range ti {
		if len(posts) > 0 {
			ix.tags[tag] = chunkify(posts, chunkSize)
		}
	}
	return ix
}

// ChunkSize returns the chunk capacity this version (and its successors)
// chunk postings into.
func (ix *Index) ChunkSize() int { return ix.chunkSize }

// Postings materializes the begin-sorted posting list for a tag; "*"
// returns every element. This copies O(tag) — the query path should use
// Cursor instead; Postings remains for snapshots, verification, and
// callers that genuinely need the whole list.
func (ix *Index) Postings(tag string) []document.Entry {
	if tag == "*" {
		return ix.All()
	}
	return ix.tags[tag].flatten()
}

// Cursor returns a streaming view of a tag's postings ("*" streams every
// element in document order). The chunked cursor's Seek skips whole
// chunks via the directory fences; it also implements the optional
// document.ChunkFilter (predicate pushdown) and document.OpenSeeker
// (zig-zag context skip) extensions. The "*" stream is served from the
// flattened all-elements cache and supports neither.
func (ix *Index) Cursor(tag string) document.Cursor {
	if tag == "*" {
		return document.NewSliceCursor(ix.All())
	}
	p := ix.tags[tag]
	if p == nil {
		return document.NewSliceCursor(nil)
	}
	return &chunkCursor{
		fences: p.fences, sums: p.sums, chunks: p.chunks, stats: ix.stats,
		sumsStale: !ix.SummariesFresh(),
	}
}

// SummariesFresh reports whether the chunk attribute summaries are still
// exact: no attribute mutated below the document root since the last
// full build captured the generation. Stale summaries may hold false
// negatives, so cursors stop honoring FilterChunks until a full rebuild.
func (ix *Index) SummariesFresh() bool {
	return ix.sumRoot == nil || ix.sumRoot.AttrGen() == ix.sumGen
}

// All returns every element in document order (the flattened "*" list),
// computing it once per version.
func (ix *Index) All() []document.Entry {
	ix.allOnce.Do(func() {
		all := make([]document.Entry, 0, ix.Len())
		for _, p := range ix.tags {
			all = p.appendTo(all)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Label.Begin < all[j].Label.Begin })
		ix.all = all
	})
	return ix.all
}

// Tags returns the number of distinct tags.
func (ix *Index) Tags() int { return len(ix.tags) }

// Count returns the number of postings for a tag ("*" counts every
// element) without materializing anything.
func (ix *Index) Count(tag string) int {
	if tag == "*" {
		return ix.Len()
	}
	if p := ix.tags[tag]; p != nil {
		return p.count
	}
	return 0
}

// Chunks returns the number of chunks backing a tag's postings (0 for an
// unknown tag) — observability for benchmarks and tests.
func (ix *Index) Chunks(tag string) int {
	if p := ix.tags[tag]; p != nil {
		return len(p.chunks)
	}
	return 0
}

// Len returns the total number of postings.
func (ix *Index) Len() int {
	n := 0
	for _, p := range ix.tags {
		n += p.count
	}
	return n
}

// tagEffect is one tag's slice of a change batch. Added elements route
// to chunks by fence search; touched (relabeled) elements route by their
// current label against current fences; removed elements route by the
// begin label captured at unbind time. Only when a tag saw both
// removals and relabelings in one batch are the two coordinate systems
// incomparable, and discovery falls back to a membership scan.
type tagEffect struct {
	added   []*xmldom.Node
	touched []*xmldom.Node
	removed []uint64 // captured begin labels
}

// Apply derives the next index version from a change batch. Chunks of
// unaffected tags — and untouched chunks of affected tags — are shared
// with the receiver; only chunks holding removed or relabeled entries,
// or receiving additions, are rebuilt (split on overflow, re-merged on
// underflow). The receiver is left untouched and stays valid for readers
// still holding it.
//
// Apply must run with the document quiescent (the write path's exclusive
// section); the returned Index is immutable and may be published to
// readers immediately. An error means the change batch contradicts the
// document (an indexed entry became unbound with no removal record) —
// the index that would have resulted is not published, and the caller
// must treat its current version as stale.
func (ix *Index) Apply(d *document.Doc, ch *document.Changes) (*Index, error) {
	if ch.Empty() {
		return ix, nil
	}
	// Bucket the batch per tag up front so each patchTag pass is linear
	// in its own postings, not in the whole batch.
	effects := make(map[string]*tagEffect)
	effect := func(tag string) *tagEffect {
		e := effects[tag]
		if e == nil {
			e = &tagEffect{}
			effects[tag] = e
		}
		return e
	}
	for n := range ch.Added {
		e := effect(n.Tag())
		e.added = append(e.added, n)
	}
	for n, begin := range ch.Removed {
		e := effect(n.Tag())
		e.removed = append(e.removed, begin)
	}
	for n := range ch.Touched {
		if _, fresh := ch.Added[n]; fresh {
			// Added this batch and never removed: not in the old chunks,
			// the add pass places it. A relabeled node that was removed
			// AND re-added (a move crossing a relabel) stays counted as
			// touched — its old entry sits at a position its captured
			// removal label can no longer name, and the touched marker is
			// what forces the tag onto the sound membership scan.
			if _, gone := ch.Removed[n]; !gone {
				continue
			}
		}
		e := effect(n.Tag())
		e.touched = append(e.touched, n)
	}

	next := &Index{
		tags: make(map[string]*postings, len(ix.tags)+len(effects)), chunkSize: ix.chunkSize,
		sumRoot: ix.sumRoot, sumGen: ix.sumGen,
	}
	for tag, p := range ix.tags {
		if _, hit := effects[tag]; !hit {
			next.tags[tag] = p
		}
	}
	for tag, eff := range effects {
		p, err := ix.patchTag(d, tag, eff, ch)
		if err != nil {
			return nil, err
		}
		if p != nil && p.count > 0 {
			next.tags[tag] = p
		}
	}
	return next, nil
}

// Verify checks an index version against a fresh ground-truth build —
// same tags, same nodes in the same order, same labels and levels — and
// validates the chunk invariants (fences, size bounds, global begin
// order). It is O(n) and meant for invariant suites and tests, not the
// hot path.
func Verify(ix *Index, d *document.Doc) error {
	want := d.BuildTagIndex()
	total := 0
	for tag, wposts := range want {
		total += len(wposts)
		gposts := ix.Postings(tag)
		if len(gposts) != len(wposts) {
			return fmt.Errorf("index: tag %q has %d postings, want %d", tag, len(gposts), len(wposts))
		}
		for i := range wposts {
			switch {
			case gposts[i].Node != wposts[i].Node:
				return fmt.Errorf("index: tag %q posting %d binds the wrong node", tag, i)
			case gposts[i].Label != wposts[i].Label:
				return fmt.Errorf("index: tag %q posting %d has label %v, want %v",
					tag, i, gposts[i].Label, wposts[i].Label)
			case gposts[i].Level != wposts[i].Level:
				return fmt.Errorf("index: tag %q posting %d has level %d, want %d",
					tag, i, gposts[i].Level, wposts[i].Level)
			}
		}
	}
	if got := ix.Len(); got != total {
		return fmt.Errorf("index: holds %d postings, want %d", got, total)
	}
	// The root hash must agree with an independent recomputation from
	// ground truth: a stale cached chunk or tag digest would slip past
	// the content comparison above (which reads entries, not caches)
	// but not past this.
	if got, oracle := ix.RootHash(), RootFrom(want); got != oracle {
		return fmt.Errorf("index: root hash %x disagrees with ground-truth recomputation %x", got, oracle)
	}
	return ix.CheckChunks()
}

// CheckChunks validates the chunk invariants of every tag (see
// postings.checkChunks): fences agree with entries, chunk sizes stay in
// bounds, begins strictly increase. The attribute-summary exactness
// check is waived when the summaries are known stale (a raw SetAttr
// since the last full build) — a stale summary is allowed to be wrong
// precisely because cursors no longer consult it.
func (ix *Index) CheckChunks() error {
	fresh := ix.SummariesFresh()
	for tag, p := range ix.tags {
		if p.count == 0 {
			return fmt.Errorf("index: tag %q kept with no postings", tag)
		}
		if err := p.checkChunks(tag, ix.chunkSize, fresh); err != nil {
			return err
		}
	}
	return nil
}

// patchTag rebuilds one tag's chunked postings against the current
// document state in one fused walk over the chunk directory:
//
//   - removed and relabeled entries are routed to their chunks by binary
//     search up front (locateDirty), and only those chunks are rebuilt —
//     removed entries dropped, relabeled labels re-read;
//   - additions merge into the chunk whose fence range absorbs them,
//     evaluated in current coordinates as the walk refreshes (each
//     chunk's max is exact by the time additions are routed past it),
//     splitting balanced on overflow;
//   - every untouched chunk is shared, and the directory — a pointer-free
//     fence array plus a chunk-pointer array — is copied exactly once;
//   - a final re-balance merges chunks the batch shrank below the size/4
//     floor (mergeUnderflow).
//
// A pure-insert batch — the hot path — costs one chunk copy plus the
// directory copy.
func (ix *Index) patchTag(d *document.Doc, tag string, eff *tagEffect, ch *document.Changes) (*postings, error) {
	old := ix.tags[tag]
	if old == nil {
		old = &postings{}
	}

	// Resolve the additions' labels up front (they also route the walk).
	var fresh []document.Entry
	if len(eff.added) > 0 {
		fresh = make([]document.Entry, 0, len(eff.added))
		for _, n := range eff.added {
			lab, err := d.Label(n)
			if err != nil {
				if _, gone := ch.Removed[n]; gone {
					continue // added and removed within the same batch
				}
				return nil, fmt.Errorf("index: added <%s> element unbound with no removal record: %w", tag, err)
			}
			fresh = append(fresh, document.Entry{Node: n, Label: lab, Level: n.Level()})
		}
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].Label.Begin < fresh[j].Label.Begin })
	}

	// Route removals and relabelings to their chunks (locateDirty); nil
	// when the batch only added.
	var dirty []bool
	if len(eff.touched)+len(eff.removed) > 0 && len(old.chunks) > 0 {
		var err error
		if dirty, err = locateDirty(d, old, eff, ch); err != nil {
			return nil, fmt.Errorf("index: tag %q: %w", tag, err)
		}
	}

	// One fused walk: refresh the dirty chunks (drop removed entries,
	// re-read relabeled labels — stored labels elsewhere are exact, the
	// relabel hook records every renumbered element), merge additions into
	// the chunk whose refreshed fence range absorbs them, share every
	// untouched chunk, and copy the directory exactly once.
	b := grown(len(old.chunks) + 1)
	fi := 0
	for i, c := range old.chunks {
		es := c.entries
		refreshed := false
		if dirty != nil && dirty[i] {
			kept := make([]document.Entry, 0, len(es))
			for _, e := range es {
				if _, gone := ch.Removed[e.Node]; gone {
					continue
				}
				if _, moved := ch.Touched[e.Node]; moved {
					lab, err := d.Label(e.Node)
					if err != nil {
						// An indexed entry became unbound without a removal
						// record: the change batch contradicts the document.
						// Serving on would mean a quietly shrunken index, so
						// fail loudly instead.
						return nil, fmt.Errorf("index: tag %q entry unbound with no removal record: %w", tag, err)
					}
					e.Label = lab
				}
				kept = append(kept, e)
			}
			if len(kept) == 0 {
				continue // additions spill to the next surviving chunk
			}
			es, refreshed = kept, true
		}
		hi := fi
		for hi < len(fresh) && fresh[hi].Label.Begin <= es[len(es)-1].Label.Begin {
			hi++
		}
		switch {
		case hi == fi && !refreshed:
			b.share(old.fences[i], old.sums[i], c)
		case hi == fi:
			b.add(es)
		default:
			b.addRun(mergeRuns(es, fresh[fi:hi]), ix.chunkSize)
			fi = hi
		}
	}
	if fi < len(fresh) {
		// Additions past every fence extend the last surviving chunk (or
		// found the tag's first).
		rest := fresh[fi:]
		if n := len(b.chunks); n > 0 {
			last := b.chunks[n-1]
			b.fences, b.sums, b.chunks = b.fences[:n-1], b.sums[:n-1], b.chunks[:n-1]
			b.addRun(mergeRuns(last.entries, rest), ix.chunkSize)
		} else {
			b.addRun(rest, ix.chunkSize)
		}
	}

	// Heal underflow the batch's removals left behind.
	b = mergeUnderflow(b, ix.chunkSize)
	return b.postings(), nil
}

// locateDirty marks the chunks a batch's removals and relabelings land
// in, in sub-linear time. Three sound regimes:
//
//   - relabelings only: a touched element is still bound, so its current
//     begin routes it — binary search over the chunks' *current* maximum
//     begins (curMaxBegin re-reads a fence entry's label only when that
//     entry itself was relabeled; everything else is exact as stored).
//     Current labels order consistently with entry order (L-Tree
//     relabels never reorder, Proposition 1), so the search key is
//     monotone even where stored fences went stale.
//   - removals only: the tag saw no relabeling this batch, so stored
//     fences are exact and the begin captured at unbind time routes the
//     removal directly.
//   - both in one batch (a subtree move landing next to a split, say):
//     the captured begins and the current labels name positions in
//     different coordinate systems, so routing is unsound — fall back to
//     one membership scan over the tag's entries (hash probes only; no
//     untouched chunk is copied). This is the one discovery path that is
//     linear in the tag, and it needs both removals and relabelings of
//     the same tag in the same batch.
func locateDirty(d *document.Doc, p *postings, eff *tagEffect, ch *document.Changes) ([]bool, error) {
	dirty := make([]bool, len(p.chunks))
	switch {
	case len(eff.touched) > 0 && len(eff.removed) > 0:
		for i, c := range p.chunks {
			for _, e := range c.entries {
				if _, gone := ch.Removed[e.Node]; gone {
					dirty[i] = true
					break
				}
				if _, moved := ch.Touched[e.Node]; moved {
					dirty[i] = true
					break
				}
			}
		}
	case len(eff.removed) > 0:
		for _, begin := range eff.removed {
			// A node added and removed within the same batch was never
			// indexed; its captured begin may still land inside a fence
			// range (spuriously copying one chunk whose rebuild then drops
			// nothing — harmless) or past every fence (k == len, skipped).
			k := sort.Search(len(p.fences), func(i int) bool { return p.fences[i].max >= begin })
			if k < len(p.fences) {
				dirty[k] = true
			}
		}
	default:
		for _, n := range eff.touched {
			lab, err := d.Label(n)
			if err != nil {
				return nil, fmt.Errorf("relabeled entry unbound with no removal record: %w", err)
			}
			k := sort.Search(len(p.chunks), func(i int) bool { return curMaxBegin(d, p, i, ch) >= lab.Begin })
			if k < len(p.chunks) {
				dirty[k] = true
			}
		}
	}
	return dirty, nil
}

// curMaxBegin evaluates a chunk's maximum begin label in *current*
// coordinates: the last entry's stored label unless that entry was
// relabeled this batch, in which case the label is re-read. The last
// entry always carries the chunk's maximum — relabeling preserves order
// within the chunk.
func curMaxBegin(d *document.Doc, p *postings, i int, ch *document.Changes) uint64 {
	es := p.chunks[i].entries
	last := es[len(es)-1]
	if _, moved := ch.Touched[last.Node]; moved {
		if lab, err := d.Label(last.Node); err == nil {
			return lab.Begin
		}
		// Unbound fence entry: the rebuild pass reports it; fall through
		// to the stored label so the search itself stays total.
	}
	return p.fences[i].max
}

// mergeRuns merges two begin-sorted runs into a fresh slice.
func mergeRuns(a, b []document.Entry) []document.Entry {
	out := make([]document.Entry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Label.Begin < b[j].Label.Begin {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
