package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// mutate applies one random document mutation; it reports whether the
// document plausibly changed (some moves legally fail).
func mutate(t *testing.T, d *document.Doc, rng *rand.Rand, tags []string) {
	t.Helper()
	els := d.Elements("*")
	n := els[rng.Intn(len(els))]
	switch op := rng.Intn(12); {
	case op < 6: // insert a fresh element
		if _, err := d.InsertElement(n, rng.Intn(n.NumChildren()+1), tags[rng.Intn(len(tags))]); err != nil {
			t.Fatal(err)
		}
	case op < 7: // paste a small subtree
		sub := xmldom.NewElement(tags[rng.Intn(len(tags))])
		if err := sub.AppendChild(xmldom.NewElement(tags[rng.Intn(len(tags))])); err != nil {
			t.Fatal(err)
		}
		if err := d.InsertSubtree(n, rng.Intn(n.NumChildren()+1), sub); err != nil {
			t.Fatal(err)
		}
	case op < 10: // delete
		if n != d.X.Root {
			if err := d.DeleteSubtree(n); err != nil {
				t.Fatal(err)
			}
		}
	default: // move
		target := els[rng.Intn(len(els))]
		if n == d.X.Root || target == n {
			return
		}
		err := d.Move(n, target, rng.Intn(target.NumChildren()+1))
		if err != nil && err != xmldom.ErrCycle && err != document.ErrUnbound && err != xmldom.ErrRange {
			t.Fatal(err)
		}
	}
}

// TestDifferentialChunkedVsFlat is the acceptance property test for the
// chunked representation: across well over a thousand random mutation
// batches — at several chunk sizes, including tiny ones that force
// constant splitting and merging — every incrementally patched chunked
// version must agree with a flat ground-truth rebuild on nodes, labels,
// levels, and order (Verify), and must hold the chunk invariants.
// Concurrent readers drain cursors of retired versions the whole time,
// so `go test -race` doubles this as the COW aliasing check.
func TestDifferentialChunkedVsFlat(t *testing.T) {
	tags := []string{"a", "b", "c", "d", "e", "f"}
	for _, chunkSize := range []int{2, 3, 8, 64, DefaultChunkSize} {
		t.Run(fmt.Sprintf("chunk=%d", chunkSize), func(t *testing.T) {
			d := loadTracked(t, `<r><a/><b/><c/></r>`)
			ix := BuildSized(d, chunkSize)
			d.TakeChanges()
			rng := rand.New(rand.NewSource(int64(chunkSize)))

			var wg sync.WaitGroup
			defer wg.Wait()
			batches := 250
			if chunkSize == DefaultChunkSize {
				batches = 350
			}
			for batch := 0; batch < batches; batch++ {
				for i, k := 0, rng.Intn(4)+1; i < k; i++ {
					mutate(t, d, rng, tags)
				}
				prev := ix
				next, err := ix.Apply(d, d.TakeChanges())
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				ix = next
				if err := Verify(ix, d); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				if batch%25 == 0 {
					// A retired version must stay intact and readable while
					// later versions are derived (copy-on-write, no aliasing).
					wg.Add(1)
					go func(old *Index, wantLen int) {
						defer wg.Done()
						got := 0
						cur := old.Cursor("*")
						last := uint64(0)
						for e, ok := cur.Next(); ok; e, ok = cur.Next() {
							if got > 0 && e.Label.Begin <= last {
								t.Error("retired version lost begin order")
								return
							}
							last = e.Label.Begin
							got++
						}
						if got != wantLen {
							t.Errorf("retired version drained %d entries, want %d", got, wantLen)
						}
					}(prev, prev.Len())
				}
			}
		})
	}
}

// TestAllCursorGlobalOrder is the "*" property test: across versions,
// the flattened wildcard cursor must yield every element exactly once in
// strictly increasing begin order — global document order — and agree
// with a ground-truth rebuild.
func TestAllCursorGlobalOrder(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	d := loadTracked(t, `<r><a/><b/></r>`)
	ix := BuildSized(d, 4) // small chunks: the merge crosses many of them
	d.TakeChanges()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 120; round++ {
		for i := 0; i < 3; i++ {
			mutate(t, d, rng, tags)
		}
		var err error
		ix, err = ix.Apply(d, d.TakeChanges())
		if err != nil {
			t.Fatal(err)
		}
		want := d.BuildTagIndex().Postings("*")
		cur := ix.Cursor("*")
		got := document.DrainCursor(cur)
		if len(got) != len(want) {
			t.Fatalf("round %d: \"*\" cursor drained %d entries, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i].Node != want[i].Node || got[i].Label != want[i].Label {
				t.Fatalf("round %d: \"*\" entry %d diverges from ground truth", round, i)
			}
			if i > 0 && got[i].Label.Begin <= got[i-1].Label.Begin {
				t.Fatalf("round %d: \"*\" entry %d out of global order", round, i)
			}
		}
	}
}

// TestSeekSkipsChunks pins the fence skip: seeking far ahead must land
// on the right entry without the cursor having walked the entries in
// between (observed through the chunk directory position).
func TestSeekSkipsChunks(t *testing.T) {
	d := loadTracked(t, `<r></r>`)
	for i := 0; i < 300; i++ {
		if _, err := d.InsertElement(d.X.Root, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	ix := BuildSized(d, 16)
	if ix.Chunks("x") < 10 {
		t.Fatalf("expected many chunks, got %d", ix.Chunks("x"))
	}
	all := ix.Postings("x")
	target := all[250]
	cur := ix.Cursor("x").(*chunkCursor)
	e, ok := cur.Seek(target.Label.Begin)
	if !ok || e.Node != target.Node {
		t.Fatal("Seek missed its target")
	}
	if cur.ci < 10 {
		t.Fatalf("Seek did not skip chunks (landed in chunk %d)", cur.ci)
	}
	// Seeking backwards must not retreat.
	if e2, ok := cur.Seek(all[0].Label.Begin); !ok || e2.Label.Begin <= e.Label.Begin {
		t.Fatal("Seek retreated")
	}
}

// TestApplyUnboundEntryFailsLoudly pins the silent-drop fix: a change
// batch claiming a relabel of an element that is no longer bound — with
// no removal record to explain it — must surface as an error instead of
// a quietly shrunken posting list.
func TestApplyUnboundEntryFailsLoudly(t *testing.T) {
	d := loadTracked(t, `<r><a/><a/><a/></r>`)
	ix := Build(d)
	d.TakeChanges()

	victim := d.X.Root.Child(1)
	if err := d.DeleteSubtree(victim); err != nil {
		t.Fatal(err)
	}
	d.TakeChanges() // drop the honest record of the removal

	// A batch that says "victim was relabeled" while the document no
	// longer binds it: the routed (touched-only) path must reject it.
	forged := &document.Changes{
		Added:   map[*xmldom.Node]struct{}{},
		Removed: map[*xmldom.Node]uint64{},
		Touched: map[*xmldom.Node]struct{}{victim: {}},
	}
	if _, err := ix.Apply(d, forged); err == nil {
		t.Fatal("Apply accepted a batch with an unbound, unremoved entry (touched-only path)")
	}

	// Same violation through the mixed scan path (removals force it).
	other := d.X.Root.Child(0)
	lab, err := d.Label(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteSubtree(other); err != nil {
		t.Fatal(err)
	}
	d.TakeChanges()
	mixed := &document.Changes{
		Added:   map[*xmldom.Node]struct{}{},
		Removed: map[*xmldom.Node]uint64{other: lab.Begin},
		Touched: map[*xmldom.Node]struct{}{victim: {}},
	}
	if _, err := ix.Apply(d, mixed); err == nil {
		t.Fatal("Apply accepted a batch with an unbound, unremoved entry (scan path)")
	}
}
