package index

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// TestRootHashPartitionIndependence pins the property the replication
// integrity check leans on: the root hash is a function of the indexed
// content only, not of how the content happens to be chunked. The same
// document indexed at wildly different chunk sizes — and an
// incrementally patched version vs a fresh rebuild of the same state —
// must agree on the root hash.
func TestRootHashPartitionIndependence(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	d := loadTracked(t, `<r><a/><b/><c/></r>`)
	ix2 := BuildSized(d, 2)
	ix8 := BuildSized(d, 8)
	ixD := Build(d)
	d.TakeChanges()
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 60; round++ {
		for i := 0; i < 3; i++ {
			mutate(t, d, rng, tags)
		}
		ch := d.TakeChanges()
		var err error
		if ix2, err = ix2.Apply(d, ch); err != nil {
			t.Fatal(err)
		}
		if ix8, err = ix8.Apply(d, ch); err != nil {
			t.Fatal(err)
		}
		if ixD, err = ixD.Apply(d, ch); err != nil {
			t.Fatal(err)
		}
		fresh := Build(d)
		want := fresh.RootHash()
		for _, ix := range []*Index{ix2, ix8, ixD} {
			if got := ix.RootHash(); got != want {
				t.Fatalf("round %d: chunk-size-%d root hash %x, fresh rebuild %x",
					round, ix.ChunkSize(), got, want)
			}
		}
		if oracle := RootFrom(d.BuildTagIndex()); oracle != want {
			t.Fatalf("round %d: RootFrom oracle %x disagrees with Build %x", round, oracle, want)
		}
	}
}

// TestRootHashSensitivity: any content change — including a pure
// relabel with the same node set — must move the root hash.
func TestRootHashSensitivity(t *testing.T) {
	d := loadTracked(t, `<r><a/><a/><b/></r>`)
	ix := Build(d)
	d.TakeChanges()
	seen := map[Hash]int{ix.RootHash(): 0}
	for i := 1; i <= 20; i++ {
		if _, err := d.InsertElement(d.X.Root, 0, "a"); err != nil {
			t.Fatal(err)
		}
		var err error
		if ix, err = ix.Apply(d, d.TakeChanges()); err != nil {
			t.Fatal(err)
		}
		h := ix.RootHash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("version %d repeats version %d's root hash", i, prev)
		}
		seen[h] = i
	}
}

// diffOracle computes the ground-truth change set between two versions
// from their flattened postings: a node-level diff, with removed/added
// pairs carrying identical (tag, label, level) cancelled — Diff's
// documented index-content semantics.
func diffOracle(a, b *Index) map[*xmldom.Node]Change {
	snap := func(ix *Index) map[*xmldom.Node]document.Entry {
		m := make(map[*xmldom.Node]document.Entry)
		for _, e := range ix.All() {
			m[e.Node] = e
		}
		return m
	}
	am, bm := snap(a), snap(b)
	out := make(map[*xmldom.Node]Change)
	type content struct {
		tag string
		lab document.Label
		lvl int
	}
	removed := make(map[content]*xmldom.Node)
	for n, e := range am {
		if _, ok := bm[n]; !ok {
			out[n] = Change{Tag: n.Tag(), Node: n, Kind: Removed, Old: e.Label, Level: e.Level, OldLevel: e.Level}
			removed[content{n.Tag(), e.Label, e.Level}] = n
		}
	}
	for n, e := range bm {
		if prev, ok := am[n]; !ok {
			key := content{n.Tag(), e.Label, e.Level}
			if twin, neutral := removed[key]; neutral {
				delete(out, twin) // content-neutral replacement: cancels
				delete(removed, key)
				continue
			}
			out[n] = Change{Tag: n.Tag(), Node: n, Kind: Added, New: e.Label, Level: e.Level}
		} else if prev.Label != e.Label || prev.Level != e.Level {
			out[n] = Change{Tag: n.Tag(), Node: n, Kind: Relabeled, Old: prev.Label, New: e.Label, Level: e.Level, OldLevel: prev.Level}
		}
	}
	return out
}

// TestDiffOracle is the differential property test for the hash-pruned
// diff walk: across random mutation histories at several chunk sizes,
// Diff(a, b) must emit exactly the change set the full-snapshot oracle
// computes — for adjacent versions, across version gaps, and in both
// directions.
func TestDiffOracle(t *testing.T) {
	tags := []string{"a", "b", "c", "d", "e"}
	for _, chunkSize := range []int{2, 8, DefaultChunkSize} {
		t.Run(fmt.Sprintf("chunk=%d", chunkSize), func(t *testing.T) {
			d := loadTracked(t, `<r><a/><b/><c/></r>`)
			ix := BuildSized(d, chunkSize)
			d.TakeChanges()
			rng := rand.New(rand.NewSource(int64(chunkSize) + 7))
			history := []*Index{ix}
			for round := 0; round < 80; round++ {
				for i, k := 0, rng.Intn(3)+1; i < k; i++ {
					mutate(t, d, rng, tags)
				}
				next, err := ix.Apply(d, d.TakeChanges())
				if err != nil {
					t.Fatal(err)
				}
				ix = next
				history = append(history, ix)
				// Adjacent pair, a random gap, and the reverse direction.
				pairs := [][2]*Index{
					{history[len(history)-2], ix},
					{history[rng.Intn(len(history))], ix},
					{ix, history[rng.Intn(len(history))]},
				}
				for _, pr := range pairs {
					checkDiff(t, pr[0], pr[1])
				}
			}
		})
	}
}

// checkDiff runs Diff(a, b) and compares the emitted change set with
// the oracle, node by node.
func checkDiff(t *testing.T, a, b *Index) {
	t.Helper()
	want := diffOracle(a, b)
	got := make(map[*xmldom.Node]Change)
	st, err := Diff(a, b, func(c Change) error {
		if _, dup := got[c.Node]; dup {
			return fmt.Errorf("node emitted twice (tag %q)", c.Tag)
		}
		got[c.Node] = c
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Diff emitted %d changes, oracle has %d", len(got), len(want))
	}
	if st.Changes != len(want) {
		t.Fatalf("DiffStats.Changes %d, oracle has %d", st.Changes, len(want))
	}
	for n, w := range want {
		g, ok := got[n]
		if !ok {
			t.Fatalf("Diff missed %s of <%s> %v", w.Kind, w.Tag, w.New)
		}
		if g != w {
			t.Fatalf("Diff change %+v, oracle %+v", g, w)
		}
	}
}

// TestDiffSkipsSharedChunks pins the O(changed chunks) claim at the
// walk level: after one small mutation in a many-chunk document, the
// diff must decode only a handful of chunks and skip the rest by
// pointer identity — and an identical pair must decode none at all.
func TestDiffSkipsSharedChunks(t *testing.T) {
	d := loadTracked(t, `<r></r>`)
	for i := 0; i < 600; i++ {
		if _, err := d.InsertElement(d.X.Root, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	ix := BuildSized(d, 16)
	d.TakeChanges()
	total := ix.Chunks("x")
	if total < 30 {
		t.Fatalf("expected a many-chunk tag, got %d chunks", total)
	}

	if _, err := d.InsertElement(d.X.Root, 300, "x"); err != nil {
		t.Fatal(err)
	}
	next, err := ix.Apply(d, d.TakeChanges())
	if err != nil {
		t.Fatal(err)
	}
	checkDiff(t, ix, next)
	st, err := Diff(ix, next, func(Change) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// One insert plus the O(log n) neighbors an L-Tree split relabels.
	if st.Changes < 1 || st.Changes > 8 {
		t.Fatalf("one insert produced %d changes", st.Changes)
	}
	if st.ChunksTouched > 6 {
		t.Fatalf("diff decoded %d chunks of %d for a one-entry change", st.ChunksTouched, total)
	}
	if st.ChunksShared < total-4 {
		t.Fatalf("diff shared only %d of %d chunks", st.ChunksShared, total)
	}

	st, err = Diff(next, next, func(Change) error {
		t.Fatal("identical versions emitted a change")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksTouched != 0 {
		t.Fatalf("identical diff decoded %d chunks", st.ChunksTouched)
	}
}
