package core

import "fmt"

// FromLabels reconstructs a materialized L-Tree from a label sequence —
// the persistence counterpart of the paper's §4.2 observation that "all
// the structural information of the L-Tree is implicit in the labels
// themselves". The labels must be strictly increasing and form a valid
// L-Tree image for the parameters (positional numbering with gap-free
// child slots); deleted marks tombstoned slots (nil = none); height is
// the root height to restore (0 = the minimal height covering the
// labels). It returns the tree and its leaves in label order.
func FromLabels(p Params, labels []uint64, deleted []bool, height int) (*Tree, []*Node, error) {
	t, err := New(p)
	if err != nil {
		return nil, nil, err
	}
	if deleted != nil && len(deleted) != len(labels) {
		return nil, nil, fmt.Errorf("ltree: %d deleted flags for %d labels", len(deleted), len(labels))
	}
	if len(labels) == 0 {
		if height > 1 {
			if err := t.ensurePow(height); err != nil {
				return nil, nil, err
			}
			t.root = &Node{height: height, num: 0}
		}
		return t, nil, nil
	}
	// Infer the minimal height and honor a taller requested one.
	maxLabel := labels[len(labels)-1]
	h := 1
	if err := t.ensurePow(h); err != nil {
		return nil, nil, err
	}
	for t.pow[h] <= maxLabel {
		h++
		if err := t.ensurePow(h); err != nil {
			return nil, nil, err
		}
	}
	if height > h {
		h = height
		if err := t.ensurePow(h); err != nil {
			return nil, nil, err
		}
	}

	root := &Node{height: h, num: 0}
	leaves := make([]*Node, 0, len(labels))
	var prev uint64
	for i, label := range labels {
		if i > 0 && label <= prev {
			return nil, nil, fmt.Errorf("ltree: labels not strictly increasing at %d (%d after %d)", i, label, prev)
		}
		prev = label
		cur := root
		for level := h - 1; level >= 0; level-- {
			spacing := t.pow[level]
			slot := int((label - cur.num) / spacing)
			if slot >= int(t.radix) {
				return nil, nil, fmt.Errorf("ltree: label %d needs slot %d ≥ radix at height %d", label, slot, level)
			}
			want := cur.num + uint64(slot)*spacing
			n := len(cur.children)
			switch {
			case n > 0 && cur.children[n-1].num == want:
				// Descend the rightmost child (ascending labels only ever
				// extend to the right).
				cur = cur.children[n-1]
			case slot == n:
				child := &Node{parent: cur, pos: n, height: level, num: want}
				cur.children = append(cur.children, child)
				cur = child
			default:
				return nil, nil, fmt.Errorf("ltree: label %d leaves a gap at height %d (slot %d, have %d children)",
					label, level, slot, n)
			}
		}
		cur.leaves = 1
		if deleted != nil && deleted[i] {
			cur.deleted = true
		}
		leaves = append(leaves, cur)
	}
	// Fanout sanity against the structural bound.
	var fanErr error
	countLeaves(root, &fanErr, t.params.F-1)
	if fanErr != nil {
		return nil, nil, fanErr
	}
	t.root = root
	t.n = len(labels)
	t.live = len(labels)
	if deleted != nil {
		for _, d := range deleted {
			if d {
				t.live--
			}
		}
	}
	if err := t.Check(); err != nil {
		return nil, nil, fmt.Errorf("ltree: restored tree invalid: %w", err)
	}
	return t, leaves, nil
}

// countLeaves fills in the occupancy counters bottom-up and checks the
// fanout bound.
func countLeaves(v *Node, errOut *error, maxFanout int) int {
	if v.height == 0 {
		return v.leaves
	}
	if len(v.children) > maxFanout && *errOut == nil {
		*errOut = fmt.Errorf("ltree: restored fanout %d exceeds f−1 = %d", len(v.children), maxFanout)
	}
	total := 0
	for _, c := range v.children {
		total += countLeaves(c, errOut, maxFanout)
	}
	v.leaves = total
	return total
}

// SnapshotState extracts everything needed to reconstruct the tree with
// FromLabels: the label sequence, the tombstone flags and the height.
func (t *Tree) SnapshotState() (labels []uint64, deleted []bool, height int) {
	labels = make([]uint64, 0, t.n)
	deleted = make([]bool, 0, t.n)
	hasTombstones := false
	t.Ascend(func(lf *Node) bool {
		labels = append(labels, lf.num)
		deleted = append(deleted, lf.deleted)
		if lf.deleted {
			hasTombstones = true
		}
		return true
	})
	if !hasTombstones {
		deleted = nil
	}
	return labels, deleted, t.root.height
}
