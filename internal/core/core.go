// Package core implements the materialized L-Tree of Chen, Mihaila,
// Bordawekar and Padmanabhan, "L-Tree: a Dynamic Labeling Structure for
// Ordered XML Data" (EDBT 2004 Workshops).
//
// An L-Tree is an ordered, balanced tree whose leaves stand for the tags of
// an XML document in document order (begin tag, end tag, or text section).
// Every node v carries a number num(v); the number of a leaf is the label
// of its tag. Numbers are assigned positionally,
//
//	num(root) = 0
//	num(i-th child c of v) = num(v) + i·(f−1)^height(c)
//
// so that leaf numbers are strictly increasing in document order
// (Proposition 1 of the paper). Two parameters govern the shape:
//
//	s ≥ 2         — how many pieces an overfull node splits into
//	r = f/s ≥ 2   — the arity of freshly built subtrees
//
// Each internal node v tolerates at most lmax(v) = s·r^height(v) leaf
// descendants. An insertion that drives the highest such node v to
// l(v) = lmax(v) splits v into s complete r-ary subtrees over the same
// leaf sequence, renumbering only those subtrees and v's right siblings.
// This yields O(log n) amortized renumberings per insertion and
// O(log n)-bit labels (paper §3).
//
// The label radix is f−1, which Figure 2 of the paper pins down and which
// is tight: the maximum fanout reachable between splits is exactly f−1
// (see DESIGN.md §2.2).
package core

import (
	"errors"
	"fmt"

	"github.com/ltree-db/ltree/internal/stats"
)

// invalidNum marks nodes that have never been numbered. Valid labels are
// < 1<<62, so the sentinel can never collide with a real number.
const invalidNum = ^uint64(0)

// maxLabelSpace bounds the root interval (f−1)^H so that all labels fit
// comfortably in uint64 arithmetic, leaving headroom for intermediate sums.
const maxLabelSpace = uint64(1) << 62

// Errors reported by the L-Tree. They are sentinel values so callers can
// match them with errors.Is.
var (
	ErrBadParams     = errors.New("ltree: invalid parameters: need s ≥ 2 and f a multiple of s with f/s ≥ 2")
	ErrNotLeaf       = errors.New("ltree: reference node is not a leaf of this tree")
	ErrNotEmpty      = errors.New("ltree: bulk load requires an empty tree")
	ErrEmpty         = errors.New("ltree: tree has no leaves")
	ErrLabelOverflow = errors.New("ltree: label space exceeds 2^62; choose larger f or s")
	ErrBadCount      = errors.New("ltree: leaf count must be non-negative")
)

// Params selects the shape of an L-Tree. F must be a positive multiple of
// S with F/S ≥ 2 and S ≥ 2; the paper writes the pair as (f, s).
type Params struct {
	F int // split threshold scale; max fanout is F−1, label radix is F−1
	S int // number of pieces an overfull node splits into

	// WideRadix spaces labels with radix F+1 — the constant the paper's
	// printed formulas use — instead of the tight F−1 that Figure 2
	// exhibits and DESIGN.md §2.2 proves sufficient. Splitting and
	// relabeling behaviour is bit-for-bit identical; only label values
	// (and therefore label width) change. Exists for the radix ablation
	// experiment; leave false in production.
	WideRadix bool
}

// Validate reports whether the parameters satisfy the paper's constraints.
func (p Params) Validate() error {
	if p.S < 2 || p.F < 2*p.S || p.F%p.S != 0 {
		return fmt.Errorf("%w (got f=%d, s=%d)", ErrBadParams, p.F, p.S)
	}
	return nil
}

// R returns the rebuild arity r = f/s.
func (p Params) R() int { return p.F / p.S }

// Radix returns the label radix: children of a height-(h+1) node are
// spaced Radix^h apart. The default is the tight f−1 (DESIGN.md §2.2);
// WideRadix selects the paper text's looser f+1.
func (p Params) Radix() int {
	if p.WideRadix {
		return p.F + 1
	}
	return p.F - 1
}

// Node is a node of the L-Tree. Leaves (Height()==0) represent XML tags;
// internal nodes exist only to organise the label space. Nodes are created
// and owned by a Tree; callers hold *Node values as stable identities for
// leaves (a leaf pointer survives every split and renumbering).
type Node struct {
	parent   *Node
	children []*Node // nil for leaves
	pos      int     // index in parent.children
	height   int     // 0 for leaves
	leaves   int     // l(v): leaf descendants (a leaf counts itself: 1)
	num      uint64  // the paper's num(v); the label, for leaves
	deleted  bool    // tombstone mark (leaves only)
	payload  any     // caller-owned reference, e.g. the XML node
}

// Num returns the node's current number; for leaves this is the label.
func (n *Node) Num() uint64 { return n.num }

// Height returns the node's height (0 for leaves).
func (n *Node) Height() int { return n.height }

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.height == 0 }

// Deleted reports whether the leaf carries a tombstone mark.
func (n *Node) Deleted() bool { return n.deleted }

// Payload returns the caller-attached value (nil if none).
func (n *Node) Payload() any { return n.payload }

// SetPayload attaches a caller-owned value to the node, typically the XML
// tag the leaf stands for.
func (n *Node) SetPayload(v any) { n.payload = v }

// Fanout returns the number of children (0 for leaves).
func (n *Node) Fanout() int { return len(n.children) }

// Tree is a materialized L-Tree. The zero value is not usable; construct
// with New. A Tree is not safe for concurrent mutation; wrap it with a
// mutex if shared (the public facade offers that).
type Tree struct {
	params Params
	r      int    // f/s
	s      int    // s
	radix  uint64 // f−1
	root   *Node
	n      int      // total leaves including tombstones (label slots in use)
	live   int      // leaves not marked deleted
	pow    []uint64 // pow[h] = radix^h, maintained ≤ maxLabelSpace
	rpow   []uint64 // rpow[h] = r^h (as uint64; bounded by pow growth)
	st     stats.Counters

	onRelabel func(*Node) // observer for leaf renumberings (may be nil)
}

// New returns an empty L-Tree with the given parameters.
func New(p Params) (*Tree, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{
		params: p,
		r:      p.R(),
		s:      p.S,
		radix:  uint64(p.Radix()),
		pow:    []uint64{1},
		rpow:   []uint64{1},
	}
	if err := t.ensurePow(1); err != nil {
		return nil, err
	}
	t.root = &Node{height: 1, num: 0}
	return t, nil
}

// Params returns the tree's parameters.
func (t *Tree) Params() Params { return t.params }

// Len returns the number of label slots in use: all leaves, including
// tombstoned ones (deleted labels keep occupying their slot, paper §2.3).
func (t *Tree) Len() int { return t.n }

// Live returns the number of leaves not marked deleted.
func (t *Tree) Live() int { return t.live }

// Height returns the height of the tree (root height; ≥ 1).
func (t *Tree) Height() int { return t.root.height }

// LabelSpace returns the size of the current root interval (f−1)^H; every
// label is < LabelSpace.
func (t *Tree) LabelSpace() uint64 { return t.pow[t.root.height] }

// BitsPerLabel returns the number of bits needed to store any current
// label, ⌈log2 LabelSpace⌉ — the paper's bits(f,s,n).
func (t *Tree) BitsPerLabel() int {
	space := t.LabelSpace()
	bits := 0
	for v := space - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// SetRelabelHook installs an observer called once for every leaf whose
// number changes, including freshly numbered leaves. Incremental index
// maintenance hangs off this: a caller that materializes labels elsewhere
// (e.g. a tag index) learns exactly which slots went stale. The hook runs
// inside the mutation, so it must not call back into the tree. Pass nil
// to disable.
func (t *Tree) SetRelabelHook(fn func(*Node)) { t.onRelabel = fn }

// Stats returns a copy of the maintenance cost counters.
func (t *Tree) Stats() stats.Counters { return t.st }

// ResetStats zeroes the maintenance cost counters.
func (t *Tree) ResetStats() { t.st.Reset() }

// lmax returns the paper's occupancy limit s·r^h for a node of height h.
func (t *Tree) lmax(h int) int {
	// rpow is maintained alongside pow; heights present in the tree always
	// have their powers precomputed.
	return t.s * int(t.rpow[h])
}

// ensurePow extends the radix and r power tables up to height h,
// returning ErrLabelOverflow if the label space would exceed maxLabelSpace.
func (t *Tree) ensurePow(h int) error {
	for len(t.pow) <= h {
		last := t.pow[len(t.pow)-1]
		if last > maxLabelSpace/t.radix {
			return ErrLabelOverflow
		}
		t.pow = append(t.pow, last*t.radix)
		t.rpow = append(t.rpow, t.rpow[len(t.rpow)-1]*uint64(t.r))
	}
	return nil
}

// minHeight returns the smallest height H ≥ 1 with r^H ≥ n — the bulk
// loading height of §2.2.
func (t *Tree) minHeight(n int) int {
	h := 1
	p := uint64(t.r)
	for p < uint64(n) {
		h++
		p *= uint64(t.r)
	}
	return h
}
