package core

// This file implements multiple-node (run) insertion, paper §4.1: a whole
// subtree of the XML document contributes a contiguous run of k tags, and
// inserting the run at once amortizes the ancestor accounting and the
// sibling renumbering over all k leaves.

// InsertRunAfter inserts k fresh leaves as a contiguous run immediately
// after leaf p and returns them in order. Ancestor counts are updated once
// (+k); if the highest ancestor v with l(v) ≥ lmax(v) exists, its subtree
// is rebuilt into ⌈l(v)/r^h⌉ complete r-ary trees (for k = 1 this is
// exactly the paper's s-way split). If that many trees would overflow the
// parent's fanout, the rebuild escalates to the parent (DESIGN.md §2.3).
func (t *Tree) InsertRunAfter(p *Node, k int) ([]*Node, error) {
	if p == nil || p.height != 0 || p.parent == nil {
		return nil, ErrNotLeaf
	}
	return t.insertRunAt(p.parent, p.pos+1, k)
}

// InsertRunBefore inserts a run of k fresh leaves immediately before p.
func (t *Tree) InsertRunBefore(p *Node, k int) ([]*Node, error) {
	if p == nil || p.height != 0 || p.parent == nil {
		return nil, ErrNotLeaf
	}
	return t.insertRunAt(p.parent, p.pos, k)
}

// InsertRunFirst inserts a run of k fresh leaves at the front of the label
// order (this is also how an empty tree receives its first run).
func (t *Tree) InsertRunFirst(k int) ([]*Node, error) {
	if t.n == 0 {
		return t.insertRunAt(t.leftmostBottom(), 0, k)
	}
	first := t.First()
	return t.insertRunAt(first.parent, 0, k)
}

// insertRunAt splices k new leaves under parent starting at child index
// idx and rebalances.
func (t *Tree) insertRunAt(parent *Node, idx, k int) ([]*Node, error) {
	if k < 0 {
		return nil, ErrBadCount
	}
	if k == 0 {
		return nil, nil
	}
	if k == 1 {
		x, err := t.insertAt(parent, idx)
		if err != nil {
			return nil, err
		}
		return []*Node{x}, nil
	}

	// Pass 1 (read-only): find the highest ancestor that would reach or
	// exceed its occupancy limit and pre-check label-space growth. A bulk
	// rebuild at the root may raise the height by more than one.
	var target *Node
	for a := parent; a != nil; a = a.parent {
		if a.leaves+k >= t.lmax(a.height) {
			target = a
		}
	}
	if target != nil {
		// A rebuild can escalate up to the root (fanout overflow), which
		// re-loads the tree at the minimal sufficient height; reserve the
		// label space up front so no mutation happens on overflow.
		if err := t.ensurePow(t.minHeight(t.n + k)); err != nil {
			return nil, err
		}
	}

	// Pass 2: splice the run.
	run := make([]*Node, k)
	for i := range run {
		run[i] = &Node{height: 0, leaves: 1, num: invalidNum, parent: parent}
	}
	grown := make([]*Node, 0, len(parent.children)+k)
	grown = append(grown, parent.children[:idx]...)
	grown = append(grown, run...)
	grown = append(grown, parent.children[idx:]...)
	parent.children = grown
	for i := idx; i < len(parent.children); i++ {
		parent.children[i].pos = i
	}
	for a := parent; a != nil; a = a.parent {
		a.leaves += k
		t.st.AncestorUpdates++
	}
	t.n += k
	t.live += k
	t.st.BulkInserts++
	t.st.BulkLeaves += uint64(k)

	if target == nil {
		t.relabelChildrenFrom(parent, idx)
		return run, nil
	}
	t.rebuild(target)
	return run, nil
}

// rebuild replaces v's subtree with m = ⌈l(v)/r^h⌉ complete r-ary trees of
// height h over the same leaf sequence. When m children cannot fit next to
// v's siblings (fanout would exceed f−1), the rebuild escalates to v's
// parent; at the root the whole tree is rebuilt at the minimal sufficient
// height. Single-insert splits are the m = s special case and never
// escalate (Proposition 3 and the fanout bound, DESIGN.md §2.2).
func (t *Tree) rebuild(v *Node) {
	for {
		if v == t.root {
			t.rebuildRoot()
			return
		}
		h := v.height
		capacity := int(t.rpow[h])
		m := (v.leaves + capacity - 1) / capacity
		if m < 1 {
			m = 1
		}
		parent := v.parent
		if len(parent.children)-1+m > t.params.F-1 {
			// The paper's analysis never needs this branch (single inserts
			// split into exactly s pieces that provably fit); very large
			// runs may not, so grow the rebuild scope instead.
			v = parent
			continue
		}
		leaves := appendLeaves(make([]*Node, 0, v.leaves), v)
		subs := make([]*Node, m)
		base, extra := len(leaves)/m, len(leaves)%m
		at := 0
		for i := range subs {
			size := base
			if i < extra {
				size++
			}
			subs[i] = t.buildComplete(leaves[at:at+size], h)
			subs[i].parent = parent
			at += size
		}
		t.st.Splits++
		grown := make([]*Node, 0, len(parent.children)+m-1)
		grown = append(grown, parent.children[:v.pos]...)
		grown = append(grown, subs...)
		grown = append(grown, parent.children[v.pos+1:]...)
		pos := v.pos
		parent.children = grown
		t.relabelChildrenFrom(parent, pos)
		return
	}
}

// rebuildRoot rebuilds the entire tree as a bulk load of the current leaf
// sequence at the minimal sufficient height (which is strictly larger than
// the old height whenever the root hit its occupancy limit).
func (t *Tree) rebuildRoot() {
	leaves := t.Leaves()
	h := t.minHeight(len(leaves))
	if h < 1 {
		h = 1
	}
	// ensurePow was called in pass 1; heights only shrink below the old
	// root height after explicit Compact calls.
	t.root = t.buildComplete(leaves, h)
	t.root.parent = nil
	t.root.num = invalidNum
	t.assign(t.root, 0)
	t.st.Rebuilds++
	t.st.RootSplits++
}
