package core

import "testing"

// FuzzOpStream interprets arbitrary bytes as an operation stream against
// a small-parameter tree (the harshest constants) and requires every
// invariant to hold after each operation. Run with `go test -fuzz
// FuzzOpStream ./internal/core` to explore; the seed corpus runs in
// normal test mode.
func FuzzOpStream(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 252})
	f.Add([]byte("hammer the same spot aaaaaaaaaaaaaaaaaaaaaa"))
	f.Add([]byte{255, 254, 253, 0, 0, 0, 9, 9, 9, 128, 64, 32})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		tr, err := New(Params{F: 4, S: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range ops {
			n := tr.Len()
			switch {
			case n == 0 || b < 140:
				// Single insert at a byte-chosen position.
				pos := 0
				if n > 0 {
					pos = int(b) % (n + 1)
				}
				if pos == 0 {
					_, err = tr.InsertFirst()
				} else {
					_, err = tr.InsertAfter(tr.LeafAt(pos - 1))
				}
			case b < 180:
				// Run insert, size from the byte.
				k := int(b-139)%9 + 1
				_, err = tr.InsertRunAfter(tr.LeafAt(int(b)%n), k)
			case b < 210:
				err = tr.Delete(tr.LeafAt(int(b) % n))
			case b < 240:
				err = tr.Remove(tr.LeafAt(int(b) % n))
			default:
				err = tr.Compact()
			}
			if err != nil {
				t.Fatalf("op %d (byte %d): %v", i, b, err)
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("op %d (byte %d): %v", i, b, err)
			}
		}
	})
}
