package core

// This file contains bulk loading (§2.2) and the shared renumbering
// machinery: building complete r-ary subtrees over a leaf sequence and
// assigning positional numbers.

// Load bulk-loads n fresh leaves into an empty tree, building a complete
// r-ary tree of height H = min{h ≥ 1 : r^h ≥ n} (§2.2) and numbering it.
// It returns the leaves in order. Load does not charge the maintenance
// counters: bulk loading is the baseline state that later insertions are
// amortized against.
func (t *Tree) Load(n int) ([]*Node, error) {
	if n < 0 {
		return nil, ErrBadCount
	}
	if t.n != 0 {
		return nil, ErrNotEmpty
	}
	if n == 0 {
		return nil, nil
	}
	h := t.minHeight(n)
	if err := t.ensurePow(h); err != nil {
		return nil, err
	}
	leaves := make([]*Node, n)
	for i := range leaves {
		leaves[i] = &Node{height: 0, leaves: 1, num: invalidNum}
	}
	t.root = t.buildComplete(leaves, h)
	t.root.num = invalidNum
	t.assign(t.root, 0)
	t.n = n
	t.live = n
	t.st.Reset()
	return leaves, nil
}

// buildComplete builds a subtree of height h over the given leaf sequence,
// reusing the leaf nodes and creating fresh internal nodes. The leaf count
// must satisfy len(leaves) ≤ r^h; leaves are distributed as evenly as
// possible, so every descendant at height h' holds ≤ r^h' leaves. Numbers
// are left unassigned (invalidNum) for a later assign pass.
func (t *Tree) buildComplete(leaves []*Node, h int) *Node {
	if h == 0 {
		if len(leaves) != 1 {
			panic("ltree: internal error: height-0 build needs exactly one leaf")
		}
		return leaves[0]
	}
	capacity := int(t.rpow[h-1])
	k := (len(leaves) + capacity - 1) / capacity // ≤ r children
	node := &Node{height: h, leaves: len(leaves), num: invalidNum}
	node.children = make([]*Node, 0, k)
	base, extra := len(leaves)/k, len(leaves)%k
	idx := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		child := t.buildComplete(leaves[idx:idx+size], h-1)
		child.parent = node
		child.pos = i
		node.children = append(node.children, child)
		idx += size
	}
	return node
}

// assign sets num(v) = num and renumbers v's subtree positionally. If the
// node already carries the requested number, the whole subtree is already
// consistent (positional numbering is a function of the root number and
// the shape, which only changes together with numbers) and the walk stops.
// Changed numbers are charged to the maintenance counters.
func (t *Tree) assign(v *Node, num uint64) {
	if v.num == num {
		return
	}
	v.num = num
	if v.height == 0 {
		t.st.RelabeledLeaves++
		if t.onRelabel != nil {
			t.onRelabel(v)
		}
		return
	}
	t.st.RelabeledInternal++
	spacing := t.pow[v.height-1]
	for i, c := range v.children {
		c.pos = i
		t.assign(c, num+uint64(i)*spacing)
	}
}

// relabelChildrenFrom renumbers the children of v starting at index from
// (and, transitively, any subtree whose root number changes). This is the
// paper's relabel(v, num(v), i) call used both after a plain insertion
// (renumber the new leaf and its right siblings) and after a split
// (renumber the s new subtrees and the split node's right siblings).
func (t *Tree) relabelChildrenFrom(v *Node, from int) {
	spacing := t.pow[v.height-1]
	for i := from; i < len(v.children); i++ {
		c := v.children[i]
		c.pos = i
		t.assign(c, v.num+uint64(i)*spacing)
	}
}

// appendLeaves collects the leaves below v in order.
func appendLeaves(dst []*Node, v *Node) []*Node {
	if v.height == 0 {
		return append(dst, v)
	}
	for _, c := range v.children {
		dst = appendLeaves(dst, c)
	}
	return dst
}

// Leaves returns all leaves (including tombstones) in label order.
func (t *Tree) Leaves() []*Node {
	if t.n == 0 {
		return nil
	}
	return appendLeaves(make([]*Node, 0, t.n), t.root)
}

// Compact physically rebuilds the tree over the live (non-tombstoned)
// leaves, restoring bulk-load density and the minimal height for the live
// count. Leaf node identities are preserved. This is an extension beyond
// the paper (which only marks deletions); see DESIGN.md §2.3.
func (t *Tree) Compact() error {
	all := t.Leaves()
	liveLeaves := all[:0]
	for _, lf := range all {
		if !lf.deleted {
			liveLeaves = append(liveLeaves, lf)
		}
	}
	n := len(liveLeaves)
	if n == 0 {
		t.root = &Node{height: 1, num: 0}
		t.n, t.live = 0, 0
		return nil
	}
	h := t.minHeight(n)
	if err := t.ensurePow(h); err != nil {
		return err
	}
	for _, lf := range liveLeaves {
		lf.parent = nil
		lf.num = invalidNum
	}
	t.root = t.buildComplete(liveLeaves, h)
	t.root.num = invalidNum
	t.assign(t.root, 0)
	t.n = n
	t.live = n
	t.st.Rebuilds++
	return nil
}
