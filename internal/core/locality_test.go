package core

import (
	"math/rand"
	"testing"
)

// localityWindow checks the key efficiency property behind the §3.1
// amortization: every label changed by an insertion lies inside the label
// interval of a single ancestor of the anchor (the parent of the rebuilt
// node), and that ancestor's pre-insert occupancy obeys the lmax bound —
// so the blast radius of any update is one bounded subtree, never
// scattered writes. It returns the height of the smallest covering
// ancestor interval.
func localityWindow(t *testing.T, tr *Tree, p Params, anchorOld uint64, oldHeight int, changedOld []uint64, oldCount func(lo, hi uint64) int) int {
	t.Helper()
	if len(changedOld) == 0 {
		return 0
	}
	radix := uint64(p.Radix())
	pow := make([]uint64, oldHeight+1)
	pow[0] = 1
	for h := 1; h <= oldHeight; h++ {
		pow[h] = pow[h-1] * radix
	}
	for h := 1; h <= oldHeight; h++ {
		lo := anchorOld - anchorOld%pow[h]
		hi := lo + pow[h]
		all := true
		for _, x := range changedOld {
			if x < lo || x >= hi {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		// Found the covering ancestor: its old occupancy must respect the
		// invariant l < lmax = s·r^h.
		count := oldCount(lo, hi)
		lmax := p.S
		r := p.R()
		for i := 0; i < h; i++ {
			lmax *= r
		}
		if count > lmax {
			t.Fatalf("covering ancestor at height %d held %d > lmax %d leaves", h, count, lmax)
		}
		return h
	}
	t.Fatalf("changed labels not covered by any ancestor interval of the anchor")
	return 0
}

// TestRelabelLocality verifies the bounded-blast-radius property for
// single insertions across parameters and random positions.
func TestRelabelLocality(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 9, S: 3}} {
		tr, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Load(512); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for step := 0; step < 600; step++ {
			before := map[*Node]uint64{}
			var oldLabels []uint64
			tr.Ascend(func(lf *Node) bool {
				before[lf] = lf.Num()
				oldLabels = append(oldLabels, lf.Num())
				return true
			})
			oldHeight := tr.Height()
			anchor := tr.LeafAt(rng.Intn(tr.Len()))
			anchorOld := anchor.Num()
			if _, err := tr.InsertAfter(anchor); err != nil {
				t.Fatal(err)
			}
			var changedOld []uint64
			tr.Ascend(func(lf *Node) bool {
				if old, ok := before[lf]; ok && old != lf.Num() {
					changedOld = append(changedOld, old)
				}
				return true
			})
			oldCount := func(lo, hi uint64) int {
				n := 0
				for _, x := range oldLabels {
					if x >= lo && x < hi {
						n++
					}
				}
				return n
			}
			localityWindow(t, tr, p, anchorOld, oldHeight, changedOld, oldCount)
		}
	}
}

// TestRelabelLocalityBulk extends the bounded-blast-radius property to
// §4.1 run insertions of mixed sizes.
func TestRelabelLocalityBulk(t *testing.T) {
	p := Params{F: 8, S: 2}
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Load(256); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for step := 0; step < 200; step++ {
		before := map[*Node]uint64{}
		var oldLabels []uint64
		tr.Ascend(func(lf *Node) bool {
			before[lf] = lf.Num()
			oldLabels = append(oldLabels, lf.Num())
			return true
		})
		oldHeight := tr.Height()
		k := 1 + rng.Intn(64)
		anchor := tr.LeafAt(rng.Intn(tr.Len()))
		anchorOld := anchor.Num()
		if _, err := tr.InsertRunAfter(anchor, k); err != nil {
			t.Fatal(err)
		}
		var changedOld []uint64
		tr.Ascend(func(lf *Node) bool {
			if old, ok := before[lf]; ok && old != lf.Num() {
				changedOld = append(changedOld, old)
			}
			return true
		})
		oldCount := func(lo, hi uint64) int {
			n := 0
			for _, x := range oldLabels {
				if x >= lo && x < hi {
					n++
				}
			}
			return n
		}
		localityWindow(t, tr, p, anchorOld, oldHeight, changedOld, oldCount)
	}
}

// TestWalkNodesAndCount covers the structure-inspection API.
func TestWalkNodesAndCount(t *testing.T) {
	tr, err := New(Params{F: 4, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Load(8); err != nil {
		t.Fatal(err)
	}
	// Complete binary over 8 leaves at height 3: 8 + 4 + 2 + 1 nodes.
	if got := tr.NodeCount(); got != 15 {
		t.Fatalf("node count = %d, want 15", got)
	}
	leaves, internals := 0, 0
	tr.WalkNodes(func(n *Node) bool {
		if n.IsLeaf() {
			leaves++
		} else {
			internals++
		}
		return true
	})
	if leaves != 8 || internals != 7 {
		t.Fatalf("leaves=%d internals=%d", leaves, internals)
	}
	// Early stop.
	visited := 0
	tr.WalkNodes(func(*Node) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("early stop visited %d", visited)
	}
}
