package core

// This file implements Algorithm 1 of the paper: single-leaf insertion
// with occupancy accounting, the split rule, and (tombstone) deletion.

// InsertAfter inserts a fresh leaf immediately after leaf p in label order
// and returns it. This is Algorithm 1 of the paper: the new leaf becomes
// p's right sibling; every ancestor's leaf count grows by one; if the
// highest ancestor v reaching l(v) = lmax(v) exists it is split into s
// complete r-ary subtrees, otherwise only the new leaf and its right
// siblings are renumbered.
func (t *Tree) InsertAfter(p *Node) (*Node, error) {
	if p == nil || p.height != 0 || p.parent == nil {
		return nil, ErrNotLeaf
	}
	return t.insertAt(p.parent, p.pos+1)
}

// InsertBefore inserts a fresh leaf immediately before leaf p in label
// order and returns it. The paper presents only right-sibling insertion;
// left insertion is the same splice one slot earlier and shares all
// accounting.
func (t *Tree) InsertBefore(p *Node) (*Node, error) {
	if p == nil || p.height != 0 || p.parent == nil {
		return nil, ErrNotLeaf
	}
	return t.insertAt(p.parent, p.pos)
}

// InsertFirst inserts a fresh leaf at the very front of the label order
// (or as the only leaf of an empty tree) and returns it.
func (t *Tree) InsertFirst() (*Node, error) {
	if t.n == 0 {
		return t.insertAt(t.leftmostBottom(), 0)
	}
	first := t.First()
	return t.insertAt(first.parent, 0)
}

// InsertLast appends a fresh leaf at the end of the label order.
func (t *Tree) InsertLast() (*Node, error) {
	if t.n == 0 {
		return t.InsertFirst()
	}
	last := t.Last()
	return t.insertAt(last.parent, last.pos+1)
}

// leftmostBottom descends leftmost to the height-1 frontier; on an empty
// tree that is the root itself.
func (t *Tree) leftmostBottom() *Node {
	v := t.root
	for v.height > 1 && len(v.children) > 0 {
		v = v.children[0]
	}
	return v
}

// insertAt splices a new leaf under parent at child index idx and runs the
// maintenance of Algorithm 1. parent must be a height-1 node (the caller
// guarantees this: leaves' parents always are).
func (t *Tree) insertAt(parent *Node, idx int) (*Node, error) {
	// Pass 1 (read-only): find the highest ancestor that would reach its
	// occupancy limit, so label-space growth can be checked before any
	// mutation.
	var splitTarget *Node
	for a := parent; a != nil; a = a.parent {
		if a.leaves+1 == t.lmax(a.height) {
			splitTarget = a
		}
	}
	if splitTarget != nil {
		// A split may escalate to a whole-tree rebuild when removals have
		// weakened fanouts, so reserve label space for both outcomes
		// before any mutation.
		need := t.root.height + 1
		if alt := t.minHeight(t.n + 1); alt > need {
			need = alt
		}
		if err := t.ensurePow(need); err != nil {
			return nil, err
		}
	}

	// Pass 2: splice and account.
	x := &Node{height: 0, leaves: 1, num: invalidNum, parent: parent}
	parent.children = append(parent.children, nil)
	copy(parent.children[idx+1:], parent.children[idx:])
	parent.children[idx] = x
	x.pos = idx
	for i := idx + 1; i < len(parent.children); i++ {
		parent.children[i].pos = i
	}
	for a := parent; a != nil; a = a.parent {
		a.leaves++
		t.st.AncestorUpdates++
	}
	t.n++
	t.live++
	t.st.Inserts++

	if splitTarget == nil {
		// No node reached its limit: renumber the new leaf and its right
		// siblings (≤ f nodes).
		t.relabelChildrenFrom(parent, idx)
		return x, nil
	}
	t.split(splitTarget)
	return x, nil
}

// split replaces v (which has exactly l(v) = lmax(v) = s·r^h leaves) with
// s complete r-ary subtrees of height h over the same leaf sequence, then
// renumbers the new subtrees and v's right siblings. If v is the root, a
// new root is created first and the height grows by one; cascading splits
// are impossible (Proposition 3) because v is the highest node at its
// limit and its ancestors' leaf counts do not change.
func (t *Tree) split(v *Node) {
	if v != t.root && len(v.parent.children)-1+t.s > t.params.F-1 {
		// Unreachable on insert-only streams (the fanout bound of
		// DESIGN.md §2.2), but physical removals can leave the parent
		// with many under-full children; rebuild the parent instead.
		t.rebuild(v.parent)
		return
	}
	h := v.height
	leaves := appendLeaves(make([]*Node, 0, v.leaves), v)
	per := len(leaves) / t.s // exactly r^h
	subs := make([]*Node, t.s)
	for i := range subs {
		subs[i] = t.buildComplete(leaves[i*per:(i+1)*per], h)
	}
	t.st.Splits++

	if v == t.root {
		t.st.RootSplits++
		newRoot := &Node{height: h + 1, leaves: v.leaves, num: invalidNum}
		newRoot.children = subs
		for i, sub := range subs {
			sub.parent = newRoot
			sub.pos = i
		}
		t.root = newRoot
		t.assign(newRoot, 0)
		return
	}

	parent := v.parent
	at := v.pos
	// Splice the s subtrees in place of v.
	grown := make([]*Node, 0, len(parent.children)+t.s-1)
	grown = append(grown, parent.children[:at]...)
	grown = append(grown, subs...)
	grown = append(grown, parent.children[at+1:]...)
	parent.children = grown
	for _, sub := range subs {
		sub.parent = parent
	}
	// Renumber the new subtrees and every former right sibling of v
	// (their subtree numbers all shift by (s−1)·(f−1)^h).
	t.relabelChildrenFrom(parent, at)
}

// Delete marks the leaf as deleted without relabeling anything (§2.3): the
// label slot stays occupied, so density accounting is unchanged and no
// other label moves. Deleting a tombstone is a no-op.
func (t *Tree) Delete(leaf *Node) error {
	if leaf == nil || leaf.height != 0 || leaf.parent == nil {
		return ErrNotLeaf
	}
	if leaf.deleted {
		return nil
	}
	leaf.deleted = true
	t.live--
	t.st.Deletes++
	return nil
}

// Undelete clears a tombstone mark, making the slot live again.
func (t *Tree) Undelete(leaf *Node) error {
	if leaf == nil || leaf.height != 0 || leaf.parent == nil {
		return ErrNotLeaf
	}
	if leaf.deleted {
		leaf.deleted = false
		t.live++
	}
	return nil
}

// Remove physically detaches the leaf from the tree (an extension beyond
// the paper's tombstones). Counts along the ancestor path shrink; empty
// internal nodes are pruned; the detached slot's right siblings are
// renumbered to restore positional numbering (the mirror image of the
// paper's insertion relabeling, ≤ f nodes per affected level). Occupancy
// limits keep holding since counts only shrink; fanouts may drop below r,
// which the paper's analysis tolerates (deletions are not rebalanced).
func (t *Tree) Remove(leaf *Node) error {
	if leaf == nil || leaf.height != 0 || leaf.parent == nil {
		return ErrNotLeaf
	}
	if !leaf.deleted {
		t.live--
	}
	start := leaf.parent
	at := leaf.pos
	detachChild(start, at)
	leaf.parent = nil
	for a := start; a != nil; a = a.parent {
		a.leaves--
	}
	t.relabelChildrenFrom(start, at)
	// Prune internal nodes emptied by the removal (never the root),
	// compacting and renumbering their right siblings level by level.
	for v := start; v != t.root && v.leaves == 0; {
		p := v.parent
		pos := v.pos
		detachChild(p, pos)
		v.parent = nil
		t.relabelChildrenFrom(p, pos)
		v = p
	}
	t.n--
	t.st.Deletes++
	if t.n == 0 {
		// Reset to the canonical empty shape so later insertions start
		// from a height-1 root again.
		t.root = &Node{height: 1, num: 0}
	}
	return nil
}

// detachChild splices child index pos out of p and refreshes sibling
// positions.
func detachChild(p *Node, pos int) {
	copy(p.children[pos:], p.children[pos+1:])
	p.children[len(p.children)-1] = nil
	p.children = p.children[:len(p.children)-1]
	for i := pos; i < len(p.children); i++ {
		p.children[i].pos = i
	}
}
