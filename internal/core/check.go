package core

import "fmt"

// Check validates every structural and numbering invariant of the L-Tree
// (Propositions 1 and 2 of the paper plus the derived fanout bound). It is
// O(n) and intended for tests and the experiment harness, not hot paths.
//
// Verified invariants:
//  1. link consistency: parent/pos/height bookkeeping;
//  2. leaf counts: l(v) equals the number of leaf descendants;
//  3. occupancy: l(v) < lmax(v) = s·r^h for every internal node;
//  4. fanout: 1 ≤ c(v) ≤ f−1 for internal nodes (root may be emptier);
//  5. all leaves at the same depth (height 0 exactly at depth H);
//  6. numbering: num(child i of v) = num(v) + i·(f−1)^height(child),
//     num(root) = 0, and therefore strictly increasing leaf labels
//     bounded by the label space (Proposition 1).
func (t *Tree) Check() error {
	if t.root == nil {
		return fmt.Errorf("ltree: nil root")
	}
	if t.root.parent != nil {
		return fmt.Errorf("ltree: root has a parent")
	}
	if t.root.height < 1 {
		return fmt.Errorf("ltree: root height %d < 1", t.root.height)
	}
	if t.n > 0 && t.root.num != 0 {
		return fmt.Errorf("ltree: root num = %d, want 0", t.root.num)
	}
	if t.root.leaves != t.n {
		return fmt.Errorf("ltree: root leaf count %d != tree size %d", t.root.leaves, t.n)
	}
	live := 0
	var prev *Node
	first := true
	var walk func(v *Node) (int, error)
	walk = func(v *Node) (int, error) {
		if v.height == 0 {
			if len(v.children) != 0 {
				return 0, fmt.Errorf("ltree: leaf %d has children", v.num)
			}
			if v.leaves != 1 {
				return 0, fmt.Errorf("ltree: leaf %d has leaf count %d", v.num, v.leaves)
			}
			if !v.deleted {
				live++
			}
			if !first && prev.num >= v.num {
				return 0, fmt.Errorf("ltree: leaf labels not increasing: %d then %d", prev.num, v.num)
			}
			if v.num >= t.pow[t.root.height] {
				return 0, fmt.Errorf("ltree: label %d outside label space %d", v.num, t.pow[t.root.height])
			}
			first = false
			prev = v
			return 1, nil
		}
		if len(v.children) == 0 && v != t.root {
			return 0, fmt.Errorf("ltree: empty internal node (height %d, num %d)", v.height, v.num)
		}
		if len(v.children) > t.params.F-1 {
			return 0, fmt.Errorf("ltree: fanout %d exceeds f−1 = %d at height %d",
				len(v.children), t.params.F-1, v.height)
		}
		if v.leaves >= t.lmax(v.height) {
			return 0, fmt.Errorf("ltree: occupancy l=%d ≥ lmax=%d at height %d (num %d)",
				v.leaves, t.lmax(v.height), v.height, v.num)
		}
		total := 0
		spacing := t.pow[v.height-1]
		for i, c := range v.children {
			if c.parent != v {
				return 0, fmt.Errorf("ltree: broken parent link below num %d", v.num)
			}
			if c.pos != i {
				return 0, fmt.Errorf("ltree: child pos %d, want %d (below num %d)", c.pos, i, v.num)
			}
			if c.height != v.height-1 {
				return 0, fmt.Errorf("ltree: child height %d under height %d", c.height, v.height)
			}
			want := v.num + uint64(i)*spacing
			if c.num != want {
				return 0, fmt.Errorf("ltree: num(child %d of %d) = %d, want %d", i, v.num, c.num, want)
			}
			sub, err := walk(c)
			if err != nil {
				return 0, err
			}
			total += sub
		}
		if total != v.leaves {
			return 0, fmt.Errorf("ltree: leaf count %d, counted %d (num %d)", v.leaves, total, v.num)
		}
		return total, nil
	}
	n, err := walk(t.root)
	if err != nil {
		return err
	}
	if n != t.n {
		return fmt.Errorf("ltree: counted %d leaves, tree says %d", n, t.n)
	}
	if live != t.live {
		return fmt.Errorf("ltree: counted %d live leaves, tree says %d", live, t.live)
	}
	return nil
}
