package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFromLabelsRoundTrip: any reachable tree state snapshots and restores
// to bit-identical labels, heights and structure.
func TestFromLabelsRoundTrip(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 9, S: 3}} {
		tr, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Load(200); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 500; i++ {
			lf := tr.LeafAt(rng.Intn(tr.Len()))
			switch rng.Intn(10) {
			case 0:
				if err := tr.Delete(lf); err != nil {
					t.Fatal(err)
				}
			case 1:
				if _, err := tr.InsertRunAfter(lf, 1+rng.Intn(5)); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := tr.InsertAfter(lf); err != nil {
					t.Fatal(err)
				}
			}
		}
		labels, deleted, height := tr.SnapshotState()
		restored, leaves, err := FromLabels(p, labels, deleted, height)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if restored.Height() != tr.Height() {
			t.Fatalf("height %d, want %d", restored.Height(), tr.Height())
		}
		if restored.Len() != tr.Len() || restored.Live() != tr.Live() {
			t.Fatalf("len/live %d/%d, want %d/%d", restored.Len(), restored.Live(), tr.Len(), tr.Live())
		}
		want := tr.Nums()
		got := restored.Nums()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("label %d: %d, want %d", i, got[i], want[i])
			}
		}
		if len(leaves) != len(want) {
			t.Fatalf("leaves %d, want %d", len(leaves), len(want))
		}
		// The restored tree keeps working: hammer it and re-check.
		for i := 0; i < 300; i++ {
			lf := restored.LeafAt(rng.Intn(restored.Len()))
			if _, err := restored.InsertAfter(lf); err != nil {
				t.Fatal(err)
			}
		}
		if err := restored.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFromLabelsEmpty(t *testing.T) {
	tr, leaves, err := FromLabels(Params{F: 4, S: 2}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || leaves != nil {
		t.Fatal("empty restore wrong")
	}
	if _, err := tr.InsertFirst(); err != nil {
		t.Fatal(err)
	}
	// Empty with preserved height.
	tr2, _, err := FromLabels(Params{F: 4, S: 2}, nil, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Height() != 5 {
		t.Fatalf("height %d, want 5", tr2.Height())
	}
}

func TestFromLabelsRejectsInvalid(t *testing.T) {
	p := Params{F: 4, S: 2}
	cases := []struct {
		name   string
		labels []uint64
	}{
		{"unsorted", []uint64{3, 1}},
		{"duplicate", []uint64{3, 3}},
		{"gapped slots", []uint64{0, 2}},       // height-1 slot 1 missing
		{"gapped subtree", []uint64{0, 1, 18}}, // height-2 slot 1 missing (radix 3)
	}
	for _, c := range cases {
		if _, _, err := FromLabels(p, c.labels, nil, 0); err == nil {
			t.Errorf("%s: FromLabels(%v) should fail", c.name, c.labels)
		}
	}
	if _, _, err := FromLabels(p, []uint64{0, 1}, []bool{true}, 0); err == nil {
		t.Error("mismatched deleted flags should fail")
	}
	if _, _, err := FromLabels(Params{F: 5, S: 2}, []uint64{0}, nil, 0); err == nil {
		t.Error("bad params should fail")
	}
}

// TestQuickSnapshotRestore: random insert streams always round-trip.
func TestQuickSnapshotRestore(t *testing.T) {
	prop := func(seed int64) bool {
		p := Params{F: 6, S: 2}
		tr, err := New(p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			if tr.Len() == 0 {
				if _, err := tr.InsertFirst(); err != nil {
					return false
				}
				continue
			}
			lf := tr.LeafAt(rng.Intn(tr.Len()))
			if rng.Intn(8) == 0 {
				if err := tr.Delete(lf); err != nil {
					return false
				}
			} else if _, err := tr.InsertAfter(lf); err != nil {
				return false
			}
		}
		labels, deleted, height := tr.SnapshotState()
		restored, _, err := FromLabels(p, labels, deleted, height)
		if err != nil {
			return false
		}
		want, got := tr.Nums(), restored.Nums()
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return restored.Live() == tr.Live() && restored.Check() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWideRadixAblation: the f+1 radix changes labels and widths but not
// the maintenance behaviour.
func TestWideRadixAblation(t *testing.T) {
	tight, err := New(Params{F: 4, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := New(Params{F: 4, S: 2, WideRadix: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tight.Load(64); err != nil {
		t.Fatal(err)
	}
	if _, err := wide.Load(64); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		at := rng.Intn(tight.Len())
		if _, err := tight.InsertAfter(tight.LeafAt(at)); err != nil {
			t.Fatal(err)
		}
		if _, err := wide.InsertAfter(wide.LeafAt(at)); err != nil {
			t.Fatal(err)
		}
	}
	ts, ws := tight.Stats(), wide.Stats()
	if ts.RelabeledLeaves != ws.RelabeledLeaves || ts.Splits != ws.Splits || tight.Height() != wide.Height() {
		t.Fatalf("maintenance diverged: %v vs %v", ts, ws)
	}
	if wide.BitsPerLabel() <= tight.BitsPerLabel() {
		t.Fatalf("wide radix should cost bits: %d vs %d", wide.BitsPerLabel(), tight.BitsPerLabel())
	}
	if err := tight.Check(); err != nil {
		t.Fatal(err)
	}
	if err := wide.Check(); err != nil {
		t.Fatal(err)
	}
	// Rank-by-rank the leaf sequences coincide structurally.
	for i := 0; i < tight.Len(); i += 97 {
		a, b := tight.LeafAt(i), wide.LeafAt(i)
		if (a == nil) != (b == nil) {
			t.Fatal("structure diverged")
		}
	}
}
