package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refModel mirrors the leaf sequence with plain slices so random op
// streams can be verified against an obviously-correct implementation.
type refModel struct {
	ids  []int // payload identities in order
	next int
}

func (m *refModel) insertAt(pos int) int {
	id := m.next
	m.next++
	m.ids = append(m.ids, 0)
	copy(m.ids[pos+1:], m.ids[pos:])
	m.ids[pos] = id
	return id
}

func (m *refModel) removeAt(pos int) {
	m.ids = append(m.ids[:pos], m.ids[pos+1:]...)
}

// verify checks that the tree's leaf sequence matches the model (by
// payload identity) and that labels are strictly increasing.
func (m *refModel) verify(t *testing.T, tr *Tree) {
	t.Helper()
	leaves := tr.Leaves()
	if len(leaves) != len(m.ids) {
		t.Fatalf("tree has %d leaves, model has %d", len(leaves), len(m.ids))
	}
	var prev uint64
	for i, lf := range leaves {
		if got := lf.Payload().(int); got != m.ids[i] {
			t.Fatalf("leaf %d: payload %d, model %d", i, got, m.ids[i])
		}
		if i > 0 && lf.Num() <= prev {
			t.Fatalf("labels not increasing at %d", i)
		}
		prev = lf.Num()
	}
}

// TestRandomOpStream drives inserts (single and run), tombstones, physical
// removals and compactions from several seeds and parameter choices,
// validating the full invariant set and the reference model after batches.
func TestRandomOpStream(t *testing.T) {
	params := []Params{{F: 4, S: 2}, {F: 6, S: 2}, {F: 6, S: 3}, {F: 8, S: 4}, {F: 10, S: 2}, {F: 16, S: 4}}
	for _, p := range params {
		for seed := int64(1); seed <= 3; seed++ {
			tr, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			model := &refModel{}
			const ops = 1200
			for op := 0; op < ops; op++ {
				switch {
				case tr.Len() == 0 || rng.Intn(100) < 55:
					// Single insert at a random position.
					pos := 0
					if tr.Len() > 0 {
						pos = rng.Intn(tr.Len() + 1)
					}
					var lf *Node
					var err error
					if pos == 0 {
						lf, err = tr.InsertFirst()
					} else {
						lf, err = tr.InsertAfter(tr.LeafAt(pos - 1))
					}
					if err != nil {
						t.Fatalf("%v/%d op %d: %v", p, seed, op, err)
					}
					lf.SetPayload(model.insertAt(pos))
				case rng.Intn(100) < 30:
					// Run insert of 2..17 leaves.
					k := 2 + rng.Intn(16)
					pos := rng.Intn(tr.Len() + 1)
					var run []*Node
					var err error
					if pos == 0 {
						run, err = tr.InsertRunFirst(k)
					} else {
						run, err = tr.InsertRunAfter(tr.LeafAt(pos-1), k)
					}
					if err != nil {
						t.Fatalf("%v/%d op %d: %v", p, seed, op, err)
					}
					for i, lf := range run {
						lf.SetPayload(model.insertAt(pos + i))
					}
				case rng.Intn(100) < 60:
					// Tombstone a random live leaf (keeps the slot).
					lf := tr.LeafAt(rng.Intn(tr.Len()))
					if err := tr.Delete(lf); err != nil {
						t.Fatal(err)
					}
				default:
					// Physical removal.
					pos := rng.Intn(tr.Len())
					if err := tr.Remove(tr.LeafAt(pos)); err != nil {
						t.Fatal(err)
					}
					model.removeAt(pos)
				}
				if op%100 == 99 {
					if err := tr.Check(); err != nil {
						t.Fatalf("%v seed %d op %d: %v", p, seed, op, err)
					}
					model.verify(t, tr)
				}
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("%v seed %d final: %v", p, seed, err)
			}
			model.verify(t, tr)
		}
	}
}

// TestQuickOrderPreservation is a testing/quick property: for any sequence
// of (position, runLength) insertions, the leaf payloads laid down by a
// reference list and the L-Tree agree, and labels are strictly monotone.
func TestQuickOrderPreservation(t *testing.T) {
	prop := func(seed int64, opsRaw uint8) bool {
		ops := int(opsRaw)%120 + 10
		tr, err := New(Params{F: 6, S: 2})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := &refModel{}
		for i := 0; i < ops; i++ {
			k := 1 + rng.Intn(5)
			pos := 0
			if tr.Len() > 0 {
				pos = rng.Intn(tr.Len() + 1)
			}
			var run []*Node
			if pos == 0 {
				run, err = tr.InsertRunFirst(k)
			} else {
				run, err = tr.InsertRunAfter(tr.LeafAt(pos-1), k)
			}
			if err != nil {
				return false
			}
			for j, lf := range run {
				lf.SetPayload(model.insertAt(pos + j))
			}
		}
		if tr.Check() != nil {
			return false
		}
		leaves := tr.Leaves()
		var prev uint64
		for i, lf := range leaves {
			if lf.Payload().(int) != model.ids[i] {
				return false
			}
			if i > 0 && lf.Num() <= prev {
				return false
			}
			prev = lf.Num()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAmortizedBound checks the §3.1 headline on random streams: the
// measured amortized nodes-touched cost stays below the analytic bound
// (1 + 2f/(s−1))·log_r(n) + f with generous slack for small n.
func TestQuickAmortizedBound(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 8, S: 4}, {F: 16, S: 4}} {
		tr, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		const n = 20000
		if _, err := tr.Load(1); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < n; i++ {
			lf := tr.LeafAt(rng.Intn(tr.Len()))
			if _, err := tr.InsertAfter(lf); err != nil {
				t.Fatal(err)
			}
		}
		st := tr.Stats()
		measured := st.AmortizedCost()
		f, s, r := float64(p.F), float64(p.S), float64(p.R())
		logr := logBase(float64(n), r)
		bound := (1+2*f/(s-1))*logr + f
		if measured > bound {
			t.Fatalf("%v: amortized %.2f exceeds paper bound %.2f", p, measured, bound)
		}
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func logBase(x, b float64) float64 {
	return math.Log(x) / math.Log(b)
}
