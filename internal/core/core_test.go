package core

import (
	"errors"
	"testing"
)

func mustNew(t *testing.T, f, s int) *Tree {
	t.Helper()
	tr, err := New(Params{F: f, S: s})
	if err != nil {
		t.Fatalf("New(f=%d,s=%d): %v", f, s, err)
	}
	return tr
}

func mustLoad(t *testing.T, tr *Tree, n int) []*Node {
	t.Helper()
	leaves, err := tr.Load(n)
	if err != nil {
		t.Fatalf("Load(%d): %v", n, err)
	}
	return leaves
}

func checkTree(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Check(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	valid := []Params{{F: 4, S: 2}, {F: 6, S: 2}, {F: 6, S: 3}, {F: 8, S: 2}, {F: 8, S: 4}, {F: 9, S: 3}, {F: 12, S: 3}, {F: 64, S: 4}}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Params%v should be valid: %v", p, err)
		}
	}
	invalid := []Params{{F: 0, S: 0}, {F: 4, S: 1}, {F: 2, S: 2}, {F: 3, S: 2}, {F: 5, S: 2}, {F: 7, S: 3}, {F: 4, S: 3}, {F: 6, S: 4}, {F: -4, S: -2}}
	for _, p := range invalid {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("Params%v should be invalid, got %v", p, err)
		}
	}
}

// TestFigure2 replays the paper's worked example (Figure 2, f=4, s=2)
// and demands the exact label sequences of all four subfigures.
func TestFigure2(t *testing.T) {
	tr := mustNew(t, 4, 2)

	// (a) Bulk loading the 8 tags of <A><B><C/></B><D/></A>:
	// A B C /C /B D /D /A  ->  0 1 3 4 9 10 12 13.
	leaves := mustLoad(t, tr, 8)
	checkTree(t, tr)
	want := []uint64{0, 1, 3, 4, 9, 10, 12, 13}
	got := tr.Nums()
	if len(got) != len(want) {
		t.Fatalf("bulk load: got %d labels, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bulk load labels = %v, want %v", got, want)
		}
	}
	if h := tr.Height(); h != 3 {
		t.Fatalf("height = %d, want 3", h)
	}

	// (c) Insert the begin tag "D" before "C" (the leaf numbered 3).
	// No node reaches its limit; D, C, /C are renumbered 3, 4, 5.
	c := leaves[2]
	d, err := tr.InsertBefore(c)
	if err != nil {
		t.Fatalf("InsertBefore: %v", err)
	}
	checkTree(t, tr)
	want = []uint64{0, 1, 3, 4, 5, 9, 10, 12, 13}
	got = tr.Nums()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after inserting D: labels = %v, want %v", got, want)
		}
	}
	if d.Num() != 3 || c.Num() != 4 {
		t.Fatalf("D=%d C=%d, want D=3 C=4", d.Num(), c.Num())
	}
	if s := tr.Stats().Splits; s != 0 {
		t.Fatalf("unexpected split count %d", s)
	}

	// (d) Insert the end tag "/D" right after "D". The height-1 node now
	// holds l = 4 = lmax = s·(f/s)^1 leaves and splits into two complete
	// binary trees; final element labels: A(0,13) B(1,9) D(3,4) C(6,7)
	// D(10,12).
	dEnd, err := tr.InsertAfter(d)
	if err != nil {
		t.Fatalf("InsertAfter: %v", err)
	}
	checkTree(t, tr)
	want = []uint64{0, 1, 3, 4, 6, 7, 9, 10, 12, 13}
	got = tr.Nums()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after inserting /D: labels = %v, want %v", got, want)
		}
	}
	if d.Num() != 3 || dEnd.Num() != 4 || c.Num() != 6 {
		t.Fatalf("D=(%d,%d) C=%d, want D=(3,4) C=6", d.Num(), dEnd.Num(), c.Num())
	}
	st := tr.Stats()
	if st.Splits != 1 || st.RootSplits != 0 {
		t.Fatalf("splits = %d (root %d), want 1 (0)", st.Splits, st.RootSplits)
	}
	// The outer elements kept their labels: A(0,13), B(1,9), D(10,12).
	if leaves[0].Num() != 0 || leaves[7].Num() != 13 || leaves[1].Num() != 1 ||
		leaves[4].Num() != 9 || leaves[5].Num() != 10 || leaves[6].Num() != 12 {
		t.Fatalf("outer labels moved: %v", tr.Nums())
	}
}

func TestBulkLoadShapes(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 6, S: 2}, {F: 6, S: 3}, {F: 8, S: 4}, {F: 9, S: 3}, {F: 16, S: 2}} {
		for n := 0; n <= 130; n++ {
			tr, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			leaves, err := tr.Load(n)
			if err != nil {
				t.Fatalf("Load(%d) with %v: %v", n, p, err)
			}
			if len(leaves) != n || tr.Len() != n || tr.Live() != n {
				t.Fatalf("Load(%d): got %d leaves", n, len(leaves))
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("Load(%d) with %v: %v", n, p, err)
			}
			if n > 0 {
				wantH := tr.minHeight(n)
				if tr.Height() != wantH {
					t.Fatalf("Load(%d) with %v: height %d, want %d", n, p, tr.Height(), wantH)
				}
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	tr := mustNew(t, 4, 2)
	if _, err := tr.Load(-1); !errors.Is(err, ErrBadCount) {
		t.Fatalf("Load(-1) = %v, want ErrBadCount", err)
	}
	mustLoad(t, tr, 3)
	if _, err := tr.Load(3); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("second Load = %v, want ErrNotEmpty", err)
	}
}

func TestInsertIntoEmpty(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 9, S: 3}} {
		tr, _ := New(p)
		a, err := tr.InsertFirst()
		if err != nil {
			t.Fatal(err)
		}
		checkTree(t, tr)
		if a.Num() != 0 {
			t.Fatalf("first leaf num = %d, want 0", a.Num())
		}
		b, err := tr.InsertLast()
		if err != nil {
			t.Fatal(err)
		}
		checkTree(t, tr)
		if b.Num() != 1 {
			t.Fatalf("second leaf num = %d, want 1", b.Num())
		}
		c, err := tr.InsertBefore(b)
		if err != nil {
			t.Fatal(err)
		}
		checkTree(t, tr)
		if got := tr.Rank(c); got != 1 {
			t.Fatalf("rank of middle leaf = %d, want 1", got)
		}
	}
}

func TestInsertErrors(t *testing.T) {
	tr := mustNew(t, 4, 2)
	if _, err := tr.InsertAfter(nil); !errors.Is(err, ErrNotLeaf) {
		t.Fatalf("InsertAfter(nil) = %v", err)
	}
	leaves := mustLoad(t, tr, 4)
	if _, err := tr.InsertAfter(leaves[0].parent); !errors.Is(err, ErrNotLeaf) {
		t.Fatalf("InsertAfter(internal) = %v", err)
	}
	other := mustNew(t, 4, 2)
	detached := mustLoad(t, other, 1)[0]
	if err := other.Remove(detached); err != nil {
		t.Fatal(err)
	}
	if _, err := other.InsertAfter(detached); !errors.Is(err, ErrNotLeaf) {
		t.Fatalf("InsertAfter(detached) = %v", err)
	}
}

// TestAppendGrowth appends n leaves one by one and validates invariants,
// monotone labels, and that the height stays logarithmic.
func TestAppendGrowth(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 6, S: 3}, {F: 8, S: 2}, {F: 12, S: 2}} {
		tr, _ := New(p)
		const n = 3000
		var last *Node
		for i := 0; i < n; i++ {
			var err error
			if last == nil {
				last, err = tr.InsertFirst()
			} else {
				last, err = tr.InsertAfter(last)
			}
			if err != nil {
				t.Fatalf("%v append %d: %v", p, i, err)
			}
		}
		checkTree(t, tr)
		if tr.Len() != n {
			t.Fatalf("len = %d, want %d", tr.Len(), n)
		}
		// Height ≤ log_r(n)+2 plus slack for splits.
		maxH := tr.minHeight(n) + 2
		if tr.Height() > maxH {
			t.Fatalf("%v: height %d too tall for %d leaves (max %d)", p, tr.Height(), n, maxH)
		}
	}
}

// TestNoCascadeSplit verifies Proposition 3: a single insertion performs at
// most one split.
func TestNoCascadeSplit(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 6, S: 3}, {F: 8, S: 4}} {
		tr, _ := New(p)
		leaves := mustLoad(t, tr, 1)
		anchor := leaves[0]
		prevSplits := uint64(0)
		for i := 0; i < 5000; i++ {
			// Hammer a single point: worst case for split pressure.
			if _, err := tr.InsertAfter(anchor); err != nil {
				t.Fatal(err)
			}
			st := tr.Stats()
			if st.Splits-prevSplits > 1 {
				t.Fatalf("%v: insert %d caused %d splits", p, i, st.Splits-prevSplits)
			}
			prevSplits = st.Splits
		}
		checkTree(t, tr)
	}
}

func TestDeleteTombstone(t *testing.T) {
	tr := mustNew(t, 4, 2)
	leaves := mustLoad(t, tr, 16)
	before := tr.Nums()
	if err := tr.Delete(leaves[5]); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(leaves[5]); err != nil { // idempotent
		t.Fatal(err)
	}
	if tr.Live() != 15 || tr.Len() != 16 {
		t.Fatalf("live=%d len=%d", tr.Live(), tr.Len())
	}
	after := tr.Nums()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("deletion relabeled: %v -> %v", before, after)
		}
	}
	st := tr.Stats()
	if st.Relabelings() != 0 {
		t.Fatalf("tombstone deletion charged %d relabelings", st.Relabelings())
	}
	checkTree(t, tr)
	if err := tr.Undelete(leaves[5]); err != nil {
		t.Fatal(err)
	}
	if tr.Live() != 16 {
		t.Fatalf("undelete: live=%d", tr.Live())
	}
}

func TestRemovePhysical(t *testing.T) {
	tr := mustNew(t, 4, 2)
	leaves := mustLoad(t, tr, 32)
	for i, lf := range leaves {
		if i%2 == 0 {
			if err := tr.Remove(lf); err != nil {
				t.Fatal(err)
			}
			checkTree(t, tr)
		}
	}
	if tr.Len() != 16 || tr.Live() != 16 {
		t.Fatalf("len=%d live=%d, want 16", tr.Len(), tr.Live())
	}
	// Remaining labels still strictly increasing; right siblings of each
	// removed slot were compacted (positional numbering restored).
	nums := tr.Nums()
	for i := 1; i < len(nums); i++ {
		if nums[i-1] >= nums[i] {
			t.Fatalf("order broken: %v", nums)
		}
	}
	// Drain completely; the tree must reset to a usable empty state.
	for _, lf := range tr.Leaves() {
		if err := tr.Remove(lf); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len=%d after drain", tr.Len())
	}
	checkTree(t, tr)
	if _, err := tr.InsertFirst(); err != nil {
		t.Fatalf("insert into drained tree: %v", err)
	}
	checkTree(t, tr)
}

func TestCompact(t *testing.T) {
	tr := mustNew(t, 4, 2)
	leaves := mustLoad(t, tr, 64)
	for i, lf := range leaves {
		if i%4 != 0 {
			if err := tr.Delete(lf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if tr.Len() != 16 || tr.Live() != 16 {
		t.Fatalf("after compact: len=%d live=%d", tr.Len(), tr.Live())
	}
	if tr.Height() != tr.minHeight(16) {
		t.Fatalf("after compact: height=%d want %d", tr.Height(), tr.minHeight(16))
	}
	// Compacting an empty tree resets cleanly.
	tr2 := mustNew(t, 4, 2)
	lf := mustLoad(t, tr2, 1)[0]
	if err := tr2.Delete(lf); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Compact(); err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 0 {
		t.Fatalf("compact empty: len=%d", tr2.Len())
	}
	checkTree(t, tr2)
}

func TestRankSelectNextPrev(t *testing.T) {
	tr := mustNew(t, 6, 2)
	mustLoad(t, tr, 500)
	// Interleave some inserts to break the perfect shape.
	for i := 0; i < 200; i++ {
		lf := tr.LeafAt((i * 37) % tr.Len())
		if _, err := tr.InsertAfter(lf); err != nil {
			t.Fatal(err)
		}
	}
	checkTree(t, tr)
	leaves := tr.Leaves()
	for i, lf := range leaves {
		if got := tr.Rank(lf); got != i {
			t.Fatalf("Rank(leaf %d) = %d", i, got)
		}
		if got := tr.LeafAt(i); got != lf {
			t.Fatalf("LeafAt(%d) != leaf", i)
		}
	}
	if tr.LeafAt(-1) != nil || tr.LeafAt(tr.Len()) != nil {
		t.Fatal("LeafAt out of range should be nil")
	}
	// Next/Prev walk the same sequence.
	cur := tr.First()
	for i := 0; i < len(leaves); i++ {
		if cur != leaves[i] {
			t.Fatalf("Next walk diverged at %d", i)
		}
		cur = cur.Next()
	}
	if cur != nil {
		t.Fatal("Next past the end should be nil")
	}
	cur = tr.Last()
	for i := len(leaves) - 1; i >= 0; i-- {
		if cur != leaves[i] {
			t.Fatalf("Prev walk diverged at %d", i)
		}
		cur = cur.Prev()
	}
	if cur != nil {
		t.Fatal("Prev past the front should be nil")
	}
}

func TestPayload(t *testing.T) {
	tr := mustNew(t, 4, 2)
	leaves := mustLoad(t, tr, 3)
	leaves[1].SetPayload("begin:book")
	if got := leaves[1].Payload(); got != "begin:book" {
		t.Fatalf("payload = %v", got)
	}
	if leaves[0].Payload() != nil {
		t.Fatal("unset payload should be nil")
	}
}

func TestLabelSpaceAndBits(t *testing.T) {
	tr := mustNew(t, 4, 2)
	mustLoad(t, tr, 8)
	if space := tr.LabelSpace(); space != 27 { // 3^3
		t.Fatalf("label space = %d, want 27", space)
	}
	if bits := tr.BitsPerLabel(); bits != 5 { // ceil(log2 26) = 5
		t.Fatalf("bits = %d, want 5", bits)
	}
}

func TestEnsurePowOverflow(t *testing.T) {
	tr := mustNew(t, 4, 2)
	// radix 3: 3^h ≤ 2^62 up to h = 39; h = 40 must overflow.
	if err := tr.ensurePow(39); err != nil {
		t.Fatalf("ensurePow(39): %v", err)
	}
	if err := tr.ensurePow(40); !errors.Is(err, ErrLabelOverflow) {
		t.Fatalf("ensurePow(40) = %v, want ErrLabelOverflow", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	tr := mustNew(t, 4, 2)
	mustLoad(t, tr, 8)
	if st := tr.Stats(); st.Ops() != 0 || st.NodesTouched() != 0 {
		t.Fatalf("load should not charge counters: %+v", st)
	}
	lf := tr.First()
	if _, err := tr.InsertAfter(lf); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Inserts != 1 {
		t.Fatalf("inserts = %d", st.Inserts)
	}
	if st.AncestorUpdates != uint64(tr.Height()) {
		t.Fatalf("ancestor updates = %d, want height %d", st.AncestorUpdates, tr.Height())
	}
	if st.RelabeledLeaves == 0 {
		t.Fatal("the new leaf's numbering must be charged")
	}
	tr.ResetStats()
	if st := tr.Stats(); st.Ops() != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}
