package core

import (
	"errors"
	"math/rand"
	"testing"
)

func TestInsertRunBasic(t *testing.T) {
	tr := mustNew(t, 4, 2)
	leaves := mustLoad(t, tr, 4)
	run, err := tr.InsertRunAfter(leaves[1], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(run) != 3 {
		t.Fatalf("run length %d", len(run))
	}
	checkTree(t, tr)
	// Sequence: leaves[0], leaves[1], run..., leaves[2], leaves[3].
	got := tr.Leaves()
	wantOrder := []*Node{leaves[0], leaves[1], run[0], run[1], run[2], leaves[2], leaves[3]}
	for i, lf := range wantOrder {
		if got[i] != lf {
			t.Fatalf("order mismatch at %d", i)
		}
	}
}

func TestInsertRunEdgeCases(t *testing.T) {
	tr := mustNew(t, 4, 2)
	if _, err := tr.InsertRunFirst(0); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("k=0 must be a no-op")
	}
	if _, err := tr.InsertRunFirst(-1); !errors.Is(err, ErrBadCount) {
		t.Fatalf("negative k: %v", err)
	}
	// k=1 takes the single-insert path, including its split rule.
	run, err := tr.InsertRunFirst(1)
	if err != nil || len(run) != 1 {
		t.Fatalf("k=1: %v", err)
	}
	if tr.Stats().Inserts != 1 {
		t.Fatal("k=1 should be accounted as a single insert")
	}
	if _, err := tr.InsertRunAfter(nil, 2); !errors.Is(err, ErrNotLeaf) {
		t.Fatalf("nil anchor: %v", err)
	}
	checkTree(t, tr)
}

// TestInsertRunIntoEmpty covers run sizes that force an immediate rebuild
// of a fresh tree, including sizes far above the root's limit.
func TestInsertRunIntoEmpty(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 6, S: 3}, {F: 8, S: 2}} {
		for _, k := range []int{1, 2, 3, 5, 8, 16, 50, 200, 1000} {
			tr, _ := New(p)
			run, err := tr.InsertRunFirst(k)
			if err != nil {
				t.Fatalf("%v k=%d: %v", p, k, err)
			}
			if len(run) != k || tr.Len() != k {
				t.Fatalf("%v k=%d: got %d leaves", p, k, len(run))
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("%v k=%d: %v", p, k, err)
			}
		}
	}
}

// TestInsertRunLarge stresses run insertion into a populated tree at many
// positions and sizes, including sizes larger than the whole tree.
func TestInsertRunLarge(t *testing.T) {
	for _, p := range []Params{{F: 4, S: 2}, {F: 8, S: 4}, {F: 12, S: 2}} {
		tr, _ := New(p)
		mustLoad(t, tr, 100)
		rng := rand.New(rand.NewSource(7))
		for _, k := range []int{2, 7, 31, 64, 128, 999} {
			pos := rng.Intn(tr.Len())
			if _, err := tr.InsertRunAfter(tr.LeafAt(pos), k); err != nil {
				t.Fatalf("%v k=%d: %v", p, k, err)
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("%v k=%d: %v", p, k, err)
			}
		}
	}
}

// TestInsertRunPreservesNeighbors verifies that a run insertion keeps the
// anchor's label ≤ its old value ordering with the run and the successor.
func TestInsertRunPreservesNeighbors(t *testing.T) {
	tr := mustNew(t, 4, 2)
	leaves := mustLoad(t, tr, 32)
	anchor := leaves[10]
	succ := leaves[11]
	run, err := tr.InsertRunAfter(anchor, 20)
	if err != nil {
		t.Fatal(err)
	}
	prevNum := anchor.Num()
	for _, lf := range run {
		if lf.Num() <= prevNum {
			t.Fatalf("run not ordered after anchor: %d then %d", prevNum, lf.Num())
		}
		prevNum = lf.Num()
	}
	if succ.Num() <= prevNum {
		t.Fatalf("successor %d not after run end %d", succ.Num(), prevNum)
	}
	checkTree(t, tr)
}

// TestBulkAmortizedImprovement reproduces the qualitative §4.1 claim: the
// amortized per-leaf cost decreases as the run size grows.
func TestBulkAmortizedImprovement(t *testing.T) {
	cost := func(k int) float64 {
		tr := mustNew(t, 8, 2)
		mustLoad(t, tr, 64)
		rng := rand.New(rand.NewSource(3))
		const total = 32768
		for inserted := 0; inserted < total; inserted += k {
			pos := rng.Intn(tr.Len())
			if _, err := tr.InsertRunAfter(tr.LeafAt(pos), k); err != nil {
				t.Fatal(err)
			}
		}
		return tr.Stats().AmortizedCost()
	}
	c1 := cost(1)
	c16 := cost(16)
	c256 := cost(256)
	if !(c16 < c1 && c256 < c16) {
		t.Fatalf("amortized cost should fall with run size: k=1:%.2f k=16:%.2f k=256:%.2f", c1, c16, c256)
	}
}
