package core

// Traversal and order-statistic access over the leaf sequence. The leaf
// counts maintained for the occupancy rule double as an order-statistic
// index, so rank/select run in O(height·f) — this is what the experiment
// harness uses to pick insertion positions by rank.

// First returns the leftmost leaf, or nil if the tree is empty.
func (t *Tree) First() *Node {
	if t.n == 0 {
		return nil
	}
	v := t.root
	for v.height > 0 {
		v = v.children[0]
	}
	return v
}

// Last returns the rightmost leaf, or nil if the tree is empty.
func (t *Tree) Last() *Node {
	if t.n == 0 {
		return nil
	}
	v := t.root
	for v.height > 0 {
		v = v.children[len(v.children)-1]
	}
	return v
}

// Next returns the leaf following lf in label order, or nil at the end.
func (lf *Node) Next() *Node {
	v := lf
	for v.parent != nil && v.pos == len(v.parent.children)-1 {
		v = v.parent
	}
	if v.parent == nil {
		return nil
	}
	v = v.parent.children[v.pos+1]
	for v.height > 0 {
		if len(v.children) == 0 {
			return nil
		}
		v = v.children[0]
	}
	return v
}

// Prev returns the leaf preceding lf in label order, or nil at the front.
func (lf *Node) Prev() *Node {
	v := lf
	for v.parent != nil && v.pos == 0 {
		v = v.parent
	}
	if v.parent == nil {
		return nil
	}
	v = v.parent.children[v.pos-1]
	for v.height > 0 {
		if len(v.children) == 0 {
			return nil
		}
		v = v.children[len(v.children)-1]
	}
	return v
}

// LeafAt returns the leaf with the given rank (0-based, counting
// tombstones), or nil if rank is out of range.
func (t *Tree) LeafAt(rank int) *Node {
	if rank < 0 || rank >= t.n {
		return nil
	}
	v := t.root
	for v.height > 0 {
		for _, c := range v.children {
			if rank < c.leaves {
				v = c
				break
			}
			rank -= c.leaves
		}
	}
	return v
}

// Rank returns the 0-based rank of the leaf in the label order (counting
// tombstones), or -1 if lf is not attached to this tree.
func (t *Tree) Rank(lf *Node) int {
	if lf == nil || lf.height != 0 || lf.parent == nil {
		return -1
	}
	rank := 0
	for v := lf; v.parent != nil; v = v.parent {
		for i := 0; i < v.pos; i++ {
			rank += v.parent.children[i].leaves
		}
	}
	return rank
}

// Ascend calls fn for every leaf in label order (including tombstones)
// until fn returns false.
func (t *Tree) Ascend(fn func(*Node) bool) {
	if t.n == 0 {
		return
	}
	var walk func(v *Node) bool
	walk = func(v *Node) bool {
		if v.height == 0 {
			return fn(v)
		}
		for _, c := range v.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// WalkNodes visits every node of the tree — internal nodes and leaves —
// in depth-first document order until fn returns false. Useful for
// structure inspection (fanout statistics, node counting).
func (t *Tree) WalkNodes(fn func(*Node) bool) {
	var walk func(v *Node) bool
	walk = func(v *Node) bool {
		if !fn(v) {
			return false
		}
		for _, c := range v.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// NodeCount returns the total number of nodes (internal plus leaves) the
// materialized tree holds — the §4.2 storage cost the virtual variant
// avoids.
func (t *Tree) NodeCount() int {
	count := 0
	t.WalkNodes(func(*Node) bool { count++; return true })
	return count
}

// Nums returns the current label sequence (including tombstoned slots), a
// convenience for tests and differential checks against the virtual tree.
func (t *Tree) Nums() []uint64 {
	out := make([]uint64, 0, t.n)
	t.Ascend(func(lf *Node) bool {
		out = append(out, lf.num)
		return true
	})
	return out
}
