// Package reltab simulates the relational embedding the paper targets:
// XML stored as tuples in an RDBMS, one row per element with its (begin,
// end) label, level and parent id. It exists to demonstrate and measure
// the two claims of §1:
//
//  1. with order labels, an ancestor-descendant ("//") query is exactly
//     one self-join with label comparisons as predicates — as cheap as a
//     child-axis join;
//  2. with only an edge table (Florescu/Kossmann [11]), the same query
//     needs one self-join per tree level;
//
// and, after updates, the cost the paper optimizes: every relabeled leaf
// becomes an UPDATE against the label columns (SyncLabels counts them).
package reltab

import (
	"fmt"
	"sort"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Row is one element tuple.
type Row struct {
	ID       int
	Tag      string
	Begin    uint64
	End      uint64
	Level    int
	ParentID int // -1 for the root
}

// Table is an in-memory relation over the document's elements with the
// indexes an RDBMS would maintain: tag → rows and parent → children.
type Table struct {
	rows     []Row
	ids      map[*xmldom.Node]int
	nodes    []*xmldom.Node
	byTag    map[string][]int // row ids, begin-sorted
	children map[int][]int    // edge index: parent row id → child row ids
	updates  uint64           // counted label UPDATEs from SyncLabels
}

// Build snapshots the document's elements into a table.
func Build(d *document.Doc) (*Table, error) {
	t := &Table{
		ids:      make(map[*xmldom.Node]int),
		byTag:    make(map[string][]int),
		children: make(map[int][]int),
	}
	var walk func(n *xmldom.Node, parent int) error
	walk = func(n *xmldom.Node, parent int) error {
		if n.Kind() != xmldom.Element {
			return nil
		}
		lab, err := d.Label(n)
		if err != nil {
			return err
		}
		id := len(t.rows)
		t.rows = append(t.rows, Row{
			ID:       id,
			Tag:      n.Tag(),
			Begin:    lab.Begin,
			End:      lab.End,
			Level:    n.Level(),
			ParentID: parent,
		})
		t.ids[n] = id
		t.nodes = append(t.nodes, n)
		t.byTag[n.Tag()] = append(t.byTag[n.Tag()], id)
		if parent >= 0 {
			t.children[parent] = append(t.children[parent], id)
		}
		for _, c := range n.Children() {
			if err := walk(c, id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(d.X.Root, -1); err != nil {
		return nil, err
	}
	for tag := range t.byTag {
		ids := t.byTag[tag]
		sort.Slice(ids, func(i, j int) bool { return t.rows[ids[i]].Begin < t.rows[ids[j]].Begin })
	}
	return t, nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Updates returns the number of label UPDATEs issued by SyncLabels calls.
func (t *Table) Updates() uint64 { return t.updates }

// Node returns the XML node behind a row id.
func (t *Table) Node(id int) *xmldom.Node { return t.nodes[id] }

// Row returns a copy of the row with the given id.
func (t *Table) Row(id int) Row { return t.rows[id] }

// SyncLabels reconciles the table with the document after updates: new
// elements become INSERTed rows, elements whose (begin, end) moved become
// UPDATEs — exactly the statements an RDBMS embedding would execute after
// an L-Tree relabeling. It returns the INSERT and UPDATE counts.
func (t *Table) SyncLabels(d *document.Doc) (inserts, updates int, err error) {
	type oldLab struct{ begin, end uint64 }
	prev := make(map[*xmldom.Node]oldLab, len(t.rows))
	for i := range t.rows {
		prev[t.nodes[i]] = oldLab{t.rows[i].Begin, t.rows[i].End}
	}
	fresh, err := Build(d)
	if err != nil {
		return 0, 0, fmt.Errorf("reltab: sync: %w", err)
	}
	for i := range fresh.rows {
		old, existed := prev[fresh.nodes[i]]
		switch {
		case !existed:
			inserts++
		case old.begin != fresh.rows[i].Begin || old.end != fresh.rows[i].End:
			updates++
		}
	}
	fresh.updates = t.updates + uint64(updates)
	*t = *fresh
	return inserts, updates, nil
}

// Pair is one join result: ancestor and descendant row ids.
type Pair struct {
	Anc  int
	Desc int
}

// JoinStats reports the work a plan performed.
type JoinStats struct {
	JoinPasses   int // self-joins executed (1 for the label plan)
	RowsCompared int // tuples touched across all passes
}

// tagRows returns the begin-sorted row ids for a tag test ("*" = all).
func (t *Table) tagRows(tag string) []int {
	if tag != "*" {
		return t.byTag[tag]
	}
	all := make([]int, len(t.rows))
	for i := range all {
		all[i] = i
	}
	sort.Slice(all, func(i, j int) bool { return t.rows[all[i]].Begin < t.rows[all[j]].Begin })
	return all
}

// AncestorDescendantJoin answers anc//desc with exactly one self-join:
// both tag lists are begin-sorted, and a stack-based merge emits every
// pair (a, d) with a.Begin < d.Begin ∧ d.End < a.End.
func (t *Table) AncestorDescendantJoin(ancTag, descTag string) ([]Pair, JoinStats) {
	ancs := t.tagRows(ancTag)
	descs := t.tagRows(descTag)
	st := JoinStats{JoinPasses: 1}
	var out []Pair
	var stack []int
	ai := 0
	for _, d := range descs {
		st.RowsCompared++
		dRow := t.rows[d]
		for len(stack) > 0 && t.rows[stack[len(stack)-1]].End < dRow.Begin {
			stack = stack[:len(stack)-1]
		}
		for ai < len(ancs) && t.rows[ancs[ai]].Begin < dRow.Begin {
			st.RowsCompared++
			if t.rows[ancs[ai]].End > dRow.Begin {
				stack = append(stack, ancs[ai])
			}
			ai++
		}
		// Every stacked ancestor contains dRow (intervals nest).
		for _, a := range stack {
			if t.rows[a].Begin < dRow.Begin && dRow.End < t.rows[a].End {
				out = append(out, Pair{Anc: a, Desc: d})
			}
		}
	}
	return out, st
}

// ChildJoin answers anc/desc (one parent-child step) with one pass over
// the edge index.
func (t *Table) ChildJoin(ancTag, descTag string) ([]Pair, JoinStats) {
	st := JoinStats{JoinPasses: 1}
	var out []Pair
	for _, a := range t.tagRows(ancTag) {
		for _, c := range t.children[a] {
			st.RowsCompared++
			if t.rows[c].Tag == descTag || descTag == "*" {
				out = append(out, Pair{Anc: a, Desc: c})
			}
		}
	}
	return out, st
}

// DescendantsViaEdgeJoins answers anc//desc the pre-labeling way: by
// iterating parent-child self-joins level by level until the frontier is
// empty — the repeated-self-join cost the paper's introduction describes
// for the edge-table approach [11].
func (t *Table) DescendantsViaEdgeJoins(ancTag, descTag string) ([]Pair, JoinStats) {
	var st JoinStats
	var out []Pair
	// frontier maps reachable row -> set of originating ancestors. To keep
	// memory sane we track per-ancestor frontiers (matching how a chain of
	// SQL self-joins materializes intermediate tables).
	for _, a := range t.tagRows(ancTag) {
		frontier := t.children[a]
		for len(frontier) > 0 {
			st.JoinPasses++
			var next []int
			for _, id := range frontier {
				st.RowsCompared++
				if descTag == "*" || t.rows[id].Tag == descTag {
					out = append(out, Pair{Anc: a, Desc: id})
				}
				next = append(next, t.children[id]...)
			}
			frontier = next
		}
	}
	return out, st
}
