package reltab

import (
	"sort"
	"strings"
	"testing"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/workload"
	"github.com/ltree-db/ltree/internal/xmldom"
)

var p42 = core.Params{F: 4, S: 2}

func load(t *testing.T, src string) *document.Doc {
	t.Helper()
	d, err := document.Parse(strings.NewReader(src), p42)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// navPairs computes anc//desc (or anc/desc) ground truth by navigation.
func navPairs(d *document.Doc, tbl *Table, ancTag, descTag string, childOnly bool) map[[2]int]bool {
	want := map[[2]int]bool{}
	for _, a := range d.Elements(ancTag) {
		aID := tbl.ids[a]
		if childOnly {
			for _, c := range a.Children() {
				if c.Kind() == xmldom.Element && (descTag == "*" || c.Tag() == descTag) {
					want[[2]int{aID, tbl.ids[c]}] = true
				}
			}
			continue
		}
		a.Walk(func(n *xmldom.Node) bool {
			if n != a && n.Kind() == xmldom.Element && (descTag == "*" || n.Tag() == descTag) {
				want[[2]int{aID, tbl.ids[n]}] = true
			}
			return true
		})
	}
	return want
}

func pairsSet(pairs []Pair) map[[2]int]bool {
	set := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		set[[2]int{p.Anc, p.Desc}] = true
	}
	return set
}

func samePairs(t *testing.T, label string, got []Pair, want map[[2]int]bool) {
	t.Helper()
	g := pairsSet(got)
	if len(g) != len(want) || len(g) != len(got) {
		t.Fatalf("%s: %d pairs (%d unique), want %d", label, len(got), len(g), len(want))
	}
	for k := range want {
		if !g[k] {
			t.Fatalf("%s: missing pair %v", label, k)
		}
	}
}

func TestJoinsAgainstNavigation(t *testing.T) {
	docs := []*document.Doc{
		load(t, `<r><a><b/><a><b/></a></a><b/><c><b/></c></r>`),
	}
	x := workload.XMarkLite(3, 17)
	d2, err := document.Load(x, p42)
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, d2)
	cases := [][2]string{
		{"a", "b"}, {"r", "b"}, {"a", "a"}, {"c", "b"}, {"b", "a"},
		{"item", "name"}, {"regions", "para"}, {"open_auction", "increase"}, {"site", "*"},
	}
	for di, d := range docs {
		tbl, err := Build(d)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != len(d.Elements("*")) {
			t.Fatalf("doc %d: %d rows for %d elements", di, tbl.Len(), len(d.Elements("*")))
		}
		for _, c := range cases {
			anc, desc := c[0], c[1]
			// Label self-join vs navigation.
			got, st := tbl.AncestorDescendantJoin(anc, desc)
			samePairs(t, anc+"//"+desc, got, navPairs(d, tbl, anc, desc, false))
			if st.JoinPasses != 1 {
				t.Fatalf("label join used %d passes, the paper promises 1", st.JoinPasses)
			}
			// Edge-table iterative joins: same pairs, more passes.
			gotEdge, stEdge := tbl.DescendantsViaEdgeJoins(anc, desc)
			samePairs(t, "edge "+anc+"//"+desc, gotEdge, navPairs(d, tbl, anc, desc, false))
			if len(got) > 0 && stEdge.JoinPasses <= st.JoinPasses && len(d.Elements(anc)) > 0 {
				// With any real nesting the edge plan needs > 1 pass.
				deep := false
				for _, a := range d.Elements(anc) {
					for _, ch := range a.Children() {
						if ch.Kind() == xmldom.Element && ch.NumChildren() > 0 {
							deep = true
						}
					}
				}
				if deep {
					t.Fatalf("edge join passes = %d, label = %d: expected the edge plan to need more",
						stEdge.JoinPasses, st.JoinPasses)
				}
			}
			// Child join vs navigation.
			gotChild, _ := tbl.ChildJoin(anc, desc)
			samePairs(t, anc+"/"+desc, gotChild, navPairs(d, tbl, anc, desc, true))
		}
	}
}

func TestSyncLabelsCountsUpdates(t *testing.T) {
	d := load(t, `<r><a/><a/><a/><a/></r>`)
	tbl, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	// No-op sync.
	ins, upd, err := tbl.SyncLabels(d)
	if err != nil || ins != 0 || upd != 0 {
		t.Fatalf("clean sync = %d/%d, %v", ins, upd, err)
	}
	// Force relabels by hammering one spot until a split happens.
	a0 := d.X.Root.Child(0)
	for i := 0; i < 6; i++ {
		if _, err := d.InsertElement(a0, 0, "z"); err != nil {
			t.Fatal(err)
		}
	}
	ins, upd, err = tbl.SyncLabels(d)
	if err != nil {
		t.Fatal(err)
	}
	if ins != 6 {
		t.Fatalf("inserted rows = %d, want 6", ins)
	}
	if upd == 0 {
		t.Fatal("expected some label UPDATEs after splits")
	}
	if tbl.Updates() != uint64(upd) {
		t.Fatalf("updates counter %d != %d", tbl.Updates(), upd)
	}
	// Index stays begin-sorted.
	ids := tbl.byTag["a"]
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return tbl.rows[ids[i]].Begin < tbl.rows[ids[j]].Begin }) {
		t.Fatal("tag index lost sort order after sync")
	}
	// Joins still correct after resync.
	got, _ := tbl.AncestorDescendantJoin("r", "z")
	samePairs(t, "r//z", got, navPairs(d, tbl, "r", "z", false))
}

func TestRowAccessors(t *testing.T) {
	d := load(t, `<r><a/></r>`)
	tbl, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Row(0)
	if row.Tag != "r" || row.ParentID != -1 || row.Level != 0 {
		t.Fatalf("root row = %+v", row)
	}
	if tbl.Node(1).Tag() != "a" {
		t.Fatal("Node(1) wrong")
	}
	child := tbl.Row(1)
	if child.ParentID != 0 || child.Level != 1 {
		t.Fatalf("child row = %+v", child)
	}
	if !(row.Begin < child.Begin && child.End < row.End) {
		t.Fatal("row labels do not nest")
	}
}
