// Package pagesim simulates the disk layer behind the paper's cost unit:
// "The query and maintenance cost of an L-Tree is measured as the number
// of disk accesses. Since the XML nodes are recommended to be clustered
// by their tags rather than labels [17] ... the cost is measured in terms
// of the number of nodes accessed for searching or relabeling" (§3.1).
//
// The simulator provides a fixed-size page pool with LRU replacement and
// a tag-clustered row store: every element row lives on a page of its
// tag's segment, relabelings become page writes, and scans become
// sequential page reads. Experiments use it to convert the abstract
// nodes-touched counters into buffer-pool faults under different pool
// sizes — the quantity a 2004 RDBMS would actually have paid.
package pagesim

import (
	"container/list"
	"errors"
	"fmt"
)

// Config sizes the simulated disk and buffer pool.
type Config struct {
	// PageSize is the page capacity in bytes (default 4096).
	PageSize int
	// PoolPages is the number of pages the buffer pool holds (default 64).
	PoolPages int
	// RowSize is the stored size of one element row: id, tag ref, begin,
	// end, level, parent id (default 32 bytes).
	RowSize int
}

func (c *Config) defaults() {
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 64
	}
	if c.RowSize <= 0 {
		c.RowSize = 32
	}
}

// RowsPerPage returns the row fanout of a page.
func (c Config) RowsPerPage() int {
	c.defaults()
	n := c.PageSize / c.RowSize
	if n < 1 {
		n = 1
	}
	return n
}

// Stats are cumulative buffer pool counters.
type Stats struct {
	// Hits are accesses satisfied from the pool.
	Hits uint64
	// Faults are accesses that had to read the page from disk.
	Faults uint64
	// WriteBacks are dirty pages flushed on eviction.
	WriteBacks uint64
}

// Accesses returns total page touches.
func (s Stats) Accesses() uint64 { return s.Hits + s.Faults }

// DiskOps returns the paper's cost unit: physical reads plus write-backs.
func (s Stats) DiskOps() uint64 { return s.Faults + s.WriteBacks }

// HitRate returns the pool hit ratio in [0, 1].
func (s Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses())
}

func (s Stats) String() string {
	return fmt.Sprintf("hits=%d faults=%d writebacks=%d hitrate=%.2f",
		s.Hits, s.Faults, s.WriteBacks, s.HitRate())
}

// PageID identifies one page of the simulated file.
type PageID int64

// Pool is an LRU buffer pool over simulated pages.
type Pool struct {
	capacity int
	lru      *list.List               // front = most recent
	pages    map[PageID]*list.Element // -> *frame
	stats    Stats
}

type frame struct {
	id    PageID
	dirty bool
}

// NewPool returns an LRU pool holding capacity pages (min 1).
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[PageID]*list.Element, capacity),
	}
}

// Access touches a page; write marks it dirty. Faults and evictions are
// accounted automatically.
func (p *Pool) Access(id PageID, write bool) {
	if el, ok := p.pages[id]; ok {
		p.stats.Hits++
		p.lru.MoveToFront(el)
		if write {
			el.Value.(*frame).dirty = true
		}
		return
	}
	p.stats.Faults++
	if p.lru.Len() >= p.capacity {
		oldest := p.lru.Back()
		fr := oldest.Value.(*frame)
		if fr.dirty {
			p.stats.WriteBacks++
		}
		delete(p.pages, fr.id)
		p.lru.Remove(oldest)
	}
	p.pages[id] = p.lru.PushFront(&frame{id: id, dirty: write})
}

// Flush writes back every dirty page (end-of-run accounting).
func (p *Pool) Flush() {
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			p.stats.WriteBacks++
			fr.dirty = false
		}
	}
}

// Len returns the resident page count.
func (p *Pool) Len() int { return p.lru.Len() }

// Stats returns a copy of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the counters without evicting pages.
func (p *Pool) ResetStats() { p.stats = Stats{} }

// ErrUnknownRow reports a Touch on a row that was never placed.
var ErrUnknownRow = errors.New("pagesim: row was never placed")

// RowRef locates a placed row.
type RowRef struct {
	Page PageID
	Slot int
}

// TagStore clusters rows by tag: each tag owns a segment of consecutive
// pages (the clustering [17] recommends and the paper assumes), and rows
// append within their tag's segment. Segments are spaced far apart so
// they never collide.
type TagStore struct {
	cfg      Config
	pool     *Pool
	segments map[string]*segment
	nextSeg  PageID
}

// segmentSpan is the page stride between tag segments (1M pages ≈ 4 GB
// per tag at the default page size — effectively unbounded).
const segmentSpan = 1 << 20

type segment struct {
	base PageID
	rows int
}

// NewTagStore returns a tag-clustered store over a fresh pool.
func NewTagStore(cfg Config) *TagStore {
	cfg.defaults()
	return &TagStore{
		cfg:      cfg,
		pool:     NewPool(cfg.PoolPages),
		segments: make(map[string]*segment),
	}
}

// Pool exposes the underlying buffer pool.
func (t *TagStore) Pool() *Pool { return t.pool }

// Place appends a row for the tag and returns its stable location. The
// insertion itself costs one page write (the row's page).
func (t *TagStore) Place(tag string) RowRef {
	seg, ok := t.segments[tag]
	if !ok {
		seg = &segment{base: t.nextSeg}
		t.nextSeg += segmentSpan
		t.segments[tag] = seg
	}
	perPage := t.cfg.RowsPerPage()
	ref := RowRef{
		Page: seg.base + PageID(seg.rows/perPage),
		Slot: seg.rows % perPage,
	}
	seg.rows++
	t.pool.Access(ref.Page, true)
	return ref
}

// Touch accesses a placed row's page (write = an UPDATE, e.g. a relabel).
func (t *TagStore) Touch(ref RowRef, write bool) {
	t.pool.Access(ref.Page, write)
}

// ScanTag reads every page of the tag's segment (a query-side tag scan)
// and returns the number of pages read.
func (t *TagStore) ScanTag(tag string) int {
	seg, ok := t.segments[tag]
	if !ok {
		return 0
	}
	perPage := t.cfg.RowsPerPage()
	pages := (seg.rows + perPage - 1) / perPage
	for i := 0; i < pages; i++ {
		t.pool.Access(seg.base+PageID(i), false)
	}
	return pages
}

// Rows returns the number of rows placed for the tag.
func (t *TagStore) Rows(tag string) int {
	if seg, ok := t.segments[tag]; ok {
		return seg.rows
	}
	return 0
}

// Pages returns the total allocated pages across segments.
func (t *TagStore) Pages() int {
	perPage := t.cfg.RowsPerPage()
	total := 0
	for _, seg := range t.segments {
		total += (seg.rows + perPage - 1) / perPage
	}
	return total
}
