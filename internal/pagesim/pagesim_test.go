package pagesim

import (
	"math/rand"
	"testing"
)

func TestPoolLRUBasics(t *testing.T) {
	p := NewPool(2)
	p.Access(1, false) // fault
	p.Access(2, false) // fault
	p.Access(1, false) // hit
	p.Access(3, false) // fault, evicts 2 (LRU)
	p.Access(1, false) // hit (still resident)
	p.Access(2, false) // fault (was evicted)
	st := p.Stats()
	if st.Faults != 4 || st.Hits != 2 {
		t.Fatalf("faults=%d hits=%d, want 4/2", st.Faults, st.Hits)
	}
	if p.Len() != 2 {
		t.Fatalf("resident %d", p.Len())
	}
}

func TestPoolDirtyWriteBack(t *testing.T) {
	p := NewPool(1)
	p.Access(1, true)  // fault, dirty
	p.Access(2, false) // fault, evicts dirty 1 -> writeback
	p.Access(3, false) // fault, evicts clean 2 -> no writeback
	st := p.Stats()
	if st.WriteBacks != 1 {
		t.Fatalf("writebacks=%d, want 1", st.WriteBacks)
	}
	// Re-dirty and flush.
	p.Access(3, true)
	p.Flush()
	if got := p.Stats().WriteBacks; got != 2 {
		t.Fatalf("after flush writebacks=%d, want 2", got)
	}
	// Flushing again is a no-op (pages now clean).
	p.Flush()
	if got := p.Stats().WriteBacks; got != 2 {
		t.Fatalf("double flush writebacks=%d", got)
	}
}

func TestPoolCapacityFloor(t *testing.T) {
	p := NewPool(0)
	p.Access(1, false)
	p.Access(2, false)
	if p.Len() != 1 {
		t.Fatalf("len=%d, want 1 (capacity floored)", p.Len())
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Hits: 3, Faults: 1, WriteBacks: 2}
	if s.Accesses() != 4 || s.DiskOps() != 3 {
		t.Fatalf("accesses=%d diskops=%d", s.Accesses(), s.DiskOps())
	}
	if s.HitRate() != 0.75 {
		t.Fatalf("hitrate=%f", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hitrate")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTagStorePlacement(t *testing.T) {
	cfg := Config{PageSize: 64, RowSize: 32, PoolPages: 8} // 2 rows/page
	ts := NewTagStore(cfg)
	if ts.cfg.RowsPerPage() != 2 {
		t.Fatalf("rows/page = %d", ts.cfg.RowsPerPage())
	}
	a0 := ts.Place("a")
	a1 := ts.Place("a")
	a2 := ts.Place("a")
	b0 := ts.Place("b")
	if a0.Page != a1.Page || a0.Slot != 0 || a1.Slot != 1 {
		t.Fatalf("first two a-rows should share a page: %+v %+v", a0, a1)
	}
	if a2.Page != a0.Page+1 {
		t.Fatalf("third a-row should open page 2: %+v", a2)
	}
	if b0.Page == a0.Page || b0.Page == a2.Page {
		t.Fatal("tags must not share pages")
	}
	if ts.Rows("a") != 3 || ts.Rows("b") != 1 || ts.Rows("zz") != 0 {
		t.Fatal("row counts wrong")
	}
	if ts.Pages() != 3 {
		t.Fatalf("pages = %d, want 3", ts.Pages())
	}
}

func TestTagStoreScan(t *testing.T) {
	cfg := Config{PageSize: 64, RowSize: 32, PoolPages: 100}
	ts := NewTagStore(cfg)
	for i := 0; i < 10; i++ {
		ts.Place("x")
	}
	ts.Pool().ResetStats()
	if got := ts.ScanTag("x"); got != 5 {
		t.Fatalf("scan touched %d pages, want 5", got)
	}
	// Second scan is fully cached.
	before := ts.Pool().Stats().Faults
	ts.ScanTag("x")
	if ts.Pool().Stats().Faults != before {
		t.Fatal("cached scan should not fault")
	}
	if ts.ScanTag("missing") != 0 {
		t.Fatal("scan of unknown tag")
	}
}

// TestLocalityMatters is the behavioural point of the simulator: touching
// rows clustered on few pages faults less than scattering the same number
// of touches across many tags.
func TestLocalityMatters(t *testing.T) {
	mk := func() *TagStore {
		return NewTagStore(Config{PageSize: 4096, RowSize: 32, PoolPages: 4})
	}
	const rows = 2000
	const touches = 10000
	rng := rand.New(rand.NewSource(1))

	clustered := mk()
	refs := make([]RowRef, rows)
	for i := range refs {
		refs[i] = clustered.Place("one") // one segment, high locality
	}
	clustered.Pool().ResetStats()
	for i := 0; i < touches; i++ {
		clustered.Touch(refs[rng.Intn(64)], true) // hot front of segment
	}

	scattered := mk()
	srefs := make([]RowRef, rows)
	for i := range srefs {
		srefs[i] = scattered.Place(string(rune('a' + i%24))) // 24 segments
	}
	scattered.Pool().ResetStats()
	rng = rand.New(rand.NewSource(1))
	for i := 0; i < touches; i++ {
		scattered.Touch(srefs[rng.Intn(rows)], true)
	}

	cf := clustered.Pool().Stats().Faults
	sf := scattered.Pool().Stats().Faults
	if cf*10 > sf {
		t.Fatalf("clustered faults %d should be far below scattered %d", cf, sf)
	}
}
