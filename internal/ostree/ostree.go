// Package ostree implements a counted (order-statistic) B-tree over uint64
// keys. It is the storage substrate for the virtual L-Tree of paper §4.2:
// "if the leaf labels are maintained in a B-tree whose internal nodes also
// maintain counts, such range queries can be executed efficiently (in
// logarithmic time)".
//
// The tree stores a set (no duplicate keys) and supports rank/select and
// half-open range counting in O(log n), plus ordered iteration. It is not
// safe for concurrent mutation.
package ostree

import (
	"fmt"
	"sort"
)

// minDegree is the B-tree minimum degree t: every node except the root has
// between t−1 and 2t−1 keys. 16 keeps nodes around a cache line multiple.
const minDegree = 16

const maxKeys = 2*minDegree - 1

type node struct {
	keys     []uint64
	children []*node // nil for leaves
	count    int     // keys in this subtree (including this node's keys)
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a counted B-tree set of uint64 keys. The zero value is an empty
// tree ready for use.
type Tree struct {
	root *node
	size int
}

// New returns an empty counted B-tree.
func New() *Tree { return &Tree{} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// Has reports whether key is present.
func (t *Tree) Has(key uint64) bool {
	n := t.root
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
	return false
}

// Insert adds key to the set. It reports whether the key was newly added
// (false if it was already present).
func (t *Tree) Insert(key uint64) bool {
	if t.Has(key) {
		return false
	}
	if t.root == nil {
		t.root = &node{keys: []uint64{key}, count: 1}
		t.size = 1
		return true
	}
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &node{children: []*node{old}, count: old.count}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key)
	t.size++
	return true
}

// splitChild splits the full child p.children[i] around its median key.
func (t *Tree) splitChild(p *node, i int) {
	child := p.children[i]
	mid := minDegree - 1
	median := child.keys[mid]

	right := &node{}
	right.keys = append(right.keys, child.keys[mid+1:]...)
	child.keys = child.keys[:mid]
	if !child.leaf() {
		right.children = append(right.children, child.children[minDegree:]...)
		child.children = child.children[:minDegree]
	}
	child.count = child.subCount()
	right.count = right.subCount()

	p.keys = append(p.keys, 0)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = median
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
	// p.count is unchanged: same keys, redistributed.
}

// subCount recomputes a node's count from its keys and children.
func (n *node) subCount() int {
	c := len(n.keys)
	for _, ch := range n.children {
		c += ch.count
	}
	return c
}

// insertNonFull inserts key below n, which is known not to be full. The
// key is known to be absent, so every node on the path gains one.
func (t *Tree) insertNonFull(n *node, key uint64) {
	n.count++
	for {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if n.leaf() {
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			return
		}
		if len(n.children[i].keys) == maxKeys {
			t.splitChild(n, i)
			if key > n.keys[i] {
				i++
			}
		}
		n = n.children[i]
		n.count++
	}
}

// Delete removes key from the set. It reports whether the key was present.
func (t *Tree) Delete(key uint64) bool {
	if t.root == nil || !t.Has(key) {
		return false
	}
	t.delete(t.root, key)
	if len(t.root.keys) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	t.size--
	return true
}

// delete removes key from the subtree rooted at n. n is guaranteed to hold
// ≥ minDegree keys whenever it is not the root (the caller pre-balances),
// and the key is known to be present in the subtree.
func (t *Tree) delete(n *node, key uint64) {
	n.count--
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		if n.leaf() {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			return
		}
		// Interior hit: replace with predecessor or successor from the
		// taller side, or merge the two children around the key.
		if len(n.children[i].keys) >= minDegree {
			pred := maxKey(n.children[i])
			n.keys[i] = pred
			t.delete(n.children[i], pred)
			return
		}
		if len(n.children[i+1].keys) >= minDegree {
			succ := minKey(n.children[i+1])
			n.keys[i] = succ
			t.delete(n.children[i+1], succ)
			return
		}
		t.mergeChildren(n, i)
		t.delete(n.children[i], key)
		return
	}
	// Key lives in child i; make sure the child can lose a key.
	child := n.children[i]
	if len(child.keys) < minDegree {
		i = t.fill(n, i)
		child = n.children[i]
	}
	t.delete(child, key)
}

// fill grows child i of n to at least minDegree keys by borrowing from a
// sibling or merging; it returns the child index that now covers the range
// (merging with the left sibling shifts the index down by one).
func (t *Tree) fill(n *node, i int) int {
	switch {
	case i > 0 && len(n.children[i-1].keys) >= minDegree:
		t.borrowLeft(n, i)
		return i
	case i < len(n.children)-1 && len(n.children[i+1].keys) >= minDegree:
		t.borrowRight(n, i)
		return i
	case i > 0:
		t.mergeChildren(n, i-1)
		return i - 1
	default:
		t.mergeChildren(n, i)
		return i
	}
}

// borrowLeft moves the separator down into child i and the left sibling's
// last key up into the separator slot.
func (t *Tree) borrowLeft(n *node, i int) {
	child, left := n.children[i], n.children[i-1]
	child.keys = append(child.keys, 0)
	copy(child.keys[1:], child.keys)
	child.keys[0] = n.keys[i-1]
	n.keys[i-1] = left.keys[len(left.keys)-1]
	left.keys = left.keys[:len(left.keys)-1]
	moved := 1
	if !left.leaf() {
		last := left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = last
		moved += last.count
	}
	left.count -= moved
	child.count += moved
}

// borrowRight mirrors borrowLeft with the right sibling.
func (t *Tree) borrowRight(n *node, i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	n.keys[i] = right.keys[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	moved := 1
	if !right.leaf() {
		first := right.children[0]
		right.children = append(right.children[:0], right.children[1:]...)
		child.children = append(child.children, first)
		moved += first.count
	}
	right.count -= moved
	child.count += moved
}

// mergeChildren merges child i, separator i and child i+1 into child i.
func (t *Tree) mergeChildren(n *node, i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.keys = append(left.keys, right.keys...)
	left.children = append(left.children, right.children...)
	left.count += right.count + 1
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func minKey(n *node) uint64 {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

func maxKey(n *node) uint64 {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1]
}

// Min returns the smallest key; ok is false on an empty tree.
func (t *Tree) Min() (key uint64, ok bool) {
	if t.root == nil {
		return 0, false
	}
	return minKey(t.root), true
}

// Max returns the largest key; ok is false on an empty tree.
func (t *Tree) Max() (key uint64, ok bool) {
	if t.root == nil {
		return 0, false
	}
	return maxKey(t.root), true
}

// Rank returns the number of keys strictly smaller than key.
func (t *Tree) Rank(key uint64) int {
	rank := 0
	n := t.root
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		rank += i
		if n.leaf() {
			return rank
		}
		for j := 0; j < i; j++ {
			rank += n.children[j].count
		}
		n = n.children[i]
	}
	return rank
}

// SelectK returns the k-th smallest key (0-based); ok is false if k is out
// of range. Within an internal node the order is child 0, key 0, child 1,
// key 1, ..., last child.
func (t *Tree) SelectK(k int) (uint64, bool) {
	if k < 0 || k >= t.size {
		return 0, false
	}
	n := t.root
	for {
		if n.leaf() {
			return n.keys[k], true
		}
		i := 0
		for ; i < len(n.keys); i++ {
			c := n.children[i].count
			if k < c {
				break
			}
			k -= c
			if k == 0 {
				return n.keys[i], true
			}
			k--
		}
		n = n.children[i]
	}
}

// CountRange returns the number of keys in the half-open interval [lo, hi).
func (t *Tree) CountRange(lo, hi uint64) int {
	if hi <= lo {
		return 0
	}
	return t.Rank(hi) - t.Rank(lo)
}

// Succ returns the smallest key strictly greater than key.
func (t *Tree) Succ(key uint64) (uint64, bool) {
	var best uint64
	found := false
	n := t.root
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		if i < len(n.keys) {
			best, found = n.keys[i], true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	return best, found
}

// Pred returns the largest key strictly smaller than key.
func (t *Tree) Pred(key uint64) (uint64, bool) {
	var best uint64
	found := false
	n := t.root
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i > 0 {
			best, found = n.keys[i-1], true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	return best, found
}

// AscendRange calls fn on every key in [lo, hi) in ascending order until
// fn returns false.
func (t *Tree) AscendRange(lo, hi uint64, fn func(uint64) bool) {
	if t.root != nil {
		ascend(t.root, lo, hi, fn)
	}
}

func ascend(n *node, lo, hi uint64, fn func(uint64) bool) bool {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	for ; i < len(n.keys); i++ {
		if !n.leaf() {
			if !ascend(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if n.keys[i] >= hi {
			return true
		}
		if !fn(n.keys[i]) {
			return false
		}
	}
	if !n.leaf() {
		return ascend(n.children[len(n.children)-1], lo, hi, fn)
	}
	return true
}

// CollectRange returns the keys in [lo, hi) in ascending order.
func (t *Tree) CollectRange(lo, hi uint64) []uint64 {
	var out []uint64
	t.AscendRange(lo, hi, func(k uint64) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Keys returns all keys in ascending order.
func (t *Tree) Keys() []uint64 {
	out := make([]uint64, 0, t.size)
	t.AscendRange(0, ^uint64(0), func(k uint64) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Check validates the B-tree invariants: key ordering, children/keys
// arity, balanced leaf depth, occupancy bounds, and subtree counts. It is
// O(n) and intended for tests.
func (t *Tree) Check() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("ostree: nil root with size %d", t.size)
		}
		return nil
	}
	depth := -1
	var walk func(n *node, d int, lo, hi uint64, isRoot bool) (int, error)
	walk = func(n *node, d int, lo, hi uint64, isRoot bool) (int, error) {
		if len(n.keys) > maxKeys {
			return 0, fmt.Errorf("ostree: node with %d keys", len(n.keys))
		}
		if !isRoot && len(n.keys) < minDegree-1 {
			return 0, fmt.Errorf("ostree: underfull node with %d keys", len(n.keys))
		}
		for i, k := range n.keys {
			if k < lo || k >= hi {
				return 0, fmt.Errorf("ostree: key %d outside (%d,%d)", k, lo, hi)
			}
			if i > 0 && n.keys[i-1] >= k {
				return 0, fmt.Errorf("ostree: unsorted keys")
			}
		}
		if n.leaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return 0, fmt.Errorf("ostree: leaves at depths %d and %d", depth, d)
			}
			if n.count != len(n.keys) {
				return 0, fmt.Errorf("ostree: leaf count %d != %d keys", n.count, len(n.keys))
			}
			return n.count, nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("ostree: %d children for %d keys", len(n.children), len(n.keys))
		}
		total := len(n.keys)
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1] + 1
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			sub, err := walk(c, d+1, clo, chi, false)
			if err != nil {
				return 0, err
			}
			total += sub
		}
		if total != n.count {
			return 0, fmt.Errorf("ostree: count %d, counted %d", n.count, total)
		}
		return total, nil
	}
	total, err := walk(t.root, 0, 0, ^uint64(0), true)
	if err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("ostree: size %d, counted %d", t.size, total)
	}
	return nil
}
