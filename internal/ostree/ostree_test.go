package ostree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refSet is the obviously-correct reference model: a sorted slice.
type refSet struct{ keys []uint64 }

func (r *refSet) insert(k uint64) bool {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= k })
	if i < len(r.keys) && r.keys[i] == k {
		return false
	}
	r.keys = append(r.keys, 0)
	copy(r.keys[i+1:], r.keys[i:])
	r.keys[i] = k
	return true
}

func (r *refSet) delete(k uint64) bool {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= k })
	if i >= len(r.keys) || r.keys[i] != k {
		return false
	}
	r.keys = append(r.keys[:i], r.keys[i+1:]...)
	return true
}

func (r *refSet) rank(k uint64) int {
	return sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= k })
}

func (r *refSet) countRange(lo, hi uint64) int {
	if hi <= lo {
		return 0
	}
	return r.rank(hi) - r.rank(lo)
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Has(1) {
		t.Fatal("empty tree misbehaves")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	if _, ok := tr.SelectK(0); ok {
		t.Fatal("SelectK on empty")
	}
	if tr.Delete(3) {
		t.Fatal("Delete on empty returned true")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteSequential(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		if !tr.Insert(uint64(i * 3)) {
			t.Fatalf("insert %d failed", i)
		}
		if tr.Insert(uint64(i * 3)) {
			t.Fatalf("duplicate insert %d succeeded", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !tr.Has(uint64(i * 3)) {
			t.Fatalf("missing %d", i*3)
		}
		if tr.Has(uint64(i*3 + 1)) {
			t.Fatalf("phantom %d", i*3+1)
		}
	}
	min, _ := tr.Min()
	max, _ := tr.Max()
	if min != 0 || max != uint64((n-1)*3) {
		t.Fatalf("min=%d max=%d", min, max)
	}
	// Delete in a scrambled order.
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for idx, p := range perm {
		if !tr.Delete(uint64(p * 3)) {
			t.Fatalf("delete %d failed", p*3)
		}
		if tr.Delete(uint64(p * 3)) {
			t.Fatalf("double delete %d succeeded", p*3)
		}
		if idx%500 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after drain", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRankSelectCountRange(t *testing.T) {
	tr := New()
	ref := &refSet{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(10000))
		if tr.Insert(k) != ref.insert(k) {
			t.Fatalf("insert disagreement on %d", k)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for probe := uint64(0); probe <= 10001; probe += 13 {
		if got, want := tr.Rank(probe), ref.rank(probe); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", probe, got, want)
		}
	}
	for k := 0; k < tr.Len(); k++ {
		got, ok := tr.SelectK(k)
		if !ok || got != ref.keys[k] {
			t.Fatalf("SelectK(%d) = %d/%v, want %d", k, got, ok, ref.keys[k])
		}
	}
	for trial := 0; trial < 500; trial++ {
		lo := uint64(rng.Intn(11000))
		hi := uint64(rng.Intn(11000))
		if got, want := tr.CountRange(lo, hi), ref.countRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestSuccPred(t *testing.T) {
	tr := New()
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		tr.Insert(k)
	}
	cases := []struct {
		probe  uint64
		succ   uint64
		succOK bool
		pred   uint64
		predOK bool
	}{
		{5, 10, true, 0, false},
		{10, 20, true, 0, false},
		{15, 20, true, 10, true},
		{30, 40, true, 20, true},
		{50, 0, false, 40, true},
		{99, 0, false, 50, true},
	}
	for _, c := range cases {
		if got, ok := tr.Succ(c.probe); ok != c.succOK || (ok && got != c.succ) {
			t.Fatalf("Succ(%d) = %d/%v, want %d/%v", c.probe, got, ok, c.succ, c.succOK)
		}
		if got, ok := tr.Pred(c.probe); ok != c.predOK || (ok && got != c.pred) {
			t.Fatalf("Pred(%d) = %d/%v, want %d/%v", c.probe, got, ok, c.pred, c.predOK)
		}
	}
}

func TestAscendRangeAndCollect(t *testing.T) {
	tr := New()
	ref := &refSet{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(5000))
		tr.Insert(k)
		ref.insert(k)
	}
	for trial := 0; trial < 200; trial++ {
		lo := uint64(rng.Intn(5200))
		hi := lo + uint64(rng.Intn(600))
		got := tr.CollectRange(lo, hi)
		want := []uint64{}
		for _, k := range ref.keys {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("CollectRange(%d,%d): %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("CollectRange(%d,%d)[%d] = %d, want %d", lo, hi, i, got[i], want[i])
			}
		}
	}
	// Early stop.
	count := 0
	tr.AscendRange(0, ^uint64(0), func(uint64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
	if got := tr.Keys(); len(got) != tr.Len() {
		t.Fatalf("Keys() returned %d of %d", len(got), tr.Len())
	}
}

// TestRandomAgainstModel drives a long random op mix and checks full
// agreement with the reference set plus structural invariants.
func TestRandomAgainstModel(t *testing.T) {
	tr := New()
	ref := &refSet{}
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 30000; op++ {
		k := uint64(rng.Intn(4000))
		if rng.Intn(2) == 0 {
			if tr.Insert(k) != ref.insert(k) {
				t.Fatalf("op %d: insert(%d) disagreement", op, k)
			}
		} else {
			if tr.Delete(k) != ref.delete(k) {
				t.Fatalf("op %d: delete(%d) disagreement", op, k)
			}
		}
		if tr.Len() != len(ref.keys) {
			t.Fatalf("op %d: len %d vs %d", op, tr.Len(), len(ref.keys))
		}
		if op%2500 == 2499 {
			if err := tr.Check(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			got := tr.Keys()
			for i := range ref.keys {
				if got[i] != ref.keys[i] {
					t.Fatalf("op %d: key %d = %d, want %d", op, i, got[i], ref.keys[i])
				}
			}
		}
	}
}

// TestQuickSetSemantics is a testing/quick property: any batch of keys
// inserted then queried behaves like a sorted set.
func TestQuickSetSemantics(t *testing.T) {
	prop := func(keys []uint64) bool {
		tr := New()
		ref := &refSet{}
		for _, k := range keys {
			k %= 1 << 20
			if tr.Insert(k) != ref.insert(k) {
				return false
			}
		}
		if tr.Len() != len(ref.keys) {
			return false
		}
		if tr.Check() != nil {
			return false
		}
		got := tr.Keys()
		for i := range ref.keys {
			if got[i] != ref.keys[i] {
				return false
			}
		}
		// Rank/Select are mutually inverse.
		for i, k := range ref.keys {
			if tr.Rank(k) != i {
				return false
			}
			if sel, ok := tr.SelectK(i); !ok || sel != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
