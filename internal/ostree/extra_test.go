package ostree

import (
	"math/rand"
	"testing"
)

// TestDrainPatterns removes all keys in adversarial orders: ascending,
// descending, middle-out — each stresses a different rebalance path
// (borrow left/right, merges at both edges).
func TestDrainPatterns(t *testing.T) {
	const n = 3000
	build := func() *Tree {
		tr := New()
		for i := 0; i < n; i++ {
			tr.Insert(uint64(i))
		}
		return tr
	}
	t.Run("ascending", func(t *testing.T) {
		tr := build()
		for i := 0; i < n; i++ {
			if !tr.Delete(uint64(i)) {
				t.Fatalf("delete %d failed", i)
			}
			if i%300 == 0 {
				if err := tr.Check(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if tr.Len() != 0 {
			t.Fatal("not drained")
		}
	})
	t.Run("descending", func(t *testing.T) {
		tr := build()
		for i := n - 1; i >= 0; i-- {
			if !tr.Delete(uint64(i)) {
				t.Fatalf("delete %d failed", i)
			}
			if i%300 == 0 {
				if err := tr.Check(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if tr.Len() != 0 {
			t.Fatal("not drained")
		}
	})
	t.Run("middle-out", func(t *testing.T) {
		tr := build()
		lo, hi := n/2, n/2+1
		for lo >= 0 || hi < n {
			if lo >= 0 {
				if !tr.Delete(uint64(lo)) {
					t.Fatalf("delete %d failed", lo)
				}
				lo--
			}
			if hi < n {
				if !tr.Delete(uint64(hi)) {
					t.Fatalf("delete %d failed", hi)
				}
				hi++
			}
			if (lo+hi)%250 == 0 {
				if err := tr.Check(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if tr.Len() != 0 {
			t.Fatal("not drained")
		}
	})
}

// TestAlternatingChurn interleaves waves of inserts and deletes so the
// tree repeatedly grows and shrinks across height changes.
func TestAlternatingChurn(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(77))
	live := map[uint64]bool{}
	for wave := 0; wave < 12; wave++ {
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(50_000))
			if tr.Insert(k) != !live[k] {
				t.Fatalf("wave %d: insert(%d) disagreement", wave, k)
			}
			live[k] = true
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("wave %d after inserts: %v", wave, err)
		}
		removed := 0
		for k := range live {
			if !tr.Delete(k) {
				t.Fatalf("wave %d: delete(%d) failed", wave, k)
			}
			delete(live, k)
			removed++
			if removed >= 1800 {
				break
			}
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("wave %d after deletes: %v", wave, err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("wave %d: len %d vs %d", wave, tr.Len(), len(live))
		}
	}
}

func TestCountRangeEdges(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 {
		tr.Insert(uint64(i))
	}
	if tr.CountRange(10, 10) != 0 {
		t.Fatal("empty range")
	}
	if tr.CountRange(20, 10) != 0 {
		t.Fatal("inverted range")
	}
	if got := tr.CountRange(0, 100); got != 50 {
		t.Fatalf("full range = %d", got)
	}
	if got := tr.CountRange(10, 12); got != 1 {
		t.Fatalf("[10,12) = %d", got)
	}
	if got := tr.CountRange(11, 12); got != 0 {
		t.Fatalf("[11,12) = %d", got)
	}
}

func BenchmarkDeleteRandom(b *testing.B) {
	keys := make([]uint64, b.N)
	rng := rand.New(rand.NewSource(3))
	tr := New()
	for i := range keys {
		keys[i] = rng.Uint64() >> 16
		tr.Insert(keys[i])
	}
	b.ResetTimer()
	for _, k := range keys {
		tr.Delete(k)
	}
}
