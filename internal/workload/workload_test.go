package workload

import (
	"math/rand"
	"testing"

	"github.com/ltree-db/ltree/internal/xmldom"
)

func TestGenerateDocDeterministic(t *testing.T) {
	cfg := DocConfig{Elements: 300, MaxDepth: 7, MaxFanout: 5, TextProb: 0.25}
	a := GenerateDoc(cfg, 42)
	b := GenerateDoc(cfg, 42)
	if a.String() != b.String() {
		t.Fatal("same seed produced different documents")
	}
	c := GenerateDoc(cfg, 43)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestGenerateDocShape(t *testing.T) {
	cfg := DocConfig{Elements: 500, MaxDepth: 6, MaxFanout: 4, TextProb: 0.5}
	d := GenerateDoc(cfg, 7)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	elements, maxDepth, maxFanout := 0, 0, 0
	d.Root.Walk(func(n *xmldom.Node) bool {
		if n.Kind() == xmldom.Element {
			elements++
			if l := n.Level(); l > maxDepth {
				maxDepth = l
			}
			fan := 0
			for _, c := range n.Children() {
				if c.Kind() == xmldom.Element {
					fan++
				}
			}
			if fan > maxFanout {
				maxFanout = fan
			}
		}
		return true
	})
	if elements > cfg.Elements {
		t.Fatalf("%d elements, cap %d", elements, cfg.Elements)
	}
	if elements < cfg.Elements/2 {
		t.Fatalf("generator badly undershoots: %d of %d", elements, cfg.Elements)
	}
	if maxDepth >= cfg.MaxDepth {
		t.Fatalf("depth %d, cap %d", maxDepth, cfg.MaxDepth)
	}
	if maxFanout > cfg.MaxFanout {
		t.Fatalf("fanout %d, cap %d", maxFanout, cfg.MaxFanout)
	}
}

func TestGenerateDocDefaults(t *testing.T) {
	d := GenerateDoc(DocConfig{}, 1)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Root.Tag() != "root" {
		t.Fatal("default root tag wrong")
	}
}

func TestBuildSubtree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 10, 64} {
		sub := BuildSubtree(rng, n, nil)
		count := 0
		sub.Walk(func(v *xmldom.Node) bool { count++; return true })
		if count != n {
			t.Fatalf("subtree has %d elements, want %d", count, n)
		}
		if sub.Parent() != nil {
			t.Fatal("subtree must be detached")
		}
		if sub.CountTokens() != 2*n {
			t.Fatalf("tokens = %d, want %d", sub.CountTokens(), 2*n)
		}
	}
}

func TestXMarkLite(t *testing.T) {
	d := XMarkLite(2, 11)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Root.Tag() != "site" {
		t.Fatal("xmark root must be site")
	}
	count := func(tag string) int {
		n := 0
		d.Root.Walk(func(v *xmldom.Node) bool {
			if v.Kind() == xmldom.Element && v.Tag() == tag {
				n++
			}
			return true
		})
		return n
	}
	if got := count("item"); got != 6*2*2 { // 6 regions × 2·scale
		t.Fatalf("items = %d", got)
	}
	if got := count("person"); got != 10 { // 5·scale
		t.Fatalf("persons = %d", got)
	}
	if got := count("open_auction"); got != 6 { // 3·scale
		t.Fatalf("auctions = %d", got)
	}
	// Deterministic.
	if XMarkLite(2, 11).String() != d.String() {
		t.Fatal("xmark not deterministic")
	}
	// Scale grows the document.
	if XMarkLite(4, 11).CountNodes() <= d.CountNodes() {
		t.Fatal("scale did not grow the document")
	}
}

func TestPositions(t *testing.T) {
	for _, dist := range []Dist{Uniform, Append, Front, Hotspot} {
		p := NewPositions(dist, 3)
		for n := 0; n < 2000; n++ {
			pos := p.Next(n)
			if pos < 0 || pos > n {
				t.Fatalf("%v: pos %d out of [0,%d]", dist, pos, n)
			}
			switch dist {
			case Append:
				if pos != n {
					t.Fatalf("append pos = %d, want %d", pos, n)
				}
			case Front:
				if pos != 0 {
					t.Fatalf("front pos = %d", pos)
				}
			}
		}
	}
	// Hotspot really clusters.
	p := NewPositions(Hotspot, 4)
	n := 3000
	hits := 0
	for i := 0; i < 500; i++ {
		pos := p.Next(n)
		if pos > n/3-20 && pos < n/3+20 {
			hits++
		}
	}
	if hits < 450 {
		t.Fatalf("hotspot spread too wide: %d/500 in band", hits)
	}
	// Determinism and names.
	a, b := NewPositions(Uniform, 9), NewPositions(Uniform, 9)
	for i := 1; i < 100; i++ {
		if a.Next(i) != b.Next(i) {
			t.Fatal("positions not deterministic")
		}
	}
	if Uniform.String() != "uniform" || Hotspot.String() != "hotspot" {
		t.Fatal("names wrong")
	}
}
