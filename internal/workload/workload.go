// Package workload generates deterministic synthetic documents and update
// streams for the experiments. The paper evaluates analytically; to
// measure the same quantities we need reproducible inputs whose knobs —
// size, depth, fanout skew, insertion locality, subtree sizes — cover the
// regimes the analysis distinguishes (uniform vs. skewed insertion areas,
// §6: "the L-Tree adjusts itself ... in the areas with heavy insertion
// activity").
package workload

import (
	"fmt"
	"math/rand"

	"github.com/ltree-db/ltree/internal/xmldom"
)

// DocConfig parameterizes the random document generator.
type DocConfig struct {
	Elements  int      // total number of elements to generate (≥ 1)
	MaxDepth  int      // maximum nesting depth (≥ 1)
	MaxFanout int      // maximum children per element (≥ 1)
	Tags      []string // tag alphabet, picked Zipf-skewed (defaults provided)
	TextProb  float64  // probability of attaching a text child to a leaf
	AttrProb  float64  // probability of attaching attributes to an element (0 = none)
}

// DefaultAttrs is the attribute-name alphabet AttrProb draws from; the
// values are low-cardinality categories (v0..v7) so per-chunk attribute
// summaries have something to discriminate on, plus an occasional "rare"
// value for selective-predicate coverage.
var DefaultAttrs = []string{"id", "cat", "role"}

// DefaultTags is a small realistic tag alphabet.
var DefaultTags = []string{
	"section", "item", "name", "title", "para", "list", "entry",
	"date", "ref", "note",
}

// GenerateDoc builds a random ordered document with the given shape knobs,
// deterministically from the seed.
func GenerateDoc(cfg DocConfig, seed int64) *xmldom.Document {
	if cfg.Elements < 1 {
		cfg.Elements = 1
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 8
	}
	if cfg.MaxFanout < 1 {
		cfg.MaxFanout = 8
	}
	if len(cfg.Tags) == 0 {
		cfg.Tags = DefaultTags
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(len(cfg.Tags)-1))

	root := xmldom.NewElement("root")
	// Open elements eligible for more children, with their depths.
	type slot struct {
		n     *xmldom.Node
		depth int
	}
	open := []slot{{root, 0}}
	made := 1
	for made < cfg.Elements && len(open) > 0 {
		i := rng.Intn(len(open))
		s := open[i]
		if s.depth+1 >= cfg.MaxDepth || s.n.NumChildren() >= cfg.MaxFanout {
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
			continue
		}
		tag := cfg.Tags[zipf.Uint64()]
		el := xmldom.NewElement(tag)
		// Attribute generation consumes randomness only when enabled, so
		// documents generated with AttrProb == 0 stay byte-identical to
		// the pre-AttrProb generator for the same seed.
		if cfg.AttrProb > 0 && rng.Float64() < cfg.AttrProb {
			name := DefaultAttrs[rng.Intn(len(DefaultAttrs))]
			val := fmt.Sprintf("v%d", rng.Intn(8))
			if rng.Intn(50) == 0 {
				val = "rare"
			}
			el.SetAttr(name, val)
			if rng.Intn(4) == 0 { // sometimes a second attribute
				el.SetAttr(DefaultAttrs[rng.Intn(len(DefaultAttrs))], fmt.Sprintf("v%d", rng.Intn(8)))
			}
		}
		if err := s.n.AppendChild(el); err != nil {
			panic(err) // fresh node: structurally impossible
		}
		made++
		open = append(open, slot{el, s.depth + 1})
		if rng.Float64() < cfg.TextProb {
			_ = el.AppendChild(xmldom.NewText(fmt.Sprintf("t%d", made)))
		}
	}
	doc, err := xmldom.NewDocument(root)
	if err != nil {
		panic(err)
	}
	return doc
}

// BuildSubtree builds a detached random subtree with the given number of
// elements, for §4.1 subtree-insertion experiments.
func BuildSubtree(rng *rand.Rand, elements int, tags []string) *xmldom.Node {
	if len(tags) == 0 {
		tags = DefaultTags
	}
	root := xmldom.NewElement(tags[rng.Intn(len(tags))])
	nodes := []*xmldom.Node{root}
	for i := 1; i < elements; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xmldom.NewElement(tags[rng.Intn(len(tags))])
		if err := parent.AppendChild(el); err != nil {
			panic(err)
		}
		nodes = append(nodes, el)
	}
	return root
}

// XMarkLite builds a deterministic miniature of the XMark auction-site
// document (the community-standard XML benchmark schema), sized by scale:
// regions with items, people, and open auctions with bidders. It provides
// the realistic tag hierarchy for query experiments like "//item/name".
func XMarkLite(scale int, seed int64) *xmldom.Document {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	site := xmldom.NewElement("site")
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	regions := xmldom.NewElement("regions")
	must(site.AppendChild(regions))
	regionNames := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	itemID := 0
	for _, rn := range regionNames {
		region := xmldom.NewElement(rn)
		must(regions.AppendChild(region))
		for i := 0; i < 2*scale; i++ {
			item := xmldom.NewElement("item", xmldom.Attr{Name: "id", Value: fmt.Sprintf("item%d", itemID)})
			must(region.AppendChild(item))
			name := xmldom.NewElement("name")
			must(item.AppendChild(name))
			must(name.AppendChild(xmldom.NewText(fmt.Sprintf("thing-%d", itemID))))
			desc := xmldom.NewElement("description")
			must(item.AppendChild(desc))
			para := xmldom.NewElement("para")
			must(desc.AppendChild(para))
			must(para.AppendChild(xmldom.NewText(fmt.Sprintf("words %d %d", itemID, rng.Intn(100)))))
			itemID++
		}
	}

	people := xmldom.NewElement("people")
	must(site.AppendChild(people))
	for i := 0; i < 5*scale; i++ {
		person := xmldom.NewElement("person", xmldom.Attr{Name: "id", Value: fmt.Sprintf("person%d", i)})
		must(people.AppendChild(person))
		name := xmldom.NewElement("name")
		must(person.AppendChild(name))
		must(name.AppendChild(xmldom.NewText(fmt.Sprintf("p-%d", i))))
		email := xmldom.NewElement("emailaddress")
		must(person.AppendChild(email))
		must(email.AppendChild(xmldom.NewText(fmt.Sprintf("p%d@example.org", i))))
	}

	auctions := xmldom.NewElement("open_auctions")
	must(site.AppendChild(auctions))
	for i := 0; i < 3*scale; i++ {
		auction := xmldom.NewElement("open_auction", xmldom.Attr{Name: "id", Value: fmt.Sprintf("auction%d", i)})
		must(auctions.AppendChild(auction))
		initial := xmldom.NewElement("initial")
		must(auction.AppendChild(initial))
		must(initial.AppendChild(xmldom.NewText(fmt.Sprintf("%d.00", 1+rng.Intn(200)))))
		for b := 0; b < 1+rng.Intn(3); b++ {
			bidder := xmldom.NewElement("bidder")
			must(auction.AppendChild(bidder))
			inc := xmldom.NewElement("increase")
			must(bidder.AppendChild(inc))
			must(inc.AppendChild(xmldom.NewText(fmt.Sprintf("%d.50", 1+rng.Intn(20)))))
		}
		ref := xmldom.NewElement("itemref", xmldom.Attr{Name: "item", Value: fmt.Sprintf("item%d", rng.Intn(itemID))})
		must(auction.AppendChild(ref))
	}

	doc, err := xmldom.NewDocument(site)
	if err != nil {
		panic(err)
	}
	return doc
}

// Dist selects where an update stream inserts.
type Dist int

// Insertion position distributions.
const (
	Uniform Dist = iota // uniformly random rank
	Append              // always at the end (log-style documents)
	Front               // always at the beginning (worst case for dense schemes)
	Hotspot             // a single dense region (the paper's "heavy insertion activity" area)
)

// String names the distribution for experiment output.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Append:
		return "append"
	case Front:
		return "front"
	case Hotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// Positions yields insertion ranks for a growing list: Next(n) returns the
// rank in [0, n] at which the next element is inserted, given current
// size n.
type Positions struct {
	dist Dist
	rng  *rand.Rand
}

// NewPositions returns a deterministic position stream.
func NewPositions(dist Dist, seed int64) *Positions {
	return &Positions{dist: dist, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next insertion rank for a list of length n.
func (p *Positions) Next(n int) int {
	if n <= 0 {
		return 0
	}
	switch p.dist {
	case Append:
		return n
	case Front:
		return 0
	case Hotspot:
		// Cluster insertions around 1/3 of the document with ±8 jitter.
		base := n / 3
		j := p.rng.Intn(17) - 8
		pos := base + j
		if pos < 0 {
			pos = 0
		}
		if pos > n {
			pos = n
		}
		return pos
	default:
		return p.rng.Intn(n + 1)
	}
}
