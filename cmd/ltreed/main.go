// Command ltreed serves an L-Tree store over HTTP — one process per
// node, either the leader that owns the write-ahead log or a follower
// replicating from a remote leader over the shipped-op wire protocol.
//
// Leader (owns the WAL, accepts writes, ships its op log):
//
//	ltreed -wal /var/lib/ltree -seed catalog.xml -ship :7878 -http :8080
//
// Follower (read replica; attaches to the leader's -ship port):
//
//	ltreed -leader leader-host:7878 -http :8081
//
// The leader recovers from the WAL when it already holds a checkpoint;
// -seed is only read to boot an empty log. Followers bootstrap from the
// leader's newest checkpoint and then tail the op stream, reconnecting
// with backoff if the link drops. Every node serves the same snapshot-
// isolated read surface; see the HTTP endpoints in http.go. A follower
// read can demand read-your-writes freshness with ?wait_seq=<seq> using
// the sequence number a leader write returned.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

func main() {
	var (
		walDir   = flag.String("wal", "", "leader: WAL directory (created if missing)")
		seed     = flag.String("seed", "", "leader: XML file seeding an empty WAL")
		shipAddr = flag.String("ship", ":7878", "leader: replication listen address")
		httpAddr = flag.String("http", ":8080", "HTTP listen address")
		leader   = flag.String("leader", "", "follower: leader replication address (host:port)")
		wait     = flag.Duration("wait", 2*time.Second, "max wait_seq freshness wait")
	)
	flag.Parse()

	var err error
	switch {
	case *leader != "" && *walDir != "":
		err = errors.New("pick one role: -wal (leader) or -leader (follower)")
	case *leader != "":
		err = runFollower(*leader, *httpAddr, *wait)
	case *walDir != "":
		err = runLeader(*walDir, *seed, *shipAddr, *httpAddr, *wait)
	default:
		fmt.Fprintln(os.Stderr, "ltreed: need -wal <dir> (leader) or -leader <addr> (follower)")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("ltreed: %v", err)
	}
}

// runLeader recovers (or seeds) the store, starts the replication
// listener, and serves HTTP until the process dies.
func runLeader(walDir, seed, shipAddr, httpAddr string, wait time.Duration) error {
	w, err := ltree.NewWALBackend(walDir, ltree.WALOptions{})
	if err != nil {
		return err
	}
	st, err := ltree.LoadLatest(w)
	if errors.Is(err, ltree.ErrNoVersion) {
		// Empty log: this is first boot, seed it.
		if seed == "" {
			return fmt.Errorf("WAL %s is empty and no -seed was given", walDir)
		}
		f, err := os.Open(seed)
		if err != nil {
			return err
		}
		st, err = ltree.Open(f, ltree.DefaultParams)
		f.Close()
		if err != nil {
			return err
		}
		if err := st.WithWAL(w, ltree.AutoCheckpoint(4<<20, 16384)); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}

	srv, err := storage.NewShipServer(w)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", shipAddr)
	if err != nil {
		return err
	}
	go srv.Serve(ln)

	src := w.(storage.TailSource)
	log.Printf("leader: http %s, shipping %s, wal %s (seq %d)", httpAddr, ln.Addr(), walDir, src.Seq())
	return http.ListenAndServe(httpAddr, newHandler(&leaderNode{st: st, src: src}, wait))
}

// runFollower attaches a replica to a remote leader and serves reads.
func runFollower(leaderAddr, httpAddr string, wait time.Duration) error {
	dial := func() (net.Conn, error) { return net.Dial("tcp", leaderAddr) }
	src, err := storage.OpenRemoteTail(dial, storage.RemoteOptions{})
	if err != nil {
		return fmt.Errorf("attach to leader %s: %w", leaderAddr, err)
	}
	f, err := ltree.OpenFollower(src)
	if err != nil {
		src.Close()
		return fmt.Errorf("bootstrap from leader %s: %w", leaderAddr, err)
	}
	log.Printf("follower: http %s, leader %s (applied seq %d)", httpAddr, leaderAddr, f.Stats().AppliedSeq)
	return http.ListenAndServe(httpAddr, newHandler(&followerNode{f: f}, wait))
}
